// Swarmlocate: a swarm of bouncing robots with no communication, no common
// sense of direction and only the first-collision sensor of the perceptive
// model localises every member of the swarm in about n/2 rounds (Theorem 42)
// — roughly half of what the lazy-model sweep needs — and reports where the
// round budget went.
//
// The same workload is the registered task "swarmlocate" (internal/task):
// `ringsim -task swarmlocate -model perceptive`, a ringfarm `-tasks
// swarmlocate` sweep or a ringd request all run it through the registry,
// with the Lemma 6 lower bound exported on every record.
package main

import (
	"fmt"
	"log"

	"ringsym"
)

func main() {
	log.SetFlags(0)

	const n = 32
	nw, err := ringsym.RandomNetwork(ringsym.RandomConfig{
		N:              n,
		Model:          ringsym.Perceptive,
		MixedChirality: true,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := nw.DiscoverLocations(ringsym.DiscoveryOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("perceptive swarm of %d robots, identifiers bounded by N=%d\n", n, 4*n)
	fmt.Printf("total rounds: %d\n\n", res.Rounds)

	var leader ringsym.AgentDiscovery
	for _, a := range res.PerAgent {
		if a.IsLeader {
			leader = a
		}
	}
	fmt.Printf("elected leader: ID %d\n", leader.ID)
	fmt.Printf("round budget of one agent:\n")
	fmt.Printf("  symmetry breaking + ring distances (o(n) term): %d rounds\n", leader.RoundsCoordination)
	fmt.Printf("  Distances schedule (the n/2 term):              %d rounds\n", leader.RoundsDiscovery)
	fmt.Printf("  Lemma 6 lower bound for any perceptive solution: %d rounds\n",
		ringsym.LocationDiscoveryLowerBound(ringsym.Perceptive, n))
	fmt.Printf("  lazy-model sweep would need:                     %d rounds for this term\n\n", n)

	// Every agent reconstructed the same ring, each from its own viewpoint.
	fmt.Printf("agent maps (first 5 agents, first 6 entries of each map):\n")
	for i := 0; i < 5; i++ {
		a := res.PerAgent[i]
		fmt.Printf("  agent %2d (ID %3d): %v ...\n", i, a.ID, a.Positions[:6])
	}
	fmt.Println("\nall maps verified against the simulator's ground truth")
}
