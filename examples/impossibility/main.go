// Impossibility: Lemma 5 of the paper states that location discovery cannot
// be solved in the basic model when n is even.  This example makes the
// argument tangible: it builds two different rings — the original and the
// "alternating perturbation" twin — and shows that any schedule of
// basic-model rounds produces exactly the same observations in both worlds,
// so no deterministic protocol can ever tell them apart.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ringsym/internal/discovery"
	"ringsym/internal/ring"
)

func main() {
	log.SetFlags(0)

	const (
		n    = 8
		circ = int64(1000)
	)
	positions := []int64{0, 90, 210, 300, 480, 600, 710, 850}
	twin, err := discovery.TwinConfiguration(circ, positions, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("world A positions:", positions)
	fmt.Println("world B positions:", twin)
	fmt.Println("(every odd-indexed agent is shifted by +20; all even-length arcs are unchanged)")
	fmt.Println()

	// Throw 50 random rounds of the basic model at both worlds.
	rng := rand.New(rand.NewSource(2))
	schedule := make([][]ring.Direction, 50)
	for t := range schedule {
		dirs := make([]ring.Direction, n)
		for i := range dirs {
			if rng.Intn(2) == 0 {
				dirs[i] = ring.Clockwise
			} else {
				dirs[i] = ring.Anticlockwise
			}
		}
		schedule[t] = dirs
	}
	equal, err := discovery.ObservationallyEquivalent(circ, positions, twin, schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identical dist() observations in all %d random rounds: %v\n", len(schedule), equal)
	fmt.Println()
	fmt.Println("conclusion (Lemma 5): in the basic model with an even number of agents, every")
	fmt.Println("protocol behaves identically on the two worlds, yet the worlds differ — so no")
	fmt.Println("protocol can solve location discovery.  The lazy model (idle moves) and the")
	fmt.Println("perceptive model (first-collision distances) both escape this argument.")
}
