// Bouncing: dump the full collision history of the event-driven physics
// simulator for one round, as CSV on stdout.  Useful for visualising the
// "beads on a ring" dynamics that underlie the whole paper and for checking
// the rotation-index lemma by eye: after one round the set of occupied
// positions is exactly the starting set, shifted by (nC − nA) mod n agents.
//
// The same dynamics are the registered task "bounce" (internal/task):
// `ringsim -task bounce`, a ringfarm `-tasks bounce` sweep or a ringd
// request all run the collision census through the registry, cache and
// daemon like any protocol task.
package main

import (
	"fmt"
	"log"

	"ringsym/internal/physics"
	"ringsym/internal/ring"
)

func main() {
	log.SetFlags(0)

	circ := 360.0
	positions := []float64{0, 40, 95, 140, 200, 260, 300, 330}
	dirs := []ring.Direction{
		ring.Clockwise, ring.Anticlockwise, ring.Clockwise, ring.Clockwise,
		ring.Anticlockwise, ring.Idle, ring.Clockwise, ring.Anticlockwise,
	}
	res, err := physics.SimulateRound(circ, positions, dirs)
	if err != nil {
		log.Fatal(err)
	}

	nC, nA := 0, 0
	for _, d := range dirs {
		switch d {
		case ring.Clockwise:
			nC++
		case ring.Anticlockwise:
			nA++
		}
	}
	fmt.Printf("# one round on a circle of circumference %.0f with %d agents (nC=%d, nA=%d)\n",
		circ, len(positions), nC, nA)
	fmt.Printf("# rotation index (Lemma 1): (nC-nA) mod n = %d\n", ((nC-nA)%len(dirs)+len(dirs))%len(dirs))
	fmt.Println("event,time,position,agentA,agentB")
	for i, e := range res.Events {
		fmt.Printf("%d,%.2f,%.2f,%d,%d\n", i, e.Time, e.Pos, e.A, e.B)
	}
	fmt.Println("# final positions per agent:")
	for i, p := range res.Final {
		first := "never collided"
		if res.Collided(i) {
			first = fmt.Sprintf("first collision after %.2f", res.FirstColl[i])
		}
		fmt.Printf("# agent %d: start %.2f -> end %.2f (%s, %d collisions)\n",
			i, positions[i], p, first, res.Collisions[i])
	}
}
