// Patrol: the introduction of the paper motivates location discovery as the
// stepping stone towards "equidistant distribution along the circumference of
// the circle and an optimal boundary patrolling scheme".  This example runs
// location discovery and then lets every agent independently compute the same
// equidistant deployment plan: who has to move where so that the swarm ends
// up evenly spread, ready to patrol the boundary with optimal idle time.
//
// The same workload is the registered task "patrol" (internal/task):
// `ringsim -task patrol`, a ringfarm `-tasks patrol` sweep or a ringd
// request all run it through the registry, with the longest relocation
// exported on every record as extra field "max_relocation".
package main

import (
	"fmt"
	"log"

	"ringsym"
)

func main() {
	log.SetFlags(0)

	const n = 12
	nw, err := ringsym.RandomNetwork(ringsym.RandomConfig{
		N:              n,
		Model:          ringsym.Lazy,
		MixedChirality: true,
		Seed:           19,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := nw.DiscoverLocations(ringsym.DiscoveryOptions{Seed: 19})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("location discovery on %d patrolling robots finished in %d rounds\n\n", n, res.Rounds)

	// Each agent knows the full relative map, so each can compute the same
	// deployment: target slot t (for the agent at ring distance t from the
	// reference agent) sits at t/n of the circumference.  We print the plan
	// computed by the elected leader; every other agent derives the identical
	// plan up to rotation.
	var leader ringsym.AgentDiscovery
	for _, a := range res.PerAgent {
		if a.IsLeader {
			leader = a
		}
	}
	full := 2 * int64(1) << 20 // observation units (half-ticks) of the default circumference
	fmt.Printf("equidistant patrol plan computed by the leader (ID %d):\n", leader.ID)
	fmt.Printf("  %-28s %-14s %-14s %s\n", "robot (ring distance from me)", "current", "target", "move (signed)")
	var maxMove int64
	for t := 0; t < leader.N; t++ {
		target := int64(t) * full / int64(leader.N)
		move := target - leader.Positions[t]
		if move > full/2 {
			move -= full
		}
		if move < -full/2 {
			move += full
		}
		if abs(move) > maxMove {
			maxMove = abs(move)
		}
		fmt.Printf("  %-28d %-14d %-14d %+d\n", t, leader.Positions[t], target, move)
	}
	fmt.Printf("\nlongest relocation: %d observation units (%.3f of the circumference)\n",
		maxMove, float64(maxMove)/float64(full))
	fmt.Println("after relocation the swarm patrols the boundary with optimal idle time 1/n")
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
