// Quickstart: build a small ring of bouncing agents, break the symmetry
// (nontrivial move → direction agreement → leader election) and then let
// every agent discover the positions of all the others — the location
// discovery problem of the paper — in the lazy model.
package main

import (
	"fmt"
	"log"

	"ringsym"
)

func main() {
	log.SetFlags(0)

	// Ten agents at hand-picked positions on a circle of 1<<16 ticks.  Agents
	// 1, 4 and 7 privately believe clockwise is the other way around
	// (Chirality=false): the protocols must agree on a direction first.
	cfg := ringsym.Config{
		Model:         ringsym.Lazy,
		Circumference: 1 << 16,
		Positions:     []int64{0, 5000, 9000, 16384, 20000, 30000, 40000, 45000, 52000, 60000},
		IDs:           []int{12, 7, 25, 3, 18, 31, 9, 22, 5, 14},
		IDBound:       32,
		Chirality:     []bool{true, false, true, true, false, true, true, false, true, true},
	}
	nw, err := ringsym.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: the coordination problems (Sections III and IV of the paper).
	coord, err := nw.Coordinate(ringsym.CoordinationOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordination finished in %d rounds; the leader is the agent with ID %d\n",
		coord.Rounds, coord.LeaderID)

	// Step 2: location discovery (Lemma 16): after coordination the agents
	// sweep the ring once; every agent ends up knowing the initial position
	// of every other agent relative to its own.
	disc, err := nw.DiscoverLocations(ringsym.DiscoveryOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("location discovery finished in %d rounds (Lemma 6 lower bound: %d)\n\n",
		disc.Rounds, ringsym.LocationDiscoveryLowerBound(nw.Model(), nw.N()))

	for i, a := range disc.PerAgent {
		fmt.Printf("agent %d (ID %2d) discovered n=%d and the relative map %v\n",
			i, a.ID, a.N, a.Positions)
	}
	fmt.Println("\nall maps verified against the simulator's ground truth")
}
