package ringsym_test

import (
	"context"
	"errors"
	"testing"

	"ringsym"
)

func TestNewNetworkValidation(t *testing.T) {
	_, err := ringsym.NewNetwork(ringsym.Config{
		Model:         ringsym.Basic,
		Circumference: 1000,
		Positions:     []int64{0, 100},
		IDs:           []int{1, 2},
		IDBound:       4,
	})
	if err == nil {
		t.Fatal("n <= 4 accepted")
	}
	nw, err := ringsym.NewNetwork(ringsym.Config{
		Model:         ringsym.Lazy,
		Circumference: 1000,
		Positions:     []int64{0, 100, 300, 500, 800},
		IDs:           []int{5, 3, 9, 1, 7},
		IDBound:       16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 5 || nw.Model() != ringsym.Lazy || nw.IDOf(2) != 9 {
		t.Error("accessors wrong")
	}
	if len(nw.InitialPositions()) != 5 || len(nw.CurrentPositions()) != 5 {
		t.Error("position accessors wrong")
	}
}

func TestRandomNetworkAndCoordinate(t *testing.T) {
	for _, model := range []ringsym.Model{ringsym.Basic, ringsym.Lazy, ringsym.Perceptive} {
		for _, n := range []int{7, 8} {
			if model == ringsym.Basic && n%2 == 0 {
				// Coordination is still solvable (location discovery is not);
				// include it to cover the Theorem 27 path.
				_ = n
			}
			nw, err := ringsym.RandomNetwork(ringsym.RandomConfig{
				N: n, Model: model, MixedChirality: true, Seed: int64(n),
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := nw.Coordinate(ringsym.CoordinationOptions{Seed: 9})
			if err != nil {
				t.Fatalf("model=%v n=%d: %v", model, n, err)
			}
			if res.LeaderID == 0 || res.Rounds <= 0 || len(res.PerAgent) != n {
				t.Fatalf("model=%v n=%d: malformed result %+v", model, n, res)
			}
			leaders := 0
			for _, a := range res.PerAgent {
				if a.IsLeader {
					leaders++
					if a.ID != res.LeaderID {
						t.Error("LeaderID mismatch")
					}
				}
			}
			if leaders != 1 {
				t.Fatalf("model=%v n=%d: %d leaders", model, n, leaders)
			}
		}
	}
}

func TestDiscoverLocationsFacade(t *testing.T) {
	cases := []struct {
		model ringsym.Model
		n     int
	}{
		{ringsym.Lazy, 8},
		{ringsym.Basic, 9},
		{ringsym.Perceptive, 8},
	}
	for _, tc := range cases {
		nw, err := ringsym.RandomNetwork(ringsym.RandomConfig{
			N: tc.n, Model: tc.model, MixedChirality: true, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.DiscoverLocations(ringsym.DiscoveryOptions{Seed: 2})
		if err != nil {
			t.Fatalf("model=%v: %v", tc.model, err)
		}
		if len(res.PerAgent) != tc.n {
			t.Fatalf("model=%v: %d agents in result", tc.model, len(res.PerAgent))
		}
		for _, a := range res.PerAgent {
			if a.N != tc.n || len(a.Positions) != tc.n {
				t.Fatalf("model=%v: malformed agent outcome %+v", tc.model, a)
			}
		}
		// VerifyDiscovery already ran inside DiscoverLocations; run it again
		// explicitly to cover the exported path.
		if err := nw.VerifyDiscovery(res); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDiscoverLocationsImpossibleCase(t *testing.T) {
	nw, err := ringsym.RandomNetwork(ringsym.RandomConfig{N: 8, Model: ringsym.Basic, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.DiscoverLocations(ringsym.DiscoveryOptions{}); err == nil {
		t.Fatal("basic model with even n should be unsolvable (Lemma 5)")
	}
}

func TestRunCustomProtocol(t *testing.T) {
	nw, err := ringsym.RandomNetwork(ringsym.RandomConfig{N: 6, Model: ringsym.Perceptive, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	outs, rounds, err := ringsym.Run(nw, func(a *ringsym.Agent) (int64, error) {
		obs, err := a.Round(ringsym.Clockwise)
		if err != nil {
			return 0, err
		}
		return obs.Dist, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 1 || len(outs) != 6 {
		t.Fatalf("rounds=%d outs=%d", rounds, len(outs))
	}
}

func TestVerificationFailureDetected(t *testing.T) {
	nw, err := ringsym.RandomNetwork(ringsym.RandomConfig{N: 8, Model: ringsym.Lazy, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.DiscoverLocations(ringsym.DiscoveryOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one agent's answer: verification must notice.
	res.PerAgent[0].Positions[1] += 2
	if err := nw.VerifyDiscovery(res); !errors.Is(err, ringsym.ErrVerification) {
		t.Fatalf("got %v, want ErrVerification", err)
	}
	res.PerAgent[0].Positions[1] -= 2
	res.PerAgent[0].N = 3
	if err := nw.VerifyDiscovery(res); !errors.Is(err, ringsym.ErrVerification) {
		t.Fatalf("got %v, want ErrVerification", err)
	}
}

func TestLowerBoundHelper(t *testing.T) {
	if ringsym.LocationDiscoveryLowerBound(ringsym.Lazy, 10) != 9 {
		t.Error("lazy lower bound wrong")
	}
	if ringsym.LocationDiscoveryLowerBound(ringsym.Perceptive, 10) != 5 {
		t.Error("perceptive lower bound wrong")
	}
}

func TestRandomNetworkValidation(t *testing.T) {
	if _, err := ringsym.RandomNetwork(ringsym.RandomConfig{N: 1}); err == nil {
		t.Error("N=1 accepted")
	}
}

// TestCoordinateContextCancelled verifies that the public facade surfaces a
// context cancellation from inside the coordination pipeline.
func TestCoordinateContextCancelled(t *testing.T) {
	nw, err := ringsym.RandomNetwork(ringsym.RandomConfig{N: 8, Seed: 3, MixedChirality: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := nw.CoordinateContext(ctx, ringsym.CoordinationOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The network is still usable with a live context afterwards.
	if _, err := nw.Coordinate(ringsym.CoordinationOptions{}); err != nil {
		t.Fatalf("coordinate after cancelled attempt: %v", err)
	}
}

// TestRunContextCancelMidProtocol cancels a custom protocol that would never
// terminate and checks the run is cut short.
func TestRunContextCancelMidProtocol(t *testing.T) {
	nw, err := ringsym.RandomNetwork(ringsym.RandomConfig{N: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, _, err = ringsym.RunContext(ctx, nw, func(a *ringsym.Agent) (int, error) {
		for {
			if a.RoundsUsed() == 5 && a.ID()%2 == 1 {
				cancel()
			}
			if _, err := a.Round(ringsym.Clockwise); err != nil {
				return a.RoundsUsed(), err
			}
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if nw.Rounds() > 100 {
		t.Fatalf("cancellation did not interrupt promptly: %d rounds", nw.Rounds())
	}
}
