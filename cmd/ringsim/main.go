// Command ringsim runs a single scenario of the bouncing-agents model and
// prints what happened: the elected leader, the per-problem round counts and,
// for location discovery, every agent's reconstructed map of the ring.
//
// Usage:
//
//	ringsim -n 16 -model perceptive -mixed -task discover -seed 3
//	ringsim -n 8 -model lazy -task coordinate
//	ringsim -n 8 -task coordinate -json | jq .rounds
//	ringsim -n 8 -task coordinate -store results.store   # reuse ringd's store
//	ringsim -n 6 -task bounce        # collision census of one physics round
//	ringsim -tasks                   # list the task registry and exit
//
// Every task registered in internal/task is runnable — ringsim dispatches
// through the same registry as cmd/ringfarm and cmd/ringd, so a new task is
// immediately available here with no CLI change.  With -json the run is
// emitted as the machine-readable scenario record of the campaign harness
// (one campaign.Record JSON object, the same shape as a records.jsonl line of
// cmd/ringfarm), so single runs are scriptable exactly like sweeps.
//
// With -store <dir> the run consults (and fills) the persistent result store
// of internal/store — the same directory a ringd -store daemon or a
// ringfarm -store sweep uses — and every task, built-ins included, goes
// through the campaign record path: a disk-served outcome carries the record
// fields, not the interactive per-agent report, so both print the same shape.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"ringsym"
	"ringsym/internal/campaign"
	"ringsym/internal/store"
	"ringsym/internal/task"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ringsim: ")

	n := flag.Int("n", 16, "number of agents (> 4)")
	modelName := flag.String("model", "perceptive", "movement model: basic, lazy or perceptive")
	mixed := flag.Bool("mixed", true, "give agents independent random senses of direction")
	seed := flag.Int64("seed", 1, "seed for the random configuration")
	taskName := flag.String("task", "discover", "task to run: "+strings.Join(task.Names(), ", "))
	listTasks := flag.Bool("tasks", false, "list the registered tasks and exit")
	jsonOut := flag.Bool("json", false, "emit the run as a machine-readable campaign record")
	storeDir := flag.String("store", "", "read/write the outcome through the on-disk result store in this directory (shared with ringd/ringfarm -store)")
	flag.Parse()

	if *listTasks {
		for _, name := range task.Names() {
			spec, err := task.Lookup(name)
			if err != nil {
				continue
			}
			fmt.Printf("%-12s %s\n", name, spec.Description())
		}
		return
	}

	model, err := parseModel(*modelName)
	if err != nil {
		log.Fatal(err)
	}

	// -store routes the run through the campaign record path for every task:
	// a store-served outcome carries the record fields, not the interactive
	// per-agent report, so a disk hit and a fresh compute must print the same
	// shape.  The singleton memory cache exists only to give the store tier a
	// front — ringsim itself runs one scenario.
	var opts campaign.Options
	var st *store.Store
	if *storeDir != "" {
		if st, err = store.Open(*storeDir, store.Options{}); err != nil {
			log.Fatal(err)
		}
		cache := campaign.NewCache(0)
		cache.AttachTier(st, nil)
		opts.Cache = cache
	}
	closeStore := func() {
		if st != nil {
			if err := st.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}

	if *jsonOut {
		runJSON(campaign.Task(*taskName), *n, *modelName, *mixed, *seed, opts, closeStore)
		return
	}

	// The paper's built-ins keep their rich interactive reports; every other
	// registered task runs through the campaign record path and prints a
	// generic summary, so new tasks need no ringsim change at all.
	switch *taskName {
	case "coordinate", "discover":
		if st == nil {
			if *taskName == "coordinate" {
				runCoordinate(*n, model, *mixed, *seed)
			} else {
				runDiscover(*n, model, *mixed, *seed)
			}
			return
		}
		fallthrough
	default:
		runGeneric(*taskName, *n, *modelName, *mixed, *seed, opts)
	}
	closeStore()
}

// scenarioFor assembles the campaign scenario a ringsim invocation denotes.
// The task name is lowercased like the model, so the emitted record matches
// a sweep's byte for byte whatever casing was typed.
func scenarioFor(taskName campaign.Task, n int, model string, mixed bool, seed int64) campaign.Scenario {
	return campaign.Scenario{
		Task:           campaign.Task(strings.ToLower(string(taskName))),
		Model:          strings.ToLower(model),
		N:              n,
		IDBound:        4 * n,
		MixedChirality: mixed,
		Seed:           seed,
	}
}

// runJSON executes the scenario through the campaign runner — the identical
// generation, dispatch and verification path a ringfarm sweep or a ringd
// request uses — and prints the record as one JSON line.  A failed record
// still prints (with its error field) but exits nonzero, so scripts can
// branch on the exit status.
func runJSON(taskName campaign.Task, n int, model string, mixed bool, seed int64, opts campaign.Options, closeStore func()) {
	rec := campaign.RunScenario(scenarioFor(taskName, n, model, mixed, seed), opts)
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(rec); err != nil {
		log.Fatal(err)
	}
	closeStore()
	if rec.Status == campaign.StatusFailed {
		os.Exit(1)
	}
}

// runGeneric runs any registry task through the campaign runner and prints a
// human-readable summary of the record, including the task's extra fields.
func runGeneric(taskName string, n int, model string, mixed bool, seed int64, opts campaign.Options) {
	rec := campaign.RunScenario(scenarioFor(campaign.Task(taskName), n, model, mixed, seed), opts)
	switch rec.Status {
	case campaign.StatusFailed:
		log.Fatal(rec.Error)
	case campaign.StatusUnsolvable:
		fmt.Printf("task=%s model=%s n=%d: not solvable in this setting\n", taskName, rec.Model, rec.N)
		return
	}
	fmt.Printf("task=%s model=%s n=%d mixed-orientation=%v\n", taskName, rec.Model, rec.N, mixed)
	fmt.Printf("total rounds: %d (bound: %s)\n", rec.Rounds, rec.BoundStr)
	if rec.LeaderID != 0 {
		fmt.Printf("leader: agent with ID %d\n", rec.LeaderID)
	}
	keys := make([]string, 0, len(rec.Extra))
	for k := range rec.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s: %s\n", k, rec.Extra[k])
	}
	if rec.Cache != "" && rec.Cache != "miss" {
		fmt.Printf("outcome served from the %s cache tier (verified when first computed)\n", rec.Cache)
	} else {
		fmt.Println("outcome verified against the simulator's ground truth")
	}
}

func parseModel(name string) (ringsym.Model, error) {
	switch strings.ToLower(name) {
	case "basic":
		return ringsym.Basic, nil
	case "lazy":
		return ringsym.Lazy, nil
	case "perceptive":
		return ringsym.Perceptive, nil
	default:
		return 0, fmt.Errorf("unknown model %q", name)
	}
}

func buildNetwork(n int, model ringsym.Model, mixed bool, seed int64) *ringsym.Network {
	nw, err := ringsym.RandomNetwork(ringsym.RandomConfig{
		N: n, Model: model, MixedChirality: mixed, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return nw
}

func runCoordinate(n int, model ringsym.Model, mixed bool, seed int64) {
	nw := buildNetwork(n, model, mixed, seed)
	res, err := nw.Coordinate(ringsym.CoordinationOptions{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model=%v n=%d mixed-orientation=%v\n", model, n, mixed)
	fmt.Printf("leader: agent with ID %d\n", res.LeaderID)
	fmt.Printf("total rounds: %d\n", res.Rounds)
	a := res.PerAgent[0]
	fmt.Printf("round breakdown: nontrivial move %d, direction agreement %d, leader election %d\n",
		a.RoundsNontrivial, a.RoundsAgreement, a.RoundsLeader)
}

func runDiscover(n int, model ringsym.Model, mixed bool, seed int64) {
	nw := buildNetwork(n, model, mixed, seed)
	res, err := nw.DiscoverLocations(ringsym.DiscoveryOptions{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model=%v n=%d mixed-orientation=%v\n", model, n, mixed)
	fmt.Printf("total rounds: %d (Lemma 6 lower bound: %d)\n",
		res.Rounds, ringsym.LocationDiscoveryLowerBound(model, n))
	for i, a := range res.PerAgent {
		marker := " "
		if a.IsLeader {
			marker = "*"
		}
		fmt.Printf("%s agent %2d (ID %3d): n=%d, coordination %4d rounds, discovery %4d rounds, map %v\n",
			marker, i, a.ID, a.N, a.RoundsCoordination, a.RoundsDiscovery, shorten(a.Positions))
	}
	fmt.Println("every agent's map verified against the simulator's ground truth")
}

func shorten(v []int64) []int64 {
	if len(v) <= 6 {
		return v
	}
	return v[:6]
}
