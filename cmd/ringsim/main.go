// Command ringsim runs a single scenario of the bouncing-agents model and
// prints what happened: the elected leader, the per-problem round counts and,
// for location discovery, every agent's reconstructed map of the ring.
//
// Usage:
//
//	ringsim -n 16 -model perceptive -mixed -task discover -seed 3
//	ringsim -n 8 -model lazy -task coordinate
//	ringsim -n 8 -task coordinate -json | jq .rounds
//	ringsim -n 6 -task bounce        # dump the collision events of one round
//
// With -json the run is emitted as the machine-readable scenario record of
// the campaign harness (one campaign.Record JSON object, the same shape as a
// records.jsonl line of cmd/ringfarm), so single runs are scriptable exactly
// like sweeps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ringsym"
	"ringsym/internal/campaign"
	"ringsym/internal/netgen"
	"ringsym/internal/physics"
	"ringsym/internal/ring"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ringsim: ")

	n := flag.Int("n", 16, "number of agents (> 4)")
	modelName := flag.String("model", "perceptive", "movement model: basic, lazy or perceptive")
	mixed := flag.Bool("mixed", true, "give agents independent random senses of direction")
	seed := flag.Int64("seed", 1, "seed for the random configuration")
	task := flag.String("task", "discover", "task to run: coordinate, discover or bounce")
	jsonOut := flag.Bool("json", false, "emit the run as a machine-readable campaign record (coordinate/discover only)")
	flag.Parse()

	model, err := parseModel(*modelName)
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		if *task != "coordinate" && *task != "discover" {
			log.Fatalf("-json supports the coordinate and discover tasks, not %q", *task)
		}
		runJSON(campaign.Task(*task), *n, *modelName, *mixed, *seed)
		return
	}

	switch *task {
	case "coordinate":
		runCoordinate(*n, model, *mixed, *seed)
	case "discover":
		runDiscover(*n, model, *mixed, *seed)
	case "bounce":
		runBounce(*n, *seed)
	default:
		log.Fatalf("unknown task %q", *task)
	}
}

// runJSON executes the scenario through the campaign runner — the identical
// generation and verification path a ringfarm sweep uses — and prints the
// record as one JSON line.  A failed record still prints (with its error
// field) but exits nonzero, so scripts can branch on the exit status.
func runJSON(task campaign.Task, n int, model string, mixed bool, seed int64) {
	rec := campaign.RunScenario(campaign.Scenario{
		Task:           task,
		Model:          strings.ToLower(model),
		N:              n,
		IDBound:        4 * n,
		MixedChirality: mixed,
		Seed:           seed,
	}, campaign.Options{})
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(rec); err != nil {
		log.Fatal(err)
	}
	if rec.Status == campaign.StatusFailed {
		os.Exit(1)
	}
}

func parseModel(name string) (ringsym.Model, error) {
	switch strings.ToLower(name) {
	case "basic":
		return ringsym.Basic, nil
	case "lazy":
		return ringsym.Lazy, nil
	case "perceptive":
		return ringsym.Perceptive, nil
	default:
		return 0, fmt.Errorf("unknown model %q", name)
	}
}

func buildNetwork(n int, model ringsym.Model, mixed bool, seed int64) *ringsym.Network {
	nw, err := ringsym.RandomNetwork(ringsym.RandomConfig{
		N: n, Model: model, MixedChirality: mixed, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return nw
}

func runCoordinate(n int, model ringsym.Model, mixed bool, seed int64) {
	nw := buildNetwork(n, model, mixed, seed)
	res, err := nw.Coordinate(ringsym.CoordinationOptions{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model=%v n=%d mixed-orientation=%v\n", model, n, mixed)
	fmt.Printf("leader: agent with ID %d\n", res.LeaderID)
	fmt.Printf("total rounds: %d\n", res.Rounds)
	a := res.PerAgent[0]
	fmt.Printf("round breakdown: nontrivial move %d, direction agreement %d, leader election %d\n",
		a.RoundsNontrivial, a.RoundsAgreement, a.RoundsLeader)
}

func runDiscover(n int, model ringsym.Model, mixed bool, seed int64) {
	nw := buildNetwork(n, model, mixed, seed)
	res, err := nw.DiscoverLocations(ringsym.DiscoveryOptions{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model=%v n=%d mixed-orientation=%v\n", model, n, mixed)
	fmt.Printf("total rounds: %d (Lemma 6 lower bound: %d)\n",
		res.Rounds, ringsym.LocationDiscoveryLowerBound(model, n))
	for i, a := range res.PerAgent {
		marker := " "
		if a.IsLeader {
			marker = "*"
		}
		fmt.Printf("%s agent %2d (ID %3d): n=%d, coordination %4d rounds, discovery %4d rounds, map %v\n",
			marker, i, a.ID, a.N, a.RoundsCoordination, a.RoundsDiscovery, shorten(a.Positions))
	}
	fmt.Println("every agent's map verified against the simulator's ground truth")
}

func runBounce(n int, seed int64) {
	cfg := netgen.MustGenerate(netgen.Options{N: n, Circ: 1 << 10, Seed: seed, AllowSmall: true})
	positions := make([]float64, len(cfg.Positions))
	for i, p := range cfg.Positions {
		positions[i] = float64(p)
	}
	dirs := make([]ring.Direction, n)
	for i := range dirs {
		if i%2 == 0 {
			dirs[i] = ring.Clockwise
		} else {
			dirs[i] = ring.Anticlockwise
		}
	}
	res, err := physics.SimulateRound(float64(cfg.Circ), positions, dirs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event-driven simulation of one round, n=%d, circumference=%d\n", n, cfg.Circ)
	fmt.Println("time,position,agentA,agentB")
	for _, e := range res.Events {
		fmt.Printf("%.2f,%.2f,%d,%d\n", e.Time, e.Pos, e.A, e.B)
	}
	fmt.Printf("# %d collisions in total\n", len(res.Events))
}

func shorten(v []int64) []int64 {
	if len(v) <= 6 {
		return v
	}
	return v[:6]
}
