// Command distinguisher explores the combinatorial objects of Section IV:
// for given universe sizes it reports the minimal prefix of the pseudo-random
// schedule that forms an (N,n)-distinguisher (Definition 20) and checks
// selective families (Definition 35), next to the paper's bounds.
//
// Usage:
//
//	distinguisher -N 12 -n 3 -seed 1
//	distinguisher -selective -N 64 -k 8
package main

import (
	"flag"
	"fmt"
	"log"

	"ringsym/internal/comb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("distinguisher: ")

	universe := flag.Int("N", 12, "universe size N")
	subset := flag.Int("n", 3, "subset size n for the distinguisher check")
	k := flag.Int("k", 8, "selectivity parameter for -selective")
	seed := flag.Int64("seed", 1, "seed of the pseudo-random family")
	selective := flag.Bool("selective", false, "check an (N,k)-selective family instead of a distinguisher")
	flag.Parse()

	if *selective {
		runSelective(*universe, *k, *seed)
		return
	}
	runDistinguisher(*universe, *subset, *seed)
}

func runDistinguisher(universe, subset int, seed int64) {
	if universe > 20 {
		log.Fatalf("the exhaustive distinguisher check enumerates all pairs of %d-subsets; use N <= 20", subset)
	}
	fam, err := comb.NewRandomDistinguisher(universe, 64*subset+64, seed)
	if err != nil {
		log.Fatal(err)
	}
	min := comb.MinimalDistinguisherPrefix(fam, subset)
	fmt.Printf("universe N=%d, subset size n=%d, seed=%d\n", universe, subset, seed)
	if min < 0 {
		fmt.Println("the generated family does not distinguish all pairs; increase its length")
		return
	}
	fmt.Printf("minimal (N,n)-distinguisher prefix of the pseudo-random schedule: %d sets\n", min)
	fmt.Printf("Corollary 29 lower bound  n·log(N/n)/log n  = %.1f\n", comb.DistinguisherLowerBound(universe, subset))
	fmt.Printf("Lemma 43 counting bound   log_(n+1) C(N,n)  = %.1f\n", comb.CountingLowerBound(universe, subset))
}

func runSelective(universe, k int, seed int64) {
	fam, err := comb.NewRandomSelective(universe, k, seed, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pseudo-random (N=%d, k=%d)-selective family: %d sets\n", universe, k, fam.Len())
	fmt.Printf("existence bound  k·log(N/k)  = %.1f\n", comb.SelectiveSizeBound(universe, k))
	if universe <= 24 && k <= 4 {
		fmt.Printf("exhaustive verification: selective = %v\n", comb.IsSelective(fam, k))
	} else {
		fmt.Println("exhaustive verification skipped (too large); spot-checking 1000 random subsets")
		ok := true
		for trial := 0; trial < 1000; trial++ {
			z := randomSubset(universe, k, seed+int64(trial))
			if idx, _ := comb.SelectorIndex(fam, z); idx < 0 {
				ok = false
				fmt.Printf("  no selector for %v\n", z)
			}
		}
		fmt.Printf("spot check passed = %v\n", ok)
	}
}

func randomSubset(universe, k int, seed int64) []int {
	out := make([]int, 0, k)
	used := map[int]bool{}
	x := uint64(seed)*2862933555777941757 + 3037000493
	for len(out) < k {
		x = x*2862933555777941757 + 3037000493
		v := 1 + int(x%uint64(universe))
		if !used[v] {
			used[v] = true
			out = append(out, v)
		}
	}
	return out
}
