// Command benchtables regenerates the evaluation artefacts of the paper:
// Table I, Table II, the reduction figures (Figures 1 and 2), the RingDist
// cost curve behind Figure 3 and the distinguisher-size experiment of
// Section IV.  Measured round counts are printed next to the paper's bounds.
//
// Usage:
//
//	benchtables [-tables] [-figures] [-distinguishers] [-sizes 16,32,64,128] [-seed 1] [-json BENCH_tables.json]
//
// With no selection flags everything is printed.  When the tables are
// generated, the per-cell measurements (setting, observed rounds, theoretical
// bound) are additionally written as machine-readable JSON so that successive
// runs can be compared automatically; -json ” disables the file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"ringsym/internal/eval"
	"ringsym/internal/ring"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtables: ")

	tables := flag.Bool("tables", false, "print Table I and Table II")
	figures := flag.Bool("figures", false, "print the Figure 1/2 reductions and the Figure 3 curve")
	distinguishers := flag.Bool("distinguishers", false, "print the Section IV distinguisher experiment")
	engineBench := flag.Bool("engine", false, "measure engine rounds/sec, single-round vs leap execution")
	schedBench := flag.Bool("sched", false, "A/B the three runtimes: rounds/sec and small-n campaign scenarios/sec for fsm (v3), barrier (v2) and legacy (v1)")
	sizes := flag.String("sizes", "16,32,64,128", "comma-separated network sizes n")
	seed := flag.Int64("seed", 1, "seed for configurations and pseudo-random schedules")
	idFactor := flag.Int("idfactor", 4, "identifier bound N as a multiple of n")
	jsonPath := flag.String("json", "BENCH_tables.json", "write the table measurements as JSON to this file ('' disables)")
	engineJSONPath := flag.String("enginejson", "BENCH_engine.json", "write the engine throughput measurements as JSON to this file ('' disables)")
	schedJSONPath := flag.String("schedjson", "BENCH_sched.json", "write the runtime A/B measurements as JSON to this file ('' disables)")
	schedReps := flag.Int("schedreps", 5, "interleaved repetitions per -sched arm (the median is reported)")
	flag.Parse()

	// -sched is opt-in even in "run everything" mode: its legacy arm replays
	// the whole campaign grid on the v1 rendezvous runtime, which would
	// dominate a default artefact regeneration.
	if !*tables && !*figures && !*distinguishers && !*engineBench && !*schedBench {
		*tables, *figures, *distinguishers, *engineBench = true, true, true, true
	}
	ns, err := parseSizes(*sizes)
	if err != nil {
		log.Fatal(err)
	}
	cfg := eval.SweepConfig{Sizes: ns, IDBoundFactor: *idFactor, Seed: *seed}

	if *tables {
		rows1, err := eval.TableRows(eval.Table1Settings(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.Format("Table I - deterministic solutions in the general setting", rows1))
		rows2, err := eval.TableRows(eval.Table2Settings(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.Format("Table II - deterministic solutions with a common sense of direction", rows2))
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, rows1, rows2); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *figures {
		n := ns[len(ns)/2]
		fig1, err := eval.MeasureReductions(eval.Setting{Model: ring.Lazy}, n, *idFactor*n, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.FormatReductions("Figure 1 - reductions among coordination problems (odd n / lazy / perceptive)", fig1))
		fig2, err := eval.MeasureReductions(eval.Setting{Model: ring.Basic}, n, *idFactor*n, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.FormatReductions("Figure 2 - reductions among coordination problems (basic model, even n)", fig2))
		fig3, err := eval.MeasureRingDist(ns, *idFactor, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.FormatRingDist(fig3))
	}
	if *distinguishers {
		pairs := [][2]int{{8, 2}, {12, 2}, {16, 2}, {10, 3}, {12, 3}}
		samples, err := eval.MeasureDistinguishers(pairs, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.FormatDistinguishers(samples))
	}
	if *engineBench {
		entries, err := measureEngine(ns, *seed)
		if err != nil {
			log.Fatal(err)
		}
		printEngine(entries)
		if *engineJSONPath != "" {
			raw, err := json.MarshalIndent(entries, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*engineJSONPath, append(raw, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *schedBench {
		entries, err := eval.MeasureSched(eval.SchedConfig{Seed: *seed, Reps: *schedReps})
		if err != nil {
			log.Fatal(err)
		}
		printSched(entries)
		if *schedJSONPath != "" {
			raw, err := json.MarshalIndent(entries, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*schedJSONPath, append(raw, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// printSched renders the runtime A/B table: per-round sweep throughput and
// whole-scenario campaign throughput for the v3/v2/v1 runtimes, with each
// non-barrier arm's speedup over the v2 barrier baseline.
func printSched(entries []eval.SchedEntry) {
	fmt.Println("Runtime A/B - fsm (v3) vs barrier (v2) vs legacy (v1), interleaved medians")
	fmt.Println()
	fmt.Println("| workload | runtime |    n | scenarios |        value | unit          | vs barrier |")
	fmt.Println("|----------|---------|-----:|----------:|-------------:|---------------|-----------:|")
	for _, e := range entries {
		n, sc, speedup := "", "", ""
		if e.N > 0 {
			n = fmt.Sprintf("%d", e.N)
		}
		if e.Scenarios > 0 {
			sc = fmt.Sprintf("%d", e.Scenarios)
		}
		if e.SpeedupVsBarrier > 0 {
			speedup = fmt.Sprintf("%.2fx", e.SpeedupVsBarrier)
		}
		fmt.Printf("| %-8s | %-7s | %4s | %9s | %12.1f | %-13s | %10s |\n",
			e.Workload, e.Runtime, n, sc, e.Value, e.Unit, speedup)
	}
	fmt.Println()
}

// engineEntry is one engine throughput measurement: a constant-direction
// sweep workload on n agents driven either one round per barrier crossing
// ("single", the v2 per-round path) or in leap batches ("leap").  The file
// BENCH_engine.json tracks the repo's raw engine throughput across
// revisions, next to the round-count trends of BENCH_tables.json.
type engineEntry struct {
	N            int     `json:"n"`
	Mode         string  `json:"mode"` // "single" or "leap"
	Rounds       int     `json:"rounds"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// Speedup is leap/single for the same n (set on leap entries only).
	Speedup float64 `json:"speedup,omitempty"`
}

// measureEngine measures single-round vs leap throughput per network size,
// on the shared constant-direction sweep workload (eval.EngineSweepProtocol —
// the same workload the BenchmarkEngineLeap* pair drives).
func measureEngine(ns []int, seed int64) ([]engineEntry, error) {
	const (
		singleRounds = 30_000
		leapRounds   = 1_000_000
		leapBatch    = 512
	)
	var entries []engineEntry
	for _, n := range ns {
		single, err := eval.MeasureEngineSweep(n, seed, singleRounds, 1)
		if err != nil {
			return nil, err
		}
		leap, err := eval.MeasureEngineSweep(n, seed, leapRounds, leapBatch)
		if err != nil {
			return nil, err
		}
		entries = append(entries,
			engineEntry{N: n, Mode: "single", Rounds: singleRounds, RoundsPerSec: single},
			engineEntry{N: n, Mode: "leap", Rounds: leapRounds, RoundsPerSec: leap, Speedup: leap / single},
		)
	}
	return entries, nil
}

func printEngine(entries []engineEntry) {
	fmt.Println("Engine throughput - constant-direction sweep, single-round vs leap execution")
	fmt.Println()
	fmt.Println("|    n | mode   |   rounds/sec | speedup |")
	fmt.Println("|-----:|--------|-------------:|--------:|")
	for _, e := range entries {
		speedup := ""
		if e.Speedup > 0 {
			speedup = fmt.Sprintf("%.1fx", e.Speedup)
		}
		fmt.Printf("| %4d | %-6s | %12.0f | %7s |\n", e.N, e.Mode, e.RoundsPerSec, speedup)
	}
	fmt.Println()
}

// tableEntry is one measured cell in the machine-readable export.
type tableEntry struct {
	Table       string  `json:"table"`
	Setting     string  `json:"setting"`
	Model       string  `json:"model"`
	OddN        bool    `json:"odd_n"`
	CommonSense bool    `json:"common_sense"`
	Problem     string  `json:"problem"`
	N           int     `json:"n"`
	IDBound     int     `json:"id_bound"`
	Rounds      int     `json:"rounds"`
	Bound       float64 `json:"bound"`
	BoundStr    string  `json:"bound_str"`
	Solvable    bool    `json:"solvable"`
}

// writeJSON exports the Table I/II measurements for trend tracking across
// runs and revisions.
func writeJSON(path string, rows1, rows2 []eval.Measurement) error {
	var entries []tableEntry
	add := func(table string, rows []eval.Measurement) {
		for _, m := range rows {
			entries = append(entries, tableEntry{
				Table:       table,
				Setting:     m.Setting.Name,
				Model:       m.Setting.Model.String(),
				OddN:        m.Setting.OddN,
				CommonSense: m.Setting.CommonSense,
				Problem:     string(m.Problem),
				N:           m.N,
				IDBound:     m.IDBound,
				Rounds:      m.Rounds,
				Bound:       m.Bound,
				BoundStr:    m.BoundStr,
				Solvable:    m.Solvable,
			})
		}
	}
	add("I", rows1)
	add("II", rows2)
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 5 {
			return nil, fmt.Errorf("invalid size %q (need integers >= 5)", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
