// Command benchtables regenerates the evaluation artefacts of the paper:
// Table I, Table II, the reduction figures (Figures 1 and 2), the RingDist
// cost curve behind Figure 3 and the distinguisher-size experiment of
// Section IV.  Measured round counts are printed next to the paper's bounds.
//
// Usage:
//
//	benchtables [-tables] [-figures] [-distinguishers] [-sizes 16,32,64,128] [-seed 1]
//
// With no selection flags everything is printed.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"ringsym/internal/eval"
	"ringsym/internal/ring"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtables: ")

	tables := flag.Bool("tables", false, "print Table I and Table II")
	figures := flag.Bool("figures", false, "print the Figure 1/2 reductions and the Figure 3 curve")
	distinguishers := flag.Bool("distinguishers", false, "print the Section IV distinguisher experiment")
	sizes := flag.String("sizes", "16,32,64,128", "comma-separated network sizes n")
	seed := flag.Int64("seed", 1, "seed for configurations and pseudo-random schedules")
	idFactor := flag.Int("idfactor", 4, "identifier bound N as a multiple of n")
	flag.Parse()

	if !*tables && !*figures && !*distinguishers {
		*tables, *figures, *distinguishers = true, true, true
	}
	ns, err := parseSizes(*sizes)
	if err != nil {
		log.Fatal(err)
	}
	cfg := eval.SweepConfig{Sizes: ns, IDBoundFactor: *idFactor, Seed: *seed}

	if *tables {
		rows, err := eval.TableRows(eval.Table1Settings(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.Format("Table I - deterministic solutions in the general setting", rows))
		rows, err = eval.TableRows(eval.Table2Settings(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.Format("Table II - deterministic solutions with a common sense of direction", rows))
	}
	if *figures {
		n := ns[len(ns)/2]
		fig1, err := eval.MeasureReductions(eval.Setting{Model: ring.Lazy}, n, *idFactor*n, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.FormatReductions("Figure 1 - reductions among coordination problems (odd n / lazy / perceptive)", fig1))
		fig2, err := eval.MeasureReductions(eval.Setting{Model: ring.Basic}, n, *idFactor*n, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.FormatReductions("Figure 2 - reductions among coordination problems (basic model, even n)", fig2))
		fig3, err := eval.MeasureRingDist(ns, *idFactor, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.FormatRingDist(fig3))
	}
	if *distinguishers {
		pairs := [][2]int{{8, 2}, {12, 2}, {16, 2}, {10, 3}, {12, 3}}
		samples, err := eval.MeasureDistinguishers(pairs, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.FormatDistinguishers(samples))
	}
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 5 {
			return nil, fmt.Errorf("invalid size %q (need integers >= 5)", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
