package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"ringsym/internal/campaign"
	"ringsym/internal/fleet"
)

// runFleet drives the sweep across a ringd roster instead of the local pool:
// internal/fleet expands the matrix once, leases index ranges to the
// workers, and streams the merged records back in index order, so the
// artefacts this writes are byte-identical to runCampaign's for the same
// spec.  The summary uses the cache columns exactly when the workers did —
// cache annotations travel in the records, so a roster of cached daemons
// yields the same artefact shape as a local -cache on sweep.
func runFleet(m campaign.Matrix, total int, roster []string, lease int, listen, outDir string, quiet, top bool, eventsPath string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	jsonlF, err := os.Create(filepath.Join(outDir, "records.jsonl"))
	if err != nil {
		return err
	}
	defer jsonlF.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if eventsPath != "" {
		stopLog, err := startEventLog(ctx, eventsPath)
		if err != nil {
			return err
		}
		defer func() {
			if err := stopLog(); err != nil {
				log.Printf("event log: %v", err)
			}
		}()
	}
	stopTop := func() {}
	if top {
		quiet = true
		stopTop = startLocalTop(ctx)
		defer stopTop()
	}

	agg := campaign.NewAggregator()
	cached := false
	start := time.Now()
	lastProgress := time.Time{}
	coord, err := fleet.New(m, fleet.Options{
		Workers:   roster,
		LeaseSize: lease,
		Records:   jsonlF,
		OnRecord: func(rec campaign.Record) {
			agg.Add(rec)
			if rec.Cache != "" {
				cached = true
			}
			if !quiet && time.Since(lastProgress) > 100*time.Millisecond {
				lastProgress = time.Now()
				elapsed := time.Since(start).Seconds()
				fmt.Fprintf(os.Stderr, "\rringfarm: %d/%d merged  ok=%d failed=%d unsolvable=%d  %.1f scen/s ",
					agg.Total, total, agg.OK, agg.Failed, agg.Unsolvable, float64(agg.Total)/elapsed)
			}
		},
	})
	if err != nil {
		return err
	}

	if listen != "" {
		ctrl := &http.Server{Addr: listen, Handler: coord.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := ctrl.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("fleet control plane: %v", err)
			}
		}()
		defer ctrl.Close()
	}

	fmt.Fprintf(os.Stderr, "ringfarm: running %d scenarios on a fleet of %d workers\n", total, len(roster))
	res, runErr := coord.Run(ctx)
	if !quiet {
		fmt.Fprintln(os.Stderr)
	}
	if runErr != nil {
		return fmt.Errorf("fleet sweep interrupted after %d of %d scenarios", res.Merged, res.Total)
	}
	if err := jsonlF.Sync(); err != nil {
		return err
	}
	stopTop()

	rows := agg.Summary()
	csvF, err := os.Create(filepath.Join(outDir, "summary.csv"))
	if err != nil {
		return err
	}
	defer csvF.Close()
	var md string
	if cached {
		err = campaign.WriteSummaryCSVCache(csvF, rows)
		md = campaign.FormatSummaryMarkdownCache(rows)
	} else {
		err = campaign.WriteSummaryCSV(csvF, rows)
		md = campaign.FormatSummaryMarkdown(rows)
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "summary.md"), []byte(md), 0o644); err != nil {
		return err
	}

	elapsed := time.Since(start)
	fmt.Printf("%s\n", md)
	fmt.Printf("%d scenarios in %v (%.1f scenarios/sec) across %d workers: ok=%d failed=%d unsolvable=%d\n",
		res.Merged, elapsed.Round(time.Millisecond), float64(res.Merged)/elapsed.Seconds(),
		len(res.Workers), agg.OK, agg.Failed, agg.Unsolvable)
	for _, w := range res.Workers {
		state := "up"
		if !w.Up {
			state = "down"
		}
		fmt.Printf("  worker %s: %d records, %d leases, %d failed attempts (%s)\n",
			w.Addr, w.Records, w.Leases, w.Fails, state)
	}
	fmt.Printf("artefacts: %s\n", outDir)
	if len(res.Quarantined) > 0 {
		for _, q := range res.Quarantined {
			log.Printf("quarantined: scenario indices [%d, %d) abandoned after repeated lease failures", q.Lo, q.Hi)
		}
		return fmt.Errorf("%d index ranges quarantined; records.jsonl is incomplete", len(res.Quarantined))
	}
	if agg.Failed > 0 {
		return fmt.Errorf("%d scenarios failed (see %s)", agg.Failed, filepath.Join(outDir, "records.jsonl"))
	}
	return nil
}
