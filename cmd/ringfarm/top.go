package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"time"

	"ringsym/internal/obs"
)

// topWindowSeconds is the sliding window of the rate and latency statistics:
// long enough to smooth scheduling jitter, short enough to track a sweep's
// phase changes.
const topWindowSeconds = 10

// topView folds a structured-event stream (internal/obs) into the statistics
// the live display renders: completion progress and ETA, windowed throughput
// with exact wall-time percentiles, cache service ratio, per-task breakdown
// and the engine's rounds-per-crossing.  It is fed and rendered from one
// goroutine; callers that consume a bus concurrently serialise around it.
type topView struct {
	total      int
	done       int
	failed     int
	unsolvable int
	perTask    map[string]int

	cacheMisses, cacheHits, cacheDedups int

	// Cumulative engine totals from the latest engine.leap sample, plus a
	// window of per-sample round deltas for the live rounds/sec.
	rounds, crossings int64
	roundsWin         *obs.Window

	// finishWin holds scenario completions; the sample value is the
	// scenario's wall time in microseconds, so Rate is scenarios/sec and the
	// percentiles are wall-time percentiles.
	finishWin *obs.Window

	// Per-worker rows from fleet.* events (fleet sweeps only; empty and
	// unrendered for local ones).  Lease ranges are [Lo, Hi), and a steal
	// shrinks the victim's Hi before its lease.done is emitted, so summing
	// Hi-Lo over done leases counts each worker's records exactly.
	workers     map[string]*workerRow
	quarantined int

	firstNanos, lastNanos int64
}

// workerRow is one fleet worker's line in the live view.
type workerRow struct {
	up      bool
	records int
	leases  int
	fails   int
	steals  int
}

func newTopView() *topView {
	return &topView{
		perTask:   make(map[string]int),
		roundsWin: obs.NewWindow(topWindowSeconds),
		finishWin: obs.NewWindow(topWindowSeconds),
		workers:   make(map[string]*workerRow),
	}
}

// worker returns (creating if needed) the row for a fleet worker.
func (v *topView) worker(addr string) *workerRow {
	w, ok := v.workers[addr]
	if !ok {
		w = &workerRow{}
		v.workers[addr] = w
	}
	return w
}

// observe folds one event into the view.
func (v *topView) observe(ev obs.Event) {
	if v.firstNanos == 0 {
		v.firstNanos = ev.Nanos
	}
	if ev.Nanos > v.lastNanos {
		v.lastNanos = ev.Nanos
	}
	switch ev.Type {
	case obs.CampaignStart:
		v.total = ev.Total
	case obs.CampaignFinish:
		v.total = ev.Total
	case obs.ScenarioFinish, obs.ScenarioError:
		v.done++
		v.perTask[ev.Task]++
		switch {
		case ev.Type == obs.ScenarioError:
			v.failed++
		case ev.Status == "unsolvable":
			v.unsolvable++
		}
		switch ev.Cache {
		case "miss":
			v.cacheMisses++
		case "hit":
			v.cacheHits++
		case "dedup":
			v.cacheDedups++
		}
		v.finishWin.Add(ev.Nanos, int(ev.WallMicros))
	case obs.FleetWorkerUp:
		v.worker(ev.Worker).up = true
	case obs.FleetWorkerDown:
		v.worker(ev.Worker).up = false
	case obs.FleetLeaseDone:
		w := v.worker(ev.Worker)
		w.leases++
		w.records += ev.Hi - ev.Lo
	case obs.FleetLeaseFail:
		v.worker(ev.Worker).fails++
	case obs.FleetLeaseSteal:
		v.worker(ev.Worker).steals++
	case obs.FleetLeaseQuarantine:
		v.quarantined += ev.Hi - ev.Lo
	case obs.EngineLeap:
		// Samples carry cumulative totals; the delta between consecutive
		// samples is the work done since, windowed for the live rate.
		if v.rounds > 0 && ev.Rounds > v.rounds {
			v.roundsWin.Add(ev.Nanos, int(ev.Rounds-v.rounds))
		}
		if ev.Rounds > v.rounds {
			v.rounds = ev.Rounds
		}
		if ev.Crossings > v.crossings {
			v.crossings = ev.Crossings
		}
	}
}

// render writes one frame: a cleared screen followed by the current
// statistics.  The time base is the event stream's own monotonic clock, so a
// remote daemon's frame is consistent with the daemon's timestamps.
func (v *topView) render(w io.Writer, source string) {
	now := v.lastNanos
	fin := v.finishWin.Stats(now)
	rw := v.roundsWin.Stats(now)

	var b strings.Builder
	b.WriteString("\x1b[2J\x1b[H") // clear screen, home cursor
	fmt.Fprintf(&b, "ringfarm top — %s\n\n", source)

	progress := fmt.Sprintf("%d scenarios done", v.done)
	if v.total > 0 {
		progress = fmt.Sprintf("%d/%d scenarios done (%.0f%%)", v.done, v.total, 100*float64(v.done)/float64(v.total))
		if left := v.total - v.done; left > 0 && fin.Rate > 0 {
			progress += fmt.Sprintf("  ETA %s", (time.Duration(float64(left)/fin.Rate*1e9) * time.Nanosecond).Round(time.Second))
		}
	}
	fmt.Fprintf(&b, "  %s  ok=%d failed=%d unsolvable=%d\n", progress, v.done-v.failed-v.unsolvable, v.failed, v.unsolvable)

	fmt.Fprintf(&b, "  throughput  %.1f scen/s (last %ds)   wall p50 %s  p90 %s  p99 %s\n",
		fin.Rate, topWindowSeconds,
		microsDuration(fin.P50), microsDuration(fin.P90), microsDuration(fin.P99))

	if served := v.cacheHits + v.cacheDedups; served+v.cacheMisses > 0 {
		fmt.Fprintf(&b, "  cache       %.1f%% served from symmetry (miss %d, hit %d, dedup %d)\n",
			100*float64(served)/float64(served+v.cacheMisses), v.cacheMisses, v.cacheHits, v.cacheDedups)
	}

	if v.crossings > 0 {
		fmt.Fprintf(&b, "  engine      %s rounds/s   %s rounds / %s crossings (%.1f rounds per crossing)\n",
			humanCount(float64(rw.Sum)/topWindowSeconds),
			humanCount(float64(v.rounds)), humanCount(float64(v.crossings)),
			float64(v.rounds)/float64(v.crossings))
	}

	if len(v.workers) > 0 {
		addrs := make([]string, 0, len(v.workers))
		for a := range v.workers {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs)
		b.WriteString("\n  workers\n")
		for _, a := range addrs {
			wr := v.workers[a]
			state := "up"
			if !wr.up {
				state = "DOWN"
			}
			fmt.Fprintf(&b, "    %-28s %-4s  %6d records  %3d leases  %2d fails  %2d stolen-from\n",
				a, state, wr.records, wr.leases, wr.fails, wr.steals)
		}
		if v.quarantined > 0 {
			fmt.Fprintf(&b, "    QUARANTINED: %d scenario indices abandoned\n", v.quarantined)
		}
	}

	if len(v.perTask) > 0 {
		tasks := make([]string, 0, len(v.perTask))
		for t := range v.perTask {
			tasks = append(tasks, t)
		}
		sort.Strings(tasks)
		b.WriteString("  tasks      ")
		for _, t := range tasks {
			fmt.Fprintf(&b, " %s=%d", t, v.perTask[t])
		}
		b.WriteString("\n")
	}
	io.WriteString(w, b.String())
}

// microsDuration renders a microsecond sample as a rounded duration.
func microsDuration(us int) string {
	d := time.Duration(us) * time.Microsecond
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.String()
}

// humanCount renders a count with a k/M/G suffix.
func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.0f", v)
}

// topRefresh is the display redraw cadence.
const topRefresh = 500 * time.Millisecond

// runTop is the `ringfarm top` subcommand: it attaches to a running ringd's
// GET /v1/events NDJSON stream and renders the live view until interrupted.
func runTop(args []string) error {
	fs := flag.NewFlagSet("ringfarm top", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8080", "base URL of the ringd daemon to watch")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ringfarm top [-url http://host:port]\n\nwatch a ringd daemon's live event stream\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(*url, "/")+"/v1/events?level=debug", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", req.URL, resp.Status)
	}

	events := make(chan obs.Event, 256)
	scanErr := make(chan error, 1)
	go func() {
		defer close(events)
		scan := bufio.NewScanner(resp.Body)
		for scan.Scan() {
			var ev obs.Event
			if err := json.Unmarshal(scan.Bytes(), &ev); err != nil {
				scanErr <- fmt.Errorf("bad event line %q: %w", scan.Text(), err)
				return
			}
			select {
			case events <- ev:
			case <-ctx.Done():
				return
			}
		}
		scanErr <- scan.Err()
	}()

	view := newTopView()
	ticker := time.NewTicker(topRefresh)
	defer ticker.Stop()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				view.render(os.Stdout, *url)
				select {
				case err := <-scanErr:
					if err != nil && ctx.Err() == nil {
						return err
					}
				default:
				}
				if ctx.Err() != nil {
					return nil
				}
				return fmt.Errorf("event stream from %s ended", *url)
			}
			view.observe(ev)
		case <-ticker.C:
			view.render(os.Stdout, *url)
		case <-ctx.Done():
			return nil
		}
	}
}

// startLocalTop renders the live view from the in-process event bus while a
// local sweep runs (the -top flag).  The returned stop function (idempotent —
// the caller both defers it and invokes it before printing the summary)
// detaches the subscription and draws a final frame, leaving the cursor below
// it for the summary output that follows.
func startLocalTop(ctx context.Context) (stop func()) {
	sub := obs.Default.Subscribe(obs.SubOptions{Buffer: 1 << 14})
	view := newTopView()
	done := make(chan struct{})
	loopCtx, cancel := context.WithCancel(ctx)
	go func() {
		defer close(done)
		ticker := time.NewTicker(topRefresh)
		defer ticker.Stop()
		for {
			ev, err := sub.Next(loopCtx)
			if err != nil {
				return
			}
			view.observe(ev)
			select {
			case <-ticker.C:
				view.render(os.Stderr, "local sweep")
			default:
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			<-done
			// Drain what the loop had not consumed, then draw the final frame.
			for {
				ev, ok := sub.TryNext()
				if !ok {
					break
				}
				view.observe(ev)
			}
			sub.Close()
			view.render(os.Stderr, "local sweep")
			fmt.Fprintln(os.Stderr)
		})
	}
}

// startEventLog streams every bus event to an NDJSON file (the -events flag):
// the same wire format GET /v1/events serves, usable as a durable trace of a
// sweep.  The returned stop function drains the subscription, flushes and
// closes the file, and reports how many events overflowed the sink's buffer.
func startEventLog(ctx context.Context, path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	sub := obs.Default.Subscribe(obs.SubOptions{Buffer: 1 << 16})
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	done := make(chan error, 1)
	loopCtx, cancel := context.WithCancel(ctx)
	go func() {
		for {
			ev, err := sub.Next(loopCtx)
			if err != nil {
				done <- nil
				return
			}
			if err := enc.Encode(ev); err != nil {
				done <- err
				return
			}
			// Flush per event: the log must be tail-able while the sweep
			// runs (CI watches it to time a mid-sweep worker kill), and the
			// bounded subscription already decouples us from the emitters,
			// so buffering here buys nothing but staleness.
			if err := bw.Flush(); err != nil {
				done <- err
				return
			}
		}
	}()
	return func() error {
		cancel()
		werr := <-done
		for {
			ev, ok := sub.TryNext()
			if !ok {
				break
			}
			if err := enc.Encode(ev); err != nil && werr == nil {
				werr = err
			}
		}
		sub.Close()
		if dropped := sub.Dropped(); dropped > 0 {
			fmt.Fprintf(os.Stderr, "ringfarm: event log dropped %d events (sink slower than the sweep)\n", dropped)
		}
		if err := bw.Flush(); err != nil && werr == nil {
			werr = err
		}
		if err := f.Close(); err != nil && werr == nil {
			werr = err
		}
		return werr
	}, nil
}
