// Command ringfarm runs large parallel campaigns of ring-network scenarios:
// it expands a declarative scenario matrix (from flags or a JSON spec file),
// executes it on a worker pool sized to the machine, and writes three
// artefacts — a per-scenario JSONL record stream, a per-setting CSV summary
// and a Markdown summary — all byte-identical across repeated runs of the
// same spec.  A campaign can be split across invocations (or machines) with
// -shard i/m; the shards are contiguous, so concatenating the JSONL exports
// of shards 0..m-1 reproduces the unsharded export exactly.
//
// Usage:
//
//	ringfarm -sizes 8,16,32 -seeds 1:5 -out sweep/
//	ringfarm -models perceptive -tasks discover -sizes 64 -seeds 1:100
//	ringfarm -spec sweep.json -shard 0/4 -out sweep-shard0/
//	ringfarm -sizes 16 -dryrun          # list the scenarios and exit
//	ringfarm -sizes 16 -phases 0:7 -reflect -cache on
//	ringfarm -sizes 16 -cache on -store results.store
//	ringfarm -sizes 32 -seeds 1:50 -top          # live top view while running
//	ringfarm -sizes 16 -events sweep.events.ndjson
//	ringfarm top -url http://localhost:8080      # watch a running ringd
//	ringfarm -workers host1:8080,host2:8080 -spec sweep.json  # fleet mode
//
// The live progress line reports throughput, engine rounds/sec and (for
// cached sweeps) the symmetry dedup ratio; -quiet suppresses it, -top
// replaces it with a full live view fed by the structured-event bus
// (internal/obs), and `ringfarm top` renders the same view for a remote
// ringd daemon.  -events captures the sweep's event stream to an NDJSON
// file in the exact wire format ringd's GET /v1/events serves.
//
// With -cache on (or -cache <capacity>), scenario outcomes are memoised
// under their canonical symmetry key (internal/canon): rotations,
// reflections and frame translations of one ring — such as the variants a
// -phases/-reflect sweep enumerates — are computed once and the summary
// artefacts gain per-setting miss/hit/dedup columns.  The default -cache off
// keeps the artefacts byte-identical to cache-less builds.  Adding
// -store <dir> backs the cache with the persistent result store of
// internal/store — the same directory a ringd -store daemon uses — so a
// repeated sweep is served from disk instead of recomputed.
//
// A spec file is the JSON form of the matrix, e.g.:
//
//	{"models": ["basic", "lazy"], "sizes": [16, 32], "seeds": [1, 2, 3],
//	 "parities": ["odd", "even"], "chirality": ["mixed", "common"],
//	 "common_sense": [false, true], "tasks": ["coordinate", "discover"]}
//
// Fleet mode: when -workers is a comma-separated roster of ringd base URLs
// instead of a pool size, the sweep is coordinated across those daemons by
// internal/fleet — the index space is split into lease ranges, dead or
// straggling workers are re-leased (visible as fleet.* events in -events and
// as per-worker rows in -top), and the merged artefacts are byte-identical
// to a local run of the same spec.  -lease overrides the lease size and
// -fleet-listen additionally serves the coordinator's join/heartbeat control
// plane for ringd -join workers.
//
// Specs are decoded strictly: a typo'd axis name is an error, not a silent
// fallback to the defaults.  The tasks axis accepts any task registered in
// internal/task (see ringsim -tasks for the catalogue, or GET /v1/tasks on
// ringd); it defaults to the tasks the paper states bounds for —
// coordinate and discover.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ringsym/internal/campaign"
	"ringsym/internal/engine"
	"ringsym/internal/fleet"
	"ringsym/internal/store"
	"ringsym/internal/task"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ringfarm: ")

	// `ringfarm top` is a subcommand with its own flags: a live view over a
	// running ringd daemon's /v1/events stream.
	if len(os.Args) > 1 && os.Args[1] == "top" {
		if err := runTop(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}

	spec := flag.String("spec", "", "JSON sweep-spec file (overrides the matrix flags)")
	tasks := flag.String("tasks", "", "comma-separated registry tasks: "+strings.Join(task.Names(), ",")+" (default: the paper-bound tasks)")
	models := flag.String("models", "", "comma-separated models: basic,lazy,perceptive (default all)")
	parities := flag.String("parities", "", "comma-separated parities: odd,even (default both)")
	chirality := flag.String("chirality", "", "comma-separated chirality regimes: mixed,common (default both)")
	commonSense := flag.String("commonsense", "", "comma-separated common-sense flags: false,true (default false)")
	sizes := flag.String("sizes", "", "comma-separated network sizes n (default 16,32)")
	seeds := flag.String("seeds", "", "seeds, as a list 1,2,3 or a range 1:100 (default 1)")
	phases := flag.String("phases", "", "ring-rotation phases, as a list 0,1,2 or a range 0:7 (default 0)")
	reflect := flag.Bool("reflect", false, "also sweep the mirrored variant of every scenario")
	idFactor := flag.Int("idfactor", 0, "identifier bound N as a multiple of n (default 4)")
	shard := flag.String("shard", "", "run only shard i/m of the campaign (e.g. 0/4)")
	workersFlag := flag.String("workers", "", "local worker-pool size (default GOMAXPROCS), or a comma-separated ringd roster host1:8080,host2:8080 to run the sweep on a fleet")
	lease := flag.Int("lease", 0, "fleet mode: scenario indices per lease (default: auto, total/(4*workers))")
	fleetListen := flag.String("fleet-listen", "", "fleet mode: serve the coordinator control plane (worker join/heartbeat) on this address")
	cacheFlag := flag.String("cache", "off", "memoise outcomes under their canonical symmetry key: off, on, or a capacity in entries")
	storeDir := flag.String("store", "", "back the cache with the on-disk result store in this directory (shared with ringd -store); requires -cache")
	out := flag.String("out", "ringfarm-out", "output directory for records.jsonl, summary.csv, summary.md")
	dryrun := flag.Bool("dryrun", false, "print the scenario list and exit without running")
	quiet := flag.Bool("quiet", false, "suppress the live progress line on stderr")
	events := flag.String("events", "", "also write the sweep's structured events (internal/obs) to this NDJSON file")
	top := flag.Bool("top", false, "render the live top view on stderr instead of the one-line progress ticker")
	flag.Parse()

	// Validate flags up front, before any expansion or execution, so a bad
	// invocation fails with a usage message instead of a downstream panic or
	// a silently empty sweep.
	i, m, err := campaign.ParseShard(*shard)
	if err != nil {
		usageError(err)
	}
	// -workers is overloaded: a bare integer sizes the local pool, anything
	// else is a fleet roster (validated by fleet.ParseWorkers up front).
	workers, roster := 0, []string(nil)
	if *workersFlag != "" {
		if n, err := strconv.Atoi(*workersFlag); err == nil {
			workers = n
		} else if roster, err = fleet.ParseWorkers(*workersFlag); err != nil {
			usageError(err)
		}
	}
	if workers < 0 {
		usageError(fmt.Errorf("invalid -workers %d (must be >= 0; 0 means GOMAXPROCS)", workers))
	}
	if *lease < 0 {
		usageError(fmt.Errorf("invalid -lease %d (must be >= 0; 0 means automatic sizing)", *lease))
	}
	// Fleet mode: a worker roster, a join listener for dynamic workers
	// (ringd -join), or both.
	fleetMode := roster != nil || *fleetListen != ""
	if !fleetMode && *lease > 0 {
		usageError(fmt.Errorf("-lease is only meaningful in fleet mode (-workers roster or -fleet-listen)"))
	}
	if *idFactor < 0 {
		usageError(fmt.Errorf("invalid -idfactor %d (must be >= 0; 0 means the default of 4)", *idFactor))
	}
	cache, err := campaign.ParseCacheFlag(*cacheFlag)
	if err != nil {
		usageError(err)
	}
	matrix, err := buildMatrix(*spec, *tasks, *models, *parities, *chirality, *commonSense, *sizes, *seeds, *phases, *reflect, *idFactor)
	if err != nil {
		usageError(err)
	}
	scenarios, err := matrix.Expand()
	if err != nil {
		usageError(err)
	}
	total := len(scenarios)
	if fleetMode {
		// Fleet mode: the matrix is dispatched to remote ringd workers in
		// lease ranges; local-execution flags make no sense here.
		if *shard != "" {
			usageError(fmt.Errorf("-shard cannot combine with a fleet roster: the coordinator leases the whole index space itself"))
		}
		if *cacheFlag != "off" {
			usageError(fmt.Errorf("-cache is decided by each ringd worker (its own -cache flag), not by the fleet coordinator"))
		}
		if *storeDir != "" {
			usageError(fmt.Errorf("-store is decided by each ringd worker (its own -store flag), not by the fleet coordinator"))
		}
		if *dryrun {
			for _, sc := range scenarios {
				fmt.Printf("%6d  %s\n", sc.Index, sc.Key())
			}
			fmt.Printf("%d scenarios across %d workers\n", total, len(roster))
			return
		}
		if err := runFleet(matrix, total, roster, *lease, *fleetListen, *out, *quiet, *top, *events); err != nil {
			log.Fatal(err)
		}
		return
	}
	scenarios, err = campaign.Shard(scenarios, i, m)
	if err != nil {
		usageError(err)
	}
	if len(scenarios) == 0 {
		log.Printf("warning: shard %d/%d selects 0 of %d scenarios (more shards than scenarios?)", i, m, total)
	}
	if *dryrun {
		for _, sc := range scenarios {
			fmt.Printf("%6d  %s\n", sc.Index, sc.Key())
		}
		fmt.Printf("%d scenarios (shard %d/%d of %d)\n", len(scenarios), i, m, total)
		return
	}
	// The store opens after the dryrun exit so listing scenarios never
	// creates (or locks) a store directory.
	var st *store.Store
	if *storeDir != "" {
		if cache == nil {
			usageError(fmt.Errorf("-store requires the cache (the store is its second tier); add -cache on"))
		}
		if st, err = store.Open(*storeDir, store.Options{}); err != nil {
			log.Fatal(err)
		}
		cache.AttachTier(st, nil)
		log.Printf("store: %s (%d records on disk)", *storeDir, st.Len())
	}
	err = runCampaign(scenarios, i, m, total, workers, *out, *quiet, *top, *events, cache)
	if st != nil {
		if cerr := st.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		log.Fatal(err)
	}
}

// usageError prints the flag error together with the usage text and exits
// with the conventional bad-usage status.
func usageError(err error) {
	fmt.Fprintf(os.Stderr, "ringfarm: %v\n\n", err)
	flag.Usage()
	os.Exit(2)
}

func runCampaign(scenarios []campaign.Scenario, shardI, shardM, total, workers int, outDir string, quiet, top bool, eventsPath string, cache *campaign.Cache) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	jsonlF, err := os.Create(filepath.Join(outDir, "records.jsonl"))
	if err != nil {
		return err
	}
	defer jsonlF.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Optional event consumers attach BEFORE the run so the campaign.start
	// event is theirs too; with neither flag the bus has no subscriber and
	// every emit site stays a single atomic load.
	if eventsPath != "" {
		stopLog, err := startEventLog(ctx, eventsPath)
		if err != nil {
			return err
		}
		defer func() {
			if err := stopLog(); err != nil {
				log.Printf("event log: %v", err)
			}
		}()
	}
	stopTop := func() {}
	if top {
		quiet = true // the top view replaces the one-line ticker
		stopTop = startLocalTop(ctx)
		defer stopTop() // idempotent; also called before the summary prints
	}

	fmt.Fprintf(os.Stderr, "ringfarm: running %d scenarios (shard %d/%d of %d) on %d workers\n",
		len(scenarios), shardI, shardM, total, effectiveWorkers(workers, len(scenarios)))
	writer := campaign.NewOrderedWriter(jsonlF, scenarios)
	agg := campaign.NewAggregator()
	start := time.Now()
	engStart := engine.CounterSnapshot()
	lastProgress := time.Time{}
	for rec := range campaign.Run(ctx, scenarios, campaign.Options{Workers: workers, Cache: cache}) {
		if err := writer.Add(rec); err != nil {
			return err
		}
		agg.Add(rec)
		if !quiet && time.Since(lastProgress) > 100*time.Millisecond {
			lastProgress = time.Now()
			elapsed := time.Since(start).Seconds()
			line := fmt.Sprintf("\rringfarm: %d/%d done  ok=%d failed=%d unsolvable=%d  %.1f scen/s",
				agg.Total, len(scenarios), agg.OK, agg.Failed, agg.Unsolvable,
				float64(agg.Total)/elapsed)
			eng := engine.CounterSnapshot()
			line += fmt.Sprintf("  %s rounds/s", humanCount(float64(eng.Rounds-engStart.Rounds)/elapsed))
			if served := agg.CacheHits + agg.CacheDedups; cache != nil && served+agg.CacheMisses > 0 {
				line += fmt.Sprintf("  dedup %.1f%%", 100*float64(served)/float64(served+agg.CacheMisses))
			}
			fmt.Fprint(os.Stderr, line, " ")
		}
	}
	if !quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err := writer.Flush(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("campaign interrupted after %d of %d scenarios", agg.Total, len(scenarios))
	}
	stopTop() // final frame before the summary, so the summary stays visible

	rows := agg.Summary()
	csvF, err := os.Create(filepath.Join(outDir, "summary.csv"))
	if err != nil {
		return err
	}
	defer csvF.Close()
	// The cache-off artefacts must stay byte-identical to cache-less builds,
	// so the cache columns are emitted only for cached sweeps.
	var md string
	if cache != nil {
		err = campaign.WriteSummaryCSVCache(csvF, rows)
		md = campaign.FormatSummaryMarkdownCache(rows)
	} else {
		err = campaign.WriteSummaryCSV(csvF, rows)
		md = campaign.FormatSummaryMarkdown(rows)
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "summary.md"), []byte(md), 0o644); err != nil {
		return err
	}

	elapsed := time.Since(start)
	fmt.Printf("%s\n", md)
	fmt.Printf("%d scenarios in %v (%.1f scenarios/sec, %v cpu): ok=%d failed=%d unsolvable=%d\n",
		agg.Total, elapsed.Round(time.Millisecond),
		float64(agg.Total)/elapsed.Seconds(), agg.Wall.Round(time.Millisecond),
		agg.OK, agg.Failed, agg.Unsolvable)
	if cache != nil {
		served := agg.CacheHits + agg.CacheDedups
		ratio := 0.0
		if total := agg.CacheMisses + served; total > 0 {
			ratio = float64(served) / float64(total)
		}
		cs := cache.Stats()
		fmt.Printf("cache: %d computed, %d served from symmetry (%d hits + %d dedups, dedup ratio %.1f%%), %d evictions\n",
			agg.CacheMisses, served, agg.CacheHits, agg.CacheDedups, 100*ratio, cs.Evictions)
		if cs.DiskHits > 0 {
			fmt.Printf("store: %d outcomes served from disk without computation\n", cs.DiskHits)
		}
	}
	fmt.Printf("artefacts: %s\n", outDir)
	if agg.Failed > 0 {
		return fmt.Errorf("%d scenarios failed (see %s)", agg.Failed, filepath.Join(outDir, "records.jsonl"))
	}
	return nil
}

// effectiveWorkers mirrors the pool sizing of campaign.Run: GOMAXPROCS by
// default, never more workers than scenarios.
func effectiveWorkers(w, scenarios int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > scenarios && scenarios > 0 {
		w = scenarios
	}
	return w
}

// buildMatrix assembles the campaign matrix from a spec file or flags.
func buildMatrix(spec, tasks, models, parities, chirality, commonSense, sizes, seeds, phases string, reflect bool, idFactor int) (campaign.Matrix, error) {
	var m campaign.Matrix
	if spec != "" {
		f, err := os.Open(spec)
		if err != nil {
			return m, err
		}
		defer f.Close()
		m, err := campaign.DecodeMatrix(f)
		if err != nil {
			return m, fmt.Errorf("spec %s: %w", spec, err)
		}
		return m, nil
	}
	for _, t := range splitList(tasks) {
		m.Tasks = append(m.Tasks, campaign.Task(t))
	}
	m.Models = splitList(models)
	m.Parities = splitList(parities)
	m.Chirality = splitList(chirality)
	for _, s := range splitList(commonSense) {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return m, fmt.Errorf("invalid -commonsense value %q", s)
		}
		m.CommonSense = append(m.CommonSense, v)
	}
	for _, s := range splitList(sizes) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return m, fmt.Errorf("invalid size %q", s)
		}
		m.Sizes = append(m.Sizes, v)
	}
	var err error
	m.Seeds, err = parseSeeds(seeds)
	if err != nil {
		return m, err
	}
	m.Phases, err = parsePhases(phases)
	if err != nil {
		return m, err
	}
	if reflect {
		m.Reflections = []bool{false, true}
	}
	m.IDBoundFactor = idFactor
	return m, nil
}

// parsePhases accepts "0,1,2" or an inclusive range "0:7", like parseSeeds.
func parsePhases(s string) ([]int, error) {
	seeds, err := parseSeeds(s)
	if err != nil {
		return nil, fmt.Errorf("invalid -phases: %w", err)
	}
	out := make([]int, len(seeds))
	for i, v := range seeds {
		out[i] = int(v)
	}
	return out, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseSeeds accepts "1,2,3" or an inclusive range "1:100".
func parseSeeds(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	if lo, hi, ok := strings.Cut(s, ":"); ok {
		from, err1 := strconv.ParseInt(lo, 10, 64)
		to, err2 := strconv.ParseInt(hi, 10, 64)
		if err1 != nil || err2 != nil || to < from {
			return nil, fmt.Errorf("invalid seed range %q (want from:to)", s)
		}
		out := make([]int64, 0, to-from+1)
		for v := from; v <= to; v++ {
			out = append(out, v)
		}
		return out, nil
	}
	var out []int64
	for _, p := range splitList(s) {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid seed %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
