// Command ringd is the scenario-serving daemon: a long-lived HTTP server
// that executes ring-network scenarios on demand, batching all requests onto
// one bounded worker pool and (by default) deduplicating symmetric scenarios
// through the canonical memo cache — rotations, reflections and frame
// translations of one ring are a single computation.
//
// Usage:
//
//	ringd                              # serve on :8080 with the cache on
//	ringd -addr 127.0.0.1:9090 -cache off
//	ringd -cache 100000 -workers 8     # cache bounded to ~100k outcomes
//	ringd -join coord:9999             # register with a fleet coordinator
//
// Endpoints (see internal/serve):
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/metrics/prometheus
//	curl -sN localhost:8080/v1/events?types=scenario'&'level=info
//	curl -s -X POST localhost:8080/v1/run -d '{"task":"coordinate","model":"basic","n":8,"seed":1}'
//	curl -s -X POST localhost:8080/v1/campaign -d '{"sizes":[8,16],"seeds":[1,2,3]}'
//
// With -pprof, the net/http/pprof profiling handlers are additionally served
// under /debug/pprof/.  `ringfarm top -url http://localhost:8080` renders a
// live view from the event stream.
//
// With -join, the daemon additionally registers itself with a ringfleet
// coordinator (see internal/fleet) and heartbeats for as long as it runs;
// -advertise overrides the base URL the coordinator dials back (it defaults
// to http://127.0.0.1:<port> of -addr, which is only right on one machine).
//
// The daemon sheds load instead of queueing unboundedly: once -maxpending
// scenarios are queued or running, /v1/run and /v1/campaign answer 429 with
// a Retry-After header (cache-hit probes are still served).  Fleet
// coordinators honour the 429 with jittered backoff.
//
// SIGINT/SIGTERM shut the daemon down gracefully: the listener stops,
// in-flight requests get a drain window, and the worker pool exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ringsym/internal/campaign"
	"ringsym/internal/fleet"
	"ringsym/internal/fleet/worker"
	"ringsym/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ringd: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "scenario worker-pool size (default GOMAXPROCS)")
	cacheFlag := flag.String("cache", "on", "memo cache: on, off, or a capacity in entries (each entry is O(n) memory)")
	circ := flag.Int64("circ", 0, "ring circumference in ticks (default netgen's 1<<20)")
	maxRounds := flag.Int("maxrounds", 0, "round bound on runaway protocols (default engine's)")
	maxN := flag.Int("maxn", 0, "largest network size a request may ask for (default 4096)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof profiling handlers under /debug/pprof/")
	maxPending := flag.Int("maxpending", 1024, "admission control: queued+running scenarios above which /v1/run and /v1/campaign answer 429 (0 disables)")
	join := flag.String("join", "", "fleet coordinator base URL to register with (host:port or http://host:port)")
	advertise := flag.String("advertise", "", "base URL the coordinator dials this daemon at (default http://127.0.0.1:<port of -addr>)")
	flag.Parse()

	if *workers < 0 {
		usageError(fmt.Errorf("invalid -workers %d (must be >= 0; 0 means GOMAXPROCS)", *workers))
	}
	if *maxN < 0 {
		usageError(fmt.Errorf("invalid -maxn %d (must be >= 0; 0 means the default of 4096)", *maxN))
	}
	if *circ < 0 {
		usageError(fmt.Errorf("invalid -circ %d (must be >= 0; 0 means the netgen default)", *circ))
	}
	if *maxRounds < 0 {
		usageError(fmt.Errorf("invalid -maxrounds %d (must be >= 0; 0 means the engine default)", *maxRounds))
	}
	if *drain < 0 {
		usageError(fmt.Errorf("invalid -drain %v (must be >= 0)", *drain))
	}
	if *maxPending < 0 {
		usageError(fmt.Errorf("invalid -maxpending %d (must be >= 0; 0 disables admission control)", *maxPending))
	}
	cache, err := campaign.ParseCacheFlag(*cacheFlag)
	if err != nil {
		usageError(err)
	}
	var coordinator, selfURL string
	if *join != "" {
		coords, err := fleet.ParseWorkers(*join)
		if err != nil || len(coords) != 1 {
			usageError(fmt.Errorf("invalid -join %q: %v", *join, err))
		}
		coordinator = coords[0]
		selfURL = *advertise
		if selfURL == "" {
			selfURL = defaultAdvertise(*addr)
		}
		selves, err := fleet.ParseWorkers(selfURL)
		if err != nil || len(selves) != 1 {
			usageError(fmt.Errorf("invalid -advertise %q: %v", selfURL, err))
		}
		selfURL = selves[0]
	} else if *advertise != "" {
		usageError(fmt.Errorf("-advertise is only meaningful with -join"))
	}

	pool := serve.New(serve.Options{
		Workers:    *workers,
		Cache:      cache,
		Circ:       *circ,
		MaxRounds:  *maxRounds,
		MaxN:       *maxN,
		Pprof:      *pprofFlag,
		MaxPending: *maxPending,
	})
	// No WriteTimeout here: it would cap the total duration of a streaming
	// /v1/campaign response; internal/serve bounds each record write with
	// its own deadline instead, so only stalled clients are cut off.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           pool.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	cacheState := "off"
	if cache != nil {
		cacheState = "on"
	}
	log.Printf("serving on %s (cache %s)", *addr, cacheState)
	if coordinator != "" {
		log.Printf("joining fleet coordinator %s as %s", coordinator, selfURL)
		go worker.Start(ctx, worker.Options{Coordinator: coordinator, Advertise: selfURL, Logf: log.Printf})
	}

	select {
	case <-ctx.Done():
		log.Printf("shutting down (drain %v)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			// Shutdown leaves active connections (and their request
			// contexts) alive, which would park pool.Close in wg.Wait for
			// as long as the slowest in-flight scenario keeps running;
			// force-close so the contexts cancel and the engine aborts
			// within one round.
			log.Printf("drain window expired (%v); closing active connections", err)
			srv.Close()
		}
		pool.Close()
		if cache != nil {
			st := cache.Stats()
			log.Printf("cache at exit: %d entries, %d hits, %d misses, %d dedups, %d evictions",
				st.Entries, st.Hits, st.Misses, st.Dedups, st.Evictions)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}

func usageError(err error) {
	fmt.Fprintf(os.Stderr, "ringd: %v\n\n", err)
	flag.Usage()
	os.Exit(2)
}

// defaultAdvertise derives the base URL a coordinator can dial back from the
// listen address: the listen port on 127.0.0.1 when -addr binds all
// interfaces (right on one machine, which is what the default is for; a
// multi-host fleet must pass -advertise explicitly).
func defaultAdvertise(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}
