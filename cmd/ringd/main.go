// Command ringd is the scenario-serving daemon: a long-lived HTTP server
// that executes ring-network scenarios on demand, batching all requests onto
// one bounded worker pool and (by default) deduplicating symmetric scenarios
// through the canonical memo cache — rotations, reflections and frame
// translations of one ring are a single computation.
//
// Usage:
//
//	ringd                              # serve on :8080 with the cache on
//	ringd -addr 127.0.0.1:9090 -cache off
//	ringd -cache 100000 -workers 8     # cache bounded to ~100k outcomes
//	ringd -join coord:9999             # register with a fleet coordinator
//	ringd -store /var/lib/ringd        # persist results; warm-start on boot
//	ringd -store dir -peers host:8080  # serve misses from a peer's store
//	ringd -store dir -store-stats      # one-shot store dump (JSON), then exit
//
// Endpoints (see internal/serve):
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/metrics/prometheus
//	curl -sN localhost:8080/v1/events?types=scenario'&'level=info
//	curl -s -X POST localhost:8080/v1/run -d '{"task":"coordinate","model":"basic","n":8,"seed":1}'
//	curl -s -X POST localhost:8080/v1/campaign -d '{"sizes":[8,16],"seeds":[1,2,3]}'
//
// With -pprof, the net/http/pprof profiling handlers are additionally served
// under /debug/pprof/.  `ringfarm top -url http://localhost:8080` renders a
// live view from the event stream.
//
// With -join, the daemon additionally registers itself with a ringfleet
// coordinator (see internal/fleet) and heartbeats for as long as it runs;
// -advertise overrides the base URL the coordinator dials back (it defaults
// to http://127.0.0.1:<port> of -addr, which is only right on one machine).
//
// With -store, outcomes additionally persist in a disk-backed
// content-addressed store (internal/store): the daemon warm-starts from the
// directory on boot (a restart serves previously seen orbits with zero
// computation), serves single records to fleet peers on GET /v1/cache/<key>,
// and — with -peers, or automatically through the -join roster — fetches
// records it lacks from its peers before computing.  -store-max caps the
// directory size (oldest segments evicted first); -store-stats prints the
// store's segment/index statistics as JSON and exits without serving.
//
// The daemon sheds load instead of queueing unboundedly: once -maxpending
// scenarios are queued or running, /v1/run and /v1/campaign answer 429 with
// a Retry-After header (cache-hit probes are still served).  Fleet
// coordinators honour the 429 with jittered backoff.
//
// SIGINT/SIGTERM shut the daemon down gracefully: the listener stops,
// in-flight requests get a drain window, and the worker pool exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"encoding/json"

	"ringsym/internal/campaign"
	"ringsym/internal/fleet"
	"ringsym/internal/fleet/worker"
	"ringsym/internal/serve"
	"ringsym/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ringd: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "scenario worker-pool size (default GOMAXPROCS)")
	cacheFlag := flag.String("cache", "on", "memo cache: on, off, or a capacity in entries (each entry is O(n) memory)")
	circ := flag.Int64("circ", 0, "ring circumference in ticks (default netgen's 1<<20)")
	maxRounds := flag.Int("maxrounds", 0, "round bound on runaway protocols (default engine's)")
	maxN := flag.Int("maxn", 0, "largest network size a request may ask for (default 4096)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof profiling handlers under /debug/pprof/")
	maxPending := flag.Int("maxpending", 1024, "admission control: queued+running scenarios above which /v1/run and /v1/campaign answer 429 (0 disables)")
	join := flag.String("join", "", "fleet coordinator base URL to register with (host:port or http://host:port)")
	advertise := flag.String("advertise", "", "base URL the coordinator dials this daemon at (default http://127.0.0.1:<port of -addr>)")
	storeDir := flag.String("store", "", "directory of the persistent result store (off when empty; requires the cache)")
	storeMax := flag.Int64("store-max", 0, "store size cap in bytes; oldest segments evicted first (0 = unbounded)")
	peersFlag := flag.String("peers", "", "comma-separated peer daemons whose stores serve this daemon's misses (requires -store)")
	storeStats := flag.Bool("store-stats", false, "print the store's statistics as JSON and exit (requires -store)")
	flag.Parse()

	if *workers < 0 {
		usageError(fmt.Errorf("invalid -workers %d (must be >= 0; 0 means GOMAXPROCS)", *workers))
	}
	if *maxN < 0 {
		usageError(fmt.Errorf("invalid -maxn %d (must be >= 0; 0 means the default of 4096)", *maxN))
	}
	if *circ < 0 {
		usageError(fmt.Errorf("invalid -circ %d (must be >= 0; 0 means the netgen default)", *circ))
	}
	if *maxRounds < 0 {
		usageError(fmt.Errorf("invalid -maxrounds %d (must be >= 0; 0 means the engine default)", *maxRounds))
	}
	if *drain < 0 {
		usageError(fmt.Errorf("invalid -drain %v (must be >= 0)", *drain))
	}
	if *maxPending < 0 {
		usageError(fmt.Errorf("invalid -maxpending %d (must be >= 0; 0 disables admission control)", *maxPending))
	}
	cache, err := campaign.ParseCacheFlag(*cacheFlag)
	if err != nil {
		usageError(err)
	}
	if *storeMax < 0 {
		usageError(fmt.Errorf("invalid -store-max %d (must be >= 0; 0 means unbounded)", *storeMax))
	}
	if *storeDir == "" {
		if *storeMax != 0 {
			usageError(errors.New("-store-max is only meaningful with -store"))
		}
		if *peersFlag != "" {
			usageError(errors.New("-peers is only meaningful with -store"))
		}
		if *storeStats {
			usageError(errors.New("-store-stats is only meaningful with -store"))
		}
	} else if cache == nil {
		usageError(errors.New("-store requires the cache (the store is its second tier); drop -cache off"))
	}
	var peerAddrs []string
	if *peersFlag != "" {
		if peerAddrs, err = fleet.ParseWorkers(*peersFlag); err != nil {
			usageError(fmt.Errorf("invalid -peers %q: %v", *peersFlag, err))
		}
	}
	var coordinator, selfURL string
	if *join != "" {
		coords, err := fleet.ParseWorkers(*join)
		if err != nil || len(coords) != 1 {
			usageError(fmt.Errorf("invalid -join %q: %v", *join, err))
		}
		coordinator = coords[0]
		selfURL = *advertise
		if selfURL == "" {
			selfURL = defaultAdvertise(*addr)
		}
		selves, err := fleet.ParseWorkers(selfURL)
		if err != nil || len(selves) != 1 {
			usageError(fmt.Errorf("invalid -advertise %q: %v", selfURL, err))
		}
		selfURL = selves[0]
	} else if *advertise != "" {
		usageError(fmt.Errorf("-advertise is only meaningful with -join"))
	}

	var st *store.Store
	var peers *store.Peers
	if *storeDir != "" {
		st, err = store.Open(*storeDir, store.Options{MaxBytes: *storeMax})
		if err != nil {
			log.Fatal(err)
		}
		if *storeStats {
			// One-shot ops dump: segments, live/garbage bytes, index entries.
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(st.Stats())
			st.Close()
			return
		}
		log.Printf("store %s: %d records in %d segments warm-started",
			*storeDir, st.Stats().IndexEntries, st.Stats().Segments)
		// The peer fetcher exists whenever peers can arrive — statically via
		// -peers or dynamically through the fleet join roster — and excludes
		// this daemon's own advertise URL from every fan-out.
		if len(peerAddrs) > 0 || coordinator != "" {
			peers = store.NewPeers(selfURL, nil)
			peers.Set(peerAddrs)
		}
		cache.AttachTier(st, peers)
	}

	pool := serve.New(serve.Options{
		Workers:    *workers,
		Cache:      cache,
		Circ:       *circ,
		MaxRounds:  *maxRounds,
		MaxN:       *maxN,
		Pprof:      *pprofFlag,
		MaxPending: *maxPending,
		Store:      st,
	})
	// No WriteTimeout here: it would cap the total duration of a streaming
	// /v1/campaign response; internal/serve bounds each record write with
	// its own deadline instead, so only stalled clients are cut off.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           pool.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	cacheState := "off"
	if cache != nil {
		cacheState = "on"
	}
	log.Printf("serving on %s (cache %s)", *addr, cacheState)
	if coordinator != "" {
		log.Printf("joining fleet coordinator %s as %s", coordinator, selfURL)
		wopts := worker.Options{Coordinator: coordinator, Advertise: selfURL, Logf: log.Printf}
		if peers != nil {
			// Fleet-roster peer discovery: every join/heartbeat refreshes
			// the store-peer list with the coordinator's current fleet.
			wopts.OnPeers = func(addrs []string) { peers.Set(append(addrs, peerAddrs...)) }
		}
		go worker.Start(ctx, wopts)
	}

	select {
	case <-ctx.Done():
		log.Printf("shutting down (drain %v)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			// Shutdown leaves active connections (and their request
			// contexts) alive, which would park pool.Close in wg.Wait for
			// as long as the slowest in-flight scenario keeps running;
			// force-close so the contexts cancel and the engine aborts
			// within one round.
			log.Printf("drain window expired (%v); closing active connections", err)
			srv.Close()
		}
		pool.Close()
		if cache != nil {
			cst := cache.Stats()
			log.Printf("cache at exit: %d entries, %d hits, %d misses, %d dedups, %d disk, %d peer, %d evictions",
				cst.Entries, cst.Hits, cst.Misses, cst.Dedups, cst.DiskHits, cst.PeerHits, cst.Evictions)
		}
		if st != nil {
			if err := st.Close(); err != nil {
				log.Printf("store close: %v", err)
			} else {
				sst := st.Stats()
				log.Printf("store at exit: %d records in %d segments (%d live bytes, %d garbage)",
					sst.IndexEntries, sst.Segments, sst.LiveBytes, sst.GarbageBytes)
			}
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}

func usageError(err error) {
	fmt.Fprintf(os.Stderr, "ringd: %v\n\n", err)
	flag.Usage()
	os.Exit(2)
}

// defaultAdvertise derives the base URL a coordinator can dial back from the
// listen address: the listen port on 127.0.0.1 when -addr binds all
// interfaces (right on one machine, which is what the default is for; a
// multi-host fleet must pass -advertise explicitly).
func defaultAdvertise(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}
