package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ringsym/internal/lint"
	"ringsym/internal/lint/analysis"
)

// vetConfig is the JSON the go command writes for each package when ringvet
// runs under `go vet -vettool=`.  The shape (and the protocol implemented
// here) is the x/tools go/analysis/unitchecker contract: one invocation per
// package, sources by name, every dependency pre-resolved to export data,
// and a facts file that must be written even when empty because the build
// system records it as the action's output.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgFile and returns the
// process exit code: 0 clean, 1 findings, 2 internal failure.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringvet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ringvet: parsing %s: %v\n", cfgFile, err)
		return 2
	}

	// The vet driver also dispatches test compilation units; ringvet's
	// contract (like the direct driver's) is that test files are never
	// analyzed — they are where violations are deliberately staged.  Test
	// files are dropped before typechecking: non-test files cannot depend on
	// them, so the remaining unit still typechecks, and a unit that was all
	// tests is vacuously clean.
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "ringvet:", err)
			return 2
		}
		files = append(files, f)
	}

	if len(files) == 0 {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "ringvet:", err)
				return 2
			}
		}
		return 0
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(importPath string) (io.ReadCloser, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tpkg, info, err := analysis.Check(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "ringvet:", err)
		return 2
	}

	// The build system records VetxOutput as this action's product and feeds
	// it to dependents via PackageVetx; ringvet's analyzers exchange no
	// facts, so the file is written empty — but it must be written.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ringvet:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pkg := &analysis.Package{
		Path:      cfg.ImportPath,
		Dir:       cfg.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringvet:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
