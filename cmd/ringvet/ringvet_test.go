package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"ringsym/internal/lint"
	"ringsym/internal/lint/analysis"
)

// repoRoot walks up from the test's working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestTreeIsClean is the merge bar: the full analyzer suite over every
// package of the module reports nothing.  A new violation either gets fixed
// or gets a justified //ringvet:allow — this test is where that conversation
// is forced.
func TestTreeIsClean(t *testing.T) {
	pkgs, err := analysis.Load(repoRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the ./... pattern no longer covers the tree", len(pkgs))
	}
	findings, err := analysis.Run(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestVettoolProtocol smoke-tests the unitchecker path end to end: build the
// binary, then run it under the real vet driver over a package that emits
// telemetry, so a protocol regression (cfg parsing, export-data lookup,
// facts output) fails loudly rather than only in CI.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	root := repoRoot(t)
	tool := filepath.Join(t.TempDir(), "ringvet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/ringvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ringvet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+tool, "./internal/memo/", "./internal/obs/")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}
