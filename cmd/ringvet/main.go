// Command ringvet runs the repository's proof-obligation analyzers
// (internal/lint) over Go packages.  It works in two modes:
//
// Direct, as a multichecker over package patterns:
//
//	go run ./cmd/ringvet ./...
//
// and as a unitchecker under the build system's vet driver:
//
//	go build -o /tmp/ringvet ./cmd/ringvet
//	go vet -vettool=/tmp/ringvet ./...
//
// In both modes every diagnostic prints as file:line:col: [analyzer] message
// and a non-empty report exits non-zero, so CI fails on any finding.
// Suppressions use //ringvet:allow (see internal/lint/analysis).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ringsym/internal/lint"
	"ringsym/internal/lint/analysis"
)

func main() {
	versionFlag := flag.String("V", "", "print version and exit (the build system's tool-ID probe is -V=full)")
	flagsFlag := flag.Bool("flags", false, "print the tool's analyzer flags as JSON and exit (build-system probe)")
	listFlag := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ringvet [packages...]  (default ./...)\n")
		fmt.Fprintf(flag.CommandLine.Output(), "       ringvet <vet>.cfg       (go vet -vettool unitchecker mode)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		// The go command probes `ringvet -V=full` and folds the line into its
		// cache key, so the fingerprint must change with the binary.
		fmt.Printf("ringvet version devel buildID=%s\n", selfFingerprint())
		return
	case *flagsFlag:
		// The go command probes for analyzer flags it may forward; ringvet's
		// analyzers have none.
		fmt.Println("[]")
		return
	case *listFlag:
		for _, a := range lint.All() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringvet:", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// selfFingerprint hashes the executable so the build cache invalidates when
// the tool changes.
func selfFingerprint() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
