module ringsym

go 1.24
