package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// OrderedWriter streams records as JSON lines in ascending scenario-index
// order regardless of the completion order of the worker pool.  Only
// out-of-order records are buffered, so memory stays bounded by the pool's
// in-flight window; combined with the deterministic record contents this
// makes the JSONL artefact byte-identical across runs and across shard
// concatenation.
type OrderedWriter struct {
	w        io.Writer
	pending  map[int]Record
	expected []int
	pos      int
}

// NewOrderedWriter returns a writer for a run over exactly the given
// scenarios (pass the shard's scenario slice).
func NewOrderedWriter(w io.Writer, scenarios []Scenario) *OrderedWriter {
	expected := make([]int, len(scenarios))
	for i, sc := range scenarios {
		expected[i] = sc.Index
	}
	sort.Ints(expected)
	return &OrderedWriter{w: w, pending: make(map[int]Record), expected: expected}
}

// Add accepts one record and writes every record that is now in order.
func (o *OrderedWriter) Add(rec Record) error {
	o.pending[rec.Index] = rec
	for o.pos < len(o.expected) {
		next, ok := o.pending[o.expected[o.pos]]
		if !ok {
			return nil
		}
		delete(o.pending, o.expected[o.pos])
		o.pos++
		if err := o.write(next); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes any still-buffered records in index order.  After a complete
// run it is a no-op; after a cancelled run it drains the gaps left by
// never-started scenarios.
func (o *OrderedWriter) Flush() error {
	rest := make([]int, 0, len(o.pending))
	for idx := range o.pending {
		rest = append(rest, idx)
	}
	sort.Ints(rest)
	for _, idx := range rest {
		if err := o.write(o.pending[idx]); err != nil {
			return err
		}
		delete(o.pending, idx)
	}
	return nil
}

func (o *OrderedWriter) write(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := o.w.Write(line); err != nil {
		return err
	}
	_, err = fmt.Fprintln(o.w)
	return err
}
