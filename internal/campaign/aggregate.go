package campaign

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"ringsym/internal/obs"
)

// GroupKey identifies one setting of the sweep: records sharing a key are
// aggregated together (seeds, phases and reflections are folded — symmetric
// framings of one setting are the same experiment — everything else
// distinguishes).
type GroupKey struct {
	Task           Task   `json:"task"`
	Model          string `json:"model"`
	OddN           bool   `json:"odd_n"`
	MixedChirality bool   `json:"mixed_chirality"`
	CommonSense    bool   `json:"common_sense"`
	N              int    `json:"n"`
}

func keyOf(sc Scenario) GroupKey {
	return GroupKey{
		Task:           sc.Task,
		Model:          sc.Model,
		OddN:           sc.N%2 == 1,
		MixedChirality: sc.MixedChirality,
		CommonSense:    sc.CommonSense,
		N:              sc.N,
	}
}

// groupStats is the streaming state of one group.  Rounds are folded into a
// value→count histogram, which gives exact percentiles with memory bounded
// by the number of distinct round counts, not the number of records.
type groupStats struct {
	count      int
	failed     int
	unsolvable int
	min, max   int
	sum        int64
	hist       map[int]int
	ratioSum   float64
	ratioCount int
	wall       time.Duration
	// Memo-cache service counts (zero when the cache is disabled).  The
	// miss count and the hit+dedup sum are deterministic for a fixed sweep;
	// the hit/dedup split depends on worker scheduling.
	cacheMisses int
	cacheHits   int
	cacheDedups int
	cacheDisk   int
	cachePeer   int
}

// Aggregator folds a record stream into per-group statistics without
// retaining the records.  It is not safe for concurrent use; feed it from
// the single goroutine draining Run's channel.
type Aggregator struct {
	groups map[GroupKey]*groupStats
	// Totals over the whole stream.
	Total      int
	OK         int
	Failed     int
	Unsolvable int
	Wall       time.Duration
	// Cache totals over the whole stream (zero when the cache is disabled).
	// The summary writers emit cache columns only when explicitly asked (the
	// *Cache variants): a cached sweep must produce a stable artefact schema
	// even when no record happened to touch the cache (e.g. all unsolvable).
	CacheMisses int
	CacheHits   int
	CacheDedups int
	// CacheDisk / CachePeer count records served by the persistent-store
	// tier (local disk and fleet peers respectively); zero unless a store
	// is attached.
	CacheDisk int
	CachePeer int
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{groups: make(map[GroupKey]*groupStats)}
}

// Add folds one record into the aggregate.
func (a *Aggregator) Add(rec Record) {
	a.Total++
	a.Wall += rec.Wall
	key := keyOf(rec.Scenario)
	g := a.groups[key]
	if g == nil {
		g = &groupStats{hist: make(map[int]int)}
		a.groups[key] = g
	}
	g.count++
	g.wall += rec.Wall
	switch rec.Cache {
	case "miss":
		a.CacheMisses++
		g.cacheMisses++
	case "hit":
		a.CacheHits++
		g.cacheHits++
	case "dedup":
		a.CacheDedups++
		g.cacheDedups++
	case "disk":
		a.CacheDisk++
		g.cacheDisk++
	case "peer":
		a.CachePeer++
		g.cachePeer++
	}
	switch rec.Status {
	case StatusFailed:
		a.Failed++
		g.failed++
		return
	case StatusUnsolvable:
		a.Unsolvable++
		g.unsolvable++
		return
	}
	a.OK++
	if g.count-g.failed-g.unsolvable == 1 || rec.Rounds < g.min {
		g.min = rec.Rounds
	}
	if rec.Rounds > g.max {
		g.max = rec.Rounds
	}
	g.sum += int64(rec.Rounds)
	g.hist[rec.Rounds]++
	if rec.Bound > 0 {
		g.ratioSum += float64(rec.Rounds) / rec.Bound
		g.ratioCount++
	}
}

// SummaryRow is the aggregate of one group.
type SummaryRow struct {
	GroupKey
	Count      int `json:"count"`
	Failed     int `json:"failed"`
	Unsolvable int `json:"unsolvable"`
	// Round statistics over the ok records of the group.
	MinRounds  int     `json:"min_rounds"`
	MaxRounds  int     `json:"max_rounds"`
	MeanRounds float64 `json:"mean_rounds"`
	P50Rounds  int     `json:"p50_rounds"`
	P90Rounds  int     `json:"p90_rounds"`
	P99Rounds  int     `json:"p99_rounds"`
	// BoundRatio is the mean observed/bound ratio (0 when no bound applies).
	BoundRatio float64 `json:"bound_ratio"`
	// Memo-cache service counts for the group (all zero when the cache was
	// disabled; see Record.Cache for the determinism contract).
	CacheMisses int `json:"cache_misses,omitempty"`
	CacheHits   int `json:"cache_hits,omitempty"`
	CacheDedups int `json:"cache_dedups,omitempty"`
	CacheDisk   int `json:"cache_disk,omitempty"`
	CachePeer   int `json:"cache_peer,omitempty"`
}

// Summary returns one row per group, deterministically ordered.
func (a *Aggregator) Summary() []SummaryRow {
	keys := make([]GroupKey, 0, len(a.groups))
	for k := range a.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })
	rows := make([]SummaryRow, 0, len(keys))
	for _, k := range keys {
		g := a.groups[k]
		row := SummaryRow{
			GroupKey:    k,
			Count:       g.count,
			Failed:      g.failed,
			Unsolvable:  g.unsolvable,
			CacheMisses: g.cacheMisses,
			CacheHits:   g.cacheHits,
			CacheDedups: g.cacheDedups,
			CacheDisk:   g.cacheDisk,
			CachePeer:   g.cachePeer,
		}
		ok := g.count - g.failed - g.unsolvable
		if ok > 0 {
			row.MinRounds = g.min
			row.MaxRounds = g.max
			row.MeanRounds = float64(g.sum) / float64(ok)
			row.P50Rounds = Percentile(g.hist, ok, 50)
			row.P90Rounds = Percentile(g.hist, ok, 90)
			row.P99Rounds = Percentile(g.hist, ok, 99)
		}
		if g.ratioCount > 0 {
			row.BoundRatio = g.ratioSum / float64(g.ratioCount)
		}
		rows = append(rows, row)
	}
	return rows
}

func lessKey(a, b GroupKey) bool {
	if a.Task != b.Task {
		return a.Task < b.Task
	}
	if a.Model != b.Model {
		return a.Model < b.Model
	}
	if a.OddN != b.OddN {
		return a.OddN
	}
	if a.MixedChirality != b.MixedChirality {
		return !a.MixedChirality
	}
	if a.CommonSense != b.CommonSense {
		return !a.CommonSense
	}
	return a.N < b.N
}

// Percentile returns the nearest-rank p-th percentile of a value→count
// histogram holding count samples: the smallest value v such that at least
// ceil(p/100 · count) samples are <= v.  The implementation lives in
// internal/obs (the telemetry windows need the same exact-percentile fold);
// this delegate keeps the campaign-side name every caller and test uses.
func Percentile(hist map[int]int, count, p int) int {
	return obs.Percentile(hist, count, p)
}

func (k GroupKey) label() (parity, chir, cs string) {
	parity = ParityEven
	if k.OddN {
		parity = ParityOdd
	}
	chir = ChiralityCommon
	if k.MixedChirality {
		chir = ChiralityMixed
	}
	cs = "no"
	if k.CommonSense {
		cs = "yes"
	}
	return parity, chir, cs
}

// WriteSummaryCSV writes the summary rows as CSV.  Output is deterministic
// for a fixed record multiset and byte-identical across cache-less builds.
func WriteSummaryCSV(w io.Writer, rows []SummaryRow) error {
	return writeSummaryCSV(w, rows, false)
}

// WriteSummaryCSVCache is WriteSummaryCSV plus the memo-cache service
// columns (misses, hits, dedups); use it for sweeps that ran with a cache.
func WriteSummaryCSVCache(w io.Writer, rows []SummaryRow) error {
	return writeSummaryCSV(w, rows, true)
}

func writeSummaryCSV(w io.Writer, rows []SummaryRow, cache bool) error {
	header := "task,model,parity,chirality,common_sense,n,count,failed,unsolvable,min_rounds,max_rounds,mean_rounds,p50_rounds,p90_rounds,p99_rounds,bound_ratio"
	if cache {
		header += ",cache_misses,cache_hits,cache_dedups,cache_disk,cache_peer"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, r := range rows {
		parity, chir, cs := r.GroupKey.label()
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%s,%d,%d,%d,%d,%d,%d,%.3f,%d,%d,%d,%.4f",
			r.Task, r.Model, parity, chir, cs, r.N,
			r.Count, r.Failed, r.Unsolvable,
			r.MinRounds, r.MaxRounds, r.MeanRounds,
			r.P50Rounds, r.P90Rounds, r.P99Rounds, r.BoundRatio); err != nil {
			return err
		}
		if cache {
			if _, err := fmt.Fprintf(w, ",%d,%d,%d,%d,%d", r.CacheMisses, r.CacheHits, r.CacheDedups, r.CacheDisk, r.CachePeer); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// FormatSummaryMarkdown renders the summary rows as a Markdown table.
func FormatSummaryMarkdown(rows []SummaryRow) string {
	return formatSummaryMarkdown(rows, false)
}

// FormatSummaryMarkdownCache is FormatSummaryMarkdown plus the memo-cache
// service columns.
func FormatSummaryMarkdownCache(rows []SummaryRow) string {
	return formatSummaryMarkdown(rows, true)
}

func formatSummaryMarkdown(rows []SummaryRow, cache bool) string {
	var b strings.Builder
	b.WriteString("| task | model | parity | chirality | common sense | n | count | failed | unsolvable | min | max | mean | p50 | p90 | p99 | obs/bound |")
	if cache {
		b.WriteString(" miss | hit | dedup | disk | peer |")
	}
	b.WriteString("\n")
	b.WriteString("|---|---|---|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|")
	if cache {
		b.WriteString("---:|---:|---:|---:|---:|")
	}
	b.WriteString("\n")
	for _, r := range rows {
		parity, chir, cs := r.GroupKey.label()
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %d | %d | %d | %d | %d | %d | %.1f | %d | %d | %d | %.3f |",
			r.Task, r.Model, parity, chir, cs, r.N,
			r.Count, r.Failed, r.Unsolvable,
			r.MinRounds, r.MaxRounds, r.MeanRounds,
			r.P50Rounds, r.P90Rounds, r.P99Rounds, r.BoundRatio)
		if cache {
			fmt.Fprintf(&b, " %d | %d | %d | %d | %d |", r.CacheMisses, r.CacheHits, r.CacheDedups, r.CacheDisk, r.CachePeer)
		}
		b.WriteString("\n")
	}
	return b.String()
}
