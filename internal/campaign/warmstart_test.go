package campaign

import (
	"context"
	"reflect"
	"testing"

	"ringsym/internal/store"
)

// warmMatrix is the symmetric sweep of the warm-start acceptance bar:
// sizes 8,12 × seeds 1..5 × phases 0..2 × both reflections across the
// default task/model/parity/chirality grid — 1440 scenarios collapsing to
// ~220 computed orbits.
func warmMatrix() Matrix {
	return Matrix{
		Sizes:       []int{8, 12},
		Seeds:       []int64{1, 2, 3, 4, 5},
		Phases:      []int{0, 1, 2},
		Reflections: []bool{false, true},
	}
}

// stripVolatile clears the fields that legitimately differ between runs:
// the wall-clock duration and the cache annotation (which is the one field
// the warm path is allowed to change).
func stripVolatile(recs []Record) []Record {
	out := make([]Record, len(recs))
	for i, r := range recs {
		r.Wall = 0
		r.Cache = ""
		out[i] = r
	}
	return out
}

// TestWarmStartByteIdentity is the warm-start acceptance test: populate a
// store through a cached sweep, close everything, reopen the same directory
// under a cold memory cache, and re-serve the full symmetric sweep.  The
// warm run must execute zero computations (every solvable record is served
// from disk, memory or an in-flight dedup) and its records must be
// identical to the cold run's — and to an uncached run's — modulo the
// cache annotation.
func TestWarmStartByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1440-scenario sweep")
	}
	scenarios, err := warmMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 1440 {
		t.Fatalf("matrix expanded to %d scenarios, want 1440", len(scenarios))
	}
	dir := t.TempDir()

	// Cold pass: compute through a cache with the store attached.
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold := NewCache(0)
	cold.AttachTier(st1, nil)
	coldRecs, err := RunAll(context.Background(), scenarios, Options{Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	coldStats := cold.Stats()
	if coldStats.Misses == 0 {
		t.Fatal("cold pass computed nothing")
	}
	if coldStats.DiskHits != 0 || coldStats.PeerHits != 0 {
		t.Fatalf("cold pass on an empty store reported tier hits: %+v", coldStats)
	}
	if int(st1.Stats().Puts) != int(coldStats.Misses) {
		t.Fatalf("write-through: %d puts for %d computes", st1.Stats().Puts, coldStats.Misses)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm pass: same directory, fresh store handle, cold memory.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm := NewCache(0)
	warm.AttachTier(st2, nil)
	warmRecs, err := RunAll(context.Background(), scenarios, Options{Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	warmStats := warm.Stats()
	if warmStats.Misses != 0 {
		t.Fatalf("warm restart executed %d computations, want 0 (stats %+v)", warmStats.Misses, warmStats)
	}
	if warmStats.DiskHits == 0 {
		t.Fatalf("warm restart never touched the disk tier: %+v", warmStats)
	}
	// Exactly one disk promotion per computed orbit: each orbit's first
	// request goes to disk, the rest are memory hits or dedups.
	if warmStats.DiskHits != coldStats.Misses {
		t.Errorf("disk hits = %d, want one per cold-computed orbit (%d)", warmStats.DiskHits, coldStats.Misses)
	}

	// Byte identity: warm == cold modulo the cache annotation, and every
	// solvable warm record carries a cache annotation that is not "miss".
	for _, rec := range warmRecs {
		if rec.Status == StatusUnsolvable {
			if rec.Cache != "" {
				t.Errorf("%s: unsolvable record touched the cache", rec.Key())
			}
			continue
		}
		switch rec.Cache {
		case "disk", "hit", "dedup":
		default:
			t.Errorf("%s: warm record served as %q, want disk/hit/dedup", rec.Key(), rec.Cache)
		}
	}
	if !reflect.DeepEqual(stripVolatile(warmRecs), stripVolatile(coldRecs)) {
		t.Error("warm records differ from cold records modulo annotation")
	}
}

// TestStoreTierMatchesUncached is the smaller always-on variant: a
// store-backed cached run equals a plain run record for record, through a
// close/reopen cycle (so the records compared really crossed the disk
// encoding).
func TestStoreTierMatchesUncached(t *testing.T) {
	scenarios, err := symmetricMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunAll(context.Background(), scenarios, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold := NewCache(0)
	cold.AttachTier(st1, nil)
	if _, err := RunAll(context.Background(), scenarios, Options{Cache: cold}); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm := NewCache(0)
	warm.AttachTier(st2, nil)
	warmRecs, err := RunAll(context.Background(), scenarios, Options{Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Misses != 0 {
		t.Fatalf("warm run recomputed %d scenarios", st.Misses)
	}
	if !reflect.DeepEqual(stripVolatile(warmRecs), stripVolatile(plain)) {
		t.Error("disk-served records differ from computed records modulo annotation")
	}
}
