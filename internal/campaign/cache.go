package campaign

import (
	"fmt"
	"strconv"

	"ringsym/internal/memo"
	"ringsym/internal/task"
)

// Cache memoises scenario outcomes under their canonical symmetry key: two
// scenarios whose generated networks are rotations, reflections or frame
// translations of each other (and that share the task, the common-sense
// promise and the protocol-schedule seed) resolve to the same key, so only
// the first one is executed and the other is answered from the cache with its
// outcome translated back through the frame map (the task spec's MapOutcome).
// Concurrent workers that race on the same key are collapsed by singleflight,
// and a scenario nobody is waiting for any more is cancelled within one
// engine round.
//
// A Cache is safe for concurrent use and may be shared across sweeps and, in
// the serving daemon, across requests.
type Cache struct {
	c *memo.Cache[task.Outcome]
}

// NewCache returns a cache bounded to roughly capacity outcomes (<= 0 selects
// the memo default).  The bound counts entries, not bytes: one cached outcome
// holds the per-agent stage splits of its whole ring, so resident memory is
// O(capacity × n) — size the capacity against the largest n served (e.g.
// ringd's -maxn), not against available memory alone.
func NewCache(capacity int) *Cache {
	return &Cache{c: memo.New[task.Outcome](capacity)}
}

// Stats returns a snapshot of the hit/miss/dedup/eviction counters.
func (c *Cache) Stats() memo.Stats { return c.c.Stats() }

// ParseCacheFlag maps a CLI -cache flag value to a cache: "off" disables it
// (nil), "on" enables it with the default bound, and a positive integer sets
// the capacity.  Shared by cmd/ringfarm and cmd/ringd so the flag semantics
// cannot diverge between the two.
func ParseCacheFlag(s string) (*Cache, error) {
	switch s {
	case "off":
		return nil, nil
	case "on":
		return NewCache(0), nil
	}
	capacity, err := strconv.Atoi(s)
	if err != nil || capacity <= 0 {
		return nil, fmt.Errorf("campaign: invalid cache setting %q (want on, off, or a positive capacity)", s)
	}
	return NewCache(capacity), nil
}

// cacheKey composes the canonical configuration fingerprint with the
// task-level inputs that select the protocol pipeline and its pseudo-random
// schedules.  Everything else that influences the outcome (model, sizes,
// identifiers, chirality, circumference, round bound) is already part of the
// fingerprint.
func cacheKey(fingerprint string, sc Scenario) string {
	return fmt.Sprintf("%s|task=%s|cs=%t|seed=%d", fingerprint, sc.Task, sc.CommonSense, sc.Seed)
}

// fill populates the outcome fields of a record from a task outcome whose
// frame matches the scenario's (the cached path translates through the
// spec's MapOutcome first): agent 0 of the requesting frame supplies the
// per-stage splits, and zero-valued stages vanish from the JSON, so each
// task's records expose exactly its own stage vocabulary.
func (rec *Record) fill(out task.Outcome) {
	rec.Rounds = out.Rounds
	rec.LeaderID = out.LeaderID
	if len(out.PerAgent) > 0 {
		sp := out.PerAgent[0]
		rec.RoundsNontrivial = sp.Nontrivial
		rec.RoundsAgreement = sp.Agreement
		rec.RoundsLeader = sp.Leader
		rec.RoundsCoordination = sp.Coordination
		rec.RoundsDiscovery = sp.Discovery
	}
	rec.Extra = out.Extra
	rec.Status = StatusOK
	rec.Verified = true
}
