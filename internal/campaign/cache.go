package campaign

import (
	"fmt"
	"strconv"

	"ringsym/internal/memo"
)

// Cache memoises scenario outcomes under their canonical symmetry key: two
// scenarios whose generated networks are rotations, reflections or frame
// translations of each other (and that share the task, the common-sense
// promise and the protocol-schedule seed) resolve to the same key, so only
// the first one is executed and the other is answered from the cache with its
// outcome translated back through the frame map.  Concurrent workers that
// race on the same key are collapsed by singleflight, and a scenario nobody
// is waiting for any more is cancelled within one engine round.
//
// A Cache is safe for concurrent use and may be shared across sweeps and, in
// the serving daemon, across requests.
type Cache struct {
	c *memo.Cache[cachedOutcome]
}

// NewCache returns a cache bounded to roughly capacity outcomes (<= 0 selects
// the memo default).  The bound counts entries, not bytes: one cached outcome
// holds the per-agent stage splits of its whole ring, so resident memory is
// O(capacity × n) — size the capacity against the largest n served (e.g.
// ringd's -maxn), not against available memory alone.
func NewCache(capacity int) *Cache {
	return &Cache{c: memo.New[cachedOutcome](capacity)}
}

// Stats returns a snapshot of the hit/miss/dedup/eviction counters.
func (c *Cache) Stats() memo.Stats { return c.c.Stats() }

// ParseCacheFlag maps a CLI -cache flag value to a cache: "off" disables it
// (nil), "on" enables it with the default bound, and a positive integer sets
// the capacity.  Shared by cmd/ringfarm and cmd/ringd so the flag semantics
// cannot diverge between the two.
func ParseCacheFlag(s string) (*Cache, error) {
	switch s {
	case "off":
		return nil, nil
	case "on":
		return NewCache(0), nil
	}
	capacity, err := strconv.Atoi(s)
	if err != nil || capacity <= 0 {
		return nil, fmt.Errorf("campaign: invalid cache setting %q (want on, off, or a positive capacity)", s)
	}
	return NewCache(capacity), nil
}

// agentSplit is one agent's per-stage round split, stored for every agent of
// the canonical run so a cache hit can report the splits of the original
// frame's agent 0, whatever canonical index it landed on.
type agentSplit struct {
	Nontrivial, Agreement, Leader int // coordinate stages
	Coordination, Discovery       int // discover stages
}

// cachedOutcome is the frame-independent outcome of one verified scenario
// run, with per-agent data indexed in the canonical frame.
type cachedOutcome struct {
	Rounds   int
	LeaderID int
	PerAgent []agentSplit
}

// cacheKey composes the canonical configuration fingerprint with the
// task-level inputs that select the protocol pipeline and its pseudo-random
// schedules.  Everything else that influences the outcome (model, sizes,
// identifiers, chirality, circumference, round bound) is already part of the
// fingerprint.
func cacheKey(fingerprint string, sc Scenario) string {
	return fmt.Sprintf("%s|task=%s|cs=%t|seed=%d", fingerprint, sc.Task, sc.CommonSense, sc.Seed)
}

// fill populates the outcome fields of a record from a (possibly memoised)
// canonical outcome; idx0 is the canonical index of the original frame's ring
// index 0, whose per-stage splits the record reports.
func (rec *Record) fill(out cachedOutcome, idx0 int) {
	rec.Rounds = out.Rounds
	rec.LeaderID = out.LeaderID
	sp := out.PerAgent[idx0]
	switch rec.Task {
	case TaskCoordinate:
		rec.RoundsNontrivial = sp.Nontrivial
		rec.RoundsAgreement = sp.Agreement
		rec.RoundsLeader = sp.Leader
	case TaskDiscover:
		rec.RoundsCoordination = sp.Coordination
		rec.RoundsDiscovery = sp.Discovery
	}
	rec.Status = StatusOK
	rec.Verified = true
}
