package campaign

import (
	"reflect"
	"strings"
	"testing"
)

func TestExpandDeterministicAndComplete(t *testing.T) {
	m := Matrix{Sizes: []int{8, 16}, Seeds: []int64{1, 2, 3}, CommonSense: []bool{false, true}}
	a, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("expansion is not deterministic")
	}
	// tasks(2) × models(3) × parities(2) × (mixed: cs=false only → 1;
	// common: cs false+true → 2) × sizes(2) × seeds(3)
	want := 2 * 3 * 2 * 3 * 2 * 3
	if len(a) != want {
		t.Fatalf("got %d scenarios, want %d", len(a), want)
	}
	for i, sc := range a {
		if sc.Index != i {
			t.Fatalf("scenario %d has index %d", i, sc.Index)
		}
		if sc.CommonSense && sc.MixedChirality {
			t.Fatalf("scenario %d: contradictory common sense with mixed chirality", i)
		}
		if sc.IDBound != 4*sc.N {
			t.Fatalf("scenario %d: IDBound %d for n=%d", i, sc.IDBound, sc.N)
		}
	}
}

func TestExpandParityAdjustment(t *testing.T) {
	m := Matrix{Tasks: []Task{TaskCoordinate}, Models: []string{"basic"}, Sizes: []int{8}}
	scs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 4 { // parities(2) × chirality(2)
		t.Fatalf("got %d scenarios, want 4", len(scs))
	}
	odd, even := 0, 0
	for _, sc := range scs {
		if sc.N == 9 {
			odd++
		}
		if sc.N == 8 {
			even++
		}
	}
	if odd != 2 || even != 2 {
		t.Fatalf("parity adjustment wrong: odd(n=9)=%d even(n=8)=%d in %+v", odd, even, scs)
	}
}

func TestExpandRejectsBadAxes(t *testing.T) {
	for _, m := range []Matrix{
		{Models: []string{"quantum"}},
		{Tasks: []Task{"fly"}},
		{Parities: []string{"prime"}},
		{Chirality: []string{"sinister"}},
		{Sizes: []int{3}},
	} {
		if _, err := m.Expand(); err == nil {
			t.Errorf("Expand(%+v) accepted an invalid axis", m)
		}
	}
}

func TestShardPartition(t *testing.T) {
	scs, err := Matrix{Sizes: []int{8, 12, 16}, Seeds: []int64{1, 2}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 2, 3, 5, 7, len(scs), len(scs) + 3} {
		seen := make(map[int]int)
		var union []Scenario
		for i := 0; i < m; i++ {
			shard, err := Shard(scs, i, m)
			if err != nil {
				t.Fatal(err)
			}
			for _, sc := range shard {
				seen[sc.Index]++
			}
			union = append(union, shard...)
		}
		if len(seen) != len(scs) {
			t.Fatalf("m=%d: shards cover %d of %d scenarios", m, len(seen), len(scs))
		}
		for idx, c := range seen {
			if c != 1 {
				t.Fatalf("m=%d: scenario %d appears in %d shards", m, idx, c)
			}
		}
		if !reflect.DeepEqual(union, scs) {
			t.Fatalf("m=%d: concatenated shards differ from the full list", m)
		}
	}
	if _, err := Shard(scs, 2, 2); err == nil {
		t.Error("Shard accepted i == m")
	}
}

func TestParseShard(t *testing.T) {
	if i, m, err := ParseShard(""); err != nil || i != 0 || m != 1 {
		t.Errorf("ParseShard(\"\") = %d/%d, %v", i, m, err)
	}
	if i, m, err := ParseShard("2/5"); err != nil || i != 2 || m != 5 {
		t.Errorf("ParseShard(2/5) = %d/%d, %v", i, m, err)
	}
	for _, s := range []string{
		"5/5", "-1/3", "x/y", "3",
		// Degenerate and trailing-garbage designators must be rejected too:
		// m=0 would make every shard invalid, and Sscanf-style parsing used
		// to silently ignore the junk after a valid prefix.
		"0/0", "1/0", "0/4x", "1/2/3", " 0/4", "0/ 4", "0x1/4", "/4", "0/",
	} {
		if _, _, err := ParseShard(s); err == nil {
			t.Errorf("ParseShard(%q) accepted", s)
		}
	}
}

func TestDecodeMatrix(t *testing.T) {
	m, err := DecodeMatrix(strings.NewReader(
		`{"tasks": ["patrol"], "models": ["lazy"], "sizes": [9], "seeds": [1, 2]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Tasks, []Task{"patrol"}) || !reflect.DeepEqual(m.Sizes, []int{9}) {
		t.Fatalf("decoded matrix %+v", m)
	}

	// A typo'd axis must fail loudly, not silently sweep the defaults.
	_, err = DecodeMatrix(strings.NewReader(`{"task": ["coordinate"], "sizes": [8]}`))
	if err == nil {
		t.Fatal("DecodeMatrix accepted an unknown field")
	}
	for _, want := range []string{`"task"`, "tasks, models"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-field error %q does not mention %s", err, want)
		}
	}

	if _, err := DecodeMatrix(strings.NewReader(`{"sizes": [8]} {"sizes": [16]}`)); err == nil {
		t.Error("DecodeMatrix accepted trailing data")
	}
	if _, err := DecodeMatrix(strings.NewReader(`{"sizes": "all"}`)); err == nil {
		t.Error("DecodeMatrix accepted a mistyped axis value")
	}
}
