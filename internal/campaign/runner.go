package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"ringsym"
	"ringsym/internal/netgen"
)

// Status classifies how a scenario run ended.
type Status string

// Record statuses.
const (
	// StatusOK: the protocol ran to completion and verified against the
	// simulator's ground truth.
	StatusOK Status = "ok"
	// StatusFailed: the protocol errored, verification failed, or the worker
	// recovered a panic; Error holds the cause.
	StatusFailed Status = "failed"
	// StatusUnsolvable: the problem is impossible in the setting (Lemma 5);
	// the scenario is recorded but nothing ran.
	StatusUnsolvable Status = "unsolvable"
)

// Record is the outcome of one scenario.  Everything exported to JSONL is a
// pure function of the scenario, so exports are byte-stable; the wall-clock
// time is deliberately excluded from serialisation and only feeds the
// in-memory aggregation.
type Record struct {
	Scenario
	Status Status `json:"status"`
	// Error is the failure cause when Status is "failed".
	Error string `json:"error,omitempty"`
	// Verified reports that the outcome was checked against the simulator's
	// ground truth (exactly one leader; correct position maps).
	Verified bool `json:"verified"`
	// Rounds is the total round cost of the task.
	Rounds int `json:"rounds"`
	// Per-stage round splits (coordination stages for coordinate, the
	// coordination/discovery split for discover), from agent 0.
	RoundsNontrivial   int `json:"rounds_nontrivial,omitempty"`
	RoundsAgreement    int `json:"rounds_agreement,omitempty"`
	RoundsLeader       int `json:"rounds_leader,omitempty"`
	RoundsCoordination int `json:"rounds_coordination,omitempty"`
	RoundsDiscovery    int `json:"rounds_discovery,omitempty"`
	// LeaderID is the identifier of the elected leader.
	LeaderID int `json:"leader_id,omitempty"`
	// Bound and BoundStr give the paper's bound for the task's total cost.
	Bound    float64 `json:"bound"`
	BoundStr string  `json:"bound_str"`
	// Wall is the measured wall-clock cost of the scenario.  Excluded from
	// JSON so that exports stay deterministic.
	Wall time.Duration `json:"-"`
}

// Options configures a campaign run.
type Options struct {
	// Workers is the worker-pool size; defaults to GOMAXPROCS.
	Workers int
	// Circ is the ring circumference in ticks; 0 uses the netgen default.
	Circ int64
	// MaxRounds aborts runaway protocols; 0 uses the engine default.
	MaxRounds int
}

// testHookScenario, when set, runs inside the worker just before a scenario
// executes; tests use it to inject panics.
var testHookScenario func(Scenario)

// Run executes the scenarios on a pool of workers and streams one Record per
// scenario on the returned channel, in completion order.  The channel is
// closed when all scenarios finished or the context was cancelled (in which
// case records for not-yet-started scenarios are never emitted).  A panic
// inside one scenario is isolated: it becomes a failed record and the sweep
// continues.
func Run(ctx context.Context, scenarios []Scenario, opts Options) <-chan Record {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) && len(scenarios) > 0 {
		workers = len(scenarios)
	}
	out := make(chan Record)
	feed := make(chan Scenario)
	go func() {
		defer close(feed)
		for _, sc := range scenarios {
			select {
			case feed <- sc:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for sc := range feed {
				// The scenario runs under ctx, so cancellation interrupts an
				// in-flight protocol within one round instead of waiting out
				// the round bound, recording the scenario as failed with an
				// error wrapping context.Canceled.  Emission below stays
				// best-effort on a cancelled context (the documented Run
				// contract): a consumer that keeps draining until close
				// receives the record unless ctx.Done wins the race.
				rec := RunScenarioContext(ctx, sc, opts)
				select {
				case out <- rec:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// RunAll runs the scenarios and returns all records sorted by scenario
// index.  It returns the context error when the run was cut short.
func RunAll(ctx context.Context, scenarios []Scenario, opts Options) ([]Record, error) {
	recs := make([]Record, 0, len(scenarios))
	for rec := range Run(ctx, scenarios, opts) {
		recs = append(recs, rec)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Index < recs[j].Index })
	return recs, nil
}

// RunScenario executes a single scenario synchronously: it generates the
// network with netgen and drives it through the public ringsym facade, which
// verifies outcomes against the simulator's ground truth.  Panics anywhere in
// generation or protocol execution are recovered into a failed record.
func RunScenario(sc Scenario, opts Options) Record {
	return RunScenarioContext(context.Background(), sc, opts)
}

// RunScenarioContext is RunScenario with cancellation: when ctx is cancelled
// the in-flight protocol is aborted within one round and the scenario is
// recorded as failed with an error wrapping context.Canceled (or the context's
// cause), rather than running until the engine's round bound.
func RunScenarioContext(ctx context.Context, sc Scenario, opts Options) (rec Record) {
	start := time.Now()
	rec = Record{Scenario: sc}
	defer func() {
		if r := recover(); r != nil {
			rec = Record{Scenario: sc, Status: StatusFailed, Error: fmt.Sprintf("panic: %v", r)}
			model, err := ParseModel(sc.Model)
			if err == nil {
				rec.Bound, rec.BoundStr = boundFor(sc, model)
			}
		}
		rec.Wall = time.Since(start)
	}()
	if testHookScenario != nil {
		testHookScenario(sc)
	}

	model, err := ParseModel(sc.Model)
	if err != nil {
		rec.Status = StatusFailed
		rec.Error = err.Error()
		return rec
	}
	rec.Bound, rec.BoundStr = boundFor(sc, model)
	if sc.Task == TaskDiscover && !Solvable(model, sc.N%2 == 1, LocationDiscovery) {
		rec.Status = StatusUnsolvable
		return rec
	}

	gen, err := netgen.Generate(netgen.Options{
		N:                   sc.N,
		IDBound:             sc.IDBound,
		Circ:                opts.Circ,
		Model:               model,
		MixedChirality:      sc.MixedChirality,
		ForceSplitChirality: sc.MixedChirality,
		Seed:                sc.Seed,
		MaxRounds:           opts.MaxRounds,
	})
	if err != nil {
		rec.Status = StatusFailed
		rec.Error = err.Error()
		return rec
	}
	nw, err := ringsym.NewNetwork(ringsym.Config{
		Model:         gen.Model,
		Circumference: gen.Circ,
		Positions:     gen.Positions,
		IDs:           gen.IDs,
		IDBound:       gen.IDBound,
		Chirality:     gen.Chirality,
		MaxRounds:     gen.MaxRounds,
	})
	if err != nil {
		rec.Status = StatusFailed
		rec.Error = err.Error()
		return rec
	}

	switch sc.Task {
	case TaskCoordinate:
		res, err := nw.CoordinateContext(ctx, ringsym.CoordinationOptions{CommonSense: sc.CommonSense, Seed: sc.Seed})
		if err != nil {
			rec.Status = StatusFailed
			rec.Error = err.Error()
			return rec
		}
		a := res.PerAgent[0]
		rec.Rounds = res.Rounds
		rec.RoundsNontrivial = a.RoundsNontrivial
		rec.RoundsAgreement = a.RoundsAgreement
		rec.RoundsLeader = a.RoundsLeader
		rec.LeaderID = res.LeaderID
	case TaskDiscover:
		res, err := nw.DiscoverLocationsContext(ctx, ringsym.DiscoveryOptions{CommonSense: sc.CommonSense, Seed: sc.Seed})
		if err != nil {
			rec.Status = StatusFailed
			rec.Error = err.Error()
			return rec
		}
		a := res.PerAgent[0]
		rec.Rounds = res.Rounds
		rec.RoundsCoordination = a.RoundsCoordination
		rec.RoundsDiscovery = a.RoundsDiscovery
		for _, pa := range res.PerAgent {
			if pa.IsLeader {
				rec.LeaderID = pa.ID
			}
		}
	default:
		rec.Status = StatusFailed
		rec.Error = fmt.Sprintf("campaign: unknown task %q", sc.Task)
		return rec
	}
	rec.Status = StatusOK
	rec.Verified = true
	return rec
}
