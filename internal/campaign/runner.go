package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ringsym"
	"ringsym/internal/canon"
	"ringsym/internal/engine"
	"ringsym/internal/memo"
	"ringsym/internal/netgen"
	"ringsym/internal/obs"
	"ringsym/internal/ring"
	"ringsym/internal/task"
)

// Status classifies how a scenario run ended.
type Status string

// Record statuses.
const (
	// StatusOK: the protocol ran to completion and verified against the
	// simulator's ground truth.
	StatusOK Status = "ok"
	// StatusFailed: the protocol errored, verification failed, or the worker
	// recovered a panic; Error holds the cause.
	StatusFailed Status = "failed"
	// StatusUnsolvable: the problem is impossible in the setting (Lemma 5);
	// the scenario is recorded but nothing ran.
	StatusUnsolvable Status = "unsolvable"
)

// Record is the outcome of one scenario.  Everything exported to JSONL is a
// pure function of the scenario, so exports are byte-stable; the wall-clock
// time is deliberately excluded from serialisation and only feeds the
// in-memory aggregation.
type Record struct {
	Scenario
	Status Status `json:"status"`
	// Error is the failure cause when Status is "failed".
	Error string `json:"error,omitempty"`
	// Verified reports that the outcome was checked against the simulator's
	// ground truth (exactly one leader; correct position maps).
	Verified bool `json:"verified"`
	// Rounds is the total round cost of the task.
	Rounds int `json:"rounds"`
	// Per-stage round splits (coordination stages for coordinate, the
	// coordination/discovery split for discover), from agent 0.
	RoundsNontrivial   int `json:"rounds_nontrivial,omitempty"`
	RoundsAgreement    int `json:"rounds_agreement,omitempty"`
	RoundsLeader       int `json:"rounds_leader,omitempty"`
	RoundsCoordination int `json:"rounds_coordination,omitempty"`
	RoundsDiscovery    int `json:"rounds_discovery,omitempty"`
	// LeaderID is the identifier of the elected leader.
	LeaderID int `json:"leader_id,omitempty"`
	// Bound and BoundStr give the paper's bound for the task's total cost.
	Bound    float64 `json:"bound"`
	BoundStr string  `json:"bound_str"`
	// Cache reports how the memo cache served this record ("miss", "hit" or
	// "dedup"); empty — and absent from the JSON — when the cache is
	// disabled.  Which duplicate of an orbit is the miss and whether a
	// duplicate arrives as a hit or an in-flight dedup depend on worker
	// scheduling; the per-orbit totals (one miss, the rest hits+dedups) are
	// deterministic.
	Cache string `json:"cache,omitempty"`
	// Extra holds task-declared result fields (see task.Outcome.Extra): new
	// tasks export task-specific data here without touching the exporter.
	// The built-in tasks leave it nil, which keeps their records
	// byte-identical to pre-registry builds.
	Extra map[string]json.RawMessage `json:"extra,omitempty"`
	// Wall is the measured wall-clock cost of the scenario.  Excluded from
	// JSON so that exports stay deterministic.
	Wall time.Duration `json:"-"`
}

// Options configures a campaign run.
type Options struct {
	// Workers is the worker-pool size; defaults to GOMAXPROCS.
	Workers int
	// Circ is the ring circumference in ticks; 0 uses the netgen default.
	Circ int64
	// MaxRounds aborts runaway protocols; 0 uses the engine default.
	MaxRounds int
	// Cache, when non-nil, memoises outcomes under their canonical symmetry
	// key (see internal/canon): symmetric duplicates in the sweep are
	// answered from the cache and annotated in Record.Cache.  When nil,
	// every scenario executes from scratch and records carry no cache
	// annotation, byte-identical to a cache-less build.
	Cache *Cache
}

// testHookScenario, when set, runs inside the worker just before a scenario
// executes; tests use it to inject panics.
var testHookScenario func(Scenario)

// Run executes the scenarios on a pool of workers and streams one Record per
// scenario on the returned channel, in completion order.  The channel is
// closed when all scenarios finished or the context was cancelled (in which
// case records for not-yet-started scenarios are never emitted).  A panic
// inside one scenario is isolated: it becomes a failed record and the sweep
// continues.
func Run(ctx context.Context, scenarios []Scenario, opts Options) <-chan Record {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) && len(scenarios) > 0 {
		workers = len(scenarios)
	}
	out := make(chan Record)
	feed := make(chan []Scenario)
	if opts.Cache != nil {
		scenarios = DecorrelateOrbits(scenarios)
	}
	if obs.On() {
		obs.Emit(obs.Event{Type: obs.CampaignStart, Level: obs.LevelInfo, Total: len(scenarios)})
	}
	go func() {
		// The feed hands out blocks of consecutive scenarios rather than one
		// scenario per channel rendezvous: on small-n sweeps a scenario costs
		// tens of microseconds, so per-scenario channel synchronisation would
		// be a measurable fraction of the work.
		defer close(feed)
		for lo := 0; lo < len(scenarios); lo += feedChunk {
			hi := lo + feedChunk
			if hi > len(scenarios) {
				hi = len(scenarios)
			}
			select {
			case feed <- scenarios[lo:hi]:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	var done atomic.Uint64
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Each worker owns one scheduler batch arena for its whole shift:
			// every FSM run of every scenario this worker executes reuses the
			// same machine/yield/pending arrays and leap executor, keeping the
			// block of small-n scenarios cache-resident instead of paying a
			// pool round-trip (and cold arrays) per scenario.
			wctx := withNetSlot(engine.WithBatch(ctx, engine.NewBatch()), &netSlot{})
			for block := range feed {
				for _, sc := range block {
					// The scenario runs under ctx, so cancellation interrupts an
					// in-flight protocol within one round instead of waiting out
					// the round bound, recording the scenario as failed with an
					// error wrapping context.Canceled.  Emission below stays
					// best-effort on a cancelled context (the documented Run
					// contract): a consumer that keeps draining until close
					// receives the record unless ctx.Done wins the race.
					rec := RunScenarioContext(wctx, sc, opts)
					n := done.Add(1)
					if obs.On() && n%checkpointEvery == 0 {
						obs.Emit(obs.Event{Type: obs.CampaignCheckpoint, Level: obs.LevelInfo, Done: int(n), Total: len(scenarios)})
					}
					select {
					case out <- rec:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		if obs.On() {
			obs.Emit(obs.Event{Type: obs.CampaignFinish, Level: obs.LevelInfo, Done: int(done.Load()), Total: len(scenarios)})
		}
		close(out)
	}()
	return out
}

// feedChunk is the number of consecutive scenarios handed to a worker per
// feed rendezvous.  Small enough that tail imbalance is negligible even on
// short sweeps, large enough to amortise the channel synchronisation.
const feedChunk = 8

// checkpointEvery is the campaign.checkpoint cadence in completed scenarios:
// frequent enough that a live view or durability layer tracking checkpoints
// lags a sweep by well under a second, rare enough to be free next to the
// per-scenario events.
const checkpointEvery = 1000

// emitScenarioDone publishes the completion event for one record:
// scenario.error for failures (with the cause), scenario.finish otherwise.
// Callers guard with obs.On() to avoid the call itself; the early return
// keeps the helper correct on its own, so no future call site can build the
// Event — including its string fields — on a quiet bus.
func emitScenarioDone(rec Record) {
	if !obs.On() {
		return
	}
	ev := obs.Event{
		Type: obs.ScenarioFinish, Level: obs.LevelInfo,
		Task: string(rec.Task), Model: rec.Model, N: rec.N, Seed: rec.Seed, Index: rec.Index,
		Status: string(rec.Status), Cache: rec.Cache,
		Rounds: int64(rec.Rounds), WallMicros: rec.Wall.Microseconds(),
	}
	if rec.Status == StatusFailed {
		ev.Type, ev.Level, ev.Err = obs.ScenarioError, obs.LevelError, rec.Error
	}
	obs.Emit(ev)
}

// decorrelateWindow is the reorder horizon of DecorrelateOrbits: scenarios
// move only within a window of this many feed slots.  Large enough to hold
// many distinct orbits per window (framings per orbit are typically single
// digits), small enough that index-ordered consumers (OrderedWriter) buffer
// at most one window of out-of-order records instead of the whole sweep.
const decorrelateWindow = 256

// DecorrelateOrbits reorders a cached sweep's feed so symmetric framings of
// one orbit are spread apart instead of adjacent: Expand nests phase and
// reflection innermost, so a block of consecutive scenarios is one orbit,
// and feeding it to concurrent workers would serialise the pool on the
// singleflight lock (one worker computes the representative while the rest
// join the in-flight call and idle).  Within each window, untransformed
// framings go first: distinct orbits compute in parallel and the transformed
// framings become plain hits.  The reorder is deterministic, bounded to
// decorrelateWindow feed slots, and records keep their original Index, so
// exports, aggregation and sharding semantics are untouched — only the
// completion order (already unspecified) changes.
func DecorrelateOrbits(scenarios []Scenario) []Scenario {
	sorted := append([]Scenario(nil), scenarios...)
	for lo := 0; lo < len(sorted); lo += decorrelateWindow {
		hi := lo + decorrelateWindow
		if hi > len(sorted) {
			hi = len(sorted)
		}
		chunk := sorted[lo:hi]
		sort.SliceStable(chunk, func(i, j int) bool {
			if chunk[i].Phase != chunk[j].Phase {
				return chunk[i].Phase < chunk[j].Phase
			}
			return !chunk[i].Reflect && chunk[j].Reflect
		})
	}
	return sorted
}

// RunAll runs the scenarios and returns all records sorted by scenario
// index.  It returns the context error when the run was cut short.
func RunAll(ctx context.Context, scenarios []Scenario, opts Options) ([]Record, error) {
	recs := make([]Record, 0, len(scenarios))
	for rec := range Run(ctx, scenarios, opts) {
		recs = append(recs, rec)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Index < recs[j].Index })
	return recs, nil
}

// RunScenario executes a single scenario synchronously: it generates the
// network with netgen and drives it through the public ringsym facade, which
// verifies outcomes against the simulator's ground truth.  Panics anywhere in
// generation or protocol execution are recovered into a failed record.
func RunScenario(sc Scenario, opts Options) Record {
	//ringvet:allow ctxflow context-free compatibility wrapper: RunScenarioContext is the cancellable form
	return RunScenarioContext(context.Background(), sc, opts)
}

// RunScenarioContext is RunScenario with cancellation: when ctx is cancelled
// the in-flight protocol is aborted within one round and the scenario is
// recorded as failed with an error wrapping context.Canceled (or the context's
// cause), rather than running until the engine's round bound.
func RunScenarioContext(ctx context.Context, sc Scenario, opts Options) (rec Record) {
	//ringvet:allow determinism wall time feeds Record.Wall, which the export layer strips (see runner_test "wall time leaked")
	start := time.Now()
	if obs.On() {
		obs.Emit(obs.Event{
			Type: obs.ScenarioStart, Level: obs.LevelDebug,
			Task: string(sc.Task), Model: sc.Model, N: sc.N, Seed: sc.Seed, Index: sc.Index,
		})
	}
	rec = Record{Scenario: sc}
	defer func() {
		if r := recover(); r != nil {
			rec = Record{Scenario: sc, Status: StatusFailed, Error: fmt.Sprintf("panic: %v", r)}
			if model, err := ParseModel(sc.Model); err == nil {
				if spec, err := task.Lookup(string(sc.Task)); err == nil {
					rec.Bound, rec.BoundStr = spec.Bound(model, sc.N%2 == 1, sc.CommonSense, sc.N, sc.IDBound)
				}
			}
		}
		//ringvet:allow determinism wall time feeds Record.Wall, which the export layer strips (see runner_test "wall time leaked")
		rec.Wall = time.Since(start)
		if obs.On() {
			emitScenarioDone(rec)
		}
	}()
	if testHookScenario != nil {
		testHookScenario(sc)
	}

	model, err := ParseModel(sc.Model)
	if err != nil {
		rec.Status = StatusFailed
		rec.Error = err.Error()
		return rec
	}
	spec, err := task.Lookup(string(sc.Task))
	if err != nil {
		rec.Status = StatusFailed
		rec.Error = err.Error()
		return rec
	}
	oddN := sc.N%2 == 1
	rec.Bound, rec.BoundStr = spec.Bound(model, oddN, sc.CommonSense, sc.N, sc.IDBound)
	if !spec.Solvable(model, oddN) {
		rec.Status = StatusUnsolvable
		return rec
	}

	gen, err := generateConfig(sc, opts, model)
	if err != nil {
		rec.Status = StatusFailed
		rec.Error = err.Error()
		return rec
	}

	if opts.Cache == nil {
		out, err := runSpec(ctx, spec, gen, sc)
		if err != nil {
			rec.Status = StatusFailed
			rec.Error = err.Error()
			return rec
		}
		rec.fill(out) // identity frame: the outcome is already in sc's frame
		return rec
	}

	// Cached path: run the canonical representative of the configuration's
	// orbit (so every orbit member computes the identical stored outcome) and
	// translate the result back into this scenario's frame through the task's
	// MapOutcome.
	ccfg, m, err := canon.Canonicalize(gen)
	if err != nil {
		rec.Status = StatusFailed
		rec.Error = err.Error()
		return rec
	}
	out, kind, err := opts.Cache.c.Do(ctx, cacheKey(canon.Fingerprint(ccfg), sc), func(cctx context.Context) (task.Outcome, error) {
		// The computation runs on a cache-owned goroutine that can outlive
		// this caller (another waiter keeps it alive after a cancellation),
		// while cctx still carries ctx's values — so the worker-owned arenas
		// riding in them must be detached here or two goroutines could share
		// one arena.  The engine falls back to its internal pools.
		return runSpec(detachWorkerState(cctx), spec, ccfg, sc)
	})
	if err != nil {
		rec.Status = StatusFailed
		rec.Error = err.Error()
		return rec
	}
	rec.fill(spec.MapOutcome(out, m))
	rec.Cache = kind.String()
	return rec
}

// ProbeCache answers a scenario purely from the memo cache: it returns the
// record (annotated as a hit) when the outcome of the scenario's canonical
// representative is already cached, and ok=false otherwise — when the cache
// is nil, the scenario is unsolvable/invalid (those paths never touch the
// cache), or the outcome simply is not there yet.  Nothing executes and no
// singleflight computation is joined, so a serving layer can answer hits on
// the request goroutine without occupying a pool worker; every false falls
// through to RunScenarioContext, which repeats this preparation and handles
// all error reporting.  The repeat is deliberate: generation plus
// canonicalization costs microseconds against a protocol run's milliseconds,
// and threading a prepared config into the worker path would couple the two
// call sites for a rounding-error saving on the (uncached) slow path.
func ProbeCache(sc Scenario, opts Options) (Record, bool) {
	if opts.Cache == nil {
		return Record{}, false
	}
	model, err := ParseModel(sc.Model)
	if err != nil {
		return Record{}, false
	}
	spec, err := task.Lookup(string(sc.Task))
	if err != nil {
		return Record{}, false
	}
	oddN := sc.N%2 == 1
	if !spec.Solvable(model, oddN) {
		return Record{}, false
	}
	gen, err := generateConfig(sc, opts, model)
	if err != nil {
		return Record{}, false
	}
	ccfg, m, err := canon.Canonicalize(gen)
	if err != nil {
		return Record{}, false
	}
	out, ok := opts.Cache.c.Get(cacheKey(canon.Fingerprint(ccfg), sc))
	if !ok {
		return Record{}, false
	}
	rec := Record{Scenario: sc}
	rec.Bound, rec.BoundStr = spec.Bound(model, oddN, sc.CommonSense, sc.N, sc.IDBound)
	rec.fill(spec.MapOutcome(out, m))
	rec.Cache = memo.Hit.String()
	// A probe hit never reaches RunScenarioContext, so its completion event is
	// emitted here: cache-served scenarios stay visible on the event spine.
	if obs.On() {
		emitScenarioDone(rec)
	}
	return rec, true
}

// generateConfig builds the scenario's (possibly phase-rotated/reflected)
// network configuration.  It is the single source of generation truth for
// both the execution path (RunScenarioContext) and the cache probe
// (ProbeCache): with one copy, the canonical key the probe computes cannot
// drift from the key the worker stores under when generation inputs change.
func generateConfig(sc Scenario, opts Options, model ring.Model) (engine.Config, error) {
	gen, err := netgen.Generate(netgen.Options{
		N:                   sc.N,
		IDBound:             sc.IDBound,
		Circ:                opts.Circ,
		Model:               model,
		MixedChirality:      sc.MixedChirality,
		ForceSplitChirality: sc.MixedChirality,
		Seed:                sc.Seed,
		MaxRounds:           opts.MaxRounds,
	})
	if err != nil {
		return engine.Config{}, err
	}
	if sc.Phase != 0 || sc.Reflect {
		return canon.Transform(gen, sc.Phase, sc.Reflect)
	}
	return gen, nil
}

// netSlot is a worker-owned network-reuse slot: one facade network, reset in
// place for every scenario the worker runs, so the ring state, agent objects
// and their grown scratch buffers survive across a whole sweep instead of
// being rebuilt per scenario.  A slot is single-threaded, like the engine
// arena it rides next to in the worker's context.
type netSlot struct{ nw *ringsym.Network }

type netSlotKey struct{}

// withNetSlot returns a context carrying s; runSpec reuses the slot's network
// when present.  Pass nil to shadow an inherited slot (detachWorkerState).
func withNetSlot(ctx context.Context, s *netSlot) context.Context {
	return context.WithValue(ctx, netSlotKey{}, s)
}

// detachWorkerState shadows the worker-owned single-threaded state riding in
// ctx's values (the engine arena and the network slot) so a computation that
// may run concurrently with — or outlive — the worker cannot share them.
func detachWorkerState(ctx context.Context) context.Context {
	return withNetSlot(engine.WithBatch(ctx, nil), nil)
}

// acquireNetwork returns a network for cfg: the context's slot network, reset
// in place, when a slot is installed — a fresh one otherwise (and after a
// failed reset, whose contract leaves the network undefined).
func acquireNetwork(ctx context.Context, cfg ringsym.Config) (*ringsym.Network, error) {
	s, _ := ctx.Value(netSlotKey{}).(*netSlot)
	if s != nil && s.nw != nil {
		if err := s.nw.Reset(cfg); err == nil {
			return s.nw, nil
		}
		s.nw = nil
	}
	nw, err := ringsym.NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	if s != nil {
		s.nw = nw
	}
	return nw, nil
}

// runSpec executes the scenario's task on the given configuration through
// the registry spec: the network is built behind the public facade (whose
// pipelines verify protocol outcomes against the simulator's ground truth),
// the spec runs, and the finished outcome is re-checked with the spec's own
// Verify before it may enter the cache or a record.
func runSpec(ctx context.Context, spec task.Spec, gen engine.Config, sc Scenario) (task.Outcome, error) {
	nw, err := acquireNetwork(ctx, ringsym.Config{
		Model:         gen.Model,
		Circumference: gen.Circ,
		Positions:     gen.Positions,
		IDs:           gen.IDs,
		IDBound:       gen.IDBound,
		Chirality:     gen.Chirality,
		MaxRounds:     gen.MaxRounds,
	})
	if err != nil {
		return task.Outcome{}, err
	}
	p := task.Params{
		N:              sc.N,
		IDBound:        gen.IDBound,
		MixedChirality: sc.MixedChirality,
		CommonSense:    sc.CommonSense,
		Seed:           sc.Seed,
	}
	out, err := spec.Run(ctx, nw, p)
	if err != nil {
		return task.Outcome{}, err
	}
	if err := spec.Verify(nw, p, out); err != nil {
		return task.Outcome{}, fmt.Errorf("%w: %v", ringsym.ErrVerification, err)
	}
	return out, nil
}
