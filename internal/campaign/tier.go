package campaign

import (
	"context"
	"encoding/json"
	"regexp"

	"ringsym/internal/memo"
	"ringsym/internal/store"
	"ringsym/internal/task"
)

// ValidCacheKey matches the exact shape cacheKey produces: the 64-hex
// canonical fingerprint followed by the task, common-sense and seed
// selectors.  The serving layer's GET /v1/cache/<key> validates against it
// so a peer fetch (or a curious client) cannot probe the store with
// arbitrary strings.
var ValidCacheKey = regexp.MustCompile(`^[0-9a-f]{64}\|task=[a-z0-9_-]+\|cs=(?:true|false)\|seed=-?[0-9]+$`)

// outcomeTier adapts the byte-oriented persistent store (and optional fleet
// peer fetcher) to memo's typed Tier: outcomes cross the boundary as the
// same deterministic JSON encoding everywhere (encoding/json sorts map keys
// and round-trips RawMessage verbatim), so a record served from disk or
// from a peer is byte-identical to a recomputed one after re-encoding.
type outcomeTier struct {
	st    *store.Store
	peers *store.Peers
}

// Load is memo's miss path below memory: local disk first, then one HTTP
// hop across the fleet peers.  A peer hit is written through to the local
// store before returning, so the next restart (and the next peer asking us)
// is served locally.  Undecodable bytes — a foreign or corrupt record —
// report a miss and fall through to compute; the store never poisons a
// result.
func (t outcomeTier) Load(ctx context.Context, key string) (task.Outcome, memo.Kind, bool) {
	if t.st != nil {
		if b, ok := t.st.Get(key); ok {
			if out, ok := decodeOutcome(b); ok {
				return out, memo.DiskHit, true
			}
		}
	}
	if t.peers != nil {
		if b, ok := t.peers.Fetch(ctx, key); ok {
			if out, ok := decodeOutcome(b); ok {
				if t.st != nil {
					t.st.Put(key, b) // best-effort promotion to local disk
				}
				return out, memo.PeerHit, true
			}
		}
	}
	var zero task.Outcome
	return zero, memo.Miss, false
}

// Store writes a freshly computed outcome through to disk.  Failures are
// dropped: persistence is an optimisation, and the computed value is
// already on its way to the caller.
func (t outcomeTier) Store(key string, out task.Outcome) {
	if t.st == nil {
		return
	}
	b, err := json.Marshal(out)
	if err != nil {
		return
	}
	t.st.Put(key, b)
}

func decodeOutcome(b []byte) (task.Outcome, bool) {
	var out task.Outcome
	if err := json.Unmarshal(b, &out); err != nil {
		return task.Outcome{}, false
	}
	return out, true
}

// AttachTier threads the persistent store (and, when non-nil, the fleet
// peer fetcher) under the in-memory cache as its second tier: the miss path
// becomes memory → disk → peers → compute.  Call before serving; passing a
// nil store and nil peers detaches the tier.
func (c *Cache) AttachTier(st *store.Store, peers *store.Peers) {
	if st == nil && peers == nil {
		c.c.SetTier(nil)
		return
	}
	c.c.SetTier(outcomeTier{st: st, peers: peers})
}
