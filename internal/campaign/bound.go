package campaign

import (
	"ringsym/internal/ring"
	"ringsym/internal/task"
)

// Problem identifies one of the paper's problems for bound lookup.  The
// definitions moved to internal/task with the task registry; these aliases
// keep the campaign API (and internal/eval, which builds on it) stable.
type Problem = task.Problem

// Problems with bounds in the paper.
const (
	LeaderElection     = task.LeaderElection
	NontrivialMove     = task.NontrivialMove
	DirectionAgreement = task.DirectionAgreement
	LocationDiscovery  = task.LocationDiscovery
)

// Solvable reports whether the problem is solvable at all in the given
// setting (Lemma 5: location discovery is impossible in the basic model with
// even n).  It delegates to the task registry's bound tables.
func Solvable(model ring.Model, oddN bool, p Problem) bool {
	return task.Solvable(model, oddN, p)
}

// Bound returns the paper's asymptotic bound for a problem in a setting, as
// a plain formula without the hidden constant, together with its
// human-readable form.  It is the single source of the theoretical columns
// of Table I and Table II; internal/eval delegates here, and the registry's
// task specs consult the same tables for per-record bounds.
func Bound(model ring.Model, oddN, commonSense bool, p Problem, n, idBound int) (float64, string) {
	return task.Bound(model, oddN, commonSense, p, n, idBound)
}
