package campaign

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// smallMatrix is a fast sweep touching all models, both parities and both
// chirality regimes.
func smallMatrix() Matrix {
	return Matrix{Sizes: []int{8}, Seeds: []int64{1, 2}}
}

func stripWall(recs []Record) []Record {
	out := append([]Record(nil), recs...)
	for i := range out {
		out[i].Wall = 0
	}
	return out
}

func TestRunSweepDeterministicAndVerified(t *testing.T) {
	scs, err := smallMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunAll(context.Background(), scs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAll(context.Background(), scs, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(scs) {
		t.Fatalf("got %d records for %d scenarios", len(a), len(scs))
	}
	if !bytes.Equal(mustJSONL(t, scs, a), mustJSONL(t, scs, b)) {
		t.Fatal("records differ between runs with different worker counts")
	}
	for _, rec := range a {
		switch rec.Status {
		case StatusOK:
			if !rec.Verified || rec.Rounds <= 0 {
				t.Errorf("%s: ok record not verified or zero rounds: %+v", rec.Key(), rec)
			}
			if rec.BoundStr == "" || rec.Bound <= 0 {
				t.Errorf("%s: missing bound", rec.Key())
			}
		case StatusUnsolvable:
			if rec.Task != TaskDiscover || rec.Model != "basic" || rec.N%2 != 0 {
				t.Errorf("%s: unexpected unsolvable record", rec.Key())
			}
		default:
			t.Errorf("%s: status %s (%s)", rec.Key(), rec.Status, rec.Error)
		}
	}
}

func mustJSONL(t *testing.T, scs []Scenario, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewOrderedWriter(&buf, scs)
	for _, rec := range recs {
		if err := w.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWorkerPanicIsolated(t *testing.T) {
	scs, err := Matrix{
		Tasks:     []Task{TaskCoordinate},
		Models:    []string{"lazy"},
		Parities:  []string{ParityEven},
		Chirality: []string{ChiralityMixed},
		Sizes:     []int{8},
		Seeds:     []int64{1, 2, 3, 4, 5, 6},
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	testHookScenario = func(sc Scenario) {
		if sc.Seed == 3 {
			panic("scenario exploded")
		}
	}
	defer func() { testHookScenario = nil }()

	recs, err := RunAll(context.Background(), scs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(scs) {
		t.Fatalf("panic aborted the sweep: got %d of %d records", len(recs), len(scs))
	}
	failed := 0
	for _, rec := range recs {
		if rec.Seed == 3 {
			failed++
			if rec.Status != StatusFailed || !strings.Contains(rec.Error, "scenario exploded") {
				t.Errorf("panicking scenario recorded as %s (%s)", rec.Status, rec.Error)
			}
		} else if rec.Status != StatusOK {
			t.Errorf("%s: healthy scenario recorded as %s", rec.Key(), rec.Status)
		}
	}
	if failed != 1 {
		t.Errorf("got %d failed records, want 1", failed)
	}
}

func TestRunCancellation(t *testing.T) {
	scs, err := Matrix{Sizes: []int{8, 16, 32}, Seeds: []int64{1, 2, 3, 4}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := 0
	for range Run(ctx, scs, Options{Workers: 2}) {
		got++
		if got == 3 {
			cancel()
		}
	}
	cancel()
	if got >= len(scs) {
		t.Fatalf("cancellation did not cut the sweep short (%d records)", got)
	}
	if _, err := RunAll(ctx, scs, Options{Workers: 2}); err == nil {
		t.Error("RunAll on a cancelled context did not report the error")
	}
}

// TestRunScenarioContextCancelledSurfacesError verifies that a cancelled
// context turns the scenario into a failed record that names
// context.Canceled, instead of the protocol running to completion (or until
// the engine's round bound).
func TestRunScenarioContextCancelledSurfacesError(t *testing.T) {
	scs, err := smallMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := RunScenarioContext(ctx, scs[0], Options{})
	if rec.Status != StatusFailed {
		t.Fatalf("status = %s, want failed", rec.Status)
	}
	if !strings.Contains(rec.Error, context.Canceled.Error()) {
		t.Fatalf("record error %q does not surface context.Canceled", rec.Error)
	}
	// The record still carries its scenario identity and bound so aggregated
	// artefacts stay well-formed.
	if rec.Index != scs[0].Index || rec.BoundStr == "" {
		t.Errorf("cancelled record lost scenario identity: %+v", rec)
	}
}

// TestRunCancelledPoolDrainsPromptly verifies the pool does not hang on
// cancellation even when every scenario would otherwise be long-running: the
// context aborts in-flight engine runs within a round.
func TestRunCancelledPoolDrainsPromptly(t *testing.T) {
	scs, err := smallMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range Run(ctx, scs, Options{Workers: 2}) {
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled pool did not drain")
	}
}

func TestShardUnionReproducesFullExport(t *testing.T) {
	scs, err := Matrix{
		Tasks:  []Task{TaskCoordinate, TaskDiscover},
		Models: []string{"perceptive", "lazy"},
		Sizes:  []int{8},
		Seeds:  []int64{1, 2},
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunAll(context.Background(), scs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fullJSONL := mustJSONL(t, scs, full)

	var union bytes.Buffer
	const m = 3
	for i := 0; i < m; i++ {
		shard, err := Shard(scs, i, m)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := RunAll(context.Background(), shard, Options{})
		if err != nil {
			t.Fatal(err)
		}
		union.Write(mustJSONL(t, shard, recs))
	}
	if !bytes.Equal(fullJSONL, union.Bytes()) {
		t.Fatal("concatenated shard exports differ from the full export")
	}
	if !bytes.Contains(fullJSONL, []byte(`"status":"ok"`)) {
		t.Fatalf("export looks wrong:\n%s", fullJSONL)
	}
	if bytes.Contains(fullJSONL, []byte("Wall")) {
		t.Fatal("wall time leaked into the deterministic export")
	}
}

// TestArbitraryPartitionReproducesFullExport generalizes the shard-union
// property from contiguous i/m shards to ANY partition of the index space
// into contiguous ranges: each range run independently (in an arbitrary
// execution order), then merged back in index order, reproduces the
// unsharded JSONL byte-for-byte.  This is the invariant the fleet lease
// merger (internal/fleet) rests on — lease boundaries move at runtime
// (re-leasing, work-stealing splits), so byte-identity must hold for every
// cut, not just the even ones.
func TestArbitraryPartitionReproducesFullExport(t *testing.T) {
	scs, err := Matrix{
		Tasks:  []Task{TaskCoordinate, TaskDiscover},
		Models: []string{"perceptive", "lazy"},
		Sizes:  []int{8},
		Seeds:  []int64{1, 2},
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunAll(context.Background(), scs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fullJSONL := mustJSONL(t, scs, full)

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		// Random cut points, including degenerate partitions (single range,
		// all-singleton) on the first trials.
		var cuts []int
		switch trial {
		case 0:
			cuts = []int{len(scs)}
		case 1:
			for i := 1; i <= len(scs); i++ {
				cuts = append(cuts, i)
			}
		default:
			for i := 1; i < len(scs); i++ {
				if rng.Intn(3) == 0 {
					cuts = append(cuts, i)
				}
			}
			cuts = append(cuts, len(scs))
		}
		type rng2 struct{ lo, hi int }
		var ranges []rng2
		lo := 0
		for _, hi := range cuts {
			ranges = append(ranges, rng2{lo, hi})
			lo = hi
		}

		// Execute the ranges in a shuffled order — a partition's pieces are
		// independent, so execution order must not matter.
		parts := make([][]byte, len(ranges))
		for _, ri := range rng.Perm(len(ranges)) {
			r := ranges[ri]
			recs, err := RunAll(context.Background(), scs[r.lo:r.hi], Options{})
			if err != nil {
				t.Fatal(err)
			}
			parts[ri] = mustJSONL(t, scs[r.lo:r.hi], recs)
		}
		var merged bytes.Buffer
		for _, p := range parts {
			merged.Write(p)
		}
		if !bytes.Equal(fullJSONL, merged.Bytes()) {
			t.Fatalf("trial %d: partition into %d ranges does not reproduce the full export", trial, len(ranges))
		}
	}
}

func TestRunScenarioWallClock(t *testing.T) {
	rec := RunScenario(Scenario{Task: TaskCoordinate, Model: "lazy", N: 8, IDBound: 32, MixedChirality: true, Seed: 1}, Options{})
	if rec.Status != StatusOK {
		t.Fatalf("status %s: %s", rec.Status, rec.Error)
	}
	if rec.Wall <= 0 || rec.Wall > time.Minute {
		t.Errorf("implausible wall time %v", rec.Wall)
	}
}
