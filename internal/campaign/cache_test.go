package campaign

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// symmetricMatrix is a sweep in which every setting appears in 6 symmetric
// variants (3 phases × 2 reflections) that the cache must collapse.
func symmetricMatrix() Matrix {
	return Matrix{
		Sizes:       []int{8},
		Seeds:       []int64{1, 2},
		Phases:      []int{0, 1, 2},
		Reflections: []bool{false, true},
	}
}

// TestCacheMatchesUncached is the end-to-end soundness test of the memo
// cache: the same sweep run with and without the cache must produce
// field-identical records (modulo the cache annotation itself), including
// per-stage splits translated back from the canonical frame.
func TestCacheMatchesUncached(t *testing.T) {
	scenarios, err := symmetricMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunAll(context.Background(), scenarios, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(0)
	cached, err := RunAll(context.Background(), scenarios, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(cached) {
		t.Fatalf("record counts differ: %d vs %d", len(plain), len(cached))
	}
	solvable := 0
	for i := range plain {
		want, got := plain[i], cached[i]
		if want.Status == StatusUnsolvable {
			// Unsolvable settings (Lemma 5) are classified before anything
			// runs and must not touch the cache.
			if got.Cache != "" {
				t.Errorf("%s: unsolvable record touched the cache", got.Key())
			}
			want.Wall, got.Wall = 0, 0
			if !reflect.DeepEqual(want, got) {
				t.Errorf("record %d differs:\ncached: %+v\nplain:  %+v", i, got, want)
			}
			continue
		}
		solvable++
		if got.Cache == "" {
			t.Errorf("%s: cached run lacks cache annotation", got.Key())
		}
		got.Cache = ""
		want.Wall, got.Wall = 0, 0
		if !reflect.DeepEqual(want, got) {
			t.Errorf("record %d differs:\ncached: %+v\nplain:  %+v", i, got, want)
		}
		if want.Status != StatusOK || !want.Verified {
			t.Errorf("%s: status %s verified=%v", want.Key(), want.Status, want.Verified)
		}
	}
	if solvable == 0 {
		t.Fatal("sweep contained no solvable scenarios")
	}

	// 6 symmetric variants per solvable orbit: exactly one miss each, the
	// rest served as hits or in-flight dedups.
	st := cache.Stats()
	orbits := solvable / 6
	if int(st.Misses) != orbits {
		t.Errorf("misses = %d, want %d", st.Misses, orbits)
	}
	if int(st.Hits+st.Dedups) != solvable-orbits {
		t.Errorf("hits+dedups = %d, want %d", st.Hits+st.Dedups, solvable-orbits)
	}
}

// TestCacheSequentialDeterministicKinds: with one worker there is no
// scheduling race, so the first member of every orbit is the miss and every
// later member is a plain hit.
func TestCacheSequentialDeterministicKinds(t *testing.T) {
	scenarios, err := Matrix{Sizes: []int{8}, Phases: []int{0, 1, 2, 3}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(0)
	recs, err := RunAll(context.Background(), scenarios, Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		want := "hit"
		if rec.Phase == 0 {
			want = "miss"
		}
		if rec.Status == StatusUnsolvable {
			if rec.Cache != "" {
				t.Errorf("%s: unsolvable record must not touch the cache", rec.Key())
			}
			continue
		}
		if rec.Cache != want {
			t.Errorf("%s: cache = %q, want %q", rec.Key(), rec.Cache, want)
		}
	}
	if st := cache.Stats(); st.Dedups != 0 {
		t.Errorf("sequential run recorded %d dedups", st.Dedups)
	}
}

// TestScenarioJSONBackwardCompatible: the new phase/reflect/cache fields must
// vanish from the serialised form when unset, keeping cache-less exports
// byte-identical to earlier builds.
func TestScenarioJSONBackwardCompatible(t *testing.T) {
	rec := Record{Scenario: Scenario{Index: 3, Task: TaskCoordinate, Model: "basic", N: 8, IDBound: 32, Seed: 1}, Status: StatusOK, Verified: true, Rounds: 10}
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"phase", "reflect", "cache"} {
		if strings.Contains(string(raw), banned) {
			t.Errorf("zero-valued %q leaked into the JSON: %s", banned, raw)
		}
	}
	rec.Phase, rec.Reflect, rec.Cache = 2, true, "hit"
	raw, err = json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, wanted := range []string{`"phase":2`, `"reflect":true`, `"cache":"hit"`} {
		if !strings.Contains(string(raw), wanted) {
			t.Errorf("missing %s in %s", wanted, raw)
		}
	}
}

// TestExpandPhases: the phase/reflection axes multiply the scenario list and
// default to the single untransformed variant.
func TestExpandPhases(t *testing.T) {
	base, err := Matrix{Sizes: []int{8}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range base {
		if sc.Phase != 0 || sc.Reflect {
			t.Fatalf("default expansion contains transformed scenario %+v", sc)
		}
	}
	sym, err := symmetricMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(base) * 2 * 6; len(sym) != want { // 2 seeds × 3 phases × 2 reflections
		t.Fatalf("symmetric expansion has %d scenarios, want %d", len(sym), want)
	}
	for i, sc := range sym {
		if sc.Index != i {
			t.Fatalf("scenario %d has index %d", i, sc.Index)
		}
	}
}

// TestSummaryCacheColumns: the cache writers add the three columns, the
// plain writers stay byte-compatible.
func TestSummaryCacheColumns(t *testing.T) {
	agg := NewAggregator()
	sc := Scenario{Task: TaskCoordinate, Model: "basic", N: 8, Seed: 1}
	agg.Add(Record{Scenario: sc, Status: StatusOK, Rounds: 10, Cache: "miss"})
	sc.Seed = 2
	agg.Add(Record{Scenario: sc, Status: StatusOK, Rounds: 12, Cache: "hit"})
	sc.Seed = 3
	agg.Add(Record{Scenario: sc, Status: StatusOK, Rounds: 12, Cache: "dedup"})
	if agg.CacheMisses != 1 || agg.CacheHits != 1 || agg.CacheDedups != 1 {
		t.Fatalf("totals: %d/%d/%d", agg.CacheMisses, agg.CacheHits, agg.CacheDedups)
	}
	rows := agg.Summary()
	if len(rows) != 1 || rows[0].CacheMisses != 1 || rows[0].CacheHits != 1 || rows[0].CacheDedups != 1 {
		t.Fatalf("rows: %+v", rows)
	}

	var plain, withCache strings.Builder
	if err := WriteSummaryCSV(&plain, rows); err != nil {
		t.Fatal(err)
	}
	if err := WriteSummaryCSVCache(&withCache, rows); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "cache") {
		t.Errorf("plain CSV mentions the cache:\n%s", plain.String())
	}
	if !strings.Contains(withCache.String(), "cache_misses,cache_hits,cache_dedups") ||
		!strings.Contains(withCache.String(), ",1,1,1") {
		t.Errorf("cache CSV misses columns:\n%s", withCache.String())
	}
	md := FormatSummaryMarkdownCache(rows)
	if !strings.Contains(md, "| miss | hit | dedup |") || !strings.Contains(md, " 1 | 1 | 1 |") {
		t.Errorf("cache markdown misses columns:\n%s", md)
	}
	if strings.Contains(FormatSummaryMarkdown(rows), "dedup") {
		t.Errorf("plain markdown mentions the cache")
	}
}

// TestCacheCancellation: a cancelled context aborts a cached-path scenario
// within one round, and the failed outcome is not cached.
func TestCacheCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cache := NewCache(0)
	sc := Scenario{Task: TaskCoordinate, Model: "basic", N: 9, IDBound: 36, Seed: 1}
	rec := RunScenarioContext(ctx, sc, Options{Cache: cache})
	if rec.Status != StatusFailed {
		t.Fatalf("status = %s", rec.Status)
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("cancelled run was cached: %+v", st)
	}
	// The same scenario succeeds afterwards and is cached.
	rec = RunScenarioContext(context.Background(), sc, Options{Cache: cache})
	if rec.Status != StatusOK || rec.Cache != "miss" {
		t.Fatalf("retry: %+v", rec)
	}
	if st := cache.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d", st.Entries)
	}
}

// TestUpperBounds: the pre-expansion bounds must dominate the real expansion
// and saturate instead of overflowing on abusive axis products.
func TestUpperBounds(t *testing.T) {
	m := symmetricMatrix()
	scenarios, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	bound, maxN := m.UpperBounds()
	if bound < len(scenarios) {
		t.Fatalf("bound %d < actual expansion %d", bound, len(scenarios))
	}
	if maxN != 9 { // sizes {8}: even keeps 8, odd parity adjusts to 9
		t.Fatalf("maxN = %d, want 9", maxN)
	}
	huge := Matrix{Seeds: make([]int64, 1<<20), Phases: make([]int, 1<<20), Sizes: []int{1 << 30}}
	bound, maxN = huge.UpperBounds()
	if bound < 1<<40 || bound < 0 {
		t.Fatalf("huge bound = %d, want saturated positive", bound)
	}
	if maxN < 1<<30 {
		t.Fatalf("huge maxN = %d", maxN)
	}

	// Axis lengths tuned so a post-multiply saturation check would wrap
	// int64 negative and wave the spec through the serving cap; the bound
	// must saturate positive instead.
	wrap := Matrix{
		CommonSense: make([]bool, 4000),
		Sizes:       make([]int, 100000),
		Seeds:       make([]int64, 100000),
		Phases:      make([]int, 100000),
		Reflections: []bool{false, false, false},
	}
	for i := range wrap.Sizes {
		wrap.Sizes[i] = 8
	}
	bound, _ = wrap.UpperBounds()
	if bound <= 0 {
		t.Fatalf("wrap-tuned bound = %d, want saturated positive", bound)
	}
}

// TestProbeCache: a probe answers only already-cached outcomes, as a record
// field-identical to the executed one (modulo the hit annotation), and never
// executes or joins anything itself.
func TestProbeCache(t *testing.T) {
	cache := NewCache(0)
	opts := Options{Cache: cache}
	sc := Scenario{Task: TaskCoordinate, Model: "basic", N: 8, IDBound: 32, Seed: 1, Phase: 2, Reflect: true}

	if _, ok := ProbeCache(sc, Options{}); ok {
		t.Fatal("probe hit with a nil cache")
	}
	if _, ok := ProbeCache(sc, opts); ok {
		t.Fatal("probe hit on an empty cache")
	}
	if st := cache.Stats(); st.Misses != 0 {
		t.Fatalf("probe executed something: %+v", st)
	}

	ran := RunScenario(sc, opts)
	if ran.Status != StatusOK || ran.Cache != "miss" {
		t.Fatalf("priming run: %+v", ran)
	}
	got, ok := ProbeCache(sc, opts)
	if !ok {
		t.Fatal("probe missed a cached outcome")
	}
	if got.Cache != "hit" {
		t.Fatalf("probe annotation = %q", got.Cache)
	}
	got.Cache, ran.Cache = "", ""
	got.Wall, ran.Wall = 0, 0
	if !reflect.DeepEqual(got, ran) {
		t.Fatalf("probe record differs from executed record:\nprobe %+v\nran   %+v", got, ran)
	}

	// Any other orbit member of the primed scenario is also answerable.
	other := sc
	other.Phase, other.Reflect = 0, false
	if _, ok := ProbeCache(other, opts); !ok {
		t.Fatal("probe missed a symmetric framing of a cached outcome")
	}

	// Unsolvable scenarios never touch the cache, so probes never hit them.
	unsolvable := Scenario{Task: TaskDiscover, Model: "basic", N: 8, IDBound: 32, Seed: 1}
	RunScenario(unsolvable, opts)
	if _, ok := ProbeCache(unsolvable, opts); ok {
		t.Fatal("probe hit an unsolvable scenario")
	}
}
