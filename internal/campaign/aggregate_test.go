package campaign

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

// bruteForcePercentile is the reference nearest-rank percentile over the raw
// samples.
func bruteForcePercentile(samples []int, p int) int {
	sorted := append([]int(nil), samples...)
	sort.Ints(sorted)
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func TestPercentileMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		samples := make([]int, n)
		hist := make(map[int]int)
		for i := range samples {
			v := rng.Intn(60) // heavy ties, like round counts
			samples[i] = v
			hist[v]++
		}
		for _, p := range []int{1, 25, 50, 75, 90, 99, 100} {
			got := Percentile(hist, n, p)
			want := bruteForcePercentile(samples, p)
			if got != want {
				t.Fatalf("trial %d: p%d of %d samples: got %d, want %d", trial, p, n, got, want)
			}
		}
	}
}

func record(sc Scenario, status Status, rounds int, bound float64) Record {
	return Record{Scenario: sc, Status: status, Rounds: rounds, Bound: bound, Wall: time.Millisecond}
}

func TestAggregatorSummary(t *testing.T) {
	sc := Scenario{Task: TaskCoordinate, Model: "lazy", N: 8}
	agg := NewAggregator()
	for i, rounds := range []int{10, 20, 30, 40} {
		r := record(sc, StatusOK, rounds, 10)
		r.Index = i
		r.Seed = int64(i)
		agg.Add(r)
	}
	fail := record(sc, StatusFailed, 0, 10)
	fail.Index = 4
	agg.Add(fail)
	other := record(Scenario{Task: TaskDiscover, Model: "basic", N: 8}, StatusUnsolvable, 0, 0)
	other.Index = 5
	agg.Add(other)

	if agg.Total != 6 || agg.OK != 4 || agg.Failed != 1 || agg.Unsolvable != 1 {
		t.Fatalf("totals wrong: %+v", agg)
	}
	rows := agg.Summary()
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	// Rows are sorted by task: coordinate before discover.
	r := rows[0]
	if r.Task != TaskCoordinate || r.Count != 5 || r.Failed != 1 {
		t.Fatalf("coordinate row wrong: %+v", r)
	}
	if r.MinRounds != 10 || r.MaxRounds != 40 || r.MeanRounds != 25 {
		t.Fatalf("min/max/mean wrong: %+v", r)
	}
	if r.P50Rounds != 20 || r.P90Rounds != 40 {
		t.Fatalf("percentiles wrong: %+v", r)
	}
	if r.BoundRatio != 2.5 { // mean of 1,2,3,4
		t.Fatalf("bound ratio = %v, want 2.5", r.BoundRatio)
	}
	if rows[1].Unsolvable != 1 || rows[1].Count != 1 {
		t.Fatalf("discover row wrong: %+v", rows[1])
	}

	var csv strings.Builder
	if err := WriteSummaryCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "coordinate,lazy,even,common,no,8,5,1,0,10,40,25.000,20,40,40,2.5000") {
		t.Errorf("unexpected CSV:\n%s", csv.String())
	}
	md := FormatSummaryMarkdown(rows)
	if !strings.Contains(md, "| coordinate | lazy |") || !strings.Contains(md, "| discover | basic |") {
		t.Errorf("unexpected markdown:\n%s", md)
	}
}
