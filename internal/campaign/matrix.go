// Package campaign executes large declarative sweeps of ring-network
// scenarios in parallel.  A Matrix declares axes (tasks, movement models,
// parities, chirality regimes, common-sense flags, network sizes, seeds) and
// expands into a deterministic, shardable list of Scenario specs; Run
// executes the scenarios on a worker pool sized to the machine, isolating
// panics so one bad scenario cannot kill a sweep, and streams one Record per
// scenario; Aggregator folds the record stream into per-setting statistics
// (count/min/max/mean/exact percentiles, observed-vs-bound ratios) without
// retaining the records in memory.
//
// The package is the substrate of cmd/ringfarm and of the Table I/II
// generation in internal/eval.  All results are deterministic for a fixed
// spec: a record depends only on its scenario (network generation and the
// pseudo-random protocol schedules are seeded), so the exported JSONL and
// summary artefacts are byte-identical across repeated runs and across any
// union of shards covering the same matrix.
package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ringsym/internal/ring"
	"ringsym/internal/task"
)

// Task selects which protocol pipeline a scenario runs.  Any name registered
// in the internal/task registry is a valid value; the constants below name
// the paper's built-ins for convenience.
type Task string

// The built-in tasks of the paper (see internal/task for the full registry).
const (
	// TaskCoordinate runs the coordination pipeline of the paper (nontrivial
	// move, direction agreement, leader election).
	TaskCoordinate Task = "coordinate"
	// TaskDiscover runs full location discovery (which includes
	// coordination).
	TaskDiscover Task = "discover"
)

// Parity axis values.
const (
	ParityOdd  = "odd"
	ParityEven = "even"
)

// Chirality axis values.
const (
	ChiralityMixed  = "mixed"
	ChiralityCommon = "common"
)

// Scenario is one fully specified experiment: every field is explicit, so a
// scenario is reproducible in isolation and a record is a pure function of
// its scenario.
type Scenario struct {
	// Index is the scenario's position in the expanded matrix; it is the sort
	// key of all exported artefacts and the basis of sharding.
	Index int `json:"index"`
	// Task is the protocol pipeline to run.
	Task Task `json:"task"`
	// Model is the movement model name (basic, lazy or perceptive).
	Model string `json:"model"`
	// N is the number of agents (already parity-adjusted).
	N int `json:"n"`
	// IDBound is the public bound N of the paper on identifiers.
	IDBound int `json:"id_bound"`
	// MixedChirality gives agents adversarially mixed senses of direction.
	MixedChirality bool `json:"mixed_chirality"`
	// CommonSense promises an a-priori common sense of direction (only valid
	// with common chirality).
	CommonSense bool `json:"common_sense"`
	// Seed drives the network generation and the pseudo-random schedules.
	Seed int64 `json:"seed"`
	// Phase rotates the generated ring so the agent with ring index Phase
	// (mod n) leads the frame; the scenario is a symmetric variant of the
	// Phase 0 scenario with an identical outcome (see internal/canon), which
	// the memo cache deduplicates.  Taken modulo n at run time.
	Phase int `json:"phase,omitempty"`
	// Reflect mirrors the generated ring (reversing the global orientation
	// and flipping every chirality bit); like Phase, a reflected scenario is
	// outcome-equivalent to its unreflected twin.
	Reflect bool `json:"reflect,omitempty"`
}

// Key returns a compact human-readable label for the scenario.
func (s Scenario) Key() string {
	chir := ChiralityCommon
	if s.MixedChirality {
		chir = ChiralityMixed
	}
	cs := ""
	if s.CommonSense {
		cs = " cs"
	}
	sym := ""
	if s.Phase != 0 || s.Reflect {
		sym = fmt.Sprintf("/ph=%d", s.Phase)
		if s.Reflect {
			sym += "r"
		}
	}
	return fmt.Sprintf("%s/%s/n=%d/%s%s/seed=%d%s", s.Task, s.Model, s.N, chir, cs, s.Seed, sym)
}

// Matrix declares a scenario sweep as a cross-product of axes.  Zero-valued
// axes default to full coverage (all tasks, all models, both parities, both
// chirality regimes, no common sense) so an empty matrix is already a
// meaningful smoke sweep.  The struct is the JSON sweep-spec format of
// cmd/ringfarm.
type Matrix struct {
	// Tasks to run; defaults to every registered task the paper states a
	// bound for (coordinate and discover).
	Tasks []Task `json:"tasks,omitempty"`
	// Models are movement-model names; defaults to basic, lazy, perceptive.
	Models []string `json:"models,omitempty"`
	// Parities are "odd" and/or "even"; defaults to both.  Sizes are nudged
	// up by one when their parity does not match.
	Parities []string `json:"parities,omitempty"`
	// Chirality regimes are "mixed" and/or "common"; defaults to both.
	Chirality []string `json:"chirality,omitempty"`
	// CommonSense flags; defaults to {false}.  true is only expanded against
	// common chirality (the promise would be violated in mixed rings).
	CommonSense []bool `json:"common_sense,omitempty"`
	// Sizes are the requested network sizes n (>= 5 after parity
	// adjustment); defaults to {16, 32}.
	Sizes []int `json:"sizes,omitempty"`
	// Seeds for network generation and schedules; defaults to {1}.
	Seeds []int64 `json:"seeds,omitempty"`
	// Phases are ring-rotation offsets applied to the generated network
	// (see Scenario.Phase); defaults to {0}.  Non-trivial phases make the
	// sweep symmetric-heavy: every phase of a setting is outcome-equivalent,
	// which the memo cache collapses to one computation.
	Phases []int `json:"phases,omitempty"`
	// Reflections are the mirror variants to sweep (see Scenario.Reflect);
	// defaults to {false}.
	Reflections []bool `json:"reflections,omitempty"`
	// IDBoundFactor sets the identifier bound N = IDBoundFactor·n;
	// defaults to 4.
	IDBoundFactor int `json:"id_bound_factor,omitempty"`
}

func (m Matrix) filled() Matrix {
	if len(m.Tasks) == 0 {
		// All registered tasks with a paper bound, in sorted (deterministic)
		// name order; today that is exactly {coordinate, discover}, so default
		// sweeps stay byte-identical as the registry grows derived workloads.
		for _, name := range task.PaperBoundNames() {
			m.Tasks = append(m.Tasks, Task(name))
		}
	}
	if len(m.Models) == 0 {
		m.Models = []string{"basic", "lazy", "perceptive"}
	}
	if len(m.Parities) == 0 {
		m.Parities = []string{ParityOdd, ParityEven}
	}
	if len(m.Chirality) == 0 {
		m.Chirality = []string{ChiralityMixed, ChiralityCommon}
	}
	if len(m.CommonSense) == 0 {
		m.CommonSense = []bool{false}
	}
	if len(m.Sizes) == 0 {
		m.Sizes = []int{16, 32}
	}
	if len(m.Seeds) == 0 {
		m.Seeds = []int64{1}
	}
	if len(m.Phases) == 0 {
		m.Phases = []int{0}
	}
	if len(m.Reflections) == 0 {
		m.Reflections = []bool{false}
	}
	if m.IDBoundFactor <= 0 {
		m.IDBoundFactor = 4
	}
	return m
}

// DecodeMatrix decodes one JSON sweep spec (the Matrix format of
// cmd/ringfarm and POST /v1/campaign) strictly: unknown fields are an error,
// not silence, so a typo'd axis name ("task" for "tasks", "size" for
// "sizes") cannot quietly sweep the defaults instead of what was asked for.
// Trailing data after the spec object is rejected for the same reason.
func DecodeMatrix(r io.Reader) (Matrix, error) {
	var m Matrix
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Matrix{}, fmt.Errorf("campaign: sweep spec: %w (axes: tasks, models, parities, chirality, common_sense, sizes, seeds, phases, reflections, id_bound_factor)", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Matrix{}, fmt.Errorf("campaign: sweep spec: trailing data after the spec object")
	}
	return m, nil
}

// ParseModel maps a movement-model name to its ring.Model.
func ParseModel(name string) (ring.Model, error) {
	switch strings.ToLower(name) {
	case "basic":
		return ring.Basic, nil
	case "lazy":
		return ring.Lazy, nil
	case "perceptive":
		return ring.Perceptive, nil
	}
	return 0, fmt.Errorf("campaign: unknown model %q", name)
}

// AdjustParity nudges n up by one when its parity does not match.
func AdjustParity(n int, odd bool) int {
	if odd == (n%2 == 1) {
		return n
	}
	return n + 1
}

// Expand enumerates the cross-product of the matrix axes in a fixed nesting
// order (task, model, parity, chirality, common sense, size, seed, phase,
// reflection) and
// returns the scenario list with indices assigned in that order.  The
// contradictory combination common-sense × mixed chirality is skipped.
// Expansion is deterministic: the same matrix always yields the same list.
func (m Matrix) Expand() ([]Scenario, error) {
	f := m.filled()
	for _, model := range f.Models {
		if _, err := ParseModel(model); err != nil {
			return nil, err
		}
	}
	tasks := make([]Task, len(f.Tasks))
	for i, t := range f.Tasks {
		tasks[i] = Task(strings.ToLower(string(t)))
		if _, err := task.Lookup(string(tasks[i])); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
	}
	f.Tasks = tasks
	var out []Scenario
	for _, task := range f.Tasks {
		for _, model := range f.Models {
			for _, parity := range f.Parities {
				odd := parity == ParityOdd
				if !odd && parity != ParityEven {
					return nil, fmt.Errorf("campaign: unknown parity %q", parity)
				}
				for _, chir := range f.Chirality {
					mixed := chir == ChiralityMixed
					if !mixed && chir != ChiralityCommon {
						return nil, fmt.Errorf("campaign: unknown chirality %q", chir)
					}
					for _, cs := range f.CommonSense {
						if cs && mixed {
							continue
						}
						for _, size := range f.Sizes {
							n := AdjustParity(size, odd)
							if n < 5 {
								return nil, fmt.Errorf("campaign: size %d too small (the paper needs n > 4)", size)
							}
							for _, seed := range f.Seeds {
								for _, phase := range f.Phases {
									for _, refl := range f.Reflections {
										out = append(out, Scenario{
											Index:          len(out),
											Task:           task,
											Model:          strings.ToLower(model),
											N:              n,
											IDBound:        f.IDBoundFactor * n,
											MixedChirality: mixed,
											CommonSense:    cs,
											Seed:           seed,
											Phase:          phase,
											Reflect:        refl,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// UpperBounds reports conservative pre-expansion bounds for the matrix: the
// full axis product (>= len(Expand()), which may skip contradictory
// common-sense × mixed-chirality combinations) and the largest
// parity-adjusted network size.  Both cost O(axes), not O(product), so a
// server can reject an abusive sweep spec before Expand allocates anything.
// The product saturates instead of overflowing.
func (m Matrix) UpperBounds() (scenarios, maxN int) {
	f := m.filled()
	const saturated = int(^uint(0) >> 1) // MaxInt
	product := int64(1)
	for _, axis := range []int{
		len(f.Tasks), len(f.Models), len(f.Parities), len(f.Chirality),
		len(f.CommonSense), len(f.Sizes), len(f.Seeds), len(f.Phases), len(f.Reflections),
	} {
		if axis == 0 { // unreachable after filled(); kept for exported-API safety
			product = 0
			break
		}
		// Saturate BEFORE multiplying: a wrap past MaxInt64 would turn the
		// bound negative and wave an abusive spec through the cap.
		if product > int64(saturated)/int64(axis) {
			product = int64(saturated)
			break
		}
		product *= int64(axis)
	}
	for _, size := range f.Sizes {
		for _, parity := range f.Parities {
			// A matrix restricted to one parity must not be bounded by the
			// other's +1 adjustment (a sizes=[4096] parities=[even] sweep
			// contains n=4096, not 4097).
			if n := AdjustParity(size, parity == ParityOdd); n > maxN {
				maxN = n
			}
		}
	}
	return int(product), maxN
}

// Shard returns the i-th of m contiguous blocks of the scenario list
// (0 <= i < m).  Blocks are disjoint, their union is the whole list, and —
// because they are contiguous — concatenating the JSONL exports of shards
// 0..m-1 reproduces the unsharded export byte for byte.
func Shard(scenarios []Scenario, i, m int) ([]Scenario, error) {
	if m < 1 || i < 0 || i >= m {
		return nil, fmt.Errorf("campaign: invalid shard %d/%d", i, m)
	}
	l := len(scenarios)
	lo := i * l / m
	hi := (i + 1) * l / m
	return scenarios[lo:hi], nil
}

// ParseShard parses an "i/m" shard designator.  Both parts must be plain
// decimal integers with no trailing input (Sscanf-style parsing would
// silently accept "0/4x" or "1/2/3"), m must be at least 1, and i must lie
// in [0, m).
func ParseShard(s string) (i, m int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	is, ms, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("campaign: invalid shard %q (want i/m, e.g. 0/4)", s)
	}
	i, err1 := strconv.Atoi(is)
	m, err2 := strconv.Atoi(ms)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("campaign: invalid shard %q (want i/m with decimal i and m)", s)
	}
	if m < 1 {
		return 0, 0, fmt.Errorf("campaign: invalid shard %q (m must be >= 1)", s)
	}
	if i < 0 || i >= m {
		return 0, 0, fmt.Errorf("campaign: invalid shard %q (need 0 <= i < m)", s)
	}
	return i, m, nil
}
