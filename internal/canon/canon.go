// Package canon canonicalizes ring-network configurations under the
// symmetries of the model: rotation of the ring indexing, reflection of the
// global orientation (with the induced chirality flip) and translation of the
// position frame.  Two configurations in the same orbit are
// observation-equivalent — every agent keeps its identifier, its identifier
// bound, the parity knowledge and its own-frame observation stream, because
// the engine never reveals ring indices or absolute positions to protocols —
// so any protocol outcome on one member of the orbit is the outcome on every
// member, modulo the frame map between them.  This is the proof obligation
// encoded as property tests in canon_test.go: Run(s) == Run(canon(s)) modulo
// the returned Map, for all three movement models, both chirality regimes and
// both task pipelines.
//
// Canonicalize picks a distinguished representative of the orbit (the
// lexicographically smallest (gap, identifier, chirality) traversal over all
// 2n framings, with positions rebased so the first agent sits at 0) and Key
// derives a byte-stable cache key from it.  Package internal/memo uses the
// key to deduplicate symmetric scenarios, and internal/campaign translates
// memoised outcomes back through the Map.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"ringsym/internal/engine"
)

// ErrBadConfig is returned (wrapped) when a configuration cannot be
// canonicalized.
var ErrBadConfig = errors.New("canon: bad configuration")

// Map is the frame transformation from an original configuration to a member
// of its orbit (in particular the canonical representative): canonical index
// j corresponds to original ring index Rotation+j (mod n) when not reflected,
// and Rotation-j (mod n) when reflected.
type Map struct {
	// N is the number of agents.
	N int
	// Rotation is the original ring index of the agent that becomes index 0.
	Rotation int
	// Reflected reports that the traversal orientation was reversed (and
	// every chirality bit flipped with it).
	Reflected bool
}

// CanonIndex maps an original ring index to its canonical index.
func (m Map) CanonIndex(orig int) int {
	if m.Reflected {
		return ((m.Rotation-orig)%m.N + m.N) % m.N
	}
	return ((orig-m.Rotation)%m.N + m.N) % m.N
}

// OrigIndex maps a canonical index back to the original ring index.
func (m Map) OrigIndex(c int) int {
	if m.Reflected {
		return ((m.Rotation-c)%m.N + m.N) % m.N
	}
	return ((m.Rotation+c)%m.N + m.N) % m.N
}

// orbitView is the read-only decomposition of a configuration that the
// candidate comparison walks: clockwise gaps, identifiers and explicit
// chirality bits by ring index.
type orbitView struct {
	n    int
	gaps []int64
	ids  []int
	chir []bool // nil means all true
}

func (v orbitView) chirAt(i int) bool {
	if v.chir == nil {
		return true
	}
	return v.chir[i]
}

// tupleAt returns the j-th (gap, id, chirality) tuple of the traversal that
// starts at ring index r with the given orientation.  Forward traversals walk
// clockwise, so the gap is the arc to the next agent clockwise; reflected
// traversals walk anticlockwise, so the gap is the arc to the previous agent,
// and the chirality bit is flipped because the agent's private clockwise is
// now measured against the reversed global orientation.
func (v orbitView) tupleAt(r int, reflected bool, j int) (gap int64, id int, chir bool) {
	if reflected {
		a := ((r-j)%v.n + v.n) % v.n
		return v.gaps[((a-1)%v.n+v.n)%v.n], v.ids[a], !v.chirAt(a)
	}
	a := (r + j) % v.n
	return v.gaps[a], v.ids[a], v.chirAt(a)
}

// less reports whether candidate framing (r1, f1) encodes strictly
// lexicographically smaller than (r2, f2).
func (v orbitView) less(r1 int, f1 bool, r2 int, f2 bool) bool {
	for j := 0; j < v.n; j++ {
		g1, id1, c1 := v.tupleAt(r1, f1, j)
		g2, id2, c2 := v.tupleAt(r2, f2, j)
		if g1 != g2 {
			return g1 < g2
		}
		if id1 != id2 {
			return id1 < id2
		}
		if c1 != c2 {
			return !c1 // false sorts before true
		}
	}
	return false
}

func view(cfg engine.Config) (orbitView, error) {
	n := len(cfg.Positions)
	if n < 2 {
		return orbitView{}, fmt.Errorf("%w: %d agents", ErrBadConfig, n)
	}
	if cfg.Circ <= 0 {
		return orbitView{}, fmt.Errorf("%w: circumference %d", ErrBadConfig, cfg.Circ)
	}
	if len(cfg.IDs) != n {
		return orbitView{}, fmt.Errorf("%w: %d IDs for %d agents", ErrBadConfig, len(cfg.IDs), n)
	}
	if cfg.Chirality != nil && len(cfg.Chirality) != n {
		return orbitView{}, fmt.Errorf("%w: %d chirality bits for %d agents", ErrBadConfig, len(cfg.Chirality), n)
	}
	for i := 0; i < n; i++ {
		if cfg.Positions[i] < 0 || cfg.Positions[i] >= cfg.Circ {
			return orbitView{}, fmt.Errorf("%w: position %d out of [0, %d)", ErrBadConfig, cfg.Positions[i], cfg.Circ)
		}
		if i > 0 && cfg.Positions[i] <= cfg.Positions[i-1] {
			return orbitView{}, fmt.Errorf("%w: positions not strictly increasing", ErrBadConfig)
		}
	}
	gaps := make([]int64, n)
	for i := 0; i < n-1; i++ {
		gaps[i] = cfg.Positions[i+1] - cfg.Positions[i]
	}
	gaps[n-1] = cfg.Circ - cfg.Positions[n-1] + cfg.Positions[0]
	return orbitView{n: n, gaps: gaps, ids: cfg.IDs, chir: cfg.Chirality}, nil
}

// build materialises the framing (r, reflected) of v as a configuration:
// positions are the prefix sums of the traversal's gaps (the frame is
// translated so the first agent sits at 0), identifiers and chirality follow
// the traversal.  A chirality slice that comes out all-true collapses to nil,
// the engine's normal form for it.
func build(cfg engine.Config, v orbitView, r int, reflected bool) engine.Config {
	n := v.n
	out := cfg // copies Model, Circ, IDBound, HideParity, MaxRounds, AllowSmall
	out.Positions = make([]int64, n)
	out.IDs = make([]int, n)
	chir := make([]bool, n)
	allTrue := true
	var pos int64
	for j := 0; j < n; j++ {
		gap, id, c := v.tupleAt(r, reflected, j)
		out.Positions[j] = pos
		out.IDs[j] = id
		chir[j] = c
		allTrue = allTrue && c
		pos += gap
	}
	if allTrue {
		out.Chirality = nil
	} else {
		out.Chirality = chir
	}
	return out
}

// Canonicalize returns the canonical representative of cfg's orbit under
// rotation, reflection and translation, together with the Map from cfg's
// frame to the canonical frame.  Identifiers are distinct, so the orbit
// stabiliser is trivial and the representative (and Map) are unique;
// canonicalizing a canonical configuration returns it unchanged with the
// identity Map.
func Canonicalize(cfg engine.Config) (engine.Config, Map, error) {
	v, err := view(cfg)
	if err != nil {
		return engine.Config{}, Map{}, err
	}
	bestR, bestF := 0, false
	for f := 0; f < 2; f++ {
		for r := 0; r < v.n; r++ {
			if f == 0 && r == 0 {
				continue
			}
			if v.less(r, f == 1, bestR, bestF) {
				bestR, bestF = r, f == 1
			}
		}
	}
	return build(cfg, v, bestR, bestF), Map{N: v.n, Rotation: bestR, Reflected: bestF}, nil
}

// Transform returns the member of cfg's orbit whose frame starts at original
// ring index rot (taken modulo n; negative values allowed) and, when
// reflected, traverses the ring in the opposite orientation with every
// chirality bit flipped.  The result's frame is translated so its first agent
// sits at position 0.  Transform(cfg, 0, false) differs from cfg only by that
// translation.
func Transform(cfg engine.Config, rot int, reflected bool) (engine.Config, error) {
	v, err := view(cfg)
	if err != nil {
		return engine.Config{}, err
	}
	rot = ((rot % v.n) + v.n) % v.n
	return build(cfg, v, rot, reflected), nil
}

// encoding layout version; bump when the byte layout below changes so stale
// persisted keys can never alias fresh ones.
const keyVersion = "ringsym-canon-v1"

// Fingerprint hashes the configuration exactly as given (no
// canonicalization): a byte-stable SHA-256 over a fixed binary layout of
// every behaviour-relevant field — model, parity visibility, circumference,
// identifier bound, round bound, positions, identifiers and chirality bits.
// AllowSmall is excluded: it gates validation, not dynamics.  A nil chirality
// slice encodes identically to an explicit all-true slice, matching the
// engine's treatment of the two.
func Fingerprint(cfg engine.Config) string {
	h := sha256.New()
	h.Write([]byte(keyVersion))
	var buf [8]byte
	word := func(v int64) {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	n := len(cfg.Positions)
	word(int64(cfg.Model))
	if cfg.HideParity {
		word(1)
	} else {
		word(0)
	}
	word(cfg.Circ)
	word(int64(n))
	word(int64(cfg.IDBound))
	word(int64(cfg.MaxRounds))
	for _, p := range cfg.Positions {
		word(p)
	}
	for _, id := range cfg.IDs {
		word(int64(id))
	}
	for i := 0; i < n; i++ {
		c := cfg.Chirality == nil || cfg.Chirality[i]
		if c {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Key canonicalizes cfg and returns the fingerprint of the canonical
// representative: every member of an orbit maps to the same key, and
// configurations in different orbits map to different keys (up to hash
// collision).
func Key(cfg engine.Config) (string, error) {
	ccfg, _, err := Canonicalize(cfg)
	if err != nil {
		return "", err
	}
	return Fingerprint(ccfg), nil
}
