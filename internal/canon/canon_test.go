package canon_test

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ringsym"
	"ringsym/internal/canon"
	"ringsym/internal/engine"
	"ringsym/internal/netgen"
	"ringsym/internal/physics"
	"ringsym/internal/ring"
)

func TestMapRoundTrip(t *testing.T) {
	for _, n := range []int{2, 5, 8} {
		for r := 0; r < n; r++ {
			for _, refl := range []bool{false, true} {
				m := canon.Map{N: n, Rotation: r, Reflected: refl}
				for i := 0; i < n; i++ {
					if got := m.OrigIndex(m.CanonIndex(i)); got != i {
						t.Fatalf("n=%d r=%d refl=%v: OrigIndex(CanonIndex(%d)) = %d", n, r, refl, i, got)
					}
					if got := m.CanonIndex(m.OrigIndex(i)); got != i {
						t.Fatalf("n=%d r=%d refl=%v: CanonIndex(OrigIndex(%d)) = %d", n, r, refl, i, got)
					}
				}
				if m.OrigIndex(0) != r {
					t.Fatalf("canonical index 0 must be original index Rotation")
				}
			}
		}
	}
}

// TestCanonicalizeHandWorked pins the canonical form of a small hand-worked
// configuration: circumference 20, positions 2/6/8, identifiers 5/1/3.  The
// gap traversals are small enough to enumerate on paper; the winner is the
// forward traversal from ring index 1, giving gaps (2, 14, 4).
func TestCanonicalizeHandWorked(t *testing.T) {
	cfg := engine.Config{
		Model:      ring.Basic,
		Circ:       20,
		Positions:  []int64{2, 6, 8},
		IDs:        []int{5, 1, 3},
		IDBound:    8,
		AllowSmall: true,
	}
	ccfg, m, err := canon.Canonicalize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{0, 2, 16}; !reflect.DeepEqual(ccfg.Positions, want) {
		t.Errorf("canonical positions = %v, want %v", ccfg.Positions, want)
	}
	if want := []int{1, 3, 5}; !reflect.DeepEqual(ccfg.IDs, want) {
		t.Errorf("canonical IDs = %v, want %v", ccfg.IDs, want)
	}
	if ccfg.Chirality != nil {
		t.Errorf("all-true chirality must normalise to nil, got %v", ccfg.Chirality)
	}
	if m != (canon.Map{N: 3, Rotation: 1, Reflected: false}) {
		t.Errorf("map = %+v", m)
	}
}

// TestReflectionUsesChirality pins that the chirality bits participate in the
// canonical choice: on a configuration whose gaps and identifiers are
// mirror-symmetric, the orientation with the lexicographically smaller
// chirality stream must win.
func TestReflectionUsesChirality(t *testing.T) {
	// Equal gaps, palindromic id layout around index 0 is impossible with
	// distinct ids, so use ids that tie through the first position and let
	// chirality break a gap/id tie instead: two agents, equal gaps, the
	// traversal is decided purely by (id, chirality).
	cfg := engine.Config{
		Model:      ring.Basic,
		Circ:       8,
		Positions:  []int64{0, 4},
		IDs:        []int{1, 2},
		IDBound:    4,
		Chirality:  []bool{true, false},
		AllowSmall: true,
	}
	ccfg, m, err := canon.Canonicalize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Forward from 0 gives (4,1,true)(4,2,false); reflected from 0 gives
	// (4,1,false)(4,2,true).  The reflected stream is smaller (false < true
	// at the first chirality slot).
	if !m.Reflected || m.Rotation != 0 {
		t.Fatalf("map = %+v, want reflection at rotation 0", m)
	}
	if want := []bool{false, true}; !reflect.DeepEqual(ccfg.Chirality, want) {
		t.Errorf("canonical chirality = %v, want %v", ccfg.Chirality, want)
	}
}

func mustGen(t testing.TB, opt netgen.Options) engine.Config {
	t.Helper()
	cfg, err := netgen.Generate(opt)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func mustTransform(t testing.TB, cfg engine.Config, rot int, refl bool) engine.Config {
	t.Helper()
	out, err := canon.Transform(cfg, rot, refl)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestOrbitKeyInvarianceExhaustive enumerates, for small n, every member of
// the rotation × reflection orbit of random and equally spaced
// configurations and demands that all of them canonicalize to the same
// representative and the same key.
func TestOrbitKeyInvarianceExhaustive(t *testing.T) {
	for _, n := range []int{5, 6} {
		for _, equal := range []bool{false, true} {
			for seed := int64(1); seed <= 3; seed++ {
				cfg := mustGen(t, netgen.Options{
					N: n, Seed: seed, Model: ring.Perceptive,
					MixedChirality: true, ForceSplitChirality: true, EqualSpacing: equal,
				})
				wantCfg, _, err := canon.Canonicalize(cfg)
				if err != nil {
					t.Fatal(err)
				}
				wantKey := canon.Fingerprint(wantCfg)
				for rot := 0; rot < n; rot++ {
					for _, refl := range []bool{false, true} {
						member := mustTransform(t, cfg, rot, refl)
						gotCfg, m, err := canon.Canonicalize(member)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(gotCfg, wantCfg) {
							t.Fatalf("n=%d equal=%v seed=%d rot=%d refl=%v: canonical form differs\n got %+v\nwant %+v",
								n, equal, seed, rot, refl, gotCfg, wantCfg)
						}
						if got, err := canon.Key(member); err != nil || got != wantKey {
							t.Fatalf("key differs for orbit member rot=%d refl=%v: %v %v", rot, refl, got, err)
						}
						// The map must actually relate the member to the canonical frame:
						// agent at member index i carries the same ID as the canonical
						// agent at the mapped index.
						for i := 0; i < n; i++ {
							if member.IDs[i] != gotCfg.IDs[m.CanonIndex(i)] {
								t.Fatalf("map does not preserve IDs at index %d", i)
							}
						}
					}
				}
			}
		}
	}
}

// TestCanonicalizeIdempotent: identifiers are distinct, so the orbit
// stabiliser is trivial and canonicalizing a canonical configuration must be
// the identity.
func TestCanonicalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		n := 5 + rng.Intn(30)
		cfg := mustGen(t, netgen.Options{N: n, Seed: rng.Int63(), Model: ring.Basic, MixedChirality: i%2 == 0, ForceSplitChirality: i%2 == 0})
		ccfg, _, err := canon.Canonicalize(cfg)
		if err != nil {
			t.Fatal(err)
		}
		again, m, err := canon.Canonicalize(ccfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, ccfg) {
			t.Fatalf("canonicalize not idempotent (n=%d)", n)
		}
		if m.Rotation != 0 || m.Reflected {
			t.Fatalf("canonical config mapped by non-identity %+v", m)
		}
	}
}

// TestKeySensitivity: fields that change the dynamics must change the key.
func TestKeySensitivity(t *testing.T) {
	base := mustGen(t, netgen.Options{N: 8, Seed: 1, Model: ring.Basic})
	key := func(c engine.Config) string {
		k, err := canon.Key(c)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	k0 := key(base)
	for name, mutate := range map[string]func(engine.Config) engine.Config{
		"model":      func(c engine.Config) engine.Config { c.Model = ring.Lazy; return c },
		"idbound":    func(c engine.Config) engine.Config { c.IDBound++; return c },
		"maxrounds":  func(c engine.Config) engine.Config { c.MaxRounds = 12345; return c },
		"hideparity": func(c engine.Config) engine.Config { c.HideParity = true; return c },
		"id": func(c engine.Config) engine.Config {
			ids := append([]int(nil), c.IDs...)
			ids[0] = c.IDBound // distinct from all: netgen draws from [1, bound], bump guarantees change only if unused; fall back below
			for _, v := range c.IDs {
				if v == ids[0] {
					ids[0] = v - 1
				}
			}
			c.IDs = ids
			return c
		},
	} {
		if key(mutate(base)) == k0 {
			t.Errorf("mutating %s did not change the key", name)
		}
	}
	// A pure translation+rotation must NOT change the key.
	if key(mustTransform(t, base, 3, false)) != k0 {
		t.Errorf("rotation changed the key")
	}
}

// outcomeOf runs the task pipeline on cfg through the public facade and
// returns the frame-independent invariants plus the per-agent outcomes by
// ring index.
type agentOutcome struct {
	ID       int
	IsLeader bool
	Splits   [5]int
	// Positions is the discovery map in the agent's agreed frame (nil for
	// coordinate runs).
	Positions []int64
}

func outcomeOf(t *testing.T, cfg engine.Config, task string, commonSense bool, seed int64) (rounds, leaderID int, agents []agentOutcome) {
	t.Helper()
	nw, err := ringsym.NewNetwork(ringsym.Config{
		Model: cfg.Model, Circumference: cfg.Circ, Positions: cfg.Positions,
		IDs: cfg.IDs, IDBound: cfg.IDBound, Chirality: cfg.Chirality, MaxRounds: cfg.MaxRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	switch task {
	case "coordinate":
		res, err := nw.Coordinate(ringsym.CoordinationOptions{CommonSense: commonSense, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		agents = make([]agentOutcome, len(res.PerAgent))
		for i, a := range res.PerAgent {
			agents[i] = agentOutcome{ID: a.ID, IsLeader: a.IsLeader, Splits: [5]int{a.RoundsNontrivial, a.RoundsAgreement, a.RoundsLeader, 0, 0}}
		}
		return res.Rounds, res.LeaderID, agents
	case "discover":
		res, err := nw.DiscoverLocations(ringsym.DiscoveryOptions{CommonSense: commonSense, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		agents = make([]agentOutcome, len(res.PerAgent))
		for i, a := range res.PerAgent {
			agents[i] = agentOutcome{ID: a.ID, IsLeader: a.IsLeader, Splits: [5]int{0, 0, 0, a.RoundsCoordination, a.RoundsDiscovery}, Positions: a.Positions}
			if a.IsLeader {
				leaderID = a.ID
			}
		}
		return res.Rounds, leaderID, agents
	}
	t.Fatalf("unknown task %s", task)
	return 0, 0, nil
}

// TestEngineOrbitInvariance is the proof obligation of the package: for every
// movement model, both chirality regimes and both task pipelines, the outcome
// of a run on any orbit member — total rounds, elected leader, verification,
// per-agent stage splits and discovery maps — equals the outcome on the
// canonical representative, modulo the index Map.  The facade verifies every
// run against the simulator's ground truth, so passing outcomes are also
// correct outcomes.
func TestEngineOrbitInvariance(t *testing.T) {
	type setting struct {
		model ring.Model
		mixed bool
		cs    bool
		task  string
		n     int
	}
	var settings []setting
	for _, model := range []ring.Model{ring.Basic, ring.Lazy, ring.Perceptive} {
		for _, mixed := range []bool{false, true} {
			for _, task := range []string{"coordinate", "discover"} {
				for _, n := range []int{7, 8} {
					if task == "discover" && n%2 == 0 && model != ring.Perceptive {
						continue // Lemma 5: unsolvable for even n outside the perceptive model
					}
					settings = append(settings, setting{model, mixed, false, task, n})
				}
			}
		}
	}
	// One common-sense setting per task (only valid with common chirality).
	settings = append(settings,
		setting{ring.Basic, false, true, "coordinate", 8},
		setting{ring.Perceptive, false, true, "discover", 8},
	)
	rng := rand.New(rand.NewSource(11))
	for _, s := range settings {
		s := s
		name := fmt.Sprintf("%v/mixed=%v/cs=%v/%s/n=%d", s.model, s.mixed, s.cs, s.task, s.n)
		t.Run(name, func(t *testing.T) {
			seed := int64(1 + rng.Intn(100))
			cfg := mustGen(t, netgen.Options{
				N: s.n, Seed: seed, Model: s.model,
				MixedChirality: s.mixed, ForceSplitChirality: s.mixed,
			})
			rounds, leader, agents := outcomeOf(t, cfg, s.task, s.cs, seed)

			ccfg, m, err := canon.Canonicalize(cfg)
			if err != nil {
				t.Fatal(err)
			}
			members := []struct {
				cfg engine.Config
				m   canon.Map
			}{{ccfg, m}}
			// Plus one random non-canonical orbit member.
			rot, refl := rng.Intn(s.n), rng.Intn(2) == 1
			mcfg := mustTransform(t, cfg, rot, refl)
			members = append(members, struct {
				cfg engine.Config
				m   canon.Map
			}{mcfg, canon.Map{N: s.n, Rotation: rot, Reflected: refl}})

			for _, mem := range members {
				gotRounds, gotLeader, gotAgents := outcomeOf(t, mem.cfg, s.task, s.cs, seed)
				if gotRounds != rounds {
					t.Errorf("rounds = %d, want %d (map %+v)", gotRounds, rounds, mem.m)
				}
				if gotLeader != leader {
					t.Errorf("leader = %d, want %d (map %+v)", gotLeader, leader, mem.m)
				}
				for i := 0; i < s.n; i++ {
					want := agents[i]
					got := gotAgents[mem.m.CanonIndex(i)]
					if got.ID != want.ID || got.IsLeader != want.IsLeader || got.Splits != want.Splits {
						t.Errorf("agent %d: got %+v, want %+v (map %+v)", i, got, want, mem.m)
					}
					if !reflect.DeepEqual(got.Positions, want.Positions) {
						t.Errorf("agent %d: discovery map differs across the orbit (map %+v)", i, mem.m)
					}
				}
			}
		})
	}
}

// TestPhysicsCrossCheck validates the orbit symmetry on the independent
// event-driven simulator: transforming a configuration and its (ID-derived,
// hence frame-equivariant) objective directions permutes the per-agent
// collision observables through the Map and transports final positions
// through the frame map.
func TestPhysicsCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(8)
		cfg := mustGen(t, netgen.Options{N: n, Seed: rng.Int63(), Model: ring.Perceptive, Circ: 1 << 10})
		dirs := make([]ring.Direction, n)
		for i := range dirs {
			if cfg.IDs[i]%2 == 0 {
				dirs[i] = ring.Clockwise
			} else {
				dirs[i] = ring.Anticlockwise
			}
		}
		base := simulate(t, cfg, dirs)

		rot, refl := rng.Intn(n), rng.Intn(2) == 1
		m := canon.Map{N: n, Rotation: rot, Reflected: refl}
		tcfg := mustTransform(t, cfg, rot, refl)
		tdirs := make([]ring.Direction, n)
		for j := 0; j < n; j++ {
			d := dirs[m.OrigIndex(j)]
			if refl {
				d = d.Opposite()
			}
			tdirs[j] = d
		}
		got := simulate(t, tcfg, tdirs)

		circ := float64(cfg.Circ)
		anchor := float64(cfg.Positions[rot])
		for j := 0; j < n; j++ {
			a := m.OrigIndex(j)
			if got.Collisions[j] != base.Collisions[a] {
				t.Fatalf("trial %d agent %d: collisions %d != %d", trial, j, got.Collisions[j], base.Collisions[a])
			}
			if math.Abs(got.FirstColl[j]-base.FirstColl[a]) > 1e-6 {
				t.Fatalf("trial %d agent %d: first collision %v != %v", trial, j, got.FirstColl[j], base.FirstColl[a])
			}
			// Final positions transport through the frame map.
			var want float64
			if refl {
				want = math.Mod(anchor-base.Final[a]+2*circ, circ)
			} else {
				want = math.Mod(base.Final[a]-anchor+2*circ, circ)
			}
			diff := math.Abs(got.Final[j] - want)
			if diff > 1e-6 && math.Abs(diff-circ) > 1e-6 {
				t.Fatalf("trial %d agent %d: final %v, want %v", trial, j, got.Final[j], want)
			}
		}
	}
}

func simulate(t *testing.T, cfg engine.Config, dirs []ring.Direction) *physics.Result {
	t.Helper()
	pos := make([]float64, len(cfg.Positions))
	for i, p := range cfg.Positions {
		pos[i] = float64(p)
	}
	res, err := physics.SimulateRound(float64(cfg.Circ), pos, dirs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func BenchmarkCanonicalize(b *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := netgen.MustGenerate(netgen.Options{N: n, Seed: 1, Model: ring.Perceptive, MixedChirality: true, ForceSplitChirality: true})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := canon.Canonicalize(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
