package memo_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ringsym/internal/memo"
)

func TestHitMiss(t *testing.T) {
	c := memo.New[int](100)
	calls := 0
	fn := func(context.Context) (int, error) { calls++; return 42, nil }
	v, kind, err := c.Do(context.Background(), "k", fn)
	if err != nil || v != 42 || kind != memo.Miss {
		t.Fatalf("first Do: %d %v %v", v, kind, err)
	}
	v, kind, err = c.Do(context.Background(), "k", fn)
	if err != nil || v != 42 || kind != memo.Hit {
		t.Fatalf("second Do: %d %v %v", v, kind, err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Dedups != 0 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := memo.New[int](100)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do(context.Background(), "k", func(context.Context) (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, kind, err := c.Do(context.Background(), "k", func(context.Context) (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 || kind != memo.Miss {
		t.Fatalf("retry: %d %v %v", v, kind, err)
	}
	if calls != 2 {
		t.Fatalf("fn called %d times", calls)
	}
	if c.Stats().Entries != 1 {
		t.Fatalf("entries = %d", c.Stats().Entries)
	}
}

func TestSingleflightDedup(t *testing.T) {
	c := memo.New[int](100)
	var calls atomic.Int32
	release := make(chan struct{})
	const workers = 32
	var wg sync.WaitGroup
	kinds := make([]memo.Kind, workers)
	started := make(chan struct{})
	var once sync.Once
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, kind, err := c.Do(context.Background(), "k", func(context.Context) (int, error) {
				calls.Add(1)
				once.Do(func() { close(started) })
				<-release
				return 9, nil
			})
			if err != nil || v != 9 {
				t.Errorf("worker %d: %d %v", i, v, err)
			}
			kinds[i] = kind
		}(i)
	}
	<-started
	// Give the remaining workers a moment to join the in-flight call, then
	// let the computation finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn called %d times", got)
	}
	misses := 0
	for _, k := range kinds {
		if k == memo.Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d misses, want 1", misses)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Dedups != workers-1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCancelLastWaiterCancelsComputation: the computation context must be
// cancelled exactly when every joined caller has given up.
func TestCancelLastWaiterCancelsComputation(t *testing.T) {
	c := memo.New[int](100)
	computeCancelled := make(chan struct{})
	inFn := make(chan struct{})
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())

	var wg sync.WaitGroup
	wg.Add(2)
	errs := make([]error, 2)
	go func() {
		defer wg.Done()
		_, _, errs[0] = c.Do(ctx1, "k", func(cctx context.Context) (int, error) {
			close(inFn)
			<-cctx.Done()
			close(computeCancelled)
			return 0, cctx.Err()
		})
	}()
	<-inFn
	go func() {
		defer wg.Done()
		_, _, errs[1] = c.Do(ctx2, "k", func(context.Context) (int, error) {
			t.Error("second caller must join, not compute")
			return 0, nil
		})
	}()
	// Wait until the second caller has actually joined (dedup counter).
	deadline := time.After(2 * time.Second)
	for c.Stats().Dedups == 0 {
		select {
		case <-deadline:
			t.Fatal("second caller never joined")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	cancel1()
	select {
	case <-computeCancelled:
		t.Fatal("computation cancelled while a waiter remained")
	case <-time.After(20 * time.Millisecond):
	}
	cancel2()
	select {
	case <-computeCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("computation not cancelled after the last waiter left")
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("caller %d: err = %v", i, err)
		}
	}
	// The failed computation must not be cached.
	if c.Stats().Entries != 0 {
		t.Fatalf("entries = %d", c.Stats().Entries)
	}
}

// TestWaiterSurvivesOtherCancellation: a waiter whose context stays live gets
// the result even when the original caller cancels.
func TestWaiterSurvivesOtherCancellation(t *testing.T) {
	c := memo.New[int](100)
	inFn := make(chan struct{})
	release := make(chan struct{})
	ctx1, cancel1 := context.WithCancel(context.Background())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = c.Do(ctx1, "k", func(cctx context.Context) (int, error) {
			close(inFn)
			select {
			case <-release:
				return 5, nil
			case <-cctx.Done():
				return 0, cctx.Err()
			}
		})
	}()
	<-inFn
	got := make(chan error, 1)
	var val int
	go func() {
		var err error
		var v int
		v, _, err = c.Do(context.Background(), "k", func(context.Context) (int, error) {
			return 0, errors.New("must not recompute")
		})
		val = v
		got <- err
	}()
	for c.Stats().Dedups == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel1() // the leader leaves; the second waiter keeps the call alive
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := <-got; err != nil || val != 5 {
		t.Fatalf("waiter got %d, %v", val, err)
	}
	wg.Wait()
}

// TestRetryAfterAbandonedCall: once the last waiter abandons a call, a new Do
// for the key must start a fresh computation instead of joining the dying one
// and inheriting its cancellation error.
func TestRetryAfterAbandonedCall(t *testing.T) {
	c := memo.New[int](100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	blocked := make(chan struct{})
	_, _, err := c.Do(ctx, "k", func(cctx context.Context) (int, error) {
		<-cctx.Done()
		close(blocked)
		return 0, cctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned call: err = %v", err)
	}
	v, kind, err := c.Do(context.Background(), "k", func(context.Context) (int, error) { return 8, nil })
	if err != nil || v != 8 || kind != memo.Miss {
		t.Fatalf("retry: %d %v %v", v, kind, err)
	}
	<-blocked // the abandoned computation was cancelled, not leaked
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d", st.Entries)
	}
}

// TestPanickingComputation: a panic inside fn becomes an error for every
// joined caller — it must not escape on the cache's internal goroutine (which
// would crash the process and leave waiters hanging) and must not be cached.
func TestPanickingComputation(t *testing.T) {
	c := memo.New[int](100)
	inFn := make(chan struct{})
	release := make(chan struct{})
	errs := make(chan error, 2)
	go func() {
		_, _, err := c.Do(context.Background(), "k", func(context.Context) (int, error) {
			close(inFn)
			<-release
			panic("boom")
		})
		errs <- err
	}()
	<-inFn
	go func() {
		_, _, err := c.Do(context.Background(), "k", func(context.Context) (int, error) {
			t.Error("second caller must join, not compute")
			return 0, nil
		})
		errs <- err
	}()
	for c.Stats().Dedups == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < 2; i++ {
		err := <-errs
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("caller %d: err = %v, want the contained panic", i, err)
		}
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("panicked computation was cached: %+v", st)
	}
	// The key is retryable afterwards.
	v, kind, err := c.Do(context.Background(), "k", func(context.Context) (int, error) { return 4, nil })
	if err != nil || v != 4 || kind != memo.Miss {
		t.Fatalf("retry: %d %v %v", v, kind, err)
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity 16 = 1 entry per shard: inserting two keys that land in the
	// same shard must evict the older one.
	c := memo.New[int](16)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		if _, _, err := c.Do(context.Background(), k, func(context.Context) (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries > 16 {
		t.Fatalf("entries = %d, want <= 16", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions after 100 inserts into capacity 16")
	}
	if st.Entries+int(st.Evictions) != 100 {
		t.Fatalf("entries %d + evictions %d != 100", st.Entries, st.Evictions)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := memo.New[string](128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("key-%d", i%32)
				v, _, err := c.Do(context.Background(), k, func(context.Context) (string, error) {
					return k, nil
				})
				if err != nil || v != k {
					t.Errorf("Do(%s) = %q, %v", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got != 32 {
		t.Fatalf("len = %d, want 32", got)
	}
}

func TestGet(t *testing.T) {
	c := memo.New[int](10)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get on empty cache")
	}
	c.Do(context.Background(), "k", func(context.Context) (int, error) { return 3, nil })
	if v, ok := c.Get("k"); !ok || v != 3 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
}
