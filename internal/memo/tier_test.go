package memo

import (
	"context"
	"sync"
	"testing"
)

// mapTier is a Tier backed by a plain map, recording write-throughs.
type mapTier struct {
	mu     sync.Mutex
	vals   map[string]int
	kind   Kind // what a hit reports: DiskHit or PeerHit
	loads  int
	stores int
}

func (m *mapTier) Load(_ context.Context, key string) (int, Kind, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.loads++
	v, ok := m.vals[key]
	return v, m.kind, ok
}

func (m *mapTier) Store(key string, v int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stores++
	m.vals[key] = v
}

// TestTierHitPromotes covers the tier seam: a tier hit resolves the call
// without running fn, promotes the value into memory (the next Do is a
// memory hit), and is counted as a disk/peer hit, never a miss.
func TestTierHitPromotes(t *testing.T) {
	for _, kind := range []Kind{DiskHit, PeerHit} {
		t.Run(kind.String(), func(t *testing.T) {
			c := New[int](0)
			tier := &mapTier{vals: map[string]int{"k": 42}, kind: kind}
			c.SetTier(tier)
			computed := false
			v, k, err := c.Do(context.Background(), "k", func(context.Context) (int, error) {
				computed = true
				return -1, nil
			})
			if err != nil || v != 42 || k != kind {
				t.Fatalf("Do = %d, %v, %v; want 42, %v, nil", v, k, err, kind)
			}
			if computed {
				t.Fatal("fn ran despite a tier hit")
			}
			// Promoted: the second Do is a memory hit, no second tier load.
			v, k, err = c.Do(context.Background(), "k", func(context.Context) (int, error) { return -1, nil })
			if err != nil || v != 42 || k != Hit {
				t.Fatalf("second Do = %d, %v, %v; want 42, Hit, nil", v, k, err)
			}
			if tier.loads != 1 {
				t.Fatalf("tier loads = %d, want 1", tier.loads)
			}
			st := c.Stats()
			if st.Misses != 0 {
				t.Fatalf("tier promotion double-counted as a miss: %+v", st)
			}
			wantDisk, wantPeer := uint64(0), uint64(0)
			if kind == DiskHit {
				wantDisk = 1
			} else {
				wantPeer = 1
			}
			if st.DiskHits != wantDisk || st.PeerHits != wantPeer || st.Hits != 1 {
				t.Fatalf("stats = %+v, want disk=%d peer=%d hits=1", st, wantDisk, wantPeer)
			}
		})
	}
}

// TestTierWriteThrough: a fresh compute is written through to the tier; a
// tier-served value is not re-offered.
func TestTierWriteThrough(t *testing.T) {
	c := New[int](0)
	tier := &mapTier{vals: map[string]int{}, kind: DiskHit}
	c.SetTier(tier)
	v, k, err := c.Do(context.Background(), "k", func(context.Context) (int, error) { return 7, nil })
	if err != nil || v != 7 || k != Miss {
		t.Fatalf("Do = %d, %v, %v; want 7, Miss, nil", v, k, err)
	}
	tier.mu.Lock()
	stored, stores := tier.vals["k"], tier.stores
	tier.mu.Unlock()
	if stored != 7 || stores != 1 {
		t.Fatalf("write-through: vals[k]=%d stores=%d, want 7, 1", stored, stores)
	}
	// A second cache (cold memory) over the same tier serves from the tier
	// and does not store again.
	c2 := New[int](0)
	c2.SetTier(tier)
	v, k, err = c2.Do(context.Background(), "k", func(context.Context) (int, error) { return -1, nil })
	if err != nil || v != 7 || k != DiskHit {
		t.Fatalf("cold Do over warm tier = %d, %v, %v; want 7, DiskHit, nil", v, k, err)
	}
	tier.mu.Lock()
	stores = tier.stores
	tier.mu.Unlock()
	if stores != 1 {
		t.Fatalf("tier-served value was re-offered: stores = %d, want 1", stores)
	}
}

// TestTierErrorStillMiss: a failing computation under an attached tier
// counts as a miss and stores nothing.
func TestTierErrorStillMiss(t *testing.T) {
	c := New[int](0)
	tier := &mapTier{vals: map[string]int{}, kind: DiskHit}
	c.SetTier(tier)
	wantErr := context.DeadlineExceeded
	_, k, err := c.Do(context.Background(), "k", func(context.Context) (int, error) { return 0, wantErr })
	if err != wantErr || k != Miss {
		t.Fatalf("Do = %v, %v; want Miss, %v", k, err, wantErr)
	}
	if st := c.Stats(); st.Misses != 1 || st.DiskHits != 0 {
		t.Fatalf("stats = %+v, want 1 miss", st)
	}
	tier.mu.Lock()
	defer tier.mu.Unlock()
	if tier.stores != 0 {
		t.Fatal("failed computation written through to the tier")
	}
}

// TestTierDedup: waiters joining a leader that resolves from the tier get
// the tier's value as Dedup; the tier is probed once.
func TestTierDedup(t *testing.T) {
	c := New[int](0)
	release := make(chan struct{})
	tier := &blockingTier{vals: map[string]int{"k": 9}, release: release}
	c.SetTier(tier)
	const waiters = 4
	results := make(chan Kind, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, k, err := c.Do(context.Background(), "k", func(context.Context) (int, error) { return -1, nil })
			if err != nil || v != 9 {
				t.Errorf("Do = %d, %v", v, err)
			}
			results <- k
		}()
	}
	// Wait until every goroutine has either become the leader or joined it,
	// then release the tier load.
	for {
		c.shardOf("k").mu.Lock()
		cl := c.shardOf("k").inflight["k"]
		n := 0
		if cl != nil {
			n = cl.waiters
		}
		c.shardOf("k").mu.Unlock()
		if n == waiters {
			break
		}
	}
	close(release)
	wg.Wait()
	close(results)
	var leaders, dedups int
	for k := range results {
		switch k {
		case DiskHit:
			leaders++
		case Dedup:
			dedups++
		default:
			t.Fatalf("unexpected kind %v", k)
		}
	}
	if leaders != 1 || dedups != waiters-1 {
		t.Fatalf("leaders=%d dedups=%d, want 1 and %d", leaders, dedups, waiters-1)
	}
	if tier.loads != 1 {
		t.Fatalf("tier probed %d times under singleflight, want 1", tier.loads)
	}
}

type blockingTier struct {
	mu      sync.Mutex
	vals    map[string]int
	release chan struct{}
	loads   int
}

func (b *blockingTier) Load(_ context.Context, key string) (int, Kind, bool) {
	b.mu.Lock()
	b.loads++
	v, ok := b.vals[key]
	b.mu.Unlock()
	<-b.release
	return v, DiskHit, ok
}

func (b *blockingTier) Store(string, int) {}
