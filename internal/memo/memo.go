// Package memo provides a sharded, bounded, deduplicating result cache for
// deterministic computations keyed by canonical scenario keys (see
// internal/canon).
//
// Three properties matter for the serving layer built on top of it:
//
//   - Bounded memory: each shard keeps an LRU list; inserting past the
//     capacity evicts the least recently used entry of that shard.
//   - Singleflight: concurrent Do calls for the same key run the computation
//     once; late arrivals join the in-flight call instead of recomputing.
//   - Cooperative cancellation: the computation runs under a context that is
//     cancelled only when every request that joined the call has been
//     cancelled.  One impatient client cannot abort a result that other
//     clients are still waiting for, and a result nobody wants any more stops
//     burning CPU within one engine round.
//
// Errors are never cached: a failed computation (including a cancelled one)
// is retried by the next Do for the key.  A computation that panics is
// contained — the panic is delivered to every joined caller as an error, not
// re-raised on the cache's internal goroutine.
//
// A Cache can carry a second level below the memory LRU (SetTier): on a
// memory miss the singleflight leader consults the tier — typically the
// disk store and fleet peer fetcher of internal/store — before computing,
// and writes fresh results through to it, so the full miss path is
// memory → disk → peers → compute with every stage collapsed to one probe
// per key by the same singleflight.
package memo

import (
	"container/list"
	"context"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"ringsym/internal/obs"
)

// Process-wide service totals, summed across every Cache in the process and
// registered in the obs metric registry: per-instance Stats() keeps answering
// "how is this cache doing", while the Prometheus exposition and the event
// spine see the fleet-facing totals without any snapshot plumbing.  Each
// cache operation also emits a cache.* event when the bus is live; the events
// carry no payload, so the hot path allocates nothing.
var (
	totHits      = obs.NewCounter("ringsym_memo_hits_total", "Cache lookups served from a stored value, across all caches.")
	totMisses    = obs.NewCounter("ringsym_memo_misses_total", "Cache lookups that executed the computation, across all caches.")
	totDedups    = obs.NewCounter("ringsym_memo_dedups_total", "Cache lookups that joined an in-flight computation, across all caches.")
	totEvictions = obs.NewCounter("ringsym_memo_evictions_total", "Entries dropped by the LRU bound, across all caches.")
	totDiskHits  = obs.NewCounter("ringsym_memo_disk_hits_total", "Cache lookups served by the disk tier and promoted to memory, across all caches.")
	totPeerHits  = obs.NewCounter("ringsym_memo_peer_hits_total", "Cache lookups served by a fleet peer and promoted to memory, across all caches.")
)

// note records one service outcome on the process-wide counter and the event
// bus.  With no subscribers the event branch is a single atomic load.
func note(ctr *obs.Counter, t obs.Type) {
	ctr.Add(1)
	if obs.On() {
		obs.Emit(obs.Event{Type: t, Level: obs.LevelDebug})
	}
}

// Kind classifies how a Do call was served.
type Kind int8

const (
	// Miss: this call executed the computation.
	Miss Kind = iota
	// Hit: the value was already cached in memory.
	Hit
	// Dedup: the call joined a computation another caller had in flight.
	Dedup
	// DiskHit: the attached tier served the value from local disk; it was
	// promoted into memory without executing the computation.
	DiskHit
	// PeerHit: the attached tier fetched the value from a fleet peer; it
	// was promoted into memory without executing the computation.
	PeerHit
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Hit:
		return "hit"
	case Dedup:
		return "dedup"
	case DiskHit:
		return "disk"
	case PeerHit:
		return "peer"
	default:
		return "miss"
	}
}

// Tier is a second cache level consulted between a memory miss and the
// computation: typically a disk store backed by a peer fetcher (see
// internal/store).  Load reports how it served the key (DiskHit or PeerHit)
// — any other Kind with ok true is treated as DiskHit for accounting.  Store
// is the write-through of a freshly computed value; it must not block
// correctness (a tier that drops writes only costs future recomputes).  Both
// methods are called from the cache's singleflight leader, so at most one
// Load/Store per key is in flight at a time.
type Tier[V any] interface {
	Load(ctx context.Context, key string) (V, Kind, bool)
	Store(key string, v V)
}

// tierBox wraps the interface so it can sit in an atomic.Pointer.
type tierBox[V any] struct{ t Tier[V] }

// Stats is a point-in-time snapshot of the cache counters.  The four
// service kinds partition the Do calls that resolved: every call is exactly
// one of Hits (memory), DiskHits/PeerHits (tier promotion), Dedups (joined
// an in-flight call) or Misses (executed the computation) — a tier
// promotion is never double-counted as a miss.
type Stats struct {
	// Hits counts Do calls served from the in-memory cache.
	Hits uint64 `json:"hits"`
	// Misses counts Do calls that executed the computation (including
	// computations that returned an error).
	Misses uint64 `json:"misses"`
	// Dedups counts Do calls that joined an in-flight computation.
	Dedups uint64 `json:"dedups"`
	// DiskHits counts Do calls served by the attached tier from local disk.
	DiskHits uint64 `json:"disk_hits"`
	// PeerHits counts Do calls served by the attached tier from a peer.
	PeerHits uint64 `json:"peer_hits"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Entries is the current number of cached values.
	Entries int `json:"entries"`
}

const defaultCapacity = 4096

// Cache is a sharded LRU + singleflight cache from string keys to values of
// type V.  The zero value is not usable; construct with New.
type Cache[V any] struct {
	shards [nShards]shard[V]
	seed   maphash.Seed
	cap    int // per shard
	tier   atomic.Pointer[tierBox[V]]

	hits, misses, dedups, evictions atomic.Uint64
	diskHits, peerHits              atomic.Uint64
}

// SetTier attaches (or, with nil, detaches) a second cache level consulted
// on memory misses.  Safe to call concurrently with Do; in-flight leaders
// keep the tier they started with.
func (c *Cache[V]) SetTier(t Tier[V]) {
	if t == nil {
		c.tier.Store(nil)
		return
	}
	c.tier.Store(&tierBox[V]{t: t})
}

func (c *Cache[V]) getTier() Tier[V] {
	if b := c.tier.Load(); b != nil {
		return b.t
	}
	return nil
}

const nShards = 16

type shard[V any] struct {
	mu       sync.Mutex
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	inflight map[string]*call[V]
}

type entry[V any] struct {
	key string
	val V
}

// call is one in-flight computation plus the bookkeeping for cooperative
// cancellation: waiters counts the callers (leader included) still interested
// in the result; when it reaches zero before the computation finishes, the
// computation's context is cancelled.
type call[V any] struct {
	done     chan struct{}
	val      V
	err      error
	kind     Kind // how the leader resolved: Miss, DiskHit or PeerHit
	waiters  int
	finished bool
	cancel   context.CancelFunc
}

// New returns a cache bounded to roughly the given total number of entries
// (<= 0 selects a default of 4096).  The bound is enforced per shard, so the
// precise ceiling is capacity rounded up to a multiple of the shard count.
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		capacity = defaultCapacity
	}
	perShard := (capacity + nShards - 1) / nShards
	c := &Cache[V]{seed: maphash.MakeSeed(), cap: perShard}
	for i := range c.shards {
		c.shards[i] = shard[V]{
			entries:  make(map[string]*list.Element),
			lru:      list.New(),
			inflight: make(map[string]*call[V]),
		}
	}
	return c
}

func (c *Cache[V]) shardOf(key string) *shard[V] {
	return &c.shards[maphash.String(c.seed, key)%nShards]
}

// Get returns the cached value for key without affecting the singleflight
// state.  It counts as a hit when present and updates the LRU recency.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		c.hits.Add(1)
		note(totHits, obs.CacheHit)
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Do returns the value for key, computing it with fn at most once across
// concurrent callers.  The Kind reports how the call was served.  fn receives
// a context that is cancelled when every caller that joined this computation
// has been cancelled; its successful result is cached (evicting LRU entries
// past the capacity), its error is returned to every joined caller and not
// cached.  When ctx is cancelled while waiting, Do returns ctx.Err() without
// waiting for fn.
func (c *Cache[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, Kind, error) {
	s := c.shardOf(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		// Copy the value out under the lock: insertLocked updates entries
		// in place, so reading after Unlock would race with a concurrent
		// re-insert of the same key.
		v := el.Value.(*entry[V]).val
		s.mu.Unlock()
		c.hits.Add(1)
		note(totHits, obs.CacheHit)
		return v, Hit, nil
	}
	if cl, ok := s.inflight[key]; ok {
		cl.waiters++
		s.mu.Unlock()
		c.dedups.Add(1)
		note(totDedups, obs.CacheDedup)
		v, err := c.wait(ctx, s, key, cl)
		return v, Dedup, err
	}
	cctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	cl := &call[V]{done: make(chan struct{}), waiters: 1, cancel: cancel}
	s.inflight[key] = cl
	s.mu.Unlock()
	tier := c.getTier()

	go func() {
		var v V
		var err error
		kind := Miss
		// The tier lookup and the computation run on this cache-owned
		// goroutine, outside any recover the caller installed on its own
		// stack; contain panics here so one bad computation becomes an
		// error for the joined waiters instead of killing the process (and
		// leaving done never closed).
		func() {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("memo: computation panicked: %v", r)
				}
			}()
			if tier != nil {
				if tv, tk, ok := tier.Load(cctx, key); ok {
					v = tv
					if tk == PeerHit {
						kind = PeerHit
					} else {
						kind = DiskHit
					}
					return
				}
			}
			v, err = fn(cctx)
		}()
		// Counting happens at resolution time, by how the call actually
		// resolved: a tier promotion is a disk/peer hit, never a miss —
		// misses count executed computations (successful or not), so the
		// miss counter remains the exact "work we could not avoid" gauge.
		switch {
		case err == nil && kind == DiskHit:
			c.diskHits.Add(1)
			totDiskHits.Add(1)
		case err == nil && kind == PeerHit:
			c.peerHits.Add(1)
			totPeerHits.Add(1)
		default:
			c.misses.Add(1)
			note(totMisses, obs.CacheMiss)
		}
		// Write a freshly computed value through to the tier before
		// publishing it, outside the shard lock (the tier does disk and
		// network I/O).  Tier-served values are not re-offered: the disk
		// tier already has them, and peer hits were written through to the
		// local store by the tier itself.
		if err == nil && kind == Miss && tier != nil {
			tier.Store(key, v)
		}
		s.mu.Lock()
		cl.finished = true
		cl.val, cl.err, cl.kind = v, err, kind
		// An abandoned call was already deregistered by its last waiter and
		// may have been replaced by a fresh one; only remove our own entry.
		if s.inflight[key] == cl {
			delete(s.inflight, key)
		}
		if err == nil {
			c.insertLocked(s, key, v)
		}
		s.mu.Unlock()
		cancel()
		close(cl.done)
	}()

	v, err := c.wait(ctx, s, key, cl)
	// The resolved kind is published only at done; a waiter that bailed on
	// ctx cancellation reports Miss (the zero value it returns with).
	kind := Miss
	select {
	case <-cl.done:
		kind = cl.kind
	default:
	}
	return v, kind, err
}

// wait blocks until the call completes or ctx is cancelled.  A cancelled
// waiter deregisters its interest; the last deregistration cancels the
// computation itself and removes it from the in-flight table, so a later Do
// for the key starts a fresh computation instead of joining a dying one.
func (c *Cache[V]) wait(ctx context.Context, s *shard[V], key string, cl *call[V]) (V, error) {
	select {
	case <-cl.done:
		return cl.val, cl.err
	case <-ctx.Done():
		s.mu.Lock()
		if !cl.finished {
			cl.waiters--
			if cl.waiters == 0 {
				cl.cancel()
				if s.inflight[key] == cl {
					delete(s.inflight, key)
				}
			}
			s.mu.Unlock()
			var zero V
			return zero, ctx.Err()
		}
		s.mu.Unlock()
		// The computation beat the cancellation; deliver the result.
		<-cl.done
		return cl.val, cl.err
	}
}

// insertLocked adds key→val to the shard (which must be locked) and evicts
// past the per-shard capacity.
func (c *Cache[V]) insertLocked(s *shard[V], key string, val V) {
	if el, ok := s.entries[key]; ok {
		el.Value.(*entry[V]).val = val
		s.lru.MoveToFront(el)
		return
	}
	s.entries[key] = s.lru.PushFront(&entry[V]{key: key, val: val})
	for s.lru.Len() > c.cap {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.entries, back.Value.(*entry[V]).key)
		c.evictions.Add(1)
		note(totEvictions, obs.CacheEvict)
	}
}

// Len returns the current number of cached entries.
func (c *Cache[V]) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.lru.Len()
		s.mu.Unlock()
	}
	return total
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Dedups:    c.dedups.Load(),
		DiskHits:  c.diskHits.Load(),
		PeerHits:  c.peerHits.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
