// Package memo provides a sharded, bounded, deduplicating result cache for
// deterministic computations keyed by canonical scenario keys (see
// internal/canon).
//
// Three properties matter for the serving layer built on top of it:
//
//   - Bounded memory: each shard keeps an LRU list; inserting past the
//     capacity evicts the least recently used entry of that shard.
//   - Singleflight: concurrent Do calls for the same key run the computation
//     once; late arrivals join the in-flight call instead of recomputing.
//   - Cooperative cancellation: the computation runs under a context that is
//     cancelled only when every request that joined the call has been
//     cancelled.  One impatient client cannot abort a result that other
//     clients are still waiting for, and a result nobody wants any more stops
//     burning CPU within one engine round.
//
// Errors are never cached: a failed computation (including a cancelled one)
// is retried by the next Do for the key.  A computation that panics is
// contained — the panic is delivered to every joined caller as an error, not
// re-raised on the cache's internal goroutine.
package memo

import (
	"container/list"
	"context"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"ringsym/internal/obs"
)

// Process-wide service totals, summed across every Cache in the process and
// registered in the obs metric registry: per-instance Stats() keeps answering
// "how is this cache doing", while the Prometheus exposition and the event
// spine see the fleet-facing totals without any snapshot plumbing.  Each
// cache operation also emits a cache.* event when the bus is live; the events
// carry no payload, so the hot path allocates nothing.
var (
	totHits      = obs.NewCounter("ringsym_memo_hits_total", "Cache lookups served from a stored value, across all caches.")
	totMisses    = obs.NewCounter("ringsym_memo_misses_total", "Cache lookups that executed the computation, across all caches.")
	totDedups    = obs.NewCounter("ringsym_memo_dedups_total", "Cache lookups that joined an in-flight computation, across all caches.")
	totEvictions = obs.NewCounter("ringsym_memo_evictions_total", "Entries dropped by the LRU bound, across all caches.")
)

// note records one service outcome on the process-wide counter and the event
// bus.  With no subscribers the event branch is a single atomic load.
func note(ctr *obs.Counter, t obs.Type) {
	ctr.Add(1)
	if obs.On() {
		obs.Emit(obs.Event{Type: t, Level: obs.LevelDebug})
	}
}

// Kind classifies how a Do call was served.
type Kind int8

const (
	// Miss: this call executed the computation.
	Miss Kind = iota
	// Hit: the value was already cached.
	Hit
	// Dedup: the call joined a computation another caller had in flight.
	Dedup
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Hit:
		return "hit"
	case Dedup:
		return "dedup"
	default:
		return "miss"
	}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts Do calls served from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts Do calls that executed the computation.
	Misses uint64 `json:"misses"`
	// Dedups counts Do calls that joined an in-flight computation.
	Dedups uint64 `json:"dedups"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Entries is the current number of cached values.
	Entries int `json:"entries"`
}

const defaultCapacity = 4096

// Cache is a sharded LRU + singleflight cache from string keys to values of
// type V.  The zero value is not usable; construct with New.
type Cache[V any] struct {
	shards [nShards]shard[V]
	seed   maphash.Seed
	cap    int // per shard

	hits, misses, dedups, evictions atomic.Uint64
}

const nShards = 16

type shard[V any] struct {
	mu       sync.Mutex
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	inflight map[string]*call[V]
}

type entry[V any] struct {
	key string
	val V
}

// call is one in-flight computation plus the bookkeeping for cooperative
// cancellation: waiters counts the callers (leader included) still interested
// in the result; when it reaches zero before the computation finishes, the
// computation's context is cancelled.
type call[V any] struct {
	done     chan struct{}
	val      V
	err      error
	waiters  int
	finished bool
	cancel   context.CancelFunc
}

// New returns a cache bounded to roughly the given total number of entries
// (<= 0 selects a default of 4096).  The bound is enforced per shard, so the
// precise ceiling is capacity rounded up to a multiple of the shard count.
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		capacity = defaultCapacity
	}
	perShard := (capacity + nShards - 1) / nShards
	c := &Cache[V]{seed: maphash.MakeSeed(), cap: perShard}
	for i := range c.shards {
		c.shards[i] = shard[V]{
			entries:  make(map[string]*list.Element),
			lru:      list.New(),
			inflight: make(map[string]*call[V]),
		}
	}
	return c
}

func (c *Cache[V]) shardOf(key string) *shard[V] {
	return &c.shards[maphash.String(c.seed, key)%nShards]
}

// Get returns the cached value for key without affecting the singleflight
// state.  It counts as a hit when present and updates the LRU recency.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		c.hits.Add(1)
		note(totHits, obs.CacheHit)
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Do returns the value for key, computing it with fn at most once across
// concurrent callers.  The Kind reports how the call was served.  fn receives
// a context that is cancelled when every caller that joined this computation
// has been cancelled; its successful result is cached (evicting LRU entries
// past the capacity), its error is returned to every joined caller and not
// cached.  When ctx is cancelled while waiting, Do returns ctx.Err() without
// waiting for fn.
func (c *Cache[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, Kind, error) {
	s := c.shardOf(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		// Copy the value out under the lock: insertLocked updates entries
		// in place, so reading after Unlock would race with a concurrent
		// re-insert of the same key.
		v := el.Value.(*entry[V]).val
		s.mu.Unlock()
		c.hits.Add(1)
		note(totHits, obs.CacheHit)
		return v, Hit, nil
	}
	if cl, ok := s.inflight[key]; ok {
		cl.waiters++
		s.mu.Unlock()
		c.dedups.Add(1)
		note(totDedups, obs.CacheDedup)
		v, err := c.wait(ctx, s, key, cl)
		return v, Dedup, err
	}
	cctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	cl := &call[V]{done: make(chan struct{}), waiters: 1, cancel: cancel}
	s.inflight[key] = cl
	s.mu.Unlock()
	c.misses.Add(1)
	note(totMisses, obs.CacheMiss)

	go func() {
		var v V
		var err error
		// The computation runs on this cache-owned goroutine, outside any
		// recover the caller installed on its own stack; contain panics here
		// so one bad computation becomes an error for the joined waiters
		// instead of killing the process (and leaving done never closed).
		func() {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("memo: computation panicked: %v", r)
				}
			}()
			v, err = fn(cctx)
		}()
		s.mu.Lock()
		cl.finished = true
		cl.val, cl.err = v, err
		// An abandoned call was already deregistered by its last waiter and
		// may have been replaced by a fresh one; only remove our own entry.
		if s.inflight[key] == cl {
			delete(s.inflight, key)
		}
		if err == nil {
			c.insertLocked(s, key, v)
		}
		s.mu.Unlock()
		cancel()
		close(cl.done)
	}()

	v, err := c.wait(ctx, s, key, cl)
	return v, Miss, err
}

// wait blocks until the call completes or ctx is cancelled.  A cancelled
// waiter deregisters its interest; the last deregistration cancels the
// computation itself and removes it from the in-flight table, so a later Do
// for the key starts a fresh computation instead of joining a dying one.
func (c *Cache[V]) wait(ctx context.Context, s *shard[V], key string, cl *call[V]) (V, error) {
	select {
	case <-cl.done:
		return cl.val, cl.err
	case <-ctx.Done():
		s.mu.Lock()
		if !cl.finished {
			cl.waiters--
			if cl.waiters == 0 {
				cl.cancel()
				if s.inflight[key] == cl {
					delete(s.inflight, key)
				}
			}
			s.mu.Unlock()
			var zero V
			return zero, ctx.Err()
		}
		s.mu.Unlock()
		// The computation beat the cancellation; deliver the result.
		<-cl.done
		return cl.val, cl.err
	}
}

// insertLocked adds key→val to the shard (which must be locked) and evicts
// past the per-shard capacity.
func (c *Cache[V]) insertLocked(s *shard[V], key string, val V) {
	if el, ok := s.entries[key]; ok {
		el.Value.(*entry[V]).val = val
		s.lru.MoveToFront(el)
		return
	}
	s.entries[key] = s.lru.PushFront(&entry[V]{key: key, val: val})
	for s.lru.Len() > c.cap {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.entries, back.Value.(*entry[V]).key)
		c.evictions.Add(1)
		note(totEvictions, obs.CacheEvict)
	}
}

// Len returns the current number of cached entries.
func (c *Cache[V]) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.lru.Len()
		s.mu.Unlock()
	}
	return total
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Dedups:    c.dedups.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
