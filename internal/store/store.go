// Package store is the disk-backed, content-addressed result store under the
// memo cache: scenario outcomes keyed by their versioned canonical SHA-256
// keys (internal/canon + the campaign key suffix) survive process restarts,
// so a restarted daemon answers its first symmetric sweep from disk instead
// of recomputing the universe, and a fleet of daemons can serve each other's
// stores over HTTP (see Peers and ringd's GET /v1/cache/<key>).
//
// The design is a small bitcask: append-only segment files of length-prefixed
// records with a per-record CRC32C, and an in-memory index rebuilt by
// scanning the segments on Open.  Three invariants carry the package:
//
//   - Crash-mid-append never poisons the store.  A record is valid only if
//     its checksum matches; the recovery scan stops at the first torn or
//     corrupt record and truncates the tail away, so the store reopens with
//     exactly the complete records that made it to disk and the next append
//     continues from there.
//   - Values are immutable per key version.  A key is a content address
//     (the canonical configuration fingerprint plus the task inputs), so a
//     re-put of an existing key writes an identical value; the index keeps
//     the newest copy and older copies become garbage for the compactor.
//   - Nothing nondeterministic reaches the record bytes.  Keys and values
//     are produced by the deterministic campaign/canon layers; the store
//     adds framing and checksums only.  Recency for eviction is a logical
//     access counter, not wall clock (the determinism analyzer holds this
//     package to the same clock discipline as the artefact writers).
//
// Capacity is managed at segment granularity: when Options.MaxBytes is
// exceeded, whole sealed segments are evicted oldest-access-first (their
// keys drop from the index), and a background compaction rewrites live
// records into fresh segments once the garbage ratio passes a threshold,
// reclaiming space from superseded duplicates.  Compacted segments get ids
// above every existing id, so a crash between writing the compacted copy and
// unlinking the originals re-resolves in favour of the copy on the next scan.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"ringsym/internal/obs"
)

// Process-wide service totals, registered in the obs metric registry (the
// pattern internal/memo set): per-instance Stats() answers "how is this
// store doing" while the Prometheus exposition sees fleet-facing totals.
var (
	totHits        = obs.NewCounter("ringsym_store_hits_total", "Store lookups served from a segment, across all stores.")
	totMisses      = obs.NewCounter("ringsym_store_misses_total", "Store lookups that found no record, across all stores.")
	totPuts        = obs.NewCounter("ringsym_store_puts_total", "Records appended, across all stores.")
	totEvictSegs   = obs.NewCounter("ringsym_store_evicted_segments_total", "Sealed segments dropped by the size cap, across all stores.")
	totEvictRecs   = obs.NewCounter("ringsym_store_evicted_records_total", "Live records lost to segment eviction, across all stores.")
	totCompactions = obs.NewCounter("ringsym_store_compactions_total", "Compaction passes completed, across all stores.")
)

// note records one service outcome on the process-wide counter and the event
// bus; with no subscribers the event branch is a single atomic load.
func note(ctr *obs.Counter, t obs.Type) {
	ctr.Add(1)
	if obs.On() {
		obs.Emit(obs.Event{Type: t, Level: obs.LevelDebug})
	}
}

// Options configures a Store.
type Options struct {
	// MaxBytes caps the total on-disk size; 0 means unbounded.  The cap is
	// enforced by evicting whole sealed segments, oldest logical access
	// first, so the floor is one active segment (the cap cannot evict the
	// segment being appended to).
	MaxBytes int64
	// SegmentBytes is the size at which the active segment is sealed and a
	// fresh one started; 0 selects 4 MiB.  Smaller segments evict and
	// compact at finer granularity for more file-rotation churn.
	SegmentBytes int64
	// NoAutoCompact disables the background compaction that otherwise runs
	// when sealed garbage exceeds half the store; Compact can still be
	// called explicitly.
	NoAutoCompact bool

	// wrapWriter, when set, interposes on the active segment's writer; the
	// crash-recovery property test injects torn appends through it.
	wrapWriter func(io.WriterAt) io.WriterAt
}

const defaultSegmentBytes = 4 << 20

// ref locates the current record for a key.
type ref struct {
	seg uint64
	off int64 // record header offset within the segment
	kl  int
	vl  int
}

// segment is one on-disk file plus its liveness accounting.
type segment struct {
	id     uint64
	f      *os.File
	w      io.WriterAt // f, possibly wrapped for fault injection
	size   int64       // valid bytes (header + complete records)
	live   int64       // bytes of records the index still points at
	liveN  int         // records the index still points at
	access atomic.Int64
}

// Store is a disk-backed key→value store.  All methods are safe for
// concurrent use.  Construct with Open; Close releases the directory.
type Store struct {
	dir  string
	opts Options

	mu     sync.RWMutex
	segs   map[uint64]*segment
	order  []uint64 // ascending ids; last is the active segment
	idx    map[string]ref
	nextID uint64
	closed bool
	buf    []byte // record scratch, guarded by mu (appends are serialized)

	clock      atomic.Int64 // logical access clock for eviction recency
	compacting atomic.Bool
	compactWG  sync.WaitGroup

	hits, misses, puts          atomic.Uint64
	evictSegs, evictRecs        atomic.Uint64
	compactions, compactedBytes atomic.Uint64
}

// Stats is a point-in-time snapshot of a store's state and service counters.
type Stats struct {
	// Segments is the number of on-disk segment files (the active one
	// included); IndexEntries the number of distinct keys resident.
	Segments     int `json:"segments"`
	IndexEntries int `json:"index_entries"`
	// LiveBytes are record bytes the index points at; GarbageBytes are
	// superseded duplicates awaiting compaction; TotalBytes is the on-disk
	// footprint including segment headers.
	LiveBytes    int64 `json:"live_bytes"`
	GarbageBytes int64 `json:"garbage_bytes"`
	TotalBytes   int64 `json:"total_bytes"`
	// Service counters since Open.
	Hits            uint64 `json:"hits"`
	Misses          uint64 `json:"misses"`
	Puts            uint64 `json:"puts"`
	EvictedSegments uint64 `json:"evicted_segments"`
	EvictedRecords  uint64 `json:"evicted_records"`
	Compactions     uint64 `json:"compactions"`
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Open opens (or creates) the store rooted at dir, rebuilding the in-memory
// index by scanning every segment in id order: later segments win duplicate
// keys, torn or corrupt tails are truncated away, and the highest segment is
// reused as the active one when it has room.  Files in dir that are not
// segment files are ignored.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:  dir,
		opts: opts,
		segs: make(map[uint64]*segment),
		idx:  make(map[string]ref),
	}
	ids, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, id := range ids {
		if err := s.openSegment(id); err != nil {
			s.closeAll()
			return nil, err
		}
	}
	if len(s.order) > 0 {
		s.nextID = s.order[len(s.order)-1] + 1
	} else {
		s.nextID = 1
	}
	// Ensure an active segment with room; a full (or absent) tail rotates.
	if len(s.order) == 0 || s.activeLocked().size >= opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			s.closeAll()
			return nil, err
		}
	}
	return s, nil
}

// openSegment scans one existing segment into the index, truncating any torn
// tail in place so the next append lands on a clean boundary.
func (s *Store) openSegment(id uint64) error {
	f, err := os.OpenFile(segPath(s.dir, id), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	seg := &segment{id: id, f: f, w: s.wrap(f)}
	var recs []scannedRecord
	validLen, _ := scanSegment(f, fi.Size(), func(r scannedRecord) { recs = append(recs, r) })
	if validLen < int64(segHeaderLen) {
		// Headerless or foreign-content file under a segment name: reset it
		// to an empty segment rather than guessing at its bytes.
		validLen = 0
	}
	if validLen < fi.Size() {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating torn tail of %s: %w", segName(id), err)
		}
	}
	if validLen == 0 {
		if _, err := seg.w.WriteAt([]byte(segMagic), 0); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		validLen = int64(segHeaderLen)
	}
	seg.size = validLen
	s.segs[id] = seg
	s.order = append(s.order, id)
	// Replay in file order: within a segment later records supersede
	// earlier ones, and segments are opened in ascending id order, so the
	// last write for a key always wins — the same resolution a crash
	// between compaction and unlink relies on.
	for _, r := range recs {
		s.indexLocked(r.key, ref{seg: id, off: r.off, kl: r.kl, vl: r.vl})
	}
	return nil
}

// wrap applies the fault-injection hook to a segment writer.
func (s *Store) wrap(f *os.File) io.WriterAt {
	if s.opts.wrapWriter != nil {
		return s.opts.wrapWriter(f)
	}
	return f
}

// indexLocked points the index at a (new) record, moving any previous copy's
// bytes to the garbage side of its segment's accounting.
func (s *Store) indexLocked(key string, r ref) {
	if old, ok := s.idx[key]; ok {
		if oseg := s.segs[old.seg]; oseg != nil {
			oseg.live -= recordSize(old.kl, old.vl)
			oseg.liveN--
		}
	}
	s.idx[key] = r
	seg := s.segs[r.seg]
	seg.live += recordSize(r.kl, r.vl)
	seg.liveN++
}

func (s *Store) activeLocked() *segment {
	return s.segs[s.order[len(s.order)-1]]
}

// rotateLocked seals the active segment (fsync) and starts a fresh one.
func (s *Store) rotateLocked() error {
	if len(s.order) > 0 {
		if err := s.activeLocked().f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	id := s.nextID
	f, err := os.OpenFile(segPath(s.dir, id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	seg := &segment{id: id, f: f, w: s.wrap(f)}
	if _, err := seg.w.WriteAt([]byte(segMagic), 0); err != nil {
		f.Close()
		os.Remove(segPath(s.dir, id))
		return fmt.Errorf("store: %w", err)
	}
	seg.size = int64(segHeaderLen)
	seg.access.Store(s.clock.Add(1))
	s.nextID++
	s.segs[id] = seg
	s.order = append(s.order, id)
	return nil
}

// Get returns the stored value for key.  The record's checksum is
// re-verified on every read — a flipped bit on disk surfaces as a miss (and
// a recompute), never as a corrupt outcome served to a client.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, false
	}
	r, ok := s.idx[key]
	if !ok {
		s.mu.RUnlock()
		s.misses.Add(1)
		note(totMisses, obs.StoreMiss)
		return nil, false
	}
	seg := s.segs[r.seg]
	buf := make([]byte, recordSize(r.kl, r.vl))
	_, err := seg.f.ReadAt(buf, r.off)
	seg.access.Store(s.clock.Add(1))
	s.mu.RUnlock()
	if err != nil {
		s.misses.Add(1)
		note(totMisses, obs.StoreMiss)
		return nil, false
	}
	rec := appendRecord(nil, key, buf[recHeaderLen+r.kl:])
	if !bytes.Equal(rec[:recHeaderLen+r.kl], buf[:recHeaderLen+r.kl]) {
		// Key or framing mismatch under a stale index entry.
		s.misses.Add(1)
		note(totMisses, obs.StoreMiss)
		return nil, false
	}
	s.hits.Add(1)
	note(totHits, obs.StoreHit)
	return buf[recHeaderLen+r.kl:], true
}

// Put appends key→val to the active segment and points the index at it.  A
// failed append (torn write, full disk) leaves the segment's valid length
// unchanged — the partial bytes sit beyond it and are overwritten by the
// next append or truncated by the next Open — and returns the error.
func (s *Store) Put(key string, val []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d outside (0, %d]", len(key), maxKeyLen)
	}
	if len(val) > maxValLen {
		return fmt.Errorf("store: value length %d above %d", len(val), maxValLen)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	// A content-addressed re-put of the resident value is a no-op, not new
	// garbage: warm sweeps re-offer every outcome they serve.
	if r, ok := s.idx[key]; ok && r.vl == len(val) {
		s.mu.Unlock()
		return nil
	}
	// Rotate BEFORE appending, never after: a Put that returns nil must
	// mean the record's bytes are fully on disk, and a Put that errors must
	// mean they are not — rotation failure after a durable append would
	// break that contract (the crash-recovery property test holds it).
	seg := s.activeLocked()
	var rotated bool
	if seg.size >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			s.mu.Unlock()
			return err
		}
		seg = s.activeLocked()
		rotated = true
	}
	s.buf = appendRecord(s.buf, key, val)
	if _, err := seg.w.WriteAt(s.buf, seg.size); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("store: append: %w", err)
	}
	off := seg.size
	seg.size += int64(len(s.buf))
	seg.access.Store(s.clock.Add(1))
	s.indexLocked(key, ref{seg: seg.id, off: off, kl: len(key), vl: len(val)})
	s.evictLocked()
	wantCompact := rotated && !s.opts.NoAutoCompact && s.garbageLocked() > s.totalLocked()/2
	s.mu.Unlock()
	s.puts.Add(1)
	totPuts.Add(1)
	if wantCompact && s.compacting.CompareAndSwap(false, true) {
		s.compactWG.Add(1)
		go func() {
			defer s.compactWG.Done()
			defer s.compacting.Store(false)
			s.Compact()
		}()
	}
	return nil
}

func (s *Store) totalLocked() int64 {
	var t int64
	for _, id := range s.order {
		t += s.segs[id].size
	}
	return t
}

func (s *Store) garbageLocked() int64 {
	var g int64
	for _, id := range s.order {
		seg := s.segs[id]
		g += seg.size - int64(segHeaderLen) - seg.live
	}
	return g
}

// evictLocked drops sealed segments, oldest logical access first, until the
// store fits Options.MaxBytes.  The active segment is never evicted, so the
// cap's floor is one segment.  Evicted keys leave the index; their loss is
// recoverable by recomputation, which is the long-tail trade the cap exists
// to make.
func (s *Store) evictLocked() {
	if s.opts.MaxBytes <= 0 {
		return
	}
	for s.totalLocked() > s.opts.MaxBytes && len(s.order) > 1 {
		victim := -1
		for i := 0; i < len(s.order)-1; i++ { // exclude the active tail
			if victim == -1 || s.segs[s.order[i]].access.Load() < s.segs[s.order[victim]].access.Load() {
				victim = i
			}
		}
		if victim == -1 {
			return
		}
		s.dropSegmentLocked(victim, true)
	}
}

// dropSegmentLocked removes the segment at position i of s.order from the
// index, the map and (best-effort) the disk.
func (s *Store) dropSegmentLocked(i int, evict bool) {
	id := s.order[i]
	seg := s.segs[id]
	dropped := 0
	for key, r := range s.idx {
		if r.seg == id {
			delete(s.idx, key)
			dropped++
		}
	}
	seg.f.Close()
	os.Remove(segPath(s.dir, id))
	delete(s.segs, id)
	s.order = append(s.order[:i], s.order[i+1:]...)
	if evict {
		s.evictSegs.Add(1)
		s.evictRecs.Add(uint64(dropped))
		totEvictSegs.Add(1)
		totEvictRecs.Add(uint64(dropped))
		if obs.On() {
			obs.Emit(obs.Event{Type: obs.StoreEvict, Level: obs.LevelInfo})
		}
	}
}

// Compact rewrites every live record of the sealed segments into fresh
// segments (in segment-id, then file-offset order — never map iteration
// order) and unlinks the originals, reclaiming the space superseded
// duplicates occupy.  The store is locked for the duration; compaction is a
// maintenance pass, not a hot-path operation.  Crash safety: the compacted
// copies are synced before any original is unlinked, and they carry higher
// segment ids, so a reopen that sees both resolves every key to the copy.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// Seal the current active segment so the whole existing tail is
	// compactable and appends after the pass land in a clean segment.
	if err := s.rotateLocked(); err != nil {
		return err
	}
	oldIDs := append([]uint64(nil), s.order[:len(s.order)-1]...)
	val := make([]byte, 0, 4096)
	for _, id := range oldIDs {
		seg := s.segs[id]
		if seg.liveN == 0 {
			continue
		}
		// Walk the segment in offset order and re-append the records the
		// index still points at.
		var scanErr error
		_, _ = scanSegment(seg.f, seg.size, func(r scannedRecord) {
			if scanErr != nil {
				return
			}
			cur, ok := s.idx[r.key]
			if !ok || cur.seg != id || cur.off != r.off {
				return // superseded or evicted: garbage
			}
			if cap(val) < r.vl {
				val = make([]byte, r.vl)
			}
			val = val[:r.vl]
			if _, err := seg.f.ReadAt(val, r.off+recHeaderLen+int64(r.kl)); err != nil {
				scanErr = err
				return
			}
			scanErr = s.appendCompactedLocked(r.key, val)
		})
		if scanErr != nil {
			return fmt.Errorf("store: compact: %w", scanErr)
		}
	}
	// Sync the compacted copies before unlinking what they replace.
	if err := s.activeLocked().f.Sync(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	for range oldIDs {
		// The old segments occupy the prefix of s.order; drop position 0
		// repeatedly (dropSegmentLocked reslices).
		s.dropSegmentLocked(0, false)
	}
	s.compactions.Add(1)
	note(totCompactions, obs.StoreCompact)
	return nil
}

// appendCompactedLocked appends one live record to the compaction target,
// rotating as segments fill.
func (s *Store) appendCompactedLocked(key string, val []byte) error {
	seg := s.activeLocked()
	if seg.size >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		seg = s.activeLocked()
	}
	s.buf = appendRecord(s.buf, key, val)
	if _, err := seg.w.WriteAt(s.buf, seg.size); err != nil {
		return err
	}
	off := seg.size
	seg.size += int64(len(s.buf))
	s.indexLocked(key, ref{seg: seg.id, off: off, kl: len(key), vl: len(val)})
	return nil
}

// Len returns the number of distinct keys resident in the index.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.idx)
}

// Stats returns a snapshot of the store's state and counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	st := Stats{
		Segments:     len(s.order),
		IndexEntries: len(s.idx),
		TotalBytes:   s.totalLocked(),
		GarbageBytes: s.garbageLocked(),
	}
	for _, id := range s.order {
		st.LiveBytes += s.segs[id].live
	}
	s.mu.RUnlock()
	st.Hits = s.hits.Load()
	st.Misses = s.misses.Load()
	st.Puts = s.puts.Load()
	st.EvictedSegments = s.evictSegs.Load()
	st.EvictedRecords = s.evictRecs.Load()
	st.Compactions = s.compactions.Load()
	return st
}

// Close syncs the active segment and releases every file.  Operations after
// Close fail with ErrClosed (Get reports a miss-shaped false).
func (s *Store) Close() error {
	s.compactWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if len(s.order) > 0 {
		err = s.activeLocked().f.Sync()
	}
	s.closeAll()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// closeAll closes every open segment file (used by Close and failed Opens).
func (s *Store) closeAll() {
	for _, seg := range s.segs {
		seg.f.Close()
	}
}
