package store

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"slices"
	"sync"
	"time"

	"ringsym/internal/obs"
)

// Peer-hop service totals (the fleet-facing side of the store tier).
var (
	totPeerHits   = obs.NewCounter("ringsym_store_peer_hits_total", "Records fetched from a fleet peer's store.")
	totPeerMisses = obs.NewCounter("ringsym_store_peer_misses_total", "Peer lookups where no configured peer had the record.")
)

// negCacheCap bounds the negative-lookup set.  At capacity the whole set is
// cleared rather than aged out: suppression needs no TTL because a key that
// missed every peer is computed locally right after, so its suppression
// entry stops mattering — the set exists only to stop a cold fleet from
// re-asking its peers for every scenario of the same sweep.
const negCacheCap = 1 << 16

// Peers fetches store records from fleet peers over ringd's
// GET /v1/cache/<key> endpoint.  The peer hop sits between the local disk
// tier and a compute: one cheap HTTP GET per peer, first hit wins, and a
// fleet-wide miss is remembered (negative-lookup suppression) so concurrent
// cold nodes don't storm each other.  The zero value is unusable; construct
// with NewPeers.  All methods are safe for concurrent use.
type Peers struct {
	self   string // own advertise URL, excluded from the fetch fan-out
	client *http.Client

	mu      sync.RWMutex
	addrs   []string            // peer base URLs, e.g. "http://host:port"
	neg     map[string]struct{} // keys every current peer has missed
	nHits   uint64
	nMisses uint64
}

// NewPeers returns a peer fetcher that excludes self (its own advertise URL,
// "" when unknown) from every fan-out.  client may be nil for a default
// client with a 2-second overall timeout — a slow peer must cost less than
// the compute it would save.
func NewPeers(self string, client *http.Client) *Peers {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	return &Peers{
		self:   canonAddr(self),
		client: client,
		neg:    make(map[string]struct{}),
	}
}

// canonAddr normalises a peer address to a base URL with a scheme and no
// trailing slash, so roster entries ("127.0.0.1:8931") and advertise URLs
// ("http://127.0.0.1:8931/") compare equal.
func canonAddr(addr string) string {
	if addr == "" {
		return ""
	}
	for len(addr) > 0 && addr[len(addr)-1] == '/' {
		addr = addr[:len(addr)-1]
	}
	if u, err := url.Parse(addr); err == nil && u.Scheme != "" {
		return addr
	}
	return "http://" + addr
}

// Set replaces the peer list (deduplicated, self excluded) and clears the
// negative-lookup set: a changed roster may hold keys every old peer
// missed.  An unchanged roster is a no-op — fleet heartbeats re-announce
// the same peers every few seconds, and re-clearing the suppression set on
// each would defeat it.
func (p *Peers) Set(addrs []string) {
	seen := make(map[string]struct{}, len(addrs))
	clean := make([]string, 0, len(addrs))
	for _, a := range addrs {
		c := canonAddr(a)
		if c == "" || c == p.self {
			continue
		}
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		clean = append(clean, c)
	}
	p.mu.Lock()
	if !slices.Equal(clean, p.addrs) {
		p.addrs = clean
		p.neg = make(map[string]struct{})
	}
	p.mu.Unlock()
}

// List returns a copy of the current peer list.
func (p *Peers) List() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]string(nil), p.addrs...)
}

// Fetch asks each peer in roster order for key and returns the first hit's
// body.  A fleet-wide miss is suppressed: until the roster changes (or the
// suppression set fills and is cleared), re-fetching the same key returns
// false without network traffic.  Errors are treated as misses — a dead
// peer must never block the compute path.
func (p *Peers) Fetch(ctx context.Context, key string) ([]byte, bool) {
	p.mu.RLock()
	addrs := p.addrs
	_, suppressed := p.neg[key]
	p.mu.RUnlock()
	if len(addrs) == 0 || suppressed {
		return nil, false
	}
	for _, addr := range addrs {
		if body, ok := p.fetchOne(ctx, addr, key); ok {
			p.nHitsAdd()
			note(totPeerHits, obs.StorePeerHit)
			return body, true
		}
		if ctx.Err() != nil {
			// Cancelled, not missed: don't poison the suppression set.
			return nil, false
		}
	}
	p.mu.Lock()
	if len(p.neg) >= negCacheCap {
		p.neg = make(map[string]struct{})
	}
	p.neg[key] = struct{}{}
	p.mu.Unlock()
	p.nMissesAdd()
	note(totPeerMisses, obs.StorePeerMiss)
	return nil, false
}

// fetchOne performs one GET against one peer.
func (p *Peers) fetchOne(ctx context.Context, addr, key string) ([]byte, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/cache/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxValLen+1))
	if err != nil || len(body) == 0 || len(body) > maxValLen {
		return nil, false
	}
	return body, true
}

// Stats counters (hits = records served by a peer, misses = fleet-wide
// lookup failures).  Kept as plain methods so cmd-layer dumps don't need a
// second stats struct.
func (p *Peers) nHitsAdd()   { p.mu.Lock(); p.nHits++; p.mu.Unlock() }
func (p *Peers) nMissesAdd() { p.mu.Lock(); p.nMisses++; p.mu.Unlock() }

// Counts returns the peer-hit and fleet-wide-miss counts since construction.
func (p *Peers) Counts() (hits, misses uint64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.nHits, p.nMisses
}
