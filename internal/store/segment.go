package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment file layout.  A segment is a header followed by back-to-back
// records; nothing in a segment is ever rewritten in place, so a reader can
// trust any record whose checksum matches and a recovery scan can cut a torn
// tail without consulting anything but the file itself:
//
//	header:  8 bytes  magic "RSEGv1\r\n"
//	record:  4 bytes  CRC32C over the remaining fields (lengths + key + value)
//	         4 bytes  key length   (big endian)
//	         4 bytes  value length (big endian)
//	         key, value bytes
//
// The CRC leads so a record is validated before its lengths are believed: a
// torn append can leave plausible-looking garbage lengths, and seeking past
// them would desynchronise the scan for the rest of the file.
const (
	segMagic     = "RSEGv1\r\n"
	segHeaderLen = len(segMagic)
	recHeaderLen = 12

	// maxKeyLen / maxValLen bound the lengths a scan will believe even with a
	// matching CRC shape; canonical cache keys are ~100 bytes and outcome
	// bodies O(n) JSON, so these are generous without letting a corrupt
	// length trigger a multi-gigabyte allocation.
	maxKeyLen = 1 << 12
	maxValLen = 1 << 26
)

// castagnoli is the CRC32C polynomial table (the same checksum family disks
// and filesystems use for data integrity).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segName renders a segment id as its file name; ids are zero-padded so
// lexical directory order equals numeric id order.
func segName(id uint64) string {
	return fmt.Sprintf("seg-%016d.rseg", id)
}

// parseSegName inverts segName; ok is false for foreign files, which Open
// leaves untouched.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".rseg") {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".rseg")
	if len(digits) != 16 {
		return 0, false
	}
	id, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// appendRecord encodes one record into buf (reused across calls) and returns
// the encoded bytes.
func appendRecord(buf []byte, key string, val []byte) []byte {
	need := recHeaderLen + len(key) + len(val)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(key)))
	binary.BigEndian.PutUint32(buf[8:12], uint32(len(val)))
	copy(buf[recHeaderLen:], key)
	copy(buf[recHeaderLen+len(key):], val)
	binary.BigEndian.PutUint32(buf[0:4], crc32.Checksum(buf[4:], castagnoli))
	return buf
}

// recordSize is the on-disk footprint of one record.
func recordSize(keyLen, valLen int) int64 {
	return int64(recHeaderLen + keyLen + valLen)
}

// scannedRecord is one complete record surfaced by scanSegment.
type scannedRecord struct {
	key string
	off int64 // offset of the record header within the segment
	vl  int   // value length
	kl  int   // key length
}

// errTorn reports a record that does not check out; the scan stops and the
// caller truncates the segment at the record's offset.
var errTorn = errors.New("store: torn or corrupt record")

// scanSegment reads every complete record of a segment file and returns the
// offset where the valid prefix ends.  A short header, an implausible
// length, a short body or a checksum mismatch all terminate the scan at the
// offending record's offset: a crash mid-append leaves exactly such a tail,
// and the recovery contract is that the tail is cut away, never interpreted.
// A file too short for (or not carrying) the magic header scans as empty
// with validLen 0.
func scanSegment(f io.ReaderAt, fileSize int64, emit func(scannedRecord)) (validLen int64, err error) {
	hdr := make([]byte, segHeaderLen)
	if fileSize < int64(segHeaderLen) {
		return 0, nil
	}
	if _, err := f.ReadAt(hdr, 0); err != nil || string(hdr) != segMagic {
		return 0, nil
	}
	off := int64(segHeaderLen)
	var rh [recHeaderLen]byte
	body := make([]byte, 0, 4096)
	for off+recHeaderLen <= fileSize {
		if _, err := f.ReadAt(rh[:], off); err != nil {
			return off, nil
		}
		kl := int(binary.BigEndian.Uint32(rh[4:8]))
		vl := int(binary.BigEndian.Uint32(rh[8:12]))
		if kl == 0 || kl > maxKeyLen || vl > maxValLen {
			return off, nil
		}
		size := recordSize(kl, vl)
		if off+size > fileSize {
			return off, nil
		}
		if cap(body) < kl+vl {
			body = make([]byte, kl+vl)
		}
		body = body[:kl+vl]
		if _, err := f.ReadAt(body, off+recHeaderLen); err != nil {
			return off, nil
		}
		sum := crc32.Checksum(rh[4:], castagnoli)
		sum = crc32.Update(sum, castagnoli, body)
		if sum != binary.BigEndian.Uint32(rh[0:4]) {
			return off, nil
		}
		emit(scannedRecord{key: string(body[:kl]), off: off, kl: kl, vl: vl})
		off += size
	}
	return off, nil
}

// listSegments returns the segment ids present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if id, ok := parseSegName(e.Name()); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// segPath joins dir and the segment file name.
func segPath(dir string, id uint64) string {
	return filepath.Join(dir, segName(id))
}
