package store

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
)

func put(t *testing.T, s *Store, key string, val []byte) {
	t.Helper()
	if err := s.Put(key, val); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func wantGet(t *testing.T, s *Store, key string, val []byte) {
	t.Helper()
	got, ok := s.Get(key)
	if !ok {
		t.Fatalf("Get(%q): miss, want %d bytes", key, len(val))
	}
	if string(got) != string(val) {
		t.Fatalf("Get(%q) = %q, want %q", key, got, val)
	}
}

func testKey(i int) string { return fmt.Sprintf("key-%04d|task=test|cs=false|seed=%d", i, i) }
func testVal(i int) []byte { return []byte(fmt.Sprintf(`{"i":%d,"body":"%04d"}`, i, i)) }

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		put(t, s, testKey(i), testVal(i))
	}
	for i := 0; i < n; i++ {
		wantGet(t, s, testKey(i), testVal(i))
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get(absent) hit")
	}
	st := s.Stats()
	if st.IndexEntries != n || st.Puts != n || st.Hits != n || st.Misses != 1 {
		t.Fatalf("stats = %+v, want %d entries/puts/hits, 1 miss", st, n)
	}
	if st.Segments < 2 {
		t.Fatalf("segments = %d, want rotation with SegmentBytes=256", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("after-close", []byte("x")); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}

	// Warm start: the index is rebuilt from the segments alone.
	s2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != n {
		t.Fatalf("reopened Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		wantGet(t, s2, testKey(i), testVal(i))
	}
	put(t, s2, testKey(n), testVal(n)) // append after recovery succeeds
	wantGet(t, s2, testKey(n), testVal(n))
}

func TestRePutIsNoOp(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	put(t, s, testKey(1), testVal(1))
	before := s.Stats()
	put(t, s, testKey(1), testVal(1)) // content-addressed: same key, same bytes
	after := s.Stats()
	if after.TotalBytes != before.TotalBytes || after.GarbageBytes != before.GarbageBytes {
		t.Fatalf("re-put grew the store: before %+v after %+v", before, after)
	}
}

// failingWriterAt tears the write that would push the cumulative byte count
// past budget: it persists only the prefix that fits and returns an error,
// which is exactly what a crash mid-append leaves on disk.
type failingWriterAt struct {
	f      io.WriterAt
	mu     sync.Mutex
	budget int64
	failed bool
}

func (w *failingWriterAt) WriteAt(p []byte, off int64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.budget >= int64(len(p)) {
		w.budget -= int64(len(p))
		return w.f.WriteAt(p, off)
	}
	w.failed = true
	n := int(w.budget)
	w.budget = 0
	if n > 0 {
		w.f.WriteAt(p[:n], off)
	}
	return n, fmt.Errorf("injected torn write (%d of %d bytes)", n, len(p))
}

// TestCrashRecoveryProperty is the crash-mid-append property test: append
// records through a writer that tears at a randomized byte offset, abandon
// the store without closing it (the crash), reopen, and require that the
// index holds exactly the fully-appended records and that the store accepts
// new appends.  200 trials sweep the tear across header, key and value
// positions of different records.
func TestCrashRecoveryProperty(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%03d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) + 1))
			dir := t.TempDir()
			// Budget at least the opening magic write; tears then land
			// anywhere in the first ~2KiB of appended records.
			fw := &failingWriterAt{budget: int64(segHeaderLen) + rng.Int63n(2048)}
			var inner io.WriterAt
			s, err := Open(dir, Options{
				SegmentBytes: 512,
				wrapWriter: func(w io.WriterAt) io.WriterAt {
					inner = w
					fw.f = w
					return fw
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			_ = inner
			survivors := make(map[string]string)
			for i := 0; ; i++ {
				key, val := testKey(i), testVal(i)
				if err := s.Put(key, val); err != nil {
					break // the crash point
				}
				survivors[key] = string(val)
				if i > 4096 {
					t.Fatal("fault injector never fired")
				}
			}
			if !fw.failed {
				t.Fatal("Put failed without the injector firing")
			}
			s.closeAll() // release fds; deliberately NOT Close (no sync, no cleanup)

			s2, err := Open(dir, Options{SegmentBytes: 512})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer s2.Close()
			if got := s2.Len(); got != len(survivors) {
				t.Fatalf("recovered %d records, want %d complete ones", got, len(survivors))
			}
			for key, val := range survivors {
				wantGet(t, s2, key, []byte(val))
			}
			put(t, s2, "post-crash", []byte("append-after-recovery"))
			wantGet(t, s2, "post-crash", []byte("append-after-recovery"))
		})
	}
}

func TestEvictionOldestAccessFirst(t *testing.T) {
	s, err := Open(t.TempDir(), Options{SegmentBytes: 256, MaxBytes: 1024, NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 100
	for i := 0; i < n; i++ {
		put(t, s, testKey(i), testVal(i))
	}
	st := s.Stats()
	if st.EvictedSegments == 0 {
		t.Fatalf("no segments evicted under MaxBytes=1024: %+v", st)
	}
	if st.TotalBytes > 1024 {
		t.Fatalf("TotalBytes %d above the cap", st.TotalBytes)
	}
	if st.IndexEntries == 0 || st.IndexEntries == n {
		t.Fatalf("IndexEntries = %d, want partial survival", st.IndexEntries)
	}
	// The newest record is in the active segment and must have survived;
	// the oldest was in the oldest-access segment and must be gone.
	wantGet(t, s, testKey(n-1), testVal(n-1))
	if _, ok := s.Get(testKey(0)); ok {
		t.Fatal("oldest record survived eviction")
	}
}

func TestCompactReclaimsGarbage(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 512, NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	// Supersede each key once (longer value) so half the records are garbage.
	const n = 40
	for i := 0; i < n; i++ {
		put(t, s, testKey(i), testVal(i))
	}
	big := make(map[string]string, n)
	for i := 0; i < n; i++ {
		v := fmt.Sprintf(`{"i":%d,"body":"%04d","superseded":true}`, i, i)
		put(t, s, testKey(i), []byte(v))
		big[testKey(i)] = v
	}
	pre := s.Stats()
	if pre.GarbageBytes == 0 {
		t.Fatalf("no garbage before compaction: %+v", pre)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	post := s.Stats()
	if post.GarbageBytes != 0 {
		t.Fatalf("GarbageBytes = %d after compaction, want 0", post.GarbageBytes)
	}
	if post.TotalBytes >= pre.TotalBytes {
		t.Fatalf("compaction did not shrink the store: %d -> %d", pre.TotalBytes, post.TotalBytes)
	}
	if post.IndexEntries != n || post.Compactions != 1 {
		t.Fatalf("post-compaction stats %+v", post)
	}
	for key, val := range big {
		wantGet(t, s, key, []byte(val))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The compacted layout must survive a reopen (ids above the originals,
	// so replay resolves to the compacted copies).
	s2, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != n {
		t.Fatalf("reopened Len = %d, want %d", got, n)
	}
	for key, val := range big {
		wantGet(t, s2, key, []byte(val))
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir(), Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := g*50 + i
				if err := s.Put(testKey(k), testVal(k)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, ok := s.Get(testKey(k))
				if !ok || string(got) != string(testVal(k)) {
					t.Errorf("Get(%d) after Put: ok=%v got=%q", k, ok, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Len(); got != 400 {
		t.Fatalf("Len = %d, want 400", got)
	}
}

func TestPeersFetch(t *testing.T) {
	records := map[string][]byte{
		testKey(1): testVal(1),
	}
	var mu sync.Mutex
	requests := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		requests++
		mu.Unlock()
		key, err := url.PathUnescape(r.URL.Path[len("/v1/cache/"):])
		if err != nil {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		if val, ok := records[key]; ok {
			w.Write(val)
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()

	p := NewPeers("", nil)
	p.Set([]string{srv.URL})
	ctx := context.Background()

	got, ok := p.Fetch(ctx, testKey(1))
	if !ok || string(got) != string(testVal(1)) {
		t.Fatalf("Fetch hit = %v %q", ok, got)
	}
	if _, ok := p.Fetch(ctx, testKey(2)); ok {
		t.Fatal("Fetch(absent) hit")
	}
	// The fleet-wide miss is suppressed: no second request for the same key.
	mu.Lock()
	before := requests
	mu.Unlock()
	if _, ok := p.Fetch(ctx, testKey(2)); ok {
		t.Fatal("suppressed Fetch hit")
	}
	mu.Lock()
	after := requests
	mu.Unlock()
	if after != before {
		t.Fatalf("suppressed fetch still hit the network (%d -> %d requests)", before, after)
	}
	// Re-announcing the same roster must NOT clear the suppression set…
	p.Set([]string{srv.URL})
	records[testKey(2)] = testVal(2)
	if _, ok := p.Fetch(ctx, testKey(2)); ok {
		t.Fatal("unchanged roster cleared the suppression set")
	}
	// …but an actual roster change does.
	p.Set(nil)
	p.Set([]string{srv.URL})
	got, ok = p.Fetch(ctx, testKey(2))
	if !ok || string(got) != string(testVal(2)) {
		t.Fatalf("Fetch after roster change = %v %q", ok, got)
	}
	if hits, misses := p.Counts(); hits != 2 || misses != 1 {
		t.Fatalf("Counts = %d hits %d misses, want 2/1", hits, misses)
	}
}

func TestPeersSelfExclusion(t *testing.T) {
	p := NewPeers("http://127.0.0.1:9999", nil)
	p.Set([]string{"127.0.0.1:9999", "127.0.0.1:9999/", "http://127.0.0.1:8888", "127.0.0.1:8888"})
	if got := p.List(); len(got) != 1 || got[0] != "http://127.0.0.1:8888" {
		t.Fatalf("List = %v, want the one non-self peer, deduplicated", got)
	}
}
