// Package ring implements the analytic round engine for the bouncing-agents
// model of Gąsieniec, Jurdziński, Martin and Stachowiak (ICDCS 2015).
//
// The engine keeps the objective state of the ring (the fixed multiset of
// starting positions plus the cumulative rotation offset) and, for a given
// assignment of objective directions, produces the per-agent observables of
// the model:
//
//   - dist() — the clockwise arc between an agent's position at the beginning
//     and at the end of the round (Lemma 1: every agent is shifted by the
//     rotation index r = (nC−nA) mod n positions), and
//   - coll() — the arc to the agent's first collision in the round
//     (Proposition 4: half the aggregate gap to the nearest oppositely-moving
//     agent ahead), available in the perceptive model.
//
// All observable arcs are reported in half-ticks (2×ticks) so that the /2 of
// the first-collision rule stays exact in integer arithmetic.
//
// The package is purely computational: it has no notion of agent identifiers,
// chirality or protocols.  Package internal/engine builds the per-agent
// distributed runtime on top of it, and package internal/physics provides an
// independent event-driven simulator used to cross-validate this engine.
package ring

import (
	"errors"
	"fmt"

	"ringsym/internal/geom"
)

// Direction is the action an agent takes at the beginning of a round.
// Directions handled by this package are objective (global frame); the
// translation from an agent's own sense of direction happens in
// internal/engine.
type Direction int8

const (
	// Idle means the agent starts the round without moving (lazy model only).
	Idle Direction = iota
	// Clockwise means the agent starts the round moving clockwise.
	Clockwise
	// Anticlockwise means the agent starts the round moving anticlockwise.
	Anticlockwise
)

// Opposite returns the reversed direction; Idle stays Idle.
func (d Direction) Opposite() Direction {
	switch d {
	case Clockwise:
		return Anticlockwise
	case Anticlockwise:
		return Clockwise
	default:
		return Idle
	}
}

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Idle:
		return "idle"
	case Clockwise:
		return "clockwise"
	case Anticlockwise:
		return "anticlockwise"
	default:
		return fmt.Sprintf("Direction(%d)", int8(d))
	}
}

// Model selects which variant of the movement model is in force.
type Model int8

const (
	// Basic: agents must move every round; the only observable is dist().
	Basic Model = iota + 1
	// Lazy: agents may additionally stay idle; the only observable is dist().
	Lazy
	// Perceptive: as Basic, plus the coll() observable.
	Perceptive
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case Basic:
		return "basic"
	case Lazy:
		return "lazy"
	case Perceptive:
		return "perceptive"
	default:
		return fmt.Sprintf("Model(%d)", int8(m))
	}
}

// Valid reports whether m is one of the defined models.
func (m Model) Valid() bool { return m == Basic || m == Lazy || m == Perceptive }

// AllowsIdle reports whether the model permits the Idle action.
func (m Model) AllowsIdle() bool { return m == Lazy }

// RevealsCollision reports whether the model exposes coll().
func (m Model) RevealsCollision() bool { return m == Perceptive }

// Errors returned by the engine.
var (
	ErrTooFewAgents      = errors.New("ring: the paper requires n > 4 agents")
	ErrBadPositions      = errors.New("ring: positions must be sorted clockwise, distinct and in range")
	ErrIdleNotAllowed    = errors.New("ring: idle is only allowed in the lazy model")
	ErrWrongDirCount     = errors.New("ring: direction slice length must equal the number of agents")
	ErrInvalidDirection  = errors.New("ring: invalid direction value")
	ErrInvalidModel      = errors.New("ring: invalid model")
	ErrAllowSmallMissing = errors.New("ring: fewer than 2 agents")
)

// Config describes the objective initial configuration of a ring network.
type Config struct {
	// Model is the movement model in force.
	Model Model
	// Circ is the circumference in ticks; it must be positive and even.
	Circ int64
	// Positions are the starting positions of the agents in ticks, sorted
	// strictly increasing (clockwise order).  Positions[i] belongs to the
	// agent with ring index i.
	Positions []int64
	// AllowSmall permits n <= 4 configurations, which the paper excludes but
	// which are useful for unit tests of the engine itself.
	AllowSmall bool
}

// State is the objective state of the ring between rounds: the fixed slot
// positions plus the cumulative rotation offset.  Agent with ring index i
// currently occupies slot (i+offset) mod n.
type State struct {
	model  Model
	circle geom.Circle
	slots  []int64 // fixed positions, sorted clockwise
	gaps   []int64 // gaps[s] = clockwise arc from slots[s] to slots[(s+1)%n]
	offset int     // cumulative rotation (in ring positions)
	rounds int     // number of rounds executed

	// Scratch buffers reused by ExecuteRoundInto so that executing a round
	// performs no allocations.  They are lazily sized and never shared between
	// states (Clone drops them).
	scratchDirBySlot []Direction
	scratchCW        []int64
	scratchCCW       []int64
}

// Observation is the per-agent outcome of one round, in the objective frame.
// Arc quantities are in half-ticks.
type Observation struct {
	// DistCW is the clockwise arc from the agent's position at the start of
	// the round to its position at the end, in half-ticks.
	DistCW int64
	// Coll is the arc from the agent's starting position to its first
	// collision, in half-ticks, measured along its initial direction of
	// movement.  It is only meaningful when Collided is true and only
	// computed in the perceptive model.
	Coll int64
	// Collided reports whether the agent collided at all during the round
	// (perceptive model only).
	Collided bool
}

// Outcome is the result of executing one round.
type Outcome struct {
	// Rotation is the rotation index r = (nC − nA) mod n of the round.
	Rotation int
	// Agents holds the per-agent observations indexed by ring index.
	Agents []Observation
}

// New validates cfg and returns the initial state.
func New(cfg Config) (*State, error) {
	if !cfg.Model.Valid() {
		return nil, ErrInvalidModel
	}
	circle, err := geom.New(cfg.Circ)
	if err != nil {
		return nil, fmt.Errorf("ring: %w", err)
	}
	n := len(cfg.Positions)
	if n < 2 {
		return nil, ErrAllowSmallMissing
	}
	if n <= 4 && !cfg.AllowSmall {
		return nil, fmt.Errorf("%w: n=%d", ErrTooFewAgents, n)
	}
	if !geom.SortedDistinct(cfg.Circ, cfg.Positions) {
		return nil, ErrBadPositions
	}
	slots := make([]int64, n)
	copy(slots, cfg.Positions)
	return &State{
		model:  cfg.Model,
		circle: circle,
		slots:  slots,
		gaps:   circle.Gaps(slots),
		offset: 0,
	}, nil
}

// Reset re-initialises the state in place for a new configuration, reusing
// the slot, gap and executor scratch capacity of the previous one.  It
// validates exactly like New and leaves the state unchanged on error.  Reset
// exists for scenario sweeps (the campaign runner): retiring one small
// configuration per run and rebuilding the state object thousands of times
// per second is pure allocation overhead.
func (s *State) Reset(cfg Config) error {
	if !cfg.Model.Valid() {
		return ErrInvalidModel
	}
	circle, err := geom.New(cfg.Circ)
	if err != nil {
		return fmt.Errorf("ring: %w", err)
	}
	n := len(cfg.Positions)
	if n < 2 {
		return ErrAllowSmallMissing
	}
	if n <= 4 && !cfg.AllowSmall {
		return fmt.Errorf("%w: n=%d", ErrTooFewAgents, n)
	}
	if !geom.SortedDistinct(cfg.Circ, cfg.Positions) {
		return ErrBadPositions
	}
	s.model = cfg.Model
	s.circle = circle
	if cap(s.slots) < n {
		s.slots = make([]int64, n)
		s.gaps = make([]int64, n)
	}
	s.slots = s.slots[:n]
	copy(s.slots, cfg.Positions)
	s.gaps = s.gaps[:n]
	for i := 0; i < n; i++ {
		s.gaps[i] = circle.CWDist(s.slots[i], s.slots[(i+1)%n])
	}
	s.offset = 0
	s.rounds = 0
	return nil
}

// N returns the number of agents.
func (s *State) N() int { return len(s.slots) }

// Model returns the movement model in force.
func (s *State) Model() Model { return s.model }

// Circ returns the circumference in ticks.
func (s *State) Circ() int64 { return s.circle.Circ() }

// FullCircle returns the circumference expressed in observation units
// (half-ticks).
func (s *State) FullCircle() int64 { return 2 * s.circle.Circ() }

// Rounds returns the number of rounds executed so far.
func (s *State) Rounds() int { return s.rounds }

// Offset returns the cumulative rotation offset.
func (s *State) Offset() int { return s.offset }

// Slot returns the slot index currently occupied by the agent with ring
// index i.
func (s *State) Slot(i int) int { return (i + s.offset) % len(s.slots) }

// PositionOf returns the current position (ticks) of the agent with ring
// index i.
func (s *State) PositionOf(i int) int64 { return s.slots[s.Slot(i)] }

// SlotPositions returns a copy of the fixed slot positions (ticks), sorted
// clockwise.
func (s *State) SlotPositions() []int64 {
	out := make([]int64, len(s.slots))
	copy(out, s.slots)
	return out
}

// Gaps returns a copy of the clockwise gaps between consecutive slots.
func (s *State) Gaps() []int64 {
	out := make([]int64, len(s.gaps))
	copy(out, s.gaps)
	return out
}

// Clone returns an independent copy of the state.
func (s *State) Clone() *State {
	cp := *s
	cp.slots = append([]int64(nil), s.slots...)
	cp.gaps = append([]int64(nil), s.gaps...)
	cp.scratchDirBySlot = nil
	cp.scratchCW = nil
	cp.scratchCCW = nil
	return &cp
}

// RotationIndex returns (nC−nA) mod n for the given objective directions.
func RotationIndex(n int, dirs []Direction) int {
	nc, na := 0, 0
	for _, d := range dirs {
		switch d {
		case Clockwise:
			nc++
		case Anticlockwise:
			na++
		}
	}
	r := (nc - na) % n
	if r < 0 {
		r += n
	}
	return r
}

// validate checks the direction slice against the model.
func (s *State) validate(dirs []Direction) error {
	if len(dirs) != len(s.slots) {
		return fmt.Errorf("%w: got %d, want %d", ErrWrongDirCount, len(dirs), len(s.slots))
	}
	for i, d := range dirs {
		switch d {
		case Clockwise, Anticlockwise:
		case Idle:
			if !s.model.AllowsIdle() {
				return fmt.Errorf("%w: agent with ring index %d", ErrIdleNotAllowed, i)
			}
		default:
			return fmt.Errorf("%w: agent with ring index %d has direction %d", ErrInvalidDirection, i, int8(d))
		}
	}
	return nil
}

// ExecuteRound executes one round in which the agent with ring index i starts
// moving in the objective direction dirs[i].  It advances the state and
// returns the per-agent observations.
func (s *State) ExecuteRound(dirs []Direction) (*Outcome, error) {
	out := &Outcome{}
	if err := s.ExecuteRoundInto(dirs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ExecuteRoundInto is ExecuteRound writing the observations into out, reusing
// out.Agents and the state's internal scratch buffers.  A caller that keeps
// the same Outcome across rounds executes rounds without any allocation.
func (s *State) ExecuteRoundInto(dirs []Direction, out *Outcome) error {
	if err := s.validate(dirs); err != nil {
		return err
	}
	n := len(s.slots)
	r := RotationIndex(n, dirs)

	out.Rotation = r
	if cap(out.Agents) < n {
		out.Agents = make([]Observation, n)
	} else {
		out.Agents = out.Agents[:n]
	}

	// dist(): by Lemma 1 agent i moves from slot (i+offset) to slot
	// (i+offset+r); its clockwise displacement is the arc between the two
	// slot positions.  The assignment also clears any stale Coll/Collided
	// from a previous round sharing the buffer.  Indices stay below 2n and
	// position differences within (-C, C), so conditional corrections replace
	// the modulo operations on this per-round path.
	circ := s.circle.Circ()
	for i := 0; i < n; i++ {
		from := i + s.offset
		if from >= n {
			from -= n
		}
		to := from + r
		if to >= n {
			to -= n
		}
		arc := s.slots[to] - s.slots[from]
		if arc < 0 {
			arc += circ
		}
		out.Agents[i] = Observation{DistCW: 2 * arc}
	}

	// coll(): only in the perceptive model (which forbids idle agents).
	if s.model.RevealsCollision() {
		s.firstCollisions(dirs, out)
	}

	s.offset = (s.offset + r) % n
	s.rounds++
	return nil
}

// firstCollisions fills Coll/Collided for every agent.  The model forbids
// idle agents here, so Proposition 4 applies: an agent moving clockwise first
// collides after half the aggregate clockwise gap to the nearest agent that
// started the round moving anticlockwise (and symmetrically).  If every agent
// moves in the same objective direction nobody ever collides.
func (s *State) firstCollisions(dirs []Direction, out *Outcome) {
	n := len(s.slots)
	if cap(s.scratchDirBySlot) < n {
		s.scratchDirBySlot = make([]Direction, n)
		s.scratchCW = make([]int64, n)
		s.scratchCCW = make([]int64, n)
	}
	// dirBySlot[t] is the direction of the occupant of slot t.
	dirBySlot := s.scratchDirBySlot[:n]
	for i := 0; i < n; i++ {
		t := i + s.offset
		if t >= n {
			t -= n
		}
		dirBySlot[t] = dirs[i]
	}

	// cwToA[t]: aggregate clockwise gap (ticks) from slot t to the nearest
	// slot strictly ahead whose occupant moves anticlockwise; -1 if none.
	cwToA := s.scratchCW[:n]
	distanceToDirection(cwToA, s.gaps, dirBySlot, Anticlockwise, true)
	// ccwToC[t]: aggregate anticlockwise gap from slot t to the nearest slot
	// strictly behind whose occupant moves clockwise; -1 if none.
	ccwToC := s.scratchCCW[:n]
	distanceToDirection(ccwToC, s.gaps, dirBySlot, Clockwise, false)

	for i := 0; i < n; i++ {
		slot := i + s.offset
		if slot >= n {
			slot -= n
		}
		var agg int64 = -1
		switch dirs[i] {
		case Clockwise:
			agg = cwToA[slot]
		case Anticlockwise:
			agg = ccwToC[slot]
		}
		if agg >= 0 {
			out.Agents[i].Collided = true
			// Collision after half the aggregate gap: in half-ticks that is
			// exactly the aggregate gap in ticks.
			out.Agents[i].Coll = agg
		}
	}
}

// distanceToDirection computes, for every slot t, the aggregate gap from t to
// the nearest slot strictly ahead whose occupant moves in direction want,
// walking clockwise when cw is true and anticlockwise otherwise, writing the
// result into res (len(res) == len(gaps)).  Every entry is -1 when no slot
// has the wanted direction.  Runs in O(n).
func distanceToDirection(res, gaps []int64, dirBySlot []Direction, want Direction, cw bool) {
	n := len(gaps)
	// Find any slot with the wanted direction to anchor the scan.
	anchor := -1
	for t := 0; t < n; t++ {
		if dirBySlot[t] == want {
			anchor = t
			break
		}
	}
	if anchor == -1 {
		for i := range res {
			res[i] = -1
		}
		return
	}
	if cw {
		// Process slots walking backwards from the anchor so that the value
		// of each slot's clockwise successor is already known.
		next := anchor
		for k := 1; k <= n; k++ {
			t := next - 1
			if t < 0 {
				t += n
			}
			if dirBySlot[next] == want {
				res[t] = gaps[t]
			} else {
				res[t] = gaps[t] + res[next]
			}
			next = t
		}
		return
	}
	// Anticlockwise walk: each slot's value depends on its anticlockwise
	// predecessor, so process slots walking forwards from the anchor.
	prev := anchor
	for k := 1; k <= n; k++ {
		t := prev + 1
		if t == n {
			t = 0
		}
		if dirBySlot[prev] == want {
			res[t] = gaps[prev]
		} else {
			res[t] = gaps[prev] + res[prev]
		}
		prev = t
	}
}
