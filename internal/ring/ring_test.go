package ring

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustState(t *testing.T, cfg Config) *State {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func basicConfig(positions []int64) Config {
	return Config{Model: Perceptive, Circ: 1000, Positions: positions, AllowSmall: true}
}

func TestNewValidation(t *testing.T) {
	ok := []int64{0, 100, 200, 300, 400}
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"invalid model", Config{Model: 0, Circ: 1000, Positions: ok}, ErrInvalidModel},
		{"odd circumference", Config{Model: Basic, Circ: 999, Positions: ok}, nil},
		{"too few agents", Config{Model: Basic, Circ: 1000, Positions: []int64{1, 2, 3}}, ErrTooFewAgents},
		{"single agent", Config{Model: Basic, Circ: 1000, Positions: []int64{1}}, ErrAllowSmallMissing},
		{"unsorted", Config{Model: Basic, Circ: 1000, Positions: []int64{5, 1, 9, 20, 30}}, ErrBadPositions},
		{"duplicate", Config{Model: Basic, Circ: 1000, Positions: []int64{1, 1, 9, 20, 30}}, ErrBadPositions},
		{"out of range", Config{Model: Basic, Circ: 1000, Positions: []int64{1, 5, 9, 20, 1000}}, ErrBadPositions},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if err == nil {
				t.Fatal("expected error")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
	if _, err := New(Config{Model: Basic, Circ: 1000, Positions: ok}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestRotationIndex(t *testing.T) {
	cases := []struct {
		dirs []Direction
		want int
	}{
		{[]Direction{Clockwise, Clockwise, Clockwise, Clockwise}, 0},
		{[]Direction{Anticlockwise, Anticlockwise, Anticlockwise, Anticlockwise}, 0},
		{[]Direction{Clockwise, Clockwise, Clockwise, Anticlockwise}, 2},
		{[]Direction{Clockwise, Anticlockwise, Anticlockwise, Anticlockwise}, 2},
		{[]Direction{Clockwise, Clockwise, Anticlockwise, Anticlockwise}, 0},
		{[]Direction{Idle, Clockwise, Anticlockwise, Idle}, 0},
		{[]Direction{Idle, Clockwise, Idle, Idle}, 1},
		{[]Direction{Idle, Anticlockwise, Idle, Idle}, 3},
	}
	for i, tc := range cases {
		if got := RotationIndex(len(tc.dirs), tc.dirs); got != tc.want {
			t.Errorf("case %d: RotationIndex = %d, want %d", i, got, tc.want)
		}
	}
}

func TestExecuteRoundDist(t *testing.T) {
	// Four agents at 0, 100, 300, 600 on a circle of 1000.
	s := mustState(t, basicConfig([]int64{0, 100, 300, 600}))
	// Three clockwise, one anticlockwise: rotation index 2.
	out, err := s.ExecuteRound([]Direction{Clockwise, Clockwise, Clockwise, Anticlockwise})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rotation != 2 {
		t.Fatalf("rotation = %d, want 2", out.Rotation)
	}
	// Agent 0 moves from slot 0 (pos 0) to slot 2 (pos 300): dist 300 ticks
	// = 600 half-ticks; agent 1: 100->600 = 500 ticks; agent 2: 300->0 = 700;
	// agent 3: 600->100 = 500.
	wantDist := []int64{600, 1000, 1400, 1000}
	for i, w := range wantDist {
		if out.Agents[i].DistCW != w {
			t.Errorf("agent %d dist = %d, want %d", i, out.Agents[i].DistCW, w)
		}
	}
	if s.Offset() != 2 {
		t.Fatalf("offset = %d, want 2", s.Offset())
	}
	if s.PositionOf(0) != 300 {
		t.Fatalf("agent 0 position = %d, want 300", s.PositionOf(0))
	}
	if s.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", s.Rounds())
	}
}

func TestExecuteRoundFirstCollision(t *testing.T) {
	// Configuration from the design notes: circumference 20, agents at
	// 0 (a, clockwise), 1 (b, anticlockwise), 17 (d, clockwise).
	// Ring order sorted clockwise: index 0 at 0 (a), 1 at 1 (b), 2 at 17 (d).
	s := mustState(t, Config{Model: Perceptive, Circ: 20, Positions: []int64{0, 1, 17}, AllowSmall: true})
	out, err := s.ExecuteRound([]Direction{Clockwise, Anticlockwise, Clockwise})
	if err != nil {
		t.Fatal(err)
	}
	// a's first collision with b after half of gap 1 -> 0.5 ticks = 1 half-tick.
	if !out.Agents[0].Collided || out.Agents[0].Coll != 1 {
		t.Errorf("agent a coll = %v %d, want 1", out.Agents[0].Collided, out.Agents[0].Coll)
	}
	// b moves anticlockwise towards a: same collision, also half of gap 1.
	if !out.Agents[1].Collided || out.Agents[1].Coll != 1 {
		t.Errorf("agent b coll = %v %d, want 1", out.Agents[1].Collided, out.Agents[1].Coll)
	}
	// d moves clockwise; aggregate gap to the nearest anticlockwise agent (b)
	// is 3 + 1 = 4 ticks -> first collision after 2 ticks = 4 half-ticks.
	if !out.Agents[2].Collided || out.Agents[2].Coll != 4 {
		t.Errorf("agent d coll = %v %d, want 4", out.Agents[2].Collided, out.Agents[2].Coll)
	}
}

func TestExecuteRoundNoCollisionWhenUnanimous(t *testing.T) {
	s := mustState(t, basicConfig([]int64{0, 100, 300, 600}))
	out, err := s.ExecuteRound([]Direction{Clockwise, Clockwise, Clockwise, Clockwise})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rotation != 0 {
		t.Fatalf("rotation = %d, want 0", out.Rotation)
	}
	for i, a := range out.Agents {
		if a.Collided {
			t.Errorf("agent %d should not collide", i)
		}
		if a.DistCW != 0 {
			t.Errorf("agent %d dist = %d, want 0", i, a.DistCW)
		}
	}
}

func TestIdleRejectedOutsideLazy(t *testing.T) {
	for _, m := range []Model{Basic, Perceptive} {
		s := mustState(t, Config{Model: m, Circ: 1000, Positions: []int64{0, 100, 300, 600}, AllowSmall: true})
		_, err := s.ExecuteRound([]Direction{Idle, Clockwise, Clockwise, Clockwise})
		if !errors.Is(err, ErrIdleNotAllowed) {
			t.Errorf("model %v: got %v, want ErrIdleNotAllowed", m, err)
		}
	}
	s := mustState(t, Config{Model: Lazy, Circ: 1000, Positions: []int64{0, 100, 300, 600}, AllowSmall: true})
	if _, err := s.ExecuteRound([]Direction{Idle, Clockwise, Clockwise, Clockwise}); err != nil {
		t.Errorf("lazy model rejected idle: %v", err)
	}
}

func TestExecuteRoundErrors(t *testing.T) {
	s := mustState(t, basicConfig([]int64{0, 100, 300, 600}))
	if _, err := s.ExecuteRound([]Direction{Clockwise}); !errors.Is(err, ErrWrongDirCount) {
		t.Errorf("got %v, want ErrWrongDirCount", err)
	}
	if _, err := s.ExecuteRound([]Direction{Clockwise, Clockwise, Clockwise, Direction(9)}); !errors.Is(err, ErrInvalidDirection) {
		t.Errorf("got %v, want ErrInvalidDirection", err)
	}
}

func TestLazyMomentumTransferRotation(t *testing.T) {
	// Two agents, one moving, one idle: design-note example scaled to 20.
	s := mustState(t, Config{Model: Lazy, Circ: 20, Positions: []int64{0, 10}, AllowSmall: true})
	out, err := s.ExecuteRound([]Direction{Clockwise, Idle})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rotation != 1 {
		t.Fatalf("rotation = %d, want 1", out.Rotation)
	}
	if s.PositionOf(0) != 10 || s.PositionOf(1) != 0 {
		t.Fatalf("positions = %d,%d want 10,0", s.PositionOf(0), s.PositionOf(1))
	}
}

func TestReversedRoundRestoresPositions(t *testing.T) {
	s := mustState(t, basicConfig([]int64{0, 100, 300, 600, 800}))
	dirs := []Direction{Clockwise, Anticlockwise, Clockwise, Clockwise, Anticlockwise}
	before := make([]int64, s.N())
	for i := range before {
		before[i] = s.PositionOf(i)
	}
	if _, err := s.ExecuteRound(dirs); err != nil {
		t.Fatal(err)
	}
	rev := make([]Direction, len(dirs))
	for i, d := range dirs {
		rev[i] = d.Opposite()
	}
	if _, err := s.ExecuteRound(rev); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if s.PositionOf(i) != before[i] {
			t.Fatalf("agent %d not restored: %d != %d", i, s.PositionOf(i), before[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := mustState(t, basicConfig([]int64{0, 100, 300, 600}))
	c := s.Clone()
	if _, err := s.ExecuteRound([]Direction{Clockwise, Clockwise, Clockwise, Anticlockwise}); err != nil {
		t.Fatal(err)
	}
	if c.Offset() != 0 || c.Rounds() != 0 {
		t.Fatal("clone mutated by original's round")
	}
}

func TestDirectionHelpers(t *testing.T) {
	if Clockwise.Opposite() != Anticlockwise || Anticlockwise.Opposite() != Clockwise || Idle.Opposite() != Idle {
		t.Error("Opposite misbehaves")
	}
	for _, d := range []Direction{Idle, Clockwise, Anticlockwise, Direction(42)} {
		if d.String() == "" {
			t.Error("empty String()")
		}
	}
	for _, m := range []Model{Basic, Lazy, Perceptive, Model(42)} {
		if m.String() == "" {
			t.Error("empty String()")
		}
	}
	if !Lazy.AllowsIdle() || Basic.AllowsIdle() || Perceptive.AllowsIdle() {
		t.Error("AllowsIdle misbehaves")
	}
	if !Perceptive.RevealsCollision() || Basic.RevealsCollision() || Lazy.RevealsCollision() {
		t.Error("RevealsCollision misbehaves")
	}
	if Model(42).Valid() {
		t.Error("invalid model accepted")
	}
}

// TestRotationLemmaProperty checks Lemma 1 directly: the multiset of occupied
// positions never changes and every agent is displaced by the same number of
// ring positions.
func TestRotationLemmaProperty(t *testing.T) {
	f := func(seed int64, raw []bool) bool {
		n := 5 + int(uint64(seed)%8)
		if len(raw) < n {
			return true
		}
		positions := make([]int64, n)
		for i := range positions {
			positions[i] = int64(i) * 100
		}
		s, err := New(Config{Model: Perceptive, Circ: int64(n) * 100, Positions: positions})
		if err != nil {
			return false
		}
		dirs := make([]Direction, n)
		for i := range dirs {
			if raw[i] {
				dirs[i] = Clockwise
			} else {
				dirs[i] = Anticlockwise
			}
		}
		out, err := s.ExecuteRound(dirs)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			want := positions[(i+out.Rotation)%n]
			if s.PositionOf(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFullCircleAndAccessors(t *testing.T) {
	s := mustState(t, basicConfig([]int64{0, 100, 300, 600}))
	if s.FullCircle() != 2000 {
		t.Errorf("FullCircle = %d, want 2000", s.FullCircle())
	}
	if s.Circ() != 1000 {
		t.Errorf("Circ = %d, want 1000", s.Circ())
	}
	if s.N() != 4 {
		t.Errorf("N = %d, want 4", s.N())
	}
	if s.Model() != Perceptive {
		t.Errorf("Model = %v", s.Model())
	}
	gaps := s.Gaps()
	want := []int64{100, 200, 300, 400}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
	}
	pos := s.SlotPositions()
	pos[0] = 99 // must not alias internal state
	if s.SlotPositions()[0] != 0 {
		t.Error("SlotPositions aliases internal state")
	}
	g := s.Gaps()
	g[0] = 99
	if s.Gaps()[0] != 100 {
		t.Error("Gaps aliases internal state")
	}
}

// TestExecuteRoundIntoReusesBuffers verifies that the allocation-free round
// path produces exactly the same observations as the allocating one, across
// many rounds with a shared reused Outcome (stale Coll/Collided must be
// cleared), and that Clone does not share scratch buffers.
func TestExecuteRoundIntoReusesBuffers(t *testing.T) {
	a := mustState(t, basicConfig([]int64{0, 100, 300, 600}))
	b := a.Clone()
	dirSets := [][]Direction{
		{Clockwise, Anticlockwise, Clockwise, Anticlockwise},
		{Clockwise, Clockwise, Clockwise, Clockwise}, // nobody collides
		{Anticlockwise, Clockwise, Anticlockwise, Clockwise},
		{Anticlockwise, Anticlockwise, Anticlockwise, Anticlockwise},
	}
	var reused Outcome
	for round, dirs := range dirSets {
		if err := a.ExecuteRoundInto(dirs, &reused); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		fresh, err := b.ExecuteRound(dirs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if reused.Rotation != fresh.Rotation {
			t.Fatalf("round %d rotation: %d vs %d", round, reused.Rotation, fresh.Rotation)
		}
		for i := range fresh.Agents {
			if reused.Agents[i] != fresh.Agents[i] {
				t.Fatalf("round %d agent %d: %+v vs %+v", round, i, reused.Agents[i], fresh.Agents[i])
			}
		}
	}
}

// TestCloneIndependentAfterRounds runs rounds on a state and its clone
// independently and checks they do not interfere through shared scratch.
func TestCloneIndependentAfterRounds(t *testing.T) {
	a := mustState(t, basicConfig([]int64{0, 100, 300, 600}))
	if _, err := a.ExecuteRound([]Direction{Clockwise, Anticlockwise, Clockwise, Anticlockwise}); err != nil {
		t.Fatal(err)
	}
	c := a.Clone()
	outA, err := a.ExecuteRound([]Direction{Clockwise, Clockwise, Anticlockwise, Clockwise})
	if err != nil {
		t.Fatal(err)
	}
	outC, err := c.ExecuteRound([]Direction{Clockwise, Clockwise, Anticlockwise, Clockwise})
	if err != nil {
		t.Fatal(err)
	}
	for i := range outA.Agents {
		if outA.Agents[i] != outC.Agents[i] {
			t.Fatalf("agent %d: %+v vs %+v", i, outA.Agents[i], outC.Agents[i])
		}
	}
	if a.Rounds() != 2 || c.Rounds() != 2 {
		t.Fatalf("rounds: %d and %d", a.Rounds(), c.Rounds())
	}
}
