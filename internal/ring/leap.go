package ring

import (
	"fmt"
	"sort"
)

// This file implements leap execution: the closed form of a constant-direction
// stretch of rounds.  When every agent keeps the same objective direction for
// k consecutive rounds, the rotation index r is the same in every round
// (Lemma 1), the slot multiset never changes and the cyclic order of the
// agents is preserved, so
//
//   - after j rounds the agent with ring index i occupies slot
//     (i + offset + j·r) mod n, and its round-j dist() is the fixed arc
//     between two slots, and
//   - the ring distance from an agent to its nearest oppositely-moving agent
//     (Proposition 4) is a constant number of ring positions for the whole
//     stretch, so its round-j coll() is again an arc between two slots.
//
// A k-round stretch therefore costs O(n + k) once instead of k·O(n): one O(n)
// pass fixes the rotation index and the collision spans, and every per-round
// observation is an O(1) lookup against the fixed slot table.

// ErrBadRoundCount is returned when a leap is requested with k < 1.
var ErrBadRoundCount = fmt.Errorf("ring: leap round count must be positive")

// LeapOutcome is the result of executing a k-round constant-direction stretch
// with ExecuteRounds.  It stores the closed form, not the k×n observation
// matrix: per-round observations are derived on demand by Observe.  The
// outcome references the state's immutable slot table and stays valid after
// further rounds execute on the state.
type LeapOutcome struct {
	// Rotation is the rotation index r = (nC − nA) mod n, identical in every
	// round of the stretch.
	Rotation int
	// K is the number of rounds the stretch executed.
	K int

	offset0    int   // rotation offset at the start of the stretch
	circ       int64 // circumference in ticks
	slots      []int64
	perceptive bool
	dirs       []Direction // objective directions by ring index (copied)
	span       []int       // ring positions to the nearest opposite mover along the agent's direction; 0 = never collides
	spanScr    []int       // scratch for the second span pass
}

// ExecuteRounds executes k consecutive rounds in which the agent with ring
// index i starts every round moving in the objective direction dirs[i].  It
// advances the state by all k rounds and returns the closed-form outcome.
func (s *State) ExecuteRounds(dirs []Direction, k int) (*LeapOutcome, error) {
	out := &LeapOutcome{}
	if err := s.ExecuteRoundsInto(dirs, k, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ExecuteRoundsInto is ExecuteRounds writing into out, reusing its internal
// buffers.  A caller that keeps the same LeapOutcome across stretches
// executes them without allocation.
func (s *State) ExecuteRoundsInto(dirs []Direction, k int, out *LeapOutcome) error {
	if k < 1 {
		return fmt.Errorf("%w: got %d", ErrBadRoundCount, k)
	}
	if err := s.validate(dirs); err != nil {
		return err
	}
	n := len(s.slots)
	r := RotationIndex(n, dirs)

	out.Rotation = r
	out.K = k
	out.offset0 = s.offset
	out.circ = s.circle.Circ()
	out.slots = s.slots
	out.perceptive = s.model.RevealsCollision()
	if cap(out.dirs) < n {
		out.dirs = make([]Direction, n)
		out.span = make([]int, n)
		out.spanScr = make([]int, n)
	}
	out.dirs = out.dirs[:n]
	copy(out.dirs, dirs)
	if out.perceptive {
		out.span = out.span[:n]
		out.spanScr = out.spanScr[:n]
		// span[i] for a clockwise mover: ring positions ahead to the nearest
		// anticlockwise mover; the cyclic agent order is fixed, so this is a
		// property of the direction assignment alone.
		spanToNearest(out.span, dirs, Anticlockwise, true)
		spanToNearest(out.spanScr, dirs, Clockwise, false)
		for i, d := range dirs {
			switch d {
			case Clockwise:
				// keep out.span[i]
			case Anticlockwise:
				out.span[i] = out.spanScr[i]
			default:
				out.span[i] = 0
			}
		}
	}

	s.offset = int((int64(s.offset) + int64(k%n)*int64(r)) % int64(n))
	s.rounds += k
	return nil
}

// spanToNearest computes, for every ring index i, the number of ring
// positions to the nearest agent (strictly away from i, walking clockwise
// when cw is true) whose direction is want; 0 when no agent has it.  O(n).
func spanToNearest(res []int, dirs []Direction, want Direction, cw bool) {
	n := len(dirs)
	anchor := -1
	for i, d := range dirs {
		if d == want {
			anchor = i
			break
		}
	}
	if anchor == -1 {
		for i := range res {
			res[i] = 0
		}
		return
	}
	if cw {
		// res[i] depends on the clockwise successor, so walk backwards.
		next := anchor
		for k := 1; k <= n; k++ {
			i := next - 1
			if i < 0 {
				i += n
			}
			if dirs[next] == want {
				res[i] = 1
			} else {
				res[i] = res[next] + 1
			}
			next = i
		}
		return
	}
	prev := anchor
	for k := 1; k <= n; k++ {
		i := prev + 1
		if i == n {
			i = 0
		}
		if dirs[prev] == want {
			res[i] = 1
		} else {
			res[i] = res[prev] + 1
		}
		prev = i
	}
}

// slotAt returns the slot occupied by the agent with ring index i after j
// rounds of the stretch.
func (o *LeapOutcome) slotAt(i, j int) int {
	n := len(o.slots)
	return int((int64(i) + int64(o.offset0) + int64(j%n)*int64(o.Rotation)) % int64(n))
}

// arcCW returns the clockwise arc (ticks) from slot a to slot b.
func (o *LeapOutcome) arcCW(a, b int) int64 {
	arc := o.slots[b] - o.slots[a]
	if arc < 0 {
		arc += o.circ
	}
	return arc
}

// Observe returns the observation of the agent with ring index i in round j
// (0-based) of the stretch, identical to what the j-th sequential
// ExecuteRound would have reported.  O(1).
func (o *LeapOutcome) Observe(i, j int) Observation {
	n := len(o.slots)
	a := o.slotAt(i, j)
	b := a + o.Rotation
	if b >= n {
		b -= n
	}
	obs := Observation{DistCW: 2 * o.arcCW(a, b)}
	if o.perceptive {
		if m := o.span[i]; m > 0 {
			obs.Collided = true
			if o.dirs[i] == Clockwise {
				t := a + m
				if t >= n {
					t -= n
				}
				// Half the aggregate gap, in half-ticks: the aggregate gap in
				// ticks (as in firstCollisions).
				obs.Coll = o.arcCW(a, t)
			} else {
				t := a - m
				if t < 0 {
					t += n
				}
				obs.Coll = o.arcCW(t, a)
			}
		}
	}
	return obs
}

// Displacement returns the cumulative clockwise displacement of the agent
// with ring index i over the first j rounds of the stretch, in half-ticks
// modulo the full circle.  The per-round arcs telescope, so this is a single
// arc between two slots.  O(1).
func (o *LeapOutcome) Displacement(i, j int) int64 {
	return 2 * o.arcCW(o.slotAt(i, 0), o.slotAt(i, j))
}

// StopRound solves the early-stop condition of a constant-direction stretch
// in closed form: the smallest j in [1, k] after which an agent currently
// occupying slot a0, with cumulative clockwise displacement disp0 (half-ticks
// modulo the full circle), reaches cumulative displacement target under
// rotation index r per round.  It returns 0 when no round in the window
// qualifies.  Because slot positions are distinct, the displacement condition
// pins a unique slot, and the round follows from j·r ≡ m (mod n).  O(log n).
func (s *State) StopRound(a0, r int, disp0, target int64, k int) int {
	n := len(s.slots)
	circ := s.circle.Circ()
	delta := (target - disp0) % (2 * circ)
	if delta < 0 {
		delta += 2 * circ
	}
	if delta%2 != 0 {
		return 0
	}
	pos := s.slots[a0] + delta/2
	if pos >= circ {
		pos -= circ
	}
	x := sort.Search(n, func(i int) bool { return s.slots[i] >= pos })
	if x == n || s.slots[x] != pos {
		return 0
	}
	m := x - a0
	if m < 0 {
		m += n
	}
	g := gcd(r, n)
	if m%g != 0 {
		return 0
	}
	period := n / g
	j := 1
	if period > 1 {
		j = int(int64(m/g) * int64(modInverse(r/g, period)) % int64(period))
		if j == 0 {
			j = period
		}
	}
	if j > k {
		return 0
	}
	return j
}

// gcd returns the greatest common divisor; gcd(0, n) = n.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// modInverse returns the inverse of a modulo m for coprime a, m >= 2.
func modInverse(a, m int) int {
	// Extended Euclid on (a mod m, m).
	t, newT := 0, 1
	r, newR := m, a%m
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if t < 0 {
		t += m
	}
	return t
}
