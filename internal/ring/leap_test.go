package ring

import (
	"math/rand"
	"testing"
)

// enumerateDirs yields every direction assignment of length n over the given
// alphabet.
func enumerateDirs(n int, alphabet []Direction, visit func([]Direction)) {
	dirs := make([]Direction, n)
	var rec func(int)
	rec = func(i int) {
		if i == n {
			visit(dirs)
			return
		}
		for _, d := range alphabet {
			dirs[i] = d
			rec(i + 1)
		}
	}
	rec(0)
}

func leapAlphabet(m Model) []Direction {
	if m.AllowsIdle() {
		return []Direction{Idle, Clockwise, Anticlockwise}
	}
	return []Direction{Clockwise, Anticlockwise}
}

// checkLeapAgainstSequential executes the same constant-direction stretch on
// two clones of st — once as k sequential ExecuteRoundInto calls, once as a
// single ExecuteRoundsInto leap — and demands identical observations for
// every agent and round, plus identical final offsets and round counts.
func checkLeapAgainstSequential(t *testing.T, st *State, dirs []Direction, k int) {
	t.Helper()
	seq := st.Clone()
	leapSt := st.Clone()

	var out Outcome
	type obsKey struct{ i, j int }
	want := make(map[obsKey]Observation)
	wantDisp := make(map[obsKey]int64)
	disp := make([]int64, seq.N())
	full := seq.FullCircle()
	for j := 0; j < k; j++ {
		if err := seq.ExecuteRoundInto(dirs, &out); err != nil {
			t.Fatalf("sequential round %d: %v", j, err)
		}
		for i, obs := range out.Agents {
			want[obsKey{i, j}] = obs
			disp[i] = (disp[i] + obs.DistCW) % full
			wantDisp[obsKey{i, j + 1}] = disp[i]
		}
	}

	leap, err := leapSt.ExecuteRounds(dirs, k)
	if err != nil {
		t.Fatalf("leap: %v", err)
	}
	if leap.K != k {
		t.Fatalf("leap.K = %d, want %d", leap.K, k)
	}
	if leap.Rotation != RotationIndex(st.N(), dirs) {
		t.Fatalf("leap rotation = %d", leap.Rotation)
	}
	if leapSt.Offset() != seq.Offset() {
		t.Fatalf("offset: leap %d, sequential %d (dirs %v, k %d)", leapSt.Offset(), seq.Offset(), dirs, k)
	}
	if leapSt.Rounds() != seq.Rounds() {
		t.Fatalf("rounds: leap %d, sequential %d", leapSt.Rounds(), seq.Rounds())
	}
	for j := 0; j < k; j++ {
		for i := 0; i < st.N(); i++ {
			if got, w := leap.Observe(i, j), want[obsKey{i, j}]; got != w {
				t.Fatalf("agent %d round %d: leap %+v, sequential %+v (dirs %v, offset0 %d)", i, j, got, w, dirs, st.Offset())
			}
			if got, w := leap.Displacement(i, j+1), wantDisp[obsKey{i, j + 1}]; got != w {
				t.Fatalf("agent %d displacement after %d: leap %d, sequential %d", i, j+1, got, w)
			}
		}
	}
}

// TestLeapMatchesSequentialExhaustive checks the closed form against the
// per-round engine for every direction assignment on small rings across all
// three models, several k and a non-zero starting offset.
func TestLeapMatchesSequentialExhaustive(t *testing.T) {
	configs := []struct {
		circ int64
		pos  []int64
	}{
		{12, []int64{0, 3, 4, 9}},
		{20, []int64{1, 2, 7, 11, 16}},
		{16, []int64{0, 5, 6, 7, 12, 13}},
	}
	for _, model := range []Model{Basic, Lazy, Perceptive} {
		for _, cfg := range configs {
			st, err := New(Config{Model: model, Circ: cfg.circ, Positions: cfg.pos, AllowSmall: true})
			if err != nil {
				t.Fatal(err)
			}
			// A couple of warm-up rounds so offset != 0 is covered too.
			warm := make([]Direction, st.N())
			for i := range warm {
				warm[i] = Clockwise
			}
			warm[0] = Anticlockwise
			if _, err := st.ExecuteRound(warm); err != nil {
				t.Fatal(err)
			}
			n := st.N()
			enumerateDirs(n, leapAlphabet(model), func(dirs []Direction) {
				for _, k := range []int{1, 2, 3, n, n + 1, 2*n + 3} {
					checkLeapAgainstSequential(t, st, dirs, k)
				}
			})
		}
	}
}

// TestLeapMatchesSequentialRandom covers larger rings with random gaps and
// random assignments.
func TestLeapMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		n := 5 + rng.Intn(40)
		pos := make([]int64, n)
		p := int64(0)
		for i := range pos {
			p += 1 + int64(rng.Intn(9))
			pos[i] = p
		}
		circ := p + 1 + int64(rng.Intn(9))
		if circ%2 != 0 {
			circ++
		}
		model := []Model{Basic, Lazy, Perceptive}[rng.Intn(3)]
		st, err := New(Config{Model: model, Circ: circ, Positions: pos})
		if err != nil {
			t.Fatal(err)
		}
		dirs := make([]Direction, n)
		for i := range dirs {
			dirs[i] = leapAlphabet(model)[rng.Intn(len(leapAlphabet(model)))]
		}
		checkLeapAgainstSequential(t, st, dirs, 1+rng.Intn(3*n))
	}
}

// TestLeapRejectsBadInput pins the validation behaviour.
func TestLeapRejectsBadInput(t *testing.T) {
	st, err := New(Config{Model: Basic, Circ: 12, Positions: []int64{0, 3, 4, 9}, AllowSmall: true})
	if err != nil {
		t.Fatal(err)
	}
	dirs := []Direction{Clockwise, Clockwise, Anticlockwise, Clockwise}
	if _, err := st.ExecuteRounds(dirs, 0); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := st.ExecuteRounds(dirs[:2], 3); err == nil {
		t.Error("short direction slice accepted")
	}
	if _, err := st.ExecuteRounds([]Direction{Idle, Clockwise, Anticlockwise, Clockwise}, 3); err == nil {
		t.Error("idle accepted in the basic model")
	}
	if st.Rounds() != 0 {
		t.Errorf("failed leaps advanced the state to round %d", st.Rounds())
	}
}

// TestStopRoundMatchesScan checks the closed-form stop solver against a
// brute-force scan of the displacement sequence.
func TestStopRoundMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 80; iter++ {
		n := 5 + rng.Intn(20)
		pos := make([]int64, n)
		p := int64(0)
		for i := range pos {
			p += 1 + int64(rng.Intn(7))
			pos[i] = p
		}
		circ := p + 1 + int64(rng.Intn(7))
		if circ%2 != 0 {
			circ++
		}
		st, err := New(Config{Model: Basic, Circ: circ, Positions: pos})
		if err != nil {
			t.Fatal(err)
		}
		dirs := make([]Direction, n)
		for i := range dirs {
			dirs[i] = []Direction{Clockwise, Anticlockwise}[rng.Intn(2)]
		}
		r := RotationIndex(n, dirs)
		k := 1 + rng.Intn(3*n)
		i := rng.Intn(n)
		disp0 := 2 * int64(rng.Intn(int(circ)))
		full := st.FullCircle()

		// Reference: simulate the stretch and scan for the first hit.
		leap, err := st.Clone().ExecuteRounds(dirs, k)
		if err != nil {
			t.Fatal(err)
		}
		// Try both a target that is hit (some round's displacement) and an
		// arbitrary target.
		targets := []int64{
			(disp0 + leap.Displacement(i, 1+rng.Intn(k))) % full,
			2 * int64(rng.Intn(int(circ))),
		}
		for _, target := range targets {
			wantJ := 0
			for j := 1; j <= k; j++ {
				if (disp0+leap.Displacement(i, j))%full == target {
					wantJ = j
					break
				}
			}
			got := st.StopRound(st.Slot(i), r, disp0, target, k)
			if got != wantJ {
				t.Fatalf("StopRound(n=%d r=%d i=%d disp0=%d target=%d k=%d) = %d, want %d",
					n, r, i, disp0, target, k, got, wantJ)
			}
		}
	}
}
