// Package comb implements the combinatorial machinery of the paper:
// (N,n)-distinguishers (Definition 20), strong distinguishers (Definition 21),
// (N,k)-selective families (Definition 35, from Clementi et al.),
// intersection-free families (Definition 24) and the associated size bounds
// (Lemma 23, Corollary 29).
//
// The existence results of the paper (Theorem 27, Lemma 15) are
// non-constructive: they use the probabilistic method.  This package
// substitutes seeded pseudo-random constructions — deterministic for a fixed
// seed, with the same expected size — plus exhaustive verifiers for small
// parameters, as documented in DESIGN.md.
package comb

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// SetFamily is an ordered family S_1, ..., S_k of subsets of the universe
// [1..N].  Families may be represented implicitly (pseudo-random membership),
// so the only access path is the membership test.
type SetFamily interface {
	// Len returns the number of sets in the family.
	Len() int
	// Universe returns the bound N of the universe [1..N].
	Universe() int
	// Contains reports whether id belongs to the i-th set (0-based).
	Contains(i int, id int) bool
}

// Errors returned by the package.
var (
	ErrBadUniverse = errors.New("comb: universe bound must be positive")
	ErrBadSize     = errors.New("comb: invalid size parameter")
)

// ExplicitFamily is a SetFamily stored as explicit member sets.
type ExplicitFamily struct {
	universe int
	sets     []map[int]struct{}
}

var _ SetFamily = (*ExplicitFamily)(nil)

// NewExplicitFamily builds a family from explicit member lists.
func NewExplicitFamily(universe int, sets [][]int) (*ExplicitFamily, error) {
	if universe <= 0 {
		return nil, ErrBadUniverse
	}
	f := &ExplicitFamily{universe: universe, sets: make([]map[int]struct{}, 0, len(sets))}
	for _, s := range sets {
		m := make(map[int]struct{}, len(s))
		for _, id := range s {
			if id < 1 || id > universe {
				return nil, fmt.Errorf("comb: element %d outside universe [1,%d]", id, universe)
			}
			m[id] = struct{}{}
		}
		f.sets = append(f.sets, m)
	}
	return f, nil
}

// Append adds one more set to the family.
func (f *ExplicitFamily) Append(set []int) {
	m := make(map[int]struct{}, len(set))
	for _, id := range set {
		m[id] = struct{}{}
	}
	f.sets = append(f.sets, m)
}

// Len implements SetFamily.
func (f *ExplicitFamily) Len() int { return len(f.sets) }

// Universe implements SetFamily.
func (f *ExplicitFamily) Universe() int { return f.universe }

// Contains implements SetFamily.
func (f *ExplicitFamily) Contains(i, id int) bool {
	_, ok := f.sets[i][id]
	return ok
}

// Set returns the sorted members of the i-th set.
func (f *ExplicitFamily) Set(i int) []int {
	out := make([]int, 0, len(f.sets[i]))
	for id := range f.sets[i] {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// splitmix64 is the mixing function used for implicit pseudo-random families.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash01 maps (seed, set index, id) to a uniform value in [0,1).
func hash01(seed int64, i, id int) float64 {
	h := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(i)<<32 ^ uint64(id))
	return float64(h>>11) / float64(1<<53)
}

// Log2 returns the base-2 logarithm of max(x, 2) — a convenience used by the
// asymptotic bound formulas so they stay finite for tiny arguments.
func Log2(x float64) float64 {
	if x < 2 {
		x = 2
	}
	return math.Log2(x)
}

// Bits returns the number of bits needed to write numbers in [1..n].
func Bits(n int) int {
	b := 0
	for v := n; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}
