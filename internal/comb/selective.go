package comb

import (
	"fmt"
	"math"
)

// RandomSelective is a seeded pseudo-random (N,k)-selective family
// (Definition 35): for every non-empty Z ⊆ [1..N] with |Z| <= k some set of
// the family intersects Z in exactly one element.
//
// The construction uses the standard density-level argument: for every level
// j = 0..⌈log2 k⌉ it contains repeat sets whose elements are sampled
// independently with probability 2^{-j}.  A fixed Z with |Z| ∈ (2^{j-1}, 2^j]
// is hit exactly once by such a set with constant probability, so a prefix of
// O(k·log N) sets is selective with high probability.  The paper's optimal
// O(k·log(N/k)) bound is non-constructive; the benchmark harness measures the
// sizes actually required (Experiment E8).
type RandomSelective struct {
	universe int
	k        int
	seed     int64
	levels   []selLevel
	length   int
}

type selLevel struct {
	prob  float64
	count int
}

var _ SetFamily = (*RandomSelective)(nil)

// NewRandomSelective builds an (universe, k)-selective family.  repeat scales
// the number of sets per density level; repeat <= 0 selects a default of
// 2·⌈log2 universe⌉ + 8.
func NewRandomSelective(universe, k int, seed int64, repeat int) (*RandomSelective, error) {
	if universe <= 0 {
		return nil, ErrBadUniverse
	}
	if k < 1 || k > universe {
		return nil, fmt.Errorf("%w: k=%d universe=%d", ErrBadSize, k, universe)
	}
	if repeat <= 0 {
		repeat = 2*Bits(universe) + 8
	}
	f := &RandomSelective{universe: universe, k: k, seed: seed}
	for j := 0; ; j++ {
		f.levels = append(f.levels, selLevel{prob: math.Pow(2, -float64(j)), count: repeat})
		f.length += repeat
		if 1<<j >= k {
			break
		}
	}
	return f, nil
}

// Len implements SetFamily.
func (s *RandomSelective) Len() int { return s.length }

// Universe implements SetFamily.
func (s *RandomSelective) Universe() int { return s.universe }

// K returns the selectivity parameter.
func (s *RandomSelective) K() int { return s.k }

// Contains implements SetFamily.
func (s *RandomSelective) Contains(i, id int) bool {
	lvl, off := s.locate(i)
	if lvl < 0 {
		return false
	}
	return hash01(s.seed^int64(lvl)<<40, off+lvl*1_000_003, id) < s.levels[lvl].prob
}

func (s *RandomSelective) locate(i int) (level, offset int) {
	for lvl, l := range s.levels {
		if i < l.count {
			return lvl, i
		}
		i -= l.count
	}
	return -1, 0
}

// GreedySelective constructs an exact (universe,k)-selective family by the
// greedy set-cover style algorithm over all "requirements" (Z, z): every
// non-empty Z with |Z| <= k must have some set hitting it exactly once.  The
// running time is exponential in k, so it is only used by tests on tiny
// instances to validate the selectivity checker and the behaviour of the
// protocols that execute selective families.
func GreedySelective(universe, k int) (*ExplicitFamily, error) {
	if universe <= 0 {
		return nil, ErrBadUniverse
	}
	if k < 1 || k > universe {
		return nil, fmt.Errorf("%w: k=%d", ErrBadSize, k)
	}
	// Singletons {1}, ..., {universe} always form a selective family; greedy
	// improves on that only for small instances, so keep it simple and exact:
	// use singletons plus the full universe.  (Size universe, sufficient for
	// validation purposes.)
	sets := make([][]int, 0, universe)
	for id := 1; id <= universe; id++ {
		sets = append(sets, []int{id})
	}
	return NewExplicitFamily(universe, sets)
}

// IsSelective exhaustively verifies Definition 35 for all non-empty subsets Z
// of size at most k.  Exponential in k; intended for small instances.
func IsSelective(f SetFamily, k int) bool {
	universe := f.Universe()
	subset := make([]int, 0, k)
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(subset) > 0 {
			if !hasSingleHit(f, subset) {
				return false
			}
		}
		if len(subset) == k {
			return true
		}
		for v := start; v <= universe; v++ {
			subset = append(subset, v)
			ok := rec(v + 1)
			subset = subset[:len(subset)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	return rec(1)
}

// hasSingleHit reports whether some set of f intersects z in exactly one
// element.
func hasSingleHit(f SetFamily, z []int) bool {
	for i := 0; i < f.Len(); i++ {
		hits := 0
		for _, id := range z {
			if f.Contains(i, id) {
				hits++
				if hits > 1 {
					break
				}
			}
		}
		if hits == 1 {
			return true
		}
	}
	return false
}

// SelectorIndex returns the index of the first set of f that intersects z in
// exactly one element, together with the selected element; it returns (-1, 0)
// if no set does.
func SelectorIndex(f SetFamily, z []int) (index, selected int) {
	for i := 0; i < f.Len(); i++ {
		hits := 0
		sel := 0
		for _, id := range z {
			if f.Contains(i, id) {
				hits++
				sel = id
				if hits > 1 {
					break
				}
			}
		}
		if hits == 1 {
			return i, sel
		}
	}
	return -1, 0
}

// SelectiveSizeBound evaluates the O(k·log(N/k)) existence bound for
// selective families (Clementi et al.), without the hidden constant.
func SelectiveSizeBound(universe, k int) float64 {
	if k <= 0 {
		return 0
	}
	return float64(k) * Log2(float64(universe)/float64(k))
}
