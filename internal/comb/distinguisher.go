package comb

import (
	"fmt"
	"math"
)

// RandomDistinguisher is the seeded substitute for the non-constructive
// distinguisher of Theorem 27: every element of [1..N] belongs to every set
// independently with probability 1/2 (membership is computed from a hash, so
// arbitrarily long prefixes are available without storing the sets).
//
// By Theorem 27 a prefix of length O(n·log(N/n)/log n) is an
// (N,n)-distinguisher with positive probability; package-level verifiers and
// the benchmark harness measure the prefix length actually needed.
type RandomDistinguisher struct {
	universe int
	length   int
	seed     int64
}

var _ SetFamily = (*RandomDistinguisher)(nil)

// NewRandomDistinguisher creates a pseudo-random family with the given prefix
// length over the universe [1..universe].
func NewRandomDistinguisher(universe, length int, seed int64) (*RandomDistinguisher, error) {
	if universe <= 0 {
		return nil, ErrBadUniverse
	}
	if length < 0 {
		return nil, fmt.Errorf("%w: length %d", ErrBadSize, length)
	}
	return &RandomDistinguisher{universe: universe, length: length, seed: seed}, nil
}

// Len implements SetFamily.
func (r *RandomDistinguisher) Len() int { return r.length }

// Universe implements SetFamily.
func (r *RandomDistinguisher) Universe() int { return r.universe }

// Contains implements SetFamily.
func (r *RandomDistinguisher) Contains(i, id int) bool {
	return hash01(r.seed, i, id) < 0.5
}

// WithLength returns a view of the same pseudo-random stream with a different
// prefix length.
func (r *RandomDistinguisher) WithLength(length int) *RandomDistinguisher {
	cp := *r
	cp.length = length
	return &cp
}

// Distinguishes reports whether some set with index < limit of the family
// separates X1 and X2, i.e. |S_i ∩ X1| != |S_i ∩ X2| (Definition 20).  A
// negative limit means the whole family.
func Distinguishes(f SetFamily, x1, x2 []int, limit int) bool {
	return FirstSeparator(f, x1, x2, limit) >= 0
}

// FirstSeparator returns the index of the first set (below limit) that
// separates X1 and X2, or -1 if none does.  A negative limit means the whole
// family.
func FirstSeparator(f SetFamily, x1, x2 []int, limit int) int {
	if limit < 0 || limit > f.Len() {
		limit = f.Len()
	}
	for i := 0; i < limit; i++ {
		c1, c2 := 0, 0
		for _, id := range x1 {
			if f.Contains(i, id) {
				c1++
			}
		}
		for _, id := range x2 {
			if f.Contains(i, id) {
				c2++
			}
		}
		if c1 != c2 {
			return i
		}
	}
	return -1
}

// IsDistinguisher exhaustively verifies Definition 20: every pair of disjoint
// n-subsets of [1..N] is separated by some set of the family.  The check
// enumerates all pairs, so it is only feasible for small N and n; it is used
// by tests to validate the semantics of the faster constructions.
func IsDistinguisher(f SetFamily, n int) bool {
	universe := f.Universe()
	if n <= 0 || 2*n > universe {
		return true // no disjoint pair exists; vacuously a distinguisher
	}
	x1 := make([]int, 0, n)
	x2 := make([]int, 0, n)
	var enumerate func(start int, chosen []int, k int, then func([]int) bool) bool
	enumerate = func(start int, chosen []int, k int, then func([]int) bool) bool {
		if len(chosen) == k {
			return then(chosen)
		}
		for v := start; v <= universe; v++ {
			if !enumerate(v+1, append(chosen, v), k, then) {
				return false
			}
		}
		return true
	}
	ok := enumerate(1, x1, n, func(a []int) bool {
		x1 := append([]int(nil), a...)
		in1 := make(map[int]bool, n)
		for _, v := range x1 {
			in1[v] = true
		}
		return enumerate(1, x2, n, func(b []int) bool {
			for _, v := range b {
				if in1[v] {
					return true // not disjoint; skip
				}
			}
			// Only check each unordered pair once.
			if b[0] < x1[0] {
				return true
			}
			return Distinguishes(f, x1, b, -1)
		})
	})
	return ok
}

// MinimalDistinguisherPrefix returns the smallest prefix length of f that
// separates every disjoint pair of n-subsets, or -1 if even the full family
// fails.  Exponential in N; intended for small instances and for the
// experiments of Corollary 29.
func MinimalDistinguisherPrefix(f SetFamily, n int) int {
	lo, hi := 0, f.Len()
	if !IsDistinguisher(prefixFamily{f, hi}, n) {
		return -1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if IsDistinguisher(prefixFamily{f, mid}, n) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// prefixFamily restricts a family to its first k sets.
type prefixFamily struct {
	SetFamily
	k int
}

func (p prefixFamily) Len() int { return p.k }

// DistinguisherLowerBound evaluates the Ω(n·log(N/n)/log n) lower bound of
// Lemma 23 / Corollary 29 (as a plain formula, without the hidden constant).
func DistinguisherLowerBound(universe, n int) float64 {
	if n <= 1 || universe <= n {
		return 1
	}
	return float64(n) * Log2(float64(universe)/float64(n)) / Log2(float64(n))
}

// CountingLowerBound evaluates the simpler counting bound of Lemma 43,
// log_{n+1} C(N,n), valid for strong distinguishers.
func CountingLowerBound(universe, n int) float64 {
	if n <= 0 || universe < n {
		return 0
	}
	// log2 C(N,n) = sum log2((N-i)/(n-i))
	var logBinom float64
	for i := 0; i < n; i++ {
		logBinom += math.Log2(float64(universe-i) / float64(n-i))
	}
	return logBinom / Log2(float64(n+1))
}

// IsIntersectionFree verifies Definition 24: no two distinct sets of the
// family (interpreted as k-subsets) intersect in exactly l elements.
func IsIntersectionFree(sets [][]int, l int) bool {
	for i := range sets {
		mi := make(map[int]bool, len(sets[i]))
		for _, v := range sets[i] {
			mi[v] = true
		}
		for j := i + 1; j < len(sets); j++ {
			common := 0
			for _, v := range sets[j] {
				if mi[v] {
					common++
				}
			}
			if common == l {
				return false
			}
		}
	}
	return true
}
