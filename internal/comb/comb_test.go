package comb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExplicitFamilyBasics(t *testing.T) {
	f, err := NewExplicitFamily(10, [][]int{{1, 3, 5}, {2}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3 || f.Universe() != 10 {
		t.Fatal("Len/Universe wrong")
	}
	if !f.Contains(0, 3) || f.Contains(0, 2) || f.Contains(2, 1) {
		t.Error("Contains wrong")
	}
	got := f.Set(0)
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Set(0) = %v", got)
		}
	}
	f.Append([]int{7, 9})
	if f.Len() != 4 || !f.Contains(3, 9) {
		t.Error("Append wrong")
	}
	if _, err := NewExplicitFamily(0, nil); err == nil {
		t.Error("zero universe accepted")
	}
	if _, err := NewExplicitFamily(4, [][]int{{5}}); err == nil {
		t.Error("out-of-universe element accepted")
	}
}

func TestRandomDistinguisherDeterminismAndBalance(t *testing.T) {
	d, err := NewRandomDistinguisher(1000, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := NewRandomDistinguisher(1000, 64, 42)
	inCount := 0
	for i := 0; i < d.Len(); i++ {
		for id := 1; id <= 1000; id += 37 {
			if d.Contains(i, id) != d2.Contains(i, id) {
				t.Fatal("same seed must give identical membership")
			}
			if d.Contains(i, id) {
				inCount++
			}
		}
	}
	total := d.Len() * len(rangeInts(1, 1000, 37))
	frac := float64(inCount) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("membership fraction %v far from 1/2", frac)
	}
	if _, err := NewRandomDistinguisher(0, 4, 1); err == nil {
		t.Error("bad universe accepted")
	}
	if _, err := NewRandomDistinguisher(10, -1, 1); err == nil {
		t.Error("negative length accepted")
	}
	if d.WithLength(5).Len() != 5 {
		t.Error("WithLength wrong")
	}
}

func rangeInts(lo, hi, step int) []int {
	var out []int
	for v := lo; v <= hi; v += step {
		out = append(out, v)
	}
	return out
}

func TestDistinguishesAndFirstSeparator(t *testing.T) {
	f, _ := NewExplicitFamily(8, [][]int{
		{1, 2, 3, 4}, // does not separate {1,2} and {3,4}
		{1, 3},       // does not separate {1,2} and {3,4} (1 each)
		{1, 2},       // separates them
	})
	if got := FirstSeparator(f, []int{1, 2}, []int{3, 4}, -1); got != 2 {
		t.Fatalf("FirstSeparator = %d, want 2", got)
	}
	if Distinguishes(f, []int{1, 2}, []int{3, 4}, 2) {
		t.Error("prefix of length 2 should not distinguish")
	}
	if !Distinguishes(f, []int{1, 2}, []int{3, 4}, -1) {
		t.Error("full family should distinguish")
	}
}

// TestIsDistinguisherSmall checks the exhaustive verifier against a known
// distinguisher and a known non-distinguisher.
func TestIsDistinguisherSmall(t *testing.T) {
	// Singletons {1},...,{6} distinguish any two disjoint equal-size sets.
	var singletons [][]int
	for i := 1; i <= 6; i++ {
		singletons = append(singletons, []int{i})
	}
	f, _ := NewExplicitFamily(6, singletons)
	if !IsDistinguisher(f, 2) {
		t.Error("singleton family should be a distinguisher")
	}
	// The empty family cannot distinguish anything when pairs exist.
	empty, _ := NewExplicitFamily(6, nil)
	if IsDistinguisher(empty, 2) {
		t.Error("empty family accepted as distinguisher")
	}
	// Vacuous case: no disjoint pairs of size 4 exist in [1..6].
	if !IsDistinguisher(empty, 4) {
		t.Error("vacuous case should hold")
	}
}

func TestRandomDistinguisherIsDistinguisherForSmallN(t *testing.T) {
	d, _ := NewRandomDistinguisher(8, 64, 7)
	if !IsDistinguisher(d, 2) {
		t.Error("random family of length 64 should distinguish pairs of 2-sets of [1..8]")
	}
	min := MinimalDistinguisherPrefix(d, 2)
	if min < 1 || min > 64 {
		t.Fatalf("minimal prefix = %d", min)
	}
	if IsDistinguisher(d.WithLength(min-1), 2) {
		t.Error("prefix below the minimum should fail")
	}
	if !IsDistinguisher(d.WithLength(min), 2) {
		t.Error("prefix at the minimum should succeed")
	}
}

func TestMinimalDistinguisherPrefixFailure(t *testing.T) {
	empty, _ := NewExplicitFamily(6, nil)
	if got := MinimalDistinguisherPrefix(empty, 2); got != -1 {
		t.Fatalf("got %d, want -1", got)
	}
}

func TestLowerBoundFormulas(t *testing.T) {
	if DistinguisherLowerBound(1024, 1) != 1 {
		t.Error("degenerate case should be 1")
	}
	v := DistinguisherLowerBound(1<<20, 1<<10)
	// n log(N/n)/log n = 1024*10/10 = 1024.
	if v < 1000 || v > 1100 {
		t.Errorf("DistinguisherLowerBound = %v", v)
	}
	if CountingLowerBound(16, 0) != 0 {
		t.Error("degenerate counting bound")
	}
	if CountingLowerBound(1024, 4) <= 0 {
		t.Error("counting bound should be positive")
	}
	// The refined bound dominates the counting bound up to constants for
	// small n; just check both are finite and positive here.
	if SelectiveSizeBound(1024, 16) <= 0 || SelectiveSizeBound(10, 0) != 0 {
		t.Error("SelectiveSizeBound degenerate cases")
	}
}

func TestIsIntersectionFree(t *testing.T) {
	sets := [][]int{{1, 2, 3, 4}, {1, 2, 5, 6}, {5, 6, 7, 8}}
	if !IsIntersectionFree(sets, 3) {
		t.Error("no pair intersects in exactly 3 elements")
	}
	if IsIntersectionFree(sets, 2) {
		t.Error("first two sets intersect in exactly 2 elements")
	}
}

func TestRandomSelectiveFamily(t *testing.T) {
	s, err := NewRandomSelective(64, 8, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Universe() != 64 || s.K() != 8 || s.Len() <= 0 {
		t.Fatal("basic accessors wrong")
	}
	// Deterministic for a fixed seed.
	s2, _ := NewRandomSelective(64, 8, 3, 0)
	for i := 0; i < s.Len(); i += 7 {
		for id := 1; id <= 64; id += 5 {
			if s.Contains(i, id) != s2.Contains(i, id) {
				t.Fatal("same seed must give identical membership")
			}
		}
	}
	if _, err := NewRandomSelective(0, 1, 1, 0); err == nil {
		t.Error("bad universe accepted")
	}
	if _, err := NewRandomSelective(16, 0, 1, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewRandomSelective(16, 17, 1, 0); err == nil {
		t.Error("k>universe accepted")
	}
	if s.Contains(s.Len()+5, 1) {
		t.Error("out-of-range set index should contain nothing")
	}
}

// TestRandomSelectiveSelectsRandomSubsets draws random target sets Z and
// checks that some set of the family hits each exactly once.
func TestRandomSelectiveSelectsRandomSubsets(t *testing.T) {
	const universe = 256
	s, err := NewRandomSelective(universe, 16, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		size := 1 + rng.Intn(16)
		seen := map[int]bool{}
		z := make([]int, 0, size)
		for len(z) < size {
			v := 1 + rng.Intn(universe)
			if !seen[v] {
				seen[v] = true
				z = append(z, v)
			}
		}
		if idx, sel := SelectorIndex(s, z); idx < 0 {
			t.Fatalf("trial %d: no selector for %v", trial, z)
		} else if !seen[sel] {
			t.Fatalf("trial %d: selected element %d not in Z", trial, sel)
		}
	}
}

func TestGreedySelectiveAndIsSelective(t *testing.T) {
	g, err := GreedySelective(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSelective(g, 3) {
		t.Error("singleton-based family must be selective")
	}
	// A family with a single set equal to the whole universe is not
	// selective for k >= 2.
	whole, _ := NewExplicitFamily(6, [][]int{{1, 2, 3, 4, 5, 6}})
	if IsSelective(whole, 2) {
		t.Error("whole-universe family accepted as 2-selective")
	}
	if _, err := GreedySelective(0, 1); err == nil {
		t.Error("bad universe accepted")
	}
	if _, err := GreedySelective(5, 9); err == nil {
		t.Error("k>universe accepted")
	}
}

func TestHasSingleHitProperty(t *testing.T) {
	// For singleton families, every non-empty Z has a single hit.
	var singletons [][]int
	for i := 1; i <= 12; i++ {
		singletons = append(singletons, []int{i})
	}
	f, _ := NewExplicitFamily(12, singletons)
	err := quick.Check(func(raw []uint8) bool {
		seen := map[int]bool{}
		var z []int
		for _, r := range raw {
			v := 1 + int(r)%12
			if !seen[v] {
				seen[v] = true
				z = append(z, v)
			}
		}
		if len(z) == 0 {
			return true
		}
		return hasSingleHit(f, z)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBitsHelper(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9}
	for in, want := range cases {
		if got := Bits(in); got != want {
			t.Errorf("Bits(%d) = %d, want %d", in, got, want)
		}
	}
}
