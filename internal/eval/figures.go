package eval

import (
	"fmt"
	"strings"

	"ringsym/internal/comb"
	"ringsym/internal/core"
	"ringsym/internal/engine"
	"ringsym/internal/perceptive"
	"ringsym/internal/rcomm"
	"ringsym/internal/ring"
)

// Reduction identifies one arrow of Figures 1 and 2: the cost of solving the
// target problem given that the source problem is already solved.
type Reduction struct {
	From, To Problem
	// Rounds is the measured cost of the reduction alone.
	Rounds int
	// Bound and BoundStr give the paper's bound for the arrow.
	Bound    float64
	BoundStr string
}

// MeasureReductions measures every arrow of the reduction graph (Figure 1 for
// odd n / lazy / perceptive, Figure 2 for the basic model with even n) on a
// single configuration of the given size.
func MeasureReductions(s Setting, n, idBound int, seed int64) ([]Reduction, error) {
	n = adjustParity(n, s.OddN)
	logN := comb.Log2(float64(idBound))

	type probe struct {
		from, to Problem
		bound    float64
		boundStr string
		measure  func(f *core.Frame, nmDir ring.Direction, isLeader bool) (int, error)
	}
	probes := []probe{
		{NontrivialMove, DirectionAgreement, 1, "O(1)", func(f *core.Frame, nmDir ring.Direction, _ bool) (int, error) {
			start := f.RoundsUsed()
			_, err := core.DirectionAgreement(f, nmDir)
			return f.RoundsUsed() - start, err
		}},
		{NontrivialMove, LeaderElection, logN, "O(log N)", func(f *core.Frame, nmDir ring.Direction, _ bool) (int, error) {
			start := f.RoundsUsed()
			nmDir, err := core.DirectionAgreement(f, nmDir)
			if err != nil {
				return 0, err
			}
			if _, err := core.LeaderElectWithNM(f, nmDir); err != nil {
				return 0, err
			}
			return f.RoundsUsed() - start, nil
		}},
		{LeaderElection, NontrivialMove, 1, "O(1)", func(f *core.Frame, _ ring.Direction, isLeader bool) (int, error) {
			start := f.RoundsUsed()
			_, err := core.NontrivialMoveFromLeader(f, isLeader)
			return f.RoundsUsed() - start, err
		}},
		{LeaderElection, DirectionAgreement, 1, "O(1)", func(f *core.Frame, _ ring.Direction, isLeader bool) (int, error) {
			start := f.RoundsUsed()
			dir, err := core.NontrivialMoveFromLeader(f, isLeader)
			if err != nil {
				return 0, err
			}
			if _, err := core.DirectionAgreement(f, dir); err != nil {
				return 0, err
			}
			return f.RoundsUsed() - start, nil
		}},
		{DirectionAgreement, LeaderElection, daToLeaderBound(s, n, idBound), daToLeaderBoundStr(s), func(f *core.Frame, _ ring.Direction, _ bool) (int, error) {
			start := f.RoundsUsed()
			_, err := core.LeaderElectCommonSense(f)
			return f.RoundsUsed() - start, err
		}},
		{DirectionAgreement, NontrivialMove, daToLeaderBound(s, n, idBound) + 1, daToLeaderBoundStr(s) + " + O(1)", func(f *core.Frame, _ ring.Direction, _ bool) (int, error) {
			start := f.RoundsUsed()
			isLeader, err := core.LeaderElectCommonSense(f)
			if err != nil {
				return 0, err
			}
			if _, err := core.NontrivialMoveFromLeader(f, isLeader); err != nil {
				return 0, err
			}
			return f.RoundsUsed() - start, nil
		}},
	}

	out := make([]Reduction, 0, len(probes))
	for _, p := range probes {
		// Preconditions (a solved nontrivial move / an elected leader /
		// a common sense of direction) are established on a fresh network
		// before the reduction is measured.
		nw, err := network(Setting{Model: s.Model, OddN: s.OddN, CommonSense: true}, n, idBound, seed)
		if err != nil {
			return nil, err
		}
		maxID := 0
		for i := 0; i < nw.N(); i++ {
			if nw.IDOf(i) > maxID {
				maxID = nw.IDOf(i)
			}
		}
		res, err := engine.Run(nw, func(a *engine.Agent) (int, error) {
			f := core.NewFrame(a)
			isLeader := a.ID() == maxID
			var nmDir ring.Direction
			if p.from == NontrivialMove {
				var err error
				nmDir, err = core.NontrivialMoveFromLeader(f, isLeader)
				if err != nil {
					return 0, err
				}
			}
			return p.measure(f, nmDir, isLeader)
		})
		if err != nil {
			return nil, fmt.Errorf("eval: reduction %s->%s: %w", p.from, p.to, err)
		}
		out = append(out, Reduction{From: p.from, To: p.to, Rounds: res.Outputs[0], Bound: p.bound, BoundStr: p.boundStr})
	}
	return out, nil
}

func daToLeaderBound(s Setting, n, idBound int) float64 {
	logN := comb.Log2(float64(idBound))
	if s.Model == ring.Basic && !s.OddN {
		return logN * logN
	}
	return logN
}

func daToLeaderBoundStr(s Setting) string {
	if s.Model == ring.Basic && !s.OddN {
		return "O(log^2 N)"
	}
	return "O(log N)"
}

// FormatReductions renders the reduction measurements.
func FormatReductions(title string, rs []Reduction) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&b, "  %-22s -> %-22s %8s %10s  %s\n", "given", "solve", "rounds", "bound", "paper bound")
	for _, r := range rs {
		fmt.Fprintf(&b, "  %-22s -> %-22s %8d %10.1f  %s\n", string(r.From), string(r.To), r.Rounds, r.Bound, r.BoundStr)
	}
	return b.String()
}

// RingDistSample is one point of the Figure 3 experiment: the cost of the
// ring-distance discovery stage (the machinery Figure 3 illustrates) as a
// function of n.
type RingDistSample struct {
	N       int
	IDBound int
	Rounds  int
	Bound   float64
}

// MeasureRingDist measures the number of rounds RingDist needs (after
// coordination) in the perceptive model for each size.
func MeasureRingDist(sizes []int, idBoundFactor int, seed int64) ([]RingDistSample, error) {
	if idBoundFactor <= 0 {
		idBoundFactor = 4
	}
	var out []RingDistSample
	for _, rawN := range sizes {
		n := adjustParity(rawN, false)
		idBound := idBoundFactor * n
		nw, err := network(Setting{Model: ring.Perceptive}, n, idBound, seed)
		if err != nil {
			return nil, err
		}
		res, err := engine.Run(nw, func(a *engine.Agent) (int, error) {
			c, err := perceptive.Coordinate(a, perceptive.Options{Seed: seed})
			if err != nil {
				return 0, err
			}
			start := c.Frame.RoundsUsed()
			link, err := rcomm.Establish(c.Frame)
			if err != nil {
				return 0, err
			}
			if _, _, err := perceptive.RingDist(link, c.IsLeader); err != nil {
				return 0, err
			}
			return c.Frame.RoundsUsed() - start, nil
		})
		if err != nil {
			return nil, fmt.Errorf("eval: ringdist n=%d: %w", n, err)
		}
		bound, _ := Bound(Setting{Model: ring.Perceptive}, NontrivialMove, n, idBound)
		out = append(out, RingDistSample{N: n, IDBound: idBound, Rounds: res.Outputs[0], Bound: bound})
	}
	return out, nil
}

// FormatRingDist renders the Figure 3 samples.
func FormatRingDist(samples []RingDistSample) string {
	var b strings.Builder
	title := "Figure 3 - RingDist (ring-distance discovery) cost in the perceptive model"
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&b, "  %8s %10s %12s %16s\n", "n", "N", "rounds", "O(sqrt(n)logN)")
	for _, s := range samples {
		fmt.Fprintf(&b, "  %8d %10d %12d %16.1f\n", s.N, s.IDBound, s.Rounds, s.Bound)
	}
	return b.String()
}

// DistinguisherSample is one point of the Section IV experiment: the minimal
// prefix of the pseudo-random schedule that forms an (N,n)-distinguisher,
// against the Ω(n·log(N/n)/log n) lower bound (Corollary 29).  Computing the
// minimum requires exhausting all disjoint pairs, so only small universes are
// feasible.
type DistinguisherSample struct {
	Universe   int
	SubsetSize int
	MinPrefix  int
	LowerBound float64
}

// MeasureDistinguishers computes the minimal distinguisher prefixes for a set
// of (N, n) pairs.
func MeasureDistinguishers(pairs [][2]int, seed int64) ([]DistinguisherSample, error) {
	var out []DistinguisherSample
	for _, p := range pairs {
		universe, subset := p[0], p[1]
		d, err := comb.NewRandomDistinguisher(universe, 64*subset+64, seed)
		if err != nil {
			return nil, err
		}
		min := comb.MinimalDistinguisherPrefix(d, subset)
		out = append(out, DistinguisherSample{
			Universe:   universe,
			SubsetSize: subset,
			MinPrefix:  min,
			LowerBound: comb.DistinguisherLowerBound(universe, subset),
		})
	}
	return out, nil
}

// FormatDistinguishers renders the distinguisher-size samples.
func FormatDistinguishers(samples []DistinguisherSample) string {
	var b strings.Builder
	title := "Section IV - minimal (N,n)-distinguisher prefixes vs the Corollary 29 lower bound"
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&b, "  %8s %8s %12s %22s\n", "N", "n", "min prefix", "n log(N/n)/log n")
	for _, s := range samples {
		fmt.Fprintf(&b, "  %8d %8d %12d %22.1f\n", s.Universe, s.SubsetSize, s.MinPrefix, s.LowerBound)
	}
	return b.String()
}
