package eval

import (
	"math"
	"time"

	"ringsym/internal/engine"
	"ringsym/internal/netgen"
	"ringsym/internal/ring"
)

// EngineSweepProtocol is the agent protocol of the constant-direction sweep
// workload shared by the engine throughput benchmarks (BenchmarkEngineLeap /
// BenchmarkEngineLeapSingle in the repository root) and the benchtables
// -engine mode: each agent keeps a direction fixed by the parity of its
// identifier (both directions present) for the given number of rounds.
// batch = 1 submits one round per barrier crossing — the per-round path —
// and larger batches use leap execution via RoundN.  Keeping the single copy
// here is what entitles EXPERIMENTS.md to claim the benchmark pair and the
// BENCH_engine.json table measure the same workload.
func EngineSweepProtocol(rounds, batch int) func(a *engine.Agent) (int, error) {
	return func(a *engine.Agent) (int, error) {
		dir := ring.Clockwise
		if a.ID()%2 == 0 {
			dir = ring.Anticlockwise
		}
		if batch == 1 {
			for i := 0; i < rounds; i++ {
				if _, err := a.Round(dir); err != nil {
					return 0, err
				}
			}
			return 0, nil
		}
		var trace []engine.Observation
		for done := 0; done < rounds; done += batch {
			k := batch
			if rounds-done < k {
				k = rounds - done
			}
			var err error
			trace, err = a.RoundNInto(dir, k, trace[:0])
			if err != nil {
				return 0, err
			}
		}
		return len(trace), nil
	}
}

// EngineSweepNetwork builds the uncapped perceptive network the engine
// throughput workload runs on.
func EngineSweepNetwork(n int, seed int64) (*engine.Network, error) {
	cfg := netgen.MustGenerate(netgen.Options{N: n, Seed: seed, Model: ring.Perceptive})
	cfg.MaxRounds = math.MaxInt
	return engine.New(cfg)
}

// MeasureEngineSweep runs the constant-direction sweep workload and returns
// the wall-clock rounds/sec.
func MeasureEngineSweep(n int, seed int64, rounds, batch int) (float64, error) {
	nw, err := EngineSweepNetwork(n, seed)
	if err != nil {
		return 0, err
	}
	//ringvet:allow determinism this is the benchmark path: rounds/sec is a wall-clock measurement by definition
	start := time.Now()
	if _, err := engine.Run(nw, EngineSweepProtocol(rounds, batch)); err != nil {
		return 0, err
	}
	//ringvet:allow determinism this is the benchmark path: rounds/sec is a wall-clock measurement by definition
	return float64(rounds) / time.Since(start).Seconds(), nil
}
