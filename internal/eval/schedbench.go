package eval

import (
	"context"
	"sort"
	"time"

	"ringsym/internal/campaign"
	"ringsym/internal/engine"
	"ringsym/internal/ring"
)

// This file is the v3-scheduler A/B harness behind benchtables -sched: the
// same two workloads (the constant-direction engine sweep and the small-n
// campaign grid) measured under all three runtimes.  The arms are interleaved
// — every repetition runs fsm, then barrier, then legacy, so thermal or
// background drift lands on all arms equally — and the reported value is the
// per-arm median.  BENCH_sched.json tracks the result across revisions; the
// campaign fsm/barrier ratio is the scheduler's headline speedup.

// SchedEntry is one runtime measurement in the -sched export.
type SchedEntry struct {
	// Workload is "sweep" (engine rounds/sec, per-round path) or "campaign"
	// (whole-scenario throughput on the small-n grid, cache off).
	Workload string `json:"workload"`
	// Runtime is "fsm" (v3), "barrier" (v2) or "legacy" (v1).
	Runtime string `json:"runtime"`
	// N is the network size (sweep entries only).
	N int `json:"n,omitempty"`
	// Scenarios is the grid size (campaign entries only).
	Scenarios int `json:"scenarios,omitempty"`
	// Rounds is the per-agent round budget (sweep entries only).
	Rounds int `json:"rounds,omitempty"`
	// Reps is the number of interleaved repetitions behind the median.
	Reps int `json:"reps"`
	// Value is the median throughput in Unit.
	Value float64 `json:"value"`
	// Unit is "rounds/sec" or "scenarios/sec".
	Unit string `json:"unit"`
	// SpeedupVsBarrier is Value over the barrier arm's median for the same
	// workload and N (set on non-barrier entries).
	SpeedupVsBarrier float64 `json:"speedup_vs_barrier,omitempty"`
}

// SchedConfig shapes a MeasureSched run.  The zero value is the standard
// small-n configuration the CI benchmark smoke and EXPERIMENTS.md use.
type SchedConfig struct {
	// SweepSizes are the network sizes of the rounds/sec workload; defaults
	// to {8, 16}.
	SweepSizes []int
	// SweepRounds is the per-agent round budget of one sweep run; defaults
	// to 20000.
	SweepRounds int
	// GridSizes are the campaign grid sizes (the paper artefacts' small-n
	// grid); defaults to {8, 12, 16}.
	GridSizes []int
	// GridSeeds are the campaign grid seeds; defaults to {1, 2, 3}.
	GridSeeds []int64
	// Seed drives the sweep networks; defaults to 1.
	Seed int64
	// Reps is the number of interleaved repetitions; defaults to 5.
	Reps int
}

func (c SchedConfig) filled() SchedConfig {
	if len(c.SweepSizes) == 0 {
		c.SweepSizes = []int{8, 16}
	}
	if c.SweepRounds == 0 {
		c.SweepRounds = 20_000
	}
	if len(c.GridSizes) == 0 {
		c.GridSizes = []int{8, 12, 16}
	}
	if len(c.GridSeeds) == 0 {
		c.GridSeeds = []int64{1, 2, 3}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Reps == 0 {
		c.Reps = 5
	}
	return c
}

// schedRuntimes is the fixed arm order of one repetition.
var schedRuntimes = []engine.Runtime{engine.RuntimeFSM, engine.RuntimeBarrier, engine.RuntimeLegacy}

// EngineSweepMachine is the machine (v3) form of EngineSweepProtocol: the
// identical constant-direction workload expressed as yields, so the fsm arm
// of the sweep measures the scheduler against the exact per-round and leap
// paths the other runtimes drive.
func EngineSweepMachine(a *engine.Agent, rounds, batch int) *engine.Proto[int] {
	dir := ring.Clockwise
	if a.ID()%2 == 0 {
		dir = ring.Anticlockwise
	}
	return engine.NewProto(func(done func(int, error) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		if batch == 1 {
			var loop func(i int) (engine.Yield, engine.Cont)
			loop = func(i int) (engine.Yield, engine.Cont) {
				if i >= rounds {
					return done(0, nil)
				}
				return a.YieldRound(dir), func(engine.Resume) (engine.Yield, engine.Cont) {
					return loop(i + 1)
				}
			}
			return loop(0)
		}
		traceLen := 0
		var loop func(doneRounds int) (engine.Yield, engine.Cont)
		loop = func(dr int) (engine.Yield, engine.Cont) {
			if dr >= rounds {
				return done(traceLen, nil)
			}
			k := batch
			if rounds-dr < k {
				k = rounds - dr
			}
			return a.YieldRoundN(dir, k), func(in engine.Resume) (engine.Yield, engine.Cont) {
				traceLen = len(in.Obs)
				return loop(dr + k)
			}
		}
		return loop(0)
	})
}

// MeasureEngineSweepRuntime runs the constant-direction sweep workload on the
// chosen runtime and returns the wall-clock rounds/sec.
func MeasureEngineSweepRuntime(rt engine.Runtime, n int, seed int64, rounds, batch int) (float64, error) {
	nw, err := EngineSweepNetwork(n, seed)
	if err != nil {
		return 0, err
	}
	//ringvet:allow determinism this is the benchmark path: rounds/sec is a wall-clock measurement by definition
	start := time.Now()
	switch rt.Resolve() {
	case engine.RuntimeFSM:
		_, err = engine.RunFSM(nw, func(a *engine.Agent) *engine.Proto[int] {
			return EngineSweepMachine(a, rounds, batch)
		})
	case engine.RuntimeLegacy:
		_, err = engine.RunLegacy(nw, EngineSweepProtocol(rounds, batch))
	default:
		_, err = engine.Run(nw, EngineSweepProtocol(rounds, batch))
	}
	if err != nil {
		return 0, err
	}
	//ringvet:allow determinism this is the benchmark path: rounds/sec is a wall-clock measurement by definition
	return float64(rounds) / time.Since(start).Seconds(), nil
}

// SchedGrid expands the small-n campaign grid the scenarios/sec workload
// sweeps: the full default matrix (all tasks, models, parities and chirality
// regimes) over the configured sizes and seeds — the same axes as the
// repository's golden 216-scenario artefact.
func SchedGrid(cfg SchedConfig) ([]campaign.Scenario, error) {
	cfg = cfg.filled()
	return campaign.Matrix{Sizes: cfg.GridSizes, Seeds: cfg.GridSeeds}.Expand()
}

// measureCampaignRuntime runs the whole grid under rt (cache off) and returns
// scenarios/sec.  The process-wide default runtime is flipped for the run and
// restored, which steers every facade call the campaign stack makes.
func measureCampaignRuntime(rt engine.Runtime, scenarios []campaign.Scenario) (float64, error) {
	engine.SetDefaultRuntime(rt)
	defer engine.SetDefaultRuntime(engine.RuntimeDefault)
	//ringvet:allow determinism this is the benchmark path: scenarios/sec is a wall-clock measurement by definition
	start := time.Now()
	//ringvet:allow ctxflow the benchmark arm is a complete measurement, not a servable request; there is no caller context to thread
	if _, err := campaign.RunAll(context.Background(), scenarios, campaign.Options{}); err != nil {
		return 0, err
	}
	//ringvet:allow determinism this is the benchmark path: scenarios/sec is a wall-clock measurement by definition
	return float64(len(scenarios)) / time.Since(start).Seconds(), nil
}

// MeasureSched runs the full -sched A/B: rounds/sec per runtime and network
// size on the sweep workload, then scenarios/sec per runtime on the small-n
// campaign grid.  Arms are interleaved within each repetition and the medians
// are reported, with each non-barrier arm annotated with its speedup over the
// barrier median.
func MeasureSched(cfg SchedConfig) ([]SchedEntry, error) {
	cfg = cfg.filled()
	var entries []SchedEntry

	for _, n := range cfg.SweepSizes {
		samples := map[engine.Runtime][]float64{}
		for rep := 0; rep < cfg.Reps; rep++ {
			for _, rt := range schedRuntimes {
				v, err := MeasureEngineSweepRuntime(rt, n, cfg.Seed, cfg.SweepRounds, 1)
				if err != nil {
					return nil, err
				}
				samples[rt] = append(samples[rt], v)
			}
		}
		baseline := median(samples[engine.RuntimeBarrier])
		for _, rt := range schedRuntimes {
			e := SchedEntry{
				Workload: "sweep",
				Runtime:  rt.String(),
				N:        n,
				Rounds:   cfg.SweepRounds,
				Reps:     cfg.Reps,
				Value:    median(samples[rt]),
				Unit:     "rounds/sec",
			}
			if rt != engine.RuntimeBarrier && baseline > 0 {
				e.SpeedupVsBarrier = e.Value / baseline
			}
			entries = append(entries, e)
		}
	}

	scenarios, err := SchedGrid(cfg)
	if err != nil {
		return nil, err
	}
	samples := map[engine.Runtime][]float64{}
	for rep := 0; rep < cfg.Reps; rep++ {
		for _, rt := range schedRuntimes {
			v, err := measureCampaignRuntime(rt, scenarios)
			if err != nil {
				return nil, err
			}
			samples[rt] = append(samples[rt], v)
		}
	}
	baseline := median(samples[engine.RuntimeBarrier])
	for _, rt := range schedRuntimes {
		e := SchedEntry{
			Workload:  "campaign",
			Runtime:   rt.String(),
			Scenarios: len(scenarios),
			Reps:      cfg.Reps,
			Value:     median(samples[rt]),
			Unit:      "scenarios/sec",
		}
		if rt != engine.RuntimeBarrier && baseline > 0 {
			e.SpeedupVsBarrier = e.Value / baseline
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// median of a non-empty sample set; the input slice is not modified.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
