package eval

import (
	"strings"
	"testing"

	"ringsym/internal/campaign"
	"ringsym/internal/ring"
)

func TestAdjustParity(t *testing.T) {
	if adjustParity(8, false) != 8 || adjustParity(8, true) != 9 {
		t.Error("adjustParity wrong for 8")
	}
	if adjustParity(9, true) != 9 || adjustParity(9, false) != 10 {
		t.Error("adjustParity wrong for 9")
	}
}

func TestBoundFormulas(t *testing.T) {
	odd := Setting{Name: "odd n", Model: ring.Basic, OddN: true}
	if v, s := Bound(odd, DirectionAgreement, 9, 36); v != 1 || s != "O(1)" {
		t.Errorf("odd DA bound = %v %q", v, s)
	}
	basicEven := Setting{Name: "basic even", Model: ring.Basic}
	if _, s := Bound(basicEven, LocationDiscovery, 8, 32); s != "not solvable" {
		t.Errorf("basic even LD bound = %q", s)
	}
	lazyEven := Setting{Name: "lazy even", Model: ring.Lazy}
	if v, _ := Bound(lazyEven, LocationDiscovery, 8, 32); v <= 8 {
		t.Errorf("lazy even LD bound = %v, want > n", v)
	}
	perc := Setting{Name: "perceptive even", Model: ring.Perceptive}
	if _, s := Bound(perc, LeaderElection, 16, 64); !strings.Contains(s, "sqrt") {
		t.Errorf("perceptive LE bound = %q", s)
	}
	common := Setting{Name: "basic even", Model: ring.Basic, CommonSense: true}
	if _, s := Bound(common, LeaderElection, 8, 32); s != "O(log^2 N)" {
		t.Errorf("common basic even LE bound = %q", s)
	}
	commonPerc := Setting{Name: "perceptive even", Model: ring.Perceptive, CommonSense: true}
	if _, s := Bound(commonPerc, LocationDiscovery, 8, 32); !strings.Contains(s, "n/2") {
		t.Errorf("common perceptive LD bound = %q", s)
	}
}

// TestTable1SmallSweep runs a miniature Table I sweep and sanity-checks the
// measured shapes: coordination is cheap for odd n, location discovery costs
// about n in the lazy model and about n/2 (plus overhead) in the perceptive
// model, and the basic model with even n cannot solve location discovery.
func TestTable1SmallSweep(t *testing.T) {
	rows, err := TableRows(Table1Settings(), SweepConfig{Sizes: []int{8, 16}, IDBoundFactor: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*2*4 {
		t.Fatalf("got %d measurements, want 32", len(rows))
	}
	for _, m := range rows {
		switch {
		case m.Setting.Name == "basic model, even n" && m.Problem == LocationDiscovery:
			if m.Solvable {
				t.Error("basic even location discovery should be unsolvable")
			}
		case m.Problem == LocationDiscovery:
			if !m.Solvable || m.Rounds < m.N/2 {
				t.Errorf("%s n=%d: LD rounds %d implausibly small", m.Setting.Name, m.N, m.Rounds)
			}
		default:
			if m.Rounds <= 0 {
				t.Errorf("%s %s n=%d: nonpositive rounds", m.Setting.Name, m.Problem, m.N)
			}
		}
	}
	text := Format("Table I", rows)
	if !strings.Contains(text, "Table I") || !strings.Contains(text, "odd n") {
		t.Error("formatted table missing expected content")
	}
}

func TestTable2SmallSweep(t *testing.T) {
	rows, err := TableRows(Table2Settings(), SweepConfig{Sizes: []int{8}, IDBoundFactor: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// 4 settings x 1 size x 3 problems.
	if len(rows) != 12 {
		t.Fatalf("got %d measurements, want 12", len(rows))
	}
	for _, m := range rows {
		if m.Problem == DirectionAgreement {
			t.Error("Table II should not include direction agreement")
		}
		// With a common sense of direction every coordination problem is
		// polylogarithmic: far below n rounds for these sizes.
		if m.Problem == LeaderElection && m.Rounds > 200 {
			t.Errorf("%s: leader election took %d rounds", m.Setting.Name, m.Rounds)
		}
	}
}

func TestMeasureReductions(t *testing.T) {
	rs, err := MeasureReductions(Setting{Model: ring.Lazy}, 8, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 6 {
		t.Fatalf("got %d reductions, want 6", len(rs))
	}
	for _, r := range rs {
		if r.Rounds <= 0 {
			t.Errorf("%s -> %s: nonpositive rounds", r.From, r.To)
		}
		// O(1) arrows must be constant-ish.
		if r.BoundStr == "O(1)" && r.Rounds > 8 {
			t.Errorf("%s -> %s: %d rounds for an O(1) reduction", r.From, r.To, r.Rounds)
		}
	}
	if s := FormatReductions("Figure 1", rs); !strings.Contains(s, "->") {
		t.Error("FormatReductions output malformed")
	}
}

func TestMeasureRingDist(t *testing.T) {
	samples, err := MeasureRingDist([]int{8, 16}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || samples[0].Rounds <= 0 || samples[1].Rounds <= samples[0].Rounds/4 {
		t.Fatalf("unexpected samples %+v", samples)
	}
	if s := FormatRingDist(samples); !strings.Contains(s, "Figure 3") {
		t.Error("FormatRingDist output malformed")
	}
}

func TestMeasureDistinguishers(t *testing.T) {
	samples, err := MeasureDistinguishers([][2]int{{8, 2}, {12, 2}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.MinPrefix <= 0 {
			t.Errorf("N=%d n=%d: no distinguishing prefix found", s.Universe, s.SubsetSize)
		}
		if s.LowerBound <= 0 {
			t.Errorf("N=%d n=%d: nonpositive lower bound", s.Universe, s.SubsetSize)
		}
	}
	if s := FormatDistinguishers(samples); !strings.Contains(s, "lower bound") {
		t.Error("FormatDistinguishers output malformed")
	}
}

// TestTableRowsCached: a table sweep with the memo cache produces the same
// measurements as the uncached sweep, and a second regeneration over the
// same cache is served from it (one miss per scenario, then all hits).
func TestTableRowsCached(t *testing.T) {
	cfg := SweepConfig{Sizes: []int{8}, IDBoundFactor: 4, Seed: 5}
	plain, err := TableRows(Table1Settings(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = campaign.NewCache(0)
	first, err := TableRows(Table1Settings(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := TableRows(Table1Settings(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(plain) || len(again) != len(plain) {
		t.Fatalf("measurement counts differ: %d/%d vs %d", len(first), len(again), len(plain))
	}
	for i := range plain {
		if first[i] != plain[i] || again[i] != plain[i] {
			t.Errorf("measurement %d differs across cache modes:\nplain %+v\nfirst %+v\nagain %+v", i, plain[i], first[i], again[i])
		}
	}
	st := cfg.Cache.Stats()
	if st.Misses == 0 || st.Hits < st.Misses {
		t.Fatalf("second regeneration not served from the cache: %+v", st)
	}
}
