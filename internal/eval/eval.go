// Package eval is the experiment harness that regenerates the evaluation of
// the paper: Table I and Table II (round complexities of the coordination and
// location-discovery problems across models and parities), the reduction
// complexities of Figures 1 and 2, the RingDist behaviour illustrated by
// Figure 3, and the distinguisher-size experiments behind Section IV
// (Corollaries 26-29).
//
// Every measurement runs real protocols on the simulated ring and reports the
// observed number of rounds next to the theoretical bound of the paper.  The
// harness is used both by cmd/benchtables and by the testing.B benchmarks in
// the repository root.
package eval

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"ringsym/internal/campaign"
	"ringsym/internal/engine"
	"ringsym/internal/netgen"
	"ringsym/internal/ring"
)

// Problem identifies one of the paper's problems.
type Problem = campaign.Problem

// Problems measured by the harness.
const (
	LeaderElection     = campaign.LeaderElection
	NontrivialMove     = campaign.NontrivialMove
	DirectionAgreement = campaign.DirectionAgreement
	LocationDiscovery  = campaign.LocationDiscovery
)

// Setting identifies a row of Table I / Table II.
type Setting struct {
	// Name is the row label used by the paper.
	Name string
	// Model is the movement model.
	Model ring.Model
	// OddN selects an odd number of agents.
	OddN bool
	// CommonSense marks the Table II variant (a-priori common direction).
	CommonSense bool
}

// Table1Settings are the rows of Table I (no common sense of direction;
// orientations are adversarially mixed).
func Table1Settings() []Setting {
	return []Setting{
		{Name: "odd n", Model: ring.Basic, OddN: true},
		{Name: "basic model, even n", Model: ring.Basic},
		{Name: "lazy model, even n", Model: ring.Lazy},
		{Name: "perceptive model, even n", Model: ring.Perceptive},
	}
}

// Table2Settings are the rows of Table II (common sense of direction).
func Table2Settings() []Setting {
	return []Setting{
		{Name: "odd n", Model: ring.Basic, OddN: true, CommonSense: true},
		{Name: "basic model, even n", Model: ring.Basic, CommonSense: true},
		{Name: "lazy model, even n", Model: ring.Lazy, CommonSense: true},
		{Name: "perceptive model, even n", Model: ring.Perceptive, CommonSense: true},
	}
}

// Measurement is one measured cell sample.
type Measurement struct {
	Setting  Setting
	Problem  Problem
	N        int
	IDBound  int
	Rounds   int
	Bound    float64
	BoundStr string
	Solvable bool
}

// SweepConfig controls a table sweep.
type SweepConfig struct {
	// Sizes are the network sizes n to measure (adjusted by one to match the
	// parity of the setting).
	Sizes []int
	// IDBoundFactor sets N = IDBoundFactor·n (defaults to 4).
	IDBoundFactor int
	// Seed drives the pseudo-random configurations and schedules.
	Seed int64
	// Cache, when non-nil, memoises scenario outcomes under their canonical
	// symmetry key (see internal/canon): repeated table regenerations — for
	// example inside a long-lived serving process — reuse earlier
	// computations instead of re-running every protocol.
	Cache *campaign.Cache
}

func (c *SweepConfig) fill() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{16, 32, 64, 128}
	}
	if c.IDBoundFactor <= 0 {
		c.IDBoundFactor = 4
	}
}

// adjustParity nudges n to the parity required by the setting.
func adjustParity(n int, odd bool) int {
	return campaign.AdjustParity(n, odd)
}

// network builds the network for one sample of a setting.
func network(s Setting, n, idBound int, seed int64) (*engine.Network, error) {
	cfg, err := netgen.Generate(netgen.Options{
		N:                   n,
		IDBound:             idBound,
		Model:               s.Model,
		MixedChirality:      !s.CommonSense,
		ForceSplitChirality: !s.CommonSense,
		Seed:                seed,
	})
	if err != nil {
		return nil, err
	}
	return engine.New(cfg)
}

// scenario translates a table setting into a campaign scenario spec.
func scenario(s Setting, task campaign.Task, n, idBound int, seed int64) campaign.Scenario {
	return campaign.Scenario{
		Task:           task,
		Model:          s.Model.String(),
		N:              n,
		IDBound:        idBound,
		MixedChirality: !s.CommonSense,
		CommonSense:    s.CommonSense,
		Seed:           seed,
	}
}

// coordinationSplit converts the raw per-stage rounds of a campaign record
// into the from-scratch costs of the three coordination problems (each cost
// is the number of rounds after which the corresponding problem is solved).
func coordinationSplit(s Setting, rec campaign.Record) (nm, da, le int) {
	if s.CommonSense {
		// Direction agreement is given; leader election comes first and the
		// nontrivial move is derived from the leader (Lemma 10).
		le = rec.RoundsLeader
		nm = rec.RoundsLeader + rec.RoundsNontrivial
		da = 0
		return nm, da, le
	}
	nm = rec.RoundsNontrivial
	da = rec.RoundsNontrivial + rec.RoundsAgreement
	le = da + rec.RoundsLeader
	return nm, da, le
}

// recordErr converts a failed campaign record into an error.
func recordErr(rec campaign.Record) error {
	if rec.Status == campaign.StatusFailed {
		return errors.New(rec.Error)
	}
	return nil
}

// MeasureCoordination measures, for one configuration, the from-scratch round
// cost of the three coordination problems on a single scenario of the
// campaign runner.
func MeasureCoordination(s Setting, n, idBound int, seed int64) (nm, da, le int, err error) {
	rec := campaign.RunScenario(scenario(s, campaign.TaskCoordinate, n, idBound, seed), campaign.Options{})
	if err := recordErr(rec); err != nil {
		return 0, 0, 0, err
	}
	nm, da, le = coordinationSplit(s, rec)
	return nm, da, le, nil
}

// MeasureLocationDiscovery measures the total location-discovery cost and its
// split into the o(n) coordination part and the main discovery part.  The
// solvable return value is false when the problem is unsolvable in the
// setting (Lemma 5).
func MeasureLocationDiscovery(s Setting, n, idBound int, seed int64) (total, coordination, main int, solvable bool, err error) {
	rec := campaign.RunScenario(scenario(s, campaign.TaskDiscover, n, idBound, seed), campaign.Options{})
	if err := recordErr(rec); err != nil {
		return 0, 0, 0, false, err
	}
	if rec.Status == campaign.StatusUnsolvable {
		return 0, 0, 0, false, nil
	}
	return rec.Rounds, rec.RoundsCoordination, rec.RoundsDiscovery, true, nil
}

// Bound returns the paper's asymptotic bound (as a plain formula without the
// hidden constant) and its human-readable form for a cell.  It delegates to
// the campaign package, whose tables live in the task registry
// (internal/task) — the same source every registered task's per-record
// bound comes from, so the table columns cannot drift from sweep records.
func Bound(s Setting, p Problem, n, idBound int) (float64, string) {
	return campaign.Bound(s.Model, s.OddN, s.CommonSense, p, n, idBound)
}

// TableRows measures every cell of the given settings for the sweep.  It is
// a thin pre-baked campaign: the settings expand into one coordinate and one
// discover scenario per (setting, size) cell, run on the campaign worker
// pool, and the records are folded back into table measurements.
func TableRows(settings []Setting, cfg SweepConfig) ([]Measurement, error) {
	//ringvet:allow ctxflow context-free compatibility wrapper: TableRowsContext is the cancellable form
	return TableRowsContext(context.Background(), settings, cfg)
}

// TableRowsContext is TableRows with cancellation: a cancelled ctx aborts
// in-flight scenarios within one round and returns the context error.
func TableRowsContext(ctx context.Context, settings []Setting, cfg SweepConfig) ([]Measurement, error) {
	cfg.fill()
	type cell struct {
		s Setting
		n int
	}
	var cells []cell
	var scenarios []campaign.Scenario
	for _, s := range settings {
		for _, rawN := range cfg.Sizes {
			n := adjustParity(rawN, s.OddN)
			idBound := cfg.IDBoundFactor * n
			cells = append(cells, cell{s: s, n: n})
			coord := scenario(s, campaign.TaskCoordinate, n, idBound, cfg.Seed)
			coord.Index = len(scenarios)
			scenarios = append(scenarios, coord)
			disc := scenario(s, campaign.TaskDiscover, n, idBound, cfg.Seed)
			disc.Index = len(scenarios)
			scenarios = append(scenarios, disc)
		}
	}
	recs, err := campaign.RunAll(ctx, scenarios, campaign.Options{Cache: cfg.Cache})
	if err != nil {
		return nil, fmt.Errorf("eval: campaign: %w", err)
	}
	var out []Measurement
	for i, c := range cells {
		coordRec, discRec := recs[2*i], recs[2*i+1]
		if err := recordErr(coordRec); err != nil {
			return nil, fmt.Errorf("eval: %s n=%d: %w", c.s.Name, c.n, err)
		}
		if err := recordErr(discRec); err != nil {
			return nil, fmt.Errorf("eval: %s n=%d location discovery: %w", c.s.Name, c.n, err)
		}
		nm, da, le := coordinationSplit(c.s, coordRec)
		rounds := map[Problem]int{
			LeaderElection:     le,
			NontrivialMove:     nm,
			DirectionAgreement: da,
			LocationDiscovery:  discRec.Rounds,
		}
		problems := []Problem{LeaderElection, NontrivialMove, DirectionAgreement, LocationDiscovery}
		if c.s.CommonSense {
			// Table II has no direction-agreement column: it is given.
			problems = []Problem{LeaderElection, NontrivialMove, LocationDiscovery}
		}
		for _, p := range problems {
			bound, boundStr := Bound(c.s, p, c.n, coordRec.IDBound)
			m := Measurement{
				Setting: c.s, Problem: p, N: c.n, IDBound: coordRec.IDBound,
				Rounds: rounds[p], Bound: bound, BoundStr: boundStr,
				Solvable: true,
			}
			if p == LocationDiscovery && discRec.Status == campaign.StatusUnsolvable {
				m.Solvable = false
				m.Rounds = 0
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// Format renders measurements as a text table grouped by setting.
func Format(title string, ms []Measurement) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	var lastSetting string
	for _, m := range ms {
		if m.Setting.Name != lastSetting {
			lastSetting = m.Setting.Name
			fmt.Fprintf(&b, "\n[%s]  (model=%s, common sense=%v)\n", m.Setting.Name, m.Setting.Model, m.Setting.CommonSense)
			fmt.Fprintf(&b, "  %-22s %6s %8s %10s %12s  %s\n", "problem", "n", "N", "rounds", "bound", "paper bound")
		}
		rounds := fmt.Sprintf("%d", m.Rounds)
		if !m.Solvable {
			rounds = "-"
		}
		fmt.Fprintf(&b, "  %-22s %6d %8d %10s %12.1f  %s\n",
			string(m.Problem), m.N, m.IDBound, rounds, m.Bound, m.BoundStr)
	}
	return b.String()
}
