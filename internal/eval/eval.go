// Package eval is the experiment harness that regenerates the evaluation of
// the paper: Table I and Table II (round complexities of the coordination and
// location-discovery problems across models and parities), the reduction
// complexities of Figures 1 and 2, the RingDist behaviour illustrated by
// Figure 3, and the distinguisher-size experiments behind Section IV
// (Corollaries 26-29).
//
// Every measurement runs real protocols on the simulated ring and reports the
// observed number of rounds next to the theoretical bound of the paper.  The
// harness is used both by cmd/benchtables and by the testing.B benchmarks in
// the repository root.
package eval

import (
	"fmt"
	"math"
	"strings"

	"ringsym/internal/comb"
	"ringsym/internal/core"
	"ringsym/internal/discovery"
	"ringsym/internal/engine"
	"ringsym/internal/netgen"
	"ringsym/internal/perceptive"
	"ringsym/internal/ring"
)

// Problem identifies one of the paper's problems.
type Problem string

// Problems measured by the harness.
const (
	LeaderElection     Problem = "leader election"
	NontrivialMove     Problem = "nontrivial move"
	DirectionAgreement Problem = "direction agreement"
	LocationDiscovery  Problem = "location discovery"
)

// Setting identifies a row of Table I / Table II.
type Setting struct {
	// Name is the row label used by the paper.
	Name string
	// Model is the movement model.
	Model ring.Model
	// OddN selects an odd number of agents.
	OddN bool
	// CommonSense marks the Table II variant (a-priori common direction).
	CommonSense bool
}

// Table1Settings are the rows of Table I (no common sense of direction;
// orientations are adversarially mixed).
func Table1Settings() []Setting {
	return []Setting{
		{Name: "odd n", Model: ring.Basic, OddN: true},
		{Name: "basic model, even n", Model: ring.Basic},
		{Name: "lazy model, even n", Model: ring.Lazy},
		{Name: "perceptive model, even n", Model: ring.Perceptive},
	}
}

// Table2Settings are the rows of Table II (common sense of direction).
func Table2Settings() []Setting {
	return []Setting{
		{Name: "odd n", Model: ring.Basic, OddN: true, CommonSense: true},
		{Name: "basic model, even n", Model: ring.Basic, CommonSense: true},
		{Name: "lazy model, even n", Model: ring.Lazy, CommonSense: true},
		{Name: "perceptive model, even n", Model: ring.Perceptive, CommonSense: true},
	}
}

// Measurement is one measured cell sample.
type Measurement struct {
	Setting  Setting
	Problem  Problem
	N        int
	IDBound  int
	Rounds   int
	Bound    float64
	BoundStr string
	Solvable bool
}

// SweepConfig controls a table sweep.
type SweepConfig struct {
	// Sizes are the network sizes n to measure (adjusted by one to match the
	// parity of the setting).
	Sizes []int
	// IDBoundFactor sets N = IDBoundFactor·n (defaults to 4).
	IDBoundFactor int
	// Seed drives the pseudo-random configurations and schedules.
	Seed int64
}

func (c *SweepConfig) fill() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{16, 32, 64, 128}
	}
	if c.IDBoundFactor <= 0 {
		c.IDBoundFactor = 4
	}
}

// adjustParity nudges n to the parity required by the setting.
func adjustParity(n int, odd bool) int {
	if odd == (n%2 == 1) {
		return n
	}
	return n + 1
}

// network builds the network for one sample of a setting.
func network(s Setting, n, idBound int, seed int64) (*engine.Network, error) {
	cfg, err := netgen.Generate(netgen.Options{
		N:                   n,
		IDBound:             idBound,
		Model:               s.Model,
		MixedChirality:      !s.CommonSense,
		ForceSplitChirality: !s.CommonSense,
		Seed:                seed,
	})
	if err != nil {
		return nil, err
	}
	return engine.New(cfg)
}

// MeasureCoordination measures, for one configuration, the from-scratch round
// cost of the three coordination problems (each cost is the number of rounds
// after which the corresponding problem is solved).
func MeasureCoordination(s Setting, n, idBound int, seed int64) (nm, da, le int, err error) {
	nw, err := network(s, n, idBound, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	res, err := engine.Run(nw, func(a *engine.Agent) (*core.Coordination, error) {
		if s.Model == ring.Perceptive && !s.CommonSense {
			return perceptive.Coordinate(a, perceptive.Options{Seed: seed})
		}
		return core.Coordinate(a, core.Options{CommonSense: s.CommonSense, Seed: seed})
	})
	if err != nil {
		return 0, 0, 0, err
	}
	c := res.Outputs[0]
	if s.CommonSense {
		// Direction agreement is given; leader election comes first and the
		// nontrivial move is derived from the leader (Lemma 10).
		le = c.RoundsLeader
		nm = c.RoundsLeader + c.RoundsNontrivial
		da = 0
		return nm, da, le, nil
	}
	nm = c.RoundsNontrivial
	da = c.RoundsNontrivial + c.RoundsAgreement
	le = da + c.RoundsLeader
	return nm, da, le, nil
}

// MeasureLocationDiscovery measures the total location-discovery cost and its
// split into the o(n) coordination part and the main discovery part.  The
// second return value is false when the problem is unsolvable in the setting
// (Lemma 5).
func MeasureLocationDiscovery(s Setting, n, idBound int, seed int64) (total, coordination, main int, solvable bool, err error) {
	if s.Model == ring.Basic && !s.OddN {
		return 0, 0, 0, false, nil
	}
	nw, err := network(s, n, idBound, seed)
	if err != nil {
		return 0, 0, 0, false, err
	}
	res, err := engine.Run(nw, func(a *engine.Agent) (*discovery.Result, error) {
		return discovery.LocationDiscovery(a, discovery.Options{CommonSense: s.CommonSense, Seed: seed})
	})
	if err != nil {
		return 0, 0, 0, false, err
	}
	out := res.Outputs[0]
	return res.Rounds, out.RoundsCoordination, out.RoundsDiscovery, true, nil
}

// Bound returns the paper's asymptotic bound (as a plain formula without the
// hidden constant) and its human-readable form for a cell.
func Bound(s Setting, p Problem, n, idBound int) (float64, string) {
	logN := comb.Log2(float64(idBound))
	logNn := comb.Log2(float64(idBound) / float64(n))
	logn := comb.Log2(float64(n))
	sqrtn := math.Sqrt(float64(n))
	fn := float64(n)

	if s.CommonSense {
		switch {
		case p == LocationDiscovery && s.Model == ring.Basic && !s.OddN:
			return 0, "not solvable"
		case p == LocationDiscovery && s.Model == ring.Perceptive && !s.OddN:
			return fn/2 + sqrtn*logN, "n/2 + O(sqrt(n) log N)"
		case p == LocationDiscovery:
			return fn + logN, "n + O(log N)"
		case p == NontrivialMove && s.OddN:
			return logNn, "Theta(log(N/n))"
		case s.Model == ring.Basic && !s.OddN:
			return logN * logN, "O(log^2 N)"
		default:
			return logN, "O(log N)"
		}
	}
	switch s.Model {
	case ring.Basic, ring.Lazy:
		if s.OddN {
			switch p {
			case LeaderElection:
				return logN, "O(log N)"
			case NontrivialMove:
				return logNn, "Theta(log(N/n))"
			case DirectionAgreement:
				return 1, "O(1)"
			case LocationDiscovery:
				return fn + logN, "n + O(log N)"
			}
		}
		coord := fn * logNn / logn
		if p == LocationDiscovery {
			if s.Model == ring.Basic {
				return 0, "not solvable"
			}
			return fn + coord, "n + Theta(n log(N/n)/log n)"
		}
		return coord, "Theta(n log(N/n)/log n)"
	case ring.Perceptive:
		if p == LocationDiscovery {
			return fn/2 + sqrtn*logN*logN, "n/2 + O(sqrt(n) log^2 N)"
		}
		return sqrtn * logN, "O(sqrt(n) log N)"
	}
	return 0, "?"
}

// TableRows measures every cell of the given settings for the sweep.
func TableRows(settings []Setting, cfg SweepConfig) ([]Measurement, error) {
	cfg.fill()
	var out []Measurement
	for _, s := range settings {
		problems := []Problem{LeaderElection, NontrivialMove, DirectionAgreement, LocationDiscovery}
		if s.CommonSense {
			// Table II has no direction-agreement column: it is given.
			problems = []Problem{LeaderElection, NontrivialMove, LocationDiscovery}
		}
		for _, rawN := range cfg.Sizes {
			n := adjustParity(rawN, s.OddN)
			idBound := cfg.IDBoundFactor * n
			nm, da, le, err := MeasureCoordination(s, n, idBound, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("eval: %s n=%d: %w", s.Name, n, err)
			}
			ldTotal, _, _, solvable, err := MeasureLocationDiscovery(s, n, idBound, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("eval: %s n=%d location discovery: %w", s.Name, n, err)
			}
			rounds := map[Problem]int{
				LeaderElection:     le,
				NontrivialMove:     nm,
				DirectionAgreement: da,
				LocationDiscovery:  ldTotal,
			}
			for _, p := range problems {
				bound, boundStr := Bound(s, p, n, idBound)
				m := Measurement{
					Setting: s, Problem: p, N: n, IDBound: idBound,
					Rounds: rounds[p], Bound: bound, BoundStr: boundStr,
					Solvable: true,
				}
				if p == LocationDiscovery && !solvable {
					m.Solvable = false
					m.Rounds = 0
				}
				out = append(out, m)
			}
		}
	}
	return out, nil
}

// Format renders measurements as a text table grouped by setting.
func Format(title string, ms []Measurement) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	var lastSetting string
	for _, m := range ms {
		if m.Setting.Name != lastSetting {
			lastSetting = m.Setting.Name
			fmt.Fprintf(&b, "\n[%s]  (model=%s, common sense=%v)\n", m.Setting.Name, m.Setting.Model, m.Setting.CommonSense)
			fmt.Fprintf(&b, "  %-22s %6s %8s %10s %12s  %s\n", "problem", "n", "N", "rounds", "bound", "paper bound")
		}
		rounds := fmt.Sprintf("%d", m.Rounds)
		if !m.Solvable {
			rounds = "-"
		}
		fmt.Fprintf(&b, "  %-22s %6d %8d %10s %12.1f  %s\n",
			string(m.Problem), m.N, m.IDBound, rounds, m.Bound, m.BoundStr)
	}
	return b.String()
}
