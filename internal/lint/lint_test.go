package lint_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ringsym/internal/lint"
)

// nameRE is the contract for analyzer names: short stable lowercase
// identifiers, never URLs or versioned strings — they are written into
// //ringvet:allow comments that live in source files for years.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*$`)

// TestAnalyzerContract asserts every registered analyzer is documented,
// stably named, runnable, and exercised by fixtures covering both a flagged
// and an allowed case.
func TestAnalyzerContract(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.All() {
		if a.Name == "" || !nameRE.MatchString(a.Name) {
			t.Errorf("analyzer name %q is not a stable lowercase identifier", a.Name)
		}
		if strings.Contains(a.Doc, "://") {
			t.Errorf("%s: Doc contains a URL; docs must be self-contained", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if strings.TrimSpace(a.Doc) == "" {
			t.Errorf("%s: empty Doc", a.Name)
		}
		if !strings.Contains(firstLine(a.Doc), " ") {
			t.Errorf("%s: Doc %q does not start with a one-line summary", a.Name, firstLine(a.Doc))
		}
		if a.Run == nil {
			t.Errorf("%s: nil Run", a.Name)
		}
		checkFixtures(t, a.Name)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// checkFixtures asserts the analyzer's package carries analysistest
// fixtures with at least one expected diagnostic (`// want`) and at least
// one exercised escape hatch (`//ringvet:allow <name>`).
func checkFixtures(t *testing.T, name string) {
	t.Helper()
	src := filepath.Join(name, "testdata", "src")
	if _, err := os.Stat(src); err != nil {
		t.Errorf("%s: missing analysistest fixtures: %v", name, err)
		return
	}
	var wants, allows int
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		wants += strings.Count(string(data), "// want ")
		allows += strings.Count(string(data), "//ringvet:allow "+name+" ")
		return nil
	})
	if err != nil {
		t.Errorf("%s: walking fixtures: %v", name, err)
		return
	}
	if wants == 0 {
		t.Errorf("%s: fixtures never expect a diagnostic (no `// want`): the analyzer is untested against a violation", name)
	}
	if allows == 0 {
		t.Errorf("%s: fixtures never exercise the //ringvet:allow escape hatch", name)
	}
}
