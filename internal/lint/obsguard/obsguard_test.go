package obsguard_test

import (
	"testing"

	"ringsym/internal/lint/analysis/analysistest"
	"ringsym/internal/lint/obsguard"
)

func TestObsguard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), obsguard.Analyzer, "obsfix")
}
