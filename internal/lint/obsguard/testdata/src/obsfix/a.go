// Package obsfix stages guarded and unguarded telemetry emissions for the
// obsguard analyzer.
package obsfix

import "ringsym/internal/obs"

const eventType obs.Type = "fixture.event"

// Guarded emissions in every accepted form: none of these may be flagged.

func directGuard(done int) {
	if obs.On() {
		obs.Emit(obs.Event{Type: eventType, Done: done})
	}
}

func conjunctionGuard(done int) {
	if obs.On() && done%100 == 0 {
		obs.Emit(obs.Event{Type: eventType, Done: done})
	}
	if done%100 == 0 && obs.On() {
		obs.Emit(obs.Event{Type: eventType, Done: done})
	}
}

func earlyReturnGuard(done int) {
	if !obs.On() {
		return
	}
	ev := obs.Event{Type: eventType, Done: done}
	obs.Emit(ev)
}

func busActiveGuard() {
	if obs.Default.Active() {
		obs.Default.Publish(obs.Event{Type: eventType})
	}
}

func guardedClosure() {
	if obs.On() {
		func() {
			obs.Emit(obs.Event{Type: eventType})
		}()
	}
}

// Violations: emission or construction the off switch does not dominate.

func unguardedEmit() {
	obs.Emit(obs.Event{Type: eventType}) // want `obs emit is not dominated` `obs\.Event constructed outside`
}

func constructionBeforeGuard(done int) {
	ev := obs.Event{Type: eventType, Done: done} // want `obs\.Event constructed outside`
	if obs.On() {
		obs.Emit(ev)
	}
}

func disjunctionIsNoGuard(force bool) {
	if obs.On() || force {
		obs.Emit(obs.Event{Type: eventType}) // want `obs emit is not dominated` `obs\.Event constructed outside`
	}
}

func negatedGuardElse() {
	if !obs.On() {
		return
	}
	obs.Default.Publish(obs.Event{Type: eventType})
}

func guardInWrongBranch() {
	if obs.On() {
		return
	}
	obs.Emit(obs.Event{Type: eventType}) // want `obs emit is not dominated` `obs\.Event constructed outside`
}

// The escape hatch: a justified allow suppresses the diagnostics.

func allowedHelper(done int) {
	//ringvet:allow obsguard every caller guards; keeping the event build out of line
	ev := obs.Event{Type: eventType, Done: done}
	obs.Emit(ev) //ringvet:allow obsguard every caller guards; see above
}
