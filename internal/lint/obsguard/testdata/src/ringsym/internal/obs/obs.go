// Package obs is a miniature of the real telemetry spine, just enough API
// surface for the obsguard fixtures to typecheck against.
package obs

type Type string

type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
)

type Event struct {
	Type  Type
	Level Level
	Done  int
	Err   string
}

var subscribed bool

func On() bool { return subscribed }

func Emit(Event) {}

type Bus struct{}

func (*Bus) Active() bool { return subscribed }

func (*Bus) Publish(Event) {}

var Default = &Bus{}
