// Package obsguard enforces the nil-cost-when-quiet contract of the
// telemetry spine (internal/obs): emitting an event must never cost more
// than one atomic load while nobody is subscribed.
package obsguard

import (
	"go/ast"
	"go/types"

	"ringsym/internal/lint/analysis"
)

// obsPath is the import path of the telemetry package whose contract this
// analyzer enforces (fixtures provide a fake under the same path).
const obsPath = "ringsym/internal/obs"

// Analyzer flags obs emissions that are not dominated by an obs.On() guard.
var Analyzer = &analysis.Analyzer{
	Name: "obsguard",
	Doc: `obs emissions must be dominated by an obs.On() guard

The observability contract (DESIGN.md, "Observability") is that a process
with no subscribers pays one atomic pointer load per emit site and nothing
else: no obs.Event value is constructed, no string is built, no call is made.
The analyzer therefore requires every call to obs.Emit (or Bus.Publish) and
every obs.Event composite literal outside package obs to be dominated by a
guard on obs.On() (or Bus.Active()), in either accepted form:

	if obs.On() {
		obs.Emit(obs.Event{...})       // direct guard; && chains are fine
	}

	func emitX(...) {
		if !obs.On() {
			return                     // early-return guard at the top of
		}                              // the emitting helper
		obs.Emit(obs.Event{...})
	}

Constructing the Event before the guard is flagged even when the Emit itself
is guarded: the construction is exactly the cost the contract forbids.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == obsPath {
		return nil // the spine itself implements the machinery it guards
	}
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isEmitCall(pass.TypesInfo, n) && !guarded(pass, stack) {
				pass.Reportf(n.Pos(), "obs emit is not dominated by an obs.On() guard (a quiet bus must cost one atomic load, nothing more)")
			}
		case *ast.CompositeLit:
			if isObsEvent(pass.TypesInfo.Types[n].Type) && !guarded(pass, stack) {
				pass.Reportf(n.Pos(), "obs.Event constructed outside an obs.On() guard (no event may be built on a quiet bus)")
			}
		}
		return true
	})
	return nil
}

// isEmitCall reports whether call publishes an event: obs.Emit or a Publish
// method on a type of the obs package.
func isEmitCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
		return false
	}
	return fn.Name() == "Emit" || fn.Name() == "Publish"
}

// isOnCall reports whether call is the off-switch test: obs.On or an Active
// method of the obs package.
func isOnCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
		return false
	}
	return fn.Name() == "On" || fn.Name() == "Active"
}

// isObsEvent reports whether t is obs.Event (possibly via pointer).
func isObsEvent(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == obsPath && obj.Name() == "Event"
}

// guarded reports whether the innermost node of stack is dominated by an
// obs.On() guard: an enclosing `if <cond with obs.On()> { ... }` body, or an
// earlier `if !obs.On() { return }` statement in an enclosing function body.
func guarded(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			if stack[i+1] == s.Body && condTestsOn(pass.TypesInfo, s.Cond) {
				return true
			}
		case *ast.FuncDecl, *ast.FuncLit:
			body := analysis.FuncBody(s)
			if body == nil || i+2 >= len(stack) || stack[i+1] != ast.Node(body) {
				continue
			}
			for _, stmt := range body.List {
				if stmt == stack[i+2] {
					break
				}
				if isNegatedOnReturn(pass.TypesInfo, stmt) {
					return true
				}
			}
		}
	}
	return false
}

// condTestsOn reports whether the condition establishes obs.On(): the call
// itself, or a && conjunction containing it.  (|| does not establish it.)
func condTestsOn(info *types.Info, cond ast.Expr) bool {
	switch cond := ast.Unparen(cond).(type) {
	case *ast.CallExpr:
		return isOnCall(info, cond)
	case *ast.BinaryExpr:
		if cond.Op.String() == "&&" {
			return condTestsOn(info, cond.X) || condTestsOn(info, cond.Y)
		}
	}
	return false
}

// isNegatedOnReturn matches the early-return guard `if !obs.On() { return }`.
func isNegatedOnReturn(info *types.Info, stmt ast.Stmt) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil || ifs.Else != nil || len(ifs.Body.List) == 0 {
		return false
	}
	not, ok := ast.Unparen(ifs.Cond).(*ast.UnaryExpr)
	if !ok || not.Op.String() != "!" {
		return false
	}
	call, ok := ast.Unparen(not.X).(*ast.CallExpr)
	if !ok || !isOnCall(info, call) {
		return false
	}
	_, ok = ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return ok
}
