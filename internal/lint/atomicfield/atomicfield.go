// Package atomicfield enforces all-or-nothing atomicity on struct fields:
// a field that is accessed through sync/atomic anywhere in a package must be
// accessed through sync/atomic everywhere in that package.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"ringsym/internal/lint/analysis"
)

// Analyzer flags non-atomic accesses to fields that are elsewhere accessed
// via sync/atomic.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: `a field accessed via sync/atomic anywhere must be accessed atomically everywhere

Mixing atomic and plain access to the same word is the torn-read/lost-update
class the serve metrics snapshot once shipped: a plain load can observe a
half-updated value (or be hoisted by the compiler), and a plain store can
silently erase a concurrent atomic add.  Within each package, the analyzer
collects every struct field whose address is passed to a sync/atomic
function (atomic.AddUint64(&s.n, 1), ...) and then flags every other plain
read, write or address-taking of the same field.

The modern fix is usually stronger than an annotation: declare the field as
an atomic type (atomic.Uint64 and friends), which makes non-atomic access
unrepresentable.  Initialisation paths that provably run before the value is
shared can keep plain access under a //ringvet:allow with that argument.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: fields whose address feeds a sync/atomic call.
	atomicFields := map[*types.Var]bool{}
	analysis.WithStack(pass.Files, func(n ast.Node, _ []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicCall(pass.TypesInfo, call) {
			return true
		}
		for _, arg := range call.Args {
			if f := addressedField(pass.TypesInfo, arg); f != nil {
				atomicFields[f] = true
			}
		}
		return true
	})
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other access to those fields must be atomic too.
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f := selectedField(pass.TypesInfo, sel)
		if f == nil || !atomicFields[f] {
			return true
		}
		if isSanctioned(pass.TypesInfo, stack) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"field %s is accessed via sync/atomic elsewhere in this package; this plain access can tear (use the atomic API everywhere, or declare the field as an atomic type)",
			f.Name())
		return true
	})
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic package function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
		fn.Type().(*types.Signature).Recv() == nil
}

// addressedField returns the struct field var when expr is &x.f, else nil.
func addressedField(info *types.Info, expr ast.Expr) *types.Var {
	unary, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return selectedField(info, sel)
}

// selectedField returns the field var a selector denotes, or nil when the
// selector is not a struct-field selection.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// isSanctioned reports whether the field selection at the top of the stack
// is itself an atomic access: &x.f passed directly to a sync/atomic call.
func isSanctioned(info *types.Info, stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	unary, ok := stack[len(stack)-2].(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	return ok && isAtomicCall(info, call)
}
