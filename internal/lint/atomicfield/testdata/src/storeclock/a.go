// Package storeclock stages the persistent store's logical-access-clock
// shape for the atomicfield analyzer: eviction ordering reads per-segment
// access stamps concurrently with Get bumping them, so a plain read of a
// stamp that is atomically written elsewhere is exactly the torn-read class
// the analyzer exists to catch.
package storeclock

import "sync/atomic"

type segment struct {
	id     uint64
	access int64 // logical clock stamp of the last Get
	size   int64
}

type store struct {
	clock int64
	segs  []*segment
}

func (s *store) touch(seg *segment) {
	stamp := atomic.AddInt64(&s.clock, 1)
	atomic.StoreInt64(&seg.access, stamp)
}

func (s *store) oldest() *segment {
	var victim *segment
	for _, seg := range s.segs {
		if victim == nil || seg.access < victim.access { // want `field access is accessed via sync/atomic elsewhere` `field access is accessed via sync/atomic elsewhere`
			victim = seg
		}
	}
	return victim
}

func (s *store) oldestAtomic() *segment {
	var victim *segment
	best := int64(0)
	for _, seg := range s.segs {
		if a := atomic.LoadInt64(&seg.access); victim == nil || a < best {
			victim, best = seg, a
		}
	}
	return victim
}

func (s *store) resetClock() {
	s.clock = 0 // want `field clock is accessed via sync/atomic elsewhere`
}

// size is only ever touched under the store lock in the real code; the
// fixture never touches it atomically, so plain access stays clean.
func (s *store) grow(seg *segment, n int64) { seg.size += n }
