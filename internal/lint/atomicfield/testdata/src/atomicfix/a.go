// Package atomicfix stages mixed atomic/plain field access for the
// atomicfield analyzer.
package atomicfix

import (
	"sync"
	"sync/atomic"
)

type metrics struct {
	records  uint64
	failed   uint64
	plain    int
	mu       sync.Mutex
	shutdown uint64
}

func (m *metrics) note() {
	atomic.AddUint64(&m.records, 1)
	atomic.AddUint64(&m.failed, 1)
	atomic.AddUint64(&m.shutdown, 1)
}

func (m *metrics) snapshot() (uint64, uint64) {
	r := atomic.LoadUint64(&m.records)
	f := m.failed // want `field failed is accessed via sync/atomic elsewhere`
	return r, f
}

func (m *metrics) reset() {
	m.records = 0 // want `field records is accessed via sync/atomic elsewhere`
}

func (m *metrics) escape() *uint64 {
	return &m.records // want `field records is accessed via sync/atomic elsewhere`
}

// plain is never touched atomically, so plain access is fine.
func (m *metrics) bump() { m.plain++ }

// The escape hatch: provably-unshared access keeps a justified allow.
func (m *metrics) drain() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	//ringvet:allow atomicfield read under mu after the last writer exited
	return m.shutdown
}
