package atomicfield_test

import (
	"testing"

	"ringsym/internal/lint/analysis/analysistest"
	"ringsym/internal/lint/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicfield.Analyzer, "atomicfix", "storeclock")
}
