// Package fsmguard enforces the single-goroutine contract of the engine's v3
// FSM scheduler: code reachable from a step handler must never block or
// synchronise, because every machine in a scenario is stepped by one
// scheduler goroutine and a blocked handler wedges the whole scenario.
package fsmguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"ringsym/internal/lint/analysis"
)

// enginePath is the import path of the engine package whose step-handler
// types mark the analyzed surface (fixtures provide a fake under the same
// path).
const enginePath = "ringsym/internal/engine"

// Analyzer flags blocking primitives reachable from FSM step handlers.
var Analyzer = &analysis.Analyzer{
	Name: "fsmguard",
	Doc: `code reachable from FSM step handlers must not block or synchronise

The v3 runtime (internal/engine fsm.go/sched.go) steps every agent's machine
on a single scheduler goroutine: a yield is the only legal way to wait, and
all engine state is mutated from that one goroutine, which is what entitles
the scheduler to run without locks.  A step handler that spawns a goroutine,
touches a channel, selects, or reaches for sync/sync/atomic either deadlocks
the scenario (the scheduler cannot advance other machines while a handler
blocks) or silently reintroduces the shared-state races the design removed.

A step handler is any function or literal whose results include both
engine.Yield and engine.Cont (the continuation-passing form every protocol is
written in), or the Machine shape Step(engine.Resume) (engine.Yield, bool).
The analyzer walks the intra-package static call graph from those seeds and
flags, anywhere in reachable code: go statements, channel operations and
channel types, select statements, and references to sync or sync/atomic.
Blocking wrappers that merely *build* a machine (RunStep/RunMachine callers)
are not seeds; only the handler bodies and what they call are held to the
contract.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Package-level function and method declarations by object, for the
	// intra-package call graph.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}

	// Seeds: declarations and literals with a step-handler signature.
	reached := map[*types.Func]bool{}
	var queue []*ast.FuncDecl
	addDecl := func(obj *types.Func) {
		if obj == nil || reached[obj] {
			return
		}
		fd, ok := decls[obj]
		if !ok {
			return
		}
		reached[obj] = true
		queue = append(queue, fd)
	}
	var seedLits []*ast.FuncLit
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if obj, ok := info.Defs[n.Name].(*types.Func); ok {
					if sig, ok := obj.Type().(*types.Signature); ok && isStepSig(sig) {
						addDecl(obj)
					}
				}
			case *ast.FuncLit:
				if sig, ok := info.Types[n].Type.(*types.Signature); ok && isStepSig(sig) {
					seedLits = append(seedLits, n)
				}
			}
			return true
		})
	}

	// BFS over static same-package calls.  Literal seeds contribute edges
	// too: a blocking wrapper's inline continuation calls the Step form it
	// wraps, which must then be scanned.
	follow := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := analysis.Callee(info, call); callee != nil && callee.Pkg() == pass.Pkg {
					addDecl(callee)
				}
			}
			return true
		})
	}
	for _, lit := range seedLits {
		follow(lit)
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		follow(fd)
	}

	// Roots to scan for violations: every reachable declaration, plus seed
	// literals not already contained in one (nested literals are covered by
	// scanning their enclosing root once).
	var roots []ast.Node
	for obj := range reached {
		roots = append(roots, decls[obj])
	}
	for _, lit := range seedLits {
		contained := false
		for _, r := range roots {
			if r.Pos() <= lit.Pos() && lit.End() <= r.End() {
				contained = true
				break
			}
		}
		if !contained {
			roots = append(roots, lit)
		}
	}

	for _, root := range roots {
		scan(pass, root)
	}
	return nil
}

// scan reports every blocking primitive under root.
func scan(pass *analysis.Pass, root ast.Node) {
	info := pass.TypesInfo
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement reachable from an FSM step handler (v3 machines run on one scheduler goroutine; spawn nothing)")
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send reachable from an FSM step handler (yield to the scheduler instead of blocking)")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive reachable from an FSM step handler (yield to the scheduler instead of blocking)")
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select statement reachable from an FSM step handler (yield to the scheduler instead of blocking)")
		case *ast.ChanType:
			pass.Reportf(n.Pos(), "channel type reachable from an FSM step handler (step handlers communicate only through yields)")
		case *ast.SelectorExpr:
			if obj := info.Uses[n.Sel]; obj != nil && obj.Pkg() != nil {
				if p := obj.Pkg().Path(); p == "sync" || p == "sync/atomic" {
					pass.Reportf(n.Pos(), "use of %s.%s reachable from an FSM step handler (all engine state is single-goroutine; step handlers must be lock-free)", p, obj.Name())
				}
			}
		}
		return true
	})
}

// isStepSig reports whether sig marks a v3 step handler: results including
// both engine.Yield and engine.Cont (the CPS form), or the Machine shape
// Step(engine.Resume) (engine.Yield, bool).
func isStepSig(sig *types.Signature) bool {
	res := sig.Results()
	hasYield, hasCont := false, false
	for i := 0; i < res.Len(); i++ {
		switch {
		case isEngineType(res.At(i).Type(), "Yield"):
			hasYield = true
		case isEngineType(res.At(i).Type(), "Cont"):
			hasCont = true
		}
	}
	if hasYield && hasCont {
		return true
	}
	if res.Len() == 2 && isEngineType(res.At(0).Type(), "Yield") {
		if b, ok := res.At(1).Type().(*types.Basic); ok && b.Kind() == types.Bool {
			p := sig.Params()
			return p.Len() == 1 && isEngineType(p.At(0).Type(), "Resume")
		}
	}
	return false
}

// isEngineType reports whether t is the named engine type with that name.
func isEngineType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == enginePath && obj.Name() == name
}
