package fsmguard_test

import (
	"testing"

	"ringsym/internal/lint/analysis/analysistest"
	"ringsym/internal/lint/fsmguard"
)

func TestFsmguard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), fsmguard.Analyzer, "fsmfix")
}
