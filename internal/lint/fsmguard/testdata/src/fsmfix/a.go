// Package fsmfix stages clean and violating step handlers for the fsmguard
// analyzer.
package fsmfix

import (
	"sync"
	"sync/atomic"

	"ringsym/internal/engine"
)

// Clean cases: nothing here may be flagged.

// pureStep is a step handler that only composes continuations.
func pureStep(n int, k func(int) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	if n < 0 {
		return engine.Abort(nil)
	}
	return pureHelper(n, k)
}

// pureHelper is reachable from pureStep and equally clean.
func pureHelper(n int, k func(int) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	return k(n * 2)
}

// blockingWrapper is NOT a step handler (it returns plain values), so its
// synchronisation is legitimate — the v1/v2 runtimes are built from exactly
// this kind of code.
func blockingWrapper() int {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	ch := make(chan int, 1)
	go func() { ch <- 41 }()
	return <-ch + 1
}

// wrapperWithInlineStep mixes both: the enclosing function may synchronise,
// but its inline continuation literal is a step handler and is scanned.
func wrapperWithInlineStep() {
	var mu sync.Mutex
	mu.Lock() // fine: outside the literal
	_ = func(k func() (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		mu.Unlock() // want `use of sync\.Unlock reachable from an FSM step handler`
		return k()
	}
	mu.Unlock()
}

// Violations.

var fixMu sync.Mutex

// lockingStep grabs a mutex from a step handler.
func lockingStep(k func() (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	fixMu.Lock() // want `use of sync\.Lock reachable from an FSM step handler`
	return k()
}

// atomicStep touches sync/atomic from a step handler.
func atomicStep(c *atomic.Int64, k func() (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) { // want `use of sync/atomic\.Int64 reachable from an FSM step handler`
	c.Add(1) // want `use of sync/atomic\.Add reachable from an FSM step handler`
	return k()
}

// indirectStep is clean itself but calls a helper that blocks.
func indirectStep(k func() (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	blockingHelper()
	return k()
}

// blockingHelper is only flagged because indirectStep reaches it.
func blockingHelper() {
	ch := make(chan int) // want `channel type reachable from an FSM step handler`
	go send(ch)          // want `go statement reachable from an FSM step handler`
	select {             // want `select statement reachable from an FSM step handler`
	case <-ch: // want `channel receive reachable from an FSM step handler`
	default:
	}
}

// send is reachable from blockingHelper (transitively from indirectStep).
func send(ch chan int) { // want `channel type reachable from an FSM step handler`
	ch <- 1 // want `channel send reachable from an FSM step handler`
}

// machine exercises the Machine-interface seed shape.
type machine struct{ done atomic.Bool }

func (m *machine) Step(in engine.Resume) (engine.Yield, bool) {
	m.done.Store(true) // want `use of sync/atomic\.Store reachable from an FSM step handler`
	return engine.Yield{}, true
}

// allowedStep exercises the escape hatch: the allow comment suppresses the
// finding, so no want is expected here.
func allowedStep(k func() (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	fixMu.Lock() //ringvet:allow fsmguard fixture exercises the escape hatch
	return k()
}
