// Package engine is a miniature fake of ringsym/internal/engine: just the
// step-handler types the fsmguard analyzer keys on.
package engine

// Resume is what a machine is resumed with.
type Resume struct{ Sum int64 }

// Yield is a machine's round-batch request.
type Yield struct{ k int }

// Cont is a resumable continuation.
type Cont func(in Resume) (Yield, Cont)

// Abort ends a machine with an error.
func Abort(err error) (Yield, Cont) { return Yield{}, nil }
