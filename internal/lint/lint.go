// Package lint is the catalogue of ringvet's analyzers: the repository's
// proof obligations and engineering invariants, re-stated as compile-time
// checks.
//
// Each analyzer lives in its own subpackage with analysistest fixtures under
// testdata/src exercising both a flagged and an allowed case; the kernel they
// are written against is internal/lint/analysis (a stdlib-only re-creation of
// the golang.org/x/tools/go/analysis surface, see its doc comment for why).
// cmd/ringvet runs the whole catalogue, either directly over package patterns
// or as a `go vet -vettool` unitchecker.  All analyzers honor the
// //ringvet:allow escape hatch (analysis/allow.go).
package lint

import (
	"ringsym/internal/lint/analysis"
	"ringsym/internal/lint/atomicfield"
	"ringsym/internal/lint/ctxflow"
	"ringsym/internal/lint/determinism"
	"ringsym/internal/lint/fsmguard"
	"ringsym/internal/lint/obsguard"
	"ringsym/internal/lint/taskreg"
)

// All returns every registered analyzer, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		ctxflow.Analyzer,
		determinism.Analyzer,
		fsmguard.Analyzer,
		obsguard.Analyzer,
		taskreg.Analyzer,
	}
}
