package ctxflow_test

import (
	"testing"

	"ringsym/internal/lint/analysis/analysistest"
	"ringsym/internal/lint/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxflow.Analyzer, "a/internal/b", "app")
}
