// Package app is outside internal/: root contexts are fine here, except
// inside functions that already receive one.
package app

import "context"

func main0() error {
	return work(context.Background(), 1) // roots belong in main-adjacent code
}

func relay(ctx context.Context) error {
	return work(context.Background(), 1) // want `context\.Background inside a function that receives ctx`
}

func work(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}
