// Package b is an internal fixture package: fresh root contexts are flagged
// here even outside context-receiving functions.
package b

import "context"

type job struct{ ctx context.Context }

func runUnthreaded() error {
	ctx := context.Background() // want `context\.Background in an internal package severs cancellation`
	return work(ctx, 1)
}

func runTODO() error {
	return work(context.TODO(), 1) // want `context\.TODO in an internal package severs cancellation`
}

func dropped(ctx context.Context) error {
	return work(context.Background(), 1) // want `context\.Background inside a function that receives ctx`
}

func droppedInClosure(ctx context.Context) func() error {
	return func() error {
		return work(context.Background(), 1) // want `context\.Background inside a function that receives ctx`
	}
}

func threaded(ctx context.Context) error {
	return work(ctx, 1)
}

func derived(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(sub, 1)
}

// Run is the documented compatibility wrapper shape: context-free by
// contract, annotated instead of rewritten.
func Run() error {
	//ringvet:allow ctxflow compatibility wrapper: the context-free API predates RunContext
	return work(context.Background(), 1)
}

func work(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}
