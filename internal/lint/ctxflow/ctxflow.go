// Package ctxflow enforces the cancellation-threading discipline: contexts
// flow from the caller, they are not minted mid-stack.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"ringsym/internal/lint/analysis"
)

// Analyzer flags context.Background()/TODO() where a caller's context should
// have been threaded through.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: `contexts are threaded from the caller, never minted mid-stack

A protocol run abandoned by its client must stop burning CPU within one
simulated round; that only works when every layer hands the caller's context
down (the class of gap the engine-v2 rewrite fixed by adding RunContext and
threading ctx end to end).  Two rules:

  - A function that receives a context.Context must not call
    context.Background() or context.TODO() anywhere in its body: a fresh
    root context silently severs the caller's cancellation exactly where it
    was supposed to flow.
  - In internal packages, context.Background()/TODO() is flagged everywhere
    (test files are never analyzed): roots belong in main and in deliberate,
    documented compatibility wrappers.  Such wrappers keep a
    //ringvet:allow ctxflow with the justification.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	internal := isInternal(pass.Pkg.Path())
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if !analysis.IsPkgFunc(fn, "context", "Background") && !analysis.IsPkgFunc(fn, "context", "TODO") {
			return true
		}
		if param := enclosingCtxParam(pass.TypesInfo, stack); param != "" {
			pass.Reportf(call.Pos(),
				"context.%s inside a function that receives %s: a fresh root severs the caller's cancellation — pass %s through",
				fn.Name(), param, param)
		} else if internal {
			pass.Reportf(call.Pos(),
				"context.%s in an internal package severs cancellation; thread a context from the caller (deliberate context-free wrappers carry a //ringvet:allow ctxflow)",
				fn.Name())
		}
		return true
	})
	return nil
}

// isInternal reports whether the import path contains an "internal" segment.
func isInternal(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

// enclosingCtxParam returns the name of a context.Context parameter of any
// function enclosing the innermost stack node, or "" when there is none.
func enclosingCtxParam(info *types.Info, stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			continue
		}
		for _, field := range ft.Params.List {
			tv, ok := info.Types[field.Type]
			if !ok || !isContextType(tv.Type) {
				continue
			}
			if len(field.Names) > 0 && field.Names[0].Name != "_" {
				return field.Names[0].Name
			}
		}
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
