package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const allowSrc = `package p

func f() {
	_ = 1 //ringvet:allow determinism benchmark path, wall clock by definition
	//ringvet:allow ctxflow compatibility wrapper
	_ = 2
	_ = 3 //ringvet:allow obsguard
	//ringvet:allow
	_ = 4
}
`

func parseAllowSrc(t *testing.T) (*token.FileSet, allowSet, []Finding) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set, malformed := collectAllows(fset, []*ast.File{f})
	return fset, set, malformed
}

func TestAllowSuppression(t *testing.T) {
	_, set, _ := parseAllowSrc(t)

	at := func(line int) token.Position {
		return token.Position{Filename: "allow.go", Line: line}
	}
	if !set.suppressed("determinism", at(4)) {
		t.Error("same-line allow does not suppress")
	}
	if !set.suppressed("ctxflow", at(6)) {
		t.Error("line-above allow does not suppress")
	}
	if set.suppressed("ctxflow", at(7)) {
		t.Error("allow leaks two lines down")
	}
	if set.suppressed("obsguard", at(4)) {
		t.Error("allow for one analyzer suppresses another")
	}
}

func TestAllowRequiresReason(t *testing.T) {
	_, set, malformed := parseAllowSrc(t)

	// Line 7: analyzer named but no reason; line 8: nothing at all.  Both
	// must surface as malformed instead of entering the set.
	if set.suppressed("obsguard", token.Position{Filename: "allow.go", Line: 7}) {
		t.Error("reason-less allow entered the suppression set")
	}
	if len(malformed) != 2 {
		t.Fatalf("want 2 malformed-allow findings, got %d: %v", len(malformed), malformed)
	}
	for _, f := range malformed {
		if f.Analyzer != "allow" || !strings.Contains(f.Message, "reason is mandatory") {
			t.Errorf("unexpected malformed-allow finding: %+v", f)
		}
	}
}
