// Package analysistest runs a ringvet analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixtures, the
// way golang.org/x/tools/go/analysis/analysistest does:
//
//	testdata/src/<pkg>/file.go
//
//	obs.Emit(ev) // want `obs\.Emit not dominated`
//
// A `// want` comment carries one or more Go string literals (quoted or
// backquoted), each a regular expression that must match a diagnostic
// reported on that line.  Every diagnostic must be wanted and every want
// must be matched; anything else fails the test.  Diagnostics suppressed by
// a //ringvet:allow comment never reach matching, so fixtures exercise the
// escape hatch by writing an allow with no want on the same line.
//
// Fixture packages may import fakes of repository packages (for example a
// miniature ringsym/internal/obs) by placing them in the same testdata/src
// tree; import paths not found there resolve to the real toolchain packages
// via export data, so fixtures use context, sync/atomic, time, ... freely.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ringsym/internal/lint/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads each fixture package from testdata/src, applies the analyzer,
// and matches its findings against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	imp, err := newFixtureImporter(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range pkgpaths {
		pkg, err := imp.loadTree(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, pkg, findings)
	}
}

// want is one expectation: a regexp that must match a finding on its line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
}

// wantRE matches the Go string literals of a want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func checkWants(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				for _, lit := range wantRE.FindAllString(text[i+len("// want "):], -1) {
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s: bad want literal %s: %v", posn, lit, err)
						continue
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, pattern, err)
						continue
					}
					wants = append(wants, &want{posn.Filename, posn.Line, re, pattern})
				}
			}
		}
	}

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.re == nil || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.re = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if w.re != nil {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.text)
		}
	}
}

// fixtureImporter resolves imports testdata-first, export-data second.
type fixtureImporter struct {
	fset    *token.FileSet
	src     string
	gc      types.Importer
	typed   map[string]*types.Package
	full    map[string]*analysis.Package
	loading map[string]bool
}

func newFixtureImporter(src string) (*fixtureImporter, error) {
	exports, err := stdExports(src)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	im := &fixtureImporter{
		fset:    fset,
		src:     src,
		typed:   map[string]*types.Package{},
		full:    map[string]*analysis.Package{},
		loading: map[string]bool{},
	}
	im.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return im, nil
}

// stdExports collects export-data files for every import in the fixture tree
// that the tree itself does not provide, in one `go list` invocation.
func stdExports(src string) (map[string]string, error) {
	outside := map[string]bool{}
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return err
			}
			if st, err := os.Stat(filepath.Join(src, p)); err != nil || !st.IsDir() {
				outside[p] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(outside) == 0 {
		return exports, nil
	}
	args := []string{"list", "-e", "-deps", "-export", "-f",
		`{{if .Export}}{{.ImportPath}} {{.Export}}{{end}}`, "--"}
	for p := range outside {
		args = append(args, p)
	}
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		return nil, fmt.Errorf("go list for fixture imports: %v", err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if path, file, ok := strings.Cut(line, " "); ok {
			exports[path] = file
		}
	}
	return exports, nil
}

// Import implements types.Importer.
func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.typed[path]; ok {
		return pkg, nil
	}
	if st, err := os.Stat(filepath.Join(im.src, path)); err == nil && st.IsDir() {
		pkg, err := im.loadTree(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return im.gc.Import(path)
}

// loadTree parses and typechecks one package out of the testdata/src tree.
func (im *fixtureImporter) loadTree(path string) (*analysis.Package, error) {
	if pkg, ok := im.full[path]; ok {
		return pkg, nil
	}
	if im.loading[path] {
		return nil, fmt.Errorf("import cycle through fixture %q", path)
	}
	im.loading[path] = true
	defer delete(im.loading, path)

	dir := filepath.Join(im.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %q has no Go files", path)
	}
	tpkg, info, err := analysis.Check(im.fset, path, files, im, "")
	if err != nil {
		return nil, err
	}
	pkg := &analysis.Package{
		Path:      path,
		Dir:       dir,
		Fset:      im.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	im.typed[path] = tpkg
	im.full[path] = pkg
	return pkg, nil
}
