package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one typed package under analysis.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the slice of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the package patterns in the module rooted at (or containing)
// dir and typechecks every matched package from source, with all
// dependencies — standard library included — imported from the compiler's
// export data via `go list -export`.  This is the x/tools go/packages
// LoadAllSyntax shape, built from the toolchain alone: one `go list` walk
// provides metadata and export files, the standard gc importer reads them,
// and only the matched packages themselves are parsed.
//
// Only non-test GoFiles are analyzed: the invariants ringvet encodes govern
// production code, and test files are where violations are deliberately
// staged (the analyzers' own fixtures, the registry's duplicate-Register
// test, ...).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := Check(fset, t.ImportPath, files, imp, "")
		if err != nil {
			return nil, fmt.Errorf("typechecking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:      t.ImportPath,
			Dir:       t.Dir,
			Fset:      fset,
			Files:     files,
			Types:     pkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// Check typechecks one package's parsed files with full types.Info, the way
// every ringvet entry point (driver, unitchecker, analysistest) needs it.
// goVersion, when non-empty ("go1.24"), bounds the accepted language level —
// the unitchecker receives it from the build system.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp, GoVersion: goVersion}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
