package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces the suppression comment every analyzer honors:
//
//	//ringvet:allow <analyzer> <reason...>
//
// The comment suppresses diagnostics of the named analyzer on its own line
// and on the line directly below it, so both placements read naturally:
//
//	x := now()                    //ringvet:allow determinism wall time is telemetry-only
//
//	//ringvet:allow ctxflow compatibility wrapper, context-free by contract
//	return RunContext(context.Background(), nw, protocol)
//
// The reason is mandatory: an allow without a justification is itself
// reported (as the pseudo-analyzer "allow"), so the escape hatch cannot decay
// into bare switch-it-off markers.
const allowPrefix = "//ringvet:allow"

// allowSet indexes allow comments by (file, line, analyzer).
type allowSet map[allowKey]bool

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// suppressed reports whether a diagnostic of the named analyzer at posn is
// covered by an allow comment on the same line or the line above.
func (s allowSet) suppressed(analyzer string, posn token.Position) bool {
	return s[allowKey{posn.Filename, posn.Line, analyzer}] ||
		s[allowKey{posn.Filename, posn.Line - 1, analyzer}]
}

// collectAllows scans the files' comments for //ringvet:allow markers.
// Malformed markers are returned as findings instead of entries: a marker
// that names no analyzer or gives no reason must fail the run, not silently
// allow nothing (or worse, look like it allows something).
func collectAllows(fset *token.FileSet, files []*ast.File) (allowSet, []Finding) {
	set := allowSet{}
	var malformed []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				posn := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Finding{
						Analyzer: "allow",
						Pos:      posn,
						Message:  "malformed ringvet:allow: want \"//ringvet:allow <analyzer> <reason>\" (reason is mandatory)",
					})
					continue
				}
				set[allowKey{posn.Filename, posn.Line, fields[0]}] = true
			}
		}
	}
	return set, malformed
}
