// Package analysis is the kernel of ringvet, the repository's static-analysis
// suite: a deliberately small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface the analyzers in internal/lint/...
// actually use.
//
// The repository has a standing constraint of zero external modules (the
// build must work from a bare toolchain with no module proxy), so the usual
// foundation — x/tools' go/analysis, go/packages and analysistest — is not
// available.  This package provides the same three pieces from the standard
// library alone:
//
//   - Analyzer/Pass/Diagnostic (this file): the x/tools-shaped contract an
//     analyzer is written against.  The shapes match field-for-field for the
//     subset we use, so migrating to the real go/analysis later is a
//     mechanical import swap, not a rewrite.
//   - a package loader (load.go): `go list -export` metadata plus the
//     standard gc export-data importer gives full go/types information for
//     every package in the module without compiling anything twice.
//   - the //ringvet:allow escape hatch (allow.go): file-scoped suppression
//     honored uniformly for every analyzer, applied by the driver after the
//     analyzers run so no analyzer can forget it.
//
// Analyzers are pure functions from a typed package to diagnostics: they
// must not look at the filesystem, the environment, or mutate shared state,
// so the driver may run them in any order over any subset of packages.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one named invariant check.  The field shapes mirror
// golang.org/x/tools/go/analysis.Analyzer for the subset ringvet uses.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //ringvet:allow
	// comments.  It must be a short stable lowercase identifier ([a-z][a-z0-9]*),
	// never a URL: allow comments referencing it live in source files for
	// years.
	Name string

	// Doc is the analyzer's documentation: first line a one-sentence summary,
	// then the invariant it enforces and the accepted idioms.
	Doc string

	// Run applies the analyzer to one package, reporting diagnostics through
	// pass.Report.  The returned error aborts the whole ringvet run (reserved
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// A Pass provides one analyzer run with a single typed package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.diagnostics = append(p.diagnostics, d) }

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Finding is a positioned diagnostic attributed to its analyzer, as
// produced by Run after //ringvet:allow filtering.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package, filters the diagnostics
// through the packages' //ringvet:allow comments, and returns the surviving
// findings sorted by position.  Malformed allow comments (missing analyzer
// name or empty reason) surface as findings under the pseudo-analyzer name
// "allow" so they cannot silently suppress nothing.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		allows, malformed := collectAllows(pkg.Fset, pkg.Files)
		findings = append(findings, malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
			}
			for _, d := range pass.diagnostics {
				posn := pkg.Fset.Position(d.Pos)
				if allows.suppressed(a.Name, posn) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: posn, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
