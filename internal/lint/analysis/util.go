package analysis

import (
	"go/ast"
	"go/types"
)

// WithStack walks every file, invoking fn with each node and the stack of
// its ancestors (stack[0] is the *ast.File, stack[len-1] is n itself).
// Returning false prunes the subtree.
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}

// Callee resolves the function or method a call expression invokes, or nil
// for calls through function values, type conversions and built-ins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function pkgPath.name.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// EnclosingFunc returns the innermost function declaration or literal on the
// stack, and the index at which it sits.
func EnclosingFunc(stack []ast.Node) (ast.Node, int) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i], i
		}
	}
	return nil, -1
}

// FuncBody returns the body of a node returned by EnclosingFunc.
func FuncBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}
