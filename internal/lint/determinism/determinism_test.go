package determinism_test

import (
	"testing"

	"ringsym/internal/lint/analysis/analysistest"
	"ringsym/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), determinism.Analyzer, "campaign", "fleet", "store", "other")
}
