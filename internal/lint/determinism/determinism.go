// Package determinism enforces the golden-artefacts discipline statically:
// in the packages that produce Table I/II and the sweep artefacts, nothing
// nondeterministic may flow into the output bytes.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"ringsym/internal/lint/analysis"
)

// scopeSegments are the path segments naming the artefact-producing
// packages: a package is in scope when its import path contains one of
// these as a whole segment (so ringsym/internal/campaign and
// ringsym/internal/task/tasktest are in scope, ringsym/internal/lint is
// not).
var scopeSegments = map[string]bool{
	"campaign": true,
	"canon":    true,
	"task":     true,
	"eval":     true,
	"ring":     true,
	// fleet merges and re-orders worker streams into the same byte-stable
	// artefacts the campaign runner exports, so its merge/expansion paths
	// are held to the same clock and iteration-order discipline.
	"fleet": true,
	// store persists campaign outcomes verbatim and replays them into the
	// same artefacts: a wall-clock value or a map-order walk reaching a
	// segment writer would smuggle nondeterminism into bytes that survive
	// process restarts.
	"store": true,
}

// Analyzer flags nondeterminism sources in artefact-producing packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: `artefact-producing packages must stay byte-deterministic

The repository's core discipline is that Table I/II and the sweep artefacts
are byte-identical across rewrites (testdata/golden/SHA256SUMS pins them in
CI).  In the packages that produce them — campaign, canon, task, eval, ring —
the analyzer flags the three nondeterminism sources that have historically
threatened that bar:

  - time.Now / time.Since: wall-clock values must never influence artefact
    bytes.  Timing for telemetry is fine behind a //ringvet:allow stating so.
  - the global math/rand source (rand.Intn, rand.Shuffle, ...): schedules
    must come from a seeded rand.New(rand.NewSource(seed)); constructor
    calls are allowed, shared-source calls are not.
  - ranging over a map and letting the iteration order escape: writing or
    encoding inside the loop body, or appending to an outer slice that is
    never passed to a sort function in the same function.  The accepted
    idiom is collect-keys-then-sort before anything order-sensitive.

The map check is syntactic and function-local by design: it accepts a sort
anywhere in the same function and does not chase values across calls, so it
catches the way artefact code is actually written without a dataflow engine.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.FuncDecl:
				checkMapRanges(pass, n)
			}
			return true
		})
	}
	return nil
}

func inScope(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if scopeSegments[seg] {
			return true
		}
	}
	return false
}

// randConstructors are the math/rand calls that build a seeded private
// source and are therefore deterministic.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(),
				"time.%s in artefact-producing package %s: wall-clock values must not reach deterministic artefacts",
				fn.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"global math/rand %s uses the shared process-wide source; derive schedules from rand.New(rand.NewSource(seed))",
				fn.Name())
		}
	}
}

// checkMapRanges inspects every map-range in fn for iteration order leaking
// into writers, encoders or unsorted collected slices.
func checkMapRanges(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass.TypesInfo, rng) {
			return true
		}

		var collected []*types.Var // outer slices appended to inside the loop
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := writerCall(pass.TypesInfo, n); ok {
					pass.Reportf(n.Pos(),
						"%s inside a map range: iteration order flows into the output; iterate a sorted copy of the keys", name)
				}
				if v := appendTarget(pass.TypesInfo, rng, n); v != nil {
					collected = append(collected, v)
				}
			}
			return true
		})

		for _, v := range collected {
			if !sortedInFunc(pass.TypesInfo, fn, v) {
				pass.Reportf(rng.Pos(),
					"slice %s collects map keys/values but is never sorted in this function: iteration order escapes", v.Name())
			}
		}
		return true
	})
}

func isMapRange(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// writerCall recognises calls that serialise their arguments in call order:
// fmt print family to a writer or stdout, and Write/Encode-shaped methods
// (io.Writer, strings.Builder, json.Encoder, csv.Writer, ...).
func writerCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.Callee(info, call)
	if fn == nil {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
		return "fmt." + fn.Name(), true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
		return "fmt." + fn.Name(), true
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "EncodeToken":
			return fn.Name(), true
		}
	}
	return "", false
}

// appendTarget returns the variable v in `v = append(v, ...)` when v is
// declared outside the range statement, else nil.
func appendTarget(info *types.Info, rng *ast.RangeStmt, call *ast.CallExpr) *types.Var {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[target].(*types.Var)
	if !ok {
		return nil
	}
	if v.Pos() >= rng.Pos() && v.Pos() <= rng.End() {
		return nil // loop-local accumulator: its use is someone else's problem
	}
	return v
}

// sortedInFunc reports whether v appears as an argument to a sort/slices
// ordering call anywhere in fn.
func sortedInFunc(info *types.Info, fn *ast.FuncDecl, v *types.Var) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		callee := analysis.Callee(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == v {
				found = true
			}
		}
		return true
	})
	return found
}
