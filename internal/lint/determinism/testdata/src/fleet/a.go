// Package fleet is a fixture named after the distributed-coordination
// package so it lands in the determinism analyzer's scope: the lease merger
// re-serialises worker streams into byte-stable artefacts, so its paths obey
// the same clock and iteration-order rules as the campaign runner.
package fleet

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

func leaseDeadline() time.Time {
	return time.Now() // want `time\.Now in artefact-producing package`
}

func staleFor(last time.Time) time.Duration {
	return time.Since(last) // want `time\.Since in artefact-producing package`
}

// Backoff jitter comes from a seeded private source, never the global one.

func jitter(base int) int {
	r := rand.New(rand.NewSource(1)) // constructor: fine
	return base/2 + r.Intn(base)     // method on a private source: fine
}

func sloppyJitter(base int) int {
	return rand.Intn(base) // want `global math/rand Intn uses the shared process-wide source`
}

// A merger draining pending lines must not let map order reach the output.

func drainUnsorted(w io.Writer, pending map[int][]byte) {
	for idx, line := range pending {
		fmt.Fprintf(w, "%d:%s\n", idx, line) // want `fmt\.Fprintf inside a map range`
	}
}

func drainSorted(w io.Writer, pending map[int][]byte) {
	idxs := make([]int, 0, len(pending))
	for i := range pending {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		fmt.Fprintf(w, "%d:%s\n", i, pending[i])
	}
}

func watermarkDrainIsFine(w io.Writer, pending map[int][]byte, next, total int) {
	// Keyed lookups in watermark order never observe iteration order.
	for ; next < total; next++ {
		line, ok := pending[next]
		if !ok {
			return
		}
		fmt.Fprintf(w, "%s\n", line)
	}
}
