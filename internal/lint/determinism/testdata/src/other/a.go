// Package other is outside the determinism scope: nothing here may be
// flagged even though it does everything the analyzer dislikes.
package other

import (
	"math/rand"
	"time"
)

func wall() int64 { return time.Now().UnixNano() }

func roll() int { return rand.Intn(6) }
