// Package store is a fixture named after the persistent result store so it
// lands in the determinism analyzer's scope: the store persists campaign
// outcomes verbatim and replays them into byte-stable artefacts, so nothing
// nondeterministic may reach the bytes a segment writer appends.
package store

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// A record body stamped with the wall clock would differ across otherwise
// identical runs — and the difference would survive restarts.

func stampRecord(body []byte) []byte {
	now := time.Now() // want `time\.Now in artefact-producing package`
	return append(body, []byte(now.String())...)
}

func recordAge(wrote time.Time) time.Duration {
	return time.Since(wrote) // want `time\.Since in artefact-producing package`
}

// Segment ids must be allocated sequentially, never drawn from the shared
// process-wide source.

func sloppySegmentID() int64 {
	return rand.Int63() // want `global math/rand Int63 uses the shared process-wide source`
}

func seededProbe(n int) int {
	r := rand.New(rand.NewSource(7)) // constructor: fine
	return r.Intn(n)
}

// A compaction that walks the index map directly would rewrite live records
// in map-iteration order; the store walks segments in id order instead.

func compactUnsorted(w io.Writer, idx map[string][]byte) {
	for key, rec := range idx {
		fmt.Fprintf(w, "%s=%s\n", key, rec) // want `fmt\.Fprintf inside a map range`
	}
}

func compactSorted(w io.Writer, idx map[string][]byte) {
	keys := make([]string, 0, len(idx))
	for k := range idx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%s\n", k, idx[k])
	}
}

// Delete-only walks (dropping a segment's keys from the index) never let
// iteration order escape, so they stay clean.

func dropSegment(idx map[string]int64, seg int64) int {
	dropped := 0
	for key, owner := range idx {
		if owner == seg {
			delete(idx, key)
			dropped++
		}
	}
	return dropped
}
