// Package campaign is a fixture named after a real artefact-producing
// package so it lands in the determinism analyzer's scope.
package campaign

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Wall-clock reads must not reach artefact bytes.

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in artefact-producing package`
}

func measured(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in artefact-producing package`
}

func telemetryWall() time.Duration {
	//ringvet:allow determinism wall time feeds the event spine only, never a record
	start := time.Now()
	//ringvet:allow determinism wall time feeds the event spine only, never a record
	return time.Since(start)
}

// Schedules must come from a seeded private source, not the global one.

func schedule(n int) []int {
	r := rand.New(rand.NewSource(42)) // constructors are fine
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.Intn(n)) // method on a private source: fine
	}
	return out
}

func sloppySchedule(n int) int {
	return rand.Intn(n) // want `global math/rand Intn uses the shared process-wide source`
}

func sloppyShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand Shuffle`
}

// Map iteration order must not escape into writers or unsorted slices.

func exportUnsorted(w io.Writer, rows map[string]int) {
	for k, v := range rows {
		fmt.Fprintf(w, "%s,%d\n", k, v) // want `fmt\.Fprintf inside a map range`
	}
}

func exportSorted(w io.Writer, rows map[string]int) {
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s,%d\n", k, rows[k])
	}
}

func collectNoSort(rows map[string]int) []string {
	var keys []string
	for k := range rows { // want `slice keys collects map keys/values but is never sorted`
		keys = append(keys, k)
	}
	return keys
}

func sliceRangeIsFine(w io.Writer, rows []string) {
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
}

func aggregateIsFine(rows map[string]int) int {
	total := 0
	for _, v := range rows {
		total += v
	}
	return total
}
