package taskreg_test

import (
	"testing"

	"ringsym/internal/lint/analysis/analysistest"
	"ringsym/internal/lint/taskreg"
)

func TestTaskreg(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), taskreg.Analyzer, "taskregfix")
}
