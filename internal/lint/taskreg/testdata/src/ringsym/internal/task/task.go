// Package task is a miniature of the real registry, just enough API for the
// taskreg fixtures to typecheck.  Its Spec interface is deliberately looser
// than the real one (Name only) so the analyzer — not the compiler — is what
// catches a spec missing Verify or MapOutcome.
package task

type Outcome struct{ Rounds int }

type Map struct{ Phase int }

type Spec interface {
	Name() string
}

func Register(spec Spec) {}
