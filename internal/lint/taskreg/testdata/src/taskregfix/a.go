// Package taskregfix stages registry-convention violations for the taskreg
// analyzer.
package taskregfix

import "ringsym/internal/task"

// goodSpec follows every convention.
type goodSpec struct{}

func (goodSpec) Name() string                                         { return "good" }
func (goodSpec) Verify(out task.Outcome) error                        { return nil }
func (goodSpec) MapOutcome(out task.Outcome, m task.Map) task.Outcome { return out }

// upperSpec's name would fragment the case-normalised cache key space.
type upperSpec struct{}

func (upperSpec) Name() string                                         { return "Upper" } // want `task name "Upper" must be non-empty lowercase`
func (upperSpec) Verify(out task.Outcome) error                        { return nil }
func (upperSpec) MapOutcome(out task.Outcome, m task.Map) task.Outcome { return out }

// emptySpec would panic Register at runtime; the analyzer catches it first.
type emptySpec struct{}

func (emptySpec) Name() string                                         { return "" } // want `task name "" must be non-empty lowercase`
func (emptySpec) Verify(out task.Outcome) error                        { return nil }
func (emptySpec) MapOutcome(out task.Outcome, m task.Map) task.Outcome { return out }

// bareSpec skips the verification and cache-translation obligations.
type bareSpec struct{}

func (bareSpec) Name() string { return "bare" }

func init() {
	task.Register(goodSpec{})
	task.Register(upperSpec{})
	task.Register(emptySpec{})
	task.Register(bareSpec{}) // want `registered spec bareSpec does not declare Verify` `registered spec bareSpec does not declare MapOutcome`
}

// Lazy registration races Lookup and makes the catalogue call-order
// dependent.
func registerLate() {
	task.Register(goodSpec{}) // want `task\.Register outside init`
}

// The escape hatch: a test-support registrar with a justification.
func registerForBench() {
	//ringvet:allow taskreg bench harness registers throwaway specs before any Lookup
	task.Register(goodSpec{})
}
