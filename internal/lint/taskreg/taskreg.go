// Package taskreg enforces the task-registry conventions that
// internal/task documents but the compiler cannot: registration happens at
// init, names are stable lowercase keys, and specs carry the verification
// and cache-translation obligations.
package taskreg

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"ringsym/internal/lint/analysis"
)

// taskPath is the import path of the registry package (fixtures provide a
// fake under the same path).
const taskPath = "ringsym/internal/task"

// Analyzer flags task.Register misuse.
var Analyzer = &analysis.Analyzer{
	Name: "taskreg",
	Doc: `task.Register is called from init, with lowercase names and full Specs

The registry contract (internal/task doc comment) is that every importer of
the package sees the same catalogue: registration therefore happens in init
functions only, never lazily from request paths where it would race with
Lookup and make the visible task set depend on call order.  The analyzer
flags:

  - task.Register calls outside a package-level func init
  - Name() methods of registered spec types returning a literal that is
    empty or not all-lowercase (names are case-normalised cache-key
    components; Register panics at runtime, this catches it at vet time)
  - registered types that do not declare Verify or MapOutcome — the two
    obligations (outcome re-verification against ground truth, and orbit
    frame translation for the memo cache) that make a task safe to sweep
    and to serve cached`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	checkedNames := map[types.Object]bool{}
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Name() != "Register" || fn.Pkg() == nil || fn.Pkg().Path() != taskPath {
			return true
		}
		if !inInit(stack) {
			pass.Reportf(call.Pos(),
				"task.Register outside init: the registry must be complete before any Lookup, so registration happens at package init only")
		}
		if len(call.Args) != 1 {
			return true
		}
		t := concreteType(pass.TypesInfo.Types[call.Args[0]].Type)
		if t == nil {
			return true // interface-typed value: nothing to inspect statically
		}
		for _, method := range []string{"Verify", "MapOutcome"} {
			if obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, pass.Pkg, method); obj == nil {
				pass.Reportf(call.Args[0].Pos(),
					"registered spec %s does not declare %s: every task owns its verification and cache frame translation", t.Obj().Name(), method)
			}
		}
		if !checkedNames[t.Obj()] {
			checkedNames[t.Obj()] = true
			checkNameLiteral(pass, t)
		}
		return true
	})
	return nil
}

// inInit reports whether the innermost enclosing declared function is a
// package-level func init.
func inInit(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Recv == nil && fd.Name.Name == "init"
		}
	}
	return false
}

// concreteType unwraps pointers and returns the named type of a registered
// value, or nil for interfaces and unnamed types.
func concreteType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || types.IsInterface(named) {
		return nil
	}
	return named
}

// checkNameLiteral validates the registry key when the spec's Name method,
// declared in the analyzed package, is a single `return "literal"`.
func checkNameLiteral(pass *analysis.Pass, t *types.Named) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Name" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if receiverType(pass.TypesInfo, fd) != t.Obj() {
				continue
			}
			if len(fd.Body.List) != 1 {
				return
			}
			ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return
			}
			lit, ok := ast.Unparen(ret.Results[0]).(*ast.BasicLit)
			if !ok {
				return
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return
			}
			if name == "" || name != strings.ToLower(name) {
				pass.Reportf(lit.Pos(),
					"task name %s must be non-empty lowercase: names are case-normalised registry and cache keys", lit.Value)
			}
			return
		}
	}
}

// receiverType resolves the type object a method's receiver is declared on.
func receiverType(info *types.Info, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	expr := fd.Recv.List[0].Type
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}
