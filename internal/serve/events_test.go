package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ringsym/internal/campaign"
	"ringsym/internal/obs"
	"ringsym/internal/serve"
)

// openEvents opens GET /v1/events with the given query string and returns the
// live response; the header has been received, so the subscription exists
// before the caller triggers any work.
func openEvents(t *testing.T, ctx context.Context, url, query string) *http.Response {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/events"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type = %q", ct)
	}
	return resp
}

// TestEventsEndpoint: a one-shot /v1/run is fully visible on the stream — the
// accepted request, the scenario starting and the scenario finishing, with the
// finish carrying the record's annotations.
func TestEventsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2, Cache: campaign.NewCache(0)})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp := openEvents(t, ctx, ts.URL, "?level=debug")
	defer resp.Body.Close()

	sc := campaign.Scenario{Task: campaign.TaskCoordinate, Model: "basic", N: 8, Seed: 1}
	if rec := decodeRecord(t, postJSON(t, ts.URL+"/v1/run", sc)); rec.Status != campaign.StatusOK {
		t.Fatalf("run record: %+v", rec)
	}

	// Read the stream until the three lifecycle events arrived (the engine may
	// interleave its own debug events); bound the wait with the context.
	want := map[obs.Type]bool{obs.ServeRequest: false, obs.ScenarioStart: false, obs.ScenarioFinish: false}
	go func() {
		time.Sleep(10 * time.Second)
		cancel() // unblocks a stream missing events into scanner EOF
	}()
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(scan.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scan.Text(), err)
		}
		if ev.Nanos <= 0 {
			t.Errorf("event without timestamp: %+v", ev)
		}
		switch ev.Type {
		case obs.ServeRequest:
			if ev.Endpoint != "/v1/run" {
				continue // another test's poll on a shared counter path
			}
		case obs.ScenarioStart:
			if ev.Task != string(sc.Task) || ev.N != sc.N || ev.Seed != sc.Seed {
				t.Errorf("scenario.start fields: %+v", ev)
			}
		case obs.ScenarioFinish:
			if ev.Status != string(campaign.StatusOK) || ev.Cache != "miss" || ev.Rounds <= 0 {
				t.Errorf("scenario.finish fields: %+v", ev)
			}
		default:
			continue
		}
		want[ev.Type] = true
		if want[obs.ServeRequest] && want[obs.ScenarioStart] && want[obs.ScenarioFinish] {
			return
		}
	}
	t.Fatalf("stream ended before all lifecycle events arrived: %v (scan err %v)", want, scan.Err())
}

// TestEventsFilters: type and level filters are applied server-side — a
// subscriber asking for scenario.finish at info level sees exactly the
// completion events, none of the debug chatter.
func TestEventsFilters(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp := openEvents(t, ctx, ts.URL, "?types=scenario.finish&level=info")
	defer resp.Body.Close()

	const runs = 3
	for seed := int64(1); seed <= runs; seed++ {
		decodeRecord(t, postJSON(t, ts.URL+"/v1/run",
			campaign.Scenario{Task: campaign.TaskCoordinate, Model: "basic", N: 8, Seed: seed}))
	}

	go func() {
		time.Sleep(10 * time.Second)
		cancel()
	}()
	scan := bufio.NewScanner(resp.Body)
	got := 0
	for scan.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(scan.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type != obs.ScenarioFinish {
			t.Fatalf("filtered stream leaked %q", ev.Type)
		}
		if ev.Level < obs.LevelInfo {
			t.Fatalf("filtered stream leaked level %v", ev.Level)
		}
		if got++; got == runs {
			return
		}
	}
	t.Fatalf("got %d scenario.finish events, want %d (scan err %v)", got, runs, scan.Err())
}

func TestEventsBadLevel(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/events?level=loud")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestEventsBackpressure is the backpressure acceptance bar: a subscriber
// that never reads its /v1/events stream must not slow down 64 parallel
// /v1/run clients — the subscriber's bounded queue fills, further events are
// dropped and counted, and every run completes correctly.
func TestEventsBackpressure(t *testing.T) {
	cache := campaign.NewCache(0)
	// A tiny event buffer so the stalled subscriber demonstrably overflows.
	pool, ts := newTestServer(t, serve.Options{Cache: cache, EventBuffer: 8})

	// The stalled subscriber: opens the stream at debug level (every event
	// matches) and then never reads the body until the test ends.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stalled := openEvents(t, ctx, ts.URL, "?level=debug")
	defer stalled.Body.Close()

	scenarios := []campaign.Scenario{
		{Task: campaign.TaskCoordinate, Model: "basic", N: 8, Seed: 1},
		{Task: campaign.TaskCoordinate, Model: "basic", N: 8, Seed: 1, Phase: 3},
		{Task: campaign.TaskCoordinate, Model: "lazy", N: 8, Seed: 1, MixedChirality: true},
		{Task: campaign.TaskCoordinate, Model: "basic", N: 9, Seed: 2},
		{Task: campaign.TaskDiscover, Model: "perceptive", N: 8, Seed: 1},
		{Task: campaign.TaskDiscover, Model: "basic", N: 9, Seed: 1, MixedChirality: true},
		{Task: campaign.TaskCoordinate, Model: "perceptive", N: 12, Seed: 5, MixedChirality: true},
		{Task: campaign.TaskCoordinate, Model: "lazy", N: 9, Seed: 7},
	}
	const clientsPerScenario = 8 // 64 requests total
	var wg sync.WaitGroup
	for i := range scenarios {
		for c := 0; c < clientsPerScenario; c++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp := postJSON(t, ts.URL+"/v1/run", scenarios[i])
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status = %d", scenarios[i].Key(), resp.StatusCode)
					resp.Body.Close()
					return
				}
				if rec := decodeRecord(t, resp); rec.Status != campaign.StatusOK {
					t.Errorf("%s: record %+v", scenarios[i].Key(), rec)
				}
			}(i)
		}
	}

	// All 64 runs must complete promptly despite the wedged subscriber; a
	// blocking bus would deadlock the worker pool here.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("runs blocked behind a stalled /v1/events subscriber")
	}

	total := uint64(len(scenarios) * clientsPerScenario)
	m := pool.Snapshot()
	if m.Records != total || m.Failed != 0 {
		t.Fatalf("metrics: %+v", m)
	}
	// The drop-and-count contract is visible: far more than 8 events were
	// published at the stalled subscriber, so drops must have been counted and
	// surfaced in the snapshot.
	if m.Events.Subscribers < 1 || m.Events.Published == 0 || m.Events.Dropped == 0 {
		t.Fatalf("bus accounting after stalled subscriber: %+v", m.Events)
	}
}

// TestMetricsPrometheus: the text exposition carries the serve-layer counters
// and every obs-registered metric, well-formed (# HELP/# TYPE per sample) and
// consistent with the JSON snapshot.
func TestMetricsPrometheus(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2, Cache: campaign.NewCache(0)})
	decodeRecord(t, postJSON(t, ts.URL+"/v1/run",
		campaign.Scenario{Task: campaign.TaskCoordinate, Model: "basic", N: 8, Seed: 1}))

	resp, err := http.Get(ts.URL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}

	samples := map[string]string{}
	types := map[string]string{}
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		line := scan.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		samples[name] = value
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}

	for name, typ := range map[string]string{
		"ringsym_serve_records_total":        "counter",
		"ringsym_serve_run_requests_total":   "counter",
		"ringsym_serve_uptime_seconds":       "gauge",
		"ringsym_serve_workers":              "gauge",
		"ringsym_memo_entries":               "gauge",
		"ringsym_memo_misses_total":          "counter",
		"ringsym_engine_rounds_total":        "counter",
		"ringsym_engine_leap_batches_total":  "counter",
		"ringsym_obs_events_dropped_total":   "counter",
		"ringsym_obs_events_published_total": "counter",
		"ringsym_obs_subscribers":            "gauge",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("exposition lacks %s", name)
		}
		if got := types[name]; got != typ {
			t.Errorf("%s TYPE = %q, want %q", name, got, typ)
		}
	}
	if samples["ringsym_serve_records_total"] != "1" {
		t.Errorf("records_total = %q, want 1", samples["ringsym_serve_records_total"])
	}
	if samples["ringsym_serve_workers"] != "2" {
		t.Errorf("workers = %q, want 2", samples["ringsym_serve_workers"])
	}
	if samples["ringsym_memo_entries"] != "1" {
		t.Errorf("memo entries = %q, want 1", samples["ringsym_memo_entries"])
	}
	if samples["ringsym_engine_rounds_total"] == "0" {
		t.Error("engine rounds total is zero after a run")
	}
}

// TestPprofGated: the profiling handlers exist only when opted in.
func TestPprofGated(t *testing.T) {
	_, off := newTestServer(t, serve.Options{Workers: 1})
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without opt-in: status = %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, serve.Options{Workers: 1, Pprof: true})
	resp2, err := http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof with opt-in: status = %d", resp2.StatusCode)
	}
}
