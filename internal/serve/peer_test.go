package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"reflect"
	"testing"

	"ringsym/internal/campaign"
	"ringsym/internal/serve"
	"ringsym/internal/store"
)

// peerMatrix is a small symmetric sweep: every solvable setting appears in
// 6 symmetric variants (3 phases × 2 reflections) that collapse to one
// computed orbit.
func peerMatrix() campaign.Matrix {
	return campaign.Matrix{
		Sizes:       []int{8},
		Seeds:       []int64{1, 2},
		Phases:      []int{0, 1, 2},
		Reflections: []bool{false, true},
	}
}

// runCampaignStream posts the matrix to a daemon and decodes the NDJSON
// record stream.
func runCampaignStream(t *testing.T, baseURL string, m campaign.Matrix) []campaign.Record {
	t.Helper()
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/campaign", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign status %d", resp.StatusCode)
	}
	var recs []campaign.Record
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec campaign.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad record line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestPeerFillOneComputeFleetWide is the fleet acceptance test of the store
// tier: two daemons with private stores, one warmed by a symmetric sweep,
// the other cold but configured with the warm one as a cache peer.  The
// cold daemon's sweep must perform zero computations — every orbit is
// fetched over GET /v1/cache/<key> and promoted — so the fleet-wide total
// stays exactly one compute per orbit.
func TestPeerFillOneComputeFleetWide(t *testing.T) {
	scenarios, err := peerMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}

	// Warm daemon: compute the sweep once into its cache and store.
	warmStore, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer warmStore.Close()
	warmCache := campaign.NewCache(0)
	warmCache.AttachTier(warmStore, nil)
	_, warmTS := newTestServer(t, serve.Options{Cache: warmCache, Store: warmStore})
	warmRecs := runCampaignStream(t, warmTS.URL, peerMatrix())
	if len(warmRecs) != len(scenarios) {
		t.Fatalf("warm sweep returned %d records, want %d", len(warmRecs), len(scenarios))
	}
	warmStats := warmCache.Stats()
	orbits := warmStats.Misses
	if orbits == 0 {
		t.Fatal("warm sweep computed nothing")
	}

	// Cold daemon: empty store, warm daemon as its one peer.
	coldStore, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer coldStore.Close()
	peers := store.NewPeers("", nil)
	peers.Set([]string{warmTS.URL})
	coldCache := campaign.NewCache(0)
	coldCache.AttachTier(coldStore, peers)
	_, coldTS := newTestServer(t, serve.Options{Cache: coldCache, Store: coldStore})
	coldRecs := runCampaignStream(t, coldTS.URL, peerMatrix())
	if len(coldRecs) != len(scenarios) {
		t.Fatalf("cold sweep returned %d records, want %d", len(coldRecs), len(scenarios))
	}

	coldStats := coldCache.Stats()
	if coldStats.Misses != 0 {
		t.Fatalf("cold daemon computed %d scenarios; fleet-wide compute must stay %d (stats %+v)", coldStats.Misses, orbits, coldStats)
	}
	if coldStats.PeerHits != orbits {
		t.Errorf("peer hits = %d, want one per orbit (%d)", coldStats.PeerHits, orbits)
	}
	// The warm daemon computed nothing extra while serving its peer.
	if after := warmCache.Stats(); after.Misses != orbits {
		t.Errorf("warm daemon recomputed: misses %d -> %d", orbits, after.Misses)
	}
	// Peer hits were promoted into the cold daemon's own store.
	if puts := coldStore.Stats().Puts; puts != orbits {
		t.Errorf("cold store holds %d promoted records, want %d", puts, orbits)
	}

	// Byte identity: the peer-served records equal the computed ones modulo
	// the cache annotation, and solvable cold records are never misses.
	for i := range coldRecs {
		w, g := warmRecs[i], coldRecs[i]
		if g.Status != campaign.StatusUnsolvable && g.Cache == "miss" {
			t.Errorf("%s: cold record was computed", g.Key())
		}
		w.Cache, g.Cache = "", ""
		w.Wall, g.Wall = 0, 0
		if !reflect.DeepEqual(w, g) {
			t.Errorf("record %d differs:\nwarm: %+v\ncold: %+v", i, w, g)
		}
	}
}

// TestCacheEndpoint covers the peering endpoint directly: validated keys,
// hit bytes served verbatim, 404 on miss, 400 on malformed keys.
func TestCacheEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	key := fmt.Sprintf("%064x|task=coordinate|cs=false|seed=1", 0xab)
	val := []byte(`{"Rounds":7}`)
	if err := st.Put(key, val); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Options{Store: st})

	resp, err := http.Get(ts.URL + "/v1/cache/" + url.PathEscape(key))
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got.Bytes(), val) {
		t.Fatalf("hit: status %d body %q, want 200 %q", resp.StatusCode, got.Bytes(), val)
	}

	miss := fmt.Sprintf("%064x|task=coordinate|cs=false|seed=2", 0xab)
	resp, err = http.Get(ts.URL + "/v1/cache/" + url.PathEscape(miss))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("miss: status %d, want 404", resp.StatusCode)
	}

	for _, bad := range []string{"nonsense", "..%2F..%2Fetc", fmt.Sprintf("%064X|task=coordinate|cs=false|seed=1", 0xab)} {
		resp, err = http.Get(ts.URL + "/v1/cache/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("key %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestStoreMetrics: the metrics snapshot exposes the store and the peering
// counter when a store is configured.
func TestStoreMetrics(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cache := campaign.NewCache(0)
	cache.AttachTier(st, nil)
	pool, ts := newTestServer(t, serve.Options{Cache: cache, Store: st})

	resp := postJSON(t, ts.URL+"/v1/run", campaign.Scenario{Task: campaign.TaskCoordinate, Model: "basic", N: 8, Seed: 1})
	if rec := decodeRecord(t, resp); rec.Status != campaign.StatusOK {
		t.Fatalf("run failed: %+v", rec)
	}
	m := pool.Snapshot()
	if m.Store == nil {
		t.Fatal("metrics lack the store block")
	}
	if m.Store.Puts != 1 || m.Store.IndexEntries != 1 {
		t.Fatalf("store stats = %+v, want the computed record written through", m.Store)
	}
	if m.Cache == nil || m.Cache.Misses != 1 || m.Cache.DiskHits != 0 {
		t.Fatalf("cache stats = %+v", m.Cache)
	}

	// The Prometheus exposition carries the store gauges.
	httpResp, err := http.Get(ts.URL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(httpResp.Body)
	httpResp.Body.Close()
	for _, want := range []string{
		"ringsym_store_index_entries 1",
		"ringsym_memo_disk_hits_total",
		"ringsym_store_puts_total",
		"ringsym_serve_cache_requests_total 0",
	} {
		if !bytes.Contains(body.Bytes(), []byte(want)) {
			t.Errorf("prometheus exposition lacks %q", want)
		}
	}
}
