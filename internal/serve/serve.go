// Package serve is the HTTP serving layer of the simulator: a long-lived
// daemon (cmd/ringd) that executes ring-network scenarios on demand instead
// of batch sweeps.
//
// All requests are batched onto one bounded worker pool — the same substrate
// the campaign runner uses for offline sweeps — so a burst of clients queues
// instead of oversubscribing the machine, and every request shares the
// optional symmetry-canonical memo cache (internal/memo keyed by
// internal/canon): two clients asking for rotations of the same ring are
// served one computation.  Request contexts are threaded through to the
// engine, so a disconnected or cancelled client stops burning CPU within one
// simulated round (unless another in-flight client is waiting on the same
// canonical computation).
//
// Endpoints:
//
//	POST /v1/run       one scenario in, one campaign.Record out (JSON)
//	POST /v1/campaign  a campaign.Matrix spec in, records out as streamed
//	                   JSONL in scenario-index order; the optional ?lo= and
//	                   ?hi= query parameters restrict the response to the
//	                   scenario-index range [lo, hi) of the expanded matrix,
//	                   so a fleet coordinator (internal/fleet) can lease
//	                   contiguous ranges of one sweep to many daemons and
//	                   concatenate the streams back byte-identically
//	GET  /v1/tasks     the task registry: every runnable task with its
//	                   description (JSON array, sorted by name)
//	GET  /v1/events    the live structured-event stream (internal/obs) as
//	                   NDJSON, with ?types= and ?level= client-side filters;
//	                   each subscriber gets a bounded queue that drops (and
//	                   counts) rather than ever back-pressuring the workers
//	GET  /v1/cache/<key>  one raw stored record from the persistent store
//	                   (internal/store) by its validated cache key; 404 on
//	                   miss.  This is the fleet peering endpoint: a peer's
//	                   miss path calls it instead of recomputing
//	GET  /healthz      liveness: {"status":"ok"}
//	GET  /metrics      throughput and cache counters (JSON)
//	GET  /metrics/prometheus  the same counters plus every obs-registered
//	                   metric, in Prometheus text exposition format
//
// With Options.MaxPending, the daemon sheds load instead of queueing
// unboundedly: when the count of scenarios queued or running on the pool
// reaches the cap, /v1/run and /v1/campaign answer 429 with a Retry-After
// header (counted in /metrics as throttled) rather than parking another
// handler on the pool.  Clients — the fleet dispatcher among them — are
// expected to back off and retry.
//
// With Options.Pprof, the net/http/pprof handlers are additionally served
// under /debug/pprof/.
//
// Any task registered in internal/task is servable; requests naming an
// unregistered task fail with 400 and an error listing the registry.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ringsym/internal/campaign"
	"ringsym/internal/engine"
	"ringsym/internal/memo"
	"ringsym/internal/obs"
	"ringsym/internal/store"
	"ringsym/internal/task"
)

// Options configures a Server.
type Options struct {
	// Workers is the size of the shared scenario worker pool; defaults to
	// GOMAXPROCS.
	Workers int
	// Cache, when non-nil, memoises outcomes across requests under their
	// canonical symmetry key.
	Cache *campaign.Cache
	// Store, when non-nil, is the persistent result store served on
	// GET /v1/cache/<key> (the fleet peering endpoint) and reported in the
	// metrics.  Attaching it under Cache as a tier is the caller's job
	// (campaign.Cache.AttachTier); the serve layer only exposes it.
	Store *store.Store
	// Circ is the ring circumference in ticks forwarded to network
	// generation; 0 uses the netgen default.
	Circ int64
	// MaxRounds aborts runaway protocols; 0 uses the engine default.
	MaxRounds int
	// MaxCampaignScenarios caps the expansion of one /v1/campaign request;
	// defaults to 100000.
	MaxCampaignScenarios int
	// MaxN caps the network size of any requested scenario; defaults to
	// 4096.  Unbounded n would let a single request pin a worker for
	// minutes and allocate O(n) engine state — a denial of service, not a
	// legitimate workload.
	MaxN int
	// WriteTimeout bounds each response write (per record on streaming
	// endpoints, so long campaigns are fine as long as the client keeps
	// reading); defaults to 30s.  Without it, a client that stops reading
	// its stream would block its handler in Write forever and, through the
	// full delivery channel, wedge every shared worker.
	WriteTimeout time.Duration
	// Pprof additionally serves the net/http/pprof profiling handlers under
	// /debug/pprof/.  Off by default: profiling endpoints on a production
	// daemon are opt-in.
	Pprof bool
	// EventBuffer is the per-subscriber queue capacity of GET /v1/events in
	// events; defaults to 4096.  A subscriber that falls further behind
	// loses events (counted in the obs bus drop counter and the metrics
	// snapshot) instead of slowing any producer down.
	EventBuffer int
	// MaxPending, when positive, is the admission-control cap on scenarios
	// queued or running on the worker pool: a /v1/run or /v1/campaign
	// request arriving while the count is at the cap is rejected with 429
	// and a Retry-After header instead of parking its handler in the
	// submission queue.  Cache-hit probes are exempt — they never occupy a
	// worker.  0 disables admission control (the pre-fleet behaviour:
	// handlers queue without bound).
	MaxPending int
}

const (
	defaultMaxCampaignScenarios = 100000
	defaultMaxN                 = 4096
	defaultWriteTimeout         = 30 * time.Second
	defaultEventBuffer          = 4096
)

// maxBodyBytes bounds request bodies; matrix specs and scenarios are tiny.
const maxBodyBytes = 1 << 20

// Server executes scenarios for HTTP clients on a shared worker pool.
// Construct with New, serve via Handler, stop with Close.
type Server struct {
	opts  Options
	jobs  chan job
	quit  chan struct{}
	wg    sync.WaitGroup
	start time.Time

	runRequests      atomic.Uint64
	campaignRequests atomic.Uint64
	cacheRequests    atomic.Uint64
	badRequests      atomic.Uint64
	throttled        atomic.Uint64
	records          atomic.Uint64
	failed           atomic.Uint64
	cancelled        atomic.Uint64
	// pending counts scenarios queued or running on the pool, including
	// submissions currently parked in submit: the value admission control
	// compares against Options.MaxPending.
	pending atomic.Int64
}

// job is one scenario submitted to the pool.  The worker delivers the record
// on out unless the request context is cancelled first.
type job struct {
	ctx context.Context
	sc  campaign.Scenario
	out chan<- campaign.Record
}

// New starts the worker pool and returns the server.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxCampaignScenarios <= 0 {
		opts.MaxCampaignScenarios = defaultMaxCampaignScenarios
	}
	if opts.MaxN <= 0 {
		opts.MaxN = defaultMaxN
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = defaultWriteTimeout
	}
	if opts.EventBuffer <= 0 {
		opts.EventBuffer = defaultEventBuffer
	}
	s := &Server{
		opts:  opts,
		jobs:  make(chan job),
		quit:  make(chan struct{}),
		start: time.Now(),
	}
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops the worker pool after in-flight scenarios finish their current
// request.  Submissions after (or racing with) Close fail with 503; Close is
// idempotent-unsafe and must be called exactly once, after the HTTP server
// stopped accepting requests.
func (s *Server) Close() {
	close(s.quit)
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.jobs:
			rec := campaign.RunScenarioContext(j.ctx, j.sc, s.campaignOptions())
			s.pending.Add(-1)
			s.records.Add(1)
			if rec.Status == campaign.StatusFailed {
				// A run aborted because its client went away is routine
				// serving churn, not a protocol failure; alerting on the
				// failed counter must not fire for disconnects.  The error
				// text is consulted too: a genuine failure that merely
				// races a disconnect must still count as failed.
				if err := j.ctx.Err(); err != nil && strings.Contains(rec.Error, err.Error()) {
					s.cancelled.Add(1)
				} else {
					s.failed.Add(1)
				}
			}
			select {
			case j.out <- rec:
			case <-j.ctx.Done():
			}
		}
	}
}

func (s *Server) campaignOptions() campaign.Options {
	return campaign.Options{
		Circ:      s.opts.Circ,
		MaxRounds: s.opts.MaxRounds,
		Cache:     s.opts.Cache,
	}
}

// errServerClosed reports a submission racing with shutdown.
var errServerClosed = errors.New("serve: server is shutting down")

// submit hands a scenario to the pool and returns immediately once a worker
// accepted it; the record arrives on out.  The pending count covers the
// whole wait: a submission parked here is exactly the queueing admission
// control exists to bound.
func (s *Server) submit(ctx context.Context, sc campaign.Scenario, out chan<- campaign.Record) error {
	s.pending.Add(1)
	select {
	case s.jobs <- job{ctx: ctx, sc: sc, out: out}:
		return nil
	case <-ctx.Done():
		s.pending.Add(-1)
		return ctx.Err()
	case <-s.quit:
		s.pending.Add(-1)
		return errServerClosed
	}
}

// saturated reports whether admission control should shed the request.
func (s *Server) saturated() bool {
	return s.opts.MaxPending > 0 && s.pending.Load() >= int64(s.opts.MaxPending)
}

// throttle answers a request shed by admission control: 429 with a
// Retry-After hint, counted separately from bad requests (the client did
// nothing wrong) and visible on the event spine as a serve.reject.
func (s *Server) throttle(w http.ResponseWriter, r *http.Request) {
	s.throttled.Add(1)
	if obs.On() {
		obs.Emit(obs.Event{Type: obs.ServeReject, Level: obs.LevelWarn, Endpoint: r.URL.Path, Err: "worker pool saturated"})
	}
	w.Header().Set("Retry-After", "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	json.NewEncoder(w).Encode(map[string]string{"error": "worker pool saturated; retry after backoff"})
}

// Handler returns the HTTP handler exposing the daemon's endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/campaign", s.handleCampaign)
	mux.HandleFunc("GET /v1/tasks", s.handleTasks)
	if s.opts.Store != nil {
		mux.HandleFunc("GET /v1/cache/{key}", s.handleCache)
	}
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics/prometheus", s.handleMetricsPrometheus)
	if s.opts.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// TaskInfo is one entry of GET /v1/tasks.
type TaskInfo struct {
	// Name is the value to put in Scenario.Task / Matrix.Tasks.
	Name string `json:"name"`
	// Description is the task's one-line human summary.
	Description string `json:"description"`
	// PaperBound reports that the paper states a bound for the task; these
	// tasks form the default task axis of a /v1/campaign matrix.
	PaperBound bool `json:"paper_bound"`
}

// handleTasks lists the task registry, sorted by name, so clients can
// discover runnable workloads instead of hardcoding them.
func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	names := task.Names()
	out := make([]TaskInfo, 0, len(names))
	for _, name := range names {
		spec, err := task.Lookup(name)
		if err != nil {
			continue // racing an (unsupported) unregistration; skip
		}
		out = append(out, TaskInfo{Name: name, Description: spec.Description(), PaperBound: spec.PaperBound()})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleCache serves one raw record from the persistent store by its cache
// key — the fleet peering endpoint (internal/store.Peers calls it on the
// peer-hop of a miss).  The key must match the canonical key shape exactly;
// anything else is a 400 before the store is even consulted.  The body is
// the stored bytes verbatim (the deterministic JSON outcome encoding), so a
// peer can promote it into its own store without re-encoding.  Lookups are
// answered on the request goroutine: a store Get is one bounded read, never
// a computation, so it must not queue behind the worker pool (and a peer
// probing this daemon cannot be throttled into recomputing).
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !campaign.ValidCacheKey.MatchString(key) {
		s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("bad cache key %q", key))
		return
	}
	s.noteRequest(&s.cacheRequests, r)
	val, ok := s.opts.Store.Get(key)
	if !ok {
		// A miss is routine peering traffic (the asking peer computes and
		// often calls back with nothing missing next time), not a bad
		// request: answered directly instead of through httpError so it
		// never inflates bad_requests or the serve.reject stream.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "key not in store"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(val)
}

// httpError writes a JSON error body with the given status.  Only 4xx
// responses count as bad requests (and emit serve.reject): a 503 from a
// submission racing graceful shutdown is server-side churn, not malformed
// client input.
func (s *Server) httpError(w http.ResponseWriter, r *http.Request, status int, err error) {
	if status >= 400 && status < 500 {
		s.badRequests.Add(1)
		if obs.On() {
			obs.Emit(obs.Event{Type: obs.ServeReject, Level: obs.LevelWarn, Endpoint: r.URL.Path, Err: err.Error()})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// noteRequest counts an accepted request and emits its serve.request event.
func (s *Server) noteRequest(ctr *atomic.Uint64, r *http.Request) {
	ctr.Add(1)
	if obs.On() {
		obs.Emit(obs.Event{Type: obs.ServeRequest, Level: obs.LevelDebug, Endpoint: r.URL.Path})
	}
}

// decodeStrict decodes exactly one JSON value from the (size-bounded) body,
// rejecting unknown fields and trailing garbage.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after the JSON value")
	}
	return nil
}

// validateScenario normalises a client-supplied scenario: the task and model
// must parse, n must satisfy the paper's n > 4 and the daemon's size cap,
// and a zero identifier bound defaults to the campaign's 4n.
func (s *Server) validateScenario(sc *campaign.Scenario) error {
	// Normalize the casing Lookup tolerates: the task name feeds the
	// symmetry cache key and the record verbatim, so "Coordinate" must not
	// fragment the cache (or the records) away from "coordinate".
	sc.Task = campaign.Task(strings.ToLower(string(sc.Task)))
	if _, err := task.Lookup(string(sc.Task)); err != nil {
		return err
	}
	if _, err := campaign.ParseModel(sc.Model); err != nil {
		return err
	}
	if sc.N < 5 {
		return fmt.Errorf("n = %d too small (the paper needs n > 4)", sc.N)
	}
	if sc.N > s.opts.MaxN {
		return fmt.Errorf("n = %d above this daemon's limit of %d", sc.N, s.opts.MaxN)
	}
	if sc.CommonSense && sc.MixedChirality {
		return errors.New("common_sense contradicts mixed_chirality (the promise would be violated)")
	}
	if sc.IDBound == 0 {
		sc.IDBound = 4 * sc.N
	}
	if sc.IDBound < sc.N {
		return fmt.Errorf("id_bound %d < n %d (identifiers are distinct)", sc.IDBound, sc.N)
	}
	return nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var sc campaign.Scenario
	if err := decodeStrict(w, r, &sc); err != nil {
		s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("bad scenario: %w", err))
		return
	}
	if err := s.validateScenario(&sc); err != nil {
		s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("bad scenario: %w", err))
		return
	}
	s.noteRequest(&s.runRequests, r)
	// Cache hits are answered on this request goroutine: joining the pool
	// for a no-work lookup would let a burst of identical requests park
	// workers that unrelated clients need.  The probe's own cost —
	// generation plus canonicalization — is O(n) expected (the lexicographic
	// candidate scan resolves at the first gap for the distinct random gaps
	// netgen produces; the O(n^2) worst case needs equal gaps, which no
	// Scenario can request), i.e. well under a millisecond at MaxN.
	if rec, ok := campaign.ProbeCache(sc, s.campaignOptions()); ok {
		s.records.Add(1)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(s.deadlineWriter(w)).Encode(rec)
		return
	}
	// Admission control sits after the probe on purpose: a cache hit costs
	// no worker, so a saturated pool can keep answering the already-computed
	// universe while shedding fresh work.
	if s.saturated() {
		s.throttle(w, r)
		return
	}
	ctx := r.Context()
	out := make(chan campaign.Record, 1)
	if err := s.submit(ctx, sc, out); err != nil {
		if errors.Is(err, errServerClosed) {
			s.httpError(w, r, http.StatusServiceUnavailable, err)
		}
		return // client gone; nothing to write
	}
	select {
	case rec := <-out:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(s.deadlineWriter(w)).Encode(rec)
	case <-ctx.Done():
		// The client disconnected; the worker's engine run aborts within one
		// round through the same context.
	}
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var m campaign.Matrix
	if err := decodeStrict(w, r, &m); err != nil {
		s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("bad matrix spec: %w", err))
		return
	}
	if s.saturated() {
		s.throttle(w, r)
		return
	}
	// Bound the request BEFORE expansion: Expand allocates one Scenario per
	// axis-product element, so a malicious spec with huge axes must be
	// rejected from the axis lengths alone, not after the allocation.
	bound, maxN := m.UpperBounds()
	if bound > s.opts.MaxCampaignScenarios {
		s.httpError(w, r, http.StatusBadRequest,
			fmt.Errorf("matrix expands to up to %d scenarios, above the limit of %d", bound, s.opts.MaxCampaignScenarios))
		return
	}
	if maxN > s.opts.MaxN {
		s.httpError(w, r, http.StatusBadRequest,
			fmt.Errorf("matrix contains n = %d, above this daemon's limit of %d", maxN, s.opts.MaxN))
		return
	}
	scenarios, err := m.Expand()
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	// The optional ?lo=&hi= range restricts the response to a contiguous
	// slice of the expanded index space.  The matrix is still expanded (and
	// bounded) in full — determinism demands the coordinator and every
	// worker agree on the global index assignment — and the slice keeps the
	// original indices, so concatenating the streams of a partition of
	// [0, len) reproduces the unsharded export byte for byte.
	scenarios, err = sliceRange(r, scenarios)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	s.noteRequest(&s.campaignRequests, r)
	ctx := r.Context()

	// Feed the pool from a separate goroutine so records stream back (in
	// scenario-index order, via OrderedWriter) while later scenarios are
	// still queueing.  On a cached daemon the feed is decorrelated so a
	// symmetric matrix's adjacent framings don't pile the shared workers —
	// which every client depends on — onto one singleflight computation;
	// the reorder horizon is bounded, so OrderedWriter buffers at most a
	// window of out-of-order records per request.
	feed := scenarios
	if s.opts.Cache != nil {
		feed = campaign.DecorrelateOrbits(scenarios)
	}
	out := make(chan campaign.Record, s.opts.Workers)
	go func() {
		for _, sc := range feed {
			if s.submit(ctx, sc, out) != nil {
				return
			}
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	writer := campaign.NewOrderedWriter(s.deadlineWriter(w), scenarios)
	for received := 0; received < len(scenarios); received++ {
		select {
		case rec := <-out:
			if err := writer.Add(rec); err != nil {
				return // client gone mid-stream; ctx cancellation unwinds the rest
			}
		case <-ctx.Done():
			return
		case <-s.quit:
			// Pool shutdown racing the stream: the feeder has stopped
			// submitting, so the remaining records will never arrive;
			// terminate the (truncated) response instead of stalling it.
			return
		}
	}
	// All records received, so Flush has nothing pending; it only guards
	// against programming errors (a record outside the scenario list).
	writer.Flush()
}

// sliceRange applies the optional ?lo=&hi= scenario-index range of a
// campaign request: absent parameters default to the full expansion, and the
// bounds must satisfy 0 <= lo <= hi <= len(scenarios).  lo == hi is a legal
// empty lease (a coordinator probing a worker), not an error.
func sliceRange(r *http.Request, scenarios []campaign.Scenario) ([]campaign.Scenario, error) {
	q := r.URL.Query()
	lo, hi := 0, len(scenarios)
	var err error
	if v := q.Get("lo"); v != "" {
		if lo, err = strconv.Atoi(v); err != nil {
			return nil, fmt.Errorf("bad range: lo %q is not an integer", v)
		}
	}
	if v := q.Get("hi"); v != "" {
		if hi, err = strconv.Atoi(v); err != nil {
			return nil, fmt.Errorf("bad range: hi %q is not an integer", v)
		}
	}
	if lo < 0 || hi < lo || hi > len(scenarios) {
		return nil, fmt.Errorf("bad range [%d, %d): need 0 <= lo <= hi <= %d (the matrix expands to %d scenarios)",
			lo, hi, len(scenarios), len(scenarios))
	}
	return scenarios[lo:hi], nil
}

// deadlineWriter wraps a response so every write (one record, on the
// streaming endpoints) carries a fresh write deadline and an immediate
// flush: records reach a reading client as they complete, and a client that
// stops reading turns into a write error within WriteTimeout instead of
// blocking the handler — and, through the full delivery channel, the shared
// worker pool — forever.
func (s *Server) deadlineWriter(w http.ResponseWriter) io.Writer {
	return &flushWriter{w: w, rc: http.NewResponseController(w), timeout: s.opts.WriteTimeout}
}

type flushWriter struct {
	w       http.ResponseWriter
	rc      *http.ResponseController
	timeout time.Duration
}

func (f *flushWriter) Write(p []byte) (int, error) {
	// Not every ResponseWriter supports deadlines (httptest's recorder does
	// not); degrade to an unbounded write there rather than failing.
	f.rc.SetWriteDeadline(time.Now().Add(f.timeout))
	n, err := f.w.Write(p)
	if err == nil {
		f.rc.Flush()
	}
	// Clear the deadline: it is set on the underlying connection, and a
	// later response on the same keep-alive connection (e.g. a /metrics
	// poll written without this wrapper) must not inherit a stale one.
	f.rc.SetWriteDeadline(time.Time{})
	return n, err
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// Metrics is the JSON shape of GET /metrics.
type Metrics struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	Workers          int     `json:"workers"`
	RunRequests      uint64  `json:"run_requests"`
	CampaignRequests uint64  `json:"campaign_requests"`
	BadRequests      uint64  `json:"bad_requests"`
	// Throttled counts requests shed by admission control (429 + Retry-After
	// while the pool's pending count was at Options.MaxPending).  Always 0
	// when admission control is disabled.
	Throttled uint64 `json:"throttled"`
	// Pending is the instantaneous count of scenarios queued or running on
	// the pool — the value admission control compares against MaxPending.
	Pending int64 `json:"pending"`
	// Records counts scenarios executed (or served from the cache) across
	// all endpoints.  Failed is the subset that genuinely failed (protocol
	// error, verification failure, panic); Cancelled is the subset aborted
	// because the requesting client disconnected or timed out — routine
	// serving churn kept out of the failure rate.
	Records          uint64  `json:"records"`
	Failed           uint64  `json:"failed"`
	Cancelled        uint64  `json:"cancelled"`
	RecordsPerSecond float64 `json:"records_per_second"`
	// Engine exposes the round runtime's process-wide execution counters:
	// rounds executed, leap batches (barrier crossings) executed and the mean
	// rounds per crossing — the live measure of how much leap execution is
	// collapsing barrier traffic for the scenarios this daemon serves.
	Engine engine.Counters `json:"engine"`
	// CacheRequests counts accepted GET /v1/cache/<key> lookups (the fleet
	// peering endpoint); always 0 without a store.
	CacheRequests uint64 `json:"cache_requests"`
	// Cache is present only when the daemon runs with the memo cache.
	Cache *memo.Stats `json:"cache,omitempty"`
	// Store is present only when the daemon runs with a persistent store:
	// segment/index shape and service counters of the disk tier.
	Store *store.Stats `json:"store,omitempty"`
	// Events is the fan-out accounting of the structured-event bus backing
	// GET /v1/events: current subscribers, events published, and events
	// dropped against stalled subscribers (the drop-and-count backpressure
	// contract made visible).
	Events obs.BusStats `json:"events"`
}

// Snapshot returns the current metrics.
//
// Consistency semantics: the counters are independent atomics updated while
// requests are in flight, so a snapshot is not a linearizable cut of the
// server's state — there is no global lock to take, by design.  What the
// snapshot does guarantee is single-pass consistency: every counter is
// captured exactly once, in an order that preserves the subset invariants
// under concurrent progress (a worker adds to records before failed or
// cancelled, so failed and cancelled are loaded first and
// Failed + Cancelled <= Records always holds), and every derived value
// (RecordsPerSecond, the engine's mean rounds per crossing, cache ratios a
// client computes) is a function of the captured values, never a second
// racing read.
func (s *Server) Snapshot() Metrics {
	uptime := time.Since(s.start).Seconds()
	m := Metrics{
		UptimeSeconds:    uptime,
		Workers:          s.opts.Workers,
		RunRequests:      s.runRequests.Load(),
		CampaignRequests: s.campaignRequests.Load(),
		BadRequests:      s.badRequests.Load(),
		Throttled:        s.throttled.Load(),
		Pending:          s.pending.Load(),
		// failed/cancelled before records: see the invariant above.
		Failed:    s.failed.Load(),
		Cancelled: s.cancelled.Load(),
		Records:   s.records.Load(),
		Engine:    engine.CounterSnapshot(),
		Events:    obs.Default.Stats(),
	}
	if uptime > 0 {
		m.RecordsPerSecond = float64(m.Records) / uptime
	}
	if s.opts.Cache != nil {
		st := s.opts.Cache.Stats()
		m.Cache = &st
	}
	m.CacheRequests = s.cacheRequests.Load()
	if s.opts.Store != nil {
		st := s.opts.Store.Stats()
		m.Store = &st
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Snapshot())
}

// handleMetricsPrometheus renders the same snapshot in the Prometheus text
// exposition format, followed by every metric registered in the obs default
// registry (engine round/crossing totals, memo cache totals, bus fan-out
// accounting).  Serve-layer metrics are prefixed ringsym_serve_.
func (s *Server) handleMetricsPrometheus(w http.ResponseWriter, r *http.Request) {
	m := s.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg := obs.NewRegistry()
	reg.Gauge("ringsym_serve_uptime_seconds", "Seconds since the worker pool started.", func() float64 { return m.UptimeSeconds })
	reg.Gauge("ringsym_serve_workers", "Size of the shared scenario worker pool.", func() float64 { return float64(m.Workers) })
	reg.CounterFunc("ringsym_serve_run_requests_total", "Accepted POST /v1/run requests.", func() float64 { return float64(m.RunRequests) })
	reg.CounterFunc("ringsym_serve_campaign_requests_total", "Accepted POST /v1/campaign requests.", func() float64 { return float64(m.CampaignRequests) })
	reg.CounterFunc("ringsym_serve_bad_requests_total", "Rejected (4xx) requests.", func() float64 { return float64(m.BadRequests) })
	reg.CounterFunc("ringsym_serve_throttled_total", "Requests shed by admission control (429).", func() float64 { return float64(m.Throttled) })
	reg.Gauge("ringsym_serve_pending", "Scenarios queued or running on the pool.", func() float64 { return float64(m.Pending) })
	reg.CounterFunc("ringsym_serve_records_total", "Scenarios executed or served from the cache.", func() float64 { return float64(m.Records) })
	reg.CounterFunc("ringsym_serve_failed_total", "Scenarios that genuinely failed.", func() float64 { return float64(m.Failed) })
	reg.CounterFunc("ringsym_serve_cancelled_total", "Scenarios aborted by client disconnects.", func() float64 { return float64(m.Cancelled) })
	if m.Cache != nil {
		reg.Gauge("ringsym_memo_entries", "Cached outcomes resident in this daemon's memo cache.", func() float64 { return float64(m.Cache.Entries) })
	}
	if m.Store != nil {
		reg.CounterFunc("ringsym_serve_cache_requests_total", "Accepted GET /v1/cache/<key> peer lookups.", func() float64 { return float64(m.CacheRequests) })
		reg.Gauge("ringsym_store_segments", "Segment files in this daemon's persistent store.", func() float64 { return float64(m.Store.Segments) })
		reg.Gauge("ringsym_store_index_entries", "Keys resident in this daemon's persistent store.", func() float64 { return float64(m.Store.IndexEntries) })
		reg.Gauge("ringsym_store_live_bytes", "Live record bytes in this daemon's persistent store.", func() float64 { return float64(m.Store.LiveBytes) })
		reg.Gauge("ringsym_store_garbage_bytes", "Superseded record bytes awaiting compaction.", func() float64 { return float64(m.Store.GarbageBytes) })
	}
	if err := reg.WritePrometheus(w); err != nil {
		return
	}
	obs.Metrics.WritePrometheus(w)
}

// handleEvents streams the daemon's structured events as NDJSON until the
// client disconnects.  Filters: ?types=scenario,cache.hit (comma-separated
// types or dotted prefixes) and ?level=info (minimum level).  The
// subscription's queue is bounded (Options.EventBuffer): a subscriber that
// reads slower than the daemon emits loses events — visible in the metrics
// snapshot's drop counter — and a subscriber that stops reading entirely is
// disconnected by the per-write deadline.  Workers never wait on either.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sopts := obs.SubOptions{Buffer: s.opts.EventBuffer}
	if tp := r.URL.Query().Get("types"); tp != "" {
		for _, t := range strings.Split(tp, ",") {
			if t = strings.TrimSpace(t); t != "" {
				sopts.Types = append(sopts.Types, t)
			}
		}
	}
	if lv := r.URL.Query().Get("level"); lv != "" {
		minLvl, err := obs.ParseLevel(lv)
		if err != nil {
			s.httpError(w, r, http.StatusBadRequest, err)
			return
		}
		sopts.MinLevel = minLvl
	}
	sub := obs.Default.Subscribe(sopts)
	defer sub.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Flush the header so a filtering client sees the stream is live before
	// the first matching event arrives.
	http.NewResponseController(w).Flush()

	enc := json.NewEncoder(s.deadlineWriter(w))
	ctx := r.Context()
	for {
		ev, err := sub.Next(ctx)
		if err != nil {
			return // client gone
		}
		if err := enc.Encode(ev); err != nil {
			return // write failed or deadline hit: drop the subscriber
		}
	}
}
