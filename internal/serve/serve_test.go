package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ringsym/internal/campaign"
	"ringsym/internal/serve"
	"ringsym/internal/task"
)

// newTestServer starts a pool and an httptest server around its handler.
func newTestServer(t *testing.T, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	pool := serve.New(opts)
	ts := httptest.NewServer(pool.Handler())
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return pool, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeRecord(t *testing.T, r *http.Response) campaign.Record {
	t.Helper()
	defer r.Body.Close()
	var rec campaign.Record
	if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("body = %v", body)
	}
}

// TestRunEndpoint: one scenario through the daemon equals the same scenario
// run directly, field for field.
func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	sc := campaign.Scenario{Task: campaign.TaskCoordinate, Model: "basic", N: 8, Seed: 3}
	resp := postJSON(t, ts.URL+"/v1/run", sc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	got := decodeRecord(t, resp)

	want := sc
	want.IDBound = 4 * sc.N // the daemon's documented default
	wantRec := campaign.RunScenario(want, campaign.Options{})
	wantRec.Wall, got.Wall = 0, 0
	if !reflect.DeepEqual(got, wantRec) {
		t.Fatalf("daemon record differs:\n got %+v\nwant %+v", got, wantRec)
	}
	if got.Status != campaign.StatusOK || !got.Verified {
		t.Fatalf("record not ok: %+v", got)
	}
}

func TestRunValidation(t *testing.T) {
	pool, ts := newTestServer(t, serve.Options{Workers: 1})
	for name, body := range map[string]string{
		"malformed":     `{"task":`,
		"unknown field": `{"task":"coordinate","model":"basic","n":8,"bogus":1}`,
		"trailing":      `{"task":"coordinate","model":"basic","n":8}{}`,
		"bad task":      `{"task":"elect","model":"basic","n":8}`,
		"bad model":     `{"task":"coordinate","model":"quantum","n":8}`,
		"n too small":   `{"task":"coordinate","model":"basic","n":4}`,
		"n too large":   `{"task":"coordinate","model":"basic","n":100000000}`,
		"contradiction": `{"task":"coordinate","model":"basic","n":8,"mixed_chirality":true,"common_sense":true}`,
		"small idbound": `{"task":"coordinate","model":"basic","n":8,"id_bound":7}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	if m := pool.Snapshot(); m.BadRequests != 9 || m.RunRequests != 0 || m.Records != 0 {
		t.Fatalf("metrics after bad requests: %+v", m)
	}
}

// TestCampaignSizeCapped: the per-scenario n cap applies to matrix sweeps
// too — a small matrix with a huge size must be rejected up front, not run.
func TestCampaignSizeCapped(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	resp := postJSON(t, ts.URL+"/v1/campaign", campaign.Matrix{Sizes: []int{100000000}, Seeds: []int64{1}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}

	// The bound respects the parities axis: a sweep restricted to even n at
	// exactly the cap must not be rejected for the odd +1 adjustment it
	// never expands.
	_, ts2 := newTestServer(t, serve.Options{Workers: 1, MaxN: 16})
	resp2 := postJSON(t, ts2.URL+"/v1/campaign", campaign.Matrix{
		Tasks: []campaign.Task{campaign.TaskCoordinate}, Models: []string{"basic"},
		Parities: []string{"even"}, Sizes: []int{16}, Seeds: []int64{1},
	})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("even-parity boundary matrix rejected: status = %d", resp2.StatusCode)
	}
}

// TestConcurrentClients is the serving acceptance bar: 64 parallel clients
// hammer POST /v1/run (8 distinct scenarios spanning tasks, models, sizes and
// symmetric phase/reflection variants, 8 clients each) against one daemon
// with the memo cache on.  Every response is verified against an
// independently computed record (direct, uncached execution), and the cache
// counters must show exactly one computation per symmetry orbit.
func TestConcurrentClients(t *testing.T) {
	cache := campaign.NewCache(0)
	pool, ts := newTestServer(t, serve.Options{Cache: cache})

	// 8 distinct scenarios; the phase/reflect variants fold into the orbit of
	// their base scenario, so the 6 base settings make 6 canonical orbits.
	scenarios := []campaign.Scenario{
		{Task: campaign.TaskCoordinate, Model: "basic", N: 8, Seed: 1},
		{Task: campaign.TaskCoordinate, Model: "basic", N: 8, Seed: 1, Phase: 3},
		{Task: campaign.TaskCoordinate, Model: "lazy", N: 8, Seed: 1, MixedChirality: true},
		{Task: campaign.TaskCoordinate, Model: "lazy", N: 8, Seed: 1, MixedChirality: true, Reflect: true},
		{Task: campaign.TaskCoordinate, Model: "basic", N: 9, Seed: 2},
		{Task: campaign.TaskDiscover, Model: "perceptive", N: 8, Seed: 1},
		{Task: campaign.TaskDiscover, Model: "basic", N: 9, Seed: 1, MixedChirality: true},
		{Task: campaign.TaskCoordinate, Model: "perceptive", N: 12, Seed: 5, MixedChirality: true},
	}
	const orbits = 6

	// Independent ground truth: direct execution, no cache, no daemon.
	want := make([]campaign.Record, len(scenarios))
	for i, sc := range scenarios {
		sc.IDBound = 4 * sc.N
		want[i] = campaign.RunScenario(sc, campaign.Options{})
		want[i].Wall = 0
		if want[i].Status != campaign.StatusOK {
			t.Fatalf("%s: ground truth not ok: %+v", sc.Key(), want[i])
		}
	}

	const clientsPerScenario = 8 // 64 requests total
	var wg sync.WaitGroup
	for i := range scenarios {
		for c := 0; c < clientsPerScenario; c++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp := postJSON(t, ts.URL+"/v1/run", scenarios[i])
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status = %d", scenarios[i].Key(), resp.StatusCode)
					resp.Body.Close()
					return
				}
				got := decodeRecord(t, resp)
				if got.Cache == "" {
					t.Errorf("%s: record lacks cache annotation", scenarios[i].Key())
				}
				got.Cache, got.Wall = "", 0
				if !reflect.DeepEqual(got, want[i]) {
					t.Errorf("%s: daemon record differs:\n got %+v\nwant %+v", scenarios[i].Key(), got, want[i])
				}
			}(i)
		}
	}
	wg.Wait()

	total := uint64(len(scenarios) * clientsPerScenario)
	m := pool.Snapshot()
	if m.RunRequests != total || m.Records != total || m.Failed != 0 {
		t.Fatalf("metrics: %+v", m)
	}
	st := cache.Stats()
	if st.Misses != orbits {
		t.Errorf("cache misses = %d, want %d (one computation per orbit)", st.Misses, orbits)
	}
	if st.Hits+st.Dedups != total-orbits {
		t.Errorf("hits+dedups = %d, want %d", st.Hits+st.Dedups, total-orbits)
	}
}

// TestCampaignEndpoint: the streamed JSONL of a /v1/campaign request equals
// the offline campaign over the same matrix, record for record, in
// scenario-index order.
func TestCampaignEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Cache: campaign.NewCache(0)})
	matrix := campaign.Matrix{Sizes: []int{8}, Seeds: []int64{1, 2}}
	scenarios, err := matrix.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.RunAll(context.Background(), scenarios, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/v1/campaign", matrix)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	var got []campaign.Record
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		var rec campaign.Record
		if err := json.Unmarshal(scan.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", scan.Text(), err)
		}
		got = append(got, rec)
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g := got[i]
		if g.Index != i {
			t.Fatalf("record %d arrived with index %d (stream must be index-ordered)", i, g.Index)
		}
		g.Cache, g.Wall, want[i].Wall = "", 0, 0
		if !reflect.DeepEqual(g, want[i]) {
			t.Errorf("record %d differs:\n got %+v\nwant %+v", i, g, want[i])
		}
	}
}

// TestCampaignRange: ?lo=&hi= scope a campaign to a scenario-index range,
// and the concatenation of range responses reproduces the whole-matrix
// response byte-for-byte — the serving half of the fleet merger's
// byte-identity invariant.
func TestCampaignRange(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	matrix := campaign.Matrix{Sizes: []int{8}, Seeds: []int64{1, 2}}
	scenarios, err := matrix.Expand()
	if err != nil {
		t.Fatal(err)
	}
	total := len(scenarios)

	slurp := func(query string) ([]byte, int) {
		t.Helper()
		resp := postJSON(t, ts.URL+"/v1/campaign"+query, matrix)
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), resp.StatusCode
	}

	full, code := slurp("")
	if code != http.StatusOK {
		t.Fatalf("full campaign: status %d", code)
	}
	cuts := []int{0, 1, total / 3, total / 2, total}
	var merged bytes.Buffer
	for i := 0; i+1 < len(cuts); i++ {
		part, code := slurp(fmt.Sprintf("?lo=%d&hi=%d", cuts[i], cuts[i+1]))
		if code != http.StatusOK {
			t.Fatalf("range [%d, %d): status %d", cuts[i], cuts[i+1], code)
		}
		merged.Write(part)
	}
	if !bytes.Equal(full, merged.Bytes()) {
		t.Error("concatenated range responses differ from the full response")
	}

	// An empty range is a valid, empty stream.
	if part, code := slurp(fmt.Sprintf("?lo=%d&hi=%d", 1, 1)); code != http.StatusOK || len(part) != 0 {
		t.Errorf("empty range: status %d, %d bytes", code, len(part))
	}
	// Malformed and out-of-bounds ranges are rejected up front.
	for _, q := range []string{"?lo=-1", "?hi=nope", "?lo=abc", fmt.Sprintf("?hi=%d", total+1), "?lo=3&hi=2"} {
		if _, code := slurp(q); code != http.StatusBadRequest {
			t.Errorf("range query %q: status %d, want 400", q, code)
		}
	}
}

func TestCampaignTooLarge(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, MaxCampaignScenarios: 10})
	resp := postJSON(t, ts.URL+"/v1/campaign", campaign.Matrix{Sizes: []int{8}, Seeds: []int64{1, 2, 3, 4, 5}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}

	// An abusive spec with huge axes must be rejected from the axis lengths
	// alone — before expansion allocates anything — so even a default-limit
	// server answers instantly.
	_, ts2 := newTestServer(t, serve.Options{Workers: 1})
	seeds := make([]int64, 50000)
	phases := make([]int, 50000)
	for i := range seeds {
		seeds[i], phases[i] = int64(i+1), i
	}
	start := time.Now()
	resp2 := postJSON(t, ts2.URL+"/v1/campaign", campaign.Matrix{Sizes: []int{8}, Seeds: seeds, Phases: phases})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("huge-axes status = %d, want 400", resp2.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("huge-axes rejection took %v (expanded before bounding?)", elapsed)
	}
}

// TestCancellationMidRequest: a client that disconnects mid-run frees its
// worker within one engine round instead of running the scenario to the end.
// The n=2048 discovery below takes seconds to complete; after cancelling at
// 100ms the worker must surface the aborted (failed, uncached) record almost
// immediately.
func TestCancellationMidRequest(t *testing.T) {
	cache := campaign.NewCache(0)
	pool, ts := newTestServer(t, serve.Options{Workers: 1, Cache: cache})

	sc := campaign.Scenario{Task: campaign.TaskDiscover, Model: "perceptive", N: 2048, Seed: 1, MixedChirality: true}
	raw, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled request returned a response")
	}

	// The worker observes the cancellation within one round: the aborted
	// record lands well before the scenario could have completed, counted
	// as a cancellation (serving churn), not a failure.
	deadline := time.After(10 * time.Second)
	for {
		m := pool.Snapshot()
		if m.Records >= 1 {
			if m.Cancelled != 1 || m.Failed != 0 {
				t.Fatalf("metrics after cancellation: %+v", m)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("worker still busy long after cancellation: %+v", pool.Snapshot())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("aborted run was cached: %+v", st)
	}

	// The freed worker serves the next client normally.
	resp := postJSON(t, ts.URL+"/v1/run", campaign.Scenario{Task: campaign.TaskCoordinate, Model: "basic", N: 8, Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status = %d", resp.StatusCode)
	}
	if rec := decodeRecord(t, resp); rec.Status != campaign.StatusOK {
		t.Fatalf("follow-up record: %+v", rec)
	}
}

// TestClosedPoolRejects: submissions racing with shutdown get 503, not a
// hang or a panic.
func TestClosedPoolRejects(t *testing.T) {
	pool := serve.New(serve.Options{Workers: 1})
	handler := pool.Handler()
	pool.Close()
	req := httptest.NewRequest(http.MethodPost, "/v1/run",
		strings.NewReader(`{"task":"coordinate","model":"basic","n":8}`))
	w := httptest.NewRecorder()
	handler.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
}

// TestShutdownMidCampaignStream: pool shutdown racing a streaming campaign
// terminates the (truncated) response instead of stalling it until the
// client gives up.
func TestShutdownMidCampaignStream(t *testing.T) {
	pool := serve.New(serve.Options{Workers: 1})
	ts := httptest.NewServer(pool.Handler())
	defer ts.Close()

	seeds := make([]int64, 500)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	resp := postJSON(t, ts.URL+"/v1/campaign", campaign.Matrix{
		Tasks: []campaign.Task{campaign.TaskCoordinate}, Models: []string{"basic"},
		Parities: []string{"even"}, Sizes: []int{8}, Seeds: seeds,
	})
	defer resp.Body.Close()
	scan := bufio.NewScanner(resp.Body)
	if !scan.Scan() {
		t.Fatal("no first record")
	}
	pool.Close()
	done := make(chan struct{})
	go func() {
		for scan.Scan() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("campaign stream stalled after pool shutdown")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2, Cache: campaign.NewCache(0)})
	resp := postJSON(t, ts.URL+"/v1/run", campaign.Scenario{Task: campaign.TaskCoordinate, Model: "basic", N: 8, Seed: 1})
	decodeRecord(t, resp)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m serve.Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.RunRequests != 1 || m.Records != 1 || m.Failed != 0 || m.Workers != 2 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.Cache == nil || m.Cache.Misses != 1 {
		t.Fatalf("cache metrics: %+v", m.Cache)
	}
	if m.UptimeSeconds <= 0 || m.RecordsPerSecond <= 0 {
		t.Fatalf("throughput metrics: %+v", m)
	}
	// The engine counters are process-wide, so concurrent tests may have
	// added to them; the scenario above definitely ran rounds through leap
	// batches, so all three must be live and consistent.
	if m.Engine.Rounds == 0 || m.Engine.LeapBatches == 0 {
		t.Fatalf("engine counters not populated: %+v", m.Engine)
	}
	if m.Engine.LeapBatches > m.Engine.Rounds {
		t.Fatalf("more crossings than rounds: %+v", m.Engine)
	}
	if m.Engine.MeanRoundsPerCrossing < 1 {
		t.Fatalf("mean rounds per crossing %v < 1", m.Engine.MeanRoundsPerCrossing)
	}
}

func ExampleServer() {
	pool := serve.New(serve.Options{Workers: 2, Cache: campaign.NewCache(0)})
	defer pool.Close()
	ts := httptest.NewServer(pool.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"task":"coordinate","model":"basic","n":8,"seed":1}`))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var rec campaign.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		panic(err)
	}
	fmt.Println(rec.Status, rec.Verified, rec.Cache)
	// Output: ok true miss
}

// TestTasksEndpoint: GET /v1/tasks lists the full registry, sorted, with the
// paper-bound flag marking the default campaign task axis.
func TestTasksEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/tasks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var infos []serve.TaskInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	want := task.Names()
	if len(infos) != len(want) {
		t.Fatalf("%d tasks listed, registry has %d", len(infos), len(want))
	}
	for i, info := range infos {
		if info.Name != want[i] {
			t.Errorf("entry %d is %q, want %q (sorted)", i, info.Name, want[i])
		}
		if info.Description == "" {
			t.Errorf("%s: empty description", info.Name)
		}
		if wantPB := info.Name == "coordinate" || info.Name == "discover"; info.PaperBound != wantPB {
			t.Errorf("%s: paper_bound = %v, want %v", info.Name, info.PaperBound, wantPB)
		}
	}

	if resp, err := http.Post(ts.URL+"/v1/tasks", "application/json", strings.NewReader("{}")); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /v1/tasks: status = %d, want 405", resp.StatusCode)
		}
	}
}

// TestRunRegistryTasks: the three derived workloads run through /v1/run like
// any built-in, returning verified records with their task-declared extra
// fields.
func TestRunRegistryTasks(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	for _, tc := range []struct {
		sc    campaign.Scenario
		extra []string
	}{
		{campaign.Scenario{Task: "bounce", Model: "basic", N: 8, Seed: 1, MixedChirality: true}, []string{"collisions", "events", "rotation_index"}},
		{campaign.Scenario{Task: "patrol", Model: "lazy", N: 9, Seed: 2, MixedChirality: true}, []string{"max_relocation"}},
		{campaign.Scenario{Task: "swarmlocate", Model: "perceptive", N: 8, Seed: 3, MixedChirality: true}, []string{"lower_bound"}},
	} {
		rec := decodeRecord(t, postJSON(t, ts.URL+"/v1/run", tc.sc))
		if rec.Status != campaign.StatusOK || !rec.Verified {
			t.Errorf("%s: status %s verified=%v (%s)", tc.sc.Key(), rec.Status, rec.Verified, rec.Error)
			continue
		}
		for _, field := range tc.extra {
			if _, ok := rec.Extra[field]; !ok {
				t.Errorf("%s: record lacks extra field %q (have %v)", tc.sc.Key(), field, rec.Extra)
			}
		}
	}

	// A workload outside its model gate is classified, not failed.
	rec := decodeRecord(t, postJSON(t, ts.URL+"/v1/run",
		campaign.Scenario{Task: "swarmlocate", Model: "basic", N: 8, Seed: 1}))
	if rec.Status != campaign.StatusUnsolvable {
		t.Errorf("swarmlocate on basic: status %s, want unsolvable", rec.Status)
	}
}

// TestCampaignValidation: matrix bodies are decoded strictly too.
func TestCampaignValidation(t *testing.T) {
	pool, ts := newTestServer(t, serve.Options{Workers: 1})
	for name, body := range map[string]string{
		"unknown field": `{"task": ["coordinate"], "sizes": [8]}`,
		"bad task":      `{"tasks": ["elect"], "sizes": [8]}`,
		"trailing":      `{"sizes": [8]}{}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/campaign", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	if m := pool.Snapshot(); m.BadRequests != 3 || m.Records != 0 {
		t.Fatalf("metrics after bad requests: %+v", m)
	}
}

// TestRunTaskCaseNormalized: Lookup tolerates casing, but the name feeds the
// cache key and the record — "Coordinate" must land in the same orbit (and
// produce the same record bytes) as "coordinate".
func TestRunTaskCaseNormalized(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Cache: campaign.NewCache(0)})
	rec := decodeRecord(t, postJSON(t, ts.URL+"/v1/run",
		map[string]any{"task": "Coordinate", "model": "basic", "n": 8, "seed": 1}))
	if rec.Task != campaign.TaskCoordinate || rec.Status != campaign.StatusOK {
		t.Fatalf("mixed-case task record: %+v", rec)
	}
	variant := decodeRecord(t, postJSON(t, ts.URL+"/v1/run",
		map[string]any{"task": "coordinate", "model": "basic", "n": 8, "seed": 1, "phase": 3, "reflect": true}))
	if variant.Cache != "hit" {
		t.Errorf("lowercase symmetric variant annotated %q, want hit (cache fragmented by casing)", variant.Cache)
	}
}
