package serve

// Internal tests for admission control: the pending gauge is driven
// directly, so saturation is tested deterministically instead of racing a
// worker pool into a full state.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ringsym/internal/campaign"
)

func newSaturableServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

const runBody = `{"task":"coordinate","model":"basic","n":8,"seed":1}`

func TestAdmissionControl429(t *testing.T) {
	s, ts := newSaturableServer(t, Options{Workers: 1, MaxPending: 2})

	// Below the bound requests are served.
	if resp := post(t, ts.URL+"/v1/run", runBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("unsaturated /v1/run: %s", resp.Status)
	}

	s.pending.Add(2) // saturate
	resp := post(t, ts.URL+"/v1/run", runBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated /v1/run: %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carries no Retry-After header")
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
		t.Errorf("429 body not a JSON error: %v %v", body, err)
	}
	if resp := post(t, ts.URL+"/v1/campaign", `{"sizes":[8],"seeds":[1]}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated /v1/campaign: %s, want 429", resp.Status)
	}

	m := s.Snapshot()
	if m.Throttled != 2 {
		t.Errorf("Throttled = %d, want 2", m.Throttled)
	}
	if m.Pending != 2 {
		t.Errorf("Pending = %d, want 2", m.Pending)
	}

	s.pending.Add(-2) // drain
	if resp := post(t, ts.URL+"/v1/run", runBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("drained /v1/run: %s", resp.Status)
	}
	if m := s.Snapshot(); m.Pending != 0 {
		t.Errorf("Pending after drain = %d, want 0", m.Pending)
	}
}

// TestAdmissionControlCacheHitExempt: shedding load must not refuse answers
// that cost nothing — a memoised scenario is served even at saturation.
func TestAdmissionControlCacheHitExempt(t *testing.T) {
	s, ts := newSaturableServer(t, Options{Workers: 1, MaxPending: 1, Cache: campaign.NewCache(0)})

	// Prime the cache while unsaturated.
	if resp := post(t, ts.URL+"/v1/run", runBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("priming run: %s", resp.Status)
	}

	s.pending.Add(1)
	defer s.pending.Add(-1)
	resp := post(t, ts.URL+"/v1/run", runBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit at saturation: %s, want 200", resp.Status)
	}
	var rec campaign.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Cache != "hit" {
		t.Errorf("record cache = %q, want hit", rec.Cache)
	}
	// A scenario the cache has not seen is still shed.
	if resp := post(t, ts.URL+"/v1/run", `{"task":"coordinate","model":"lazy","n":12,"seed":7}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("fresh scenario at saturation: %s, want 429", resp.Status)
	}
}

// TestMaxPendingDisabledByDefault: the zero value keeps the old unbounded
// queueing behaviour.
func TestMaxPendingDisabledByDefault(t *testing.T) {
	s, ts := newSaturableServer(t, Options{Workers: 1})
	s.pending.Add(1 << 20)
	defer s.pending.Add(-(1 << 20))
	if resp := post(t, ts.URL+"/v1/run", runBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("MaxPending=0 still throttles: %s", resp.Status)
	}
}
