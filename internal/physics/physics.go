// Package physics is an event-driven continuous simulator of the bouncing
// agents.  It tracks every collision explicitly instead of using the closed
// forms of Lemma 1 / Proposition 4, which makes it an independent substrate:
// the analytic engine in internal/ring is cross-validated against it, and the
// trajectory output is used by examples that visualise the dynamics.
//
// Positions and times are float64; the package is not used by the protocol
// implementations (those run on the exact integer engine).
package physics

import (
	"errors"
	"fmt"
	"math"

	"ringsym/internal/ring"
)

// Errors returned by Simulate.
var (
	ErrBadInput      = errors.New("physics: invalid input")
	ErrTooManyEvents = errors.New("physics: event budget exceeded (degenerate configuration?)")
)

// Event records one collision between two agents.
type Event struct {
	// Time is the simulation time of the collision, in ticks.
	Time float64
	// Pos is the position on the circle where the collision happened.
	Pos float64
	// A and B are the ring indices of the colliding agents (A is the
	// anticlockwise one of the adjacent pair).
	A, B int
}

// Result holds the outcome of a simulation.
type Result struct {
	// Final positions by ring index.
	Final []float64
	// FirstColl is the path length travelled by each agent before its first
	// collision; -1 when the agent never collided.
	FirstColl []float64
	// Collisions counts the collisions of each agent.
	Collisions []int
	// Events lists every collision in time order.
	Events []Event
}

// Collided reports whether agent i collided at least once.
func (r *Result) Collided(i int) bool { return r.Collisions[i] > 0 }

const timeEps = 1e-9

// Simulate runs the continuous dynamics for the given duration.  positions
// must be sorted strictly clockwise within [0, circ); dirs gives the initial
// movement of every agent (Idle allowed, with the momentum-transfer rule of
// the lazy model).  Speed is one tick per unit time, so a full round of the
// paper corresponds to duration == circ.
func Simulate(circ float64, positions []float64, dirs []ring.Direction, duration float64) (*Result, error) {
	n := len(positions)
	if n < 2 || len(dirs) != n || circ <= 0 || duration < 0 {
		return nil, fmt.Errorf("%w: n=%d dirs=%d circ=%v duration=%v", ErrBadInput, n, len(dirs), circ, duration)
	}
	for i, p := range positions {
		if p < 0 || p >= circ {
			return nil, fmt.Errorf("%w: position %v out of range", ErrBadInput, p)
		}
		if i > 0 && positions[i-1] >= p {
			return nil, fmt.Errorf("%w: positions must be strictly increasing", ErrBadInput)
		}
	}

	pos := append([]float64(nil), positions...)
	vel := make([]float64, n)
	for i, d := range dirs {
		switch d {
		case ring.Clockwise:
			vel[i] = 1
		case ring.Anticlockwise:
			vel[i] = -1
		case ring.Idle:
			vel[i] = 0
		default:
			return nil, fmt.Errorf("%w: direction %v", ErrBadInput, d)
		}
	}

	res := &Result{
		Final:      pos,
		FirstColl:  make([]float64, n),
		Collisions: make([]int, n),
	}
	path := make([]float64, n)
	for i := range res.FirstColl {
		res.FirstColl[i] = -1
	}

	// gap[i] is the clockwise arc from agent i to agent (i+1)%n.  Because
	// agents never overpass, adjacency in ring-index order is invariant, and
	// maintaining the gaps as explicit state avoids the 0-versus-circ
	// ambiguity that arises when two agents momentarily coincide.
	gap := make([]float64, n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		g := math.Mod(pos[j]-pos[i], circ)
		if g < 0 {
			g += circ
		}
		if n == 2 && i == 1 {
			g = circ - gap[0]
		}
		gap[i] = g
	}

	advanceAll := func(dt float64) {
		if dt <= 0 {
			return
		}
		advance(pos, path, vel, dt, circ)
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			gap[i] += (vel[j] - vel[i]) * dt
			if gap[i] < 0 {
				gap[i] = 0
			}
		}
	}

	now := 0.0
	maxEvents := 16 * n * n * (int(duration/circ) + 2)
	for events := 0; ; events++ {
		if events > maxEvents {
			return nil, ErrTooManyEvents
		}
		// Earliest adjacent-pair collision.
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			approach := vel[i] - vel[j]
			if approach <= 0 {
				continue
			}
			t := gap[i] / approach
			if t < best {
				best = t
			}
		}
		remaining := duration - now
		if best > remaining {
			advanceAll(remaining)
			now = duration
			break
		}
		advanceAll(best)
		now += best
		// Process every pair that is in contact and approaching at this
		// instant.
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			if gap[i] > timeEps {
				continue
			}
			if vel[i]-vel[j] <= 0 {
				continue
			}
			// Exchange velocities: covers both the head-on bounce and the
			// momentum transfer onto an idle agent.
			vel[i], vel[j] = vel[j], vel[i]
			gap[i] = 0
			for _, a := range []int{i, j} {
				if res.FirstColl[a] < 0 {
					res.FirstColl[a] = path[a]
				}
				res.Collisions[a]++
			}
			res.Events = append(res.Events, Event{Time: now, Pos: pos[i], A: i, B: j})
		}
	}
	for i := range pos {
		pos[i] = math.Mod(pos[i], circ)
		if pos[i] < 0 {
			pos[i] += circ
		}
	}
	return res, nil
}

// advance moves every agent for dt time units and accumulates path length.
func advance(pos, path, vel []float64, dt, circ float64) {
	if dt <= 0 {
		return
	}
	for i := range pos {
		pos[i] += vel[i] * dt
		if vel[i] != 0 {
			path[i] += dt
		}
		for pos[i] >= circ {
			pos[i] -= circ
		}
		for pos[i] < 0 {
			pos[i] += circ
		}
	}
}

// SimulateRound is a convenience wrapper running exactly one round
// (duration = circ).
func SimulateRound(circ float64, positions []float64, dirs []ring.Direction) (*Result, error) {
	return Simulate(circ, positions, dirs, circ)
}
