package physics

import (
	"math"
	"math/rand"
	"testing"

	"ringsym/internal/ring"
)

func TestSimulateInputValidation(t *testing.T) {
	_, err := Simulate(0, []float64{1, 2}, []ring.Direction{ring.Clockwise, ring.Clockwise}, 10)
	if err == nil {
		t.Error("zero circumference accepted")
	}
	_, err = Simulate(10, []float64{1}, []ring.Direction{ring.Clockwise}, 10)
	if err == nil {
		t.Error("single agent accepted")
	}
	_, err = Simulate(10, []float64{3, 1}, []ring.Direction{ring.Clockwise, ring.Clockwise}, 10)
	if err == nil {
		t.Error("unsorted positions accepted")
	}
	_, err = Simulate(10, []float64{1, 3}, []ring.Direction{ring.Clockwise}, 10)
	if err == nil {
		t.Error("length mismatch accepted")
	}
	_, err = Simulate(10, []float64{1, 3}, []ring.Direction{ring.Clockwise, ring.Direction(77)}, 10)
	if err == nil {
		t.Error("bad direction accepted")
	}
	_, err = Simulate(10, []float64{1, 30}, []ring.Direction{ring.Clockwise, ring.Clockwise}, 10)
	if err == nil {
		t.Error("out-of-range position accepted")
	}
}

func TestHeadOnCollision(t *testing.T) {
	// Two agents approaching: they bounce and return to their start points
	// after a full round.
	res, err := SimulateRound(100, []float64{0, 10}, []ring.Direction{ring.Clockwise, ring.Anticlockwise})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Collided(0) || !res.Collided(1) {
		t.Fatal("expected both agents to collide")
	}
	if math.Abs(res.FirstColl[0]-5) > 1e-6 || math.Abs(res.FirstColl[1]-5) > 1e-6 {
		t.Fatalf("first collision distances = %v, want 5", res.FirstColl)
	}
	// Rotation index 0: everyone back at the start.
	if math.Abs(res.Final[0]-0) > 1e-6 || math.Abs(res.Final[1]-10) > 1e-6 {
		t.Fatalf("final positions = %v", res.Final)
	}
	if len(res.Events) == 0 {
		t.Fatal("no events recorded")
	}
}

func TestMomentumTransferOntoIdleAgent(t *testing.T) {
	// Design-note example: mover at 0, idle at 10, circumference 20.
	res, err := SimulateRound(20, []float64{0, 10}, []ring.Direction{ring.Clockwise, ring.Idle})
	if err != nil {
		t.Fatal(err)
	}
	// The mover stops at 10, the idle agent carries on and ends at 0.
	if math.Abs(res.Final[0]-10) > 1e-6 || math.Abs(res.Final[1]-0) > 1e-6 {
		t.Fatalf("final positions = %v, want [10 0]", res.Final)
	}
	if math.Abs(res.FirstColl[0]-10) > 1e-6 {
		t.Fatalf("mover first collision = %v, want 10", res.FirstColl[0])
	}
}

func TestUnanimousDirectionNoCollision(t *testing.T) {
	res, err := SimulateRound(100, []float64{0, 10, 40, 70}, []ring.Direction{
		ring.Clockwise, ring.Clockwise, ring.Clockwise, ring.Clockwise,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Collisions {
		if res.Collided(i) {
			t.Fatalf("agent %d collided in a unanimous round", i)
		}
	}
	for i, p := range []float64{0, 10, 40, 70} {
		if math.Abs(res.Final[i]-p) > 1e-6 {
			t.Fatalf("agent %d final = %v, want %v", i, res.Final[i], p)
		}
	}
}

// randomConfig builds a random exact configuration shared by both engines.
func randomConfig(rng *rand.Rand, n int, circ int64, allowIdle bool) ([]int64, []ring.Direction) {
	used := map[int64]bool{}
	positions := make([]int64, 0, n)
	for len(positions) < n {
		// Even tick positions keep everything integral after halving.
		p := 2 * (rng.Int63n(circ / 2))
		if !used[p] {
			used[p] = true
			positions = append(positions, p)
		}
	}
	// Sort clockwise.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if positions[j] < positions[i] {
				positions[i], positions[j] = positions[j], positions[i]
			}
		}
	}
	dirs := make([]ring.Direction, n)
	for i := range dirs {
		switch rng.Intn(3) {
		case 0:
			dirs[i] = ring.Clockwise
		case 1:
			dirs[i] = ring.Anticlockwise
		default:
			if allowIdle {
				dirs[i] = ring.Idle
			} else {
				dirs[i] = ring.Clockwise
			}
		}
	}
	return dirs2positions(positions), dirs
}

func dirs2positions(p []int64) []int64 { return p }

// TestCrossValidateAnalyticEngine compares the closed-form engine
// (internal/ring: Lemma 1 + Proposition 4) against the event-driven
// simulation on random configurations.
func TestCrossValidateAnalyticEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const circ = 1 << 12
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(12)
		model := ring.Perceptive
		allowIdle := trial%3 == 0
		if allowIdle {
			model = ring.Lazy
		}
		positions, dirs := randomConfig(rng, n, circ, allowIdle)

		st, err := ring.New(ring.Config{Model: model, Circ: circ, Positions: positions})
		if err != nil {
			t.Fatalf("trial %d: ring.New: %v", trial, err)
		}
		out, err := st.ExecuteRound(dirs)
		if err != nil {
			t.Fatalf("trial %d: ExecuteRound: %v", trial, err)
		}

		fpos := make([]float64, n)
		for i, p := range positions {
			fpos[i] = float64(p)
		}
		sim, err := SimulateRound(float64(circ), fpos, dirs)
		if err != nil {
			t.Fatalf("trial %d: Simulate: %v", trial, err)
		}

		for i := 0; i < n; i++ {
			want := float64(st.PositionOf(i))
			got := sim.Final[i]
			d := math.Abs(got - want)
			if d > 1e-3 && math.Abs(d-float64(circ)) > 1e-3 {
				t.Fatalf("trial %d agent %d: final position %v (analytic %v), dirs=%v positions=%v",
					trial, i, got, want, dirs, positions)
			}
			if model == ring.Perceptive {
				if out.Agents[i].Collided != sim.Collided(i) {
					t.Fatalf("trial %d agent %d: collided mismatch analytic=%v simulated=%v",
						trial, i, out.Agents[i].Collided, sim.Collided(i))
				}
				if out.Agents[i].Collided {
					// Analytic coll is in half-ticks.
					want := float64(out.Agents[i].Coll) / 2
					if math.Abs(sim.FirstColl[i]-want) > 1e-3 {
						t.Fatalf("trial %d agent %d: first collision %v, analytic %v",
							trial, i, sim.FirstColl[i], want)
					}
				}
			}
		}
	}
}
