package physics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ringsym/internal/ring"
)

// TestMultiRoundRotationComposition runs the continuous simulator for two
// consecutive rounds (duration = 2·circ) with everybody keeping its initial
// direction and checks the composition law implied by Lemma 1: the final
// occupancy is the initial one rotated by twice the single-round rotation
// index.
func TestMultiRoundRotationComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(8)
		circ := 1000.0
		positions := make([]float64, 0, n)
		used := map[int]bool{}
		for len(positions) < n {
			p := r.Intn(1000)
			if !used[p] {
				used[p] = true
				positions = append(positions, float64(p))
			}
		}
		sortFloats(positions)
		dirs := make([]ring.Direction, n)
		nc, na := 0, 0
		for i := range dirs {
			if r.Intn(2) == 0 {
				dirs[i] = ring.Clockwise
				nc++
			} else {
				dirs[i] = ring.Anticlockwise
				na++
			}
		}
		res, err := Simulate(circ, positions, dirs, 2*circ)
		if err != nil {
			return false
		}
		rot := (((nc-na)*2)%n + n) % n
		for i := 0; i < n; i++ {
			want := positions[(i+rot)%n]
			got := res.Final[i]
			d := math.Abs(got - want)
			if d > 1e-3 && math.Abs(d-circ) > 1e-3 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
}

// TestZeroDurationIsIdentity checks the degenerate duration.
func TestZeroDurationIsIdentity(t *testing.T) {
	res, err := Simulate(100, []float64{1, 50}, []ring.Direction{ring.Clockwise, ring.Anticlockwise}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final[0] != 1 || res.Final[1] != 50 || len(res.Events) != 0 {
		t.Fatalf("zero-duration simulation changed state: %+v", res)
	}
}

// TestEveryAgentCollidesWhenBothDirectionsPresent verifies the claim used by
// the emptiness test of Lemma 12: within one round, if at least one agent
// moves each way, every agent collides at least once.
func TestEveryAgentCollidesWhenBothDirectionsPresent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(10)
		circ := 2048.0
		used := map[int]bool{}
		positions := make([]float64, 0, n)
		for len(positions) < n {
			p := r.Intn(2048)
			if !used[p] {
				used[p] = true
				positions = append(positions, float64(p))
			}
		}
		sortFloats(positions)
		dirs := make([]ring.Direction, n)
		for i := range dirs {
			dirs[i] = ring.Clockwise
		}
		dirs[r.Intn(n)] = ring.Anticlockwise // at least one each way
		res, err := SimulateRound(circ, positions, dirs)
		if err != nil {
			return false
		}
		for i := range dirs {
			if !res.Collided(i) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
