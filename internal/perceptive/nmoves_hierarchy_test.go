package perceptive

import (
	"testing"

	"ringsym/internal/core"
	"ringsym/internal/engine"
	"ringsym/internal/netgen"
	"ringsym/internal/ring"
)

// TestNMoveSLocalLeaderHierarchy forces the hard path of Algorithm 4: when
// every agent shares the same orientation, the all-clockwise probe has
// rotation index 0, so the algorithm must build the local-leader hierarchy
// and execute selective families until exactly one leader flips.
func TestNMoveSLocalLeaderHierarchy(t *testing.T) {
	for _, n := range []int{6, 8, 12} {
		for seed := int64(0); seed < 3; seed++ {
			nw := newNetwork(t, netgen.Options{N: n, IDBound: 8 * n, Seed: seed})
			type out struct {
				dir    ring.Direction
				rounds int
			}
			res, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
				f := core.NewFrame(a)
				dir, err := NMoveS(f, 13)
				return out{dir, f.RoundsUsed()}, err
			})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			dirs := make([]ring.Direction, nw.N())
			for i, o := range res.Outputs {
				// All agents share the global orientation and never flip
				// inside NMoveS, so the frame direction is objective.
				dirs[i] = o.dir
				if o.rounds <= 4 {
					t.Errorf("n=%d seed=%d: only %d rounds used; the hierarchy path was not exercised", n, seed, o.rounds)
				}
			}
			if r := ring.RotationIndex(nw.N(), dirs); r == 0 || r == nw.N()/2 {
				t.Fatalf("n=%d seed=%d: NMoveS returned a trivial rotation %d", n, seed, r)
			}
		}
	}
}

// TestNMoveSBalancedOrientations forces the other trivial starting point: a
// perfectly balanced orientation split, for which the all-clockwise probe has
// rotation index 0 as well (n/2 agents move each way).
func TestNMoveSBalancedOrientations(t *testing.T) {
	const n = 8
	cfg := netgen.MustGenerate(netgen.Options{N: n, IDBound: 64, Seed: 5})
	cfg.Chirality = make([]bool, n)
	for i := range cfg.Chirality {
		cfg.Chirality[i] = i%2 == 0 // exactly half the agents flipped
	}
	nw, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		dir     ring.Direction
		flipped bool
	}
	res, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
		f := core.NewFrame(a)
		dir, err := NMoveS(f, 2)
		return out{dir, f.Flipped()}, err
	})
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]ring.Direction, n)
	for i, o := range res.Outputs {
		dirs[i] = objectiveDir(o.dir, o.flipped, nw.ChiralityOf(i))
	}
	if r := ring.RotationIndex(n, dirs); r == 0 || r == n/2 {
		t.Fatalf("rotation %d is trivial", r)
	}
}
