package perceptive

import (
	"fmt"

	"ringsym/internal/core"
	"ringsym/internal/engine"
	"ringsym/internal/rcomm"
)

// DiscoveryResult is the outcome of the full perceptive location-discovery
// pipeline for one agent.
type DiscoveryResult struct {
	// IsLeader reports whether this agent was elected leader.
	IsLeader bool
	// Label is the agent's clockwise ring distance from the leader plus one
	// (the leader has label 1).
	Label int
	// N is the discovered number of agents.
	N int
	// Gaps is the leader-relative gap vector: Gaps[j] is the arc (half-ticks)
	// from the agent with label j+1 to the agent with label j+2.
	Gaps []int64
	// Positions[t] is the arc, measured in the agreed clockwise direction,
	// from this agent's initial position to the initial position of the agent
	// at ring distance t clockwise from it (Positions[0] = 0).
	Positions []int64
	// Round accounting per stage.
	RoundsCoordination int
	RoundsRingDist     int
	RoundsDistances    int
}

// LocationDiscovery implements Theorem 42: location discovery in the
// perceptive model in n/2 + O(√n·log²N) rounds for even n (the paper's
// setting; odd n is handled by the lazy-model style sweep in
// internal/discovery).  The pipeline is: NMoveS → direction agreement →
// leader election → neighbour re-discovery in the agreed frame → RingDist →
// size broadcast → Distances → per-agent solution of the arc equations.
func LocationDiscovery(a *engine.Agent, opts Options) (*DiscoveryResult, error) {
	return engine.RunMachine(a, LocationDiscoveryMachine(a, opts))
}

// LocationDiscoveryMachine builds the full location-discovery pipeline as a
// resumable machine for the engine's v3 scheduler; LocationDiscovery drives
// the same machine through the blocking dispatcher on the v1/v2 runtimes.
func LocationDiscoveryMachine(a *engine.Agent, opts Options) *engine.Proto[*DiscoveryResult] {
	return engine.NewProto(func(done func(*DiscoveryResult, error) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return LocationDiscoveryStep(a, opts, func(r *DiscoveryResult) (engine.Yield, engine.Cont) {
			return done(r, nil)
		})
	})
}

// LocationDiscoveryStep is the machine form of LocationDiscovery.
func LocationDiscoveryStep(a *engine.Agent, opts Options, k func(*DiscoveryResult) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	return CoordinateStep(a, opts, func(coord *core.Coordination) (engine.Yield, engine.Cont) {
		f := coord.Frame
		afterCoord := f.RoundsUsed()

		// The link must be rebuilt because direction agreement may have flipped
		// the frame after NMoveS's neighbour discovery.
		return rcomm.EstablishStep(f, func(link *rcomm.Link) (engine.Yield, engine.Cont) {
			return RingDistStep(link, coord.IsLeader, func(label int, isLast bool) (engine.Yield, engine.Cont) {
				return BroadcastSizeStep(f, isLast, label, func(n int) (engine.Yield, engine.Cont) {
					if n < 5 || label < 1 || label > n {
						return engine.Abort(fmt.Errorf("%w: ring distance stage produced label %d, n %d", ErrProtocol, label, n))
					}
					afterRingDist := f.RoundsUsed()

					return DistancesStep(f, label, n, func(gaps []int64, offset int) (engine.Yield, engine.Cont) {
						positions, err := relativePositions(f, label, n, gaps, offset)
						if err != nil {
							return engine.Abort(err)
						}
						return k(&DiscoveryResult{
							IsLeader:           coord.IsLeader,
							Label:              label,
							N:                  n,
							Gaps:               gaps,
							Positions:          positions,
							RoundsCoordination: afterCoord,
							RoundsRingDist:     afterRingDist - afterCoord,
							RoundsDistances:    f.RoundsUsed() - afterRingDist,
						})
					})
				})
			})
		})
	})
}

// relativePositions converts the leader-relative gap vector into positions
// relative to this agent's own initial position.  The agent knows the arc
// from its initial to its current position (the running sum of its dist()
// observations), its current leader-relative slot (label − 1 + offset), and
// the full slot geometry, so it can identify the slot it started from and
// read off everybody's initial position.
func relativePositions(f *core.Frame, label, n int, gaps []int64, offset int) ([]int64, error) {
	full := f.FullCircle()
	prefix := make([]int64, n)
	for j := 1; j < n; j++ {
		prefix[j] = prefix[j-1] + gaps[j-1]
	}
	cur := ((label-1+offset)%n + n) % n
	initialCoord := ((prefix[cur]-f.Displacement())%full + full) % full
	initIdx := -1
	for j := 0; j < n; j++ {
		if prefix[j] == initialCoord {
			initIdx = j
			break
		}
	}
	if initIdx < 0 {
		return nil, fmt.Errorf("%w: initial position does not coincide with a discovered slot", ErrProtocol)
	}
	positions := make([]int64, n)
	for t := 0; t < n; t++ {
		positions[t] = ((prefix[(initIdx+t)%n]-prefix[initIdx])%full + full) % full
	}
	return positions, nil
}
