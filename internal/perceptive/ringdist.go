package perceptive

import (
	"fmt"

	"ringsym/internal/comb"
	"ringsym/internal/core"
	"ringsym/internal/engine"
	"ringsym/internal/rcomm"
	"ringsym/internal/ring"
)

// ringDistResult carries RingDist's result through the blocking wrapper.
type ringDistResult struct {
	label  int
	isLast bool
}

// RingDist implements Algorithm 5: every agent learns its label, i.e. its
// clockwise ring distance from the elected leader plus one (the leader has
// label 1, its clockwise neighbour label 2, ..., its anticlockwise neighbour
// label n).
//
// Preconditions: the perceptive model, an elected unique leader, a common
// sense of direction (the frame underlying the link is the agreed one) and a
// configuration-preserving link (as produced by rcomm.Establish after
// direction agreement).  The algorithm preserves the configuration.
//
// In iteration i (k = 2^i) the agents with labels k(j+1) for j = 1..k learn
// their labels from the arithmetic identity of Proposition 37/Corollary 38:
// the distance 2z to their first collision in Shift(k) equals the sum of the
// displacements y_1..y_j observed in j executions of Shift(−k/2) exactly when
// their label is k + jk.  Newly labelled agents then announce their label
// within ring distance k, which labels everybody up to a_{k²+2k}.  The loop
// ends when the leader's anticlockwise neighbour (which knows it is the last
// agent from the initial announcement) reports, through a rotation-signalling
// round, that it has learned its label.
//
// The returned values are the agent's label and whether it is the last agent
// (label n).  Cost: O(√n·log N) rounds.
func RingDist(link *rcomm.Link, isLeader bool) (label int, isLast bool, err error) {
	r, err := engine.RunStep(link.Frame().Agent(), func(k func(ringDistResult) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return RingDistStep(link, isLeader, func(label int, isLast bool) (engine.Yield, engine.Cont) {
			return k(ringDistResult{label: label, isLast: isLast})
		})
	})
	return r.label, r.isLast, err
}

// RingDistStep is the machine form of RingDist.
func RingDistStep(link *rcomm.Link, isLeader bool, k func(label int, isLast bool) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	f := link.Frame()
	if !f.Agent().Model().RevealsCollision() {
		return engine.Abort(ErrNeedPerceptive)
	}
	label := 0
	if isLeader {
		label = 1
	}
	isLast := false

	// shiftDir is the agent's direction in one round of Shift(l) (for l > 0)
	// or Shift(-|l|) (for l < 0): agents with a known label at most |l| move
	// clockwise (resp. anticlockwise), everybody else the other way.
	shiftDir := func(l int) ring.Direction {
		limit := l
		inside := ring.Clockwise
		if l < 0 {
			limit = -l
			inside = ring.Anticlockwise
		}
		if label != 0 && label <= limit {
			return inside
		}
		return inside.Opposite()
	}

	// The leader announces itself over ring distance 4 so that agents a_2..a_5
	// know their labels before the first iteration, and a_n learns that it is
	// the leader's anticlockwise neighbour.
	return link.DisseminateSparseStep(isLeader, 1, 1, 4, func(left, right rcomm.SideInfo) (engine.Yield, engine.Cont) {
		if right.Found && right.Hops == 1 && !isLeader {
			isLast = true
		}
		if label == 0 && left.Found {
			label = 1 + left.Hops
		}

		var iter func(kk int) (engine.Yield, engine.Cont)
		iter = func(kk int) (engine.Yield, engine.Cont) {
			if kk > 4*f.IDBound() {
				return engine.Abort(fmt.Errorf("%w: RingDist exceeded the identifier bound", ErrExhausted))
			}
			// Phase A: k executions of Shift(-k/2); record the anticlockwise
			// displacement of each.  The agent's direction is constant for the
			// whole phase (labels only change in phase C), so the k rounds are
			// one leap batch — and so is the undo phase, whose observations are
			// discarded and therefore only need the aggregate form.
			return f.RoundNStep(shiftDir(-(kk / 2)), kk, func(trace []engine.Observation) (engine.Yield, engine.Cont) {
				ys := make([]int64, 0, kk)
				for _, obs := range trace {
					y := int64(0)
					if obs.Dist != 0 {
						y = f.FullCircle() - obs.Dist
					}
					ys = append(ys, y)
				}
				return f.RoundNSumStep(shiftDir(kk/2), kk, func(int64) (engine.Yield, engine.Cont) {
					// Phase B: Shift(k) yields the first-collision distance z;
					// Shift(-k) undoes it.
					return f.RoundStep(shiftDir(kk), func(obsZ engine.Observation) (engine.Yield, engine.Cont) {
						return f.RoundStep(shiftDir(-kk), func(engine.Observation) (engine.Yield, engine.Cont) {
							// Corollary 38: an unlabelled agent has label k + jk
							// exactly when twice its first-collision distance
							// equals y_1 + ... + y_j.  Agents that already know
							// such a label (from an earlier iteration) mark
							// themselves again, exactly as in the paper, so that
							// the contiguous coverage of announced labels keeps
							// extending by k² per iteration.
							marked := false
							switch {
							case label > kk && label%kk == 0 && label <= kk*kk+kk:
								marked = true
							case label == 0 && obsZ.Collided:
								var sum int64
								for j := 0; j < kk; j++ {
									sum += ys[j]
									if 2*obsZ.Coll == sum {
										label = kk + (j+1)*kk
										marked = true
										break
									}
								}
							}
							// Phase C: newly labelled agents announce their label
							// over distance k.
							labelBits := comb.Bits(kk*kk + kk)
							payload := uint64(0)
							if marked {
								payload = uint64(label)
							}
							return link.DisseminateSparseStep(marked, payload, labelBits, kk, func(dl, dr rcomm.SideInfo) (engine.Yield, engine.Cont) {
								if label == 0 {
									switch {
									case dl.Found:
										// The source sits on our anticlockwise
										// side: we are dl.Hops positions
										// clockwise of it.
										label = int(dl.Payload) + dl.Hops
									case dr.Found:
										label = int(dr.Payload) - dr.Hops
									}
								}
								// Completeness check: a_n moves clockwise iff it
								// knows its label, everybody else anticlockwise;
								// the rotation index is nonzero exactly when a_n
								// is labelled, which (by the contiguous coverage
								// of labels) means everybody is.  The probe is
								// paired with a reversed round so the
								// configuration is preserved.
								probeDir := ring.Anticlockwise
								if isLast && label != 0 {
									probeDir = ring.Clockwise
								}
								return f.RoundPairStep(probeDir, func(obs engine.Observation) (engine.Yield, engine.Cont) {
									if obs.Dist != 0 {
										return k(label, isLast)
									}
									return iter(kk * 2)
								})
							})
						})
					})
				})
			})
		}
		return iter(2)
	})
}

// BroadcastSize makes the last agent (label n, the leader's anticlockwise
// neighbour) announce the network size n to every agent over the
// rotation-signalling channel, one bit per paired round, so the configuration
// is preserved.  Every agent returns n.  Cost: 2·⌈log2 N⌉ rounds.
func BroadcastSize(f *core.Frame, isLast bool, ownLabel int) (int, error) {
	return engine.RunStep(f.Agent(), func(k func(int) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return BroadcastSizeStep(f, isLast, ownLabel, k)
	})
}

// BroadcastSizeStep is the machine form of BroadcastSize.
func BroadcastSizeStep(f *core.Frame, isLast bool, ownLabel int, k func(int) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	bits := comb.Bits(f.IDBound())
	value := uint64(0)
	if isLast {
		value = uint64(ownLabel)
	}
	// The full schedule — one information round plus one reversed round per
	// bit — depends only on the broadcaster's own value, so the whole
	// broadcast is one leap batch.
	dirs := make([]ring.Direction, 0, 2*bits)
	for i := 0; i < bits; i++ {
		dir := ring.Anticlockwise
		if isLast && (value>>i)&1 == 1 {
			dir = ring.Clockwise
		}
		dirs = append(dirs, dir, dir.Opposite())
	}
	return f.RoundScheduleStep(dirs, func(trace []engine.Observation) (engine.Yield, engine.Cont) {
		var received uint64
		for i := 0; i < bits; i++ {
			if trace[2*i].Dist != 0 {
				received |= 1 << i
			}
		}
		if isLast {
			return k(ownLabel)
		}
		return k(int(received))
	})
}
