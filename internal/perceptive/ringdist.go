package perceptive

import (
	"fmt"

	"ringsym/internal/comb"
	"ringsym/internal/core"
	"ringsym/internal/engine"
	"ringsym/internal/rcomm"
	"ringsym/internal/ring"
)

// RingDist implements Algorithm 5: every agent learns its label, i.e. its
// clockwise ring distance from the elected leader plus one (the leader has
// label 1, its clockwise neighbour label 2, ..., its anticlockwise neighbour
// label n).
//
// Preconditions: the perceptive model, an elected unique leader, a common
// sense of direction (the frame underlying the link is the agreed one) and a
// configuration-preserving link (as produced by rcomm.Establish after
// direction agreement).  The algorithm preserves the configuration.
//
// In iteration i (k = 2^i) the agents with labels k(j+1) for j = 1..k learn
// their labels from the arithmetic identity of Proposition 37/Corollary 38:
// the distance 2z to their first collision in Shift(k) equals the sum of the
// displacements y_1..y_j observed in j executions of Shift(−k/2) exactly when
// their label is k + jk.  Newly labelled agents then announce their label
// within ring distance k, which labels everybody up to a_{k²+2k}.  The loop
// ends when the leader's anticlockwise neighbour (which knows it is the last
// agent from the initial announcement) reports, through a rotation-signalling
// round, that it has learned its label.
//
// The returned values are the agent's label and whether it is the last agent
// (label n).  Cost: O(√n·log N) rounds.
func RingDist(link *rcomm.Link, isLeader bool) (label int, isLast bool, err error) {
	f := link.Frame()
	if !f.Agent().Model().RevealsCollision() {
		return 0, false, ErrNeedPerceptive
	}
	if isLeader {
		label = 1
	}

	// The leader announces itself over ring distance 4 so that agents a_2..a_5
	// know their labels before the first iteration, and a_n learns that it is
	// the leader's anticlockwise neighbour.
	left, right, err := link.DisseminateSparse(isLeader, 1, 1, 4)
	if err != nil {
		return 0, false, err
	}
	if right.Found && right.Hops == 1 && !isLeader {
		isLast = true
	}
	if label == 0 && left.Found {
		label = 1 + left.Hops
	}

	// shiftDir is the agent's direction in one round of Shift(l) (for l > 0)
	// or Shift(-|l|) (for l < 0): agents with a known label at most |l| move
	// clockwise (resp. anticlockwise), everybody else the other way.
	shiftDir := func(l int) ring.Direction {
		limit := l
		inside := ring.Clockwise
		if l < 0 {
			limit = -l
			inside = ring.Anticlockwise
		}
		if label != 0 && label <= limit {
			return inside
		}
		return inside.Opposite()
	}
	shift := func(l int) (engine.Observation, error) {
		return f.Round(shiftDir(l))
	}

	for k := 2; ; k *= 2 {
		if k > 4*f.IDBound() {
			return 0, false, fmt.Errorf("%w: RingDist exceeded the identifier bound", ErrExhausted)
		}
		// Phase A: k executions of Shift(-k/2); record the anticlockwise
		// displacement of each.  The agent's direction is constant for the
		// whole phase (labels only change in phase C), so the k rounds are
		// one leap batch — and so is the undo phase, whose observations are
		// discarded and therefore only need the aggregate form.
		trace, err := f.RoundN(shiftDir(-(k / 2)), k)
		if err != nil {
			return 0, false, err
		}
		ys := make([]int64, 0, k)
		for _, obs := range trace {
			y := int64(0)
			if obs.Dist != 0 {
				y = f.FullCircle() - obs.Dist
			}
			ys = append(ys, y)
		}
		if _, err := f.RoundNSum(shiftDir(k/2), k); err != nil {
			return 0, false, err
		}
		// Phase B: Shift(k) yields the first-collision distance z; Shift(-k)
		// undoes it.
		obsZ, err := shift(k)
		if err != nil {
			return 0, false, err
		}
		if _, err := shift(-k); err != nil {
			return 0, false, err
		}
		// Corollary 38: an unlabelled agent has label k + jk exactly when
		// twice its first-collision distance equals y_1 + ... + y_j.  Agents
		// that already know such a label (from an earlier iteration) mark
		// themselves again, exactly as in the paper, so that the contiguous
		// coverage of announced labels keeps extending by k² per iteration.
		marked := false
		switch {
		case label > k && label%k == 0 && label <= k*k+k:
			marked = true
		case label == 0 && obsZ.Collided:
			var sum int64
			for j := 0; j < k; j++ {
				sum += ys[j]
				if 2*obsZ.Coll == sum {
					label = k + (j+1)*k
					marked = true
					break
				}
			}
		}
		// Phase C: newly labelled agents announce their label over distance k.
		labelBits := comb.Bits(k*k + k)
		payload := uint64(0)
		if marked {
			payload = uint64(label)
		}
		dl, dr, err := link.DisseminateSparse(marked, payload, labelBits, k)
		if err != nil {
			return 0, false, err
		}
		if label == 0 {
			switch {
			case dl.Found:
				// The source sits on our anticlockwise side: we are dl.Hops
				// positions clockwise of it.
				label = int(dl.Payload) + dl.Hops
			case dr.Found:
				label = int(dr.Payload) - dr.Hops
			}
		}
		// Completeness check: a_n moves clockwise iff it knows its label,
		// everybody else anticlockwise; the rotation index is nonzero exactly
		// when a_n is labelled, which (by the contiguous coverage of labels)
		// means everybody is.  The probe is paired with a reversed round so
		// the configuration is preserved.
		probeDir := ring.Anticlockwise
		if isLast && label != 0 {
			probeDir = ring.Clockwise
		}
		obs, err := f.RoundPair(probeDir)
		if err != nil {
			return 0, false, err
		}
		if obs.Dist != 0 {
			return label, isLast, nil
		}
	}
}

// BroadcastSize makes the last agent (label n, the leader's anticlockwise
// neighbour) announce the network size n to every agent over the
// rotation-signalling channel, one bit per paired round, so the configuration
// is preserved.  Every agent returns n.  Cost: 2·⌈log2 N⌉ rounds.
func BroadcastSize(f *core.Frame, isLast bool, ownLabel int) (int, error) {
	bits := comb.Bits(f.IDBound())
	value := uint64(0)
	if isLast {
		value = uint64(ownLabel)
	}
	// The full schedule — one information round plus one reversed round per
	// bit — depends only on the broadcaster's own value, so the whole
	// broadcast is one leap batch.
	dirs := make([]ring.Direction, 0, 2*bits)
	for i := 0; i < bits; i++ {
		dir := ring.Anticlockwise
		if isLast && (value>>i)&1 == 1 {
			dir = ring.Clockwise
		}
		dirs = append(dirs, dir, dir.Opposite())
	}
	trace, err := f.RoundSchedule(dirs, nil)
	if err != nil {
		return 0, err
	}
	var received uint64
	for i := 0; i < bits; i++ {
		if trace[2*i].Dist != 0 {
			received |= 1 << i
		}
	}
	if isLast {
		return ownLabel, nil
	}
	return int(received), nil
}
