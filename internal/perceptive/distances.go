package perceptive

import (
	"fmt"

	"ringsym/internal/arcsolve"
	"ringsym/internal/core"
	"ringsym/internal/engine"
	"ringsym/internal/ring"
)

// convolutionException returns the even label that is exceptionally sent
// clockwise in the t-th Convolution round (Algorithm 6 uses
// j = (n − 2(t−1))/2, i.e. the exception label walks downwards from the
// largest even label by two per round, wrapping around).
func convolutionException(n, t int) int {
	m := n / 2
	j := (m - (t - 1)) % m
	if j <= 0 {
		j += m
	}
	return 2 * j
}

// convolutionDir is the direction of the agent with the given label in
// Convolution(e/2): odd labels move clockwise, even labels anticlockwise,
// except label e which moves clockwise.
func convolutionDir(label, e int) ring.Direction {
	if label%2 == 1 || label == e {
		return ring.Clockwise
	}
	return ring.Anticlockwise
}

// convolutionRotation is the rotation index of a Convolution round on n
// agents (2 for even n, 3 for odd n).
func convolutionRotation(n int) int {
	numCW := (n+1)/2 + 1
	return ((2*numCW-n)%n + n) % n
}

// pivotDir is the direction of the agent with the given label in Pivot(p):
// the n/2 agents clockwise of the pivot point (labels p+1..p+n/2) move
// anticlockwise and the other half moves clockwise, so the rotation index is
// zero while the collisions around the pivot yield fresh equations.
func pivotDir(label, p, n int) ring.Direction {
	d := ((label-(p+1))%n + n) % n
	if d < n/2 {
		return ring.Anticlockwise
	}
	return ring.Clockwise
}

// spanToOpposite returns the number of ring positions from the agent with
// myLabel to the nearest agent, in the direction of myDir, that moves in the
// opposite direction under the assignment dirOf.  ok is false when every
// agent moves the same way.
func spanToOpposite(dirOf func(label int) ring.Direction, myLabel, n int, myDir ring.Direction) (span int, ok bool) {
	want := myDir.Opposite()
	step := 1
	if myDir == ring.Anticlockwise {
		step = -1
	}
	for s := 1; s < n; s++ {
		l := myLabel + step*s
		l = ((l-1)%n+n)%n + 1
		if dirOf(l) == want {
			return s, true
		}
	}
	return 0, false
}

// distancesResult carries Distances' result through the blocking wrapper.
type distancesResult struct {
	gaps   []int64
	offset int
}

// Distances implements Algorithm 6 together with the equation bookkeeping
// that the paper describes informally: every round contributes the dist()
// equation (an arc of `rotation index` consecutive gaps) and, when the agent
// collides, the coll() equation (the arc to the nearest oppositely-moving
// agent, which the agent can identify because the schedule is a function of
// the publicly known labels).  The equations are difference constraints over
// the prefix sums of the unknown gaps and are solved incrementally
// (internal/arcsolve).
//
// The schedule is the paper's: ⌈n/2⌉ Convolution rounds followed, for even n,
// by Pivot(n), Pivot(n−1), Pivot(n−2).  A completeness loop (one paired probe
// round plus, if needed, one extra Convolution round per iteration) guards
// the reconstruction so that every agent provably terminates with the full
// gap vector; with the paper's schedule the loop exits immediately.
//
// Preconditions: perceptive model, common sense of direction, labels and n
// known (RingDist + BroadcastSize), configuration equal to the reference
// configuration the labels refer to.
//
// Returns the leader-relative gap vector (g_j is the arc from the agent with
// label j+1 to the agent with label j+2) and the agent's final ring offset
// from the reference configuration.
func Distances(f *core.Frame, label, n int) (gaps []int64, finalOffset int, err error) {
	r, err := engine.RunStep(f.Agent(), func(k func(distancesResult) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return DistancesStep(f, label, n, func(gaps []int64, offset int) (engine.Yield, engine.Cont) {
			return k(distancesResult{gaps: gaps, offset: offset})
		})
	})
	return r.gaps, r.offset, err
}

// DistancesStep is the machine form of Distances.
func DistancesStep(f *core.Frame, label, n int, k func(gaps []int64, finalOffset int) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	if label < 1 || label > n || n < 5 {
		return engine.Abort(fmt.Errorf("%w: label %d of %d", ErrProtocol, label, n))
	}
	solver, err := arcsolve.New(n, f.FullCircle())
	if err != nil {
		return engine.Abort(err)
	}
	rel := label - 1
	offset := 0

	// record folds one round's observation into the solver: the dist()
	// equation of the round's rotation and, on a collision, the coll()
	// equation against the nearest oppositely-moving agent (identifiable
	// because the schedule is a function of the public labels).
	record := func(dirOf func(label int) ring.Direction, rotation int, obs engine.Observation) error {
		myDir := dirOf(label)
		cur := ((rel+offset)%n + n) % n
		if rotation%n != 0 {
			if err := solver.AddArc(cur, rotation%n, obs.Dist); err != nil {
				return err
			}
		}
		if obs.Collided {
			if span, ok := spanToOpposite(dirOf, label, n, myDir); ok {
				from := cur
				if myDir == ring.Anticlockwise {
					from = ((cur-span)%n + n) % n
				}
				if err := solver.AddArc(from, span, 2*obs.Coll); err != nil {
					return err
				}
			}
		}
		offset = (offset + rotation) % n
		return nil
	}

	convolutionStep := func(t int, next func() (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		e := convolutionException(n, t)
		dirOf := func(l int) ring.Direction { return convolutionDir(l, e) }
		return f.RoundStep(dirOf(label), func(obs engine.Observation) (engine.Yield, engine.Cont) {
			if err := record(dirOf, convolutionRotation(n), obs); err != nil {
				return engine.Abort(err)
			}
			return next()
		})
	}

	// The paper's main schedule — ⌈n/2⌉ Convolution rounds plus, for even n,
	// the three Pivot rounds — is fixed by the public labels alone, so every
	// agent submits it as a single leap batch and runs the equation
	// bookkeeping over the returned trace.
	type schedRound struct {
		dirOf    func(label int) ring.Direction
		rotation int
	}
	var sched []schedRound
	for t := 1; t <= (n+1)/2; t++ {
		e := convolutionException(n, t)
		sched = append(sched, schedRound{
			dirOf:    func(l int) ring.Direction { return convolutionDir(l, e) },
			rotation: convolutionRotation(n),
		})
	}
	if n%2 == 0 {
		for _, p := range []int{n, n - 1, n - 2} {
			p := p
			sched = append(sched, schedRound{
				dirOf:    func(l int) ring.Direction { return pivotDir(l, p, n) },
				rotation: 0,
			})
		}
	}
	dirs := make([]ring.Direction, len(sched))
	for t, sr := range sched {
		dirs[t] = sr.dirOf(label)
	}
	return f.RoundScheduleStep(dirs, func(trace []engine.Observation) (engine.Yield, engine.Cont) {
		for t, sr := range sched {
			if err := record(sr.dirOf, sr.rotation, trace[t]); err != nil {
				return engine.Abort(err)
			}
		}

		// Completeness loop: exit only when every agent has solved its system.
		var loop func(iter int) (engine.Yield, engine.Cont)
		loop = func(iter int) (engine.Yield, engine.Cont) {
			probeDir := ring.Clockwise
			if solver.Solved() {
				probeDir = ring.Anticlockwise
			}
			return f.RoundPairStep(probeDir, func(probe engine.Observation) (engine.Yield, engine.Cont) {
				if solver.Solved() && !probe.Collided && probe.Dist == 0 {
					gaps, err := solver.Gaps()
					if err != nil {
						return engine.Abort(err)
					}
					return k(gaps, offset)
				}
				if iter > 4*n {
					return engine.Abort(fmt.Errorf("%w: Distances did not converge", ErrExhausted))
				}
				return convolutionStep((n+1)/2+iter+1, func() (engine.Yield, engine.Cont) {
					return loop(iter + 1)
				})
			})
		}
		return loop(0)
	})
}
