package perceptive

import (
	"errors"
	"testing"

	"ringsym/internal/core"
	"ringsym/internal/engine"
	"ringsym/internal/netgen"
	"ringsym/internal/rcomm"
	"ringsym/internal/ring"
)

func newNetwork(t *testing.T, opt netgen.Options) *engine.Network {
	t.Helper()
	opt.Model = ring.Perceptive
	cfg, err := netgen.Generate(opt)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func objectiveDir(dir ring.Direction, flipped, chirality bool) ring.Direction {
	if dir == ring.Idle {
		return dir
	}
	if flipped {
		dir = dir.Opposite()
	}
	if !chirality {
		dir = dir.Opposite()
	}
	return dir
}

func TestNMoveSRequiresPerceptive(t *testing.T) {
	cfg := netgen.MustGenerate(netgen.Options{N: 6, Seed: 1})
	cfg.Model = ring.Basic
	nw, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = engine.Run(nw, func(a *engine.Agent) (struct{}, error) {
		_, err := NMoveS(core.NewFrame(a), 1)
		return struct{}{}, err
	})
	if !errors.Is(err, ErrNeedPerceptive) {
		t.Fatalf("got %v, want ErrNeedPerceptive", err)
	}
}

// TestNMoveS verifies Algorithm 4 on even-size networks with adversarially
// balanced orientations (the hard case of the basic model).
func TestNMoveS(t *testing.T) {
	for _, n := range []int{6, 8, 12, 16} {
		for seed := int64(0); seed < 3; seed++ {
			nw := newNetwork(t, netgen.Options{
				N: n, IDBound: 8 * n, Seed: seed,
				MixedChirality: true, ForceSplitChirality: true,
			})
			type out struct {
				dir     ring.Direction
				flipped bool
			}
			res, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
				f := core.NewFrame(a)
				dir, err := NMoveS(f, 7)
				return out{dir, f.Flipped()}, err
			})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			dirs := make([]ring.Direction, nw.N())
			for i, o := range res.Outputs {
				dirs[i] = objectiveDir(o.dir, o.flipped, nw.ChiralityOf(i))
			}
			if r := ring.RotationIndex(nw.N(), dirs); r == 0 || r == nw.N()/2 {
				t.Fatalf("n=%d seed=%d: NMoveS produced a trivial rotation %d", n, seed, r)
			}
		}
	}
}

// TestCoordinate verifies leader uniqueness and direction agreement through
// the perceptive pipeline.
func TestCoordinate(t *testing.T) {
	for _, n := range []int{6, 9, 10} {
		nw := newNetwork(t, netgen.Options{
			N: n, IDBound: 64, Seed: int64(n), MixedChirality: true, ForceSplitChirality: true,
		})
		type out struct {
			leader  bool
			flipped bool
		}
		res, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
			c, err := Coordinate(a, Options{Seed: 5})
			if err != nil {
				return out{}, err
			}
			return out{c.IsLeader, c.Frame.Flipped()}, nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		leaders := 0
		var ref bool
		for i, o := range res.Outputs {
			if o.leader {
				leaders++
			}
			frameIsGlobal := nw.ChiralityOf(i) != o.flipped
			if i == 0 {
				ref = frameIsGlobal
			} else if frameIsGlobal != ref {
				t.Errorf("n=%d: agent %d disagrees on direction", n, i)
			}
		}
		if leaders != 1 {
			t.Errorf("n=%d: %d leaders", n, leaders)
		}
	}
}

// TestRingDistLabels verifies Algorithm 5: labels are the clockwise ring
// distances from the leader (in the agreed direction), and BroadcastSize
// delivers n to everybody.
func TestRingDistLabels(t *testing.T) {
	for _, n := range []int{6, 8, 11, 16} {
		nw := newNetwork(t, netgen.Options{
			N: n, IDBound: 128, Seed: int64(100 + n), MixedChirality: true, ForceSplitChirality: true,
		})
		type out struct {
			leader  bool
			label   int
			size    int
			flipped bool
		}
		res, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
			c, err := Coordinate(a, Options{Seed: 9})
			if err != nil {
				return out{}, err
			}
			link, err := rcomm.Establish(c.Frame)
			if err != nil {
				return out{}, err
			}
			label, isLast, err := RingDist(link, c.IsLeader)
			if err != nil {
				return out{}, err
			}
			size, err := BroadcastSize(c.Frame, isLast, label)
			if err != nil {
				return out{}, err
			}
			return out{c.IsLeader, label, size, c.Frame.Flipped()}, nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		leaderIdx := -1
		for i, o := range res.Outputs {
			if o.leader {
				leaderIdx = i
			}
			if o.size != n {
				t.Errorf("n=%d: agent %d learned size %d", n, i, o.size)
			}
		}
		if leaderIdx < 0 {
			t.Fatalf("n=%d: no leader", n)
		}
		frameIsGlobal := nw.ChiralityOf(leaderIdx) != res.Outputs[leaderIdx].flipped
		for i, o := range res.Outputs {
			var want int
			if frameIsGlobal {
				want = 1 + ((i-leaderIdx)%n+n)%n
			} else {
				want = 1 + ((leaderIdx-i)%n+n)%n
			}
			if o.label != want {
				t.Errorf("n=%d: agent %d label %d, want %d", n, i, o.label, want)
			}
		}
	}
}

// TestLocationDiscovery verifies Theorem 42 end to end: every agent
// reconstructs the initial positions of all agents relative to its own, and
// the Distances stage costs about n/2 rounds.
func TestLocationDiscovery(t *testing.T) {
	for _, n := range []int{6, 8, 12, 14} {
		for seed := int64(0); seed < 2; seed++ {
			nw := newNetwork(t, netgen.Options{
				N: n, IDBound: 128, Seed: seed*31 + int64(n), MixedChirality: true, ForceSplitChirality: true,
			})
			type out struct {
				res     *DiscoveryResult
				flipped bool
			}
			run, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
				r, err := LocationDiscovery(a, Options{Seed: 3})
				if err != nil {
					return out{}, err
				}
				return out{res: r}, nil
			})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			pos := nw.InitialPositions()
			circ := nw.Circ()
			leaders := 0
			for i, o := range run.Outputs {
				r := o.res
				if r.IsLeader {
					leaders++
				}
				if r.N != n {
					t.Fatalf("n=%d agent %d: discovered N = %d", n, i, r.N)
				}
				if len(r.Positions) != n || r.Positions[0] != 0 {
					t.Fatalf("n=%d agent %d: bad positions %v", n, i, r.Positions)
				}
				// The agent reports positions in its agreed frame; accept
				// whichever global orientation matches, but it must be the
				// same orientation for every agent.
				cwOK, ccwOK := true, true
				for tDist := 0; tDist < n; tDist++ {
					cwWant := 2 * (((pos[(i+tDist)%n]-pos[i])%circ + circ) % circ)
					ccwWant := 2 * (((pos[i]-pos[((i-tDist)%n+n)%n])%circ + circ) % circ)
					if r.Positions[tDist] != cwWant {
						cwOK = false
					}
					if r.Positions[tDist] != ccwWant {
						ccwOK = false
					}
				}
				if !cwOK && !ccwOK {
					t.Fatalf("n=%d seed=%d agent %d: positions %v do not match either orientation", n, seed, i, r.Positions)
				}
				maxDistances := n/2 + 3 + 2 // schedule + pivots + one completeness probe pair
				if n%2 == 1 {
					maxDistances = (n+1)/2 + 2
				}
				if r.RoundsDistances > maxDistances+4 {
					t.Errorf("n=%d agent %d: Distances used %d rounds (expected about n/2 = %d)",
						n, i, r.RoundsDistances, n/2)
				}
			}
			if leaders != 1 {
				t.Fatalf("n=%d: %d leaders", n, leaders)
			}
		}
	}
}

func TestDistancesValidation(t *testing.T) {
	nw := newNetwork(t, netgen.Options{N: 6, Seed: 2})
	_, err := engine.Run(nw, func(a *engine.Agent) (struct{}, error) {
		_, _, err := Distances(core.NewFrame(a), 0, 6)
		return struct{}{}, err
	})
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("got %v, want ErrProtocol", err)
	}
}

func TestConvolutionScheduleHelpers(t *testing.T) {
	if convolutionException(8, 1) != 8 || convolutionException(8, 2) != 6 || convolutionException(8, 4) != 2 {
		t.Error("convolutionException wrong for n=8")
	}
	if convolutionException(8, 5) != 8 {
		t.Error("convolutionException should wrap")
	}
	if convolutionRotation(8) != 2 || convolutionRotation(9) != 3 {
		t.Error("convolutionRotation wrong")
	}
	if convolutionDir(3, 8) != ring.Clockwise || convolutionDir(4, 8) != ring.Anticlockwise || convolutionDir(8, 8) != ring.Clockwise {
		t.Error("convolutionDir wrong")
	}
	// Pivot halves: rotation index must be zero.
	n := 10
	for _, p := range []int{n, n - 1, n - 2} {
		cw := 0
		for l := 1; l <= n; l++ {
			if pivotDir(l, p, n) == ring.Clockwise {
				cw++
			}
		}
		if cw != n/2 {
			t.Errorf("pivot %d: %d clockwise agents, want %d", p, cw, n/2)
		}
	}
	// spanToOpposite: in Convolution(8) label 1 (clockwise) meets label 2.
	dirOf := func(l int) ring.Direction { return convolutionDir(l, 8) }
	if span, ok := spanToOpposite(dirOf, 1, 10, ring.Clockwise); !ok || span != 1 {
		t.Errorf("spanToOpposite(1) = %d %v", span, ok)
	}
	// Label 7 (clockwise) is followed by 8 (exception, clockwise) and 9
	// (clockwise), so the nearest opposite is 10 at span 3.
	if span, ok := spanToOpposite(dirOf, 7, 10, ring.Clockwise); !ok || span != 3 {
		t.Errorf("spanToOpposite(7) = %d %v", span, ok)
	}
	// All-clockwise assignment has no opposite agent.
	if _, ok := spanToOpposite(func(int) ring.Direction { return ring.Clockwise }, 1, 10, ring.Clockwise); ok {
		t.Error("spanToOpposite should report no opposite agent")
	}
}
