// Package perceptive implements the Section V algorithms of the paper, which
// exploit the coll() observable of the perceptive model: the sub-linear
// nontrivial move algorithm NMoveS (Algorithm 4), ring-distance discovery
// RingDist (Algorithm 5) and the position-discovery schedule Distances
// (Algorithm 6), culminating in Theorem 42's n/2 + o(n) location discovery.
package perceptive

import (
	"errors"
	"fmt"

	"ringsym/internal/comb"
	"ringsym/internal/core"
	"ringsym/internal/engine"
	"ringsym/internal/rcomm"
	"ringsym/internal/ring"
)

// Errors returned by the package.
var (
	ErrNeedPerceptive = errors.New("perceptive: algorithm requires the perceptive model")
	ErrExhausted      = errors.New("perceptive: schedule exhausted without success")
	ErrProtocol       = errors.New("perceptive: protocol invariant violated")
)

// NMoveS implements Algorithm 4: the nontrivial move problem in
// O(√n·log N) rounds without a common sense of direction.
//
// If the all-clockwise round is already nontrivial we are done.  Otherwise
// its rotation index r0 lies in {0, n/2}, and any assignment that differs
// from it in exactly one agent has rotation index r0 ± 2 ∉ {0, n/2} for
// n > 4 (the argument of Lemma 10).  The algorithm therefore thins the agents
// into local leaders over exponentially growing distances 2^k — pairwise more
// than 2^k apart, hence fewer than n/2^k of them — and executes an
// (N, 2^k)-selective family on the leaders; as soon as a set isolates exactly
// one leader, flipping exactly that leader yields a nontrivial move, which
// every agent recognises with Lemma 2.
//
// The returned direction is this agent's direction, in its frame, in a round
// known by every agent to be a nontrivial move.
func NMoveS(f *core.Frame, seed int64) (ring.Direction, error) {
	if !f.Agent().Model().RevealsCollision() {
		return ring.Idle, ErrNeedPerceptive
	}
	cls, err := f.ClassifyRotation(ring.Clockwise, true)
	if err != nil {
		return ring.Idle, err
	}
	if cls.Nontrivial() {
		return ring.Clockwise, nil
	}

	link, err := rcomm.Establish(f)
	if err != nil {
		return ring.Idle, err
	}
	idBits := comb.Bits(f.IDBound())
	isLeader := true // L_0 contains every agent

	for k := 0; ; k++ {
		d := 1 << k
		if d > 2*f.IDBound() {
			return ring.Idle, fmt.Errorf("%w: local-leader hierarchy exceeded the identifier bound", ErrExhausted)
		}
		// Thin the leaders: a level-(k-1) leader survives to level k iff its
		// identifier is maximal among level-(k-1) leaders within ring
		// distance 2^k.
		max, found, err := link.AggregateMax(isLeader, uint64(f.ID()), idBits, d)
		if err != nil {
			return ring.Idle, err
		}
		if isLeader && found && int(max) > f.ID() {
			isLeader = false
		}
		// Execute the (N, 2^k)-selective family on the surviving leaders:
		// leaders contained in the current set flip to anticlockwise, every
		// other agent stays clockwise.
		fam, err := comb.NewRandomSelective(f.IDBound(), d, seed^int64(k)*0x9e3779b9, 0)
		if err != nil {
			return ring.Idle, err
		}
		for i := 0; i < fam.Len(); i++ {
			dir := ring.Clockwise
			if isLeader && fam.Contains(i, f.ID()) {
				dir = ring.Anticlockwise
			}
			cls, err := f.ClassifyRotation(dir, true)
			if err != nil {
				return ring.Idle, err
			}
			if cls.Nontrivial() {
				return dir, nil
			}
		}
	}
}

// Options configures the perceptive coordination and discovery pipelines.
type Options struct {
	// Seed drives the pseudo-random selective families.
	Seed int64
}

// Coordinate solves nontrivial move, direction agreement and leader election
// in the perceptive model in O(√n·log N) rounds (Table I, last row), by
// composing NMoveS with Algorithm 1 and Algorithm 2.
func Coordinate(a *engine.Agent, opts Options) (*core.Coordination, error) {
	f := core.NewFrame(a)
	start := f.RoundsUsed()
	nmDir, err := NMoveS(f, opts.Seed)
	if err != nil {
		return nil, err
	}
	afterNM := f.RoundsUsed()
	nmDir, err = core.DirectionAgreement(f, nmDir)
	if err != nil {
		return nil, err
	}
	afterDA := f.RoundsUsed()
	isLeader, err := core.LeaderElectWithNM(f, nmDir)
	if err != nil {
		return nil, err
	}
	return &core.Coordination{
		Frame:            f,
		IsLeader:         isLeader,
		NontrivialDir:    nmDir,
		RoundsNontrivial: afterNM - start,
		RoundsAgreement:  afterDA - afterNM,
		RoundsLeader:     f.RoundsUsed() - afterDA,
	}, nil
}
