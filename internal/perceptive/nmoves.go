// Package perceptive implements the Section V algorithms of the paper, which
// exploit the coll() observable of the perceptive model: the sub-linear
// nontrivial move algorithm NMoveS (Algorithm 4), ring-distance discovery
// RingDist (Algorithm 5) and the position-discovery schedule Distances
// (Algorithm 6), culminating in Theorem 42's n/2 + o(n) location discovery.
package perceptive

import (
	"errors"
	"fmt"

	"ringsym/internal/comb"
	"ringsym/internal/core"
	"ringsym/internal/engine"
	"ringsym/internal/rcomm"
	"ringsym/internal/ring"
)

// Errors returned by the package.
var (
	ErrNeedPerceptive = errors.New("perceptive: algorithm requires the perceptive model")
	ErrExhausted      = errors.New("perceptive: schedule exhausted without success")
	ErrProtocol       = errors.New("perceptive: protocol invariant violated")
)

// NMoveS implements Algorithm 4: the nontrivial move problem in
// O(√n·log N) rounds without a common sense of direction.
//
// If the all-clockwise round is already nontrivial we are done.  Otherwise
// its rotation index r0 lies in {0, n/2}, and any assignment that differs
// from it in exactly one agent has rotation index r0 ± 2 ∉ {0, n/2} for
// n > 4 (the argument of Lemma 10).  The algorithm therefore thins the agents
// into local leaders over exponentially growing distances 2^k — pairwise more
// than 2^k apart, hence fewer than n/2^k of them — and executes an
// (N, 2^k)-selective family on the leaders; as soon as a set isolates exactly
// one leader, flipping exactly that leader yields a nontrivial move, which
// every agent recognises with Lemma 2.
//
// The returned direction is this agent's direction, in its frame, in a round
// known by every agent to be a nontrivial move.
func NMoveS(f *core.Frame, seed int64) (ring.Direction, error) {
	return engine.RunStep(f.Agent(), func(k func(ring.Direction) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return NMoveSStep(f, seed, k)
	})
}

// NMoveSStep is the machine form of NMoveS.
func NMoveSStep(f *core.Frame, seed int64, k func(ring.Direction) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	if !f.Agent().Model().RevealsCollision() {
		return engine.Abort(ErrNeedPerceptive)
	}
	return f.ClassifyRotationStep(ring.Clockwise, true, func(cls core.RotationClass) (engine.Yield, engine.Cont) {
		if cls.Nontrivial() {
			return k(ring.Clockwise)
		}
		return rcomm.EstablishStep(f, func(link *rcomm.Link) (engine.Yield, engine.Cont) {
			idBits := comb.Bits(f.IDBound())
			isLeader := true // L_0 contains every agent

			var level func(lvl int) (engine.Yield, engine.Cont)
			level = func(lvl int) (engine.Yield, engine.Cont) {
				d := 1 << lvl
				if d > 2*f.IDBound() {
					return engine.Abort(fmt.Errorf("%w: local-leader hierarchy exceeded the identifier bound", ErrExhausted))
				}
				// Thin the leaders: a level-(k-1) leader survives to level k iff
				// its identifier is maximal among level-(k-1) leaders within ring
				// distance 2^k.
				return link.AggregateMaxStep(isLeader, uint64(f.ID()), idBits, d, func(max uint64, found bool) (engine.Yield, engine.Cont) {
					if isLeader && found && int(max) > f.ID() {
						isLeader = false
					}
					// Execute the (N, 2^k)-selective family on the surviving
					// leaders: leaders contained in the current set flip to
					// anticlockwise, every other agent stays clockwise.
					fam, err := comb.NewRandomSelective(f.IDBound(), d, seed^int64(lvl)*0x9e3779b9, 0)
					if err != nil {
						return engine.Abort(err)
					}
					var try func(i int) (engine.Yield, engine.Cont)
					try = func(i int) (engine.Yield, engine.Cont) {
						if i == fam.Len() {
							return level(lvl + 1)
						}
						dir := ring.Clockwise
						if isLeader && fam.Contains(i, f.ID()) {
							dir = ring.Anticlockwise
						}
						return f.ClassifyRotationStep(dir, true, func(cls core.RotationClass) (engine.Yield, engine.Cont) {
							if cls.Nontrivial() {
								return k(dir)
							}
							return try(i + 1)
						})
					}
					return try(0)
				})
			}
			return level(0)
		})
	})
}

// Options configures the perceptive coordination and discovery pipelines.
type Options struct {
	// Seed drives the pseudo-random selective families.
	Seed int64
}

// Coordinate solves nontrivial move, direction agreement and leader election
// in the perceptive model in O(√n·log N) rounds (Table I, last row), by
// composing NMoveS with Algorithm 1 and Algorithm 2.
func Coordinate(a *engine.Agent, opts Options) (*core.Coordination, error) {
	return engine.RunMachine(a, CoordinateMachine(a, opts))
}

// CoordinateMachine builds the perceptive coordination pipeline as a resumable
// machine for the engine's v3 scheduler; Coordinate drives the same machine
// through the blocking dispatcher on the v1/v2 runtimes.
func CoordinateMachine(a *engine.Agent, opts Options) *engine.Proto[*core.Coordination] {
	return engine.NewProto(func(done func(*core.Coordination, error) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return CoordinateStep(a, opts, func(c *core.Coordination) (engine.Yield, engine.Cont) {
			return done(c, nil)
		})
	})
}

// CoordinateStep is the machine form of Coordinate.
func CoordinateStep(a *engine.Agent, opts Options, k func(*core.Coordination) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	f := core.NewFrame(a)
	start := f.RoundsUsed()
	return NMoveSStep(f, opts.Seed, func(nmDir ring.Direction) (engine.Yield, engine.Cont) {
		afterNM := f.RoundsUsed()
		return core.DirectionAgreementStep(f, nmDir, func(nmDir ring.Direction) (engine.Yield, engine.Cont) {
			afterDA := f.RoundsUsed()
			return core.LeaderElectWithNMStep(f, nmDir, func(isLeader bool) (engine.Yield, engine.Cont) {
				return k(&core.Coordination{
					Frame:            f,
					IsLeader:         isLeader,
					NontrivialDir:    nmDir,
					RoundsNontrivial: afterNM - start,
					RoundsAgreement:  afterDA - afterNM,
					RoundsLeader:     f.RoundsUsed() - afterDA,
				})
			})
		})
	})
}
