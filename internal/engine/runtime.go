package engine

import "sync/atomic"

// Runtime selects which of the engine's three runtimes executes a run.  The
// zero value defers to the process-wide default, which is the v3 scheduler
// unless SetDefaultRuntime overrode it — so callers holding a zero-valued
// options struct get the fast runtime without naming it.
type Runtime int8

const (
	// RuntimeDefault defers to the process-wide default runtime.
	RuntimeDefault Runtime = iota
	// RuntimeFSM is the v3 single-goroutine machine scheduler (sched.go).
	RuntimeFSM
	// RuntimeBarrier is the v2 goroutine-per-agent barrier runtime (barrier.go).
	RuntimeBarrier
	// RuntimeLegacy is the v1 channel-rendezvous runtime (legacy.go).
	RuntimeLegacy
)

// defaultRuntime holds the process-wide default (a Runtime value); zero means
// RuntimeFSM.
var defaultRuntime atomic.Int32

// SetDefaultRuntime changes the process-wide default runtime that
// RuntimeDefault resolves to.  Passing RuntimeDefault restores the built-in
// default (the v3 scheduler).  Benchmarks and A/B harnesses use this to flip
// whole campaign stacks between runtimes without threading options through.
func SetDefaultRuntime(rt Runtime) { defaultRuntime.Store(int32(rt)) }

// Resolve maps RuntimeDefault to the process-wide default and returns every
// other value unchanged.
func (rt Runtime) Resolve() Runtime {
	if rt != RuntimeDefault {
		return rt
	}
	if d := Runtime(defaultRuntime.Load()); d != RuntimeDefault {
		return d
	}
	return RuntimeFSM
}

// String implements fmt.Stringer.
func (rt Runtime) String() string {
	switch rt {
	case RuntimeFSM:
		return "fsm"
	case RuntimeBarrier:
		return "barrier"
	case RuntimeLegacy:
		return "legacy"
	default:
		return "default"
	}
}
