package engine

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"ringsym/internal/ring"
)

// testHookExecuteRound, when set, runs at the start of every round execution;
// tests use it to inject executor-side panics.
var testHookExecuteRound func()

// awaitSpins bounds the cooperative-yield phase of a barrier wait before the
// waiter parks on its wake channel.  Rounds are microsecond-scale, so a
// waiting agent usually sees the round execute within a yield or two; the
// park path only pays off when another agent computes for a long time
// between rounds.
const awaitSpins = 8

// barrier is the direct-dispatch round synchroniser of the v2 runtime.  All
// agent goroutines of a run share one barrier: an agent publishes its
// objective direction into its preallocated slot, decrements a single atomic
// countdown and, if it is the last active agent to arrive, executes the round
// inline on the analytic engine and publishes a new round generation.  There
// is no coordinator goroutine, no shared lock on the hot path and no
// per-round channel rendezvous, and a steady-state round performs no
// allocations (directions, submission flags and observations live in buffers
// reused across rounds and across runs).
//
// Waiters first yield cooperatively watching the generation counter; only a
// waiter that outlives the spin phase registers itself as parked and blocks
// on its private wake channel, which the round executor (or a failure)
// tokens.  The parked flag and the generation counter form a Dekker pair:
// either the executor observes the flag and sends a token, or the waiter
// observes the advanced generation and never blocks.
//
// Invariants:
//
//   - A round executes exactly when every active agent has either submitted a
//     direction (await) or left the run (leave); agents that already finished
//     are assigned their default direction, their own clockwise, because the
//     model requires everybody to act in every round.
//   - Only the executing goroutine touches the ring state, the shared outcome
//     buffer and other agents' submission flags, and it does so strictly
//     between observing the countdown hit zero and advancing the generation;
//     publication is ordered by the countdown (arrivals before) and the
//     generation/wake tokens (waiters after).
//   - Observations stay frame-translated at the barrier boundary: the buffer
//     holds objective observations, and each Agent.Round translates its own
//     entry into the agent's private frame after waking.  The buffer is only
//     overwritten by the next round, which cannot complete before every
//     released waiter has submitted again (or left).
//   - failErr is sticky: once the run fails (max rounds, broken network
//     state, context cancellation via abort) every present and future arrival
//     returns the same error immediately and no further round executes, so
//     runaway protocols that keep submitting cannot deadlock the run.
type barrier struct {
	nw *Network

	remaining atomic.Int32          // active agents yet to arrive this round
	gen       atomic.Uint64         // completed-round generation counter
	failErr   atomic.Pointer[error] // sticky run failure

	dirs      []ring.Direction // objective direction by ring index
	submitted []bool           // whether agent i submitted this round
	out       ring.Outcome     // observations of the last executed round
	parked    []atomic.Bool    // whether agent i blocked past the spin phase
	wake      []chan struct{}  // per-agent release tokens (cap 2: round + abort)
}

func newBarrier(nw *Network) *barrier {
	n := nw.N()
	b := &barrier{
		nw:        nw,
		dirs:      make([]ring.Direction, n),
		submitted: make([]bool, n),
		parked:    make([]atomic.Bool, n),
		wake:      make([]chan struct{}, n),
	}
	b.out.Agents = make([]ring.Observation, n)
	for i := range b.wake {
		b.wake[i] = make(chan struct{}, 2)
	}
	return b
}

// reset prepares the barrier for a new run of n agents.  It must only be
// called while no run (and no run watcher) is in flight, which beginRun and
// the watcher join in RunContext guarantee.
func (b *barrier) reset(n int) {
	b.remaining.Store(int32(n))
	b.failErr.Store(nil)
	for i := range b.submitted {
		b.submitted[i] = false
		b.parked[i].Store(false)
	}
	// Drop stale tokens left by an aborted previous run.
	for _, ch := range b.wake {
		for len(ch) > 0 {
			<-ch
		}
	}
}

// await submits agent idx's objective direction for the next round, blocks
// until the round has been executed and returns the agent's objective
// observation.
func (b *barrier) await(idx int, dir ring.Direction) (ring.Observation, error) {
	if p := b.failErr.Load(); p != nil {
		return ring.Observation{}, *p
	}
	b.dirs[idx] = dir
	b.submitted[idx] = true
	gen := b.gen.Load()
	if b.remaining.Add(-1) == 0 {
		// Direct dispatch: the last arriver executes the round itself.  The
		// buffer read below is safe after the generation advances because the
		// next round cannot complete before this agent submits again.
		if err := b.executeRound(idx); err != nil {
			return ring.Observation{}, err
		}
		return b.out.Agents[idx], nil
	}
	for spins := 0; ; spins++ {
		if b.gen.Load() != gen {
			return b.out.Agents[idx], nil
		}
		if p := b.failErr.Load(); p != nil {
			return ring.Observation{}, *p
		}
		if spins >= awaitSpins {
			break
		}
		runtime.Gosched()
	}
	// Slow path: publish the parked flag, then re-check the generation (the
	// Dekker pair with the executor) and block for a token.  Stale tokens
	// from raced rounds or aborts are absorbed by the re-check loop.
	b.parked[idx].Store(true)
	for b.gen.Load() == gen && b.failErr.Load() == nil {
		<-b.wake[idx]
	}
	b.parked[idx].Store(false)
	if p := b.failErr.Load(); p != nil {
		return ring.Observation{}, *p
	}
	return b.out.Agents[idx], nil
}

// leave deregisters an agent whose protocol has returned.  If its departure
// completes the current round's arrival count, the departing goroutine
// executes the round on behalf of the agents still waiting.
func (b *barrier) leave() {
	if b.remaining.Add(-1) == 0 {
		b.executeRound(-1)
	}
}

// abort fails the run (sticky) and wakes every waiting agent; their pending
// Round calls return the wrapped cause.  Safe to call concurrently with
// rounds; at most one more round can complete after abort returns.
func (b *barrier) abort(cause error) {
	b.fail(fmt.Errorf("engine: run aborted: %w", cause))
}

// runErr returns the sticky run failure, if any.
func (b *barrier) runErr() error {
	if p := b.failErr.Load(); p != nil {
		return *p
	}
	return nil
}

// executeRound runs one synchronised round with the submitted directions,
// filling in the default direction (the agent's own clockwise) for agents
// that are no longer submitting.  selfIdx is the executing agent's ring index
// when it is itself a submitter of this round, or -1 when the round was
// completed by a departure.  Called by the goroutine that observed the
// countdown reach zero; until it advances the generation it is the only
// goroutine touching the shared round state.
func (b *barrier) executeRound(selfIdx int) (err error) {
	if p := b.failErr.Load(); p != nil {
		// The run already failed; any waiters were woken by fail.
		return *p
	}
	// A panic while executing the round would otherwise strand every waiter
	// forever (the generation never advances and nobody else can run a
	// round): convert it into the sticky run failure so the run unwinds
	// with an error instead of deadlocking.
	defer func() {
		if r := recover(); r != nil {
			b.nw.broken = fmt.Errorf("round execution panicked: %v", r)
			err = b.fail(fmt.Errorf("%w: %w", ErrNetworkBroken, b.nw.broken))
		}
	}()
	if testHookExecuteRound != nil {
		testHookExecuteRound()
	}
	nw := b.nw
	// Count this round's submitters and clear their flags while no waiter
	// can yet be released (the generation has not advanced): a spinning
	// waiter resubmits immediately after observing the new generation, so
	// its flag must not be touched after the bump.
	active := 0
	for i := range b.dirs {
		if b.submitted[i] {
			b.submitted[i] = false
			active++
		} else {
			b.dirs[i] = nw.objectiveDir(i, ring.Clockwise)
		}
	}
	if active == 0 {
		// Every agent has left; the run is over and nobody is waiting.  This
		// must precede the error checks: a protocol that terminates after
		// consuming exactly the round budget has not exceeded anything (the
		// v1 coordinator likewise only errored with requests pending).
		return nil
	}
	if nw.state.Rounds() >= nw.cfg.MaxRounds {
		return b.fail(fmt.Errorf("%w (%d)", ErrMaxRoundsExceed, nw.cfg.MaxRounds))
	}
	if nw.broken != nil {
		return b.fail(fmt.Errorf("%w: %w", ErrNetworkBroken, nw.broken))
	}
	if err := nw.state.ExecuteRoundInto(b.dirs, &b.out); err != nil {
		// Should be impossible: directions are validated per agent before
		// submission.  Mark the network broken and fail everyone.
		nw.broken = err
		return b.fail(fmt.Errorf("%w: %w", ErrNetworkBroken, err))
	}
	// Re-arm the countdown for the next round before releasing anyone: the
	// submitters of this round are exactly the agents still active.  The
	// generation bump releases the spinning waiters; parked waiters
	// additionally need a token, sent after the bump so a consumed token
	// always finds the new generation (Dekker: a waiter that parks after the
	// scan below is guaranteed to observe the advanced generation first).
	// After the bump only the atomic parked flags and the wake channels may
	// be touched: a departing agent's executeRound runs concurrently with
	// the next round once its waiters resubmit, so the shared round state is
	// off limits.  Tokens sent to waiters already parked for the next round
	// are absorbed by their re-check loop.
	b.remaining.Store(int32(active))
	b.gen.Add(1)
	for i := range b.parked {
		if i != selfIdx && b.parked[i].Load() {
			select {
			case b.wake[i] <- struct{}{}:
			default:
			}
		}
	}
	return nil
}

// fail publishes the sticky error (first failure wins) and wakes every agent
// slot with a non-blocking token so parked waiters re-check the failure.
func (b *barrier) fail(err error) error {
	if b.failErr.CompareAndSwap(nil, &err) {
		for _, ch := range b.wake {
			select {
			case ch <- struct{}{}:
			default:
			}
		}
		return err
	}
	return *b.failErr.Load()
}
