package engine

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"ringsym/internal/ring"
)

// testHookExecuteRound, when set, runs at the start of every crossing's round
// execution; tests use it to inject executor-side panics.
var testHookExecuteRound func()

// awaitSpins bounds the cooperative-yield phase of a barrier wait before the
// waiter parks on its wake channel.  Rounds are microsecond-scale, so a
// waiting agent usually sees its batch complete within a yield or two; the
// park path only pays off when another agent computes for a long time
// between submissions.
const awaitSpins = 8

// batch is one agent's submission to the barrier: a schedule of one or more
// rounds executed without the agent waking in between.  Exactly one of dir
// (constant direction) or dirs (explicit per-round schedule) is used; k is
// the schedule length.  trace, when non-nil, receives the agent's objective
// per-round observations; a nil trace requests aggregate mode, where only the
// cumulative displacement is computed (O(1) per leap instead of O(k)).
//
// stop arms the early-stop condition: the batch ends after the first round at
// which the agent's cumulative objective displacement reaches stopTarget,
// even if fewer than k rounds have executed.  objDisp seeds the executor's
// displacement tracking with the agent's displacement at submission.  The
// stop condition is solved in closed form by the executor
// (ring.(*State).StopRound), so a condition-bounded batch costs the same as a
// plain one; it exists so protocols whose per-round loops break on their own
// displacement can batch without overshooting the round they would have
// stopped at.
type batch struct {
	dir        ring.Direction
	dirs       []ring.Direction
	k          int
	trace      []ring.Observation
	sum        bool // aggregate mode: settle resumes with Sum instead of Obs
	stop       bool
	stopTarget int64
	objDisp    int64
}

// pending is a batch in flight at the barrier, plus the executor-owned
// progress through it.  Between the countdown reaching zero and the agent's
// completion flag being set, only the executing goroutine touches it.
type pending struct {
	batch
	pos int   // rounds of the batch already executed (fill index into trace)
	agg int64 // cumulative objective displacement of the batch, mod full circle
}

// dispatcher is the mechanism through which an agent's submission reaches the
// analytic engine.  The v2 runtime leaps at a barrier; the retained v1
// runtime rendezvouses with a coordinator goroutine over channels (legacy.go)
// and runs batches one round at a time.
type dispatcher interface {
	// awaitBatch blocks until the batch has executed (or the run failed) and
	// returns the number of rounds actually executed (less than b.k only when
	// the stop condition ended the batch early) and the batch's cumulative
	// objective displacement modulo the full circle.
	awaitBatch(idx int, b batch) (executed int, agg int64, err error)
}

// barrier is the direct-dispatch round synchroniser of the v2 runtime.  All
// agent goroutines of a run share one barrier: an agent publishes its batch
// into its preallocated slot, decrements a single atomic countdown and, if it
// is the last active agent to arrive, executes a leap inline on the analytic
// engine.  There is no coordinator goroutine, no shared lock on the hot path
// and no per-round channel rendezvous, and a steady-state crossing performs
// no allocations.
//
// A crossing executes the minimum remaining round count over all pending
// batches (the leap), so agents whose batches are longer stay blocked across
// crossings while shorter batches complete and resubmit.  Within a leap the
// executor splits the window into maximal stretches over which every agent's
// direction is constant and executes each stretch in closed form
// (ring.ExecuteRoundsInto); a stretch of length 1 degenerates to the plain
// per-round path (ring.ExecuteRoundInto).  A round executes exactly when
// every active agent has either a pending batch (awaitBatch) or has left the
// run (leave); agents that already finished are assigned their default
// direction, their own clockwise, because the model requires everybody to
// act in every round.
//
// Completion is signalled per agent: the executor finalises an agent's
// pending state, clears its submission flag and only then sets its atomic
// complete flag, after which it never touches that agent's slot again — the
// agent may already be resubmitting while the executor finishes releasing
// others.  Waiters first yield cooperatively watching their complete flag;
// only a waiter that outlives the spin phase registers itself as parked and
// blocks on its private wake channel.  The parked flag and the complete flag
// form a Dekker pair: either the executor observes the flag and sends a
// token, or the waiter observes completion and never blocks.  The countdown
// for the next crossing is the number of agents released this crossing, and
// it is re-armed before the first complete flag is set, so a released agent's
// immediate resubmission cannot race the countdown.
//
// failErr is sticky: once the run fails (max rounds, broken network state,
// context cancellation via abort) every present and future arrival returns
// the same error immediately and no further round executes.
type barrier struct {
	// leapExec holds the pending-batch slots and the crossing executor shared
	// with the v3 scheduler (exec.go); the barrier wraps it in the countdown,
	// hand-off lock and per-agent release machinery below.
	leapExec

	remaining atomic.Int32          // active agents yet to arrive this crossing
	xlock     atomic.Bool           // crossing hand-off lock (see executeLeap)
	failErr   atomic.Pointer[error] // sticky run failure

	complete []atomic.Bool   // whether agent i's batch has finished
	parked   []atomic.Bool   // whether agent i blocked past the spin phase
	wake     []chan struct{} // per-agent release tokens (cap 2: round + abort)
}

func newBarrier(nw *Network) *barrier {
	n := nw.N()
	b := &barrier{
		complete: make([]atomic.Bool, n),
		parked:   make([]atomic.Bool, n),
		wake:     make([]chan struct{}, n),
	}
	b.leapExec.init(nw)
	for i := range b.wake {
		b.wake[i] = make(chan struct{}, 2)
	}
	return b
}

// reset prepares the barrier for a new run of n agents.  It must only be
// called while no run (and no run watcher) is in flight, which beginRun and
// the watcher join in RunContext guarantee.
func (b *barrier) reset(n int) {
	b.remaining.Store(int32(n))
	b.xlock.Store(false)
	b.failErr.Store(nil)
	for i := range b.pend {
		b.pend[i] = pending{} // drop stale trace/schedule pointers
		b.submitted[i] = false
		b.complete[i].Store(false)
		b.parked[i].Store(false)
	}
	// Drop stale tokens left by an aborted previous run.
	for _, ch := range b.wake {
		for len(ch) > 0 {
			<-ch
		}
	}
}

// awaitBatch submits agent idx's batch, blocks until it has fully executed
// and returns the executed round count and the batch's cumulative objective
// displacement.
func (b *barrier) awaitBatch(idx int, bt batch) (int, int64, error) {
	if p := b.failErr.Load(); p != nil {
		return 0, 0, *p
	}
	b.pend[idx] = pending{batch: bt}
	b.submitted[idx] = true
	b.complete[idx].Store(false)
	if b.remaining.Add(-1) == 0 {
		// Direct dispatch: the last arriver executes the crossing itself.  Its
		// own batch may still be incomplete afterwards (another agent's batch
		// was shorter); then it waits like everyone else.
		if err := b.executeLeap(idx); err != nil {
			return 0, 0, err
		}
		if b.complete[idx].Load() {
			return b.pend[idx].pos, b.pend[idx].agg, nil
		}
	}
	for spins := 0; ; spins++ {
		if b.complete[idx].Load() {
			return b.pend[idx].pos, b.pend[idx].agg, nil
		}
		if p := b.failErr.Load(); p != nil {
			return 0, 0, *p
		}
		if spins >= awaitSpins {
			break
		}
		runtime.Gosched()
	}
	// Slow path: publish the parked flag, then re-check completion (the
	// Dekker pair with the executor) and block for a token.  Stale tokens
	// from raced crossings or aborts are absorbed by the re-check loop.
	b.parked[idx].Store(true)
	for !b.complete[idx].Load() && b.failErr.Load() == nil {
		<-b.wake[idx]
	}
	b.parked[idx].Store(false)
	if p := b.failErr.Load(); p != nil {
		return 0, 0, *p
	}
	return b.pend[idx].pos, b.pend[idx].agg, nil
}

// leave deregisters an agent whose protocol has returned.  If its departure
// completes the current crossing's arrival count, the departing goroutine
// executes the crossing on behalf of the agents still waiting.
func (b *barrier) leave() {
	if b.remaining.Add(-1) == 0 {
		b.executeLeap(-1)
	}
}

// abort fails the run (sticky) and wakes every waiting agent; their pending
// submissions return the wrapped cause.  Safe to call concurrently with
// crossings; at most one more crossing can complete after abort returns.
func (b *barrier) abort(cause error) {
	b.fail(fmt.Errorf("engine: run aborted: %w", cause))
}

// runErr returns the sticky run failure, if any.
func (b *barrier) runErr() error {
	if p := b.failErr.Load(); p != nil {
		return *p
	}
	return nil
}

// executeLeap runs one barrier crossing: the minimum remaining round count
// over all pending batches, in constant-direction stretches, filling in the
// default direction (the agent's own clockwise) for agents that are no longer
// submitting.  selfIdx is the executing agent's ring index when it is itself
// a submitter, or -1 when the crossing was completed by a departure.  Called
// by the goroutine that observed the countdown reach zero; until it sets an
// agent's complete flag it is the only goroutine touching that agent's
// pending state, and until it re-arms the countdown it is the only goroutine
// touching the shared round state.
func (b *barrier) executeLeap(selfIdx int) (err error) {
	// Crossing hand-off lock: the countdown alone orders the NEXT executor
	// after the last release of this crossing, but this executor still reads
	// shared per-agent state (the release scan) after setting the first
	// complete flags — and the moment the last released agent resubmits, a
	// new executor may start.  The lock closes that overlap: a new executor
	// spins (the window is a few hundred instructions) until the previous one
	// has fully left the release phase.  Everything fail and abort touch is
	// atomic, so failure paths stay lock-free.
	for !b.xlock.CompareAndSwap(false, true) {
		runtime.Gosched()
	}
	defer b.xlock.Store(false)
	if p := b.failErr.Load(); p != nil {
		// The run already failed; any waiters were woken by fail.
		return *p
	}
	// A panic while executing the crossing would otherwise strand every
	// waiter forever: convert it into the sticky run failure so the run
	// unwinds with an error instead of deadlocking.
	defer func() {
		if r := recover(); r != nil {
			b.nw.broken = fmt.Errorf("round execution panicked: %v", r)
			err = b.fail(fmt.Errorf("%w: %w", ErrNetworkBroken, b.nw.broken))
		}
	}()
	active, err := b.crossing()
	if err != nil {
		return b.fail(err)
	}
	if active == 0 {
		// Every agent has left; the run is over and nobody is waiting.
		return nil
	}
	nw := b.nw
	n := len(b.pend)

	// Release phase.  Count completions first and re-arm the countdown before
	// the first complete flag is set: a released agent may resubmit (and
	// decrement the countdown) the moment its flag goes up.
	next := 0
	for i := 0; i < n; i++ {
		if b.submitted[i] && b.pend[i].pos == b.pend[i].k {
			next++
		}
	}
	if next == 0 {
		// Only reachable when the round budget clamped the leap below every
		// pending batch: nobody can be released, matching the per-round path
		// where the next submission would exceed the budget.
		return b.fail(fmt.Errorf("%w (%d)", ErrMaxRoundsExceed, nw.cfg.MaxRounds))
	}
	b.remaining.Store(int32(next))
	for i := 0; i < n; i++ {
		if b.submitted[i] && b.pend[i].pos == b.pend[i].k {
			// Clear the submission before raising the flag: after the flag the
			// agent owns its slot again and this goroutine never touches it.
			b.submitted[i] = false
			b.complete[i].Store(true)
		}
	}
	// Token phase: only the atomic flags and channels may be touched from
	// here on — released agents can resubmit, complete the next countdown and
	// have a new executor mutating the shared round state concurrently.
	// Tokens go to parked waiters whose batch is complete (parked waiters
	// mid-batch stay parked); an extra token from a raced crossing is
	// absorbed by the waiter's re-check loop.
	for i := 0; i < n; i++ {
		if i != selfIdx && b.parked[i].Load() && b.complete[i].Load() {
			select {
			case b.wake[i] <- struct{}{}:
			default:
			}
		}
	}
	return nil
}

// fail publishes the sticky error (first failure wins) and wakes every agent
// slot with a non-blocking token so parked waiters re-check the failure.
func (b *barrier) fail(err error) error {
	if b.failErr.CompareAndSwap(nil, &err) {
		for _, ch := range b.wake {
			select {
			case ch <- struct{}{}:
			default:
			}
		}
		return err
	}
	return *b.failErr.Load()
}
