package engine

import (
	"sync"
	"sync/atomic"
	"time"
)

// The engine goroutine pool.  A campaign executes millions of short runs, and
// spawning (and growing the stack of) fresh goroutines per run is pure
// overhead, so finished worker goroutines park themselves on a free list and
// are handed the next run's work instead of exiting.  The pool is shared by
// every Network in the process and backs all three runtimes: the v1/v2 agent
// goroutines and the v3 scheduler goroutine all come from submit.
//
// Two mechanisms bound the pool.  Workers beyond maxIdleWorkers exit once
// their job completes instead of parking, capping the peak free-list size.
// And a parked worker that receives no job for workerIdleTimeout removes
// itself from the free list and exits, so a process whose burst of engine work
// is over drains back to zero pooled goroutines instead of pinning the peak
// worker count forever.
const maxIdleWorkers = 1 << 13

// workerIdleTimeout is how long a parked worker waits for its next job before
// draining from the pool, in nanoseconds.  Atomic so tests can shrink it.
var workerIdleTimeout atomic.Int64

func init() { workerIdleTimeout.Store(int64(30 * time.Second)) }

var workerFreeList struct {
	sync.Mutex
	free []*worker
}

type worker struct {
	jobs chan func()
}

// idleWorkerCount reports the number of workers currently parked on the free
// list (test helper).
func idleWorkerCount() int {
	workerFreeList.Lock()
	defer workerFreeList.Unlock()
	return len(workerFreeList.free)
}

// submit runs job on a pooled goroutine, spawning a new one only when the
// free list is empty.
func submit(job func()) {
	workerFreeList.Lock()
	var w *worker
	if n := len(workerFreeList.free); n > 0 {
		w = workerFreeList.free[n-1]
		workerFreeList.free[n-1] = nil
		workerFreeList.free = workerFreeList.free[:n-1]
	}
	workerFreeList.Unlock()
	if w == nil {
		w = &worker{jobs: make(chan func(), 1)}
		go w.loop()
	}
	w.jobs <- job
}

// removeSelf takes the worker off the free list.  It returns false when the
// worker is not on the list — a concurrent submit popped it, which means a
// job send is in flight and the worker must serve it before exiting.
func (w *worker) removeSelf() bool {
	workerFreeList.Lock()
	defer workerFreeList.Unlock()
	for i, fw := range workerFreeList.free {
		if fw == w {
			last := len(workerFreeList.free) - 1
			workerFreeList.free[i] = workerFreeList.free[last]
			workerFreeList.free[last] = nil
			workerFreeList.free = workerFreeList.free[:last]
			return true
		}
	}
	return false
}

func (w *worker) loop() {
	timer := time.NewTimer(time.Duration(workerIdleTimeout.Load()))
	defer timer.Stop()
	for {
		var job func()
		select {
		case job = <-w.jobs:
		case <-timer.C:
			// Idle too long: drain.  Popping a worker from the free list and
			// handing it the job are two steps, so a submit may have claimed
			// this worker just as the timer fired; in that case we are no
			// longer on the list, a job is owed, and we must serve it.
			if w.removeSelf() {
				return
			}
			job = <-w.jobs
		}
		job()
		workerFreeList.Lock()
		if len(workerFreeList.free) >= maxIdleWorkers {
			workerFreeList.Unlock()
			return
		}
		workerFreeList.free = append(workerFreeList.free, w)
		workerFreeList.Unlock()
		timer.Reset(time.Duration(workerIdleTimeout.Load()))
	}
}
