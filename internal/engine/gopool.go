package engine

import "sync"

// The agent goroutine pool.  A campaign executes millions of short runs, and
// spawning (and growing the stack of) n fresh goroutines per run is pure
// overhead, so finished agent goroutines park themselves on a free list and
// are handed the next run's protocol instead of exiting.  The pool is shared
// by every Network in the process: its size is bounded by the peak number of
// concurrently running agents, and workers beyond maxIdleWorkers exit once
// their run completes instead of parking.
const maxIdleWorkers = 1 << 13

var workerFreeList struct {
	sync.Mutex
	free []*worker
}

type worker struct {
	jobs chan func()
}

// submit runs job on a pooled goroutine, spawning a new one only when the
// free list is empty.
func submit(job func()) {
	workerFreeList.Lock()
	var w *worker
	if n := len(workerFreeList.free); n > 0 {
		w = workerFreeList.free[n-1]
		workerFreeList.free[n-1] = nil
		workerFreeList.free = workerFreeList.free[:n-1]
	}
	workerFreeList.Unlock()
	if w == nil {
		w = &worker{jobs: make(chan func(), 1)}
		go w.loop()
	}
	w.jobs <- job
}

func (w *worker) loop() {
	for job := range w.jobs {
		job()
		workerFreeList.Lock()
		if len(workerFreeList.free) >= maxIdleWorkers {
			workerFreeList.Unlock()
			return
		}
		workerFreeList.free = append(workerFreeList.free, w)
		workerFreeList.Unlock()
	}
}
