package engine

import "sync/atomic"

// Process-wide execution totals of the round runtimes, exported so serving
// layers (ringd /metrics) can report engine throughput without reaching into
// individual networks.  Rounds counts synchronised rounds executed on the
// analytic engine; crossings counts barrier crossings (leap batches) — one
// crossing executes one or more rounds, so rounds/crossings is the mean leap
// length and the direct measure of how much the batched submission API is
// collapsing barrier traffic.
var (
	ctrRounds    atomic.Uint64
	ctrCrossings atomic.Uint64
)

// Counters is a snapshot of the process-wide execution totals.
type Counters struct {
	// Rounds is the total number of synchronised rounds executed.
	Rounds uint64 `json:"rounds"`
	// LeapBatches is the total number of barrier crossings (leap batches)
	// that executed those rounds.
	LeapBatches uint64 `json:"leap_batches"`
	// MeanRoundsPerCrossing is Rounds / LeapBatches (0 when nothing ran).
	MeanRoundsPerCrossing float64 `json:"mean_rounds_per_crossing"`
}

// CounterSnapshot returns the current process-wide execution totals.
func CounterSnapshot() Counters {
	// Executors add to ctrRounds before ctrCrossings, so loading crossings
	// first keeps Rounds >= LeapBatches in the snapshot even when crossings
	// land between the two loads.
	c := Counters{LeapBatches: ctrCrossings.Load(), Rounds: ctrRounds.Load()}
	if c.LeapBatches > 0 {
		c.MeanRoundsPerCrossing = float64(c.Rounds) / float64(c.LeapBatches)
	}
	return c
}
