package engine

import "ringsym/internal/obs"

// Process-wide execution totals of the round runtimes, held as obs-registered
// counters so serving layers get them in the Prometheus exposition for free
// and /metrics JSON keeps its snapshot shape via CounterSnapshot.  Rounds
// counts synchronised rounds executed on the analytic engine; leap batches
// count barrier crossings — one crossing executes one or more rounds, so
// rounds/crossings is the mean leap length and the direct measure of how much
// the batched submission API is collapsing barrier traffic.  The hot-path
// cost is unchanged: an obs.Counter add is the same single atomic add as the
// bespoke atomics these replaced.
var (
	ctrRounds    = obs.NewCounter("ringsym_engine_rounds_total", "Synchronised rounds executed on the analytic engine.")
	ctrCrossings = obs.NewCounter("ringsym_engine_leap_batches_total", "Barrier crossings (leap batches) that executed those rounds.")
)

// leapSampleMask samples engine.leap events to one per 1024 barrier
// crossings: the crossing rate reaches millions per second, and per-crossing
// events would only be dropped by every subscriber's bounded ring anyway.
// Each sampled event carries the cumulative totals, so consumers recover
// exact rates from any two samples.
const leapSampleMask = 1<<10 - 1

// The executors note a crossing with
//
//	if c := ctrCrossings.Add(1); c&leapSampleMask == 0 {
//	    emitLeapSample(c)
//	}
//
// open-coded at the call sites rather than wrapped in a helper: the crossing
// counter sits on the barrier hot path, the pre-telemetry code was an inlined
// atomic add, and a helper carrying the add, the mask test and a call does
// not fit the compiler's inlining budget.  Everything beyond the mask test —
// including the bus check, needed just once per 1024 crossings — lives in the
// cold emitLeapSample.

// emitLeapSample publishes one sampled engine.leap event with the cumulative
// totals (a no-op on a quiet bus).
func emitLeapSample(crossings uint64) {
	if !obs.On() {
		return
	}
	obs.Emit(obs.Event{
		Type:      obs.EngineLeap,
		Level:     obs.LevelDebug,
		Rounds:    int64(ctrRounds.Load()),
		Crossings: int64(crossings),
	})
}

// Counters is a snapshot of the process-wide execution totals.
type Counters struct {
	// Rounds is the total number of synchronised rounds executed.
	Rounds uint64 `json:"rounds"`
	// LeapBatches is the total number of barrier crossings (leap batches)
	// that executed those rounds.
	LeapBatches uint64 `json:"leap_batches"`
	// MeanRoundsPerCrossing is Rounds / LeapBatches (0 when nothing ran).
	MeanRoundsPerCrossing float64 `json:"mean_rounds_per_crossing"`
}

// CounterSnapshot returns the current process-wide execution totals.
func CounterSnapshot() Counters {
	// Executors add to ctrRounds before ctrCrossings, so loading crossings
	// first keeps Rounds >= LeapBatches in the snapshot even when crossings
	// land between the two loads.
	c := Counters{LeapBatches: ctrCrossings.Load(), Rounds: ctrRounds.Load()}
	if c.LeapBatches > 0 {
		c.MeanRoundsPerCrossing = float64(c.Rounds) / float64(c.LeapBatches)
	}
	return c
}
