// Package engine provides the synchronous distributed runtime on which the
// paper's protocols execute.
//
// An agent only interacts with the world through its Agent handle: it knows
// its unique identifier, the identifier bound N, the parity of n and nothing
// else.  Submitting a direction (expressed in the agent's own, private sense
// of direction) schedules the next round; the round executes on the exact
// analytic engine (internal/ring) once every agent has chosen, and each agent
// receives its observation translated back into its own frame.  That
// rendezvous is what the round-based model of the paper calls a "synchronised
// round".
//
// Three runtimes implement it, sharing one crossing executor (exec.go) so
// their round sequences are byte-identical:
//
//   - v3 scheduler (sched.go, RunFSM/RunFSMContext): the default.  Protocols
//     are resumable state machines (fsm.go); one scheduler goroutine per
//     scenario steps every machine to its next yield and executes crossings
//     inline — no goroutine per agent, no barrier, no mutexes.
//   - v2 barrier (barrier.go, RunBarrier/RunBarrierContext, also reachable as
//     Run/RunContext): one pooled goroutine per agent (gopool.go) meeting at
//     an atomic-countdown barrier; the last arriver executes the crossing.
//   - v1 legacy (legacy.go, RunLegacy): the original coordinator-goroutine,
//     channel-rendezvous runtime, retained as the differential-testing and
//     benchmark baseline.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"ringsym/internal/ring"
)

// Parity is what an agent knows about the size n of the network.
type Parity int8

const (
	// ParityUnknown means the agent was not told the parity of n.
	ParityUnknown Parity = iota
	// ParityEven means n is even.
	ParityEven
	// ParityOdd means n is odd.
	ParityOdd
)

// String implements fmt.Stringer.
func (p Parity) String() string {
	switch p {
	case ParityEven:
		return "even"
	case ParityOdd:
		return "odd"
	default:
		return "unknown"
	}
}

// Errors returned by the engine.
var (
	ErrBadIDs          = errors.New("engine: IDs must be unique and within [1, IDBound]")
	ErrBadChirality    = errors.New("engine: chirality slice length must match positions")
	ErrMaxRoundsExceed = errors.New("engine: maximum number of rounds exceeded")
	ErrNetworkBroken   = errors.New("engine: network is in a failed state")
	ErrIdleNotAllowed  = errors.New("engine: idle is only allowed in the lazy model")
	ErrBadDirection    = errors.New("engine: invalid direction")
	ErrProtocolPanic   = errors.New("engine: protocol panicked")
	ErrRunInProgress   = errors.New("engine: a run is already in progress on this network")
)

// DefaultMaxRounds bounds runaway protocols when Config.MaxRounds is zero.
const DefaultMaxRounds = 50_000_000

// Config describes a network to be constructed with New.
type Config struct {
	// Model is the movement model (basic, lazy or perceptive).
	Model ring.Model
	// Circ is the circumference in ticks (positive, even).
	Circ int64
	// Positions holds the starting positions in ticks sorted strictly
	// clockwise; Positions[i] belongs to the agent with ring index i.
	Positions []int64
	// IDs holds the unique identifiers (1..IDBound) by ring index.
	IDs []int
	// IDBound is the value N known to every agent.
	IDBound int
	// Chirality[i] is true when agent i's own clockwise direction coincides
	// with the global clockwise direction.  A nil slice means every agent is
	// correctly oriented.
	Chirality []bool
	// HideParity withholds the parity of n from the agents (the paper
	// normally assumes the parity is known).
	HideParity bool
	// MaxRounds aborts a run once the network's cumulative round count
	// reaches this bound; 0 means DefaultMaxRounds.  The count accumulates
	// across sequential runs on the same Network (as it always has), so a
	// long-lived reused network spends a single budget, not one per run.
	MaxRounds int
	// AllowSmall permits n <= 4 (excluded by the paper, useful in tests).
	AllowSmall bool
}

// Observation is what an agent learns at the end of a round, in its own frame.
// Arc values are in half-ticks; the full circle is Agent.FullCircle().
type Observation struct {
	// Dist is dist(): the arc from the agent's position at the beginning of
	// the round to its position at the end, measured in the agent's own
	// clockwise direction.
	Dist int64
	// Coll is coll(): the arc travelled before the agent's first collision.
	// Only meaningful when Collided is true (perceptive model).
	Coll int64
	// Collided reports whether the agent collided during the round
	// (perceptive model only).
	Collided bool
}

// Network owns the objective ring state and coordinates rounds.  A Network
// supports at most one run at a time: a concurrent Run/RunContext/RunLegacy
// on the same Network fails with ErrRunInProgress instead of corrupting the
// shared state.  Sequential runs reuse the same agent handles, barrier
// buffers and pooled goroutines.
type Network struct {
	cfg     Config
	state   *ring.State
	agents  []*Agent
	idToIdx map[int]int
	barrier *barrier

	// crossings counts the barrier crossings (leap batches) executed on this
	// network, cumulative across runs like the round count.  Single-writer:
	// only the goroutine currently executing a crossing increments it (the
	// barrier's countdown + hand-off lock, the scheduler's single goroutine
	// and the legacy coordinator each guarantee that), ordered by the same
	// synchronisation that orders the ring state itself.
	crossings int

	mu      sync.Mutex // guards running and (between runs) broken
	running bool
	broken  error
}

// Agent is the handle through which a protocol acts.  An Agent is only valid
// inside the protocol invocation it was created for and must not be shared
// across goroutines.
type Agent struct {
	nw         *Network
	d          dispatcher
	idx        int // ring index (never revealed to protocols)
	id         int
	idBound    int
	parity     Parity
	model      ring.Model
	chirality  bool
	fullCircle int64
	rounds     int
	disp       int64

	// Scratch buffers reused across batched submissions: objBuf receives the
	// executor-written objective observations, dirBuf holds the objective
	// translation of a schedule.  Both stay stable while the agent is blocked
	// in the dispatcher, which is the only time the executor reads them.
	// resBuf holds the own-frame translation of the trace a machine is resumed
	// with (fsm.go); it is valid until the machine's next yield.
	objBuf []ring.Observation
	dirBuf []ring.Direction
	resBuf []Observation

	// pend is the agent's single pending-batch slot: the Yield* builders
	// (fsm.go) write the next submission here and return a handle to it, so a
	// yield travels through the CPS frames as three words instead of a full
	// batch copy.  At most one yield per agent is in flight, so one slot
	// suffices.
	pend batch
}

// New validates cfg and builds the network.
func New(cfg Config) (*Network, error) {
	st, err := ring.New(ring.Config{
		Model:      cfg.Model,
		Circ:       cfg.Circ,
		Positions:  cfg.Positions,
		AllowSmall: cfg.AllowSmall,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	n := len(cfg.Positions)
	if len(cfg.IDs) != n {
		return nil, fmt.Errorf("%w: got %d IDs for %d agents", ErrBadIDs, len(cfg.IDs), n)
	}
	if cfg.IDBound < n {
		return nil, fmt.Errorf("%w: IDBound %d < n %d", ErrBadIDs, cfg.IDBound, n)
	}
	idToIdx := make(map[int]int, n)
	for i, id := range cfg.IDs {
		if id < 1 || id > cfg.IDBound {
			return nil, fmt.Errorf("%w: ID %d out of range", ErrBadIDs, id)
		}
		if _, dup := idToIdx[id]; dup {
			return nil, fmt.Errorf("%w: duplicate ID %d", ErrBadIDs, id)
		}
		idToIdx[id] = i
	}
	if cfg.Chirality != nil && len(cfg.Chirality) != n {
		return nil, ErrBadChirality
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	// The barrier is built lazily on the first blocking run (ensureBarrier):
	// a network that only ever runs on the FSM scheduler never pays for the
	// barrier's per-agent slots and wake channels.
	nw := &Network{cfg: cfg, state: st, idToIdx: idToIdx}
	nw.agents = make([]*Agent, n)
	for i := 0; i < n; i++ {
		nw.agents[i] = &Agent{
			nw:         nw,
			idx:        i,
			id:         cfg.IDs[i],
			idBound:    cfg.IDBound,
			parity:     nw.parity(),
			model:      cfg.Model,
			chirality:  nw.ChiralityOf(i),
			fullCircle: st.FullCircle(),
		}
	}
	return nw, nil
}

// Reset re-initialises the network in place for a new configuration, reusing
// the ring state, agent objects (with their grown scratch buffers), ID index
// and barrier of the previous one.  It validates exactly like New.  On error
// the network may be left partially updated and must be discarded; Reset is
// for scenario sweeps over trusted generators, where rebuilding a complete
// network object per scenario is pure allocation overhead.  Reset must not be
// called while a run is in flight.
func (nw *Network) Reset(cfg Config) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.running {
		return ErrRunInProgress
	}
	if err := nw.state.Reset(ring.Config{
		Model:      cfg.Model,
		Circ:       cfg.Circ,
		Positions:  cfg.Positions,
		AllowSmall: cfg.AllowSmall,
	}); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	n := len(cfg.Positions)
	if len(cfg.IDs) != n {
		return fmt.Errorf("%w: got %d IDs for %d agents", ErrBadIDs, len(cfg.IDs), n)
	}
	if cfg.IDBound < n {
		return fmt.Errorf("%w: IDBound %d < n %d", ErrBadIDs, cfg.IDBound, n)
	}
	clear(nw.idToIdx)
	for i, id := range cfg.IDs {
		if id < 1 || id > cfg.IDBound {
			return fmt.Errorf("%w: ID %d out of range", ErrBadIDs, id)
		}
		if _, dup := nw.idToIdx[id]; dup {
			return fmt.Errorf("%w: duplicate ID %d", ErrBadIDs, id)
		}
		nw.idToIdx[id] = i
	}
	if cfg.Chirality != nil && len(cfg.Chirality) != n {
		return ErrBadChirality
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	nw.cfg = cfg
	nw.crossings = 0
	nw.broken = nil
	if cap(nw.agents) < n {
		old := nw.agents
		nw.agents = make([]*Agent, n)
		copy(nw.agents, old[:cap(old)])
	}
	nw.agents = nw.agents[:n]
	for i := 0; i < n; i++ {
		a := nw.agents[i]
		if a == nil {
			a = &Agent{nw: nw, idx: i}
			nw.agents[i] = a
		}
		a.d = nil
		a.id = cfg.IDs[i]
		a.idBound = cfg.IDBound
		a.parity = nw.parity()
		a.model = cfg.Model
		a.chirality = nw.ChiralityOf(i)
		a.fullCircle = nw.state.FullCircle()
		a.rounds = 0
		a.disp = 0
		a.pend = batch{} // drop stale trace/schedule pointers
	}
	return nil
}

// ensureBarrier returns the network's barrier, building it on first blocking
// use and re-pointing (or, after a Reset grew the network, rebuilding) it
// otherwise.  The FSM runtime never calls it, so networks driven only by the
// scheduler skip the barrier's slots and wake channels entirely.
func (nw *Network) ensureBarrier() *barrier {
	if nw.barrier == nil || len(nw.barrier.complete) < nw.N() {
		nw.barrier = newBarrier(nw)
	} else {
		// Re-point the executor at the (possibly Reset) network state and
		// resize its slots; init reuses capacity, so this is allocation-free.
		nw.barrier.leapExec.init(nw)
	}
	return nw.barrier
}

// N returns the number of agents (not revealed to protocols).
func (nw *Network) N() int { return len(nw.cfg.Positions) }

// Model returns the movement model.
func (nw *Network) Model() ring.Model { return nw.cfg.Model }

// Circ returns the circumference in ticks.
func (nw *Network) Circ() int64 { return nw.cfg.Circ }

// Rounds returns the number of rounds executed so far.
func (nw *Network) Rounds() int { return nw.state.Rounds() }

// Crossings returns the number of barrier crossings (leap batches) executed
// so far; rounds/crossings is the mean leap length.  Like Rounds it
// accumulates across sequential runs and must not be read concurrently with
// one.
func (nw *Network) Crossings() int { return nw.crossings }

// IDOf returns the ID of the agent with ring index i.
func (nw *Network) IDOf(i int) int { return nw.cfg.IDs[i] }

// IndexOfID returns the ring index of the agent with the given ID, or -1.
func (nw *Network) IndexOfID(id int) int {
	if idx, ok := nw.idToIdx[id]; ok {
		return idx
	}
	return -1
}

// ChiralityOf reports whether agent i's own clockwise equals the global one.
func (nw *Network) ChiralityOf(i int) bool {
	if nw.cfg.Chirality == nil {
		return true
	}
	return nw.cfg.Chirality[i]
}

// InitialPositions returns the starting positions by ring index (ticks).
func (nw *Network) InitialPositions() []int64 {
	out := make([]int64, len(nw.cfg.Positions))
	copy(out, nw.cfg.Positions)
	return out
}

// CurrentPositions returns the current positions by ring index (ticks).
func (nw *Network) CurrentPositions() []int64 {
	n := nw.N()
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = nw.state.PositionOf(i)
	}
	return out
}

// Gaps returns the clockwise gaps between consecutive slot positions (ticks).
func (nw *Network) Gaps() []int64 { return nw.state.Gaps() }

// FullCircle returns the circumference in observation units (half-ticks).
func (nw *Network) FullCircle() int64 { return nw.state.FullCircle() }

// parity of the actual network size.
func (nw *Network) parity() Parity {
	if nw.cfg.HideParity {
		return ParityUnknown
	}
	if nw.N()%2 == 0 {
		return ParityEven
	}
	return ParityOdd
}

// Result carries the outcome of running a protocol on every agent.
type Result[T any] struct {
	// Rounds is the total number of rounds consumed by the run.
	Rounds int
	// Outputs holds each agent's protocol return value, by ring index.
	Outputs []T
}

// beginRun acquires the network for a run: it rejects concurrent runs and
// runs on a broken network, and resets the per-run agent state.  endRun
// releases the network.
func (nw *Network) beginRun() error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.running {
		return ErrRunInProgress
	}
	if nw.broken != nil {
		return fmt.Errorf("%w: %w", ErrNetworkBroken, nw.broken)
	}
	nw.running = true
	for _, a := range nw.agents {
		a.rounds = 0
		a.disp = 0
	}
	return nil
}

func (nw *Network) endRun() {
	nw.mu.Lock()
	nw.running = false
	nw.mu.Unlock()
}

// Run executes protocol on every agent concurrently and waits for all of
// them.  It returns the per-agent outputs (indexed by ring index) and the
// number of rounds consumed.  Protocol errors from different agents are
// joined into a single error.
func Run[T any](nw *Network, protocol func(a *Agent) (T, error)) (*Result[T], error) {
	//ringvet:allow ctxflow context-free compatibility wrapper: RunContext is the cancellable form
	return RunContext(context.Background(), nw, protocol)
}

// RunContext is Run with cancellation: when ctx is cancelled, the in-flight
// round barrier is aborted, every blocked Agent.Round returns an error
// wrapping the context's error within one round, and the run's joined error
// reports the cancellation.  A protocol is expected to return when Round
// fails; a protocol that ignores Round errors keeps receiving the same
// sticky error, and one that blocks forever without calling Round cannot be
// interrupted (the goroutine is parked inside protocol code the runtime does
// not own).
func RunContext[T any](ctx context.Context, nw *Network, protocol func(a *Agent) (T, error)) (*Result[T], error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: run not started: %w", err)
	}
	if err := nw.beginRun(); err != nil {
		return nil, err
	}
	defer nw.endRun()

	n := nw.N()
	startRounds := nw.state.Rounds()
	b := nw.ensureBarrier()
	b.reset(n)

	outputs := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		a := nw.agents[i]
		a.d = b
		submit(func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[a.idx] = fmt.Errorf("%w: %v", ErrProtocolPanic, r)
				}
				// Always deregister so the barrier can finish the run.
				b.leave()
			}()
			out, err := protocol(a)
			outputs[a.idx] = out
			errs[a.idx] = err
		})
	}

	if ctx.Done() != nil {
		// AfterFunc avoids spawning a watcher goroutine per run on the
		// common non-cancelled path.  When stop reports the callback already
		// started, join it before returning: an in-flight abort must not
		// leak into the next run's fresh barrier state.
		abortDone := make(chan struct{})
		stop := context.AfterFunc(ctx, func() {
			b.abort(ctx.Err())
			close(abortDone)
		})
		defer func() {
			if !stop() {
				<-abortDone
			}
		}()
	}
	wg.Wait()

	res := &Result[T]{Rounds: nw.state.Rounds() - startRounds, Outputs: outputs}
	return res, joinRunErrors(nw, b.runErr(), errs)
}

// RunBarrier is the canonical name of the v2 barrier runtime's entry point;
// Run is the same runtime (kept as the facade's blocking workhorse).
func RunBarrier[T any](nw *Network, protocol func(a *Agent) (T, error)) (*Result[T], error) {
	return Run(nw, protocol)
}

// RunBarrierContext is RunBarrier with cancellation; see RunContext.
func RunBarrierContext[T any](ctx context.Context, nw *Network, protocol func(a *Agent) (T, error)) (*Result[T], error) {
	return RunContext(ctx, nw, protocol)
}

// joinRunErrors merges the run-level error (max rounds, broken state,
// cancellation) with the per-agent protocol errors, matching the error shape
// of the original runtime.
func joinRunErrors(nw *Network, runErr error, errs []error) error {
	all := make([]error, 0, len(errs)+1)
	if runErr != nil {
		all = append(all, runErr)
	}
	for i, err := range errs {
		if err != nil {
			all = append(all, fmt.Errorf("agent id %d: %w", nw.cfg.IDs[i], err))
		}
	}
	if len(all) > 0 {
		return errors.Join(all...)
	}
	return nil
}

// objectiveDir translates agent i's own-frame direction into the global frame.
func (nw *Network) objectiveDir(i int, own ring.Direction) ring.Direction {
	if own == ring.Idle || nw.ChiralityOf(i) {
		return own
	}
	return own.Opposite()
}

// ID returns the agent's unique identifier.
func (a *Agent) ID() int { return a.id }

// IDBound returns N, the publicly known bound on identifiers.
func (a *Agent) IDBound() int { return a.idBound }

// NParity returns what the agent knows about the parity of n.
func (a *Agent) NParity() Parity { return a.parity }

// Model returns the movement model in force.
func (a *Agent) Model() ring.Model { return a.model }

// FullCircle returns the circumference of the ring in observation units
// (half-ticks); the paper normalises it to 1.
func (a *Agent) FullCircle() int64 { return a.fullCircle }

// RoundsUsed returns how many rounds this agent has participated in during
// the current run.
func (a *Agent) RoundsUsed() int { return a.rounds }

// Displacement returns the cumulative displacement of the agent since the
// current run started, measured in its own clockwise direction modulo the
// full circle (half-ticks).  An agent always knows the arc between its
// initial and its current position by summing its dist() observations.
func (a *Agent) Displacement() int64 { return a.disp }

// checkDir validates a direction an agent is about to submit.
func (a *Agent) checkDir(dir ring.Direction) error {
	switch dir {
	case ring.Clockwise, ring.Anticlockwise:
		return nil
	case ring.Idle:
		if !a.model.AllowsIdle() {
			return ErrIdleNotAllowed
		}
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrBadDirection, int8(dir))
	}
}

// objective translates an own-frame direction into the global frame.
func (a *Agent) objective(dir ring.Direction) ring.Direction {
	if !a.chirality && dir != ring.Idle {
		return dir.Opposite()
	}
	return dir
}

// objDisp returns the agent's cumulative displacement re-expressed in the
// global clockwise direction (half-ticks, mod the full circle).
func (a *Agent) objDisp(own int64) int64 {
	if a.chirality || own == 0 {
		return own
	}
	return a.fullCircle - own
}

// obsScratch returns the agent-owned objective observation buffer, sized k.
func (a *Agent) obsScratch(k int) []ring.Observation {
	if cap(a.objBuf) < k {
		a.objBuf = make([]ring.Observation, k)
	}
	return a.objBuf[:k]
}

// absorb translates one objective observation into the agent's frame and
// folds it into the agent's round and displacement accounting.
func (a *Agent) absorb(rep ring.Observation) Observation {
	a.rounds++
	obs := Observation{Collided: rep.Collided, Coll: rep.Coll}
	if a.chirality || rep.DistCW == 0 {
		obs.Dist = rep.DistCW
	} else {
		obs.Dist = a.fullCircle - rep.DistCW
	}
	// obs.Dist < fullCircle always, so a conditional subtraction replaces the
	// modulo on the hot path.
	a.disp += obs.Dist
	if a.disp >= a.fullCircle {
		a.disp -= a.fullCircle
	}
	return obs
}

// Round submits the agent's chosen direction (in its own frame) for the next
// round, blocks until the round has been executed, and returns the agent's
// observation translated into its own frame.  Round is the degenerate
// single-round case of the batched submission API (RoundN and friends).
func (a *Agent) Round(dir ring.Direction) (Observation, error) {
	if err := a.checkDir(dir); err != nil {
		return Observation{}, err
	}
	buf := a.obsScratch(1)
	if _, _, err := a.d.awaitBatch(a.idx, batch{dir: a.objective(dir), k: 1, trace: buf}); err != nil {
		return Observation{}, err
	}
	return a.absorb(buf[0]), nil
}

// finishTrace translates the executed prefix of the objective trace into the
// agent's frame, writing into dst from index 0 (existing contents are
// overwritten; only dst's capacity is reused).
func (a *Agent) finishTrace(executed int, dst []Observation) []Observation {
	if cap(dst) < executed {
		dst = make([]Observation, executed)
	}
	dst = dst[:executed]
	for j := 0; j < executed; j++ {
		dst[j] = a.absorb(a.objBuf[j])
	}
	return dst
}

// RoundN submits the same direction (in the agent's own frame) for k
// consecutive rounds as one leap batch: the runtime executes the whole
// constant-direction stretch without waking the agent in between, in closed
// form where the other agents' directions allow it.  It returns the per-round
// observation trace, exactly what k sequential Round calls would have
// returned.
func (a *Agent) RoundN(dir ring.Direction, k int) ([]Observation, error) {
	return a.RoundNInto(dir, k, nil)
}

// RoundNInto is RoundN writing the trace into dst from index 0, reusing its
// capacity and overwriting any existing contents; a caller
// that keeps the same buffer across batches submits without allocation.
func (a *Agent) RoundNInto(dir ring.Direction, k int, dst []Observation) ([]Observation, error) {
	if err := a.checkDir(dir); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("engine: %w: got %d", ring.ErrBadRoundCount, k)
	}
	buf := a.obsScratch(k)
	executed, _, err := a.d.awaitBatch(a.idx, batch{dir: a.objective(dir), k: k, trace: buf})
	if err != nil {
		return nil, err
	}
	return a.finishTrace(executed, dst), nil
}

// RoundNSum is the aggregate form of RoundN for callers that only need the
// cumulative displacement of the stretch: no per-round trace is materialised
// (the runtime derives the total in O(1) per leap), and the return value is
// the agent's displacement over the k rounds, measured in its own clockwise
// direction modulo the full circle.
func (a *Agent) RoundNSum(dir ring.Direction, k int) (int64, error) {
	if err := a.checkDir(dir); err != nil {
		return 0, err
	}
	if k < 1 {
		return 0, fmt.Errorf("engine: %w: got %d", ring.ErrBadRoundCount, k)
	}
	_, agg, err := a.d.awaitBatch(a.idx, batch{dir: a.objective(dir), k: k})
	if err != nil {
		return 0, err
	}
	own := agg
	if !a.chirality && agg != 0 {
		own = a.fullCircle - agg
	}
	a.rounds += k
	a.disp = (a.disp + own) % a.fullCircle
	return own, nil
}

// RoundUntil is RoundN with an early-stop condition: the batch ends after the
// first round at which the agent's cumulative run displacement (the value
// Displacement would report) equals target, even if fewer than k rounds have
// executed; the trace covers exactly the executed rounds.  The runtime solves
// the stop in closed form, so the batch never overshoots the round at which
// the equivalent per-round loop — Round until Displacement() == target —
// would have stopped.  When no round in the batch reaches target, all k
// rounds execute.
func (a *Agent) RoundUntil(dir ring.Direction, target int64, k int, dst []Observation) ([]Observation, error) {
	if err := a.checkDir(dir); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("engine: %w: got %d", ring.ErrBadRoundCount, k)
	}
	if target < 0 || target >= a.fullCircle {
		return nil, fmt.Errorf("engine: displacement target %d outside [0, %d)", target, a.fullCircle)
	}
	buf := a.obsScratch(k)
	executed, _, err := a.d.awaitBatch(a.idx, batch{
		dir:        a.objective(dir),
		k:          k,
		trace:      buf,
		stop:       true,
		stopTarget: a.objDisp(target),
		objDisp:    a.objDisp(a.disp),
	})
	if err != nil {
		return nil, err
	}
	return a.finishTrace(executed, dst), nil
}

// RoundSchedule submits a whole per-round direction schedule (in the agent's
// own frame) as one batch: the runtime executes all len(dirs) rounds without
// waking the agent in between, leaping over the constant-direction stretches
// of the schedule.  It returns the per-round observation trace, exactly what
// sequential Round calls over dirs would have returned.  Use it when the
// agent knows its upcoming directions in advance (broadcasts, communication
// phases); schedules of different agents need not agree — the barrier splits
// the leap wherever batch lengths or directions require.
func (a *Agent) RoundSchedule(dirs []ring.Direction, dst []Observation) ([]Observation, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("engine: %w: empty schedule", ring.ErrBadRoundCount)
	}
	if cap(a.dirBuf) < len(dirs) {
		a.dirBuf = make([]ring.Direction, len(dirs))
	}
	sched := a.dirBuf[:len(dirs)]
	for i, d := range dirs {
		if err := a.checkDir(d); err != nil {
			return nil, err
		}
		sched[i] = a.objective(d)
	}
	buf := a.obsScratch(len(dirs))
	executed, _, err := a.d.awaitBatch(a.idx, batch{dirs: sched, k: len(dirs), trace: buf})
	if err != nil {
		return nil, err
	}
	return a.finishTrace(executed, dst), nil
}
