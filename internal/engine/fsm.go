// The v3 runtime's agent model: a protocol is a resumable state machine in
// continuation-passing style.  Instead of blocking inside Agent.Round, a
// machine RETURNS its next round/leap-batch request as a Yield together with
// the continuation to resume with, and the scheduler (sched.go) — one
// goroutine per scenario — executes the crossing and feeds the Resume back
// in.  No goroutine per agent, no barrier, no mutexes, no per-agent stacks:
// every mutation of protocol state happens on the scheduler goroutine.
//
// The same machines also run unchanged on the v2 barrier and v1 legacy
// runtimes: RunMachine drives a machine to completion through the agent's
// blocking dispatcher, which is exactly how the blocking protocol entry
// points (core.Coordinate and friends) are implemented.  One protocol source,
// three runtimes — which is what entitles the differential tests to demand
// byte-identical traces.
package engine

import (
	"fmt"

	"ringsym/internal/ring"
)

// Resume is what a machine receives when its pending yield has executed.
// Exactly one mode is populated: Obs for trace-mode yields (YieldRound,
// YieldRoundN, YieldRoundUntil, YieldSchedule), Sum for aggregate-mode yields
// (YieldRoundSum), Err when the run failed (max rounds, broken network,
// cancellation) — a machine resumed with Err must terminate, which Proto does
// automatically.
//
// Obs aliases an agent-owned scratch buffer: it is valid only until the
// machine's next yield (or return) and must be consumed — or copied —
// immediately by the continuation.
type Resume struct {
	Obs []Observation
	Sum int64
	Err error
}

// Cont is a continuation: it consumes the Resume of the previous yield and
// produces the next yield plus its continuation.  A nil returned Cont
// terminates the machine (the final Yield is ignored unless it aborts).
type Cont func(in Resume) (Yield, Cont)

// Yield is one agent's round/leap-batch request, built by the Agent's Yield*
// builders (never literally): the same validated, frame-translated submission
// the blocking Round* methods hand to the dispatcher.  A Yield carrying an
// abort error terminates the machine with that error instead of executing
// (see Abort).
//
// A Yield is a three-word handle, not the batch itself: the batch lives in the
// agent's single pending slot and b points at it.  Keeping the struct at
// register size matters because a yield is returned through every frame of a
// CPS protocol — with the batch inline, each return duff-copied ~100 bytes and
// the copies dominated small-scenario scheduling.  The one-slot regime is safe
// because a machine can have only one yield in flight: builders are called in
// return position, so a new yield is never built before the previous one
// settled.
type Yield struct {
	b     *batch // the agent's pending slot; nil on abort/terminal yields
	abort error  // validation/protocol failure: terminate instead of executing
}

// Abort terminates a machine with err without executing further rounds.  It
// is the exception channel of the CPS form: protocol code returns
// Abort(err) where the blocking form returned err, and Proto surfaces it as
// the machine's error — so intermediate layers need no error plumbing.
func Abort(err error) (Yield, Cont) { return Yield{abort: err}, nil }

// Machine is a resumable agent protocol.  Step consumes the Resume of the
// previous yield (zero on the first call) and returns the next yield; done
// reports termination, after which Step must not be called again.  Step must
// never return an abort yield (Proto intercepts them) and must request at
// least one round per yield.
type Machine interface {
	Step(in Resume) (y Yield, done bool)
}

// Proto adapts a continuation-passing protocol into a Machine with a typed
// result.  It owns the machine-level error handling: a Resume carrying a run
// failure and a yield carrying an abort both terminate the machine with that
// error, so protocol code in CPS form contains no error propagation at all —
// errors travel exactly as they did through the blocking call chain, which
// was propagate-only everywhere.
type Proto[T any] struct {
	next Cont
	out  T
	err  error
}

// NewProto builds a Proto from a CPS start function.  start receives the
// machine's done callback and returns the first yield; protocol code calls
// done(result, err) exactly where the blocking form returned.
func NewProto[T any](start func(done func(T, error) (Yield, Cont)) (Yield, Cont)) *Proto[T] {
	p := &Proto[T]{}
	p.next = func(Resume) (Yield, Cont) { return start(p.finish) }
	return p
}

// finish is the done callback handed to the protocol by NewProto.
func (p *Proto[T]) finish(out T, err error) (Yield, Cont) {
	p.out, p.err = out, err
	return Yield{}, nil
}

// Result returns the machine's output and error; meaningful once Step
// reported done.
func (p *Proto[T]) Result() (T, error) { return p.out, p.err }

// Step implements Machine.
func (p *Proto[T]) Step(in Resume) (Yield, bool) {
	if in.Err != nil {
		p.err = in.Err
		p.next = nil
		return Yield{}, true
	}
	y, next := p.next(in)
	if y.abort != nil {
		p.err = y.abort
		p.next = nil
		return Yield{}, true
	}
	if next == nil {
		p.next = nil
		return Yield{}, true
	}
	if y.b == nil || y.b.k < 1 {
		// A continuation without a batch can never be resumed; fail loudly
		// instead of wedging the scheduler in a zero-length crossing.
		p.err = fmt.Errorf("engine: malformed yield: continuation without a round batch")
		p.next = nil
		return Yield{}, true
	}
	p.next = next
	return y, false
}

// yield stores bt in the agent's pending slot and returns the handle to it.
func (a *Agent) yield(bt batch) Yield {
	a.pend = bt
	return Yield{b: &a.pend}
}

// YieldRound is the yield form of Round: one round in direction dir (the
// agent's own frame); the continuation resumes with the single observation in
// Resume.Obs[0].
func (a *Agent) YieldRound(dir ring.Direction) Yield {
	if err := a.checkDir(dir); err != nil {
		return Yield{abort: err}
	}
	return a.yield(batch{dir: a.objective(dir), k: 1, trace: a.obsScratch(1)})
}

// YieldRoundN is the yield form of RoundN: k rounds in direction dir as one
// leap batch; the continuation resumes with the per-round trace in
// Resume.Obs.
func (a *Agent) YieldRoundN(dir ring.Direction, k int) Yield {
	if err := a.checkDir(dir); err != nil {
		return Yield{abort: err}
	}
	if k < 1 {
		return Yield{abort: fmt.Errorf("engine: %w: got %d", ring.ErrBadRoundCount, k)}
	}
	return a.yield(batch{dir: a.objective(dir), k: k, trace: a.obsScratch(k)})
}

// YieldRoundSum is the yield form of RoundNSum: k rounds in direction dir,
// aggregate mode; the continuation resumes with the stretch's cumulative
// own-frame displacement in Resume.Sum.
func (a *Agent) YieldRoundSum(dir ring.Direction, k int) Yield {
	if err := a.checkDir(dir); err != nil {
		return Yield{abort: err}
	}
	if k < 1 {
		return Yield{abort: fmt.Errorf("engine: %w: got %d", ring.ErrBadRoundCount, k)}
	}
	return a.yield(batch{dir: a.objective(dir), k: k, sum: true})
}

// YieldRoundUntil is the yield form of RoundUntil.  Like the blocking form it
// snapshots the agent's current displacement into the batch, so it must be
// built at yield time, not ahead of it.
func (a *Agent) YieldRoundUntil(dir ring.Direction, target int64, k int) Yield {
	if err := a.checkDir(dir); err != nil {
		return Yield{abort: err}
	}
	if k < 1 {
		return Yield{abort: fmt.Errorf("engine: %w: got %d", ring.ErrBadRoundCount, k)}
	}
	if target < 0 || target >= a.fullCircle {
		return Yield{abort: fmt.Errorf("engine: displacement target %d outside [0, %d)", target, a.fullCircle)}
	}
	return a.yield(batch{
		dir:        a.objective(dir),
		k:          k,
		trace:      a.obsScratch(k),
		stop:       true,
		stopTarget: a.objDisp(target),
		objDisp:    a.objDisp(a.disp),
	})
}

// YieldSchedule is the yield form of RoundSchedule: a whole per-round
// direction schedule (the agent's own frame) as one batch.  The schedule is
// translated into an agent-owned scratch buffer, so the caller's slice is
// never retained.
func (a *Agent) YieldSchedule(dirs []ring.Direction) Yield {
	if len(dirs) == 0 {
		return Yield{abort: fmt.Errorf("engine: %w: empty schedule", ring.ErrBadRoundCount)}
	}
	if cap(a.dirBuf) < len(dirs) {
		a.dirBuf = make([]ring.Direction, len(dirs))
	}
	sched := a.dirBuf[:len(dirs)]
	for i, d := range dirs {
		if err := a.checkDir(d); err != nil {
			return Yield{abort: err}
		}
		sched[i] = a.objective(d)
	}
	return a.yield(batch{dirs: sched, k: len(dirs), trace: a.obsScratch(len(dirs))})
}

// settle folds a completed batch into the agent's round and displacement
// accounting — exactly what the blocking Round* methods do after awaitBatch
// returns — and builds the Resume for the continuation.  executed and agg are
// the dispatcher's results for the batch.
func (a *Agent) settle(bt *batch, executed int, agg int64) Resume {
	if bt.sum {
		own := agg
		if !a.chirality && agg != 0 {
			own = a.fullCircle - agg
		}
		a.rounds += bt.k
		a.disp = (a.disp + own) % a.fullCircle
		return Resume{Sum: own}
	}
	a.resBuf = a.finishTrace(executed, a.resBuf)
	return Resume{Obs: a.resBuf}
}

// RunMachine drives machine p to completion through the agent's blocking
// dispatcher and returns its result.  This is how the yield-form protocols
// execute on the v2 barrier and v1 legacy runtimes: the blocking protocol
// entry points are RunMachine over the same machines the v3 scheduler steps,
// so all three runtimes run literally the same protocol code.
func RunMachine[T any](a *Agent, p *Proto[T]) (T, error) {
	var in Resume
	for {
		y, done := p.Step(in)
		if done {
			return p.Result()
		}
		executed, agg, err := a.d.awaitBatch(a.idx, *y.b)
		if err != nil {
			in = Resume{Err: err}
			continue
		}
		in = a.settle(y.b, executed, agg)
	}
}

// RunStep runs a single CPS step function — a protocol fragment whose
// continuation takes the fragment's result — to completion on the blocking
// dispatcher.  It is the one-line adapter the blocking wrappers of
// sub-protocols are built from.
func RunStep[T any](a *Agent, step func(k func(T) (Yield, Cont)) (Yield, Cont)) (T, error) {
	return RunMachine(a, NewProto(func(done func(T, error) (Yield, Cont)) (Yield, Cont) {
		return step(func(v T) (Yield, Cont) { return done(v, nil) })
	}))
}
