package engine

import (
	"fmt"

	"ringsym/internal/ring"
)

// leapExec is the runtime-independent crossing executor: the pending-batch
// slots plus the stretch/stop/budget loop that executes one barrier crossing
// on the analytic engine.  The v2 barrier embeds it behind its countdown and
// hand-off lock (barrier.go); the v3 scheduler drives it inline from its
// single goroutine (sched.go).  Keeping the loop in one place is what makes
// the two runtimes execute byte-identical round sequences: the leap length,
// the stretch splits, the closed-form stop clamping and the per-agent
// accounting are literally the same code.
//
// Ownership contract: between the moment a crossing starts and the moment the
// caller hands completed slots back to their agents, the executing goroutine
// is the only one touching pend, submitted and the shared ring state.  The
// barrier guarantees this with its countdown + xlock; the scheduler trivially,
// by having only one goroutine.
type leapExec struct {
	nw   *Network
	full int64 // circumference in half-ticks

	pend      []pending        // submission slots by ring index
	submitted []bool           // whether agent i has an unconsumed batch
	dirs      []ring.Direction // objective direction by ring index, per stretch
	out       ring.Outcome     // single-round stretch buffer
	leap      ring.LeapOutcome // multi-round stretch buffer
}

// init points the executor at nw and (re)sizes its slots to the network's
// agent count, reusing capacity across networks of at most the previous size.
func (e *leapExec) init(nw *Network) {
	n := nw.N()
	e.nw = nw
	e.full = nw.state.FullCircle()
	if cap(e.pend) < n {
		e.pend = make([]pending, n)
		e.submitted = make([]bool, n)
		e.dirs = make([]ring.Direction, n)
		e.out.Agents = make([]ring.Observation, n)
	}
	e.pend = e.pend[:n]
	e.submitted = e.submitted[:n]
	e.dirs = e.dirs[:n]
	e.out.Agents = e.out.Agents[:n]
	for i := 0; i < n; i++ {
		e.pend[i] = pending{} // drop stale trace/schedule pointers
		e.submitted[i] = false
	}
}

// crossing executes one crossing: the minimum remaining round count over all
// pending batches, in constant-direction stretches, filling in the default
// direction (the agent's own clockwise) for agents that are no longer
// submitting.  It returns the number of pending batches (0 means every agent
// has left and nothing executed) and the run failure, fully wrapped, when the
// round budget is exhausted, the network is broken or the analytic engine
// rejects a round.  Panics in the analytic engine propagate; callers convert
// them into a broken-network failure.
func (e *leapExec) crossing() (active int, err error) {
	if testHookExecuteRound != nil {
		testHookExecuteRound()
	}
	nw := e.nw
	n := len(e.pend)

	// The leap length is the minimum remaining count across pending batches;
	// agents that left get their default direction, constant for the whole
	// crossing.
	kmin := 0
	for i := 0; i < n; i++ {
		if !e.submitted[i] {
			e.dirs[i] = nw.objectiveDir(i, ring.Clockwise)
			continue
		}
		active++
		if k := e.pend[i].k - e.pend[i].pos; active == 1 || k < kmin {
			kmin = k
		}
	}
	if active == 0 {
		// Every agent has left; the run is over and nobody is waiting.  This
		// must precede the error checks: a protocol that terminates after
		// consuming exactly the round budget has not exceeded anything.
		return 0, nil
	}
	if nw.state.Rounds() >= nw.cfg.MaxRounds {
		return active, fmt.Errorf("%w (%d)", ErrMaxRoundsExceed, nw.cfg.MaxRounds)
	}
	if nw.broken != nil {
		return active, fmt.Errorf("%w: %w", ErrNetworkBroken, nw.broken)
	}
	if budget := nw.cfg.MaxRounds - nw.state.Rounds(); kmin > budget {
		// The round budget ends inside the leap.  Execute what fits — keeping
		// the state's round count identical to the per-round path — and let
		// the caller's completion scan fail the run if no batch fits the
		// budget.
		kmin = budget
	}

	// Execute the leap in stretches over which every agent's direction is
	// constant, so each stretch is a single closed-form step.
	for done := 0; done < kmin; {
		stretch := kmin - done
		for i := 0; i < n; i++ {
			if !e.submitted[i] {
				continue // default direction, already constant in e.dirs[i]
			}
			p := &e.pend[i]
			if p.dirs == nil {
				e.dirs[i] = p.dir
				continue
			}
			// p.pos is kept current across stretches, so it is the cursor
			// into the schedule.
			d := p.dirs[p.pos]
			e.dirs[i] = d
			run := 1
			for run < stretch && p.dirs[p.pos+run] == d {
				run++
			}
			if run < stretch {
				stretch = run
			}
		}
		// Armed stop conditions clamp the stretch so no batch overshoots the
		// round its per-round equivalent would have stopped at.
		r := ring.RotationIndex(n, e.dirs)
		for i := 0; i < n; i++ {
			if e.submitted[i] && e.pend[i].stop {
				p := &e.pend[i]
				if j := nw.state.StopRound(nw.state.Slot(i), r, p.objDisp, p.stopTarget, stretch); j > 0 && j < stretch {
					stretch = j
				}
			}
		}

		if stretch == 1 {
			if err := nw.state.ExecuteRoundInto(e.dirs, &e.out); err != nil {
				nw.broken = err
				return active, fmt.Errorf("%w: %w", ErrNetworkBroken, err)
			}
			for i := 0; i < n; i++ {
				if !e.submitted[i] {
					continue
				}
				p := &e.pend[i]
				obs := e.out.Agents[i]
				if p.trace != nil {
					p.trace[p.pos] = obs
				}
				p.agg += obs.DistCW
				if p.agg >= e.full {
					p.agg -= e.full
				}
				p.objDisp += obs.DistCW
				if p.objDisp >= e.full {
					p.objDisp -= e.full
				}
				p.pos++
			}
		} else {
			if err := nw.state.ExecuteRoundsInto(e.dirs, stretch, &e.leap); err != nil {
				nw.broken = err
				return active, fmt.Errorf("%w: %w", ErrNetworkBroken, err)
			}
			for i := 0; i < n; i++ {
				if !e.submitted[i] {
					continue
				}
				p := &e.pend[i]
				if p.trace != nil {
					for j := 0; j < stretch; j++ {
						p.trace[p.pos+j] = e.leap.Observe(i, j)
					}
				}
				delta := e.leap.Displacement(i, stretch)
				p.agg = (p.agg + delta) % e.full
				p.objDisp = (p.objDisp + delta) % e.full
				p.pos += stretch
			}
		}
		// A batch whose stop condition just hit is complete regardless of its
		// remaining count; the stretch was clamped so the hit is exactly at
		// the stretch boundary.  An early stop also ends the whole crossing:
		// the model needs every agent to act in every round, so no further
		// round can execute until the stopped agent submits again (or
		// leaves).
		stopped := false
		for i := 0; i < n; i++ {
			if e.submitted[i] {
				if p := &e.pend[i]; p.stop && p.pos < p.k && p.objDisp == p.stopTarget {
					p.k = p.pos
					stopped = true
				}
			}
		}
		done += stretch
		ctrRounds.Add(uint64(stretch))
		if stopped {
			break
		}
	}
	nw.crossings++
	if c := ctrCrossings.Add(1); c&leapSampleMask == 0 {
		emitLeapSample(c)
	}
	return active, nil
}
