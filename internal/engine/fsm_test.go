package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ringsym/internal/ring"
)

// The tests in this file pin the v3 scheduler runtime: machines built from
// the same generated scripts as leap_test.go must produce byte-identical
// traces, outputs, round counts and crossing counts on RunFSM, on the v2
// barrier (both as blocking calls and as RunMachine over the same machines)
// and on the v1 legacy runtime.

// scriptMachine is the machine form of batchedProtocol: the same generated
// script executed through the yield builders, one yield per op.
func scriptMachine(seed int64, ops int) func(a *Agent) *Proto[leapTrace] {
	return func(a *Agent) *Proto[leapTrace] {
		return NewProto(func(done func(leapTrace, error) (Yield, Cont)) (Yield, Cont) {
			script := scriptFor(a.ID(), seed, a.Model(), a.FullCircle(), ops)
			var tr leapTrace
			var step func(i int) (Yield, Cont)
			step = func(i int) (Yield, Cont) {
				if i == len(script) {
					tr.disp = a.Displacement()
					tr.used = a.RoundsUsed()
					return done(tr, nil)
				}
				op := script[i]
				var y Yield
				switch op.kind {
				case 0:
					y = a.YieldRound(op.dir)
				case 1:
					y = a.YieldRoundN(op.dir, op.k)
				case 2:
					y = a.YieldSchedule(op.dirs)
				case 3:
					y = a.YieldRoundSum(op.dir, op.k)
				case 4:
					y = a.YieldRoundUntil(op.dir, op.target, op.k)
				}
				return y, func(in Resume) (Yield, Cont) {
					if op.kind == 3 {
						tr.sums = append(tr.sums, in.Sum)
					} else {
						tr.obs = append(tr.obs, in.Obs...)
					}
					return step(i + 1)
				}
			}
			return step(0)
		})
	}
}

// TestFSMSchedulerEquivalence is the randomized differential test of the v3
// runtime: generated mixed-op scripts across all three models, both chirality
// regimes and both parities, executed four ways — v3 scheduler, v2 barrier
// (blocking calls), v2 barrier driving the machines via RunMachine, v1 legacy
// — with byte-identical traces, equal round counts, equal v2/v3 crossing
// counts and the v1 crossings-equal-rounds invariant.
func TestFSMSchedulerEquivalence(t *testing.T) {
	for _, model := range []ring.Model{ring.Basic, ring.Lazy, ring.Perceptive} {
		for _, oddN := range []bool{false, true} {
			for _, mixed := range []bool{false, true} {
				name := fmt.Sprintf("%v/odd=%v/mixed=%v", model, oddN, mixed)
				t.Run(name, func(t *testing.T) {
					for trial := 0; trial < 8; trial++ {
						seed := int64(1000*trial) + 4242
						rng := rand.New(rand.NewSource(seed))
						cfg := leapTestConfig(rng, model, oddN, mixed)
						build := func() *Network {
							nw, err := New(cfg)
							if err != nil {
								t.Fatal(err)
							}
							return nw
						}
						const ops = 12

						nwF, nwB, nwM, nwL := build(), build(), build(), build()
						fsm, errF := RunFSM(nwF, scriptMachine(seed, ops))
						barrier, errB := Run(nwB, batchedProtocol(seed, ops))
						machined, errM := Run(nwM, func(a *Agent) (leapTrace, error) {
							return RunMachine(a, scriptMachine(seed, ops)(a))
						})
						legacy, errL := RunLegacy(nwL, batchedProtocol(seed, ops))
						if errF != nil || errB != nil || errM != nil || errL != nil {
							t.Fatalf("trial %d: errors fsm=%v barrier=%v machined=%v legacy=%v",
								trial, errF, errB, errM, errL)
						}
						if fsm.Rounds != barrier.Rounds || fsm.Rounds != machined.Rounds || fsm.Rounds != legacy.Rounds {
							t.Fatalf("trial %d: rounds fsm=%d barrier=%d machined=%d legacy=%d",
								trial, fsm.Rounds, barrier.Rounds, machined.Rounds, legacy.Rounds)
						}
						for i := range fsm.Outputs {
							if !fsm.Outputs[i].equal(barrier.Outputs[i]) {
								t.Fatalf("trial %d agent %d: fsm != barrier\nfsm:     %+v\nbarrier: %+v",
									trial, i, fsm.Outputs[i], barrier.Outputs[i])
							}
							if !fsm.Outputs[i].equal(machined.Outputs[i]) {
								t.Fatalf("trial %d agent %d: fsm != machine-on-barrier", trial, i)
							}
							if !fsm.Outputs[i].equal(legacy.Outputs[i]) {
								t.Fatalf("trial %d agent %d: fsm != legacy", trial, i)
							}
						}
						// The scheduler and the barrier share the crossing
						// executor, so their leap decomposition is identical;
						// legacy dispatches per round by design.
						if nwF.Crossings() != nwB.Crossings() || nwF.Crossings() != nwM.Crossings() {
							t.Fatalf("trial %d: crossings fsm=%d barrier=%d machined=%d",
								trial, nwF.Crossings(), nwB.Crossings(), nwM.Crossings())
						}
						if nwL.Crossings() != nwL.Rounds() {
							t.Fatalf("trial %d: legacy crossings %d != rounds %d",
								trial, nwL.Crossings(), nwL.Rounds())
						}
					}
				})
			}
		}
	}
}

// TestFSMBatchReuse pins the WithBatch path: sequential scenarios through one
// worker-held Batch produce the same results as pool-backed runs.
func TestFSMBatchReuse(t *testing.T) {
	arena := NewBatch()
	ctx := WithBatch(context.Background(), arena)
	for trial := 0; trial < 6; trial++ {
		seed := int64(31*trial) + 7
		rng := rand.New(rand.NewSource(seed))
		cfg := leapTestConfig(rng, ring.Perceptive, trial%2 == 0, true)
		build := func() *Network {
			nw, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return nw
		}
		const ops = 9
		shared, errS := RunFSMContext(ctx, build(), scriptMachine(seed, ops))
		pooled, errP := RunFSM(build(), scriptMachine(seed, ops))
		if errS != nil || errP != nil {
			t.Fatalf("trial %d: errors shared=%v pooled=%v", trial, errS, errP)
		}
		for i := range shared.Outputs {
			if !shared.Outputs[i].equal(pooled.Outputs[i]) {
				t.Fatalf("trial %d agent %d: shared-arena run differs from pooled run", trial, i)
			}
		}
	}
}

// TestFSMValidationAborts pins the abort channel: invalid yield parameters
// terminate the machine with the same error values the blocking API returns,
// without consuming rounds.
func TestFSMValidationAborts(t *testing.T) {
	cases := []struct {
		name  string
		yield func(a *Agent) Yield
		want  error
	}{
		{"zero count", func(a *Agent) Yield { return a.YieldRoundN(ring.Clockwise, 0) }, ring.ErrBadRoundCount},
		{"idle in basic", func(a *Agent) Yield { return a.YieldRound(ring.Idle) }, ErrIdleNotAllowed},
		{"empty schedule", func(a *Agent) Yield { return a.YieldSchedule(nil) }, ring.ErrBadRoundCount},
		{"negative sum count", func(a *Agent) Yield { return a.YieldRoundSum(ring.Clockwise, -1) }, ring.ErrBadRoundCount},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nw, err := New(testConfig(ring.Basic, nil))
			if err != nil {
				t.Fatal(err)
			}
			_, err = RunFSM(nw, func(a *Agent) *Proto[struct{}] {
				return NewProto(func(done func(struct{}, error) (Yield, Cont)) (Yield, Cont) {
					return tc.yield(a), func(Resume) (Yield, Cont) { return done(struct{}{}, nil) }
				})
			})
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			if nw.Rounds() != 0 {
				t.Fatalf("aborted validation consumed %d rounds", nw.Rounds())
			}
		})
	}

	// RoundUntil's target range check.
	nw, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunFSM(nw, func(a *Agent) *Proto[struct{}] {
		return NewProto(func(done func(struct{}, error) (Yield, Cont)) (Yield, Cont) {
			return a.YieldRoundUntil(ring.Clockwise, -2, 3), func(Resume) (Yield, Cont) { return done(struct{}{}, nil) }
		})
	}); err == nil {
		t.Fatal("negative RoundUntil target accepted")
	}
}

// TestFSMBudgetExhaustion pins ErrMaxRoundsExceed on the scheduler: the clamp
// executes exactly the budgeted rounds, like the barrier.
func TestFSMBudgetExhaustion(t *testing.T) {
	cfg := testConfig(ring.Basic, nil)
	cfg.MaxRounds = 5
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunFSM(nw, func(a *Agent) *Proto[struct{}] {
		return NewProto(func(done func(struct{}, error) (Yield, Cont)) (Yield, Cont) {
			return a.YieldRoundN(ring.Clockwise, 9), func(in Resume) (Yield, Cont) {
				return done(struct{}{}, nil)
			}
		})
	})
	if !errors.Is(err, ErrMaxRoundsExceed) {
		t.Fatalf("got %v, want ErrMaxRoundsExceed", err)
	}
	if nw.Rounds() != 5 {
		t.Fatalf("state executed %d rounds, want the full budget of 5", nw.Rounds())
	}
}

// TestFSMStepPanic pins panic containment: a panicking continuation fails its
// own machine with ErrProtocolPanic while the other machines finish normally.
func TestFSMStepPanic(t *testing.T) {
	nw, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFSM(nw, func(a *Agent) *Proto[int] {
		return NewProto(func(done func(int, error) (Yield, Cont)) (Yield, Cont) {
			return a.YieldRound(ring.Clockwise), func(in Resume) (Yield, Cont) {
				if a.ID() == 1 {
					panic("machine meltdown")
				}
				return done(a.RoundsUsed(), nil)
			}
		})
	})
	if !errors.Is(err, ErrProtocolPanic) {
		t.Fatalf("got %v, want ErrProtocolPanic", err)
	}
	for i, used := range res.Outputs {
		if nw.IDOf(i) != 1 && used != 1 {
			t.Errorf("agent %d: rounds used %d, want 1", i, used)
		}
	}
}

// TestFSMCancellation pins cancellation granularity: a cancel between
// crossings fails every still-pending machine with the context error within
// one crossing.
func TestFSMCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	nw, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunFSMContext(ctx, nw, func(a *Agent) *Proto[struct{}] {
		return NewProto(func(done func(struct{}, error) (Yield, Cont)) (Yield, Cont) {
			var loop func(in Resume) (Yield, Cont)
			loop = func(in Resume) (Yield, Cont) {
				if a.RoundsUsed() >= 3 && a.ID() == 1 {
					cancel() // fires mid-run, from inside the scheduler goroutine
				}
				return a.YieldRound(ring.Clockwise), loop
			}
			return loop(Resume{})
		})
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}

	// A context dead on arrival refuses to start at all.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	nw2, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunFSMContext(pre, nw2, func(a *Agent) *Proto[struct{}] {
		return NewProto(func(done func(struct{}, error) (Yield, Cont)) (Yield, Cont) {
			return done(struct{}{}, nil)
		})
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v, want context.Canceled", err)
	}
	if nw2.Rounds() != 0 {
		t.Fatalf("pre-cancelled run executed %d rounds", nw2.Rounds())
	}
}

// malformedMachine yields a continuation without a batch, which Proto forbids
// and the scheduler must reject rather than wedge.
type malformedMachine struct{ stepped bool }

func (m *malformedMachine) Step(Resume) (Yield, bool) {
	if m.stepped {
		return Yield{}, true
	}
	m.stepped = true
	return Yield{}, false
}

// TestFSMMalformedYield pins the scheduler's guard against hand-written
// machines that yield without a round batch.
func TestFSMMalformedYield(t *testing.T) {
	nw, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch()
	b.prepare(nw)
	if err := nw.beginRun(); err != nil {
		t.Fatal(err)
	}
	defer nw.endRun()
	for i := range b.machines {
		b.machines[i] = &malformedMachine{}
	}
	if err := b.run(context.Background(), nw); err != nil {
		t.Fatalf("run-level error %v, want per-machine step errors", err)
	}
	for i, err := range b.stepErr {
		if err == nil {
			t.Errorf("machine %d: malformed yield accepted", i)
		}
	}
}

// TestRuntimeResolve pins the default-runtime plumbing.
func TestRuntimeResolve(t *testing.T) {
	defer SetDefaultRuntime(RuntimeDefault)
	if got := RuntimeDefault.Resolve(); got != RuntimeFSM {
		t.Fatalf("built-in default resolved to %v, want fsm", got)
	}
	SetDefaultRuntime(RuntimeBarrier)
	if got := RuntimeDefault.Resolve(); got != RuntimeBarrier {
		t.Fatalf("overridden default resolved to %v, want barrier", got)
	}
	if got := RuntimeLegacy.Resolve(); got != RuntimeLegacy {
		t.Fatalf("explicit runtime resolved to %v, want legacy", got)
	}
	SetDefaultRuntime(RuntimeDefault)
	if got := RuntimeDefault.Resolve(); got != RuntimeFSM {
		t.Fatalf("restored default resolved to %v, want fsm", got)
	}
	for rt, want := range map[Runtime]string{RuntimeDefault: "default", RuntimeFSM: "fsm", RuntimeBarrier: "barrier", RuntimeLegacy: "legacy"} {
		if rt.String() != want {
			t.Errorf("Runtime(%d).String() = %q, want %q", rt, rt.String(), want)
		}
	}
}
