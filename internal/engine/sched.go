// The v3 scheduler: a single goroutine per scenario drives every agent's
// machine (fsm.go) to its next yield, executes the crossing inline through the
// shared leap executor (exec.go) and resumes the machines with their
// observations.  There is no barrier, no countdown, no per-agent wake channel
// and no second goroutine anywhere in the round loop — all protocol state, all
// pending slots and the ring state itself are mutated from the one scheduler
// goroutine, so the whole runtime is synchronisation-free by construction
// (ringvet's fsmguard analyzer holds protocol code to the same standard).
//
// Batch is the structure-of-arrays arena behind a scheduler: machine, yield,
// pending-slot and error columns indexed by ring index, plus the leap
// executor's buffers.  A campaign worker installs one Batch in its context
// (WithBatch) and sweeps a block of independent small-n scenarios through it
// per pass, so consecutive scenarios reuse the same cache-resident arena
// instead of reallocating per run.
package engine

import (
	"context"
	"fmt"
	"sync"
)

// Batch is the reusable scenario-batch arena of the v3 scheduler: every
// per-agent column the scheduler touches, stored structure-of-arrays and
// resized (capacity-reusing) per run.  A Batch is single-threaded — it must
// not be shared by concurrent runs — and is either owned by a campaign worker
// (WithBatch) or borrowed from an internal pool for the duration of one run.
type Batch struct {
	x        leapExec  // pending slots + crossing executor (shared with v2)
	machines []Machine // live machines by ring index; nil once terminated
	stepErr  []error   // terminal step failures (panics, malformed yields)
}

// NewBatch returns an empty arena; buffers grow on first use.
func NewBatch() *Batch { return &Batch{} }

// batchPool feeds runs that have no Batch in their context.
var batchPool = sync.Pool{New: func() any { return NewBatch() }}

type batchCtxKey struct{}

// WithBatch returns a context carrying b: every RunFSMContext under it reuses
// b's buffers instead of borrowing from the internal pool.  Campaign workers
// use this to keep one cache-resident arena per worker across a whole block of
// scenarios.  The Batch is single-threaded; do not share the returned context
// across concurrently running scenarios.
func WithBatch(ctx context.Context, b *Batch) context.Context {
	return context.WithValue(ctx, batchCtxKey{}, b)
}

// batchFromContext returns the context's Batch, or nil.
func batchFromContext(ctx context.Context) *Batch {
	b, _ := ctx.Value(batchCtxKey{}).(*Batch)
	return b
}

// prepare (re)sizes the arena for a run on nw, reusing capacity.
func (b *Batch) prepare(nw *Network) {
	b.x.init(nw)
	n := nw.N()
	if cap(b.machines) < n {
		b.machines = make([]Machine, n)
		b.stepErr = make([]error, n)
	}
	b.machines = b.machines[:n]
	b.stepErr = b.stepErr[:n]
	for i := 0; i < n; i++ {
		b.machines[i] = nil
		b.stepErr[i] = nil
	}
}

// release drops the references a finished run left in the arena so a pooled
// (or worker-held) Batch does not retain protocol state across scenarios.
func (b *Batch) release() {
	for i := range b.machines {
		b.machines[i] = nil
		b.stepErr[i] = nil
	}
}

// stepMachine advances machine i with in: a yield is recorded in the arena and
// submitted to the executor's pending slot; termination clears the machine.  A
// panic inside protocol code terminates the machine with ErrProtocolPanic —
// the per-machine analogue of the goroutine recover in the blocking runtimes —
// and never reaches the scheduler loop.
func (b *Batch) stepMachine(i int, in Resume) {
	m := b.machines[i]
	if m == nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			b.stepErr[i] = fmt.Errorf("%w: %v", ErrProtocolPanic, r)
			b.machines[i] = nil
			b.x.submitted[i] = false
		}
	}()
	y, done := m.Step(in)
	if done {
		b.machines[i] = nil
		return
	}
	if y.b == nil || y.b.k < 1 {
		// Proto never emits this; guard hand-written Machines from wedging the
		// crossing loop with an unresumable zero-length batch.
		b.stepErr[i] = fmt.Errorf("engine: malformed yield: continuation without a round batch")
		b.machines[i] = nil
		return
	}
	b.x.pend[i] = pending{batch: *y.b}
	b.x.submitted[i] = true
}

// crossingGuarded is leapExec.crossing with the same panic conversion the
// barrier applies: an analytic-engine panic becomes a broken-network run
// failure instead of unwinding the scheduler.
func (b *Batch) crossingGuarded(nw *Network) (active int, err error) {
	defer func() {
		if r := recover(); r != nil {
			nw.broken = fmt.Errorf("round execution panicked: %v", r)
			err = fmt.Errorf("%w: %w", ErrNetworkBroken, nw.broken)
		}
	}()
	return b.x.crossing()
}

// run is the scheduler loop: step every machine to its first yield, then
// alternate crossings and resumptions until every machine has terminated.
// The returned error is the run-level failure (max rounds, broken network,
// cancellation), sticky exactly like the barrier's: once set, every still-
// pending machine is resumed with it until it terminates.
func (b *Batch) run(ctx context.Context, nw *Network) error {
	n := len(b.machines)
	for i := 0; i < n; i++ {
		b.stepMachine(i, Resume{})
	}
	var runErr error
	done := ctx.Done()
	for {
		if runErr == nil && done != nil {
			// Checked once per crossing, matching the blocking runtimes'
			// within-one-round cancellation granularity.
			if err := ctx.Err(); err != nil {
				runErr = fmt.Errorf("engine: run aborted: %w", err)
			}
		}
		if runErr != nil {
			// Resume every pending machine with the sticky failure; Proto
			// terminates on it, and a machine that ignores it keeps being
			// resumed — the same livelock a blocking protocol that ignores
			// Round errors exhibits on the barrier.
			pendingCount := 0
			for i := 0; i < n; i++ {
				if b.x.submitted[i] {
					pendingCount++
					b.x.submitted[i] = false
					b.x.pend[i] = pending{}
					b.stepMachine(i, Resume{Err: runErr})
				}
			}
			if pendingCount == 0 {
				return runErr
			}
			continue
		}
		active, err := b.crossingGuarded(nw)
		if err != nil {
			runErr = err
			continue
		}
		if active == 0 {
			// Every machine terminated without a pending yield; the run is over.
			return nil
		}
		// Completion scan: a batch is complete when its cursor reached its
		// (possibly stop-shortened) count.  Count first: when the round budget
		// clamped the leap below every pending batch nobody completes, which is
		// the same budget exhaustion the per-round path reports.
		released := 0
		for i := 0; i < n; i++ {
			if b.x.submitted[i] && b.x.pend[i].pos == b.x.pend[i].k {
				released++
			}
		}
		if released == 0 {
			runErr = fmt.Errorf("%w (%d)", ErrMaxRoundsExceed, nw.cfg.MaxRounds)
			continue
		}
		for i := 0; i < n; i++ {
			if b.x.submitted[i] && b.x.pend[i].pos == b.x.pend[i].k {
				b.x.submitted[i] = false
				p := &b.x.pend[i]
				in := nw.agents[i].settle(&p.batch, p.pos, p.agg)
				b.stepMachine(i, in)
			}
		}
	}
}

// RunFSM executes one machine per agent on the v3 scheduler runtime and waits
// for all of them.  build is called once per agent, in ring-index order, to
// construct its machine.
func RunFSM[T any](nw *Network, build func(a *Agent) *Proto[T]) (*Result[T], error) {
	//ringvet:allow ctxflow context-free compatibility wrapper: RunFSMContext is the cancellable form
	return RunFSMContext(context.Background(), nw, build)
}

// RunFSMContext is the v3 runtime's entry point: it constructs one machine per
// agent and drives them all from a single scheduler goroutine, executing
// crossings inline through the same leap executor as the v2 barrier — the
// round sequence, traces and outputs are byte-identical to Run/RunContext over
// the equivalent blocking protocol.  The scheduler goroutine comes from the
// engine's worker pool; the calling goroutine blocks until the run completes.
// Cancellation is honoured between crossings, like the barrier's
// within-one-round granularity.
func RunFSMContext[T any](ctx context.Context, nw *Network, build func(a *Agent) *Proto[T]) (*Result[T], error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: run not started: %w", err)
	}
	if err := nw.beginRun(); err != nil {
		return nil, err
	}
	defer nw.endRun()

	n := nw.N()
	startRounds := nw.state.Rounds()
	b := batchFromContext(ctx)
	pooled := b == nil
	if pooled {
		b = batchPool.Get().(*Batch)
	}
	b.prepare(nw)

	protos := make([]*Proto[T], n)
	for i := 0; i < n; i++ {
		a := nw.agents[i]
		// No blocking dispatcher under the scheduler: a ported protocol that
		// still calls a blocking Round* method dereferences nil, which the
		// per-step recover converts into ErrProtocolPanic for that machine.
		a.d = nil
		protos[i] = build(a)
		b.machines[i] = protos[i]
	}

	// The loop runs on a pooled goroutine: scheduler stacks grow with the
	// protocols' continuation depth, and the pool keeps grown stacks warm
	// across the thousands of short runs a campaign worker performs, instead
	// of growing and shrinking the worker's own stack every scenario.
	var runErr error
	doneCh := make(chan struct{})
	submit(func() {
		defer close(doneCh)
		runErr = b.run(ctx, nw)
	})
	<-doneCh

	outputs := make([]T, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		out, err := protos[i].Result()
		if b.stepErr[i] != nil {
			err = b.stepErr[i]
		}
		outputs[i] = out
		errs[i] = err
	}
	b.release()
	if pooled {
		batchPool.Put(b)
	}

	res := &Result[T]{Rounds: nw.state.Rounds() - startRounds, Outputs: outputs}
	return res, joinRunErrors(nw, runErr, errs)
}
