package engine

import (
	"errors"
	"testing"

	"ringsym/internal/ring"
)

func testConfig(model ring.Model, chirality []bool) Config {
	return Config{
		Model:     model,
		Circ:      1000,
		Positions: []int64{0, 100, 300, 600, 800},
		IDs:       []int{7, 3, 12, 9, 1},
		IDBound:   16,
		Chirality: chirality,
	}
}

func TestNewValidation(t *testing.T) {
	base := testConfig(ring.Basic, nil)

	bad := base
	bad.IDs = []int{7, 3, 12, 9}
	if _, err := New(bad); !errors.Is(err, ErrBadIDs) {
		t.Errorf("short IDs: got %v", err)
	}

	bad = base
	bad.IDs = []int{7, 3, 12, 9, 3}
	if _, err := New(bad); !errors.Is(err, ErrBadIDs) {
		t.Errorf("duplicate IDs: got %v", err)
	}

	bad = base
	bad.IDs = []int{7, 3, 12, 9, 17}
	if _, err := New(bad); !errors.Is(err, ErrBadIDs) {
		t.Errorf("out-of-range ID: got %v", err)
	}

	bad = base
	bad.IDBound = 3
	if _, err := New(bad); !errors.Is(err, ErrBadIDs) {
		t.Errorf("IDBound < n: got %v", err)
	}

	bad = base
	bad.Chirality = []bool{true, false}
	if _, err := New(bad); !errors.Is(err, ErrBadChirality) {
		t.Errorf("bad chirality: got %v", err)
	}

	bad = base
	bad.Positions = []int64{0, 100}
	bad.IDs = []int{7, 3}
	if _, err := New(bad); err == nil {
		t.Error("n<=4 accepted without AllowSmall")
	}

	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	nw, err := New(testConfig(ring.Perceptive, []bool{true, false, true, false, true}))
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 5 || nw.Model() != ring.Perceptive || nw.Circ() != 1000 || nw.FullCircle() != 2000 {
		t.Error("basic accessors wrong")
	}
	if nw.IDOf(2) != 12 || nw.IndexOfID(12) != 2 || nw.IndexOfID(999) != -1 {
		t.Error("ID accessors wrong")
	}
	if nw.ChiralityOf(0) != true || nw.ChiralityOf(1) != false {
		t.Error("chirality accessors wrong")
	}
	p := nw.InitialPositions()
	p[0] = 42
	if nw.InitialPositions()[0] != 0 {
		t.Error("InitialPositions aliases internal state")
	}
	if got := nw.CurrentPositions(); got[3] != 600 {
		t.Errorf("CurrentPositions = %v", got)
	}
	if got := nw.Gaps(); got[0] != 100 {
		t.Errorf("Gaps = %v", got)
	}
}

// TestSingleRoundObservations checks dist() translation into each agent's own
// frame for a mixed-chirality network.
func TestSingleRoundObservations(t *testing.T) {
	chir := []bool{true, true, false, true, false}
	nw, err := New(testConfig(ring.Perceptive, chir))
	if err != nil {
		t.Fatal(err)
	}
	// Every agent chooses its own clockwise; flipped agents therefore move
	// objectively anticlockwise: nC=3, nA=2, rotation 1.
	res, err := Run(nw, func(a *Agent) (Observation, error) {
		return a.Round(ring.Clockwise)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	// Objective clockwise displacements (half-ticks): agent i moves to the
	// next slot: gaps 100,200,300,200,200 -> dist 200,400,600,400,400.
	wantObjective := []int64{200, 400, 600, 400, 400}
	for i, obs := range res.Outputs {
		want := wantObjective[i]
		if !chir[i] {
			want = nw.FullCircle() - want
		}
		if obs.Dist != want {
			t.Errorf("agent %d dist = %d, want %d", i, obs.Dist, want)
		}
		if !obs.Collided {
			t.Errorf("agent %d should have collided", i)
		}
	}
	if nw.Rounds() != 1 {
		t.Errorf("network rounds = %d", nw.Rounds())
	}
}

func TestAgentIdentityExposure(t *testing.T) {
	nw, err := New(testConfig(ring.Lazy, nil))
	if err != nil {
		t.Fatal(err)
	}
	type ident struct {
		id, bound int
		parity    Parity
		model     ring.Model
		circ      int64
	}
	res, err := Run(nw, func(a *Agent) (ident, error) {
		return ident{a.ID(), a.IDBound(), a.NParity(), a.Model(), a.FullCircle()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range res.Outputs {
		if out.id != nw.IDOf(i) {
			t.Errorf("agent %d id = %d", i, out.id)
		}
		if out.bound != 16 || out.parity != ParityOdd || out.model != ring.Lazy || out.circ != 2000 {
			t.Errorf("agent %d identity = %+v", i, out)
		}
	}
	if res.Rounds != 0 {
		t.Errorf("identity-only protocol used %d rounds", res.Rounds)
	}
}

func TestHiddenParity(t *testing.T) {
	cfg := testConfig(ring.Basic, nil)
	cfg.HideParity = true
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(nw, func(a *Agent) (Parity, error) { return a.NParity(), nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Outputs {
		if p != ParityUnknown {
			t.Fatalf("parity = %v, want unknown", p)
		}
	}
}

func TestIdleRejectedInBasicModel(t *testing.T) {
	nw, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(nw, func(a *Agent) (struct{}, error) {
		_, err := a.Round(ring.Idle)
		return struct{}{}, err
	})
	if !errors.Is(err, ErrIdleNotAllowed) {
		t.Fatalf("got %v, want ErrIdleNotAllowed", err)
	}
}

func TestInvalidDirectionRejected(t *testing.T) {
	nw, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(nw, func(a *Agent) (struct{}, error) {
		_, err := a.Round(ring.Direction(55))
		return struct{}{}, err
	})
	if !errors.Is(err, ErrBadDirection) {
		t.Fatalf("got %v, want ErrBadDirection", err)
	}
}

func TestMaxRoundsEnforced(t *testing.T) {
	cfg := testConfig(ring.Basic, nil)
	cfg.MaxRounds = 3
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(nw, func(a *Agent) (int, error) {
		for i := 0; ; i++ {
			if _, err := a.Round(ring.Clockwise); err != nil {
				return i, err
			}
		}
	})
	if !errors.Is(err, ErrMaxRoundsExceed) {
		t.Fatalf("got %v, want ErrMaxRoundsExceed", err)
	}
	if nw.Rounds() != 3 {
		t.Fatalf("rounds executed = %d, want 3", nw.Rounds())
	}
}

func TestProtocolPanicIsRecovered(t *testing.T) {
	nw, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(nw, func(a *Agent) (int, error) {
		if a.ID() == 12 {
			panic("boom")
		}
		obs, err := a.Round(ring.Clockwise)
		return int(obs.Dist), err
	})
	if !errors.Is(err, ErrProtocolPanic) {
		t.Fatalf("got %v, want ErrProtocolPanic", err)
	}
}

// TestEarlyReturningAgentGetsDefaultDirection verifies that a protocol whose
// agents finish after different numbers of rounds still completes: finished
// agents are assigned their default direction.
func TestEarlyReturningAgentGetsDefaultDirection(t *testing.T) {
	nw, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(nw, func(a *Agent) (int, error) {
		roundsWanted := 1
		if a.ID() == 7 {
			roundsWanted = 4
		}
		for i := 0; i < roundsWanted; i++ {
			if _, err := a.Round(ring.Clockwise); err != nil {
				return 0, err
			}
		}
		return a.RoundsUsed(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Fatalf("total rounds = %d, want 4", res.Rounds)
	}
	for i, used := range res.Outputs {
		want := 1
		if nw.IDOf(i) == 7 {
			want = 4
		}
		if used != want {
			t.Errorf("agent %d used %d rounds, want %d", i, used, want)
		}
	}
}

// TestSequentialRunsShareState verifies that consecutive Run invocations
// continue from the current ring state and keep counting rounds.
func TestSequentialRunsShareState(t *testing.T) {
	nw, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	one := func(a *Agent) (struct{}, error) {
		_, err := a.Round(ring.Anticlockwise)
		return struct{}{}, err
	}
	if _, err := Run(nw, one); err != nil {
		t.Fatal(err)
	}
	res, err := Run(nw, one)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("second run rounds = %d, want 1", res.Rounds)
	}
	if nw.Rounds() != 2 {
		t.Fatalf("network rounds = %d, want 2", nw.Rounds())
	}
}

func TestParityString(t *testing.T) {
	for _, p := range []Parity{ParityUnknown, ParityEven, ParityOdd} {
		if p.String() == "" {
			t.Error("empty parity string")
		}
	}
}

// TestDeterministicOutcome runs the same multi-round mixed-chirality protocol
// twice and checks that observations are identical: goroutine scheduling must
// not influence results.
func TestDeterministicOutcome(t *testing.T) {
	collect := func() [][]int64 {
		nw, err := New(testConfig(ring.Perceptive, []bool{false, true, false, true, true}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(nw, func(a *Agent) ([]int64, error) {
			var trace []int64
			dir := ring.Clockwise
			if a.ID()%2 == 0 {
				dir = ring.Anticlockwise
			}
			for i := 0; i < 6; i++ {
				obs, err := a.Round(dir)
				if err != nil {
					return nil, err
				}
				trace = append(trace, obs.Dist, obs.Coll)
				dir = dir.Opposite()
			}
			return trace, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	a, b := collect(), collect()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("trace length mismatch for agent %d", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("nondeterministic observation: agent %d element %d: %d vs %d", i, j, a[i][j], b[i][j])
			}
		}
	}
}
