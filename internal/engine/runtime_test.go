package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"ringsym/internal/ring"
)

// TestConcurrentRunRejected verifies that a second Run on a Network whose
// run is still in flight fails with ErrRunInProgress instead of racing on the
// shared state.  Meaningful under -race.
func TestConcurrentRunRejected(t *testing.T) {
	nw, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	firstDone := make(chan error, 1)
	go func() {
		_, err := Run(nw, func(a *Agent) (struct{}, error) {
			once.Do(func() { close(started) })
			<-release
			_, err := a.Round(ring.Clockwise)
			return struct{}{}, err
		})
		firstDone <- err
	}()
	<-started

	if _, err := Run(nw, func(a *Agent) (struct{}, error) { return struct{}{}, nil }); !errors.Is(err, ErrRunInProgress) {
		t.Errorf("concurrent Run: got %v, want ErrRunInProgress", err)
	}
	if _, err := RunLegacy(nw, func(a *Agent) (struct{}, error) { return struct{}{}, nil }); !errors.Is(err, ErrRunInProgress) {
		t.Errorf("concurrent RunLegacy: got %v, want ErrRunInProgress", err)
	}

	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("first run failed: %v", err)
	}
	// The network must be reusable once the first run finished.
	if _, err := Run(nw, func(a *Agent) (struct{}, error) { return struct{}{}, nil }); err != nil {
		t.Fatalf("run after release failed: %v", err)
	}
}

// TestRunContextCancellationStopsRunawayProtocol verifies the cancellation
// satellite: a protocol that would run forever is interrupted by context
// cancellation within a round or two of the cancel, with the run error
// wrapping context.Canceled.
func TestRunContextCancellationStopsRunawayProtocol(t *testing.T) {
	cfg := testConfig(ring.Basic, nil)
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const cancelAfter = 10
	res, err := RunContext(ctx, nw, func(a *Agent) (int, error) {
		for {
			if a.ID() == 7 && a.RoundsUsed() == cancelAfter {
				cancel()
			}
			if _, err := a.Round(ring.Clockwise); err != nil {
				return a.RoundsUsed(), err
			}
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want an error wrapping context.Canceled", err)
	}
	// The abort must land promptly: without it the protocol would spin until
	// DefaultMaxRounds.  A generous slack absorbs scheduling delay between
	// cancel() and the watcher goroutine.
	if res.Rounds > 10*cancelAfter {
		t.Errorf("run consumed %d rounds after cancellation at round %d", res.Rounds, cancelAfter)
	}
	// The network is not broken by a cancellation: it can run again.
	if _, err := Run(nw, func(a *Agent) (struct{}, error) {
		_, err := a.Round(ring.Clockwise)
		return struct{}{}, err
	}); err != nil {
		t.Fatalf("run after cancelled run failed: %v", err)
	}
}

// TestRunContextPreCancelled verifies that an already-cancelled context
// prevents the run from starting at all.
func TestRunContextPreCancelled(t *testing.T) {
	nw, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err = RunContext(ctx, nw, func(a *Agent) (struct{}, error) {
		ran = true
		return struct{}{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran {
		t.Error("protocol ran despite pre-cancelled context")
	}
	if nw.Rounds() != 0 {
		t.Errorf("rounds executed: %d", nw.Rounds())
	}
}

// traceEntry captures everything observable by a protocol in one round.
type traceEntry struct {
	dist, coll int64
	collided   bool
}

// scriptedProtocol drives a deterministic pseudo-random direction sequence
// derived from the agent's identity and records the full observation trace.
// Agents use different round counts so the default-direction path for
// finished agents is exercised.
func scriptedProtocol(model ring.Model, rounds int) func(a *Agent) ([]traceEntry, error) {
	return func(a *Agent) ([]traceEntry, error) {
		myRounds := rounds + a.ID()%5
		state := uint64(a.ID()*2654435761 + 12345)
		var trace []traceEntry
		for i := 0; i < myRounds; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			var dir ring.Direction
			switch {
			case model.AllowsIdle() && state%5 == 0:
				dir = ring.Idle
			case state%2 == 0:
				dir = ring.Clockwise
			default:
				dir = ring.Anticlockwise
			}
			obs, err := a.Round(dir)
			if err != nil {
				return trace, err
			}
			trace = append(trace, traceEntry{obs.Dist, obs.Coll, obs.Collided})
		}
		trace = append(trace, traceEntry{dist: a.Displacement(), coll: int64(a.RoundsUsed())})
		return trace, nil
	}
}

// TestDirectDispatchMatchesLegacy runs the same scripted protocols on the v2
// direct-dispatch runtime and on the retained v1 channel runtime and demands
// identical observation traces, outputs, displacements and round counts
// across models, chirality regimes and parities.
func TestDirectDispatchMatchesLegacy(t *testing.T) {
	chir6 := []bool{true, false, false, true, false, true}
	for _, tc := range []struct {
		name  string
		model ring.Model
		chir  []bool
		circ  int64
		pos   []int64
	}{
		{"basic-common", ring.Basic, nil, 1000, []int64{0, 100, 300, 600, 800}},
		{"basic-mixed", ring.Basic, []bool{true, false, true, false, true}, 1000, []int64{0, 100, 300, 600, 800}},
		{"lazy-mixed", ring.Lazy, chir6, 1200, []int64{0, 50, 300, 320, 600, 1000}},
		{"perceptive-mixed", ring.Perceptive, chir6, 1200, []int64{0, 50, 300, 320, 600, 1000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			build := func() *Network {
				n := len(tc.pos)
				ids := make([]int, n)
				for i := range ids {
					ids[i] = 2*i + 1
				}
				nw, err := New(Config{
					Model: tc.model, Circ: tc.circ, Positions: tc.pos,
					IDs: ids, IDBound: 4 * n, Chirality: tc.chir,
				})
				if err != nil {
					t.Fatal(err)
				}
				return nw
			}
			v2, errV2 := Run(build(), scriptedProtocol(tc.model, 20))
			v1, errV1 := RunLegacy(build(), scriptedProtocol(tc.model, 20))
			if (errV2 == nil) != (errV1 == nil) {
				t.Fatalf("error mismatch: v2=%v v1=%v", errV2, errV1)
			}
			if v2.Rounds != v1.Rounds {
				t.Fatalf("rounds: v2=%d v1=%d", v2.Rounds, v1.Rounds)
			}
			for i := range v2.Outputs {
				a, b := v2.Outputs[i], v1.Outputs[i]
				if len(a) != len(b) {
					t.Fatalf("agent %d trace length: v2=%d v1=%d", i, len(a), len(b))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("agent %d entry %d: v2=%+v v1=%+v", i, j, a[j], b[j])
					}
				}
			}
		})
	}
}

// TestParkedWaiterPath forces waiters past the spin phase of the barrier (one
// agent stalls between rounds) and checks that parked agents still receive
// correct observations, against the legacy runtime as ground truth.
func TestParkedWaiterPath(t *testing.T) {
	protocol := func(stall bool) func(a *Agent) ([]int64, error) {
		return func(a *Agent) ([]int64, error) {
			var dists []int64
			for i := 0; i < 6; i++ {
				if stall && a.ID() == 7 {
					// Stall long enough that every other agent exhausts its
					// spin phase and parks.
					time.Sleep(2 * time.Millisecond)
				}
				dir := ring.Clockwise
				if a.ID()%2 == 0 {
					dir = ring.Anticlockwise
				}
				obs, err := a.Round(dir)
				if err != nil {
					return nil, err
				}
				dists = append(dists, obs.Dist, obs.Coll)
			}
			return dists, nil
		}
	}
	build := func() *Network {
		nw, err := New(testConfig(ring.Perceptive, []bool{true, false, true, false, true}))
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}
	slow, err := Run(build(), protocol(true))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunLegacy(build(), protocol(false))
	if err != nil {
		t.Fatal(err)
	}
	if slow.Rounds != ref.Rounds {
		t.Fatalf("rounds: %d vs %d", slow.Rounds, ref.Rounds)
	}
	for i := range slow.Outputs {
		for j := range slow.Outputs[i] {
			if slow.Outputs[i][j] != ref.Outputs[i][j] {
				t.Fatalf("agent %d obs %d: %d vs %d", i, j, slow.Outputs[i][j], ref.Outputs[i][j])
			}
		}
	}
}

// TestGoroutinePoolReuse verifies that sequential runs reuse pooled agent
// goroutines instead of growing the goroutine count linearly.
func TestGoroutinePoolReuse(t *testing.T) {
	run := func() {
		nw, err := New(testConfig(ring.Basic, nil))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(nw, func(a *Agent) (struct{}, error) {
			_, err := a.Round(ring.Clockwise)
			return struct{}{}, err
		}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pool
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		run()
	}
	// Pooled workers park between runs, so 50 more runs must not add ~50*n
	// goroutines; allow generous slack for unrelated runtime goroutines.
	if got := runtime.NumGoroutine(); got > base+10 {
		t.Errorf("goroutines grew from %d to %d across 50 runs", base, got)
	}
}

// TestRunErrorShapes pins the error layout of the v2 runtime against the
// legacy behaviour for the max-rounds failure.
func TestRunErrorShapes(t *testing.T) {
	for name, run := range map[string]func(*Network, func(*Agent) (int, error)) (*Result[int], error){
		"v2":     Run[int],
		"legacy": RunLegacy[int],
	} {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(ring.Basic, nil)
			cfg.MaxRounds = 2
			nw, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := run(nw, func(a *Agent) (int, error) {
				for {
					if _, err := a.Round(ring.Clockwise); err != nil {
						return a.RoundsUsed(), err
					}
				}
			})
			if !errors.Is(err, ErrMaxRoundsExceed) {
				t.Fatalf("got %v", err)
			}
			if res.Rounds != 2 {
				t.Fatalf("rounds = %d, want 2", res.Rounds)
			}
			for i, used := range res.Outputs {
				if used != 2 {
					t.Errorf("agent %d used %d rounds", i, used)
				}
			}
		})
	}
}

// TestExecutorPanicFailsRunInsteadOfDeadlocking injects a panic into the
// inline round executor and verifies the run unwinds with a broken-network
// error for every agent instead of stranding the waiters forever.
func TestExecutorPanicFailsRunInsteadOfDeadlocking(t *testing.T) {
	fired := false
	testHookExecuteRound = func() {
		if !fired {
			fired = true
			panic("injected executor failure")
		}
	}
	defer func() { testHookExecuteRound = nil }()

	nw, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, runErr = Run(nw, func(a *Agent) (struct{}, error) {
			_, err := a.Round(ring.Clockwise)
			return struct{}{}, err
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run deadlocked after executor panic")
	}
	if !errors.Is(runErr, ErrNetworkBroken) {
		t.Fatalf("got %v, want ErrNetworkBroken", runErr)
	}
	// The network stays broken: further runs are rejected up front.
	if _, err := Run(nw, func(a *Agent) (struct{}, error) { return struct{}{}, nil }); !errors.Is(err, ErrNetworkBroken) {
		t.Fatalf("run on broken network: got %v, want ErrNetworkBroken", err)
	}
}

// TestExactRoundBudgetSucceeds pins that a protocol terminating after
// exactly MaxRounds rounds succeeds on both runtimes: exhausting the budget
// is only an error while agents still want another round.
func TestExactRoundBudgetSucceeds(t *testing.T) {
	for name, run := range map[string]func(*Network, func(*Agent) (int, error)) (*Result[int], error){
		"v2":     Run[int],
		"legacy": RunLegacy[int],
	} {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(ring.Basic, nil)
			cfg.MaxRounds = 3
			nw, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := run(nw, func(a *Agent) (int, error) {
				for i := 0; i < 3; i++ {
					if _, err := a.Round(ring.Clockwise); err != nil {
						return a.RoundsUsed(), err
					}
				}
				return a.RoundsUsed(), nil
			})
			if err != nil {
				t.Fatalf("exact-budget run failed: %v", err)
			}
			if res.Rounds != 3 {
				t.Fatalf("rounds = %d, want 3", res.Rounds)
			}
		})
	}
}

// TestManyAgentsSmoke exercises the barrier with a larger population than
// the spin phase can hide, including mixed early exits.
func TestManyAgentsSmoke(t *testing.T) {
	const n = 257
	positions := make([]int64, n)
	ids := make([]int, n)
	for i := range positions {
		positions[i] = int64(4 * i)
		ids[i] = i + 1
	}
	nw, err := New(Config{Model: ring.Perceptive, Circ: 4 * n * 2, Positions: positions, IDs: ids, IDBound: 2 * n})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(nw, func(a *Agent) (int64, error) {
		rounds := 1 + a.ID()%7
		for i := 0; i < rounds; i++ {
			dir := ring.Clockwise
			if (a.ID()+i)%3 == 0 {
				dir = ring.Anticlockwise
			}
			if _, err := a.Round(dir); err != nil {
				return 0, err
			}
		}
		return a.Displacement(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 7 {
		t.Fatalf("rounds = %d, want 7", res.Rounds)
	}
	if fmt.Sprint(res.Outputs[0]) == "" {
		t.Fatal("unreachable")
	}
}
