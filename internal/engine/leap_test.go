package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ringsym/internal/ring"
)

// The tests in this file pin the leap-execution contract: a protocol written
// against the batched submission API (RoundN, RoundNSum, RoundUntil,
// RoundSchedule) is observably identical — trace, displacement, round counts,
// outputs — to the same protocol written with single Round calls, across all
// three models, both chirality regimes and both parities, and identical
// between the v2 leap barrier and the v1 per-round legacy runtime.

// leapOp is one step of a generated protocol script.
type leapOp struct {
	kind   int // 0 Round, 1 RoundN, 2 RoundSchedule, 3 RoundNSum, 4 RoundUntil
	dir    ring.Direction
	dirs   []ring.Direction
	k      int
	target int64 // RoundUntil displacement target
}

// randDir picks a model-appropriate direction.
func randDir(rng *rand.Rand, model ring.Model) ring.Direction {
	if model.AllowsIdle() && rng.Intn(5) == 0 {
		return ring.Idle
	}
	if rng.Intn(2) == 0 {
		return ring.Clockwise
	}
	return ring.Anticlockwise
}

// scriptFor deterministically generates an agent's protocol script.  The
// script depends only on the agent's identity, so the batched and expanded
// protocols follow identical direction sequences.
func scriptFor(id int, seed int64, model ring.Model, full int64, ops int) []leapOp {
	rng := rand.New(rand.NewSource(seed ^ int64(id)*0x9e3779b97f4a7c))
	script := make([]leapOp, 0, ops)
	for len(script) < ops {
		op := leapOp{kind: rng.Intn(5), dir: randDir(rng, model)}
		switch op.kind {
		case 1, 3:
			op.k = 1 + rng.Intn(7)
		case 2:
			op.dirs = make([]ring.Direction, 1+rng.Intn(6))
			for i := range op.dirs {
				op.dirs[i] = randDir(rng, model)
			}
		case 4:
			op.k = 1 + rng.Intn(8)
			op.target = 2 * (rng.Int63n(full) / 2)
		}
		script = append(script, op)
	}
	return script
}

// leapTrace is everything observable from one protocol run.
type leapTrace struct {
	obs  []Observation
	sums []int64
	disp int64
	used int
}

func (tr leapTrace) equal(other leapTrace) bool {
	if len(tr.obs) != len(other.obs) || len(tr.sums) != len(other.sums) ||
		tr.disp != other.disp || tr.used != other.used {
		return false
	}
	for i := range tr.obs {
		if tr.obs[i] != other.obs[i] {
			return false
		}
	}
	for i := range tr.sums {
		if tr.sums[i] != other.sums[i] {
			return false
		}
	}
	return true
}

// batchedProtocol executes the script through the batched API.
func batchedProtocol(seed int64, ops int) func(a *Agent) (leapTrace, error) {
	return func(a *Agent) (leapTrace, error) {
		var tr leapTrace
		var buf []Observation
		for _, op := range scriptFor(a.ID(), seed, a.Model(), a.FullCircle(), ops) {
			var err error
			switch op.kind {
			case 0:
				var obs Observation
				obs, err = a.Round(op.dir)
				buf = append(buf[:0], obs)
			case 1:
				buf, err = a.RoundNInto(op.dir, op.k, buf[:0])
			case 2:
				buf, err = a.RoundSchedule(op.dirs, buf[:0])
			case 3:
				var sum int64
				sum, err = a.RoundNSum(op.dir, op.k)
				tr.sums = append(tr.sums, sum)
				buf = buf[:0]
			case 4:
				buf, err = a.RoundUntil(op.dir, op.target, op.k, buf[:0])
			}
			if err != nil {
				return tr, err
			}
			tr.obs = append(tr.obs, buf...)
		}
		tr.disp = a.Displacement()
		tr.used = a.RoundsUsed()
		return tr, nil
	}
}

// expandedProtocol executes the same script with single Round calls only.
func expandedProtocol(seed int64, ops int) func(a *Agent) (leapTrace, error) {
	return func(a *Agent) (leapTrace, error) {
		var tr leapTrace
		full := a.FullCircle()
		for _, op := range scriptFor(a.ID(), seed, a.Model(), full, ops) {
			switch op.kind {
			case 0:
				obs, err := a.Round(op.dir)
				if err != nil {
					return tr, err
				}
				tr.obs = append(tr.obs, obs)
			case 1:
				for j := 0; j < op.k; j++ {
					obs, err := a.Round(op.dir)
					if err != nil {
						return tr, err
					}
					tr.obs = append(tr.obs, obs)
				}
			case 2:
				for _, d := range op.dirs {
					obs, err := a.Round(d)
					if err != nil {
						return tr, err
					}
					tr.obs = append(tr.obs, obs)
				}
			case 3:
				var sum int64
				for j := 0; j < op.k; j++ {
					obs, err := a.Round(op.dir)
					if err != nil {
						return tr, err
					}
					sum = (sum + obs.Dist) % full
				}
				tr.sums = append(tr.sums, sum)
			case 4:
				for j := 0; j < op.k; j++ {
					obs, err := a.Round(op.dir)
					if err != nil {
						return tr, err
					}
					tr.obs = append(tr.obs, obs)
					if a.Displacement() == op.target {
						break
					}
				}
			}
		}
		tr.disp = a.Displacement()
		tr.used = a.RoundsUsed()
		return tr, nil
	}
}

// leapTestConfig builds a deterministic pseudo-random configuration.
func leapTestConfig(rng *rand.Rand, model ring.Model, oddN, mixed bool) Config {
	n := 6 + 2*rng.Intn(4)
	if oddN {
		n++
	}
	pos := make([]int64, n)
	p := int64(0)
	for i := range pos {
		p += 1 + int64(rng.Intn(9))
		pos[i] = p
	}
	circ := p + 1 + int64(rng.Intn(9))
	if circ%2 != 0 {
		circ++
	}
	ids := rng.Perm(4 * n)[:n]
	for i := range ids {
		ids[i]++
	}
	var chir []bool
	if mixed {
		chir = make([]bool, n)
		same := true
		for i := range chir {
			chir[i] = rng.Intn(2) == 0
			if i > 0 && chir[i] != chir[0] {
				same = false
			}
		}
		if same {
			chir[n/2] = !chir[0]
		}
	}
	return Config{Model: model, Circ: circ, Positions: pos, IDs: ids, IDBound: 4 * n, Chirality: chir}
}

// TestLeapStepEquivalence is the randomized property test of leap execution:
// mixed RoundN/RoundSchedule/RoundNSum/RoundUntil/Round scripts produce
// byte-identical traces and outputs to the all-single-round expansion, across
// all three models, both chirality regimes and both parities, on both the v2
// leap barrier and (batched) on the v1 legacy runtime.
func TestLeapStepEquivalence(t *testing.T) {
	for _, model := range []ring.Model{ring.Basic, ring.Lazy, ring.Perceptive} {
		for _, oddN := range []bool{false, true} {
			for _, mixed := range []bool{false, true} {
				name := fmt.Sprintf("%v/odd=%v/mixed=%v", model, oddN, mixed)
				t.Run(name, func(t *testing.T) {
					for trial := 0; trial < 8; trial++ {
						seed := int64(1000*trial) + 17
						rng := rand.New(rand.NewSource(seed))
						cfg := leapTestConfig(rng, model, oddN, mixed)
						build := func() *Network {
							nw, err := New(cfg)
							if err != nil {
								t.Fatal(err)
							}
							return nw
						}
						const ops = 12
						batched, errB := Run(build(), batchedProtocol(seed, ops))
						expanded, errE := Run(build(), expandedProtocol(seed, ops))
						legacy, errL := RunLegacy(build(), batchedProtocol(seed, ops))
						if errB != nil || errE != nil || errL != nil {
							t.Fatalf("trial %d: errors batched=%v expanded=%v legacy=%v", trial, errB, errE, errL)
						}
						if batched.Rounds != expanded.Rounds || batched.Rounds != legacy.Rounds {
							t.Fatalf("trial %d: rounds batched=%d expanded=%d legacy=%d",
								trial, batched.Rounds, expanded.Rounds, legacy.Rounds)
						}
						for i := range batched.Outputs {
							if !batched.Outputs[i].equal(expanded.Outputs[i]) {
								t.Fatalf("trial %d agent %d: batched != expanded\nbatched:  %+v\nexpanded: %+v",
									trial, i, batched.Outputs[i], expanded.Outputs[i])
							}
							if !batched.Outputs[i].equal(legacy.Outputs[i]) {
								t.Fatalf("trial %d agent %d: v2 != legacy", trial, i)
							}
						}
					}
				})
			}
		}
	}
}

// TestRoundUntilStopsExactly pins the closed-form stop: a constant-rotation
// sweep submitted as one oversized RoundUntil batch stops exactly at the
// round the per-round loop would have, with the trace ending at the return
// round.
func TestRoundUntilStopsExactly(t *testing.T) {
	cfg := testConfig(ring.Basic, nil) // 5 agents
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := nw.N()
	res, err := Run(nw, func(a *Agent) (int, error) {
		// Rotation index 1: ID 1 moves clockwise, everybody else
		// anticlockwise... that is rotation 1-4 = -3 mod 5 = 2; either way the
		// sweep returns to the start after exactly n rounds (gcd(r, n) = 1).
		dir := ring.Anticlockwise
		if a.ID() == 1 {
			dir = ring.Clockwise
		}
		trace, err := a.RoundUntil(dir, 0, 10*n, nil)
		if err != nil {
			return 0, err
		}
		if a.Displacement() != 0 {
			return 0, fmt.Errorf("stopped at displacement %d", a.Displacement())
		}
		return len(trace), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != n {
		t.Fatalf("sweep consumed %d rounds, want %d", res.Rounds, n)
	}
	for i, l := range res.Outputs {
		if l != n {
			t.Errorf("agent %d trace length %d, want %d", i, l, n)
		}
	}
}

// TestRoundNBudgetClamp pins MaxRounds semantics under batching: a batch that
// overruns the budget consumes exactly the budgeted rounds (identical state
// round count to the per-round path) and fails with ErrMaxRoundsExceed, and
// a batch fitting the budget exactly succeeds.
func TestRoundNBudgetClamp(t *testing.T) {
	cfg := testConfig(ring.Basic, nil)
	cfg.MaxRounds = 5
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(nw, func(a *Agent) (struct{}, error) {
		_, err := a.RoundN(ring.Clockwise, 9)
		return struct{}{}, err
	})
	if !errors.Is(err, ErrMaxRoundsExceed) {
		t.Fatalf("got %v, want ErrMaxRoundsExceed", err)
	}
	if nw.Rounds() != 5 {
		t.Fatalf("state executed %d rounds, want the full budget of 5", nw.Rounds())
	}

	cfg2 := testConfig(ring.Basic, nil)
	cfg2.MaxRounds = 5
	nw2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nw2, func(a *Agent) (struct{}, error) {
		_, err := a.RoundN(ring.Clockwise, 5)
		return struct{}{}, err
	}); err != nil {
		t.Fatalf("exact-budget batch failed: %v", err)
	}
}

// TestBatchValidation pins the argument checks of the batched API.
func TestBatchValidation(t *testing.T) {
	nw, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nw, func(a *Agent) (struct{}, error) {
		if _, err := a.RoundN(ring.Clockwise, 0); err == nil {
			return struct{}{}, errors.New("k = 0 accepted")
		}
		if _, err := a.RoundN(ring.Idle, 2); !errors.Is(err, ErrIdleNotAllowed) {
			return struct{}{}, fmt.Errorf("idle in basic model: %v", err)
		}
		if _, err := a.RoundSchedule(nil, nil); err == nil {
			return struct{}{}, errors.New("empty schedule accepted")
		}
		if _, err := a.RoundUntil(ring.Clockwise, -2, 3, nil); err == nil {
			return struct{}{}, errors.New("negative target accepted")
		}
		if _, err := a.RoundNSum(ring.Clockwise, -1); err == nil {
			return struct{}{}, errors.New("negative k accepted")
		}
		// The failed validations must not have consumed rounds.
		if a.RoundsUsed() != 0 {
			return struct{}{}, fmt.Errorf("validation consumed %d rounds", a.RoundsUsed())
		}
		_, err := a.Round(ring.Clockwise)
		return struct{}{}, err
	}); err != nil {
		t.Fatal(err)
	}
}

// TestLeapCountersAdvance checks the process-wide counters: a batched run
// must raise rounds much faster than crossings.
func TestLeapCountersAdvance(t *testing.T) {
	before := CounterSnapshot()
	nw, err := New(testConfig(ring.Basic, nil))
	if err != nil {
		t.Fatal(err)
	}
	const k = 64
	if _, err := Run(nw, func(a *Agent) (struct{}, error) {
		_, err := a.RoundNSum(ring.Clockwise, k)
		return struct{}{}, err
	}); err != nil {
		t.Fatal(err)
	}
	after := CounterSnapshot()
	if got := after.Rounds - before.Rounds; got < k {
		t.Errorf("rounds counter advanced by %d, want >= %d", got, k)
	}
	// The whole run is one aligned batch; other tests may run in parallel,
	// so only bound the delta loosely from above via this run's own shape:
	// crossings must grow strictly slower than rounds.
	if dr, dc := after.Rounds-before.Rounds, after.LeapBatches-before.LeapBatches; dc >= dr {
		t.Errorf("crossings %d >= rounds %d: leap batching had no effect", dc, dr)
	}
}
