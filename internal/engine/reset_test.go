package engine

import (
	"errors"
	"testing"

	"ringsym/internal/ring"
)

// resetCfgA/resetCfgB are two configurations of different sizes, models and
// chirality regimes, so resetting between them exercises re-sizing, re-keying
// and frame re-translation.
func resetCfgA() Config {
	return Config{
		Model:     ring.Perceptive,
		Circ:      64,
		Positions: []int64{0, 10, 22, 30, 44},
		IDs:       []int{3, 1, 4, 5, 2},
		IDBound:   20,
	}
}

func resetCfgB() Config {
	return Config{
		Model:     ring.Basic,
		Circ:      96,
		Positions: []int64{2, 8, 20, 34, 40, 58, 70, 80},
		IDs:       []int{8, 2, 7, 1, 5, 3, 6, 4},
		IDBound:   32,
		Chirality: []bool{true, false, true, true, false, true, false, true},
	}
}

// runProbe runs a tiny fixed protocol and fingerprints the run: per-agent
// first-round observations plus total rounds.
func runProbe(t *testing.T, nw *Network) ([]Observation, int) {
	t.Helper()
	res, err := RunFSM(nw, func(a *Agent) *Proto[Observation] {
		return NewProto(func(done func(Observation, error) (Yield, Cont)) (Yield, Cont) {
			return a.YieldRound(ring.Clockwise), func(in Resume) (Yield, Cont) {
				first := in.Obs[0]
				return a.YieldRoundN(ring.Anticlockwise, 3), func(in Resume) (Yield, Cont) {
					return done(first, nil)
				}
			}
		})
	})
	if err != nil {
		t.Fatalf("probe run: %v", err)
	}
	return res.Outputs, res.Rounds
}

// TestNetworkResetMatchesFresh drives the same probe through a Reset network
// and a fresh one and requires identical observations — Reset must be
// indistinguishable from New for every runtime-visible output.
func TestNetworkResetMatchesFresh(t *testing.T) {
	reused, err := New(resetCfgA())
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the reused network's state first so leftovers would show.
	runProbe(t, reused)

	for _, cfg := range []Config{resetCfgB(), resetCfgA(), resetCfgB()} {
		if err := reused.Reset(cfg); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		fresh, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotObs, gotRounds := runProbe(t, reused)
		wantObs, wantRounds := runProbe(t, fresh)
		if gotRounds != wantRounds {
			t.Fatalf("rounds: reset %d, fresh %d", gotRounds, wantRounds)
		}
		for i := range wantObs {
			if gotObs[i] != wantObs[i] {
				t.Fatalf("agent %d: reset %+v, fresh %+v", i, gotObs[i], wantObs[i])
			}
		}
		if reused.Rounds() != fresh.Rounds() {
			t.Fatalf("network rounds: reset %d, fresh %d", reused.Rounds(), fresh.Rounds())
		}
		if got, want := reused.IndexOfID(cfg.IDs[0]), 0; got != want {
			t.Fatalf("IndexOfID(%d) = %d, want %d", cfg.IDs[0], got, want)
		}
	}
}

// TestNetworkResetBarrierRuntime re-runs the reuse check on the blocking v2
// runtime, which exercises the lazily (re)built barrier after size changes.
func TestNetworkResetBarrierRuntime(t *testing.T) {
	reused, err := New(resetCfgB())
	if err != nil {
		t.Fatal(err)
	}
	probe := func(nw *Network) ([]Observation, int) {
		res, err := Run(nw, func(a *Agent) (Observation, error) {
			obs, err := a.Round(ring.Clockwise)
			if err != nil {
				return Observation{}, err
			}
			if _, err := a.RoundN(ring.Anticlockwise, 3); err != nil {
				return Observation{}, err
			}
			return obs, nil
		})
		if err != nil {
			t.Fatalf("barrier probe: %v", err)
		}
		return res.Outputs, res.Rounds
	}
	probe(reused)
	for _, cfg := range []Config{resetCfgA(), resetCfgB()} {
		if err := reused.Reset(cfg); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		fresh, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotObs, gotRounds := probe(reused)
		wantObs, wantRounds := probe(fresh)
		if gotRounds != wantRounds {
			t.Fatalf("rounds: reset %d, fresh %d", gotRounds, wantRounds)
		}
		for i := range wantObs {
			if gotObs[i] != wantObs[i] {
				t.Fatalf("agent %d: reset %+v, fresh %+v", i, gotObs[i], wantObs[i])
			}
		}
	}
}

// TestNetworkResetValidates pins the error surface: a Reset with an invalid
// configuration fails like New would.
func TestNetworkResetValidates(t *testing.T) {
	nw, err := New(resetCfgA())
	if err != nil {
		t.Fatal(err)
	}
	bad := resetCfgA()
	bad.IDs = []int{1, 1, 2, 3, 4}
	if err := nw.Reset(bad); !errors.Is(err, ErrBadIDs) {
		t.Fatalf("Reset(dup ids) = %v, want ErrBadIDs", err)
	}
}
