package engine

import (
	"math/rand"
	"testing"

	"ringsym/internal/geom"
	"ringsym/internal/ring"
)

// TestDisplacementTracksTruePosition verifies that the running sum of dist()
// observations (Agent.Displacement) always equals the arc from the agent's
// initial position to its current position, measured in its own clockwise
// direction — the invariant the location-discovery protocols rely on to map
// their reconstructed geometry back to their own starting point.
func TestDisplacementTracksTruePosition(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		cfg := testConfig(ring.Perceptive, []bool{true, false, true, false, true})
		nw, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rounds := 5 + rng.Intn(10)
		seeds := make([]int64, nw.N())
		for i := range seeds {
			seeds[i] = rng.Int63()
		}
		type out struct {
			id   int
			disp int64
		}
		res, err := Run(nw, func(a *Agent) (out, error) {
			local := rand.New(rand.NewSource(seeds[nw.IndexOfID(a.ID())]))
			for r := 0; r < rounds; r++ {
				dir := ring.Clockwise
				if local.Intn(2) == 0 {
					dir = ring.Anticlockwise
				}
				if _, err := a.Round(dir); err != nil {
					return out{}, err
				}
			}
			return out{a.ID(), a.Displacement()}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		circle := geom.MustNew(cfg.Circ)
		initial := nw.InitialPositions()
		current := nw.CurrentPositions()
		for i, o := range res.Outputs {
			wantCW := 2 * circle.CWDist(initial[i], current[i])
			want := wantCW
			if !nw.ChiralityOf(i) && wantCW != 0 {
				want = nw.FullCircle() - wantCW
			}
			if o.disp != want {
				t.Fatalf("trial %d agent %d: displacement %d, want %d", trial, i, o.disp, want)
			}
		}
	}
}
