package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// setIdleTimeout shrinks the drain timeout for the duration of a test.
func setIdleTimeout(t *testing.T, d time.Duration) {
	t.Helper()
	old := workerIdleTimeout.Load()
	workerIdleTimeout.Store(int64(d))
	t.Cleanup(func() { workerIdleTimeout.Store(old) })
}

// churnPool touches every currently parked worker (plus a few fresh ones) by
// holding that many jobs in flight at once, so that when they re-park their
// idle timers are armed with the test's shrunk timeout rather than whatever
// was in force when earlier tests parked them.
func churnPool(t *testing.T) {
	t.Helper()
	n := idleWorkerCount() + 8
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		submit(func() {
			defer wg.Done()
			<-gate
		})
	}
	close(gate)
	wg.Wait()
}

// TestPoolDrainsWhenIdle pins the drain behaviour: once the engine goes
// quiet, every parked worker times out, removes itself from the free list and
// exits, so the pool returns to zero idle goroutines instead of pinning the
// peak worker count for the life of the process.
func TestPoolDrainsWhenIdle(t *testing.T) {
	setIdleTimeout(t, 20*time.Millisecond)
	churnPool(t)
	if idleWorkerCount() == 0 {
		t.Fatal("expected parked workers right after the burst")
	}

	deadline := time.After(5 * time.Second)
	for idleWorkerCount() > 0 {
		select {
		case <-deadline:
			t.Fatalf("pool did not drain: %d workers still parked", idleWorkerCount())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestPoolReusesAfterDrain submits work after a full drain and checks it
// still runs: draining must leave the pool in a state where submit simply
// spawns fresh workers.
func TestPoolReusesAfterDrain(t *testing.T) {
	setIdleTimeout(t, 5*time.Millisecond)
	churnPool(t)
	deadline := time.After(5 * time.Second)
	for idleWorkerCount() > 0 {
		select {
		case <-deadline:
			t.Fatal("pool did not drain")
		case <-time.After(2 * time.Millisecond):
		}
	}

	var ran atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		submit(func() {
			defer wg.Done()
			ran.Add(1)
		})
	}
	wg.Wait()
	if got := ran.Load(); got != 16 {
		t.Fatalf("ran %d of 16 jobs after drain", got)
	}
}

// TestPoolDrainSubmitRace hammers the narrow window where a submit pops a
// worker off the free list at the same moment its idle timer fires: the
// worker must notice it is owed a job and serve it instead of exiting.  Run
// under -race this also checks the free-list synchronisation.
func TestPoolDrainSubmitRace(t *testing.T) {
	// A timeout this small makes nearly every park expire immediately, so
	// most submits race a draining worker.
	setIdleTimeout(t, time.Nanosecond)

	var ran atomic.Int64
	const jobs = 2000
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		submit(func() {
			defer wg.Done()
			ran.Add(1)
		})
		if i%64 == 0 {
			time.Sleep(time.Microsecond)
		}
	}
	wg.Wait()
	if got := ran.Load(); got != jobs {
		t.Fatalf("ran %d of %d jobs", got, jobs)
	}
}
