package engine

import (
	"fmt"
	"sync"

	"ringsym/internal/ring"
)

// This file retains the original (v1) runtime: one freshly spawned goroutine
// per agent per run, a dedicated coordinator goroutine, and two channel hops
// per agent per round (request to the coordinator, reply back).  It exists as
// the differential-testing baseline for the direct-dispatch barrier runtime
// and as the reference side of the v1-vs-v2 benchmark; new code should use
// Run or RunContext.

type roundRequest struct {
	idx   int
	dir   ring.Direction // objective direction
	done  bool
	reply chan roundReply
}

type roundReply struct {
	obs ring.Observation
	err error
}

// channelDispatcher reproduces the v1 agent side of the rendezvous: submit a
// request to the coordinator, block on the private reply channel.
type channelDispatcher struct {
	reqCh   chan<- roundRequest
	replies []chan roundReply
	full    int64
}

func (c *channelDispatcher) await(idx int, dir ring.Direction) (ring.Observation, error) {
	c.reqCh <- roundRequest{idx: idx, dir: dir, reply: c.replies[idx]}
	rep := <-c.replies[idx]
	return rep.obs, rep.err
}

// awaitBatch runs a batched submission one round at a time through the v1
// rendezvous: observable behaviour (trace, displacement, stop round) is
// identical to the v2 leap path, only the synchronisation substrate differs,
// which is exactly what makes RunLegacy the differential baseline for leap
// execution.
func (c *channelDispatcher) awaitBatch(idx int, b batch) (int, int64, error) {
	executed := 0
	var agg int64
	objDisp := b.objDisp
	for executed < b.k {
		dir := b.dir
		if b.dirs != nil {
			dir = b.dirs[executed]
		}
		rep, err := c.await(idx, dir)
		if err != nil {
			return 0, 0, err
		}
		if b.trace != nil {
			b.trace[executed] = rep
		}
		agg = (agg + rep.DistCW) % c.full
		objDisp = (objDisp + rep.DistCW) % c.full
		executed++
		if b.stop && objDisp == b.stopTarget {
			break
		}
	}
	return executed, agg, nil
}

// RunLegacy executes protocol on every agent with the v1 channel-rendezvous
// runtime.  Observations, outputs and round counts are identical to Run; only
// the synchronisation substrate differs.  It does not support cancellation.
func RunLegacy[T any](nw *Network, protocol func(a *Agent) (T, error)) (*Result[T], error) {
	if err := nw.beginRun(); err != nil {
		return nil, err
	}
	defer nw.endRun()

	n := nw.N()
	startRounds := nw.state.Rounds()
	reqCh := make(chan roundRequest)
	d := &channelDispatcher{reqCh: reqCh, replies: make([]chan roundReply, n), full: nw.state.FullCircle()}
	for i := range d.replies {
		d.replies[i] = make(chan roundReply, 1)
	}

	outputs := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		a := nw.agents[i]
		a.d = d
		go func(a *Agent) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[a.idx] = fmt.Errorf("%w: %v", ErrProtocolPanic, r)
				}
				// Always announce completion so the coordinator can finish.
				reqCh <- roundRequest{idx: a.idx, done: true}
			}()
			out, err := protocol(a)
			outputs[a.idx] = out
			errs[a.idx] = err
		}(a)
	}

	coordErr := nw.coordinateLegacy(reqCh, n)
	wg.Wait()

	res := &Result[T]{Rounds: nw.state.Rounds() - startRounds, Outputs: outputs}
	return res, joinRunErrors(nw, coordErr, errs)
}

// coordinateLegacy is the v1 coordinator loop: collect one request per active
// agent, execute the round, reply to every pending agent.
func (nw *Network) coordinateLegacy(reqCh <-chan roundRequest, n int) error {
	active := n
	var firstErr error
	for active > 0 {
		pending := make([]roundRequest, 0, active)
		want := active
		for received := 0; received < want; received++ {
			req := <-reqCh
			if req.done {
				active--
				continue
			}
			pending = append(pending, req)
		}
		if len(pending) == 0 {
			continue
		}

		var reply roundReply
		if nw.state.Rounds() >= nw.cfg.MaxRounds {
			reply.err = fmt.Errorf("%w (%d)", ErrMaxRoundsExceed, nw.cfg.MaxRounds)
		} else if nw.broken != nil {
			reply.err = fmt.Errorf("%w: %w", ErrNetworkBroken, nw.broken)
		}
		if reply.err != nil {
			if firstErr == nil {
				firstErr = reply.err
			}
			for _, req := range pending {
				req.reply <- reply
			}
			continue
		}

		dirs := make([]ring.Direction, n)
		for i := range dirs {
			// Default for agents that are no longer (or not yet) submitting:
			// move in their own clockwise direction.
			dirs[i] = nw.objectiveDir(i, ring.Clockwise)
		}
		for _, req := range pending {
			dirs[req.idx] = req.dir
		}
		out, err := nw.state.ExecuteRound(dirs)
		if err != nil {
			// Should be impossible: directions are validated per agent
			// before submission.  Mark the network broken and fail everyone.
			nw.broken = err
			if firstErr == nil {
				firstErr = err
			}
			for _, req := range pending {
				req.reply <- roundReply{err: fmt.Errorf("%w: %w", ErrNetworkBroken, err)}
			}
			continue
		}
		ctrRounds.Add(1)
		nw.crossings++
		if c := ctrCrossings.Add(1); c&leapSampleMask == 0 {
			emitLeapSample(c)
		}
		for _, req := range pending {
			req.reply <- roundReply{obs: out.Agents[req.idx]}
		}
	}
	return firstErr
}
