// Package obs is the structured-event spine of the simulator: a
// dependency-free telemetry core that every layer (engine, memo cache,
// campaign runner, serving daemon) emits typed events into, and that
// consumers (the ringd /v1/events endpoint, the ringfarm top live view, an
// NDJSON file sink) subscribe to without ever being able to slow the
// producers down.
//
// Three properties are load-bearing:
//
//   - The off switch is free.  With no subscribers, On() is one atomic
//     pointer load and every emit site is `if obs.On() { ... }` — no event is
//     even constructed, so the golden artefacts and the benchmarks are
//     untouched by the existence of the telemetry layer.
//   - Publishing never blocks.  Each subscriber owns a bounded lock-free
//     ring buffer (a multi-producer single-consumer Vyukov queue); a full
//     queue drops the event and counts the drop instead of back-pressuring
//     the worker that emitted it.  A stalled /v1/events client therefore
//     cannot wedge the serve pool.
//   - Counters are registered, not bespoke.  Process-wide totals (engine
//     rounds, cache hits, bus drops) live in a metric Registry that renders
//     Prometheus text exposition, so a new counter is one NewCounter call
//     away from /metrics instead of a hand-threaded snapshot field.
//
// Timestamps are monotonic nanoseconds since process start (Now), so rates
// and latencies computed from an event stream are immune to wall-clock
// steps.
package obs

import "time"

// Type classifies an event.  The taxonomy is flat strings ("scenario.finish")
// so filters can match whole types or dotted prefixes ("scenario") without a
// parallel enum table.
type Type string

// The event taxonomy.  Emitters outside this package must use these
// constants; consumers may match on dotted prefixes.
const (
	// Scenario lifecycle, emitted by the campaign runner around every
	// scenario (local sweeps and ringd requests alike).
	ScenarioStart  Type = "scenario.start"
	ScenarioFinish Type = "scenario.finish" // Status ok or unsolvable
	ScenarioError  Type = "scenario.error"  // Status failed; Err holds the cause

	// Campaign lifecycle, emitted by the campaign runner per Run call.
	CampaignStart      Type = "campaign.start"      // Total scenarios
	CampaignCheckpoint Type = "campaign.checkpoint" // Done of Total, every checkpointEvery records
	CampaignFinish     Type = "campaign.finish"

	// Memo-cache service events, one per cache operation (no payload beyond
	// the type — the hot path must not allocate).
	CacheHit   Type = "cache.hit"
	CacheMiss  Type = "cache.miss"
	CacheDedup Type = "cache.dedup"
	CacheEvict Type = "cache.evict"

	// Persistent-store service events (internal/store), one per store
	// operation: disk lookups, segment eviction, compaction, and the peer
	// hop of the fleet cache (a store.peer.miss means every configured peer
	// was consulted and none had the key).  Like the memo events they carry
	// no payload beyond the type — the hot path must not allocate.
	StoreHit      Type = "store.hit"
	StoreMiss     Type = "store.miss"
	StoreEvict    Type = "store.evict"
	StoreCompact  Type = "store.compact"
	StorePeerHit  Type = "store.peer.hit"
	StorePeerMiss Type = "store.peer.miss"

	// Engine execution, sampled (one event per leapSampleEvery barrier
	// crossings) with cumulative totals: per-crossing emission at millions of
	// crossings per second would drown every subscriber.
	EngineLeap Type = "engine.leap"

	// Serving-layer request accounting from ringd.
	ServeRequest Type = "serve.request"
	ServeReject  Type = "serve.reject"

	// Fleet coordination, emitted by internal/fleet: worker liveness and the
	// lease lifecycle of a distributed campaign.  Worker names the worker's
	// base URL; Lo/Hi carry the lease's scenario-index range [Lo, Hi).
	FleetWorkerUp        Type = "fleet.worker.up"
	FleetWorkerDown      Type = "fleet.worker.down"      // Err holds the cause
	FleetLeaseGrant      Type = "fleet.lease.grant"      // range handed to Worker
	FleetLeaseDone       Type = "fleet.lease.done"       // range fully streamed back
	FleetLeaseSteal      Type = "fleet.lease.steal"      // range split off Worker (the victim)
	FleetLeaseFail       Type = "fleet.lease.fail"       // attempt failed; range will be re-leased
	FleetLeaseQuarantine Type = "fleet.lease.quarantine" // range abandoned after repeated failures
)

// Level grades an event for client-side filtering.
type Level int8

// Levels, ordered: a filter with MinLevel Info suppresses Debug events.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "debug"
	}
}

// MarshalText renders the level as its name in JSON event streams.
func (l Level) MarshalText() ([]byte, error) { return []byte(l.String()), nil }

// UnmarshalText parses a level name; unknown names fail.
func (l *Level) UnmarshalText(b []byte) error {
	v, err := ParseLevel(string(b))
	if err != nil {
		return err
	}
	*l = v
	return nil
}

// ParseLevel maps a level name back to its Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, errBadLevel(s)
}

type errBadLevel string

func (e errBadLevel) Error() string {
	return "obs: unknown level " + string(e) + ` (want debug, info, warn or error)`
}

// Event is one telemetry record.  It is a flat struct of fixed fields — no
// maps, no interfaces — so emitting one is a stack copy, the fan-out bus can
// store them inline in its ring slots, and zero-valued fields vanish from the
// JSON.  Emitters fill only the fields their type defines (see the taxonomy
// above); Nanos is stamped by Publish when left zero.
type Event struct {
	// Nanos is the monotonic timestamp: nanoseconds since process start.
	Nanos int64 `json:"nanos"`
	Type  Type  `json:"type"`
	Level Level `json:"level"`

	// Scenario identity (scenario.* events).
	Task  string `json:"task,omitempty"`
	Model string `json:"model,omitempty"`
	N     int    `json:"n,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	Index int    `json:"index,omitempty"`

	// Scenario outcome (scenario.finish / scenario.error).
	Status     string `json:"status,omitempty"`
	Cache      string `json:"cache,omitempty"`
	Rounds     int64  `json:"rounds,omitempty"`
	WallMicros int64  `json:"wall_us,omitempty"`

	// Campaign progress (campaign.*).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`

	// Engine totals (engine.leap: cumulative rounds and barrier crossings).
	Crossings int64 `json:"crossings,omitempty"`

	// Serving (serve.*).
	Endpoint string `json:"endpoint,omitempty"`

	// Fleet coordination (fleet.*): the worker's base URL and the lease's
	// scenario-index range [Lo, Hi).
	Worker string `json:"worker,omitempty"`
	Lo     int    `json:"lo,omitempty"`
	Hi     int    `json:"hi,omitempty"`

	// Err is the failure cause on error-grade events.
	Err string `json:"error,omitempty"`
}

var processStart = time.Now()

// Now returns the monotonic event timestamp: nanoseconds since process
// start.  time.Since reads the runtime's monotonic clock, so the value never
// jumps with wall-clock adjustments.
func Now() int64 { return int64(time.Since(processStart)) }
