package obs

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
)

// Bus fans events out to subscribers.  The publish path is lock-free: it
// loads an atomically-published snapshot of the subscriber list and offers
// the event to each subscriber's bounded ring, dropping (and counting) where
// a ring is full.  Subscribe/Close swap the snapshot under a mutex — they are
// rare control-plane operations; Publish never takes it.
//
// A Bus with no subscribers is inert: Active() is a single atomic load
// returning false, and Publish returns before touching the event.  Emit
// sites guard with On()/Active() so that a quiet process does not even
// construct the Event value.
type Bus struct {
	mu   sync.Mutex
	subs atomic.Pointer[[]*Subscription]

	published atomic.Uint64
	dropped   atomic.Uint64
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Default is the process-wide bus every instrumented layer emits into.
var Default = NewBus()

// On reports whether the default bus has any subscriber.  Emit sites use it
// as the free off switch: `if obs.On() { obs.Emit(...) }`.
func On() bool { return Default.Active() }

// Emit publishes an event on the default bus.
func Emit(ev Event) { Default.Publish(ev) }

// Active reports whether the bus has any subscriber (one atomic load).
func (b *Bus) Active() bool { return b.subs.Load() != nil }

// Publish offers ev to every subscriber whose filter accepts it.  It never
// blocks: a subscriber whose ring is full loses the event and both the
// subscription's and the bus's drop counters advance.  A zero Nanos is
// stamped with Now().
func (b *Bus) Publish(ev Event) {
	list := b.subs.Load()
	if list == nil {
		return
	}
	if ev.Nanos == 0 {
		ev.Nanos = Now()
	}
	b.published.Add(1)
	for _, sub := range *list {
		if !sub.accepts(ev) {
			continue
		}
		if sub.q.tryPush(ev) {
			sub.wake()
		} else {
			sub.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
}

// SubOptions configures a subscription.
type SubOptions struct {
	// Buffer is the subscriber's ring capacity in events (rounded up to a
	// power of two); <= 0 selects 1024.  Events published while the ring is
	// full are dropped and counted, never waited for.
	Buffer int
	// Types, when non-empty, restricts delivery to events whose type equals
	// an entry or falls under a dotted prefix ("scenario" matches
	// "scenario.finish").
	Types []string
	// MinLevel suppresses events below the given level.
	MinLevel Level
}

// Subscription is one consumer's bounded view of a bus.  Consume with Next
// (blocking) or TryNext (polling) from a single goroutine; Close detaches it
// from the bus.
type Subscription struct {
	bus     *Bus
	q       *ring
	notify  chan struct{}
	types   []string
	minLvl  Level
	dropped atomic.Uint64
}

// Subscribe attaches a new subscriber.
func (b *Bus) Subscribe(opts SubOptions) *Subscription {
	buf := opts.Buffer
	if buf <= 0 {
		buf = 1024
	}
	s := &Subscription{
		bus:    b,
		q:      newRing(buf),
		notify: make(chan struct{}, 1),
		types:  opts.Types,
		minLvl: opts.MinLevel,
	}
	b.mu.Lock()
	old := b.subs.Load()
	var next []*Subscription
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, s)
	b.subs.Store(&next)
	b.mu.Unlock()
	return s
}

// Close detaches the subscription; events already buffered remain readable.
// Close is idempotent.
func (s *Subscription) Close() {
	b := s.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.subs.Load()
	if old == nil {
		return
	}
	next := make([]*Subscription, 0, len(*old))
	for _, sub := range *old {
		if sub != s {
			next = append(next, sub)
		}
	}
	if len(next) == 0 {
		b.subs.Store(nil)
		return
	}
	b.subs.Store(&next)
}

func (s *Subscription) accepts(ev Event) bool {
	if ev.Level < s.minLvl {
		return false
	}
	if len(s.types) == 0 {
		return true
	}
	t := string(ev.Type)
	for _, want := range s.types {
		if t == want || (strings.HasPrefix(t, want) && len(t) > len(want) && t[len(want)] == '.') {
			return true
		}
	}
	return false
}

// wake nudges a blocked Next; a pending nudge is enough, so a full notify
// channel is not waited on.
func (s *Subscription) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next returns the next buffered event, blocking until one is published or
// ctx is done.
func (s *Subscription) Next(ctx context.Context) (Event, error) {
	for {
		if ev, ok := s.q.tryPop(); ok {
			return ev, nil
		}
		select {
		case <-s.notify:
		case <-ctx.Done():
			return Event{}, ctx.Err()
		}
	}
}

// TryNext returns the next buffered event without blocking.
func (s *Subscription) TryNext() (Event, bool) { return s.q.tryPop() }

// Dropped returns how many events this subscription has lost to a full ring.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// BusStats is a snapshot of a bus's fan-out accounting.
type BusStats struct {
	// Subscribers is the current number of attached subscriptions.
	Subscribers int `json:"subscribers"`
	// Published counts events offered to at least one subscriber.
	Published uint64 `json:"published"`
	// Dropped counts subscriber-side losses to full rings, summed over all
	// subscriptions (one event dropped by two slow subscribers counts twice).
	Dropped uint64 `json:"dropped"`
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() BusStats {
	st := BusStats{Published: b.published.Load(), Dropped: b.dropped.Load()}
	if list := b.subs.Load(); list != nil {
		st.Subscribers = len(*list)
	}
	return st
}
