package obs

import "sort"

// Percentile returns the nearest-rank p-th percentile of a value→count
// histogram holding count samples: the smallest value v such that at least
// ceil(p/100 · count) samples are <= v.  This is the campaign aggregator's
// exact-percentile machinery, hosted here so the telemetry windows below and
// internal/campaign share one implementation (campaign.Percentile
// delegates).
func Percentile(hist map[int]int, count, p int) int {
	if count <= 0 {
		return 0
	}
	rank := (p*count + 99) / 100
	if rank < 1 {
		rank = 1
	}
	values := make([]int, 0, len(hist))
	for v := range hist {
		values = append(values, v)
	}
	sort.Ints(values)
	seen := 0
	for _, v := range values {
		seen += hist[v]
		if seen >= rank {
			return v
		}
	}
	return values[len(values)-1]
}

// Window aggregates a value stream over a sliding time window of one-second
// buckets: event rate, value sum and exact value percentiles over the last
// len(buckets) seconds.  Memory is bounded by the number of buckets times the
// number of distinct values per bucket, not by the event count — the same
// value→count histogram trick the campaign aggregator uses.
//
// A Window is fed and read from one goroutine (the top view's event loop);
// it is not safe for concurrent use.
type Window struct {
	width   int64 // bucket width in nanos
	buckets []wbucket
}

type wbucket struct {
	epoch int64 // bucket index (nanos / width); -1 = never used
	n     int
	sum   int64
	hist  map[int]int
}

// windowBucketNanos is the bucket width: one second.
const windowBucketNanos = int64(1e9)

// NewWindow returns a sliding window spanning the given number of seconds
// (minimum 1).
func NewWindow(seconds int) *Window {
	if seconds < 1 {
		seconds = 1
	}
	w := &Window{width: windowBucketNanos, buckets: make([]wbucket, seconds)}
	for i := range w.buckets {
		w.buckets[i].epoch = -1
		w.buckets[i].hist = make(map[int]int)
	}
	return w
}

// Add folds one sample with the given monotonic timestamp into the window.
func (w *Window) Add(nanos int64, value int) {
	b := w.bucket(nanos)
	if b == nil {
		return // older than the window
	}
	b.n++
	b.sum += int64(value)
	b.hist[value]++
}

// bucket returns the (recycled) bucket for the timestamp, or nil when the
// timestamp has already slid out of the window.
func (w *Window) bucket(nanos int64) *wbucket {
	epoch := nanos / w.width
	b := &w.buckets[epoch%int64(len(w.buckets))]
	if b.epoch == epoch {
		return b
	}
	if b.epoch > epoch {
		return nil
	}
	b.epoch = epoch
	b.n = 0
	b.sum = 0
	clear(b.hist)
	return b
}

// WindowStats is a point-in-time read of a Window.
type WindowStats struct {
	// Count is the number of samples inside the window.
	Count int
	// Rate is samples per second over the window span.
	Rate float64
	// Sum is the total of the sample values inside the window.
	Sum int64
	// P50, P90, P99 are exact nearest-rank percentiles of the sample values.
	P50, P90, P99 int
}

// Stats aggregates the buckets still inside the window ending at the given
// monotonic timestamp.
func (w *Window) Stats(nowNanos int64) WindowStats {
	nowEpoch := nowNanos / w.width
	minEpoch := nowEpoch - int64(len(w.buckets)) + 1
	var st WindowStats
	merged := make(map[int]int)
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.epoch < minEpoch || b.epoch > nowEpoch {
			continue
		}
		st.Count += b.n
		st.Sum += b.sum
		for v, c := range b.hist {
			merged[v] += c
		}
	}
	st.Rate = float64(st.Count) / float64(len(w.buckets))
	if st.Count > 0 {
		st.P50 = Percentile(merged, st.Count, 50)
		st.P90 = Percentile(merged, st.Count, 90)
		st.P99 = Percentile(merged, st.Count, 99)
	}
	return st
}
