package obs

import "sync/atomic"

// ring is a bounded lock-free multi-producer single-consumer event queue —
// Vyukov's bounded MPMC algorithm specialised to one consumer.  Every slot
// carries a sequence number that hands exclusive ownership back and forth
// between producers and the consumer, so the Event payload itself is written
// and read without locks or torn reads: the atomic sequence store after the
// payload write is the release that the consumer's sequence load acquires.
//
// tryPush never blocks: a full ring fails fast and the caller counts the
// drop.  That is the backpressure contract of the whole bus — slow consumers
// lose events, producers lose nothing.
type ring struct {
	mask  uint64
	slots []slot
	enq   atomic.Uint64
	deq   atomic.Uint64
}

type slot struct {
	// seq encodes the slot state relative to the queue position pos that
	// maps to it: seq == pos (free, claimable by a producer), seq == pos+1
	// (published, readable by the consumer), seq == pos+mask+1 (consumed,
	// free for the producer one lap ahead).
	seq atomic.Uint64
	ev  Event
}

// newRing returns a ring holding capacity events, rounded up to a power of
// two (minimum 2).
func newRing(capacity int) *ring {
	c := 2
	for c < capacity {
		c <<= 1
	}
	r := &ring{mask: uint64(c - 1), slots: make([]slot, c)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// tryPush enqueues ev, returning false (without blocking or spinning against
// the consumer) when the ring is full.  Safe for concurrent producers.
func (r *ring) tryPush(ev Event) bool {
	for {
		pos := r.enq.Load()
		s := &r.slots[pos&r.mask]
		switch d := int64(s.seq.Load()) - int64(pos); {
		case d == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.ev = ev
				s.seq.Store(pos + 1)
				return true
			}
		case d < 0:
			// The consumer has not released this slot from the previous lap:
			// the ring is full.
			return false
		}
		// d > 0: another producer claimed pos between our loads; retry at
		// the advanced head.
	}
}

// tryPop dequeues the next event, returning ok=false when the ring is empty.
// Single consumer only.
func (r *ring) tryPop() (Event, bool) {
	pos := r.deq.Load()
	s := &r.slots[pos&r.mask]
	if int64(s.seq.Load())-int64(pos+1) < 0 {
		return Event{}, false
	}
	ev := s.ev
	// Clear the slot before releasing it so the ring does not pin the event's
	// strings for a whole lap, then hand it to the producer a lap ahead.
	s.ev = Event{}
	s.seq.Store(pos + r.mask + 1)
	r.deq.Store(pos + 1)
	return ev, true
}
