package obs

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRingFIFO: events come out in the order one producer pushed them, and a
// full ring rejects instead of blocking or overwriting.
func TestRingFIFO(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 4; i++ {
		if !r.tryPush(Event{Index: i}) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.tryPush(Event{Index: 99}) {
		t.Fatal("push succeeded on a full ring")
	}
	for i := 0; i < 4; i++ {
		ev, ok := r.tryPop()
		if !ok || ev.Index != i {
			t.Fatalf("pop %d: got (%v, %v)", i, ev.Index, ok)
		}
	}
	if _, ok := r.tryPop(); ok {
		t.Fatal("pop succeeded on an empty ring")
	}
	// The ring is reusable after a full lap.
	if !r.tryPush(Event{Index: 7}) {
		t.Fatal("push failed after drain")
	}
	if ev, ok := r.tryPop(); !ok || ev.Index != 7 {
		t.Fatal("wrap-around pop failed")
	}
}

// TestRingConcurrent: many producers against one consumer under -race; every
// successfully pushed event arrives exactly once.
func TestRingConcurrent(t *testing.T) {
	r := newRing(64)
	const producers, perProducer = 8, 1000
	var pushed sync.Map // index -> true for every event that tryPush accepted
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				idx := p*perProducer + i
				if r.tryPush(Event{Index: idx}) {
					pushed.Store(idx, true)
				}
			}
		}(p)
	}
	received := make(map[int]bool)
	done := make(chan struct{})
	doneProducing := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if ev, ok := r.tryPop(); ok {
				if received[ev.Index] {
					t.Errorf("event %d delivered twice", ev.Index)
					return
				}
				received[ev.Index] = true
				continue
			}
			select {
			case <-doneProducing:
				// Drain whatever is left, then stop.
				for {
					ev, ok := r.tryPop()
					if !ok {
						return
					}
					received[ev.Index] = true
				}
			default:
			}
		}
	}()
	wg.Wait()
	close(doneProducing)
	<-done

	pushedCount := 0
	pushed.Range(func(k, _ any) bool {
		pushedCount++
		if !received[k.(int)] {
			t.Errorf("event %d pushed but never delivered", k.(int))
			return false
		}
		return true
	})
	if len(received) != pushedCount {
		t.Fatalf("received %d events, producers pushed %d", len(received), pushedCount)
	}
}

// TestBusOffSwitch: a bus with no subscribers is inert and Publish is a
// no-op that does not even count.
func TestBusOffSwitch(t *testing.T) {
	b := NewBus()
	if b.Active() {
		t.Fatal("fresh bus reports active")
	}
	b.Publish(Event{Type: ScenarioFinish})
	if st := b.Stats(); st.Published != 0 || st.Dropped != 0 {
		t.Fatalf("inert publish counted: %+v", st)
	}
	sub := b.Subscribe(SubOptions{})
	if !b.Active() {
		t.Fatal("bus with a subscriber reports inactive")
	}
	sub.Close()
	if b.Active() {
		t.Fatal("bus still active after the last unsubscribe")
	}
	sub.Close() // idempotent
}

// TestBusFanoutAndFilters: two subscribers with different filters each see
// exactly their slice of the stream, timestamps are stamped, and a closed
// subscriber stops receiving.
func TestBusFanoutAndFilters(t *testing.T) {
	b := NewBus()
	all := b.Subscribe(SubOptions{})
	scen := b.Subscribe(SubOptions{Types: []string{"scenario", "cache.hit"}})
	errs := b.Subscribe(SubOptions{MinLevel: LevelError})

	b.Publish(Event{Type: ScenarioStart})
	b.Publish(Event{Type: ScenarioError, Level: LevelError})
	b.Publish(Event{Type: CacheHit})
	b.Publish(Event{Type: CacheMiss})

	drain := func(s *Subscription) []Type {
		var out []Type
		for {
			ev, ok := s.TryNext()
			if !ok {
				return out
			}
			if ev.Nanos == 0 {
				t.Error("event delivered without a timestamp")
			}
			out = append(out, ev.Type)
		}
	}
	if got := drain(all); len(got) != 4 {
		t.Fatalf("unfiltered subscriber got %v", got)
	}
	if got := drain(scen); len(got) != 3 || got[0] != ScenarioStart || got[1] != ScenarioError || got[2] != CacheHit {
		t.Fatalf("type-filtered subscriber got %v", got)
	}
	if got := drain(errs); len(got) != 1 || got[0] != ScenarioError {
		t.Fatalf("level-filtered subscriber got %v", got)
	}

	// "scenario" is a dotted-prefix match, not a substring one: a type that
	// merely starts with the string must not leak through.
	weird := b.Subscribe(SubOptions{Types: []string{"scenario"}})
	b.Publish(Event{Type: Type("scenariox.start")})
	if _, ok := weird.TryNext(); ok {
		t.Fatal("prefix filter matched a non-dotted extension")
	}

	scen.Close()
	b.Publish(Event{Type: ScenarioFinish})
	if _, ok := scen.TryNext(); ok {
		t.Fatal("closed subscriber still receiving")
	}
}

// TestBusDropCounting: a subscriber that stops draining loses events without
// blocking the publisher, and both drop counters advance.
func TestBusDropCounting(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(SubOptions{Buffer: 4})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			b.Publish(Event{Index: i})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a stalled subscriber")
	}
	if sub.Dropped() != 96 {
		t.Fatalf("subscription dropped %d events, want 96", sub.Dropped())
	}
	if st := b.Stats(); st.Dropped != 96 || st.Published != 100 {
		t.Fatalf("bus stats: %+v", st)
	}
	// The 4 buffered events are still intact and in order.
	for i := 0; i < 4; i++ {
		ev, ok := sub.TryNext()
		if !ok || ev.Index != i {
			t.Fatalf("buffered event %d: got (%v, %v)", i, ev.Index, ok)
		}
	}
}

// TestSubscriptionNext: Next blocks until an event or cancellation.
func TestSubscriptionNext(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(SubOptions{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		b.Publish(Event{Type: CampaignFinish})
	}()
	ev, err := sub.Next(context.Background())
	if err != nil || ev.Type != CampaignFinish {
		t.Fatalf("Next = (%v, %v)", ev, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sub.Next(ctx); err == nil {
		t.Fatal("Next returned without an event on a cancelled context")
	}
}

// TestRegistryPrometheus: the exposition contains HELP/TYPE/value triples,
// sorted, with integer-rendered values; duplicate registration panics.
func TestRegistryPrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events for the test.")
	c.Add(42)
	r.Gauge("test_queue_depth", "Current depth.", func() float64 { return 2.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_events_total Events for the test.",
		"# TYPE test_events_total counter",
		"test_events_total 42",
		"# TYPE test_queue_depth gauge",
		"test_queue_depth 2.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "test_events_total") > strings.Index(out, "test_queue_depth") {
		t.Error("exposition not sorted by metric name")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("test_events_total", "again")
}

// TestDefaultRegistryHasBusMetrics: the default exposition always carries the
// bus fan-out accounting.
func TestDefaultRegistryHasBusMetrics(t *testing.T) {
	var sb strings.Builder
	if err := Metrics.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ringsym_obs_subscribers", "ringsym_obs_events_dropped_total"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("default exposition missing %s", want)
		}
	}
}

// TestPercentileBruteForce: the histogram percentile equals the sorted-slice
// nearest-rank percentile on random data.
func TestPercentileBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		samples := make([]int, n)
		hist := make(map[int]int)
		for i := range samples {
			v := rng.Intn(40)
			samples[i] = v
			hist[v]++
		}
		sort.Ints(samples)
		for _, p := range []int{1, 50, 90, 99, 100} {
			rank := (p*n + 99) / 100
			if rank < 1 {
				rank = 1
			}
			if got, want := Percentile(hist, n, p), samples[rank-1]; got != want {
				t.Fatalf("trial %d: p%d = %d, want %d", trial, p, got, want)
			}
		}
	}
}

// TestWindowSliding: samples age out of the window, rates reflect the span,
// and percentiles are exact over the live buckets.
func TestWindowSliding(t *testing.T) {
	w := NewWindow(3)
	sec := windowBucketNanos
	// Seconds 0, 1, 2: ten samples each of value 10·(s+1).
	for s := int64(0); s < 3; s++ {
		for i := 0; i < 10; i++ {
			w.Add(s*sec+int64(i), int(10*(s+1)))
		}
	}
	st := w.Stats(2 * sec)
	if st.Count != 30 || st.Sum != 10*10+10*20+10*30 {
		t.Fatalf("full window stats: %+v", st)
	}
	if st.Rate != 10 {
		t.Fatalf("rate = %v, want 10", st.Rate)
	}
	if st.P50 != 20 || st.P99 != 30 {
		t.Fatalf("percentiles: %+v", st)
	}

	// One second later the epoch-0 samples are out of the window.
	st = w.Stats(3 * sec)
	if st.Count != 20 || st.P50 != 20 {
		t.Fatalf("slid window stats: %+v", st)
	}

	// Writing second 3 recycles the epoch-0 bucket.
	w.Add(3*sec, 40)
	st = w.Stats(3 * sec)
	if st.Count != 21 || st.P99 != 40 {
		t.Fatalf("recycled bucket stats: %+v", st)
	}

	// A sample older than the window is discarded, not folded into a stale
	// bucket.
	w.Add(0, 1000)
	if st := w.Stats(3 * sec); st.P99 == 1000 {
		t.Fatal("expired sample entered the window")
	}
}

// TestLevelRoundTrip: level names parse back to themselves and unknown names
// fail.
func TestLevelRoundTrip(t *testing.T) {
	for _, l := range []Level{LevelDebug, LevelInfo, LevelWarn, LevelError} {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("round trip %v: (%v, %v)", l, got, err)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("unknown level parsed")
	}
}
