package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric: a named atomic registered in
// a Registry so it appears in the Prometheus exposition without any
// hand-threaded snapshot plumbing.  The Add path is exactly one atomic add —
// the same cost as the bespoke atomics it replaces.
type Counter struct {
	v    atomic.Uint64
	name string
}

// Add increments the counter and returns the new value.
func (c *Counter) Add(n uint64) uint64 { return c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// metric is one registry entry: a counter's own value or a gauge callback.
type metric struct {
	name, help, typ string // typ is the Prometheus TYPE: "counter" or "gauge"
	read            func() float64
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format.  Registration happens at package init time (or other
// setup paths); reads are concurrent-safe.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{metrics: make(map[string]metric)} }

// Metrics is the process-wide default registry rendered by ringd's
// Prometheus endpoint.
var Metrics = NewRegistry()

// NewCounter registers a counter in the default registry.
func NewCounter(name, help string) *Counter { return Metrics.Counter(name, help) }

// RegisterGauge registers a gauge callback in the default registry.
func RegisterGauge(name, help string, read func() float64) { Metrics.Gauge(name, help, read) }

// Counter registers and returns a new counter.  Registering a name twice
// panics: metric names are a process-wide namespace and a silent overwrite
// would make one of the two counters vanish from the exposition.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name}
	r.register(metric{name: name, help: help, typ: "counter", read: func() float64 { return float64(c.v.Load()) }})
	return c
}

// Gauge registers a gauge whose value is read through the callback at
// exposition time.  The callback must be safe for concurrent use.
func (r *Registry) Gauge(name, help string, read func() float64) {
	r.register(metric{name: name, help: help, typ: "gauge", read: read})
}

// CounterFunc registers a monotonic total whose value is read through the
// callback — for totals that already live elsewhere (a bus drop counter, an
// aggregated cache statistic) and must still expose the counter TYPE.
func (r *Registry) CounterFunc(name, help string, read func() float64) {
	r.register(metric{name: name, help: help, typ: "counter", read: read})
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[m.name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", m.name))
	}
	r.metrics[m.name] = m
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name so the output is stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	entries := make([]metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		entries = append(entries, r.metrics[name])
	}
	r.mu.Unlock()

	for _, m := range entries {
		// Read outside the registry lock: a gauge callback may itself take
		// locks (e.g. a cache size walking its shards).
		v := m.read()
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			m.name, m.help, m.name, m.typ, m.name, formatValue(v)); err != nil {
			return err
		}
	}
	return nil
}

// formatValue renders a sample value the way Prometheus expects: integers
// without an exponent or trailing zeros, everything else in shortest-float
// form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Bus fan-out accounting for the default bus, registered here so drops are
// visible in the Prometheus exposition the moment any layer starts using the
// spine.
var (
	_ = func() struct{} {
		RegisterGauge("ringsym_obs_subscribers", "Current subscribers on the default event bus.",
			func() float64 { return float64(Default.Stats().Subscribers) })
		Metrics.CounterFunc("ringsym_obs_events_published_total", "Events published to the default bus (only counted while subscribers exist).",
			func() float64 { return float64(Default.published.Load()) })
		Metrics.CounterFunc("ringsym_obs_events_dropped_total", "Events dropped by full subscriber rings on the default bus.",
			func() float64 { return float64(Default.dropped.Load()) })
		return struct{}{}
	}()
)
