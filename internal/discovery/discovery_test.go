package discovery

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ringsym/internal/engine"
	"ringsym/internal/netgen"
	"ringsym/internal/ring"
)

func newNetwork(t *testing.T, opt netgen.Options) *engine.Network {
	t.Helper()
	cfg, err := netgen.Generate(opt)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// checkPositions verifies a location-discovery result against the network's
// ground truth, accepting either global orientation of the agreed frame but
// requiring consistency.
func checkPositions(t *testing.T, nw *engine.Network, outputs []*Result) {
	t.Helper()
	pos := nw.InitialPositions()
	circ := nw.Circ()
	n := nw.N()
	leaders := 0
	for i, r := range outputs {
		if r.IsLeader {
			leaders++
		}
		if r.N != n {
			t.Fatalf("agent %d: discovered N = %d, want %d", i, r.N, n)
		}
		if len(r.Positions) != n || r.Positions[0] != 0 {
			t.Fatalf("agent %d: malformed positions %v", i, r.Positions)
		}
		cwOK, ccwOK := true, true
		for d := 0; d < n; d++ {
			cwWant := 2 * (((pos[(i+d)%n]-pos[i])%circ + circ) % circ)
			ccwWant := 2 * (((pos[i]-pos[((i-d)%n+n)%n])%circ + circ) % circ)
			if r.Positions[d] != cwWant {
				cwOK = false
			}
			if r.Positions[d] != ccwWant {
				ccwOK = false
			}
		}
		if !cwOK && !ccwOK {
			t.Fatalf("agent %d: positions %v match neither orientation", i, r.Positions)
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
}

func runDiscovery(t *testing.T, nw *engine.Network, opts Options) []*Result {
	t.Helper()
	res, err := engine.Run(nw, func(a *engine.Agent) (*Result, error) {
		return LocationDiscovery(a, opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Outputs
}

func TestLocationDiscoveryLazy(t *testing.T) {
	for _, n := range []int{6, 9, 12} {
		for _, common := range []bool{false, true} {
			opt := netgen.Options{N: n, IDBound: 64, Seed: int64(n), Model: ring.Lazy}
			if !common {
				opt.MixedChirality = true
				opt.ForceSplitChirality = true
			}
			nw := newNetwork(t, opt)
			outputs := runDiscovery(t, nw, Options{CommonSense: common, Seed: 11})
			checkPositions(t, nw, outputs)
			// Lemma 16: the sweep itself takes exactly n rounds.
			for i, r := range outputs {
				if r.RoundsDiscovery != n {
					t.Errorf("n=%d agent %d: sweep took %d rounds, want %d", n, i, r.RoundsDiscovery, n)
				}
			}
		}
	}
}

func TestLocationDiscoveryBasicOdd(t *testing.T) {
	for _, n := range []int{7, 11} {
		nw := newNetwork(t, netgen.Options{
			N: n, IDBound: 64, Seed: int64(n), Model: ring.Basic,
			MixedChirality: true, ForceSplitChirality: true,
		})
		outputs := runDiscovery(t, nw, Options{Seed: 3})
		checkPositions(t, nw, outputs)
		for i, r := range outputs {
			if r.RoundsDiscovery != n {
				t.Errorf("n=%d agent %d: sweep took %d rounds, want %d", n, i, r.RoundsDiscovery, n)
			}
		}
	}
}

func TestLocationDiscoveryPerceptive(t *testing.T) {
	for _, n := range []int{8, 12} {
		nw := newNetwork(t, netgen.Options{
			N: n, IDBound: 64, Seed: int64(n), Model: ring.Perceptive,
			MixedChirality: true, ForceSplitChirality: true,
		})
		outputs := runDiscovery(t, nw, Options{Seed: 3})
		checkPositions(t, nw, outputs)
		// Theorem 42: the discovery stage costs n/2 rounds plus a constant
		// overhead (three pivots and one completeness probe pair).
		for i, r := range outputs {
			if r.RoundsDiscovery > n/2+5 {
				t.Errorf("n=%d agent %d: perceptive discovery used %d rounds, expected about n/2", n, i, r.RoundsDiscovery)
			}
		}
	}
	// Odd n in the perceptive model falls back to the sweep.
	nw := newNetwork(t, netgen.Options{N: 9, IDBound: 64, Seed: 5, Model: ring.Perceptive, MixedChirality: true, ForceSplitChirality: true})
	checkPositions(t, nw, runDiscovery(t, nw, Options{Seed: 3}))
}

func TestLocationDiscoveryBasicEvenImpossible(t *testing.T) {
	nw := newNetwork(t, netgen.Options{N: 8, IDBound: 64, Seed: 2, Model: ring.Basic})
	_, err := engine.Run(nw, func(a *engine.Agent) (*Result, error) {
		return LocationDiscovery(a, Options{})
	})
	if !errors.Is(err, ErrNotSolvable) {
		t.Fatalf("got %v, want ErrNotSolvable", err)
	}
}

func TestLowerBoundRounds(t *testing.T) {
	if LowerBoundRounds(ring.Basic, 10) != 9 || LowerBoundRounds(ring.Lazy, 10) != 9 {
		t.Error("basic/lazy lower bound should be n-1")
	}
	if LowerBoundRounds(ring.Perceptive, 10) != 5 {
		t.Error("perceptive lower bound should be n/2")
	}
}

func TestTwinConfigurationValidation(t *testing.T) {
	circ := int64(1000)
	positions := []int64{0, 100, 300, 600}
	if _, err := TwinConfiguration(circ, []int64{0, 100, 300}, 5); err == nil {
		t.Error("odd n accepted")
	}
	if _, err := TwinConfiguration(circ, []int64{100, 0, 300, 600}, 5); err == nil {
		t.Error("unsorted positions accepted")
	}
	if _, err := TwinConfiguration(circ, positions, 0); err == nil {
		t.Error("delta 0 accepted")
	}
	if _, err := TwinConfiguration(circ, positions, 100000); err == nil {
		t.Error("oversized delta accepted")
	}
	twin, err := TwinConfiguration(circ, positions, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 110, 300, 610}
	for i := range want {
		if twin[i] != want[i] {
			t.Fatalf("twin = %v, want %v", twin, want)
		}
	}
}

// TestLemma5TwinWorldsIndistinguishable verifies the impossibility argument:
// for any schedule of basic-model rounds, the original configuration and its
// alternating perturbation generate identical observations for every agent,
// even though the configurations differ.
func TestLemma5TwinWorldsIndistinguishable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6 + 2*r.Intn(6) // even, 6..16
		circ := int64(1 << 16)
		cfg := netgen.MustGenerate(netgen.Options{N: n, Circ: circ, Seed: seed, Model: ring.Basic})
		positions := cfg.Positions
		twin, err := TwinConfiguration(circ, positions, 1)
		if err != nil {
			return false
		}
		// The twin really is a different world.
		same := true
		for i := range twin {
			if twin[i] != positions[i] {
				same = false
			}
		}
		if same {
			return false
		}
		schedule := make([][]ring.Direction, 30)
		for t := range schedule {
			dirs := make([]ring.Direction, n)
			for i := range dirs {
				if r.Intn(2) == 0 {
					dirs[i] = ring.Clockwise
				} else {
					dirs[i] = ring.Anticlockwise
				}
			}
			schedule[t] = dirs
		}
		eq, err := ObservationallyEquivalent(circ, positions, twin, schedule)
		return err == nil && eq
	}, &quick.Config{MaxCount: 40, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLemma5PerceptiveDistinguishes shows the contrast: with coll() available
// the two twin worlds are distinguishable (some agent observes a different
// first collision), which is why the perceptive model escapes Lemma 5.
func TestLemma5PerceptiveDistinguishes(t *testing.T) {
	circ := int64(1 << 12)
	cfg := netgen.MustGenerate(netgen.Options{N: 8, Circ: circ, Seed: 4, Model: ring.Perceptive})
	positions := cfg.Positions
	twin, err := TwinConfiguration(circ, positions, 2)
	if err != nil {
		t.Fatal(err)
	}
	stA, err := ring.New(ring.Config{Model: ring.Perceptive, Circ: circ, Positions: positions})
	if err != nil {
		t.Fatal(err)
	}
	stB, err := ring.New(ring.Config{Model: ring.Perceptive, Circ: circ, Positions: twin})
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]ring.Direction, 8)
	for i := range dirs {
		if i%2 == 0 {
			dirs[i] = ring.Clockwise
		} else {
			dirs[i] = ring.Anticlockwise
		}
	}
	outA, err := stA.ExecuteRound(dirs)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := stB.ExecuteRound(dirs)
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for i := range outA.Agents {
		if outA.Agents[i].Coll != outB.Agents[i].Coll {
			differ = true
		}
	}
	if !differ {
		t.Error("coll() observations should differ between the twin worlds")
	}
}

// TestSweepGuardDenseRing pins the runaway-guard bound of sweepDiscovery at
// its boundary: with one agent on every tick the sweep's visited list reaches
// exactly the circumference in ticks, which the guard must allow (the old
// bound compared a round count against half-ticks, twice as loose as
// intended, and truncated the circumference through int() on 32-bit
// platforms).
func TestSweepGuardDenseRing(t *testing.T) {
	const n = 8 // n == circ: every tick occupied
	positions := make([]int64, n)
	ids := make([]int, n)
	for i := range positions {
		positions[i] = int64(i)
		ids[i] = i + 1
	}
	nw, err := engine.New(engine.Config{
		Model: ring.Lazy, Circ: n, Positions: positions, IDs: ids, IDBound: 4 * n,
	})
	if err != nil {
		t.Fatal(err)
	}
	outputs := runDiscovery(t, nw, Options{Seed: 3})
	checkPositions(t, nw, outputs)
	for i, r := range outputs {
		if r.N != n {
			t.Fatalf("agent %d discovered n = %d, want %d", i, r.N, n)
		}
	}
}

// TestSweepRoundsExact pins that the leap-batched sweep consumes exactly n
// discovery rounds — the closed-form stop prevents the doubling batches from
// overshooting the return round the per-round loop stopped at.
func TestSweepRoundsExact(t *testing.T) {
	for _, tc := range []struct {
		model ring.Model
		n     int
	}{
		{ring.Lazy, 12}, {ring.Lazy, 9}, {ring.Basic, 9}, {ring.Perceptive, 9},
	} {
		nw := newNetwork(t, netgen.Options{N: tc.n, IDBound: 64, Seed: 5, Model: tc.model, MixedChirality: true, ForceSplitChirality: true})
		outputs := runDiscovery(t, nw, Options{Seed: 5})
		for i, r := range outputs {
			if r.RoundsDiscovery != tc.n {
				t.Fatalf("%v n=%d agent %d: sweep consumed %d rounds, want exactly %d",
					tc.model, tc.n, i, r.RoundsDiscovery, tc.n)
			}
		}
	}
}

// TestDiscoveryLeapMatchesLegacy runs full location discovery on the v2 leap
// runtime and on the v1 per-round legacy runtime (which executes every batch
// one round at a time) and demands identical outputs and round counts — the
// protocol-level leap-on/leap-off differential.
func TestDiscoveryLeapMatchesLegacy(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  netgen.Options
	}{
		{"lazy-even-mixed", netgen.Options{N: 10, IDBound: 64, Seed: 7, Model: ring.Lazy, MixedChirality: true, ForceSplitChirality: true}},
		{"basic-odd-common", netgen.Options{N: 9, IDBound: 64, Seed: 8, Model: ring.Basic}},
		{"perceptive-even-mixed", netgen.Options{N: 8, IDBound: 64, Seed: 9, Model: ring.Perceptive, MixedChirality: true, ForceSplitChirality: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			protocol := func(a *engine.Agent) (*Result, error) {
				return LocationDiscovery(a, Options{Seed: 11})
			}
			v2, err := engine.Run(newNetwork(t, tc.opt), protocol)
			if err != nil {
				t.Fatal(err)
			}
			v1, err := engine.RunLegacy(newNetwork(t, tc.opt), protocol)
			if err != nil {
				t.Fatal(err)
			}
			if v2.Rounds != v1.Rounds {
				t.Fatalf("rounds: leap %d, legacy %d", v2.Rounds, v1.Rounds)
			}
			for i := range v2.Outputs {
				a, b := v2.Outputs[i], v1.Outputs[i]
				if a.IsLeader != b.IsLeader || a.N != b.N ||
					a.RoundsCoordination != b.RoundsCoordination || a.RoundsDiscovery != b.RoundsDiscovery {
					t.Fatalf("agent %d: leap %+v, legacy %+v", i, a, b)
				}
				for j := range a.Positions {
					if a.Positions[j] != b.Positions[j] {
						t.Fatalf("agent %d position %d: leap %d, legacy %d", i, j, a.Positions[j], b.Positions[j])
					}
				}
			}
		})
	}
}
