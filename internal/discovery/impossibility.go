package discovery

import (
	"fmt"

	"ringsym/internal/geom"
	"ringsym/internal/ring"
)

// TwinConfiguration builds the Lemma 5 counterexample: for an even number of
// agents it perturbs the gaps alternately by +delta and −delta
// (x'_i = x_i + (−1)^i·delta), which changes the positions of the
// odd-indexed agents while leaving every even-length arc — and therefore
// every observation available in the basic model — unchanged.  Any protocol
// of the basic model behaves identically on the two configurations, so no
// agent can ever learn the gaps individually: location discovery is
// unsolvable.
//
// delta must be positive and smaller than every odd-indexed gap so that the
// perturbed configuration is still a valid one.
func TwinConfiguration(circ int64, positions []int64, delta int64) ([]int64, error) {
	n := len(positions)
	if n%2 != 0 {
		return nil, fmt.Errorf("%w: the Lemma 5 construction needs an even number of agents", ErrProtocol)
	}
	if !geom.SortedDistinct(circ, positions) {
		return nil, fmt.Errorf("%w: positions must be sorted and distinct", ErrProtocol)
	}
	circle, err := geom.New(circ)
	if err != nil {
		return nil, err
	}
	gaps := circle.Gaps(positions)
	if delta <= 0 {
		return nil, fmt.Errorf("%w: delta must be positive", ErrProtocol)
	}
	for i := 1; i < n; i += 2 {
		if delta >= gaps[i] {
			return nil, fmt.Errorf("%w: delta %d not smaller than gap %d at index %d", ErrProtocol, delta, gaps[i], i)
		}
	}
	twin := make([]int64, n)
	copy(twin, positions)
	for j := 1; j < n; j += 2 {
		twin[j] = positions[j] + delta
	}
	return twin, nil
}

// ObservationallyEquivalent executes the same schedule of objective direction
// assignments on two configurations and reports whether every agent receives
// exactly the same dist() observation in every round.  It is used to verify
// the Lemma 5 construction: with only dist() available (basic model), twin
// configurations cannot be told apart by any protocol.
func ObservationallyEquivalent(circ int64, posA, posB []int64, schedule [][]ring.Direction) (bool, error) {
	stA, err := ring.New(ring.Config{Model: ring.Basic, Circ: circ, Positions: posA, AllowSmall: true})
	if err != nil {
		return false, err
	}
	stB, err := ring.New(ring.Config{Model: ring.Basic, Circ: circ, Positions: posB, AllowSmall: true})
	if err != nil {
		return false, err
	}
	for _, dirs := range schedule {
		outA, err := stA.ExecuteRound(dirs)
		if err != nil {
			return false, err
		}
		outB, err := stB.ExecuteRound(dirs)
		if err != nil {
			return false, err
		}
		for i := range outA.Agents {
			if outA.Agents[i].DistCW != outB.Agents[i].DistCW {
				return false, nil
			}
		}
	}
	return true, nil
}
