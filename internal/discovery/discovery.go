// Package discovery provides the location-discovery front-ends of the paper
// (Section III-D and Section V-C), the impossibility construction of Lemma 5
// and the lower bounds of Lemma 6.
//
// Location discovery asks every agent to determine the initial position of
// every other agent relative to its own initial position.  The package
// dispatches on the model and the parity of n:
//
//   - lazy model (any n) and basic/perceptive model with odd n: solve the
//     coordination problems, then sweep the ring with a constant rotation
//     index (Lemma 16), n + o(n) rounds;
//   - perceptive model with even n: the Section V pipeline
//     (internal/perceptive), n/2 + o(n) rounds;
//   - basic model with even n: impossible (Lemma 5).
package discovery

import (
	"errors"
	"fmt"

	"ringsym/internal/core"
	"ringsym/internal/engine"
	"ringsym/internal/perceptive"
	"ringsym/internal/ring"
)

// Errors returned by the package.
var (
	// ErrNotSolvable is returned for the basic model with even n (Lemma 5).
	ErrNotSolvable = errors.New("discovery: location discovery is not solvable in the basic model with even n (Lemma 5)")
	// ErrProtocol indicates a violated invariant.
	ErrProtocol = errors.New("discovery: protocol invariant violated")
)

// Options configures location discovery.
type Options struct {
	// CommonSense promises that all agents already share a sense of
	// direction (Table II setting); coordination then uses Lemma 13.
	CommonSense bool
	// Seed drives the pseudo-random schedules.
	Seed int64
}

// Result is the outcome of location discovery for one agent.
type Result struct {
	// IsLeader reports whether this agent ended up as the leader.
	IsLeader bool
	// N is the discovered number of agents.
	N int
	// Positions[t] is the arc, in the agent's agreed clockwise direction,
	// from its initial position to the initial position of the agent at ring
	// distance t clockwise from it; Positions[0] = 0.  Half-ticks.
	Positions []int64
	// RoundsCoordination and RoundsDiscovery split the total cost into the
	// o(n) coordination part and the main discovery part.
	RoundsCoordination int
	RoundsDiscovery    int
}

// LocationDiscovery solves location discovery in the given agent's model,
// choosing the appropriate algorithm (see the package comment).
func LocationDiscovery(a *engine.Agent, opts Options) (*Result, error) {
	return engine.RunMachine(a, LocationDiscoveryMachine(a, opts))
}

// LocationDiscoveryMachine builds the model-dispatching discovery pipeline as
// a resumable machine for the engine's v3 scheduler; LocationDiscovery drives
// the same machine through the blocking dispatcher on the v1/v2 runtimes.
func LocationDiscoveryMachine(a *engine.Agent, opts Options) *engine.Proto[*Result] {
	return engine.NewProto(func(done func(*Result, error) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return LocationDiscoveryStep(a, opts, func(r *Result) (engine.Yield, engine.Cont) {
			return done(r, nil)
		})
	})
}

// LocationDiscoveryStep is the machine form of LocationDiscovery.
func LocationDiscoveryStep(a *engine.Agent, opts Options, k func(*Result) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	even := a.NParity() == engine.ParityEven
	switch a.Model() {
	case ring.Basic:
		if even {
			return engine.Abort(ErrNotSolvable)
		}
		return sweepDiscoveryStep(a, opts, 2, k)
	case ring.Lazy:
		return sweepDiscoveryStep(a, opts, 1, k)
	case ring.Perceptive:
		if even {
			return perceptiveDiscoveryStep(a, opts, k)
		}
		return sweepDiscoveryStep(a, opts, 2, k)
	default:
		return engine.Abort(fmt.Errorf("%w: unknown model %v", ErrProtocol, a.Model()))
	}
}

// perceptiveDiscoveryStep adapts the Section V pipeline to the package's
// Result.
func perceptiveDiscoveryStep(a *engine.Agent, opts Options, k func(*Result) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	return perceptive.LocationDiscoveryStep(a, perceptive.Options{Seed: opts.Seed}, func(r *perceptive.DiscoveryResult) (engine.Yield, engine.Cont) {
		return k(&Result{
			IsLeader:           r.IsLeader,
			N:                  r.N,
			Positions:          r.Positions,
			RoundsCoordination: r.RoundsCoordination + r.RoundsRingDist,
			RoundsDiscovery:    r.RoundsDistances,
		})
	})
}

// sweepDiscoveryStep implements Lemma 16: after the coordination problems are
// solved, the agents repeat a round with constant rotation index `step` (1 in
// the lazy model: only the leader moves; 2 in the basic model with odd n: the
// leader moves clockwise and everybody else anticlockwise).  Each round every
// agent advances by `step` ring positions and measures the arc it traversed;
// after exactly n rounds it is back at its pre-sweep slot, has visited every
// slot (gcd(step, n) = 1) and therefore knows every initial position as well
// as n itself.
func sweepDiscoveryStep(a *engine.Agent, opts Options, step int, k func(*Result) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	return core.CoordinateStep(a, core.Options{CommonSense: opts.CommonSense, Seed: opts.Seed}, func(coord *core.Coordination) (engine.Yield, engine.Cont) {
		f := coord.Frame
		coordRounds := f.RoundsUsed()

		dir := ring.Idle
		if step == 2 {
			dir = ring.Anticlockwise
		}
		if coord.IsLeader {
			dir = ring.Clockwise
		}

		full := f.FullCircle()
		start := f.Displacement()
		visited := []int64{start}
		// The sweep executes as leap batches of doubling size: the agent does
		// not know n, so it asks for exponentially growing constant-direction
		// batches and scans each returned displacement trace for the round at
		// which it is back at its pre-sweep position.  The engine solves that
		// stop condition in closed form (Frame.RoundUntil), so the batch ends
		// exactly at the return round — the same n rounds the per-round loop
		// consumed — in O(log n) scheduler visits instead of n.
		//
		// Runaway guard: positions are distinct integer ticks, so n never
		// exceeds the circumference in ticks (full is in half-ticks, twice
		// that).  The bound is kept in int64: converting the circumference to
		// int would truncate on 32-bit platforms.
		circTicks := full / 2
		var sweep func(batch int) (engine.Yield, engine.Cont)
		sweep = func(batch int) (engine.Yield, engine.Cont) {
			return f.RoundUntilStep(dir, start, batch, func(trace []engine.Observation) (engine.Yield, engine.Cont) {
				d := visited[len(visited)-1]
				returned := false
				for _, obs := range trace {
					d = (d + obs.Dist) % full
					if d == start {
						returned = true
						break
					}
					visited = append(visited, d)
					if int64(len(visited)) > circTicks {
						return engine.Abort(fmt.Errorf("%w: sweep did not return to its start", ErrProtocol))
					}
				}
				if !returned {
					return sweep(batch * 2)
				}
				n := len(visited)

				// Identify the sweep step at which the agent stood on its own
				// initial position (displacement zero) and read everybody's
				// position off the visited list: the slot visited at step j is
				// step·j positions clockwise of the pre-sweep slot.
				selfStep := -1
				for j, v := range visited {
					if ((v-0)%full+full)%full == 0 {
						selfStep = j
						break
					}
				}
				if selfStep < 0 {
					return engine.Abort(fmt.Errorf("%w: own initial position was not visited", ErrProtocol))
				}
				inv := 1
				if step == 2 {
					inv = (n + 1) / 2 // inverse of 2 modulo odd n
				}
				positions := make([]int64, n)
				for t := 0; t < n; t++ {
					j := (selfStep + t*inv) % n
					positions[t] = ((visited[j]-visited[selfStep])%full + full) % full
				}
				return k(&Result{
					IsLeader:           coord.IsLeader,
					N:                  n,
					Positions:          positions,
					RoundsCoordination: coordRounds,
					RoundsDiscovery:    f.RoundsUsed() - coordRounds,
				})
			})
		}
		return sweep(1)
	})
}

// LowerBoundRounds returns the worst-case lower bound of Lemma 6 on the
// number of rounds needed for location discovery.
func LowerBoundRounds(model ring.Model, n int) int {
	if model == ring.Perceptive {
		return n / 2
	}
	return n - 1
}
