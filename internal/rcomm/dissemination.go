package rcomm

import (
	"fmt"

	"ringsym/internal/engine"
)

// SideInfo describes what an agent learned about the nearest source on one
// side of the ring during a dissemination.
type SideInfo struct {
	// Found reports whether any source within the dissemination distance
	// exists on this side.
	Found bool
	// Payload is the nearest source's payload.
	Payload uint64
	// Hops is the ring distance to that source (1..distance).
	Hops int
}

// sidePair carries both sides' results through the blocking wrappers.
type sidePair struct {
	left, right SideInfo
}

// Disseminate implements the information dissemination task of
// Corollary 33/34: every source agent floods its payload up to the given ring
// distance in both directions, hop by hop.  Each agent learns, for each of
// its two sides, the payload and ring distance of the nearest source on that
// side (its own payload is not included).  Sides are relative to the agent's
// frame: "left" is the frame-anticlockwise side.
//
// Cost: distance relay steps of 8·(1+payloadBits+hopBits) rounds each, i.e.
// O(distance · payloadBits) rounds.  The configuration is restored
// afterwards.
func (l *Link) Disseminate(isSource bool, payload uint64, payloadBits, distance int) (left, right SideInfo, err error) {
	p, err := engine.RunStep(l.frame.Agent(), func(k func(sidePair) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return l.DisseminateStep(isSource, payload, payloadBits, distance, func(left, right SideInfo) (engine.Yield, engine.Cont) {
			return k(sidePair{left: left, right: right})
		})
	})
	return p.left, p.right, err
}

// DisseminateStep is the machine form of Disseminate.
func (l *Link) DisseminateStep(isSource bool, payload uint64, payloadBits, distance int, k func(left, right SideInfo) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	if distance < 1 {
		return engine.Abort(fmt.Errorf("rcomm: dissemination distance must be positive, got %d", distance))
	}
	if payloadBits < 1 {
		return engine.Abort(fmt.Errorf("rcomm: payloadBits must be positive, got %d", payloadBits))
	}
	hopBits := bitsFor(distance)
	msgBits := 1 + payloadBits + hopBits
	if 2*msgBits > 62 {
		return engine.Abort(fmt.Errorf("%w: message of %d bits", ErrBadBits, msgBits))
	}
	enc := func(present bool, payload uint64, hops int) uint64 {
		if !present {
			return 0
		}
		return 1 | payload<<1 | uint64(hops)<<(1+payloadBits)
	}
	dec := func(w uint64) (bool, uint64, int) {
		if w&1 == 0 {
			return false, 0, 0
		}
		payload := (w >> 1) & (uint64(1)<<payloadBits - 1)
		hops := int((w >> (1 + payloadBits)) & (uint64(1)<<hopBits - 1))
		return true, payload, hops
	}

	var left, right SideInfo
	// outRight travels towards our right neighbour (and onwards in that
	// objective direction); outLeft symmetric.
	var step func(i int, outLeft, outRight uint64) (engine.Yield, engine.Cont)
	step = func(i int, outLeft, outRight uint64) (engine.Yield, engine.Cont) {
		if i == distance {
			return k(left, right)
		}
		return l.ExchangeStep(outLeft, outRight, msgBits, func(fromLeft, fromRight uint64) (engine.Yield, engine.Cont) {
			// A message arriving from the left neighbour originated on our left
			// side; the first one to arrive is from the nearest source.
			if present, pl, hops := dec(fromLeft); present && !left.Found {
				left = SideInfo{Found: true, Payload: pl, Hops: hops}
			}
			if present, pl, hops := dec(fromRight); present && !right.Found {
				right = SideInfo{Found: true, Payload: pl, Hops: hops}
			}
			// Relay: what came from the left continues to the right with one
			// more hop on its counter, and vice versa.  Messages that already
			// reached the target distance die out because the loop ends.
			return step(i+1, relay(fromRight, dec, enc), relay(fromLeft, dec, enc))
		})
	}
	first := enc(isSource, payload, 1)
	return step(0, first, first)
}

// relay re-encodes a received message with an incremented hop counter.
func relay(w uint64, dec func(uint64) (bool, uint64, int), enc func(bool, uint64, int) uint64) uint64 {
	present, payload, hops := dec(w)
	if !present {
		return 0
	}
	return enc(true, payload, hops+1)
}

// maxResult carries AggregateMax's result through the blocking wrapper.
type maxResult struct {
	max   uint64
	found bool
}

// AggregateMax floods source values up to the given ring distance and returns
// the maximum value among all sources within that distance of this agent
// (including the agent itself when it is a source).  found reports whether
// any such source exists.
//
// Cost: distance relay steps of 8·(1+valueBits) rounds each.
func (l *Link) AggregateMax(isSource bool, value uint64, valueBits, distance int) (max uint64, found bool, err error) {
	r, err := engine.RunStep(l.frame.Agent(), func(k func(maxResult) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return l.AggregateMaxStep(isSource, value, valueBits, distance, func(max uint64, found bool) (engine.Yield, engine.Cont) {
			return k(maxResult{max: max, found: found})
		})
	})
	return r.max, r.found, err
}

// AggregateMaxStep is the machine form of AggregateMax.
func (l *Link) AggregateMaxStep(isSource bool, value uint64, valueBits, distance int, k func(max uint64, found bool) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	if distance < 1 {
		return engine.Abort(fmt.Errorf("rcomm: aggregation distance must be positive, got %d", distance))
	}
	if valueBits < 1 {
		return engine.Abort(fmt.Errorf("rcomm: valueBits must be positive, got %d", valueBits))
	}
	msgBits := 1 + valueBits
	if 2*msgBits > 62 {
		return engine.Abort(fmt.Errorf("%w: message of %d bits", ErrBadBits, msgBits))
	}
	enc := func(present bool, v uint64) uint64 {
		if !present {
			return 0
		}
		return 1 | v<<1
	}
	dec := func(w uint64) (bool, uint64) {
		if w&1 == 0 {
			return false, 0
		}
		return true, w >> 1
	}
	var max uint64
	var found bool
	if isSource {
		max, found = value, true
	}
	// bestFromLeft carries the running maximum over sources within `step`
	// hops on our left side; it is what we forward to the right.
	bestFromLeft := enc(isSource, value)
	bestFromRight := bestFromLeft
	var step func(i int) (engine.Yield, engine.Cont)
	step = func(i int) (engine.Yield, engine.Cont) {
		if i == distance {
			return k(max, found)
		}
		return l.ExchangeStep(bestFromRight, bestFromLeft, msgBits, func(fromLeft, fromRight uint64) (engine.Yield, engine.Cont) {
			if present, v := dec(fromLeft); present {
				if !found || v > max {
					max, found = v, true
				}
				if p, cur := dec(bestFromLeft); !p || v > cur {
					bestFromLeft = enc(true, v)
				}
			}
			if present, v := dec(fromRight); present {
				if !found || v > max {
					max, found = v, true
				}
				if p, cur := dec(bestFromRight); !p || v > cur {
					bestFromRight = enc(true, v)
				}
			}
			return step(i + 1)
		})
	}
	return step(0)
}

// bitsFor returns the number of bits needed to represent values in [0..v].
func bitsFor(v int) int {
	b := 0
	for x := v; x > 0; x >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}
