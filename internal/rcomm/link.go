package rcomm

import (
	"fmt"

	"ringsym/internal/core"
	"ringsym/internal/engine"
	"ringsym/internal/ring"
)

// Link is the per-agent handle of the neighbour communication layer.  It is
// created from the outcome of neighbour discovery and must be used while the
// ring is in the same configuration (every primitive of this package restores
// the configuration, so arbitrary Link operations can be chained).  The frame
// must not be flipped while a Link built from it is still in use.
type Link struct {
	frame *core.Frame
	nb    Neighbors

	// schedBuf is the schedule scratch reused by the batched exchange
	// primitives.
	schedBuf []ring.Direction
}

// NewLink builds a Link for the given frame from its neighbour information.
func NewLink(f *core.Frame, nb Neighbors) *Link {
	return &Link{frame: f, nb: nb}
}

// Establish runs neighbour discovery and returns a ready-to-use Link
// (Corollary 32's O(log N) preprocessing).
func Establish(f *core.Frame) (*Link, error) {
	nb, err := NeighborDiscovery(f)
	if err != nil {
		return nil, err
	}
	return NewLink(f, nb), nil
}

// EstablishStep is the machine form of Establish.
func EstablishStep(f *core.Frame, k func(*Link) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	return NeighborDiscoveryStep(f, func(nb Neighbors) (engine.Yield, engine.Cont) {
		return k(NewLink(f, nb))
	})
}

// Frame returns the frame the link operates on.
func (l *Link) Frame() *core.Frame { return l.frame }

// Neighbors returns the neighbour information the link was built from.
func (l *Link) Neighbors() Neighbors { return l.nb }

// ExchangeBit implements Proposition 31: the agent transmits one bit to both
// neighbours and learns the bit transmitted by each of them.  Cost: 4 rounds
// (two information rounds, each followed by a reversed round), submitted as
// one leap batch.
func (l *Link) ExchangeBit(bit int) (left, right int, err error) {
	if bit != 0 && bit != 1 {
		return 0, 0, fmt.Errorf("rcomm: bit must be 0 or 1, got %d", bit)
	}
	lw, rw, err := l.ExchangeWord(uint64(bit), 1)
	return int(lw), int(rw), err
}

// appendBitSchedule appends the 4-round schedule of one bit exchange: the
// information round (frame-clockwise iff the bit is 1) with its reversed
// round, then the opposite information round with its reversed round.
func appendBitSchedule(sched []ring.Direction, bit uint64) []ring.Direction {
	dir1 := ring.Anticlockwise
	if bit == 1 {
		dir1 = ring.Clockwise
	}
	return append(sched, dir1, dir1.Opposite(), dir1.Opposite(), dir1)
}

// decodeBitExchange recovers the neighbours' bits from the two information
// rounds of one bit exchange (the observations at schedule offsets 0 and 2).
func (l *Link) decodeBitExchange(bit uint64, obs1, obs2 engine.Observation) (left, right int) {
	// In the round where we moved clockwise we probed the right neighbour; in
	// the other round the left neighbour.
	cwRound, cwObs := 1, obs1
	ccwObs := obs2
	if bit == 0 {
		cwRound, cwObs = 2, obs2
		ccwObs = obs1
	}
	ccwRound := 3 - cwRound

	// The right neighbour sits on our frame-clockwise side, so its own
	// frame-clockwise direction points at us exactly when its sense of
	// direction is opposite to ours; symmetrically for the left neighbour.
	right = decodeNeighbourBit(cwRound, tight(cwObs, l.nb.RightGap), !l.nb.RightSameSense)
	left = decodeNeighbourBit(ccwRound, tight(ccwObs, l.nb.LeftGap), l.nb.LeftSameSense)
	return left, right
}

// tight reports whether the observation's first collision happened exactly at
// half the gap to the probed neighbour, i.e. that neighbour moved towards us.
func tight(obs engine.Observation, gap int64) bool {
	return obs.Collided && 2*obs.Coll == gap
}

// decodeNeighbourBit recovers the neighbour's transmitted bit.
//
// Every agent moves frame-clockwise in round 1 iff its bit is 1 (and the
// opposite in round 2).  "towards" reports whether the neighbour moved
// towards us in the given round; movedCWTowardsUs reports whether the
// neighbour's frame-clockwise direction points at us (true when we probed our
// right neighbour and it has the opposite sense, or we probed our left
// neighbour and it has the same sense).
func decodeNeighbourBit(round int, towards, movedCWTowardsUs bool) int {
	// The neighbour chose its frame-clockwise direction in this round iff
	// (round == 1) == (its bit == 1).
	choseCW := towards == movedCWTowardsUs
	bitIsOne := choseCW == (round == 1)
	if bitIsOne {
		return 1
	}
	return 0
}

// wordPair carries the two directions' words through the blocking wrappers.
type wordPair struct {
	left, right uint64
}

// ExchangeWord transmits a word of the given width (LSB first) to both
// neighbours and returns the words received from the left and right
// neighbours.  Cost: 4·bits rounds.
//
// The whole schedule depends only on the agent's own word, so all 4·bits
// rounds are submitted as one leap batch — one barrier crossing per word
// exchange instead of one per round — and the bits are decoded from the
// returned trace.  The round sequence is identical to bit-by-bit exchange,
// so the configuration-restoring property is preserved.
func (l *Link) ExchangeWord(word uint64, bits int) (left, right uint64, err error) {
	p, err := engine.RunStep(l.frame.Agent(), func(k func(wordPair) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return l.ExchangeWordStep(word, bits, func(left, right uint64) (engine.Yield, engine.Cont) {
			return k(wordPair{left: left, right: right})
		})
	})
	return p.left, p.right, err
}

// ExchangeWordStep is the machine form of ExchangeWord.
func (l *Link) ExchangeWordStep(word uint64, bits int, k func(left, right uint64) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	if bits <= 0 || bits > 63 {
		return engine.Abort(fmt.Errorf("%w: %d bits", ErrBadBits, bits))
	}
	sched := l.schedBuf[:0]
	for i := 0; i < bits; i++ {
		sched = appendBitSchedule(sched, (word>>i)&1)
	}
	l.schedBuf = sched
	return l.frame.RoundScheduleStep(sched, func(trace []engine.Observation) (engine.Yield, engine.Cont) {
		var left, right uint64
		for i := 0; i < bits; i++ {
			lb, rb := l.decodeBitExchange((word>>i)&1, trace[4*i], trace[4*i+2])
			left |= uint64(lb) << i
			right |= uint64(rb) << i
		}
		return k(left, right)
	})
}

// Exchange transmits possibly different words to the left and right
// neighbours (each of the given width) and returns the words each neighbour
// addressed to this agent.  Cost: 8·bits rounds.
func (l *Link) Exchange(toLeft, toRight uint64, bits int) (fromLeft, fromRight uint64, err error) {
	p, err := engine.RunStep(l.frame.Agent(), func(k func(wordPair) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return l.ExchangeStep(toLeft, toRight, bits, func(fromLeft, fromRight uint64) (engine.Yield, engine.Cont) {
			return k(wordPair{left: fromLeft, right: fromRight})
		})
	})
	return p.left, p.right, err
}

// ExchangeStep is the machine form of Exchange.
func (l *Link) ExchangeStep(toLeft, toRight uint64, bits int, k func(fromLeft, fromRight uint64) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	if bits <= 0 || 2*bits > 62 {
		return engine.Abort(fmt.Errorf("%w: %d bits per side", ErrBadBits, bits))
	}
	mask := uint64(1)<<bits - 1
	packed := (toRight & mask) | (toLeft&mask)<<bits
	return l.ExchangeWordStep(packed, 2*bits, func(leftWord, rightWord uint64) (engine.Yield, engine.Cont) {
		var fromLeft, fromRight uint64
		// Our left neighbour packed [its toRight | its toLeft<<bits].  We are
		// its right neighbour exactly when it has the same sense of direction.
		if l.nb.LeftSameSense {
			fromLeft = leftWord & mask
		} else {
			fromLeft = (leftWord >> bits) & mask
		}
		// Our right neighbour: we are its left neighbour when senses agree.
		if l.nb.RightSameSense {
			fromRight = (rightWord >> bits) & mask
		} else {
			fromRight = rightWord & mask
		}
		return k(fromLeft, fromRight)
	})
}
