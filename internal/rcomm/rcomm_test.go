package rcomm

import (
	"errors"
	"testing"

	"ringsym/internal/core"
	"ringsym/internal/engine"
	"ringsym/internal/netgen"
	"ringsym/internal/ring"
)

func newNetwork(t *testing.T, opt netgen.Options) *engine.Network {
	t.Helper()
	opt.Model = ring.Perceptive
	cfg, err := netgen.Generate(opt)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// frameNeighbour returns the ring index of agent i's neighbour on its
// frame-clockwise (right=true) or frame-anticlockwise side, at the given hop
// distance.
func frameNeighbour(nw *engine.Network, i int, right bool, hops int) int {
	n := nw.N()
	step := hops
	if nw.ChiralityOf(i) != right {
		step = -hops
	}
	return ((i+step)%n + n) % n
}

// trueGapTo returns the arc (half-ticks) from agent i to its immediate
// frame-side neighbour.
func trueGapTo(nw *engine.Network, i int, right bool) int64 {
	gaps := nw.Gaps()
	n := nw.N()
	if nw.ChiralityOf(i) == right {
		return 2 * gaps[i]
	}
	return 2 * gaps[((i-1)%n+n)%n]
}

func TestNeighborDiscovery(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		nw := newNetwork(t, netgen.Options{N: 9, IDBound: 64, Seed: seed, MixedChirality: true, ForceSplitChirality: true})
		res, err := engine.Run(nw, func(a *engine.Agent) (Neighbors, error) {
			return NeighborDiscovery(core.NewFrame(a))
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, nb := range res.Outputs {
			if want := trueGapTo(nw, i, true); nb.RightGap != want {
				t.Errorf("seed %d agent %d: right gap %d, want %d", seed, i, nb.RightGap, want)
			}
			if want := trueGapTo(nw, i, false); nb.LeftGap != want {
				t.Errorf("seed %d agent %d: left gap %d, want %d", seed, i, nb.LeftGap, want)
			}
			rIdx := frameNeighbour(nw, i, true, 1)
			if want := nw.ChiralityOf(i) == nw.ChiralityOf(rIdx); nb.RightSameSense != want {
				t.Errorf("seed %d agent %d: right same-sense %v, want %v", seed, i, nb.RightSameSense, want)
			}
			lIdx := frameNeighbour(nw, i, false, 1)
			if want := nw.ChiralityOf(i) == nw.ChiralityOf(lIdx); nb.LeftSameSense != want {
				t.Errorf("seed %d agent %d: left same-sense %v, want %v", seed, i, nb.LeftSameSense, want)
			}
		}
		// The configuration must be restored.
		init, cur := nw.InitialPositions(), nw.CurrentPositions()
		for i := range init {
			if init[i] != cur[i] {
				t.Fatalf("seed %d: configuration not restored", seed)
			}
		}
	}
}

func TestNeighborDiscoveryRequiresPerceptive(t *testing.T) {
	cfg := netgen.MustGenerate(netgen.Options{N: 6, Seed: 1, Model: ring.Basic})
	cfg.Model = ring.Basic
	nw, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = engine.Run(nw, func(a *engine.Agent) (Neighbors, error) {
		return NeighborDiscovery(core.NewFrame(a))
	})
	if !errors.Is(err, ErrNeedPerceptive) {
		t.Fatalf("got %v, want ErrNeedPerceptive", err)
	}
}

func TestExchangeBit(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		nw := newNetwork(t, netgen.Options{N: 8, IDBound: 64, Seed: seed, MixedChirality: true, ForceSplitChirality: true})
		myBit := func(id int) int { return (id / 3) % 2 }
		type out struct {
			left, right int
		}
		res, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
			link, err := Establish(core.NewFrame(a))
			if err != nil {
				return out{}, err
			}
			l, r, err := link.ExchangeBit(myBit(a.ID()))
			return out{l, r}, err
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, o := range res.Outputs {
			rIdx := frameNeighbour(nw, i, true, 1)
			lIdx := frameNeighbour(nw, i, false, 1)
			if want := myBit(nw.IDOf(rIdx)); o.right != want {
				t.Errorf("seed %d agent %d: right bit %d, want %d", seed, i, o.right, want)
			}
			if want := myBit(nw.IDOf(lIdx)); o.left != want {
				t.Errorf("seed %d agent %d: left bit %d, want %d", seed, i, o.left, want)
			}
		}
	}
}

func TestExchangeBitValidation(t *testing.T) {
	nw := newNetwork(t, netgen.Options{N: 6, Seed: 2})
	_, err := engine.Run(nw, func(a *engine.Agent) (struct{}, error) {
		link, err := Establish(core.NewFrame(a))
		if err != nil {
			return struct{}{}, err
		}
		_, _, err = link.ExchangeBit(7)
		return struct{}{}, err
	})
	if err == nil {
		t.Fatal("bit=7 accepted")
	}
}

func TestExchangeWordAndExchange(t *testing.T) {
	nw := newNetwork(t, netgen.Options{N: 7, IDBound: 64, Seed: 9, MixedChirality: true, ForceSplitChirality: true})
	const bits = 6
	type out struct {
		wordLeft, wordRight uint64
		fromLeft, fromRight uint64
	}
	res, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
		link, err := Establish(core.NewFrame(a))
		if err != nil {
			return out{}, err
		}
		wl, wr, err := link.ExchangeWord(uint64(a.ID()), bits)
		if err != nil {
			return out{}, err
		}
		// Directed exchange: send ID+1 to the left neighbour, ID+2 to the right.
		fl, fr, err := link.Exchange(uint64(a.ID()+1), uint64(a.ID()+2), bits+2)
		if err != nil {
			return out{}, err
		}
		return out{wl, wr, fl, fr}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		rIdx := frameNeighbour(nw, i, true, 1)
		lIdx := frameNeighbour(nw, i, false, 1)
		if o.wordRight != uint64(nw.IDOf(rIdx)) || o.wordLeft != uint64(nw.IDOf(lIdx)) {
			t.Errorf("agent %d: word exchange got L=%d R=%d, want L=%d R=%d",
				i, o.wordLeft, o.wordRight, nw.IDOf(lIdx), nw.IDOf(rIdx))
		}
		// The right neighbour sent "ID+1 to its left, ID+2 to its right"; what
		// it addressed to us depends on which of its sides we are on.
		wantFromRight := uint64(nw.IDOf(rIdx) + 1)
		if nw.ChiralityOf(i) != nw.ChiralityOf(rIdx) {
			wantFromRight = uint64(nw.IDOf(rIdx) + 2)
		}
		wantFromLeft := uint64(nw.IDOf(lIdx) + 2)
		if nw.ChiralityOf(i) != nw.ChiralityOf(lIdx) {
			wantFromLeft = uint64(nw.IDOf(lIdx) + 1)
		}
		if o.fromRight != wantFromRight || o.fromLeft != wantFromLeft {
			t.Errorf("agent %d: directed exchange got L=%d R=%d, want L=%d R=%d",
				i, o.fromLeft, o.fromRight, wantFromLeft, wantFromRight)
		}
	}
}

func TestDisseminate(t *testing.T) {
	nw := newNetwork(t, netgen.Options{N: 11, IDBound: 128, Seed: 14, MixedChirality: true, ForceSplitChirality: true})
	// Sources: the two agents with the largest IDs.
	ids := make([]int, nw.N())
	for i := range ids {
		ids[i] = nw.IDOf(i)
	}
	max1, max2 := 0, 0
	for _, id := range ids {
		if id > max1 {
			max1, max2 = id, max1
		} else if id > max2 {
			max2 = id
		}
	}
	isSource := func(id int) bool { return id == max1 || id == max2 }
	const distance = 3
	type out struct {
		left, right SideInfo
	}
	res, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
		link, err := Establish(core.NewFrame(a))
		if err != nil {
			return out{}, err
		}
		l, r, err := link.Disseminate(isSource(a.ID()), uint64(a.ID()), 8, distance)
		return out{l, r}, err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: nearest source within `distance` hops on each frame side.
	nearest := func(i int, right bool) (bool, int, int) {
		for h := 1; h <= distance; h++ {
			j := frameNeighbour(nw, i, right, h)
			if isSource(nw.IDOf(j)) {
				return true, nw.IDOf(j), h
			}
		}
		return false, 0, 0
	}
	for i, o := range res.Outputs {
		for _, side := range []struct {
			name  string
			got   SideInfo
			right bool
		}{{"left", o.left, false}, {"right", o.right, true}} {
			found, id, hops := nearest(i, side.right)
			if side.got.Found != found {
				t.Errorf("agent %d %s: found %v, want %v", i, side.name, side.got.Found, found)
				continue
			}
			if found && (int(side.got.Payload) != id || side.got.Hops != hops) {
				t.Errorf("agent %d %s: payload %d hops %d, want %d %d",
					i, side.name, side.got.Payload, side.got.Hops, id, hops)
			}
		}
	}
}

// TestDisseminateSparse checks the pipelined Corollary 34 variant against the
// same ground truth as the generic Disseminate, with sources far enough
// apart, and verifies that it is cheaper than the generic version for long
// payloads.
func TestDisseminateSparse(t *testing.T) {
	nw := newNetwork(t, netgen.Options{N: 12, IDBound: 128, Seed: 31, MixedChirality: true, ForceSplitChirality: true})
	// Two sources on opposite sides of the ring (ring distance 6 >= distance).
	srcA, srcB := 0, 6
	isSource := func(idx int) bool { return idx == srcA || idx == srcB }
	const distance = 3
	const payloadBits = 8
	type out struct {
		left, right   SideInfo
		sparseRounds  int
		genericRounds int
	}
	idxOf := map[int]int{}
	for i := 0; i < nw.N(); i++ {
		idxOf[nw.IDOf(i)] = i
	}
	res, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
		link, err := Establish(core.NewFrame(a))
		if err != nil {
			return out{}, err
		}
		me := idxOf[a.ID()]
		before := a.RoundsUsed()
		l, r, err := link.DisseminateSparse(isSource(me), uint64(a.ID()), payloadBits, distance)
		if err != nil {
			return out{}, err
		}
		mid := a.RoundsUsed()
		if _, _, err := link.Disseminate(isSource(me), uint64(a.ID()), payloadBits, distance); err != nil {
			return out{}, err
		}
		return out{l, r, mid - before, a.RoundsUsed() - mid}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	nearest := func(i int, right bool) (bool, int, int) {
		for h := 1; h <= distance; h++ {
			j := frameNeighbour(nw, i, right, h)
			if isSource(j) {
				return true, nw.IDOf(j), h
			}
		}
		return false, 0, 0
	}
	for i, o := range res.Outputs {
		for _, side := range []struct {
			name  string
			got   SideInfo
			right bool
		}{{"left", o.left, false}, {"right", o.right, true}} {
			found, id, hops := nearest(i, side.right)
			if side.got.Found != found || (found && (int(side.got.Payload) != id || side.got.Hops != hops)) {
				t.Errorf("agent %d %s: got %+v, want found=%v payload=%d hops=%d",
					i, side.name, side.got, found, id, hops)
			}
		}
		if o.sparseRounds >= o.genericRounds {
			t.Errorf("agent %d: sparse dissemination (%d rounds) not cheaper than generic (%d rounds)",
				i, o.sparseRounds, o.genericRounds)
		}
	}
}

func TestDisseminateSparseValidation(t *testing.T) {
	nw := newNetwork(t, netgen.Options{N: 6, Seed: 9})
	_, err := engine.Run(nw, func(a *engine.Agent) (struct{}, error) {
		link, err := Establish(core.NewFrame(a))
		if err != nil {
			return struct{}{}, err
		}
		if _, _, err := link.DisseminateSparse(false, 0, 8, 0); err == nil {
			return struct{}{}, errors.New("distance 0 accepted")
		}
		if _, _, err := link.DisseminateSparse(false, 0, 0, 2); err == nil {
			return struct{}{}, errors.New("payloadBits 0 accepted")
		}
		if _, _, err := link.DisseminateSparse(false, 0, 61, 2); err == nil {
			return struct{}{}, errors.New("oversized payload accepted")
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDisseminateValidation(t *testing.T) {
	nw := newNetwork(t, netgen.Options{N: 6, Seed: 3})
	_, err := engine.Run(nw, func(a *engine.Agent) (struct{}, error) {
		link, err := Establish(core.NewFrame(a))
		if err != nil {
			return struct{}{}, err
		}
		if _, _, err := link.Disseminate(false, 0, 8, 0); err == nil {
			return struct{}{}, errors.New("distance 0 accepted")
		}
		if _, _, err := link.Disseminate(false, 0, 0, 3); err == nil {
			return struct{}{}, errors.New("payloadBits 0 accepted")
		}
		if _, _, err := link.Disseminate(false, 0, 40, 3); err == nil {
			return struct{}{}, errors.New("oversized message accepted")
		}
		if _, _, err := link.AggregateMax(false, 0, 0, 3); err == nil {
			return struct{}{}, errors.New("valueBits 0 accepted")
		}
		if _, _, err := link.AggregateMax(false, 0, 8, 0); err == nil {
			return struct{}{}, errors.New("aggregate distance 0 accepted")
		}
		if _, _, err := link.ExchangeWord(0, 0); err == nil {
			return struct{}{}, errors.New("0-bit word accepted")
		}
		if _, _, err := link.Exchange(0, 0, 40); err == nil {
			return struct{}{}, errors.New("oversized exchange accepted")
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggregateMax(t *testing.T) {
	nw := newNetwork(t, netgen.Options{N: 10, IDBound: 256, Seed: 21, MixedChirality: true, ForceSplitChirality: true})
	const distance = 2
	// Every agent is a source with its own ID: the aggregate is the maximum
	// ID within ring distance 2 (in either direction).
	res, err := engine.Run(nw, func(a *engine.Agent) (uint64, error) {
		link, err := Establish(core.NewFrame(a))
		if err != nil {
			return 0, err
		}
		max, found, err := link.AggregateMax(true, uint64(a.ID()), 9, distance)
		if err != nil {
			return 0, err
		}
		if !found {
			return 0, errors.New("aggregate found nothing")
		}
		return max, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	n := nw.N()
	for i, got := range res.Outputs {
		want := nw.IDOf(i)
		for h := 1; h <= distance; h++ {
			for _, j := range []int{((i+h)%n + n) % n, ((i-h)%n + n) % n} {
				if nw.IDOf(j) > want {
					want = nw.IDOf(j)
				}
			}
		}
		if int(got) != want {
			t.Errorf("agent %d: max %d, want %d", i, got, want)
		}
	}
}
