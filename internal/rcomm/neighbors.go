// Package rcomm implements the communication layer of Section V-A of the
// paper: in the perceptive model the position of the first collision lets
// neighbouring agents exchange information even though the model has no
// messages.  The package provides neighbour discovery (Algorithm 3), a 1-bit
// exchange between neighbours (Proposition 31), word exchange, and
// information dissemination along the ring (Corollaries 33 and 34), which
// together simulate a message-passing ring on top of the bouncing-agents
// model.
//
// None of the primitives requires a common sense of direction: every agent
// learns the relative orientation of its neighbours during neighbour
// discovery and all bookkeeping is done in each agent's own frame.  Every
// round issued by this package is paired with a reversed round, so the
// configuration of the ring (and hence the measured neighbour gaps) is
// restored after every operation.
package rcomm

import (
	"errors"
	"fmt"

	"ringsym/internal/comb"
	"ringsym/internal/core"
	"ringsym/internal/engine"
	"ringsym/internal/ring"
)

// Errors returned by the package.
var (
	ErrNeedPerceptive = errors.New("rcomm: the communication layer requires the perceptive model")
	ErrNoNeighbour    = errors.New("rcomm: neighbour discovery failed to locate a neighbour")
	ErrBadBits        = errors.New("rcomm: unsupported word width")
)

// Neighbors is the outcome of neighbour discovery for one agent.  Gaps are in
// half-ticks (observation units) and sides are relative to the agent's frame
// at the time of discovery.
type Neighbors struct {
	// RightGap is the arc to the neighbour on the agent's frame-clockwise
	// side.
	RightGap int64
	// LeftGap is the arc to the neighbour on the agent's frame-anticlockwise
	// side.
	LeftGap int64
	// RightSameSense reports whether the right neighbour's frame clockwise
	// direction coincides with this agent's.
	RightSameSense bool
	// LeftSameSense is the analogous flag for the left neighbour.
	LeftSameSense bool
}

// NeighborDiscovery implements Algorithm 3.  Every agent probes its
// neighbourhood for O(log N) paired rounds; because any two identifiers
// differ in some bit, each agent is guaranteed a round in which it moves
// towards each neighbour while that neighbour moves towards it, which pins
// the gap to exactly half the distance of the first collision.  Whether the
// tight collision happened in a differing-bit round or in the all-clockwise /
// all-anticlockwise round reveals the neighbour's relative orientation.
//
// Cost: 4·⌈log2 N⌉ + 4 rounds.  Positions are restored afterwards.
func NeighborDiscovery(f *core.Frame) (Neighbors, error) {
	return engine.RunStep(f.Agent(), func(k func(Neighbors) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return NeighborDiscoveryStep(f, k)
	})
}

// NeighborDiscoveryStep is the machine form of NeighborDiscovery.
func NeighborDiscoveryStep(f *core.Frame, k func(Neighbors) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	if !f.Agent().Model().RevealsCollision() {
		return engine.Abort(ErrNeedPerceptive)
	}
	type probe struct {
		movedCW bool  // whether this agent moved frame-clockwise
		allSame bool  // whether the round was an all-same-direction round
		coll    int64 // first-collision arc, -1 when no collision
	}
	type probeSpec struct {
		dir     ring.Direction
		allSame bool
	}

	bits := comb.Bits(f.IDBound())
	specs := make([]probeSpec, 0, 2*bits+2)
	for i := 1; i <= bits; i++ {
		for phase := 0; phase <= 1; phase++ {
			dir := ring.Anticlockwise
			if core.IDBit(f.ID(), i) == phase {
				dir = ring.Clockwise
			}
			specs = append(specs, probeSpec{dir: dir})
		}
	}
	specs = append(specs,
		probeSpec{dir: ring.Clockwise, allSame: true},
		probeSpec{dir: ring.Anticlockwise, allSame: true})

	probes := make([]probe, 0, len(specs))
	side := func(cw bool) (gap int64, sameSense bool, err error) {
		min := int64(-1)
		allSameColl := int64(-1)
		for _, p := range probes {
			if p.movedCW != cw {
				continue
			}
			if p.allSame {
				allSameColl = p.coll
			}
			if p.coll < 0 {
				continue
			}
			if min < 0 || p.coll < min {
				min = p.coll
			}
		}
		if min < 0 {
			return 0, false, fmt.Errorf("%w (moving clockwise=%v)", ErrNoNeighbour, cw)
		}
		// In the round where every agent moves the same frame direction, a
		// neighbour with the opposite sense of direction moves towards us and
		// produces the tight collision at half the gap; a neighbour with the
		// same sense moves away and the first collision (if any) is strictly
		// farther.  The neighbour's orientation therefore follows from
		// whether that round achieved the minimum.
		return 2 * min, allSameColl != min, nil
	}

	var next func(i int) (engine.Yield, engine.Cont)
	next = func(i int) (engine.Yield, engine.Cont) {
		if i == len(specs) {
			var nb Neighbors
			var err error
			if nb.RightGap, nb.RightSameSense, err = side(true); err != nil {
				return engine.Abort(err)
			}
			if nb.LeftGap, nb.LeftSameSense, err = side(false); err != nil {
				return engine.Abort(err)
			}
			return k(nb)
		}
		sp := specs[i]
		return f.RoundPairStep(sp.dir, func(obs engine.Observation) (engine.Yield, engine.Cont) {
			coll := int64(-1)
			if obs.Collided {
				coll = obs.Coll
			}
			probes = append(probes, probe{movedCW: sp.dir == ring.Clockwise, allSame: sp.allSame, coll: coll})
			return next(i + 1)
		})
	}
	return next(0)
}
