package rcomm

import (
	"fmt"

	"ringsym/internal/engine"
)

// DisseminateSparse implements the sparse information dissemination task of
// Corollary 34: when the source agents are at ring distance at least
// `distance` from one another, a p-bit message travels `distance` hops in
// O(p + distance) exchange steps instead of the O(p·distance) of the generic
// Disseminate, because the message is pipelined bit by bit: every relay step
// each agent forwards, in each direction, the bit it received from the
// opposite direction in the previous step, delayed by exactly one hop.
//
// The stream format is a single presence bit (1) followed by the payload bits
// (LSB first); an idle channel carries zeros, which is the "nothing to
// transmit yet" encoding the paper sketches.  A receiver learns the hop
// distance to the nearest source on each side from the step at which the
// presence bit arrives.  Sources do not forward foreign streams (they are far
// enough apart that nobody within `distance` of the blocked source sits
// behind the blocking one).
//
// Cost: (1 + payloadBits + distance) relay steps of 8 rounds each.
func (l *Link) DisseminateSparse(isSource bool, payload uint64, payloadBits, distance int) (left, right SideInfo, err error) {
	p, err := engine.RunStep(l.frame.Agent(), func(k func(sidePair) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return l.DisseminateSparseStep(isSource, payload, payloadBits, distance, func(left, right SideInfo) (engine.Yield, engine.Cont) {
			return k(sidePair{left: left, right: right})
		})
	})
	return p.left, p.right, err
}

// DisseminateSparseStep is the machine form of DisseminateSparse.
func (l *Link) DisseminateSparseStep(isSource bool, payload uint64, payloadBits, distance int, k func(left, right SideInfo) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	if distance < 1 {
		return engine.Abort(fmt.Errorf("rcomm: dissemination distance must be positive, got %d", distance))
	}
	if payloadBits < 1 || payloadBits > 60 {
		return engine.Abort(fmt.Errorf("%w: %d payload bits", ErrBadBits, payloadBits))
	}
	steps := 1 + payloadBits + distance

	// Outgoing bit queues per direction.  A source emits its own stream; a
	// non-source starts silent and echoes what it hears.
	stream := make([]int, 0, 1+payloadBits)
	stream = append(stream, 1)
	for i := 0; i < payloadBits; i++ {
		stream = append(stream, int((payload>>i)&1))
	}
	nextBit := func(queue *[]int) int {
		if len(*queue) == 0 {
			return 0
		}
		b := (*queue)[0]
		*queue = (*queue)[1:]
		return b
	}

	var toRight, toLeft []int
	if isSource {
		toRight = append([]int(nil), stream...)
		toLeft = append([]int(nil), stream...)
	}
	// Receiver state per side.
	type recv struct {
		started bool
		startAt int
		bits    []int
		info    SideInfo
	}
	var fromLeft, fromRight recv

	record := func(r *recv, bit, step int) {
		if r.info.Found {
			return
		}
		if !r.started {
			if bit == 1 {
				r.started = true
				r.startAt = step
			}
			return
		}
		r.bits = append(r.bits, bit)
		if len(r.bits) == payloadBits {
			var v uint64
			for i, b := range r.bits {
				v |= uint64(b) << i
			}
			// The presence bit of a source at hop distance h arrives at
			// relay step h (steps are 1-based).
			r.info = SideInfo{Found: true, Payload: v, Hops: r.startAt}
		}
	}

	// A receiver only reports sources whose full payload arrived within the
	// distance budget.
	clip := func(r recv) SideInfo {
		if !r.info.Found || r.info.Hops > distance {
			return SideInfo{}
		}
		return r.info
	}

	var relayStep func(step int) (engine.Yield, engine.Cont)
	relayStep = func(step int) (engine.Yield, engine.Cont) {
		if step > steps {
			return k(clip(fromLeft), clip(fromRight))
		}
		outL := nextBit(&toLeft)
		outR := nextBit(&toRight)
		return l.ExchangeStep(uint64(outL), uint64(outR), 1, func(gotL, gotR uint64) (engine.Yield, engine.Cont) {
			record(&fromLeft, int(gotL&1), step)
			record(&fromRight, int(gotR&1), step)
			if !isSource {
				// Relay with a one-step delay: what arrived from the left goes
				// out to the right next step, and vice versa.
				toRight = append(toRight, int(gotL&1))
				toLeft = append(toLeft, int(gotR&1))
			}
			return relayStep(step + 1)
		})
	}
	return relayStep(1)
}
