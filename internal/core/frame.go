// Package core implements the paper's coordination algorithms: rotation-index
// classification (Lemma 2), direction agreement (Algorithm 1,
// Proposition 17), leader election (Algorithm 2, Lemma 13), the nontrivial
// move problem (Lemma 10, Corollary 18, Theorem 27) and emptiness testing
// (Lemma 12), together with the reductions of Theorem 7.
//
// All algorithms are written from a single agent's point of view: they take a
// *Frame (the agent plus its current software sense of direction) and block
// on rounds through the engine runtime.  Every agent of the network runs the
// same function; global consistency comes from the observations being shared
// (rotation indices are global) exactly as argued in the paper.
package core

import (
	"errors"

	"ringsym/internal/engine"
	"ringsym/internal/ring"
)

// Errors returned by the coordination algorithms.
var (
	// ErrNoNontrivialMove is returned when a search for a nontrivial move
	// exhausted its candidate schedule (for the pseudo-random schedules this
	// has negligible probability; it indicates a mis-sized family otherwise).
	ErrNoNontrivialMove = errors.New("core: could not find a nontrivial move")
	// ErrNeedPerceptive is returned when an algorithm requires the
	// perceptive model.
	ErrNeedPerceptive = errors.New("core: algorithm requires the perceptive model")
	// ErrNeedLazyOrOdd is returned when location discovery is requested in a
	// setting where it is impossible (Lemma 5).
	ErrNeedLazyOrOdd = errors.New("core: not solvable in the basic model with even n (Lemma 5)")
)

// Frame wraps an agent together with its current software sense of
// direction.  Protocols express all directions in frame coordinates;
// DirectionAgreement flips frames so that afterwards every agent's frame
// refers to the same objective direction.
type Frame struct {
	agent   *engine.Agent
	flipped bool
	full    int64

	// schedScratch holds frame-to-agent translations of RoundSchedule
	// submissions; reused across calls.
	schedScratch []ring.Direction
}

// NewFrame wraps the agent with an unflipped frame (the agent's own private
// sense of direction).
func NewFrame(a *engine.Agent) *Frame {
	return &Frame{agent: a, full: a.FullCircle()}
}

// Agent returns the underlying agent handle.
func (f *Frame) Agent() *engine.Agent { return f.agent }

// ID returns the agent's identifier.
func (f *Frame) ID() int { return f.agent.ID() }

// IDBound returns N.
func (f *Frame) IDBound() int { return f.agent.IDBound() }

// FullCircle returns the circumference in observation units (half-ticks).
func (f *Frame) FullCircle() int64 { return f.full }

// Flipped reports whether the frame currently reverses the agent's own sense
// of direction.
func (f *Frame) Flipped() bool { return f.flipped }

// Flip reverses the frame's sense of direction.
func (f *Frame) Flip() { f.flipped = !f.flipped }

// RoundsUsed returns the number of rounds the agent has participated in.
func (f *Frame) RoundsUsed() int { return f.agent.RoundsUsed() }

// Displacement returns the cumulative displacement of the agent since the
// start of the run, measured clockwise in the frame's current orientation
// (half-ticks, modulo the full circle).
func (f *Frame) Displacement() int64 {
	d := f.agent.Displacement()
	if f.flipped && d != 0 {
		d = f.full - d
	}
	return d
}

// translate maps a frame direction to the agent's own direction.
func (f *Frame) translate(dir ring.Direction) ring.Direction {
	if f.flipped {
		return dir.Opposite()
	}
	return dir
}

// Round executes one round in which the agent moves in direction dir
// (frame coordinates) and returns the observation with dist() measured in the
// frame's clockwise direction.
func (f *Frame) Round(dir ring.Direction) (engine.Observation, error) {
	obs, err := f.agent.Round(f.translate(dir))
	if err != nil {
		return engine.Observation{}, err
	}
	if f.flipped && obs.Dist != 0 {
		obs.Dist = f.full - obs.Dist
	}
	return obs, nil
}

// retranslate maps an observation trace into the frame's orientation,
// in place.
func (f *Frame) retranslate(trace []engine.Observation) []engine.Observation {
	if f.flipped {
		for i := range trace {
			if trace[i].Dist != 0 {
				trace[i].Dist = f.full - trace[i].Dist
			}
		}
	}
	return trace
}

// RoundN executes k consecutive rounds in which the agent moves in direction
// dir (frame coordinates), submitted as a single leap batch, and returns the
// per-round observations — exactly what k sequential Round calls would have
// returned, without k barrier crossings.
func (f *Frame) RoundN(dir ring.Direction, k int) ([]engine.Observation, error) {
	return f.RoundNInto(dir, k, nil)
}

// RoundNInto is RoundN writing the trace into dst from index 0, reusing its
// capacity and overwriting any existing contents.
func (f *Frame) RoundNInto(dir ring.Direction, k int, dst []engine.Observation) ([]engine.Observation, error) {
	trace, err := f.agent.RoundNInto(f.translate(dir), k, dst)
	if err != nil {
		return nil, err
	}
	return f.retranslate(trace), nil
}

// RoundNSum executes k rounds in direction dir (frame coordinates) and
// returns only the cumulative displacement of the stretch, measured in the
// frame's clockwise direction modulo the full circle.  Use it for stretches
// whose per-round observations are discarded (restores, undo phases): the
// runtime then skips materialising the trace entirely.
func (f *Frame) RoundNSum(dir ring.Direction, k int) (int64, error) {
	sum, err := f.agent.RoundNSum(f.translate(dir), k)
	if err != nil {
		return 0, err
	}
	if f.flipped && sum != 0 {
		sum = f.full - sum
	}
	return sum, nil
}

// RoundUntil executes up to k rounds in direction dir (frame coordinates),
// stopping after the first round at which the frame displacement (the value
// Displacement reports) equals target.  The stop is solved in closed form by
// the runtime, so the batch consumes exactly as many rounds as the
// equivalent per-round loop — no overshoot.  The returned trace covers the
// executed rounds.
func (f *Frame) RoundUntil(dir ring.Direction, target int64, k int, dst []engine.Observation) ([]engine.Observation, error) {
	agentTarget := target
	if f.flipped && target != 0 {
		agentTarget = f.full - target
	}
	trace, err := f.agent.RoundUntil(f.translate(dir), agentTarget, k, dst)
	if err != nil {
		return nil, err
	}
	return f.retranslate(trace), nil
}

// RoundSchedule executes a whole per-round direction schedule (frame
// coordinates) as one batch and returns the per-round observations.  The
// schedule is translated into the agent's frame in a scratch buffer, so the
// caller's slice is never modified.
func (f *Frame) RoundSchedule(dirs []ring.Direction, dst []engine.Observation) ([]engine.Observation, error) {
	if cap(f.schedScratch) < len(dirs) {
		f.schedScratch = make([]ring.Direction, len(dirs))
	}
	sched := f.schedScratch[:len(dirs)]
	for i, d := range dirs {
		sched[i] = f.translate(d)
	}
	trace, err := f.agent.RoundSchedule(sched, dst)
	if err != nil {
		return nil, err
	}
	return f.retranslate(trace), nil
}

// RoundPair executes SINGLEROUND followed by REVERSEDROUND for the given
// direction, so that afterwards every agent is back at the position it
// occupied before the pair (provided every agent uses RoundPair with its own
// direction).  It returns the observation of the first round.
func (f *Frame) RoundPair(dir ring.Direction) (engine.Observation, error) {
	obs, err := f.Round(dir)
	if err != nil {
		return engine.Observation{}, err
	}
	if _, err := f.Round(dir.Opposite()); err != nil {
		return engine.Observation{}, err
	}
	return obs, nil
}

// RotationClass classifies the rotation index of a direction assignment as
// seen from an agent's frame (Lemma 2).
type RotationClass int8

const (
	// RotUnknown means the classification has not been performed.
	RotUnknown RotationClass = iota
	// RotZero means the rotation index is 0.
	RotZero
	// RotHalf means the rotation index is n/2.
	RotHalf
	// RotBelowHalf means the rotation index is strictly between 0 and n/2 in
	// the agent's frame.
	RotBelowHalf
	// RotAboveHalf means the rotation index is strictly between n/2 and n in
	// the agent's frame.
	RotAboveHalf
)

// String implements fmt.Stringer.
func (c RotationClass) String() string {
	switch c {
	case RotZero:
		return "zero"
	case RotHalf:
		return "half"
	case RotBelowHalf:
		return "below-half"
	case RotAboveHalf:
		return "above-half"
	default:
		return "unknown"
	}
}

// Nontrivial reports whether the classified round is a nontrivial move
// (rotation index not in {0, n/2}).  This is consistent across agents even
// though RotBelowHalf/RotAboveHalf themselves are frame-relative.
func (c RotationClass) Nontrivial() bool { return c == RotBelowHalf || c == RotAboveHalf }

// ClassifyRotation implements Lemma 2: it executes the assignment in which
// this agent moves in direction dir twice (all agents must call it with their
// respective directions) and classifies the assignment's rotation index.
// When restore is true two reversed rounds follow, so every agent ends at the
// position it started from.  Cost: 2 rounds (4 with restore).
func (f *Frame) ClassifyRotation(dir ring.Direction, restore bool) (RotationClass, error) {
	var pair [2]engine.Observation
	trace, err := f.RoundNInto(dir, 2, pair[:0])
	if err != nil {
		return RotUnknown, err
	}
	obs1, obs2 := trace[0], trace[1]
	if restore {
		// The reversed rounds' observations are discarded, so the aggregate
		// form suffices.
		if _, err := f.RoundNSum(dir.Opposite(), 2); err != nil {
			return RotUnknown, err
		}
	}
	return classOf(f.full, obs1, obs2), nil
}

// classOf is Lemma 2's classification from the two observations of the double
// execution, shared by the blocking and the machine form.
func classOf(full int64, obs1, obs2 engine.Observation) RotationClass {
	switch sum := obs1.Dist + obs2.Dist; {
	case obs1.Dist == 0:
		return RotZero
	case sum == full:
		return RotHalf
	case sum > full:
		return RotAboveHalf
	default:
		return RotBelowHalf
	}
}

// IDBit returns the i-th bit (1-based, least significant first) of id.
func IDBit(id, i int) int { return (id >> (i - 1)) & 1 }

// idBits returns the number of bit positions needed for identifiers bounded
// by the agent's IDBound.
func (f *Frame) idBits() int {
	b := 0
	for v := f.IDBound(); v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}
