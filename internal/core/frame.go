// Package core implements the paper's coordination algorithms: rotation-index
// classification (Lemma 2), direction agreement (Algorithm 1,
// Proposition 17), leader election (Algorithm 2, Lemma 13), the nontrivial
// move problem (Lemma 10, Corollary 18, Theorem 27) and emptiness testing
// (Lemma 12), together with the reductions of Theorem 7.
//
// All algorithms are written from a single agent's point of view: they take a
// *Frame (the agent plus its current software sense of direction) and block
// on rounds through the engine runtime.  Every agent of the network runs the
// same function; global consistency comes from the observations being shared
// (rotation indices are global) exactly as argued in the paper.
package core

import (
	"errors"

	"ringsym/internal/engine"
	"ringsym/internal/ring"
)

// Errors returned by the coordination algorithms.
var (
	// ErrNoNontrivialMove is returned when a search for a nontrivial move
	// exhausted its candidate schedule (for the pseudo-random schedules this
	// has negligible probability; it indicates a mis-sized family otherwise).
	ErrNoNontrivialMove = errors.New("core: could not find a nontrivial move")
	// ErrNeedPerceptive is returned when an algorithm requires the
	// perceptive model.
	ErrNeedPerceptive = errors.New("core: algorithm requires the perceptive model")
	// ErrNeedLazyOrOdd is returned when location discovery is requested in a
	// setting where it is impossible (Lemma 5).
	ErrNeedLazyOrOdd = errors.New("core: not solvable in the basic model with even n (Lemma 5)")
)

// Frame wraps an agent together with its current software sense of
// direction.  Protocols express all directions in frame coordinates;
// DirectionAgreement flips frames so that afterwards every agent's frame
// refers to the same objective direction.
type Frame struct {
	agent   *engine.Agent
	flipped bool
	full    int64
}

// NewFrame wraps the agent with an unflipped frame (the agent's own private
// sense of direction).
func NewFrame(a *engine.Agent) *Frame {
	return &Frame{agent: a, full: a.FullCircle()}
}

// Agent returns the underlying agent handle.
func (f *Frame) Agent() *engine.Agent { return f.agent }

// ID returns the agent's identifier.
func (f *Frame) ID() int { return f.agent.ID() }

// IDBound returns N.
func (f *Frame) IDBound() int { return f.agent.IDBound() }

// FullCircle returns the circumference in observation units (half-ticks).
func (f *Frame) FullCircle() int64 { return f.full }

// Flipped reports whether the frame currently reverses the agent's own sense
// of direction.
func (f *Frame) Flipped() bool { return f.flipped }

// Flip reverses the frame's sense of direction.
func (f *Frame) Flip() { f.flipped = !f.flipped }

// RoundsUsed returns the number of rounds the agent has participated in.
func (f *Frame) RoundsUsed() int { return f.agent.RoundsUsed() }

// Displacement returns the cumulative displacement of the agent since the
// start of the run, measured clockwise in the frame's current orientation
// (half-ticks, modulo the full circle).
func (f *Frame) Displacement() int64 {
	d := f.agent.Displacement()
	if f.flipped && d != 0 {
		d = f.full - d
	}
	return d
}

// translate maps a frame direction to the agent's own direction.
func (f *Frame) translate(dir ring.Direction) ring.Direction {
	if f.flipped {
		return dir.Opposite()
	}
	return dir
}

// Round executes one round in which the agent moves in direction dir
// (frame coordinates) and returns the observation with dist() measured in the
// frame's clockwise direction.
func (f *Frame) Round(dir ring.Direction) (engine.Observation, error) {
	obs, err := f.agent.Round(f.translate(dir))
	if err != nil {
		return engine.Observation{}, err
	}
	if f.flipped && obs.Dist != 0 {
		obs.Dist = f.full - obs.Dist
	}
	return obs, nil
}

// RoundPair executes SINGLEROUND followed by REVERSEDROUND for the given
// direction, so that afterwards every agent is back at the position it
// occupied before the pair (provided every agent uses RoundPair with its own
// direction).  It returns the observation of the first round.
func (f *Frame) RoundPair(dir ring.Direction) (engine.Observation, error) {
	obs, err := f.Round(dir)
	if err != nil {
		return engine.Observation{}, err
	}
	if _, err := f.Round(dir.Opposite()); err != nil {
		return engine.Observation{}, err
	}
	return obs, nil
}

// RotationClass classifies the rotation index of a direction assignment as
// seen from an agent's frame (Lemma 2).
type RotationClass int8

const (
	// RotUnknown means the classification has not been performed.
	RotUnknown RotationClass = iota
	// RotZero means the rotation index is 0.
	RotZero
	// RotHalf means the rotation index is n/2.
	RotHalf
	// RotBelowHalf means the rotation index is strictly between 0 and n/2 in
	// the agent's frame.
	RotBelowHalf
	// RotAboveHalf means the rotation index is strictly between n/2 and n in
	// the agent's frame.
	RotAboveHalf
)

// String implements fmt.Stringer.
func (c RotationClass) String() string {
	switch c {
	case RotZero:
		return "zero"
	case RotHalf:
		return "half"
	case RotBelowHalf:
		return "below-half"
	case RotAboveHalf:
		return "above-half"
	default:
		return "unknown"
	}
}

// Nontrivial reports whether the classified round is a nontrivial move
// (rotation index not in {0, n/2}).  This is consistent across agents even
// though RotBelowHalf/RotAboveHalf themselves are frame-relative.
func (c RotationClass) Nontrivial() bool { return c == RotBelowHalf || c == RotAboveHalf }

// ClassifyRotation implements Lemma 2: it executes the assignment in which
// this agent moves in direction dir twice (all agents must call it with their
// respective directions) and classifies the assignment's rotation index.
// When restore is true two reversed rounds follow, so every agent ends at the
// position it started from.  Cost: 2 rounds (4 with restore).
func (f *Frame) ClassifyRotation(dir ring.Direction, restore bool) (RotationClass, error) {
	obs1, err := f.Round(dir)
	if err != nil {
		return RotUnknown, err
	}
	obs2, err := f.Round(dir)
	if err != nil {
		return RotUnknown, err
	}
	if restore {
		for i := 0; i < 2; i++ {
			if _, err := f.Round(dir.Opposite()); err != nil {
				return RotUnknown, err
			}
		}
	}
	switch sum := obs1.Dist + obs2.Dist; {
	case obs1.Dist == 0:
		return RotZero, nil
	case sum == f.full:
		return RotHalf, nil
	case sum > f.full:
		return RotAboveHalf, nil
	default:
		return RotBelowHalf, nil
	}
}

// IDBit returns the i-th bit (1-based, least significant first) of id.
func IDBit(id, i int) int { return (id >> (i - 1)) & 1 }

// idBits returns the number of bit positions needed for identifiers bounded
// by the agent's IDBound.
func (f *Frame) idBits() int {
	b := 0
	for v := f.IDBound(); v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}
