package core

import (
	"fmt"

	"ringsym/internal/comb"
	"ringsym/internal/engine"
	"ringsym/internal/ring"
)

// NontrivialMoveOdd solves the nontrivial move problem when n is odd
// (Corollary 18).  For odd n a round is nontrivial as soon as both objective
// directions occur, so the all-clockwise round works unless every agent is
// oriented the same way, in which case the agents differ on some identifier
// bit and the corresponding bit round breaks the tie.  Cost: at most
// 1 + ⌈log2 N⌉ rounds.
//
// The returned direction is this agent's direction, in frame coordinates, in
// a round known by every agent to be a nontrivial move.
func NontrivialMoveOdd(f *Frame) (ring.Direction, error) {
	return engine.RunStep(f.Agent(), func(k func(ring.Direction) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return NontrivialMoveOddStep(f, k)
	})
}

// NontrivialMoveOddStep is the machine form of NontrivialMoveOdd.
func NontrivialMoveOddStep(f *Frame, k func(ring.Direction) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	return f.RoundStep(ring.Clockwise, func(obs engine.Observation) (engine.Yield, engine.Cont) {
		if obs.Dist != 0 {
			return k(ring.Clockwise)
		}
		var bit func(i int) (engine.Yield, engine.Cont)
		bit = func(i int) (engine.Yield, engine.Cont) {
			if i > f.idBits() {
				return engine.Abort(fmt.Errorf("%w: odd-n bit schedule exhausted", ErrNoNontrivialMove))
			}
			dir := ring.Anticlockwise
			if IDBit(f.ID(), i) == 1 {
				dir = ring.Clockwise
			}
			return f.RoundStep(dir, func(obs engine.Observation) (engine.Yield, engine.Cont) {
				if obs.Dist != 0 {
					return k(dir)
				}
				return bit(i + 1)
			})
		}
		return bit(1)
	})
}

// NontrivialMoveFromLeader solves the nontrivial move problem in O(1) rounds
// once a unique leader exists (Lemma 10).  The two candidate assignments
// differ only in the leader's direction, so their rotation indices differ by
// 2 and cannot both lie in {0, n/2} when n > 4.  Cost: at most 4 rounds.
func NontrivialMoveFromLeader(f *Frame, isLeader bool) (ring.Direction, error) {
	return engine.RunStep(f.Agent(), func(k func(ring.Direction) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return NontrivialMoveFromLeaderStep(f, isLeader, k)
	})
}

// NontrivialMoveFromLeaderStep is the machine form of NontrivialMoveFromLeader.
func NontrivialMoveFromLeaderStep(f *Frame, isLeader bool, k func(ring.Direction) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	return f.ClassifyRotationStep(ring.Clockwise, false, func(cls RotationClass) (engine.Yield, engine.Cont) {
		if cls.Nontrivial() {
			return k(ring.Clockwise)
		}
		dir := ring.Clockwise
		if isLeader {
			dir = ring.Anticlockwise
		}
		return f.ClassifyRotationStep(dir, false, func(cls RotationClass) (engine.Yield, engine.Cont) {
			if cls.Nontrivial() {
				return k(dir)
			}
			return engine.Abort(fmt.Errorf("%w: leader-based candidates both trivial (is the leader unique and n > 4?)", ErrNoNontrivialMove))
		})
	})
}

// NontrivialMoveSearch executes the direction schedule defined by the set
// family (agents whose identifier is in the i-th set move clockwise in their
// frame, all others anticlockwise) until a round with a nontrivial rotation
// index appears.  With weak set, a weakly nontrivial move (rotation index
// different from 0, Proposition 22) is accepted and each candidate costs one
// round; otherwise each candidate is classified with Lemma 2 and costs two.
//
// It returns this agent's direction in the successful round and the index of
// the successful set.
func NontrivialMoveSearch(f *Frame, fam comb.SetFamily, weak bool) (ring.Direction, int, error) {
	type hit struct {
		dir ring.Direction
		set int
	}
	h, err := engine.RunStep(f.Agent(), func(k func(hit) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return NontrivialMoveSearchStep(f, fam, weak, func(dir ring.Direction, set int) (engine.Yield, engine.Cont) {
			return k(hit{dir: dir, set: set})
		})
	})
	return h.dir, h.set, err
}

// NontrivialMoveSearchStep is the machine form of NontrivialMoveSearch.
func NontrivialMoveSearchStep(f *Frame, fam comb.SetFamily, weak bool, k func(ring.Direction, int) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	var try func(i int) (engine.Yield, engine.Cont)
	try = func(i int) (engine.Yield, engine.Cont) {
		if i >= fam.Len() {
			return engine.Abort(fmt.Errorf("%w: schedule of %d sets exhausted", ErrNoNontrivialMove, fam.Len()))
		}
		dir := ring.Anticlockwise
		if fam.Contains(i, f.ID()) {
			dir = ring.Clockwise
		}
		if weak {
			return f.RoundStep(dir, func(obs engine.Observation) (engine.Yield, engine.Cont) {
				if obs.Dist != 0 {
					return k(dir, i)
				}
				return try(i + 1)
			})
		}
		return f.ClassifyRotationStep(dir, false, func(cls RotationClass) (engine.Yield, engine.Cont) {
			if cls.Nontrivial() {
				return k(dir, i)
			}
			return try(i + 1)
		})
	}
	return try(0)
}

// defaultScheduleLength bounds the pseudo-random schedule used when n is
// unknown: Theorem 27 guarantees a nontrivial move within
// O(n·log(N/n)/log n) = O(N) rounds with overwhelming probability.
func defaultScheduleLength(idBound int) int {
	l := 16*idBound + 512
	return l
}

// NontrivialMoveEven solves the (strong) nontrivial move problem in the basic
// or lazy model for even n using the seeded pseudo-random schedule that
// substitutes for the non-constructive sequence of Theorem 27.  The expected
// number of rounds matches Θ(n·log(N/n)/log n) up to constants; Corollary 26
// shows this is optimal up to the log n factor.
func NontrivialMoveEven(f *Frame, seed int64) (ring.Direction, error) {
	return engine.RunStep(f.Agent(), func(k func(ring.Direction) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return NontrivialMoveEvenStep(f, seed, k)
	})
}

// NontrivialMoveEvenStep is the machine form of NontrivialMoveEven.
func NontrivialMoveEvenStep(f *Frame, seed int64, k func(ring.Direction) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	fam, err := comb.NewRandomDistinguisher(f.IDBound(), defaultScheduleLength(f.IDBound()), seed)
	if err != nil {
		return engine.Abort(err)
	}
	return NontrivialMoveSearchStep(f, fam, false, func(dir ring.Direction, _ int) (engine.Yield, engine.Cont) {
		return k(dir)
	})
}

// WeakNontrivialMoveEven is the weak variant (rotation index merely nonzero),
// the object related to (N, n/2)-distinguishers by Proposition 22.  It
// returns the index of the successful round so that experiments can compare
// the empirical count against the distinguisher bounds of Section IV.
func WeakNontrivialMoveEven(f *Frame, seed int64) (ring.Direction, int, error) {
	fam, err := comb.NewRandomDistinguisher(f.IDBound(), defaultScheduleLength(f.IDBound()), seed)
	if err != nil {
		return ring.Idle, 0, err
	}
	return NontrivialMoveSearch(f, fam, true)
}
