package core

import (
	"ringsym/internal/engine"
	"ringsym/internal/ring"
)

// Options configures the high-level coordination pipeline.
type Options struct {
	// CommonSense promises that all agents already share a sense of
	// direction (the Table II setting); the caller is responsible for the
	// promise being true of the underlying network.
	CommonSense bool
	// Seed drives the pseudo-random schedules used for even n.
	Seed int64
}

// Coordination is the outcome of solving the three coordination problems.
type Coordination struct {
	// Frame is the agent's frame after direction agreement; all agents'
	// frames refer to the same objective clockwise direction.
	Frame *Frame
	// IsLeader reports whether this agent was elected the unique leader.
	IsLeader bool
	// NontrivialDir is this agent's direction, in the agreed frame, in an
	// assignment known to be a nontrivial move.
	NontrivialDir ring.Direction
	// RoundsNontrivial, RoundsAgreement and RoundsLeader record the number
	// of rounds spent in each stage (identical at every agent).
	RoundsNontrivial int
	RoundsAgreement  int
	RoundsLeader     int
}

// Coordinate solves nontrivial move, direction agreement and leader election
// (Theorem 7) for the basic and lazy models, and for the perceptive model via
// the basic-model algorithms (the faster perceptive pipeline lives in
// internal/perceptive).  The route depends on the setting:
//
//   - common sense of direction promised: leader election by binary search
//     with emptiness testing (Lemma 13), then a nontrivial move from the
//     leader (Lemma 10);
//   - odd n: nontrivial move from the identifier bits (Corollary 18), then
//     Algorithm 1 and Algorithm 2;
//   - even (or unknown) n: the pseudo-random schedule substituting for
//     Theorem 27, then Algorithm 1 and Algorithm 2.
func Coordinate(a *engine.Agent, opts Options) (*Coordination, error) {
	return engine.RunMachine(a, CoordinateMachine(a, opts))
}

// CoordinateMachine builds the coordination pipeline as a resumable machine
// for the engine's v3 scheduler; Coordinate drives the same machine through
// the blocking dispatcher on the v1/v2 runtimes.
func CoordinateMachine(a *engine.Agent, opts Options) *engine.Proto[*Coordination] {
	return engine.NewProto(func(done func(*Coordination, error) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return CoordinateStep(a, opts, func(c *Coordination) (engine.Yield, engine.Cont) {
			return done(c, nil)
		})
	})
}

// CoordinateStep is the machine form of Coordinate.
func CoordinateStep(a *engine.Agent, opts Options, k func(*Coordination) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	f := NewFrame(a)
	if opts.CommonSense {
		return coordinateCommonSenseStep(f, k)
	}

	start := f.RoundsUsed()
	nmStep := NontrivialMoveOddStep
	if a.NParity() != engine.ParityOdd {
		nmStep = func(f *Frame, k func(ring.Direction) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
			return NontrivialMoveEvenStep(f, opts.Seed, k)
		}
	}
	return nmStep(f, func(nmDir ring.Direction) (engine.Yield, engine.Cont) {
		afterNM := f.RoundsUsed()
		return DirectionAgreementStep(f, nmDir, func(nmDir ring.Direction) (engine.Yield, engine.Cont) {
			afterDA := f.RoundsUsed()
			return LeaderElectWithNMStep(f, nmDir, func(isLeader bool) (engine.Yield, engine.Cont) {
				return k(&Coordination{
					Frame:            f,
					IsLeader:         isLeader,
					NontrivialDir:    nmDir,
					RoundsNontrivial: afterNM - start,
					RoundsAgreement:  afterDA - afterNM,
					RoundsLeader:     f.RoundsUsed() - afterDA,
				})
			})
		})
	})
}

// coordinateCommonSenseStep is the Table II pipeline: the frames already
// agree, so the leader is elected by binary search (Lemma 13) and a
// nontrivial move follows from the leader (Lemma 10).
func coordinateCommonSenseStep(f *Frame, k func(*Coordination) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	start := f.RoundsUsed()
	return LeaderElectCommonSenseStep(f, func(isLeader bool) (engine.Yield, engine.Cont) {
		afterLeader := f.RoundsUsed()
		return NontrivialMoveFromLeaderStep(f, isLeader, func(nmDir ring.Direction) (engine.Yield, engine.Cont) {
			return k(&Coordination{
				Frame:            f,
				IsLeader:         isLeader,
				NontrivialDir:    nmDir,
				RoundsLeader:     afterLeader - start,
				RoundsNontrivial: f.RoundsUsed() - afterLeader,
			})
		})
	})
}
