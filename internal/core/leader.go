package core

import (
	"fmt"

	"ringsym/internal/engine"
	"ringsym/internal/ring"
)

// LeaderElectWithNM implements Algorithm 2 (LeaderWithNMove).
//
// Preconditions: every agent's frame refers to the same objective clockwise
// direction (run DirectionAgreement first) and nmDir is this agent's
// direction, in that common frame, in an assignment known to be a nontrivial
// move.  The candidate set starts as the agents that move clockwise in the
// nontrivial move (its rotation index is nonzero) and is halved along
// identifier bits, keeping whichever half still has a nonzero rotation index
// (Lemma 3(c) guarantees one of them does).  After ⌈log2 N⌉ rounds exactly
// one agent remains.  Cost: ⌈log2 N⌉ rounds.
func LeaderElectWithNM(f *Frame, nmDir ring.Direction) (bool, error) {
	return engine.RunStep(f.Agent(), func(k func(bool) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return LeaderElectWithNMStep(f, nmDir, k)
	})
}

// LeaderElectWithNMStep is the machine form of LeaderElectWithNM.
func LeaderElectWithNMStep(f *Frame, nmDir ring.Direction, k func(bool) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	var bit func(i int, inX bool) (engine.Yield, engine.Cont)
	bit = func(i int, inX bool) (engine.Yield, engine.Cont) {
		if i > f.idBits() {
			return k(inX)
		}
		inX0 := inX && IDBit(f.ID(), i) == 0
		dir := ring.Anticlockwise
		if inX0 {
			dir = ring.Clockwise
		}
		return f.RoundStep(dir, func(obs engine.Observation) (engine.Yield, engine.Cont) {
			if obs.Dist != 0 {
				return bit(i+1, inX0)
			}
			return bit(i+1, inX && !inX0)
		})
	}
	return bit(1, nmDir == ring.Clockwise)
}

// EmptinessTest implements Lemma 12.  All agents know the query set B
// implicitly: each caller passes whether its own identifier belongs to B.
// Precondition: every agent's frame refers to the same objective clockwise
// direction.
//
// Costs: one round in the lazy and perceptive models and in the basic model
// with odd n; 1 + ⌈log2 N⌉ rounds in the basic model with even (or unknown)
// parity.  The returned value — whether B contains the identifier of at least
// one agent — is identical at every agent.
func EmptinessTest(f *Frame, inB bool) (bool, error) {
	return engine.RunStep(f.Agent(), func(k func(bool) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return EmptinessTestStep(f, inB, k)
	})
}

// EmptinessTestStep is the machine form of EmptinessTest.
func EmptinessTestStep(f *Frame, inB bool, k func(bool) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	model := f.agent.Model()

	memberDir := func(member bool) ring.Direction {
		if member {
			return ring.Clockwise
		}
		if model == ring.Lazy {
			return ring.Idle
		}
		return ring.Anticlockwise
	}

	needBitRounds := model == ring.Basic && f.agent.NParity() != engine.ParityOdd
	if !needBitRounds {
		return f.RoundStep(memberDir(inB), func(obs engine.Observation) (engine.Yield, engine.Cont) {
			nonEmpty := inB
			if obs.Dist != 0 || (model.RevealsCollision() && obs.Collided) {
				nonEmpty = true
			}
			return k(nonEmpty)
		})
	}
	// Basic model with even n: |B ∩ A| = n/2 can hide behind rotation index
	// zero.  Testing the bit-slices B ∩ {x : bit_i(x) = 0} recovers it: if
	// B ∩ A is non-empty but every slice has rotation index zero, all members
	// would share every identifier bit, which is impossible for n > 4.  The
	// whole schedule — membership round plus one round per identifier bit —
	// depends only on the agent's own membership and identifier, so it is
	// submitted as a single leap batch.
	dirs := make([]ring.Direction, 1+f.idBits())
	dirs[0] = memberDir(inB)
	for i := 1; i <= f.idBits(); i++ {
		dirs[i] = memberDir(inB && IDBit(f.ID(), i) == 0)
	}
	return f.RoundScheduleStep(dirs, func(trace []engine.Observation) (engine.Yield, engine.Cont) {
		nonEmpty := inB
		for _, obs := range trace {
			if obs.Dist != 0 {
				nonEmpty = true
			}
		}
		return k(nonEmpty)
	})
}

// LeaderElectCommonSense implements Lemma 13: with a common sense of
// direction the agent with the maximum identifier is located by binary search
// over [1, N], using EmptinessTest on the upper half of the remaining range.
// Cost: ⌈log2 N⌉ emptiness tests, i.e. O(log N) rounds in the lazy,
// perceptive and odd-n basic settings and O(log² N) rounds in the basic model
// with even n.
func LeaderElectCommonSense(f *Frame) (bool, error) {
	return engine.RunStep(f.Agent(), func(k func(bool) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return LeaderElectCommonSenseStep(f, k)
	})
}

// LeaderElectCommonSenseStep is the machine form of LeaderElectCommonSense.
func LeaderElectCommonSenseStep(f *Frame, k func(bool) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	var probe func(lo, hi int) (engine.Yield, engine.Cont)
	probe = func(lo, hi int) (engine.Yield, engine.Cont) {
		if lo >= hi {
			return k(f.ID() == lo)
		}
		mid := lo + (hi-lo+1)/2
		inB := f.ID() >= mid && f.ID() <= hi
		return EmptinessTestStep(f, inB, func(nonEmpty bool) (engine.Yield, engine.Cont) {
			if nonEmpty {
				return probe(mid, hi)
			}
			return probe(lo, mid-1)
		})
	}
	return probe(1, f.IDBound())
}

// BroadcastBits lets a single distinguished agent publish a message of the
// given number of bits to every other agent using the global
// rotation-signalling channel: in the round for bit b the broadcaster moves
// clockwise when the bit is 1 and anticlockwise otherwise, while every other
// agent moves anticlockwise.  The rotation index is nonzero exactly when the
// bit is 1, which every agent observes through dist().
//
// Precondition: common sense of direction and a unique broadcaster.
// Cost: bits rounds.  Every agent returns the broadcaster's value.
func BroadcastBits(f *Frame, isBroadcaster bool, value uint64, bits int) (uint64, error) {
	return engine.RunStep(f.Agent(), func(k func(uint64) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return BroadcastBitsStep(f, isBroadcaster, value, bits, k)
	})
}

// BroadcastBitsStep is the machine form of BroadcastBits.
func BroadcastBitsStep(f *Frame, isBroadcaster bool, value uint64, bits int, k func(uint64) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	if bits <= 0 || bits > 63 {
		return engine.Abort(fmt.Errorf("core: BroadcastBits supports 1..63 bits, got %d", bits))
	}
	// The whole broadcast schedule is known upfront (it depends only on the
	// broadcaster's own value), so all bit rounds go out as one leap batch.
	dirs := make([]ring.Direction, bits)
	for i := 0; i < bits; i++ {
		dirs[i] = ring.Anticlockwise
		if isBroadcaster && (value>>i)&1 == 1 {
			dirs[i] = ring.Clockwise
		}
	}
	return f.RoundScheduleStep(dirs, func(trace []engine.Observation) (engine.Yield, engine.Cont) {
		var received uint64
		for i, obs := range trace {
			if obs.Dist != 0 {
				received |= 1 << i
			}
		}
		return k(received)
	})
}
