// Machine (CPS) forms of the Frame round primitives, for protocols running on
// the engine's v3 scheduler.  Each XStep method mirrors its blocking
// counterpart X exactly — same validation, same frame translation on the way
// in, same flip adjustment on the way out — but instead of blocking it returns
// a yield plus the continuation to resume with, so a whole protocol built from
// these composes into one resumable state machine (engine.Proto).  Errors need
// no plumbing: validation failures abort the machine through the yield and run
// failures arrive as Resume errors, both intercepted by engine.Proto.
//
// Observation-slice arguments passed to continuations alias the agent's resume
// buffer: consume (or copy) them before the next yield.
package core

import (
	"ringsym/internal/engine"
	"ringsym/internal/ring"
)

// flipObs maps one observation into the frame's orientation.
func (f *Frame) flipObs(obs engine.Observation) engine.Observation {
	if f.flipped && obs.Dist != 0 {
		obs.Dist = f.full - obs.Dist
	}
	return obs
}

// RoundStep is the machine form of Round: one round in direction dir (frame
// coordinates); k receives the observation in the frame's orientation.
func (f *Frame) RoundStep(dir ring.Direction, k func(engine.Observation) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	return f.agent.YieldRound(f.translate(dir)), func(in engine.Resume) (engine.Yield, engine.Cont) {
		return k(f.flipObs(in.Obs[0]))
	}
}

// RoundNStep is the machine form of RoundN: n rounds in direction dir as one
// leap batch; k receives the per-round trace (frame orientation, aliasing the
// resume buffer).
func (f *Frame) RoundNStep(dir ring.Direction, n int, k func([]engine.Observation) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	return f.agent.YieldRoundN(f.translate(dir), n), func(in engine.Resume) (engine.Yield, engine.Cont) {
		return k(f.retranslate(in.Obs))
	}
}

// RoundNSumStep is the machine form of RoundNSum: k receives the stretch's
// cumulative displacement in the frame's orientation.
func (f *Frame) RoundNSumStep(dir ring.Direction, n int, k func(int64) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	return f.agent.YieldRoundSum(f.translate(dir), n), func(in engine.Resume) (engine.Yield, engine.Cont) {
		sum := in.Sum
		if f.flipped && sum != 0 {
			sum = f.full - sum
		}
		return k(sum)
	}
}

// RoundUntilStep is the machine form of RoundUntil.  Like the blocking form
// (and YieldRoundUntil) it snapshots the agent's displacement, so it must be
// invoked at yield time, not built ahead.
func (f *Frame) RoundUntilStep(dir ring.Direction, target int64, n int, k func([]engine.Observation) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	agentTarget := target
	if f.flipped && target != 0 {
		agentTarget = f.full - target
	}
	return f.agent.YieldRoundUntil(f.translate(dir), agentTarget, n), func(in engine.Resume) (engine.Yield, engine.Cont) {
		return k(f.retranslate(in.Obs))
	}
}

// RoundScheduleStep is the machine form of RoundSchedule: a whole per-round
// direction schedule (frame coordinates) as one batch.
func (f *Frame) RoundScheduleStep(dirs []ring.Direction, k func([]engine.Observation) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	if cap(f.schedScratch) < len(dirs) {
		f.schedScratch = make([]ring.Direction, len(dirs))
	}
	sched := f.schedScratch[:len(dirs)]
	for i, d := range dirs {
		sched[i] = f.translate(d)
	}
	return f.agent.YieldSchedule(sched), func(in engine.Resume) (engine.Yield, engine.Cont) {
		return k(f.retranslate(in.Obs))
	}
}

// RoundPairStep is the machine form of RoundPair: SINGLEROUND then
// REVERSEDROUND; k receives the first round's observation.
func (f *Frame) RoundPairStep(dir ring.Direction, k func(engine.Observation) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	return f.RoundStep(dir, func(obs engine.Observation) (engine.Yield, engine.Cont) {
		return f.RoundStep(dir.Opposite(), func(engine.Observation) (engine.Yield, engine.Cont) {
			return k(obs)
		})
	})
}

// ClassifyRotationStep is the machine form of ClassifyRotation (Lemma 2).
func (f *Frame) ClassifyRotationStep(dir ring.Direction, restore bool, k func(RotationClass) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	return f.RoundNStep(dir, 2, func(trace []engine.Observation) (engine.Yield, engine.Cont) {
		cls := classOf(f.full, trace[0], trace[1])
		if !restore {
			return k(cls)
		}
		// The reversed rounds' observations are discarded, so the aggregate
		// form suffices.
		return f.RoundNSumStep(dir.Opposite(), 2, func(int64) (engine.Yield, engine.Cont) {
			return k(cls)
		})
	})
}
