package core

import (
	"errors"
	"testing"

	"ringsym/internal/engine"
	"ringsym/internal/netgen"
	"ringsym/internal/ring"
)

// objectiveDir translates a frame direction reported by an agent back into
// the global frame, given the agent's flipped state and chirality.
func objectiveDir(dir ring.Direction, flipped, chirality bool) ring.Direction {
	if dir == ring.Idle {
		return dir
	}
	if flipped {
		dir = dir.Opposite()
	}
	if !chirality {
		dir = dir.Opposite()
	}
	return dir
}

// rotationOf computes the rotation index of an assignment of objective
// directions.
func rotationOf(dirs []ring.Direction) int {
	return ring.RotationIndex(len(dirs), dirs)
}

func newNetwork(t *testing.T, opt netgen.Options) *engine.Network {
	t.Helper()
	cfg, err := netgen.Generate(opt)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestIDBit(t *testing.T) {
	if IDBit(5, 1) != 1 || IDBit(5, 2) != 0 || IDBit(5, 3) != 1 || IDBit(5, 4) != 0 {
		t.Error("IDBit wrong for 5")
	}
}

func TestRotationClassString(t *testing.T) {
	for _, c := range []RotationClass{RotUnknown, RotZero, RotHalf, RotBelowHalf, RotAboveHalf} {
		if c.String() == "" {
			t.Error("empty string")
		}
	}
	if RotZero.Nontrivial() || RotHalf.Nontrivial() || !RotBelowHalf.Nontrivial() || !RotAboveHalf.Nontrivial() {
		t.Error("Nontrivial misclassifies")
	}
}

// TestFrameRoundTranslation checks that a flipped frame reports distances in
// its own clockwise direction.
func TestFrameRoundTranslation(t *testing.T) {
	nw := newNetwork(t, netgen.Options{N: 6, Seed: 1, Model: ring.Perceptive})
	type out struct {
		plain, flipped int64
	}
	res, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
		f := NewFrame(a)
		// A fixed asymmetric rule so that the rotation index is nonzero.
		dir := ring.Anticlockwise
		if a.ID()%2 == 1 {
			dir = ring.Clockwise
		}
		obs1, err := f.Round(dir)
		if err != nil {
			return out{}, err
		}
		// Undo the round so the next one starts from the same configuration.
		if _, err := f.Round(dir.Opposite()); err != nil {
			return out{}, err
		}
		f.Flip()
		// In the flipped frame the opposite frame direction denotes the same
		// objective direction, so the displacement is the same but must be
		// reported complemented.
		obs2, err := f.Round(dir.Opposite())
		if err != nil {
			return out{}, err
		}
		return out{obs1.Dist, obs2.Dist}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	full := nw.FullCircle()
	for i, o := range res.Outputs {
		// Same objective movement, so the frame-relative distances must be
		// complementary (unless zero).
		if o.plain == 0 && o.flipped == 0 {
			continue
		}
		if o.plain+o.flipped != full {
			t.Errorf("agent %d: plain %d + flipped %d != full %d", i, o.plain, o.flipped, full)
		}
	}
}

// TestClassifyRotation drives assignments with known rotation indices and
// checks the classification and the restore option.
func TestClassifyRotation(t *testing.T) {
	const n = 8
	cases := []struct {
		name      string
		clockwise int // number of agents (by ID order) moving objectively clockwise
		nontriv   bool
		class     RotationClass // expected class for correctly-oriented agents; RotUnknown = skip exact check
	}{
		{"rotation 0", 4, false, RotZero},
		{"rotation n/2", 6, false, RotHalf}, // (6-2) mod 8 = 4 = n/2
		{"rotation 2", 5, true, RotBelowHalf},
		{"rotation 6", 1, true, RotAboveHalf}, // (1-7) mod 8 = 2... see below
	}
	// Note: (1-7) mod 8 = -6 mod 8 = 2, so the last case is actually
	// rotation 2 as well; adjust expectation accordingly.
	cases[3].class = RotBelowHalf

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nw := newNetwork(t, netgen.Options{N: n, IDBound: n, Seed: 3, Model: ring.Basic})
			res, err := engine.Run(nw, func(a *engine.Agent) (RotationClass, error) {
				f := NewFrame(a)
				dir := ring.Anticlockwise
				if a.ID() <= tc.clockwise {
					dir = ring.Clockwise
				}
				return f.ClassifyRotation(dir, true)
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, cls := range res.Outputs {
				if cls.Nontrivial() != tc.nontriv {
					t.Errorf("agent %d: class %v, want nontrivial=%v", i, cls, tc.nontriv)
				}
				if tc.class == RotZero || tc.class == RotHalf {
					if cls != tc.class {
						t.Errorf("agent %d: class %v, want %v", i, cls, tc.class)
					}
				}
			}
			if res.Rounds != 4 {
				t.Errorf("rounds = %d, want 4 (classification with restore)", res.Rounds)
			}
			// Restore: positions must equal the initial ones.
			init := nw.InitialPositions()
			cur := nw.CurrentPositions()
			for i := range init {
				if init[i] != cur[i] {
					t.Fatalf("positions not restored: %v vs %v", cur, init)
				}
			}
		})
	}
}

// TestNontrivialMoveOdd verifies Corollary 18 on random odd-size networks
// with and without a shared sense of direction.
func TestNontrivialMoveOdd(t *testing.T) {
	for _, mixed := range []bool{false, true} {
		for seed := int64(0); seed < 5; seed++ {
			nw := newNetwork(t, netgen.Options{
				N: 9, IDBound: 64, Seed: seed, Model: ring.Basic,
				MixedChirality: mixed, ForceSplitChirality: mixed,
			})
			type out struct {
				dir     ring.Direction
				flipped bool
			}
			res, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
				f := NewFrame(a)
				dir, err := NontrivialMoveOdd(f)
				return out{dir, f.Flipped()}, err
			})
			if err != nil {
				t.Fatalf("mixed=%v seed=%d: %v", mixed, seed, err)
			}
			dirs := make([]ring.Direction, nw.N())
			for i, o := range res.Outputs {
				dirs[i] = objectiveDir(o.dir, o.flipped, nw.ChiralityOf(i))
			}
			r := rotationOf(dirs)
			if r == 0 {
				t.Fatalf("mixed=%v seed=%d: returned assignment is trivial", mixed, seed)
			}
			bits := 7 // idBits for IDBound 64
			if res.Rounds > 1+bits {
				t.Errorf("mixed=%v seed=%d: %d rounds, want <= %d", mixed, seed, res.Rounds, 1+bits)
			}
		}
	}
}

// TestNontrivialMoveEven verifies the Theorem 27 substitute on even-size
// networks with adversarially balanced orientations.
func TestNontrivialMoveEven(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		nw := newNetwork(t, netgen.Options{
			N: 8, IDBound: 64, Seed: seed, Model: ring.Basic,
			MixedChirality: true, ForceSplitChirality: true,
		})
		type out struct {
			dir     ring.Direction
			flipped bool
		}
		res, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
			f := NewFrame(a)
			dir, err := NontrivialMoveEven(f, 99)
			return out{dir, f.Flipped()}, err
		})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		dirs := make([]ring.Direction, nw.N())
		for i, o := range res.Outputs {
			dirs[i] = objectiveDir(o.dir, o.flipped, nw.ChiralityOf(i))
		}
		r := rotationOf(dirs)
		if r == 0 || r == nw.N()/2 {
			t.Fatalf("seed=%d: rotation %d is trivial", seed, r)
		}
	}
}

// TestDirectionAgreement checks Algorithm 1: after agreement every agent's
// frame refers to the same objective direction.
func TestDirectionAgreement(t *testing.T) {
	for _, parityOdd := range []bool{true, false} {
		n := 8
		if parityOdd {
			n = 9
		}
		for seed := int64(0); seed < 5; seed++ {
			nw := newNetwork(t, netgen.Options{
				N: n, IDBound: 32, Seed: seed, Model: ring.Basic,
				MixedChirality: true, ForceSplitChirality: true,
			})
			res, err := engine.Run(nw, func(a *engine.Agent) (bool, error) {
				f := NewFrame(a)
				var dir ring.Direction
				var err error
				if a.NParity() == engine.ParityOdd {
					dir, err = NontrivialMoveOdd(f)
				} else {
					dir, err = NontrivialMoveEven(f, 7)
				}
				if err != nil {
					return false, err
				}
				if _, err := DirectionAgreement(f, dir); err != nil {
					return false, err
				}
				return f.Flipped(), nil
			})
			if err != nil {
				t.Fatalf("odd=%v seed=%d: %v", parityOdd, seed, err)
			}
			// frame clockwise == global clockwise  iff  chirality != flipped.
			first := nw.ChiralityOf(0) != res.Outputs[0]
			for i := 1; i < nw.N(); i++ {
				if (nw.ChiralityOf(i) != res.Outputs[i]) != first {
					t.Fatalf("odd=%v seed=%d: agents disagree on direction after DirAgr", parityOdd, seed)
				}
			}
		}
	}
}

// TestDirectionAgreementOdd checks Proposition 17.
func TestDirectionAgreementOdd(t *testing.T) {
	for _, mixed := range []bool{false, true} {
		nw := newNetwork(t, netgen.Options{
			N: 7, IDBound: 32, Seed: 11, Model: ring.Basic,
			MixedChirality: mixed, ForceSplitChirality: mixed,
		})
		res, err := engine.Run(nw, func(a *engine.Agent) (bool, error) {
			f := NewFrame(a)
			if err := DirectionAgreementOdd(f); err != nil {
				return false, err
			}
			return f.Flipped(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds > 3 {
			t.Errorf("mixed=%v: %d rounds, want <= 3", mixed, res.Rounds)
		}
		first := nw.ChiralityOf(0) != res.Outputs[0]
		for i := 1; i < nw.N(); i++ {
			if (nw.ChiralityOf(i) != res.Outputs[i]) != first {
				t.Fatalf("mixed=%v: agents disagree after Proposition 17", mixed)
			}
		}
	}
}

// TestEmptinessTest covers Lemma 12 in every model and parity.
func TestEmptinessTest(t *testing.T) {
	type setting struct {
		name   string
		model  ring.Model
		n      int
		maxRds int
	}
	settings := []setting{
		{"lazy even", ring.Lazy, 8, 1},
		{"lazy odd", ring.Lazy, 9, 1},
		{"perceptive even", ring.Perceptive, 8, 1},
		{"basic odd", ring.Basic, 9, 1},
		{"basic even", ring.Basic, 8, 8},
	}
	queries := []struct {
		name     string
		contains func(id, n int) bool
		want     func(ids []int) bool
	}{
		{"empty set", func(id, n int) bool { return false }, func([]int) bool { return false }},
		{"all ids", func(id, n int) bool { return true }, func([]int) bool { return true }},
		{"only id 1", func(id, n int) bool { return id == 1 }, func(ids []int) bool {
			for _, v := range ids {
				if v == 1 {
					return true
				}
			}
			return false
		}},
		{"half the agents", func(id, n int) bool { return id%2 == 0 }, func(ids []int) bool {
			for _, v := range ids {
				if v%2 == 0 {
					return true
				}
			}
			return false
		}},
		{"ids above 1000", func(id, n int) bool { return id > 1000 }, func(ids []int) bool {
			for _, v := range ids {
				if v > 1000 {
					return true
				}
			}
			return false
		}},
		{"absent ids only", func(id, n int) bool { return id == 1999 || id == 1998 }, func(ids []int) bool {
			for _, v := range ids {
				if v == 1999 || v == 1998 {
					return true
				}
			}
			return false
		}},
	}
	for _, s := range settings {
		for _, q := range queries {
			t.Run(s.name+"/"+q.name, func(t *testing.T) {
				nw := newNetwork(t, netgen.Options{N: s.n, IDBound: 2000, Seed: 5, Model: s.model})
				ids := make([]int, nw.N())
				for i := range ids {
					ids[i] = nw.IDOf(i)
				}
				want := q.want(ids)
				res, err := engine.Run(nw, func(a *engine.Agent) (bool, error) {
					f := NewFrame(a)
					return EmptinessTest(f, q.contains(a.ID(), s.n))
				})
				if err != nil {
					t.Fatal(err)
				}
				for i, got := range res.Outputs {
					if got != want {
						t.Errorf("agent %d: got %v, want %v", i, got, want)
					}
				}
				maxRounds := s.maxRds
				if s.model == ring.Basic && s.n%2 == 0 {
					maxRounds = 1 + 11 // 1 + bits(2000)
				}
				if res.Rounds > maxRounds {
					t.Errorf("rounds = %d, want <= %d", res.Rounds, maxRounds)
				}
			})
		}
	}
}

// TestLeaderElectCommonSense checks Lemma 13: the maximum identifier wins.
func TestLeaderElectCommonSense(t *testing.T) {
	for _, model := range []ring.Model{ring.Basic, ring.Lazy, ring.Perceptive} {
		for _, n := range []int{7, 8} {
			nw := newNetwork(t, netgen.Options{N: n, IDBound: 128, Seed: 17, Model: model})
			res, err := engine.Run(nw, func(a *engine.Agent) (bool, error) {
				return LeaderElectCommonSense(NewFrame(a))
			})
			if err != nil {
				t.Fatalf("model=%v n=%d: %v", model, n, err)
			}
			maxID, leaders := 0, 0
			for i := 0; i < nw.N(); i++ {
				if nw.IDOf(i) > maxID {
					maxID = nw.IDOf(i)
				}
			}
			for i, isLeader := range res.Outputs {
				if isLeader {
					leaders++
					if nw.IDOf(i) != maxID {
						t.Errorf("model=%v n=%d: leader has ID %d, max is %d", model, n, nw.IDOf(i), maxID)
					}
				}
			}
			if leaders != 1 {
				t.Errorf("model=%v n=%d: %d leaders", model, n, leaders)
			}
		}
	}
}

// TestNontrivialMoveFromLeader checks Lemma 10.
func TestNontrivialMoveFromLeader(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		nw := newNetwork(t, netgen.Options{N: 8, IDBound: 64, Seed: seed, Model: ring.Basic})
		maxID := 0
		for i := 0; i < nw.N(); i++ {
			if nw.IDOf(i) > maxID {
				maxID = nw.IDOf(i)
			}
		}
		type out struct {
			dir     ring.Direction
			flipped bool
		}
		res, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
			f := NewFrame(a)
			dir, err := NontrivialMoveFromLeader(f, a.ID() == maxID)
			return out{dir, f.Flipped()}, err
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds > 4 {
			t.Errorf("rounds = %d, want <= 4", res.Rounds)
		}
		dirs := make([]ring.Direction, nw.N())
		for i, o := range res.Outputs {
			dirs[i] = objectiveDir(o.dir, o.flipped, nw.ChiralityOf(i))
		}
		if r := rotationOf(dirs); r == 0 || r == nw.N()/2 {
			t.Fatalf("seed %d: returned rotation %d is trivial", seed, r)
		}
	}
}

// TestBroadcastBits checks the global rotation-signalling broadcast channel.
func TestBroadcastBits(t *testing.T) {
	nw := newNetwork(t, netgen.Options{N: 6, IDBound: 32, Seed: 21, Model: ring.Basic})
	maxID := 0
	for i := 0; i < nw.N(); i++ {
		if nw.IDOf(i) > maxID {
			maxID = nw.IDOf(i)
		}
	}
	const payload = uint64(0b1011001110)
	res, err := engine.Run(nw, func(a *engine.Agent) (uint64, error) {
		f := NewFrame(a)
		return BroadcastBits(f, a.ID() == maxID, payload, 10)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range res.Outputs {
		if got != payload {
			t.Errorf("agent %d received %b, want %b", i, got, payload)
		}
	}
	if res.Rounds != 10 {
		t.Errorf("rounds = %d, want 10", res.Rounds)
	}
	// Parameter validation.
	if _, err := engine.Run(nw, func(a *engine.Agent) (uint64, error) {
		return BroadcastBits(NewFrame(a), false, 0, 0)
	}); err == nil {
		t.Error("bits=0 accepted")
	}
}

// TestCoordinateAllSettings runs the full coordination pipeline across
// models, parities and orientation mixes and checks the three outcomes.
func TestCoordinateAllSettings(t *testing.T) {
	type setting struct {
		name        string
		model       ring.Model
		n           int
		mixed       bool
		commonSense bool
	}
	settings := []setting{
		{"basic odd mixed", ring.Basic, 9, true, false},
		{"basic even mixed", ring.Basic, 8, true, false},
		{"lazy even mixed", ring.Lazy, 10, true, false},
		{"perceptive odd mixed", ring.Perceptive, 7, true, false},
		{"perceptive even mixed", ring.Perceptive, 8, true, false},
		{"basic even common sense", ring.Basic, 8, false, true},
		{"lazy odd common sense", ring.Lazy, 9, false, true},
		{"perceptive even common sense", ring.Perceptive, 8, false, true},
	}
	for _, s := range settings {
		t.Run(s.name, func(t *testing.T) {
			nw := newNetwork(t, netgen.Options{
				N: s.n, IDBound: 64, Seed: 23, Model: s.model,
				MixedChirality: s.mixed, ForceSplitChirality: s.mixed,
			})
			type out struct {
				leader  bool
				dir     ring.Direction
				flipped bool
			}
			res, err := engine.Run(nw, func(a *engine.Agent) (out, error) {
				c, err := Coordinate(a, Options{CommonSense: s.commonSense, Seed: 41})
				if err != nil {
					return out{}, err
				}
				return out{c.IsLeader, c.NontrivialDir, c.Frame.Flipped()}, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			leaders := 0
			dirs := make([]ring.Direction, nw.N())
			var agreeRef bool
			for i, o := range res.Outputs {
				if o.leader {
					leaders++
				}
				dirs[i] = objectiveDir(o.dir, o.flipped, nw.ChiralityOf(i))
				frameIsGlobal := nw.ChiralityOf(i) != o.flipped
				if i == 0 {
					agreeRef = frameIsGlobal
				} else if frameIsGlobal != agreeRef {
					t.Errorf("agent %d disagrees on the common direction", i)
				}
			}
			if leaders != 1 {
				t.Errorf("%d leaders, want exactly 1", leaders)
			}
			if r := rotationOf(dirs); r == 0 || r == nw.N()/2 {
				t.Errorf("coordination returned a trivial move (rotation %d)", r)
			}
		})
	}
}

// TestCoordinateRoundAccounting sanity-checks the per-stage round counters
// for the odd-n pipeline.
func TestCoordinateRoundAccounting(t *testing.T) {
	nw := newNetwork(t, netgen.Options{N: 9, IDBound: 64, Seed: 2, Model: ring.Basic, MixedChirality: true, ForceSplitChirality: true})
	res, err := engine.Run(nw, func(a *engine.Agent) (*Coordination, error) {
		return Coordinate(a, Options{Seed: 3})
	})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Outputs[0]
	if c.RoundsAgreement != 2 {
		t.Errorf("direction agreement rounds = %d, want 2", c.RoundsAgreement)
	}
	if c.RoundsLeader != 7 { // ceil(log2 64) = 7 bits for IDBound 64 -> Bits(64)=7
		t.Errorf("leader election rounds = %d, want 7", c.RoundsLeader)
	}
	if c.RoundsNontrivial < 1 || c.RoundsNontrivial > 8 {
		t.Errorf("nontrivial move rounds = %d", c.RoundsNontrivial)
	}
	total := c.RoundsNontrivial + c.RoundsAgreement + c.RoundsLeader
	if total != res.Rounds {
		t.Errorf("stage rounds %d != total %d", total, res.Rounds)
	}
}

func TestNontrivialMoveSearchExhausted(t *testing.T) {
	nw := newNetwork(t, netgen.Options{N: 8, IDBound: 32, Seed: 4, Model: ring.Basic})
	_, err := engine.Run(nw, func(a *engine.Agent) (struct{}, error) {
		f := NewFrame(a)
		// An empty family can never produce a nontrivial move.
		fam, ferr := newEmptyFamily(a.IDBound())
		if ferr != nil {
			return struct{}{}, ferr
		}
		_, _, err := NontrivialMoveSearch(f, fam, false)
		return struct{}{}, err
	})
	if !errors.Is(err, ErrNoNontrivialMove) {
		t.Fatalf("got %v, want ErrNoNontrivialMove", err)
	}
}

// newEmptyFamily builds a zero-length set family for failure-path tests.
func newEmptyFamily(universe int) (emptyFamily, error) {
	if universe <= 0 {
		return emptyFamily{}, errors.New("bad universe")
	}
	return emptyFamily{universe}, nil
}

type emptyFamily struct{ universe int }

func (e emptyFamily) Len() int               { return 0 }
func (e emptyFamily) Universe() int          { return e.universe }
func (e emptyFamily) Contains(int, int) bool { return false }
