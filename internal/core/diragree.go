package core

import "ringsym/internal/ring"

// DirectionAgreement implements Algorithm 1 (DirAgr).  Precondition: nmDir is
// this agent's direction, in its current frame, in an assignment known to be
// a nontrivial move.  The assignment is executed twice; agents whose two-round
// displacement exceeds a full circle flip their frame.  Afterwards every
// agent's frame refers to the same objective clockwise direction.
//
// The function returns nmDir re-expressed in the (possibly flipped) frame so
// that it still denotes the same objective direction.  Cost: 2 rounds.
func DirectionAgreement(f *Frame, nmDir ring.Direction) (ring.Direction, error) {
	trace, err := f.RoundN(nmDir, 2)
	if err != nil {
		return ring.Idle, err
	}
	obs1, obs2 := trace[0], trace[1]
	if obs1.Dist+obs2.Dist > f.FullCircle() {
		f.Flip()
		return nmDir.Opposite(), nil
	}
	return nmDir, nil
}

// DirectionAgreementOdd implements Proposition 17: for odd n the direction
// agreement problem is solved in O(1) rounds from scratch.  All agents move
// in their frame's clockwise direction; if the rotation index is zero every
// frame already points the same way, otherwise the round was a nontrivial
// move (odd n) and Algorithm 1 finishes the job.  Cost: at most 3 rounds.
func DirectionAgreementOdd(f *Frame) error {
	obs1, err := f.Round(ring.Clockwise)
	if err != nil {
		return err
	}
	if obs1.Dist == 0 {
		return nil
	}
	obs2, err := f.Round(ring.Clockwise)
	if err != nil {
		return err
	}
	if obs1.Dist+obs2.Dist > f.FullCircle() {
		f.Flip()
	}
	return nil
}
