package core

import (
	"ringsym/internal/engine"
	"ringsym/internal/ring"
)

// DirectionAgreement implements Algorithm 1 (DirAgr).  Precondition: nmDir is
// this agent's direction, in its current frame, in an assignment known to be
// a nontrivial move.  The assignment is executed twice; agents whose two-round
// displacement exceeds a full circle flip their frame.  Afterwards every
// agent's frame refers to the same objective clockwise direction.
//
// The function returns nmDir re-expressed in the (possibly flipped) frame so
// that it still denotes the same objective direction.  Cost: 2 rounds.
func DirectionAgreement(f *Frame, nmDir ring.Direction) (ring.Direction, error) {
	return engine.RunStep(f.Agent(), func(k func(ring.Direction) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return DirectionAgreementStep(f, nmDir, k)
	})
}

// DirectionAgreementStep is the machine form of DirectionAgreement.
func DirectionAgreementStep(f *Frame, nmDir ring.Direction, k func(ring.Direction) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	return f.RoundNStep(nmDir, 2, func(trace []engine.Observation) (engine.Yield, engine.Cont) {
		if trace[0].Dist+trace[1].Dist > f.FullCircle() {
			f.Flip()
			return k(nmDir.Opposite())
		}
		return k(nmDir)
	})
}

// DirectionAgreementOdd implements Proposition 17: for odd n the direction
// agreement problem is solved in O(1) rounds from scratch.  All agents move
// in their frame's clockwise direction; if the rotation index is zero every
// frame already points the same way, otherwise the round was a nontrivial
// move (odd n) and Algorithm 1 finishes the job.  Cost: at most 3 rounds.
func DirectionAgreementOdd(f *Frame) error {
	_, err := engine.RunStep(f.Agent(), func(k func(struct{}) (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
		return DirectionAgreementOddStep(f, func() (engine.Yield, engine.Cont) { return k(struct{}{}) })
	})
	return err
}

// DirectionAgreementOddStep is the machine form of DirectionAgreementOdd.
func DirectionAgreementOddStep(f *Frame, k func() (engine.Yield, engine.Cont)) (engine.Yield, engine.Cont) {
	return f.RoundStep(ring.Clockwise, func(obs1 engine.Observation) (engine.Yield, engine.Cont) {
		if obs1.Dist == 0 {
			return k()
		}
		return f.RoundStep(ring.Clockwise, func(obs2 engine.Observation) (engine.Yield, engine.Cont) {
			if obs1.Dist+obs2.Dist > f.FullCircle() {
				f.Flip()
			}
			return k()
		})
	})
}
