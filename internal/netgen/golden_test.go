package netgen

import (
	"testing"

	"ringsym/internal/canon"
	"ringsym/internal/ring"
)

// TestCanonicalKeyGolden pins the canonical cache keys of fixed generation
// options.  The keys depend on everything the Generate contract promises —
// the draw sequence (positions, then identifiers, then chirality, from one
// seed-derived stream) and the pairing of identifiers with SORTED ring
// indices rather than raw draw order — so any netgen refactor that changes
// generated configurations, however subtly, fails here instead of silently
// invalidating persisted canonical keys and splitting symmetry orbits.
//
// If generation is changed deliberately, regenerate these keys AND bump the
// key version in internal/canon so stale persisted keys cannot alias fresh
// ones.
func TestCanonicalKeyGolden(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		key  string
	}{
		{
			name: "basic common chirality",
			opt:  Options{N: 8, Seed: 1, Model: ring.Basic},
			key:  "85c818360900ba345fa8fc6a490e1f9821760a56dae582072948f8a253757684",
		},
		{
			name: "perceptive mixed chirality",
			opt:  Options{N: 8, Seed: 1, Model: ring.Perceptive, MixedChirality: true, ForceSplitChirality: true},
			key:  "3fa2207e3434b4485c975ec812ad11be09f01962e86bdb7a3ba138c4b4be881f",
		},
		{
			name: "lazy odd n",
			opt:  Options{N: 9, Seed: 7, Model: ring.Lazy},
			key:  "d3b7e5e25b73c67f64c35a2c74ac3a8acc4cfe6896cc69b6e265838c721d6159",
		},
		{
			name: "perceptive equal spacing",
			opt:  Options{N: 16, Seed: 3, Model: ring.Perceptive, EqualSpacing: true},
			key:  "172f4a49498160379c7f7ecadbabf503decf890a5a23d756330efa5ab0877f2d",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := MustGenerate(tc.opt)
			got, err := canon.Key(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.key {
				t.Errorf("canonical key drifted:\n got %s\nwant %s\n(generation changed — see the Generate contract before updating this golden)", got, tc.key)
			}
		})
	}
}

// TestIDAssignmentFollowsSortedPositions pins the pairing half of the
// Generate contract directly: identifiers attach to ring indices of the
// clockwise-sorted position order.  Positions must come out strictly
// increasing (so index i IS the i-th agent clockwise), and the identifier
// stream must be reproducible from the seed alone once the position draws
// are accounted for — two generations with identical options agree
// element-wise, not just as multisets.
func TestIDAssignmentFollowsSortedPositions(t *testing.T) {
	for _, opt := range []Options{
		{N: 16, Seed: 5, Model: ring.Basic},
		{N: 16, Seed: 5, Model: ring.Basic, EqualSpacing: true},
		{N: 11, Seed: 9, Model: ring.Perceptive, MixedChirality: true},
	} {
		a := MustGenerate(opt)
		b := MustGenerate(opt)
		for i := 1; i < len(a.Positions); i++ {
			if a.Positions[i] <= a.Positions[i-1] {
				t.Fatalf("positions not strictly increasing at %d: %v", i, a.Positions)
			}
		}
		for i := range a.IDs {
			if a.IDs[i] != b.IDs[i] || a.Positions[i] != b.Positions[i] {
				t.Fatalf("ID/position pairing not reproducible at ring index %d", i)
			}
		}
	}
}
