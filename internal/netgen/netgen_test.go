package netgen

import (
	"errors"
	"testing"

	"ringsym/internal/engine"
	"ringsym/internal/geom"
	"ringsym/internal/ring"
)

func TestGenerateDefaults(t *testing.T) {
	cfg, err := Generate(Options{N: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Model != ring.Perceptive {
		t.Errorf("default model = %v", cfg.Model)
	}
	if cfg.IDBound != 40 {
		t.Errorf("default IDBound = %d, want 40", cfg.IDBound)
	}
	if cfg.Circ != 1<<20 {
		t.Errorf("default circumference = %d", cfg.Circ)
	}
	if len(cfg.Positions) != 10 || len(cfg.IDs) != 10 {
		t.Fatal("wrong slice lengths")
	}
	if !geom.SortedDistinct(cfg.Circ, cfg.Positions) {
		t.Error("positions not sorted/distinct")
	}
	seen := map[int]bool{}
	for _, id := range cfg.IDs {
		if id < 1 || id > cfg.IDBound || seen[id] {
			t.Fatalf("bad ID %d", id)
		}
		seen[id] = true
	}
	if cfg.Chirality != nil {
		t.Error("chirality should be nil when MixedChirality is false")
	}
	// The generated configuration must be accepted by the engine.
	if _, err := engine.New(cfg); err != nil {
		t.Fatalf("engine rejects generated config: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Options{N: 12, Seed: 9, MixedChirality: true, ForceSplitChirality: true})
	b := MustGenerate(Options{N: 12, Seed: 9, MixedChirality: true, ForceSplitChirality: true})
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] || a.IDs[i] != b.IDs[i] || a.Chirality[i] != b.Chirality[i] {
			t.Fatal("same seed must generate identical configurations")
		}
	}
	c := MustGenerate(Options{N: 12, Seed: 10, MixedChirality: true})
	same := true
	for i := range a.Positions {
		if a.Positions[i] != c.Positions[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different configurations")
	}
}

// TestGenerateMemoIsolation pins the memo's immutability contract: mutating a
// returned configuration must not leak into later generations of the same
// option set.
func TestGenerateMemoIsolation(t *testing.T) {
	opt := Options{N: 10, Seed: 77, MixedChirality: true, ForceSplitChirality: true}
	a := MustGenerate(opt)
	want := append([]int64(nil), a.Positions...)
	wantIDs := append([]int(nil), a.IDs...)
	wantChir := append([]bool(nil), a.Chirality...)
	// Trash every slice of the returned copy.
	for i := range a.Positions {
		a.Positions[i] = -1
		a.IDs[i] = -1
		a.Chirality[i] = !a.Chirality[i]
	}
	b := MustGenerate(opt)
	for i := range want {
		if b.Positions[i] != want[i] || b.IDs[i] != wantIDs[i] || b.Chirality[i] != wantChir[i] {
			t.Fatal("memoized generation leaked a caller's mutation")
		}
	}
}

func TestGenerateForceSplitChirality(t *testing.T) {
	cfg := MustGenerate(Options{N: 8, Seed: 4, MixedChirality: true, ForceSplitChirality: true})
	hasTrue, hasFalse := false, false
	for _, c := range cfg.Chirality {
		if c {
			hasTrue = true
		} else {
			hasFalse = true
		}
	}
	if !hasTrue || !hasFalse {
		t.Error("forced split must contain both orientations")
	}
}

func TestGenerateEqualSpacing(t *testing.T) {
	cfg := MustGenerate(Options{N: 8, Circ: 800, Seed: 1, EqualSpacing: true})
	gaps := map[int64]bool{}
	for i := 0; i < 7; i++ {
		gaps[cfg.Positions[i+1]-cfg.Positions[i]] = true
	}
	if len(gaps) != 1 {
		t.Errorf("equal spacing produced gaps %v", gaps)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Options{N: 1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("N=1: got %v, want ErrBadOptions", err)
	}
	if _, err := Generate(Options{N: 10, IDBound: 5}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("IDBound < N: got %v, want ErrBadOptions", err)
	}
	if _, err := Generate(Options{N: 10, Circ: -4}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("negative Circ: got %v, want ErrBadOptions", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate should panic on invalid options")
		}
	}()
	MustGenerate(Options{N: 0})
}

func TestGenerateSmallCircumferenceAdjusted(t *testing.T) {
	cfg := MustGenerate(Options{N: 10, Circ: 7, Seed: 2, AllowSmall: true})
	if cfg.Circ < 40 || cfg.Circ%2 != 0 {
		t.Errorf("circumference %d not adjusted to a feasible even value", cfg.Circ)
	}
}

// TestGenerateEqualSpacingTooSmallCircRejected pins the satellite bugfix: an
// equal-spacing request whose circumference cannot hold N agents on distinct
// even ticks must fail with a wrapped ErrBadOptions instead of producing a
// zero step and duplicate positions.
func TestGenerateEqualSpacingTooSmallCircRejected(t *testing.T) {
	for _, circ := range []int64{6, 10, 18} {
		if _, err := Generate(Options{N: 10, Circ: circ, EqualSpacing: true, AllowSmall: true}); !errors.Is(err, ErrBadOptions) {
			t.Errorf("Circ=%d N=10: got %v, want ErrBadOptions", circ, err)
		}
	}
	// The boundary case Circ = 2N fits exactly (step 2) and must be accepted
	// without the silent upsizing applied to random placement.
	cfg, err := Generate(Options{N: 10, Circ: 20, EqualSpacing: true, AllowSmall: true})
	if err != nil {
		t.Fatalf("Circ=2N rejected: %v", err)
	}
	if cfg.Circ != 20 {
		t.Errorf("Circ silently adjusted to %d", cfg.Circ)
	}
	if !geom.SortedDistinct(cfg.Circ, cfg.Positions) {
		t.Errorf("positions not distinct/sorted: %v", cfg.Positions)
	}
}
