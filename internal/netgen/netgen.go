// Package netgen generates ring-network configurations for tests, examples
// and the benchmark harness.  All generation is deterministic for a fixed
// seed.
package netgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"ringsym/internal/engine"
	"ringsym/internal/ring"
)

// ErrBadOptions is returned (wrapped) when the options cannot describe a
// valid configuration.
var ErrBadOptions = errors.New("netgen: bad options")

// Options controls configuration generation.
type Options struct {
	// N is the number of agents (must be at least 2; the paper needs > 4).
	N int
	// IDBound is N of the paper (the bound on identifiers); defaults to
	// max(16, 4*N) when zero.
	IDBound int
	// Circ is the circumference in ticks; defaults to 1<<20 when zero.
	Circ int64
	// Model is the movement model; defaults to ring.Perceptive when zero.
	Model ring.Model
	// MixedChirality gives every agent an independent random sense of
	// direction; otherwise all agents share the global clockwise.
	MixedChirality bool
	// ForceSplitChirality guarantees that, when MixedChirality is set, both
	// orientations actually occur (n >= 2).
	ForceSplitChirality bool
	// EqualSpacing places agents equidistantly instead of at random
	// positions (useful for worst-case symmetry tests).
	EqualSpacing bool
	// Seed drives the deterministic pseudo-random generation.
	Seed int64
	// MaxRounds is forwarded to the engine configuration.
	MaxRounds int
	// AllowSmall permits n <= 4.
	AllowSmall bool
	// HideParity withholds the parity of n from the agents.
	HideParity bool
}

func (o *Options) fillDefaults() error {
	if o.N < 2 {
		return fmt.Errorf("%w: need at least 2 agents, got %d", ErrBadOptions, o.N)
	}
	if o.IDBound == 0 {
		o.IDBound = 4 * o.N
		if o.IDBound < 16 {
			o.IDBound = 16
		}
	}
	if o.IDBound < o.N {
		return fmt.Errorf("%w: IDBound %d < N %d", ErrBadOptions, o.IDBound, o.N)
	}
	if o.Circ < 0 {
		return fmt.Errorf("%w: negative circumference %d", ErrBadOptions, o.Circ)
	}
	if o.Circ == 0 {
		o.Circ = 1 << 20
	}
	if o.Circ%2 != 0 {
		o.Circ++
	}
	if o.EqualSpacing {
		// Equal spacing places the agents at multiples of an even step of the
		// explicit circumference; an undersized circle would make the step
		// collapse to zero and duplicate every position, so it is an error
		// rather than a silently adjusted value.
		if step := equalStep(o.Circ, o.N); step < 2 {
			return fmt.Errorf("%w: circumference %d cannot hold %d equally spaced agents on even ticks (need Circ >= 2*N)",
				ErrBadOptions, o.Circ, o.N)
		}
	} else if o.Circ < 4*int64(o.N) {
		// Random placement draws distinct even positions; grow an undersized
		// default-ish circle so the draw terminates (documented behaviour).
		o.Circ = 4 * int64(o.N)
	}
	if o.Model == 0 {
		o.Model = ring.Perceptive
	}
	return nil
}

// equalStep returns the even spacing step used by EqualSpacing placement.
func equalStep(circ int64, n int) int64 {
	step := circ / int64(n)
	if step%2 != 0 {
		step--
	}
	return step
}

// Generate builds an engine configuration according to opt.
//
// Identifier assignment is independent of the order in which positions are
// drawn: positions are drawn first and sorted clockwise, and the i-th
// identifier drawn is bound to the i-th ring index of that sorted order —
// never to the i-th raw draw.  The same holds for chirality bits.  This
// pairing is load-bearing for the canonical result cache (internal/canon
// keys, internal/memo): a refactor that re-paired identifiers with draw
// order would silently move every generated configuration into a different
// symmetry orbit and invalidate persisted canonical keys.  The contract —
// including the exact draw sequence (positions, then identifiers, then
// chirality, all from one seed-derived stream) — is pinned by the golden-key
// test TestCanonicalKeyGolden in golden_test.go; a deliberate generation
// change must update those keys and bump canon's key version.
func Generate(opt Options) (engine.Config, error) {
	if err := opt.fillDefaults(); err != nil {
		return engine.Config{}, err
	}
	// Bounded memo, keyed by the filled option set.  Generation is
	// deterministic (one Options value → one Config), so the cache is
	// semantically invisible; it exists because scenario sweeps regenerate the
	// same small grid of configurations over and over, and seeding a
	// math/rand source alone costs more than a whole small-n generation.
	// Copies go in and out, so callers may mutate results freely.
	memoMu.Lock()
	cached, ok := memoed[opt]
	memoMu.Unlock()
	if ok {
		return copyConfig(cached), nil
	}
	cfg := generate(opt)
	memoMu.Lock()
	if memoed == nil {
		memoed = make(map[Options]engine.Config)
	}
	if len(memoed) < memoLimit {
		memoed[opt] = copyConfig(cfg)
	}
	memoMu.Unlock()
	return cfg, nil
}

// memoLimit bounds the generation memo; past it, Generate stops inserting
// (sweeps use far fewer distinct option sets, and a workload that overflows
// the bound degrades to uncached generation, not to unbounded memory).
const memoLimit = 4096

var (
	memoMu sync.Mutex
	memoed map[Options]engine.Config
)

// copyConfig deep-copies the slice-valued fields so memo entries stay
// immutable no matter what callers do with returned configurations.
func copyConfig(cfg engine.Config) engine.Config {
	cfg.Positions = append([]int64(nil), cfg.Positions...)
	cfg.IDs = append([]int(nil), cfg.IDs...)
	if cfg.Chirality != nil {
		cfg.Chirality = append([]bool(nil), cfg.Chirality...)
	}
	return cfg
}

// generate is the uncached generation path; opt must be filled.
func generate(opt Options) engine.Config {
	rng := rand.New(rand.NewSource(opt.Seed))

	positions := positionsFor(rng, opt)
	ids := distinctInts(rng, opt.N, opt.IDBound)
	var chir []bool
	if opt.MixedChirality {
		chir = make([]bool, opt.N)
		for i := range chir {
			chir[i] = rng.Intn(2) == 0
		}
		if opt.ForceSplitChirality {
			chir[0] = true
			chir[1] = false
		}
	}
	return engine.Config{
		Model:      opt.Model,
		Circ:       opt.Circ,
		Positions:  positions,
		IDs:        ids,
		IDBound:    opt.IDBound,
		Chirality:  chir,
		MaxRounds:  opt.MaxRounds,
		AllowSmall: opt.AllowSmall,
		HideParity: opt.HideParity,
	}
}

// MustGenerate is Generate but panics on error; for tests and examples.
func MustGenerate(opt Options) engine.Config {
	cfg, err := Generate(opt)
	if err != nil {
		panic(err)
	}
	return cfg
}

// positionsFor picks n distinct even positions sorted clockwise.
func positionsFor(rng *rand.Rand, opt Options) []int64 {
	n := opt.N
	positions := make([]int64, 0, n)
	if opt.EqualSpacing {
		step := equalStep(opt.Circ, n) // >= 2, validated by fillDefaults
		for i := 0; i < n; i++ {
			positions = append(positions, int64(i)*step)
		}
		return positions
	}
	used := make(map[int64]bool, n)
	for len(positions) < n {
		p := 2 * rng.Int63n(opt.Circ/2)
		if !used[p] {
			used[p] = true
			positions = append(positions, p)
		}
	}
	sortInt64(positions)
	return positions
}

// distinctInts draws n distinct integers from [1, bound].
func distinctInts(rng *rand.Rand, n, bound int) []int {
	out := make([]int, 0, n)
	used := make(map[int]bool, n)
	for len(out) < n {
		v := 1 + rng.Intn(bound)
		if !used[v] {
			used[v] = true
			out = append(out, v)
		}
	}
	return out
}

func sortInt64(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
