package task

import (
	"context"
	"encoding/json"
	"fmt"

	"ringsym"
	"ringsym/internal/canon"
	"ringsym/internal/ring"
)

// swarmlocateSpec is the collision-sensor localisation workload of Theorem
// 42: a swarm restricted to the perceptive model (no communication, no
// common sense of direction, only the first-collision observable) localises
// every member in about n/2 rounds.  The outcome is location discovery's,
// annotated with the Lemma 6 lower bound so sweeps can chart observed rounds
// against the information-theoretic floor of the model.
type swarmlocateSpec struct{}

func (swarmlocateSpec) Name() string { return "swarmlocate" }

func (swarmlocateSpec) Description() string {
	return "perceptive-model swarm localisation (Theorem 42): location discovery via the coll() sensor, charted against the Lemma 6 lower bound"
}

func (swarmlocateSpec) PaperBound() bool { return false }

func (swarmlocateSpec) Solvable(model ring.Model, oddN bool) bool {
	// The workload is defined by the coll() sensor: only the perceptive
	// model has it.  (Perceptive location discovery is solvable for either
	// parity.)
	return model == ring.Perceptive && Solvable(model, oddN, LocationDiscovery)
}

func (swarmlocateSpec) Bound(model ring.Model, oddN, commonSense bool, n, idBound int) (float64, string) {
	return Bound(model, oddN, commonSense, LocationDiscovery, n, idBound)
}

func (swarmlocateSpec) Run(ctx context.Context, nw *ringsym.Network, p Params) (Outcome, error) {
	_, out, err := runDiscovery(ctx, nw, p)
	if err != nil {
		return Outcome{}, err
	}
	out.Extra = map[string]json.RawMessage{
		"lower_bound": mustJSON(ringsym.LocationDiscoveryLowerBound(nw.Model(), nw.N())),
	}
	return out, nil
}

func (swarmlocateSpec) Verify(nw *ringsym.Network, p Params, out Outcome) error {
	if len(out.PerAgent) != nw.N() {
		return fmt.Errorf("swarmlocate: %d per-agent splits for %d agents", len(out.PerAgent), nw.N())
	}
	if nw.Engine().IndexOfID(out.LeaderID) < 0 {
		return fmt.Errorf("swarmlocate: leader ID %d does not exist in the network", out.LeaderID)
	}
	var lb int
	if err := decodeExtra(out.Extra, map[string]any{"lower_bound": &lb}); err != nil {
		return fmt.Errorf("swarmlocate: %w", err)
	}
	if want := ringsym.LocationDiscoveryLowerBound(nw.Model(), nw.N()); lb != want {
		return fmt.Errorf("swarmlocate: recorded lower bound %d, ground truth %d", lb, want)
	}
	if out.Rounds < lb {
		return fmt.Errorf("swarmlocate: %d rounds beat the Lemma 6 lower bound of %d", out.Rounds, lb)
	}
	return nil
}

func (swarmlocateSpec) MapOutcome(out Outcome, m canon.Map) Outcome {
	// The lower bound depends only on (model, n), both orbit invariants.
	return Reframe(out, m)
}
