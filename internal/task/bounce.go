package task

import (
	"context"
	"encoding/json"
	"fmt"

	"ringsym"
	"ringsym/internal/canon"
	"ringsym/internal/physics"
	"ringsym/internal/ring"
)

// bounceSpec runs one round of the event-driven physics simulator with every
// agent moving in its own private clockwise direction, and reports the
// collision dynamics: per-agent collision counts, the total number of
// collision events and the rotation index of Lemma 1.  It is the "beads on a
// ring" workload that underlies the whole paper, promoted from a ringsim-only
// special case to a first-class registry task.
//
// The direction rule (own clockwise) is deliberately frame-equivariant: under
// a rotation of the ring indexing every agent behaves identically, and under
// a reflection the flipped chirality bits reproduce the mirrored motion — so
// the outcome travels through the symmetry-canonical cache like any protocol
// outcome.  All positions and event times stay on a dyadic grid (positions
// are even ticks, meeting points are half-ticks), so the float64 simulation
// is exact and the outcome is bit-deterministic in every frame.
type bounceSpec struct{}

func (bounceSpec) Name() string { return "bounce" }

func (bounceSpec) Description() string {
	return "one event-driven physics round with every agent moving its own clockwise: collision counts and the Lemma 1 rotation index"
}

func (bounceSpec) PaperBound() bool { return false }

func (bounceSpec) Solvable(ring.Model, bool) bool { return true }

func (bounceSpec) Bound(ring.Model, bool, bool, int, int) (float64, string) {
	return 1, "1 (single physics round)"
}

// Run executes the single closed-form round; ctx is accepted for interface
// uniformity but never consulted — the event sweep is O(n^2) arithmetic with
// no protocol rounds to interrupt.
func (bounceSpec) Run(_ context.Context, nw *ringsym.Network, p Params) (Outcome, error) {
	eng := nw.Engine()
	n := eng.N()
	circ := eng.Circ()
	ticks := eng.InitialPositions()
	positions := make([]float64, n)
	dirs := make([]ring.Direction, n)
	nC := 0
	for i := range positions {
		positions[i] = float64(ticks[i])
		if eng.ChiralityOf(i) {
			dirs[i] = ring.Clockwise
			nC++
		} else {
			dirs[i] = ring.Anticlockwise
		}
	}
	res, err := physics.SimulateRound(float64(circ), positions, dirs)
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{Rounds: 1, PerAgent: make([]Split, n)}
	out.Extra = map[string]json.RawMessage{
		"collisions":     mustJSON(res.Collisions),
		"events":         mustJSON(len(res.Events)),
		"rotation_index": mustJSON(rotationIndex(nC, n)),
	}
	return out, nil
}

// rotationIndex is Lemma 1's (nC - nA) mod n for nA = n - nC.
func rotationIndex(nC, n int) int {
	return ((nC-(n-nC))%n + n) % n
}

func (bounceSpec) Verify(nw *ringsym.Network, p Params, out Outcome) error {
	eng := nw.Engine()
	n := eng.N()
	if len(out.PerAgent) != n {
		return fmt.Errorf("bounce: %d per-agent splits for %d agents", len(out.PerAgent), n)
	}
	var coll []int
	var events, rot int
	if err := decodeExtra(out.Extra, map[string]any{
		"collisions": &coll, "events": &events, "rotation_index": &rot,
	}); err != nil {
		return fmt.Errorf("bounce: %w", err)
	}
	if len(coll) != n {
		return fmt.Errorf("bounce: %d collision counts for %d agents", len(coll), n)
	}
	// Conservation: every collision event involves exactly two agents.
	sum := 0
	for _, c := range coll {
		if c < 0 {
			return fmt.Errorf("bounce: negative collision count %d", c)
		}
		sum += c
	}
	if sum != 2*events {
		return fmt.Errorf("bounce: per-agent collisions sum to %d, want 2x%d events", sum, events)
	}
	// Lemma 1: the rotation index is determined by the chirality census.
	nC := 0
	for i := 0; i < n; i++ {
		if eng.ChiralityOf(i) {
			nC++
		}
	}
	if want := rotationIndex(nC, n); rot != want {
		return fmt.Errorf("bounce: rotation index %d, want (nC-nA) mod n = %d", rot, want)
	}
	return nil
}

// MapOutcome reindexes the per-agent collision counts into the requesting
// frame and, under a reflection, negates the rotation index (the mirrored
// ring rotates the other way: nC and nA swap roles).
func (bounceSpec) MapOutcome(out Outcome, m canon.Map) Outcome {
	if m.Rotation == 0 && !m.Reflected {
		return out
	}
	out = Reframe(out, m)
	extra := make(map[string]json.RawMessage, len(out.Extra))
	for k, v := range out.Extra {
		extra[k] = v
	}
	var coll []int
	if err := json.Unmarshal(extra["collisions"], &coll); err == nil {
		mapped := make([]int, len(coll))
		for i := range mapped {
			mapped[i] = coll[m.CanonIndex(i)]
		}
		extra["collisions"] = mustJSON(mapped)
	}
	if m.Reflected {
		var rot int
		if err := json.Unmarshal(extra["rotation_index"], &rot); err == nil {
			extra["rotation_index"] = mustJSON(((-rot)%m.N + m.N) % m.N)
		}
	}
	out.Extra = extra
	return out
}

// decodeExtra unmarshals the named Extra fields into the given pointers,
// failing on a missing field.
func decodeExtra(extra map[string]json.RawMessage, fields map[string]any) error {
	for name, dst := range fields {
		raw, ok := extra[name]
		if !ok {
			return fmt.Errorf("extra field %q missing", name)
		}
		if err := json.Unmarshal(raw, dst); err != nil {
			return fmt.Errorf("extra field %q: %w", name, err)
		}
	}
	return nil
}
