package task

import (
	"context"
	"fmt"

	"ringsym"
	"ringsym/internal/canon"
	"ringsym/internal/ring"
)

// coordinateSpec runs the coordination pipeline of the paper: nontrivial
// move, direction agreement, leader election.  The facade verifies that
// exactly one leader was elected.
type coordinateSpec struct{}

func (coordinateSpec) Name() string { return "coordinate" }

func (coordinateSpec) Description() string {
	return "symmetry-breaking pipeline of the paper: nontrivial move, direction agreement, leader election"
}

func (coordinateSpec) PaperBound() bool { return true }

func (coordinateSpec) Solvable(ring.Model, bool) bool { return true }

func (coordinateSpec) Bound(model ring.Model, oddN, commonSense bool, n, idBound int) (float64, string) {
	// Leader election is the from-scratch total of the pipeline.
	return Bound(model, oddN, commonSense, LeaderElection, n, idBound)
}

func (coordinateSpec) Run(ctx context.Context, nw *ringsym.Network, p Params) (Outcome, error) {
	res, err := nw.CoordinateContext(ctx, ringsym.CoordinationOptions{CommonSense: p.CommonSense, Seed: p.Seed})
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{Rounds: res.Rounds, LeaderID: res.LeaderID, PerAgent: make([]Split, len(res.PerAgent))}
	for i, a := range res.PerAgent {
		out.PerAgent[i] = Split{Nontrivial: a.RoundsNontrivial, Agreement: a.RoundsAgreement, Leader: a.RoundsLeader}
	}
	return out, nil
}

func (coordinateSpec) Verify(nw *ringsym.Network, p Params, out Outcome) error {
	if len(out.PerAgent) != nw.N() {
		return fmt.Errorf("coordinate: %d per-agent splits for %d agents", len(out.PerAgent), nw.N())
	}
	if nw.Engine().IndexOfID(out.LeaderID) < 0 {
		return fmt.Errorf("coordinate: leader ID %d does not exist in the network", out.LeaderID)
	}
	if out.Rounds <= 0 {
		return fmt.Errorf("coordinate: nonpositive round count %d", out.Rounds)
	}
	return nil
}

func (coordinateSpec) MapOutcome(out Outcome, m canon.Map) Outcome { return Reframe(out, m) }
