// Package task is the protocol-task registry of the simulator: the single
// seam through which every layer of the stack — the campaign runner, the
// table harness in internal/eval, the serving daemon and the CLIs — selects,
// runs, verifies and cache-translates a scenario's workload.
//
// A task is described by a Spec: how to run it on a network, whether it is
// solvable in a setting, what the paper's bound for it is, how to re-check a
// finished outcome against the simulator's ground truth, and how to translate
// an outcome computed on the canonical representative of a symmetry orbit
// (internal/canon) back into the requesting frame.  Specs register themselves
// under their name with Register; the built-ins of the paper (coordinate,
// discover) and the derived workloads (bounce, patrol, swarmlocate) are
// registered at init, so every importer sees the same catalogue.
//
// Adding a task is one file in this package (or any package that can import
// it): implement Spec, call Register in an init function, and the task is
// immediately sweepable by cmd/ringfarm (sharded, cached, aggregated),
// servable by cmd/ringd (/v1/run, /v1/campaign, listed on /v1/tasks) and
// runnable by cmd/ringsim — no switch statement anywhere needs to learn the
// new name.  The conformance suite in tasktest runs every registered spec
// through the same obligations: Solvable/Run agreement, Verify on ground
// truth, the cache round-trip Run(s) == MapOutcome(Run(canon(s))), and
// byte-stable record JSON.
package task

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ringsym"
	"ringsym/internal/canon"
	"ringsym/internal/ring"
)

// Params is the task-relevant slice of a scenario: everything a Spec may
// consult beyond the network itself.  The network passed to Run is already
// generated from these parameters; they are provided separately because the
// facade deliberately does not expose identifier bounds or the chirality
// regime as a summary.
type Params struct {
	// N is the number of agents.
	N int
	// IDBound is the public bound N of the paper on identifiers.
	IDBound int
	// MixedChirality reports that agents have adversarially mixed senses of
	// direction.
	MixedChirality bool
	// CommonSense promises an a-priori common sense of direction.
	CommonSense bool
	// Seed drives the pseudo-random protocol schedules.
	Seed int64
}

// Split is one agent's per-stage round split.  It is the superset of the
// stage vocabularies of all registered tasks; a task fills the stages it has
// and leaves the rest zero (zero stages are omitted from record JSON).
type Split struct {
	// Coordination-pipeline stages (coordinate).
	Nontrivial, Agreement, Leader int
	// Location-discovery stages (discover and the workloads built on it).
	Coordination, Discovery int
}

// Outcome is the frame-independent result of one verified task run.  Its
// per-agent data is indexed by the ring indices of the frame the task ran in;
// MapOutcome translates between frames.  Extra carries task-declared fields
// that flow verbatim into the record JSON (and therefore must be produced
// deterministically — marshal with encoding/json, never by hand).
type Outcome struct {
	// Rounds is the total round cost of the task.
	Rounds int
	// LeaderID is the identifier of the elected leader; 0 when the task
	// elects none.
	LeaderID int
	// PerAgent holds the per-agent stage splits by ring index.
	PerAgent []Split
	// Extra holds task-specific result fields, exported on the record as
	// "extra".  Tasks without extra fields leave it nil, which keeps their
	// record JSON byte-identical to pre-registry builds.
	Extra map[string]json.RawMessage
}

// Spec describes one protocol task end to end.  Implementations must be
// stateless (a Spec is shared by every worker of every sweep) and
// deterministic: the outcome may depend only on the network configuration and
// the Params.
type Spec interface {
	// Name is the registry key and the Scenario.Task value ("coordinate").
	Name() string
	// Description is the one-line human summary listed by GET /v1/tasks.
	Description() string
	// PaperBound reports that the paper states a bound for this exact task.
	// Only such tasks enter the default Matrix task axis; derived workloads
	// return false so default sweeps stay byte-identical across registry
	// growth.
	PaperBound() bool
	// Solvable reports whether the task is solvable at all in the setting;
	// unsolvable scenarios are recorded without running (Lemma 5 style).
	Solvable(model ring.Model, oddN bool) bool
	// Bound returns the task's round bound in the setting, as a plain formula
	// without the hidden constant plus its human-readable form.  Tasks
	// without a meaningful bound return (0, "n/a").
	Bound(model ring.Model, oddN, commonSense bool, n, idBound int) (float64, string)
	// Run executes the task on the network and returns its outcome.  Run is
	// responsible for the task's own end-to-end verification (the facade
	// verifies protocol outcomes against the simulator's ground truth); the
	// runner additionally calls Verify on every fresh outcome.
	Run(ctx context.Context, nw *ringsym.Network, p Params) (Outcome, error)
	// Verify re-checks a finished outcome against the network it ran on:
	// invariants the outcome itself exposes (leader identity, bound
	// consistency, conservation laws) must hold against the ground truth.
	Verify(nw *ringsym.Network, p Params, out Outcome) error
	// MapOutcome translates an outcome computed in the canonical frame of a
	// symmetry orbit back into the frame described by m (the Map returned by
	// canon.Canonicalize for the requesting configuration).  It must treat
	// out as immutable — the value is shared with the memo cache — and
	// return fresh slices/maps wherever the translation changes them.
	MapOutcome(out Outcome, m canon.Map) Outcome
}

// Reframe translates the frame-indexed parts of an outcome from the
// canonical frame into the original frame described by m: the agent at
// original ring index i takes the per-agent data of canonical index
// m.CanonIndex(i).  Scalar fields and Extra are unchanged (shared).  It is
// the whole MapOutcome implementation for tasks whose Extra fields are
// frame-invariant.
func Reframe(out Outcome, m canon.Map) Outcome {
	if m.Rotation == 0 && !m.Reflected {
		return out
	}
	per := make([]Split, len(out.PerAgent))
	for i := range per {
		per[i] = out.PerAgent[m.CanonIndex(i)]
	}
	out.PerAgent = per
	return out
}

// mustJSON marshals a value that cannot fail (ints, slices of ints); it is
// the deterministic encoder for Extra fields.
func mustJSON(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("task: marshal extra field: %v", err))
	}
	return b
}

var (
	regMu    sync.RWMutex
	registry = map[string]Spec{}
)

// Register adds a spec to the registry under its name.  It panics on an
// empty name or a duplicate registration — both are programming errors that
// must fail loudly at init, not at sweep time.
func Register(spec Spec) {
	name := spec.Name()
	if name == "" || name != strings.ToLower(name) {
		panic(fmt.Sprintf("task: invalid task name %q (must be non-empty lowercase)", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("task: duplicate registration of %q", name))
	}
	registry[name] = spec
}

// Lookup returns the spec registered under name (case-insensitive).  The
// error of an unknown name lists the registered tasks, so a typo in a sweep
// spec or an HTTP request is self-explaining.
func Lookup(name string) (Spec, error) {
	regMu.RLock()
	spec, ok := registry[strings.ToLower(name)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("task: unknown task %q (registered: %s)", name, strings.Join(Names(), ", "))
	}
	return spec, nil
}

// Names returns the registered task names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PaperBoundNames returns the sorted names of the tasks the paper states a
// bound for — the default task axis of a campaign matrix.
func PaperBoundNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name, spec := range registry {
		if spec.PaperBound() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(coordinateSpec{})
	Register(discoverSpec{})
	Register(bounceSpec{})
	Register(patrolSpec{})
	Register(swarmlocateSpec{})
}
