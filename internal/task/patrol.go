package task

import (
	"context"
	"encoding/json"
	"fmt"

	"ringsym"
	"ringsym/internal/canon"
	"ringsym/internal/ring"
)

// patrolSpec is the boundary-patrolling workload the paper's introduction
// motivates: run location discovery, then let every agent independently
// derive the same equidistant deployment plan (target slot t sits at t/n of
// the circumference from the leader).  The outcome reports the discovery
// cost plus the longest relocation any robot must make to reach its slot —
// after which the swarm patrols the boundary with optimal idle time 1/n.
type patrolSpec struct{}

func (patrolSpec) Name() string { return "patrol" }

func (patrolSpec) Description() string {
	return "location discovery followed by the equidistant boundary-patrol deployment plan (longest relocation in half-ticks)"
}

func (patrolSpec) PaperBound() bool { return false }

func (patrolSpec) Solvable(model ring.Model, oddN bool) bool {
	// The plan needs the full relative map, so patrol inherits location
	// discovery's solvability (Lemma 5).
	return Solvable(model, oddN, LocationDiscovery)
}

func (patrolSpec) Bound(model ring.Model, oddN, commonSense bool, n, idBound int) (float64, string) {
	// The round cost is exactly location discovery's: the plan is computed
	// offline from the map.
	return Bound(model, oddN, commonSense, LocationDiscovery, n, idBound)
}

func (patrolSpec) Run(ctx context.Context, nw *ringsym.Network, p Params) (Outcome, error) {
	res, out, err := runDiscovery(ctx, nw, p)
	if err != nil {
		return Outcome{}, err
	}
	var leader ringsym.AgentDiscovery
	for _, a := range res.PerAgent {
		if a.IsLeader {
			leader = a
		}
	}
	// The deployment plan, computed from the leader's map exactly as every
	// agent would compute it from its own: target slot t sits at t/n of the
	// circumference (in half-ticks — the map's observation units), and each
	// robot takes the shorter way around.  The plan is a pure function of the
	// protocol output, so it is identical in every framing of the ring.
	full := 2 * nw.Engine().Circ()
	var maxMove int64
	for t := 0; t < leader.N; t++ {
		target := int64(t) * full / int64(leader.N)
		move := target - leader.Positions[t]
		if move > full/2 {
			move -= full
		}
		if move < -full/2 {
			move += full
		}
		if move < 0 {
			move = -move
		}
		if move > maxMove {
			maxMove = move
		}
	}
	out.Extra = map[string]json.RawMessage{"max_relocation": mustJSON(maxMove)}
	return out, nil
}

func (patrolSpec) Verify(nw *ringsym.Network, p Params, out Outcome) error {
	if len(out.PerAgent) != nw.N() {
		return fmt.Errorf("patrol: %d per-agent splits for %d agents", len(out.PerAgent), nw.N())
	}
	if nw.Engine().IndexOfID(out.LeaderID) < 0 {
		return fmt.Errorf("patrol: leader ID %d does not exist in the network", out.LeaderID)
	}
	if lb := ringsym.LocationDiscoveryLowerBound(nw.Model(), nw.N()); out.Rounds < lb {
		return fmt.Errorf("patrol: %d rounds beat the Lemma 6 lower bound of %d", out.Rounds, lb)
	}
	var maxMove int64
	if err := decodeExtra(out.Extra, map[string]any{"max_relocation": &maxMove}); err != nil {
		return fmt.Errorf("patrol: %w", err)
	}
	// Robots take the shorter way around, so no relocation can exceed half
	// the circumference (in half-ticks: the circumference in ticks).
	if half := nw.Engine().Circ(); maxMove < 0 || maxMove > half {
		return fmt.Errorf("patrol: max relocation %d outside [0, %d]", maxMove, half)
	}
	return nil
}

func (patrolSpec) MapOutcome(out Outcome, m canon.Map) Outcome {
	// The plan is frame-invariant (see Run); only the per-agent splits carry
	// frame indexing.
	return Reframe(out, m)
}
