package task

import (
	"math"

	"ringsym/internal/comb"
	"ringsym/internal/ring"
)

// Problem identifies one of the paper's problems for bound lookup.
type Problem string

// Problems with bounds in the paper.
const (
	LeaderElection     Problem = "leader election"
	NontrivialMove     Problem = "nontrivial move"
	DirectionAgreement Problem = "direction agreement"
	LocationDiscovery  Problem = "location discovery"
)

// Solvable reports whether the problem is solvable at all in the given
// setting (Lemma 5: location discovery is impossible in the basic model with
// even n).
func Solvable(model ring.Model, oddN bool, p Problem) bool {
	return p != LocationDiscovery || model != ring.Basic || oddN
}

// Bound returns the paper's asymptotic bound for a problem in a setting, as
// a plain formula without the hidden constant, together with its
// human-readable form.  It is the single source of the theoretical columns
// of Table I and Table II; internal/campaign and internal/eval delegate here.
func Bound(model ring.Model, oddN, commonSense bool, p Problem, n, idBound int) (float64, string) {
	logN := comb.Log2(float64(idBound))
	logNn := comb.Log2(float64(idBound) / float64(n))
	logn := comb.Log2(float64(n))
	sqrtn := math.Sqrt(float64(n))
	fn := float64(n)

	if commonSense {
		switch {
		case p == LocationDiscovery && model == ring.Basic && !oddN:
			return 0, "not solvable"
		case p == LocationDiscovery && model == ring.Perceptive && !oddN:
			return fn/2 + sqrtn*logN, "n/2 + O(sqrt(n) log N)"
		case p == LocationDiscovery:
			return fn + logN, "n + O(log N)"
		case p == NontrivialMove && oddN:
			return logNn, "Theta(log(N/n))"
		case model == ring.Basic && !oddN:
			return logN * logN, "O(log^2 N)"
		default:
			return logN, "O(log N)"
		}
	}
	switch model {
	case ring.Basic, ring.Lazy:
		if oddN {
			switch p {
			case LeaderElection:
				return logN, "O(log N)"
			case NontrivialMove:
				return logNn, "Theta(log(N/n))"
			case DirectionAgreement:
				return 1, "O(1)"
			case LocationDiscovery:
				return fn + logN, "n + O(log N)"
			}
		}
		coord := fn * logNn / logn
		if p == LocationDiscovery {
			if model == ring.Basic {
				return 0, "not solvable"
			}
			return fn + coord, "n + Theta(n log(N/n)/log n)"
		}
		return coord, "Theta(n log(N/n)/log n)"
	case ring.Perceptive:
		if p == LocationDiscovery {
			return fn/2 + sqrtn*logN*logN, "n/2 + O(sqrt(n) log^2 N)"
		}
		return sqrtn * logN, "O(sqrt(n) log N)"
	}
	return 0, "?"
}
